#!/usr/bin/env bash
# Runs clang-tidy (config: top-level .clang-tidy) over every first-party
# translation unit in the compilation database and fails on any finding
# (WarningsAsErrors: '*').
#
# Usage:
#   scripts/run_tidy.sh [build-dir]
#
# Environment:
#   QSP_TIDY_BIN       clang-tidy binary to use (default: first of
#                      clang-tidy, clang-tidy-18..14 found on PATH).
#   QSP_TIDY_REQUIRED  "1" makes a missing clang-tidy a hard failure.
#                      Default: skip with a notice and exit 0, so the
#                      script is safe to call from environments that only
#                      ship gcc (CI installs clang-tidy explicitly).
#   QSP_TIDY_JOBS      parallel clang-tidy processes (default: nproc).
set -euo pipefail

cd "$(dirname "$0")/.."
build_dir="${1:-build}"

find_tidy() {
  if [[ -n "${QSP_TIDY_BIN:-}" ]]; then
    command -v "${QSP_TIDY_BIN}" || true
    return
  fi
  local cand
  for cand in clang-tidy clang-tidy-18 clang-tidy-17 clang-tidy-16 \
              clang-tidy-15 clang-tidy-14; do
    if command -v "${cand}" >/dev/null 2>&1; then
      command -v "${cand}"
      return
    fi
  done
}

tidy_bin="$(find_tidy)"
if [[ -z "${tidy_bin}" ]]; then
  if [[ "${QSP_TIDY_REQUIRED:-0}" == "1" ]]; then
    echo "run_tidy: clang-tidy not found and QSP_TIDY_REQUIRED=1" >&2
    exit 1
  fi
  echo "run_tidy: clang-tidy not found on PATH; skipping (set" \
       "QSP_TIDY_REQUIRED=1 to make this an error)" >&2
  exit 0
fi

db="${build_dir}/compile_commands.json"
if [[ ! -f "${db}" ]]; then
  echo "run_tidy: ${db} missing; configuring ${build_dir}" >&2
  cmake -B "${build_dir}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi
if [[ ! -f "${db}" ]]; then
  echo "run_tidy: failed to produce ${db}" >&2
  exit 1
fi

# First-party TUs only: the database also holds third-party sources
# (e.g. googletest) that are not ours to lint.
mapfile -t sources < <(
  git ls-files 'src/**/*.cc' 'tools/**/*.cc' 'bench/*.cc' 'tests/*.cc' \
               'examples/*.cc'
)
if [[ ${#sources[@]} -eq 0 ]]; then
  echo "run_tidy: no sources found" >&2
  exit 1
fi

jobs="${QSP_TIDY_JOBS:-$(nproc 2>/dev/null || echo 4)}"
echo "run_tidy: ${tidy_bin} over ${#sources[@]} file(s), -j${jobs}" >&2

status=0
printf '%s\n' "${sources[@]}" |
  xargs -P "${jobs}" -n 1 -- "${tidy_bin}" -p "${build_dir}" --quiet ||
  status=$?

if [[ ${status} -ne 0 ]]; then
  echo "run_tidy: findings above must be fixed (or NOLINT'd with a" \
       "reason per DESIGN.md §9)" >&2
  exit 1
fi
echo "run_tidy: clean" >&2
