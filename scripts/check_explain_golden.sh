#!/usr/bin/env bash
# Golden EXPLAIN checks (DESIGN.md §10/§11): the text EXPLAIN of each
# pinned scenario must match its checked-in golden byte for byte. A diff
# means either plan output drifted (a planner or live-service regression)
# or the EXPLAIN format changed deliberately — regenerate with:
#   qsp_explain --scenario fig16 --merger pair > tests/golden/fig16_explain.txt
#   qsp_explain --scenario live > tests/golden/live_explain.txt
set -euo pipefail

EXPLAIN_BIN="${1:?usage: check_explain_golden.sh <qsp_explain> <fig16_golden> [live_golden]}"
GOLDEN="${2:?usage: check_explain_golden.sh <qsp_explain> <fig16_golden> [live_golden]}"
LIVE_GOLDEN="${3:-}"

actual="$(mktemp)"
trap 'rm -f "$actual"' EXIT

"$EXPLAIN_BIN" --scenario fig16 --merger pair > "$actual"
if ! diff -u "$GOLDEN" "$actual"; then
  echo "golden EXPLAIN mismatch for fig16 (see diff above)" >&2
  exit 1
fi

if [[ -n "$LIVE_GOLDEN" ]]; then
  "$EXPLAIN_BIN" --scenario live > "$actual"
  if ! diff -u "$LIVE_GOLDEN" "$actual"; then
    echo "golden EXPLAIN mismatch for live (see diff above)" >&2
    exit 1
  fi
fi
echo "golden EXPLAIN ok"
