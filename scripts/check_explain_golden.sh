#!/usr/bin/env bash
# Golden EXPLAIN check (DESIGN.md §10): the text EXPLAIN of the fig16
# scenario under the pair merger must match the checked-in golden byte for
# byte. A diff means either plan output drifted (a planner regression) or
# the EXPLAIN format changed deliberately — regenerate with:
#   qsp_explain --scenario fig16 --merger pair > tests/golden/fig16_explain.txt
set -euo pipefail

EXPLAIN_BIN="${1:?usage: check_explain_golden.sh <qsp_explain> <golden>}"
GOLDEN="${2:?usage: check_explain_golden.sh <qsp_explain> <golden>}"

actual="$(mktemp)"
trap 'rm -f "$actual"' EXIT

"$EXPLAIN_BIN" --scenario fig16 --merger pair > "$actual"

if ! diff -u "$GOLDEN" "$actual"; then
  echo "golden EXPLAIN mismatch (see diff above)" >&2
  exit 1
fi
echo "golden EXPLAIN ok"
