#!/usr/bin/env bash
# Runs every figure-reproduction and ablation binary.
#
#   - Combined text output -> bench_reports/bench_output.txt (the
#     EXPERIMENTS.md evidence file), or $1.
#   - Per-binary structured reports -> bench_reports/<name>.json (each
#     binary gets QSP_BENCH_REPORT pointed there; see bench/bench_common.h),
#     merged into bench_reports/bench_report.json, or $2.
#   - Per-binary wall time is printed and appended to the text output.
#   - Exits nonzero if any binary fails; `tee` no longer masks exit codes
#     (pipefail + explicit status checks).
#
# Everything lands under bench_reports/ (gitignored) by default so bench
# runs never drop scratch files at the repo root.
set -uo pipefail
cd "$(dirname "$0")/.."
report_dir="${QSP_BENCH_REPORT_DIR:-bench_reports}"
out="${1:-$report_dir/bench_output.txt}"
combined="${2:-$report_dir/bench_report.json}"
mkdir -p "$report_dir"
: > "$out"

failures=0
for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] || continue
  name="$(basename "$b")"
  echo "########## $name ##########" | tee -a "$out"
  start_ns=$(date +%s%N)
  if QSP_BENCH_REPORT="$report_dir/$name.json" "$b" 2>&1 | tee -a "$out"; then
    status=0
  else
    status=$?
    failures=$((failures + 1))
    echo "FAILED: $name (exit $status)" | tee -a "$out"
  fi
  end_ns=$(date +%s%N)
  printf '(wall time: %d.%03d s)\n\n' \
    $(((end_ns - start_ns) / 1000000000)) \
    $((((end_ns - start_ns) / 1000000) % 1000)) | tee -a "$out"
done

# Merge the per-binary reports into one JSON object keyed by bench name.
{
  printf '{'
  first=1
  for f in "$report_dir"/*.json; do
    [ -e "$f" ] || continue
    # The merged report may live in $report_dir too; never merge a
    # previous combined file into itself.
    [ "$f" = "$combined" ] && continue
    [ "$first" -eq 1 ] || printf ','
    first=0
    # JSON-escape the key: bench basenames are tame today, but a stray
    # backslash or quote in a filename must not corrupt the merged report.
    key="$(basename "$f" .json)"
    key="${key//\\/\\\\}"
    key="${key//\"/\\\"}"
    printf '"%s":' "$key"
    tr -d '\n' < "$f"
  done
  printf '}\n'
} > "$combined"

echo "wrote $out"
echo "wrote $combined (per-bench reports in $report_dir/)"
if [ "$failures" -ne 0 ]; then
  echo "$failures bench binary(ies) FAILED" >&2
  exit 1
fi
