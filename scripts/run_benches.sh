#!/usr/bin/env bash
# Runs every figure-reproduction and ablation binary, writing the combined
# output to bench_output.txt (the EXPERIMENTS.md evidence file).
set -u
cd "$(dirname "$0")/.."
out="${1:-bench_output.txt}"
: > "$out"
for b in build/bench/*; do
  [ -x "$b" ] || continue
  echo "########## $(basename "$b") ##########" | tee -a "$out"
  "$b" 2>&1 | tee -a "$out"
  echo | tee -a "$out"
done
echo "wrote $out"
