// Figure 18: percentage of cases in which the hill-climbing channel
// allocation heuristic finds the optimal distribution, by starting-point
// policy. The paper reports: random start 85.5%, seeded (cost-minimizing)
// start 81.8%, best-of-both 88.6%. Oracle: exhaustive allocation search.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "channel/channel_cost.h"
#include "channel/exhaustive_allocator.h"
#include "channel/hill_climb_allocator.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "workload/client_gen.h"

namespace qsp {
namespace {

struct PolicyResult {
  int optimal = 0;
  int trials = 0;
};

void Run() {
  bench::PrintHeader(
      "Figure 18 — % of cases the allocation heuristic finds the optimum",
      "Hill climbing from three starting points (Section 8.2) vs the "
      "exhaustive allocator (Figure 13). Paper: random 85.5%, seeded "
      "81.8%, best-of-both 88.6%.");

  const CostModel model = bench::AllocCostModel();
  const std::vector<bench::AllocationScenario> scenarios = {
      {6, 2, 3}, {7, 2, 3}, {7, 3, 3}, {8, 2, 3}, {8, 3, 3}, {9, 3, 3},
  };
  const int trials_per_scenario = 40;

  PolicyResult random_result, seeded_result, both_result;

  for (size_t s = 0; s < scenarios.size(); ++s) {
    const auto& scenario = scenarios[s];
    for (int t = 0; t < trials_per_scenario; ++t) {
      const uint64_t seed = 5000 + 100 * s + static_cast<uint64_t>(t);
      bench::Instance inst(
          bench::Fig16WorkloadConfig(scenario.num_clients *
                                     scenario.queries_per_client),
          seed, bench::kFig16Density);
      Rng rng(seed ^ 0x5555);
      ClientSet clients =
          AssignClients(inst.queries, scenario.num_clients,
                        ClientAssignment::kRandom, &rng);
      ChannelCostEvaluator evaluator(inst.ctx.get(), model, &clients);

      ExhaustiveAllocator exact;
      auto optimal = exact.Allocate(evaluator, scenario.num_channels);
      if (!optimal.ok()) continue;

      auto run_policy = [&](StartPolicy policy, PolicyResult* result) {
        HillClimbAllocator heuristic(policy, seed ^ 0xAAAA);
        auto outcome = heuristic.Allocate(evaluator, scenario.num_channels);
        if (!outcome.ok()) return;
        ++result->trials;
        if (outcome->cost <= optimal->cost + 1e-9) ++result->optimal;
      };
      run_policy(StartPolicy::kRandom, &random_result);
      run_policy(StartPolicy::kSeeded, &seeded_result);
      run_policy(StartPolicy::kBestOfBoth, &both_result);
    }
  }

  TablePrinter table({"start policy", "trials", "optimal", "% optimal",
                      "paper %"});
  auto add = [&](const char* name, const PolicyResult& r, const char* paper) {
    table.AddRow({name, std::to_string(r.trials), std::to_string(r.optimal),
                  std::to_string(100.0 * r.optimal / r.trials), paper});
  };
  add("random start", random_result, "85.5");
  add("seeded start (Fig 14)", seeded_result, "81.8");
  add("best of both", both_result, "88.6");
  std::printf("%s\n", table.ToText().c_str());
}

}  // namespace
}  // namespace qsp

int main() {
  qsp::Run();
  return 0;
}
