// Sensitivity sweep over the Section 9.1 workload parameters — the
// "remaining parameters were ranged over a fixed interval" part of the
// paper's methodology. Shows how the benefit of merging (relative cost
// saving and wire-traffic reduction, measured end to end) responds to
// the clustering factor cf, the cluster density df, and the query size.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "merge/pair_merger.h"
#include "net/simulator.h"
#include "relation/generator.h"
#include "relation/grid_index.h"
#include "stats/exact_estimator.h"
#include "util/summary.h"
#include "util/table_printer.h"
#include "workload/client_gen.h"

namespace qsp {
namespace {

struct SweepPoint {
  double saving_pct = 0;     // (initial - merged) / initial cost.
  double message_ratio = 0;  // merged messages / unmerged messages.
  double traffic_ratio = 0;  // merged payload rows / unmerged rows.
};

SweepPoint RunPoint(const QueryGenConfig& qconfig, uint64_t seed) {
  Rng rng(seed);
  TableGeneratorConfig tconfig;
  tconfig.domain = qconfig.domain;
  tconfig.num_objects = 4000;
  tconfig.clustered_fraction = 0.5;
  tconfig.payload_fields = 0;
  Table table = GenerateTable(tconfig, &rng);
  GridIndex index(table, tconfig.domain);

  QuerySet queries(GenerateQueries(qconfig, &rng));
  ClientSet clients =
      AssignClients(queries, 8, ClientAssignment::kLocality, &rng);
  ExactEstimator estimator(&index);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);
  const CostModel model{20.0, 1.0, 0.3, 0.0};

  PairMerger merger;
  auto outcome = merger.Merge(ctx, model);

  DisseminationPlan merged;
  merged.allocation.push_back(clients.AllClients());
  merged.channel_partitions.push_back(outcome->partition);
  DisseminationPlan unmerged;
  unmerged.allocation.push_back(clients.AllClients());
  unmerged.channel_partitions.push_back(
      SingletonPartition(queries.size()));

  MulticastSimulator sim(&table, &index, &queries, &clients);
  const RoundStats m = sim.RunRound(merged, procedure);
  const RoundStats u = sim.RunRound(unmerged, procedure);
  QSP_CHECK(m.all_answers_correct && u.all_answers_correct);

  SweepPoint point;
  const double initial = model.InitialCost(ctx);
  point.saving_pct = 100.0 * (initial - outcome->cost) / initial;
  point.message_ratio = static_cast<double>(m.num_messages) /
                        static_cast<double>(u.num_messages);
  point.traffic_ratio =
      u.payload_rows == 0
          ? 1.0
          : static_cast<double>(m.payload_rows) /
                static_cast<double>(u.payload_rows);
  return point;
}

void Sweep(const char* name,
           const std::vector<std::pair<std::string, QueryGenConfig>>& points) {
  std::printf("--- sweep: %s ---\n", name);
  TablePrinter table({"setting", "cost saving %", "msg ratio",
                      "traffic ratio"});
  for (const auto& [label, qconfig] : points) {
    Summary saving, msgs, traffic;
    for (uint64_t seed = 0; seed < 10; ++seed) {
      const SweepPoint p = RunPoint(qconfig, 31000 + seed);
      saving.Add(p.saving_pct);
      msgs.Add(p.message_ratio);
      traffic.Add(p.traffic_ratio);
    }
    table.AddRow({label, std::to_string(saving.mean()),
                  std::to_string(msgs.mean()),
                  std::to_string(traffic.mean())});
  }
  std::printf("%s\n", table.ToText().c_str());
}

void Run() {
  bench::PrintHeader(
      "Workload sensitivity — merging benefit vs cf / df / query size",
      "24 queries, 8 clients, pair merging, exact estimator, end-to-end "
      "simulated traffic. Ratios < 1 mean merging reduced the quantity.");

  QueryGenConfig base = bench::Fig16WorkloadConfig(24);
  base.domain = Rect(0, 0, 100, 100);

  {
    std::vector<std::pair<std::string, QueryGenConfig>> points;
    for (double cf : {0.0, 0.25, 0.5, 0.75, 1.0}) {
      QueryGenConfig q = base;
      q.cf = cf;
      points.emplace_back("cf=" + std::to_string(cf).substr(0, 4), q);
    }
    Sweep("clustering factor cf (more clustering -> more overlap)", points);
  }
  {
    std::vector<std::pair<std::string, QueryGenConfig>> points;
    for (double df : {0.01, 0.03, 0.08, 0.2}) {
      QueryGenConfig q = base;
      q.cf = 1.0;
      q.df = df;
      points.emplace_back("df=" + std::to_string(df).substr(0, 4), q);
    }
    Sweep("cluster density df (tighter clusters -> more overlap)", points);
  }
  {
    std::vector<std::pair<std::string, QueryGenConfig>> points;
    for (double extent : {0.03, 0.08, 0.15, 0.3}) {
      QueryGenConfig q = base;
      q.min_extent = extent / 2;
      q.max_extent = extent;
      points.emplace_back("max_extent=" + std::to_string(extent).substr(0, 4),
                          q);
    }
    Sweep("query size (bigger queries -> more overlap, more data)", points);
  }
}

}  // namespace
}  // namespace qsp

int main() {
  qsp::Run();
  return 0;
}
