// Dynamic-scenario ablation (future work, Section 11): continuous
// queries receive each round's new objects; subscriptions churn. How
// should the merge plan be maintained — greedy incremental placement,
// incremental + periodic repair, or a full re-plan each round? Reports
// traffic and maintenance work per policy on identical object/query
// streams.

#include <cstdio>
#include <string>

#include "sim/continuous.h"
#include "util/table_printer.h"

namespace qsp {
namespace {

void Run() {
  std::printf(
      "=== Dynamic scenario — plan maintenance under churn (Section 11) "
      "===\n30 rounds, 500 new objects/round, 24 initial subscriptions, "
      "+3/-2 churn per round.\n\n");

  ContinuousConfig base;
  base.rounds = 30;
  base.inserts_per_round = 500;
  base.initial_queries = 24;
  base.arrivals_per_round = 3;
  base.departures_per_round = 2;
  base.seed = 4242;

  TablePrinter table({"maintenance policy", "messages", "delta rows",
                      "irrelevant rows", "maintenance evals",
                      "final plan cost"});

  struct Policy {
    const char* name;
    PlanMaintenance policy;
  };
  const Policy policies[] = {
      {"incremental (greedy only)", PlanMaintenance::kIncremental},
      {"incremental + repair", PlanMaintenance::kIncrementalRepair},
      {"re-plan every round", PlanMaintenance::kReplanEachRound},
  };
  for (const Policy& p : policies) {
    ContinuousConfig config = base;
    config.maintenance = p.policy;
    auto outcome = RunContinuous(config);
    if (!outcome.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   outcome.status().ToString().c_str());
      return;
    }
    if (!outcome->all_deltas_correct) {
      std::fprintf(stderr, "DELTA VERIFICATION FAILED (%s)\n", p.name);
    }
    table.AddRow({p.name, std::to_string(outcome->total_messages),
                  std::to_string(outcome->total_delta_rows),
                  std::to_string(outcome->total_irrelevant_rows),
                  std::to_string(outcome->total_maintenance_evals),
                  std::to_string(outcome->rounds.back().plan_cost)});
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "All policies deliver exact deltas; they differ in traffic quality\n"
      "(messages / irrelevant rows) versus plan-maintenance work.\n");
}

}  // namespace
}  // namespace qsp

int main() {
  qsp::Run();
  return 0;
}
