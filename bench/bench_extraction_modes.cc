// Ablation for the extractor-implementation choice of Section 3.1:
// clients re-applying their original query vs server-tagged answer
// objects. Measured end to end: wire bytes (tags add 4 B/row) against
// client-side geometric tests eliminated (tag reads replace them). The
// break-even depends on how much merging happened — more members per
// message means more extractor applications per payload row.

#include <cstdio>

#include "bench/bench_common.h"
#include "merge/pair_merger.h"
#include "net/simulator.h"
#include "relation/generator.h"
#include "relation/grid_index.h"
#include "stats/exact_estimator.h"
#include "util/summary.h"
#include "util/table_printer.h"
#include "workload/client_gen.h"

namespace qsp {
namespace {

void Run() {
  bench::PrintHeader(
      "Extractor implementations — self-extraction vs server tags",
      "20 queries, 6 clients, pair merging with K_M swept (more merging "
      "as K_M grows). 20 trials per row; exact answers verified in every "
      "run.");

  TablePrinter table({"K_M", "groups", "self bytes", "tag bytes",
                      "byte overhead %", "rows examined (either)"});

  for (double k_m : {2.0, 20.0, 100.0, 400.0}) {
    Summary groups, self_bytes, tag_bytes, examined;
    for (uint64_t t = 0; t < 20; ++t) {
      Rng rng(26000 + t);
      const Rect domain(0, 0, 1000, 1000);
      TableGeneratorConfig tconfig;
      tconfig.domain = domain;
      tconfig.num_objects = 6000;
      tconfig.payload_fields = 1;
      tconfig.payload_bytes = 48;
      Table table_data = GenerateTable(tconfig, &rng);
      GridIndex index(table_data, domain);

      QuerySet queries(
          GenerateQueries(bench::Fig16WorkloadConfig(20), &rng));
      ClientSet clients =
          AssignClients(queries, 6, ClientAssignment::kLocality, &rng);
      ExactEstimator estimator(&index);
      BoundingRectProcedure procedure;
      MergeContext ctx(&queries, &estimator, &procedure);
      const CostModel model{k_m, 1.0, 0.3, 0.0};

      PairMerger merger;
      auto outcome = merger.Merge(ctx, model);
      DisseminationPlan plan;
      plan.allocation.push_back(clients.AllClients());
      plan.channel_partitions.push_back(outcome->partition);

      MulticastSimulator sim(&table_data, &index, &queries, &clients);
      const RoundStats self =
          sim.RunRound(plan, procedure, ExtractionMode::kSelfExtract);
      const RoundStats tags =
          sim.RunRound(plan, procedure, ExtractionMode::kServerTags);
      QSP_CHECK(self.all_answers_correct && tags.all_answers_correct);

      groups.Add(static_cast<double>(outcome->partition.size()));
      self_bytes.Add(static_cast<double>(self.payload_bytes));
      tag_bytes.Add(static_cast<double>(tags.payload_bytes));
      examined.Add(static_cast<double>(self.rows_examined));
    }
    table.AddNumericRow(
        {k_m, groups.mean(), self_bytes.mean(), tag_bytes.mean(),
         100.0 * (tag_bytes.mean() / self_bytes.mean() - 1.0),
         examined.mean()},
        5);
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "Tags add ~6%% of wire bytes on 68-byte records; in exchange every row a\n"
      "client examines becomes a bitmask read instead of two coordinate\n"
      "comparisons x extractor count — the right choice when clients are\n"
      "the paper's 'limited capacity' operational units.\n");
}

}  // namespace
}  // namespace qsp

int main() {
  qsp::Run();
  return 0;
}
