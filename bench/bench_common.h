#ifndef QSP_BENCH_BENCH_COMMON_H_
#define QSP_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <memory>
#include <string>

#include "cost/cost_model.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/run_report.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "query/query.h"
#include "stats/size_estimator.h"
#include "util/rng.h"
#include "workload/query_gen.h"

namespace qsp {
namespace bench {

/// A self-contained merging instance for the figure harnesses: workload
/// rectangles -> QuerySet -> MergeContext under the uniform estimator and
/// bounding-rect procedure (the paper's evaluation setting).
struct Instance {
  QuerySet queries;
  UniformDensityEstimator estimator;
  BoundingRectProcedure procedure;
  std::unique_ptr<MergeContext> ctx;

  Instance(const QueryGenConfig& config, uint64_t seed, double density)
      : estimator(density) {
    Rng rng(seed);
    queries = QuerySet(GenerateQueries(config, &rng));
    ctx = std::make_unique<MergeContext>(&queries, &estimator, &procedure);
  }
};

/// The "distance to optimal" metric of Section 9.2:
///   (Cost_heuristic - Cost_optimum) / (Cost_initial - Cost_optimum),
/// 0 when the optimum leaves no merging headroom.
///
/// A genuinely negative distance means the "optimum" was not optimal —
/// the oracle was misconfigured or ran on a different instance. Roundoff
/// slack is clamped to 0; anything beyond it returns NaN so downstream
/// averages are visibly poisoned instead of silently flattered.
inline double DistanceToOptimal(double heuristic, double optimum,
                                double initial) {
  const double denom = initial - optimum;
  if (denom <= 1e-12) return 0.0;
  const double distance = (heuristic - optimum) / denom;
  if (distance < 0.0) {
    if (heuristic >= optimum - 1e-9 * (1.0 + std::fabs(optimum))) return 0.0;
    return std::numeric_limits<double>::quiet_NaN();
  }
  return distance;
}

/// Prints the banner every figure harness starts with.
inline void PrintHeader(const std::string& figure,
                        const std::string& description) {
  std::printf("=== %s ===\n%s\n\n", figure.c_str(), description.c_str());
}

/// Where this bench should write its structured run report, taken from the
/// QSP_BENCH_REPORT environment variable (set per binary by
/// scripts/run_benches.sh). Empty means "no report requested", which keeps
/// default bench stdout byte-identical to a build without telemetry.
inline std::string ReportPath() {
  const char* path = std::getenv("QSP_BENCH_REPORT");
  return path == nullptr ? std::string() : std::string(path);
}

/// Opt-in deterministic timing for golden-report runs: when
/// QSP_BENCH_FAKE_CLOCK is set (to a tick size in microseconds, or any
/// non-numeric value for the 1us default), installs a process-lifetime
/// obs::FakeClock so every wall_us / latency_us field in the run report is
/// byte-identical run-to-run. NOT set by scripts/run_benches.sh — real
/// wall times are the point of the perf trajectory; this hook exists for
/// diffing two reports structurally.
inline void MaybeInstallFakeClock() {
  const char* spec = std::getenv("QSP_BENCH_FAKE_CLOCK");
  if (spec == nullptr || *spec == '\0') return;
  char* end = nullptr;
  double tick_us = std::strtod(spec, &end);
  if (end == spec || tick_us <= 0.0) tick_us = 1.0;
  static obs::FakeClock clock(tick_us);
  obs::SetClock(&clock);
}

/// Turns on qsp::obs when a report was requested; returns whether it is
/// on. Call once at the top of a harness that wants metrics in its report.
/// Also honors the QSP_BENCH_FAKE_CLOCK hook, so a report-producing run
/// can be made time-deterministic from the environment alone.
inline bool EnableTelemetryIfReportRequested() {
  MaybeInstallFakeClock();
  if (!ReportPath().empty()) obs::SetEnabled(true);
  return obs::Enabled();
}

/// Writes `report` to ReportPath() when set. Notices go to stderr so that
/// stdout remains the comparable figure output.
inline void WriteReportIfRequested(const obs::RunReport& report) {
  const std::string path = ReportPath();
  if (path.empty()) return;
  const Status status = report.WriteFile(path);
  if (status.ok()) {
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "report write failed: %s\n",
                 status.ToString().c_str());
  }
}

/// Shared setting of the Figure 16/17 experiments: the paper's
/// deliberately adversarial cost constants (the ones from the Section 5.1
/// example, where greedy pairwise decisions are known to fail) over the
/// hybrid clustered workload of Section 9.1.
inline QueryGenConfig Fig16WorkloadConfig(size_t num_queries) {
  QueryGenConfig config;
  config.domain = Rect(0, 0, 1000, 1000);
  config.num_queries = num_queries;
  config.cf = 0.8;
  config.sf = 0.5;
  config.df = 0.03;
  config.min_extent = 0.02;
  config.max_extent = 0.10;
  return config;
}

inline CostModel Fig16CostModel() { return CostModel{10.0, 9.0, 4.0, 0.0}; }

/// Cost model of the Figure 18/19 allocation experiments: the Figure 16
/// constants plus a per-client header-checking charge (k6), the term that
/// makes spreading clients across channels worthwhile at all.
inline CostModel AllocCostModel() {
  CostModel model = Fig16CostModel();
  model.k_check = 3.0;
  return model;
}

/// Density chosen so query sizes are O(1)..O(100) answer units, the same
/// magnitude as K_M — the regime where merge decisions are non-trivial.
inline constexpr double kFig16Density = 0.0005;

/// Trials per |Q| point, shrinking as the Bell-number oracle cost grows.
inline int Fig16Trials(int n) {
  if (n <= 9) return 200;
  if (n == 10) return 100;
  if (n == 11) return 40;
  return 15;
}

/// Shared setting of the Figure 18/19 channel-allocation experiments:
/// clients with geographically coherent subscriptions over the hybrid
/// workload, small enough that the exhaustive allocator can serve as the
/// oracle.
struct AllocationScenario {
  size_t num_clients = 6;
  int num_channels = 2;
  size_t queries_per_client = 2;
};

}  // namespace bench
}  // namespace qsp

#endif  // QSP_BENCH_BENCH_COMMON_H_
