// Figure 16: probability that the Pair Merging Algorithm finds the
// optimal solution, vs the number of queries |Q| = 3..12. The optimum
// comes from the exact Partition Algorithm (Bell-number search). The
// paper reports an average probability of ~97%.

#include <cstdio>

#include "bench/bench_common.h"
#include "merge/pair_merger.h"
#include "merge/partition_merger.h"
#include "util/summary.h"
#include "util/table_printer.h"

namespace qsp {
namespace {

void Run() {
  bench::EnableTelemetryIfReportRequested();
  bench::PrintHeader(
      "Figure 16 — P(pair merging finds the optimal solution) vs |Q|",
      "Workload: Section 9.1 hybrid generator (cf=0.8, sf=0.5, df=0.03); "
      "cost model K_M=10, K_T=9, K_U=4 (the adversarial Section 5.1 "
      "constants). Oracle: exact Partition Algorithm.");

  const CostModel model = bench::Fig16CostModel();
  const PairMerger pair;
  const PartitionMerger exact;

  TablePrinter table({"|Q|", "trials", "optimal found", "P(optimal) %"});
  Summary overall;

  for (int n = 3; n <= 12; ++n) {
    const int trials = bench::Fig16Trials(n);
    int optimal_found = 0;
    for (int t = 0; t < trials; ++t) {
      bench::Instance inst(bench::Fig16WorkloadConfig(n),
                           1000 * static_cast<uint64_t>(n) + t,
                           bench::kFig16Density);
      auto greedy = pair.Merge(*inst.ctx, model);
      auto optimal = exact.Merge(*inst.ctx, model);
      if (!greedy.ok() || !optimal.ok()) continue;
      if (greedy->cost <= optimal->cost + 1e-9) ++optimal_found;
    }
    const double pct = 100.0 * optimal_found / trials;
    overall.Add(pct);
    table.AddRow({std::to_string(n), std::to_string(trials),
                  std::to_string(optimal_found),
                  std::to_string(pct)});
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf("Average over |Q| points: %.2f%%   (paper: ~97%%)\n",
              overall.mean());

  obs::RunReport report("fig16");
  report.AddScalar("avg_p_optimal_pct", overall.mean());
  report.AddTable("p_optimal_vs_q", table);
  report.AddMetrics(obs::MetricRegistry::Default());
  bench::WriteReportIfRequested(report);
}

}  // namespace
}  // namespace qsp

int main() {
  qsp::Run();
  return 0;
}
