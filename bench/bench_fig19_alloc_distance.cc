// Figure 19: distance of the heuristic channel allocation to the optimal
// one, (C_heur - C_opt) / (C_init - C_opt), where C_init is the cost of
// broadcasting every query unmerged on a single channel. The paper
// reports an average of ~0.1697%.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "channel/channel_cost.h"
#include "channel/exhaustive_allocator.h"
#include "channel/hill_climb_allocator.h"
#include "util/rng.h"
#include "util/summary.h"
#include "util/table_printer.h"
#include "workload/client_gen.h"

namespace qsp {
namespace {

void Run() {
  bench::PrintHeader(
      "Figure 19 — distance of heuristic allocation to the optimum",
      "Metric: (C_heur - C_opt) / (C_init - C_opt); best-of-both "
      "starting policy. Paper: ~0.1697% on average.");

  const CostModel model = bench::AllocCostModel();
  const std::vector<bench::AllocationScenario> scenarios = {
      {6, 2, 3}, {7, 2, 3}, {7, 3, 3}, {8, 2, 3}, {8, 3, 3}, {9, 3, 3},
  };
  const int trials_per_scenario = 40;

  TablePrinter table({"clients", "channels", "trials", "mean distance %",
                      "max distance %"});
  Summary overall;

  for (size_t s = 0; s < scenarios.size(); ++s) {
    const auto& scenario = scenarios[s];
    Summary distance;
    for (int t = 0; t < trials_per_scenario; ++t) {
      const uint64_t seed = 9000 + 100 * s + static_cast<uint64_t>(t);
      bench::Instance inst(
          bench::Fig16WorkloadConfig(scenario.num_clients *
                                     scenario.queries_per_client),
          seed, bench::kFig16Density);
      Rng rng(seed ^ 0x1234);
      ClientSet clients =
          AssignClients(inst.queries, scenario.num_clients,
                        ClientAssignment::kRandom, &rng);
      ChannelCostEvaluator evaluator(inst.ctx.get(), model, &clients);

      ExhaustiveAllocator exact;
      HillClimbAllocator heuristic(StartPolicy::kBestOfBoth, seed ^ 0x9999);
      auto optimal = exact.Allocate(evaluator, scenario.num_channels);
      auto outcome = heuristic.Allocate(evaluator, scenario.num_channels);
      if (!optimal.ok() || !outcome.ok()) continue;
      // Baseline: every query unmerged, every client on one channel —
      // including the header checks all clients then pay per message.
      double initial = model.k_d;
      for (QueryId q = 0; q < inst.ctx->num_queries(); ++q) {
        initial += model.k_m +
                   model.k_check * static_cast<double>(scenario.num_clients) +
                   model.k_t * inst.ctx->Size(q);
      }
      distance.Add(100.0 * bench::DistanceToOptimal(outcome->cost,
                                                    optimal->cost, initial));
    }
    overall.Add(distance.mean());
    table.AddNumericRow({static_cast<double>(scenario.num_clients),
                         static_cast<double>(scenario.num_channels),
                         static_cast<double>(trials_per_scenario),
                         distance.mean(), distance.max()},
                        4);
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf("Average over scenarios: %.4f%%   (paper: ~0.1697%%)\n",
              overall.mean());
}

}  // namespace
}  // namespace qsp

int main() {
  qsp::Run();
  return 0;
}
