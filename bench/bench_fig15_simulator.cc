// Figure 15: the end-to-end dissemination environment. The planner works
// on *estimated* traffic; the simulator measures the real thing. With the
// exact size estimator, bounding-rect merging, and one subscription per
// client, the two must agree perfectly on the cost-model terms:
//   |M|     — messages broadcast,
//   size(M) — payload tuples on the wire,
//   U       — irrelevant tuples delivered to clients.
// This harness runs that comparison at several scales with qsp::obs
// telemetry enabled, prints the per-phase wall-time trace, and writes the
// structured report (bench_report.json by default, or $QSP_BENCH_REPORT).

#include <cstdio>
#include <string>

#include "bench/bench_common.h"
#include "core/subscription_service.h"
#include "obs/phase_tracer.h"
#include "obs/run_report.h"
#include "relation/generator.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

int Run() {
  obs::SetEnabled(true);  // This harness is the telemetry demonstration.
  // Under QSP_BENCH_FAKE_CLOCK the trace timings become deterministic,
  // making this report byte-diffable run-to-run.
  bench::MaybeInstallFakeClock();

  bench::PrintHeader(
      "Figure 15 — estimated vs measured traffic in the simulated "
      "dissemination environment",
      "Planner: pair merging, bounding-rect procedure, exact estimator, "
      "one subscription per client. Every estimate must equal the "
      "simulator's wire measurement.");

  const Rect domain(0, 0, 1000, 1000);
  TablePrinter table({"clients", "est |M|", "meas |M|", "est size(M)",
                      "meas size(M)", "est U", "meas U", "match"});
  bool all_match = true;
  bool all_correct = true;

  for (const size_t num_clients : {8u, 16u, 32u}) {
    Rng rng(7000 + num_clients);
    TableGeneratorConfig tconfig;
    tconfig.domain = domain;
    tconfig.num_objects = 20000;
    tconfig.clustered_fraction = 0.5;
    Table data = GenerateTable(tconfig, &rng);

    ServiceConfig config;
    config.cost_model = bench::Fig16CostModel();
    config.merger = MergerKind::kPairMerging;
    config.procedure = ProcedureKind::kBoundingRect;
    config.estimator = EstimatorKind::kExact;
    config.extraction = ExtractionMode::kSelfExtract;
    config.telemetry = true;
    SubscriptionService service(std::move(data), domain, config);

    QueryGenConfig qconfig = bench::Fig16WorkloadConfig(num_clients);
    qconfig.domain = domain;
    Rng qrng(100 + num_clients);
    for (const Rect& rect : GenerateQueries(qconfig, &qrng)) {
      service.Subscribe(service.AddClient(), rect);
    }

    auto plan = service.Plan();
    if (!plan.ok()) {
      std::fprintf(stderr, "plan failed: %s\n",
                   plan.status().ToString().c_str());
      return 1;
    }
    auto round = service.RunRound();
    if (!round.ok()) {
      std::fprintf(stderr, "round failed: %s\n",
                   round.status().ToString().c_str());
      return 1;
    }
    all_correct = all_correct && round->all_answers_correct;

    const auto& registry = obs::MetricRegistry::Default();
    const double est_m = registry.GaugeValue("plan.est.messages");
    const double est_size = registry.GaugeValue("plan.est.size");
    const double est_u = registry.GaugeValue("plan.est.irrelevant");
    const double meas_m = static_cast<double>(round->num_messages);
    const double meas_size = static_cast<double>(round->payload_rows);
    const double meas_u = static_cast<double>(round->irrelevant_rows);
    const bool match = est_m == meas_m && est_size == meas_size &&
                       est_u == meas_u;
    all_match = all_match && match;
    table.AddRow({std::to_string(num_clients), std::to_string(est_m),
                  std::to_string(meas_m), std::to_string(est_size),
                  std::to_string(meas_size), std::to_string(est_u),
                  std::to_string(meas_u), match ? "yes" : "NO"});
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf("All estimates equal measurements: %s\n", all_match ? "yes" : "NO");
  std::printf("All clients recovered exact answers: %s\n\n",
              all_correct ? "yes" : "NO");
  std::printf("Phase trace (wall times in microseconds):\n%s\n",
              obs::PhaseTracer::Default().ToText().c_str());

  obs::RunReport report("fig15");
  report.AddText("description",
                 "Estimated vs simulator-measured |M|, size(M), U under the "
                 "exact estimator; phase trace of plan/simulate.");
  report.AddBool("all_match", all_match);
  report.AddBool("all_answers_correct", all_correct);
  report.AddTable("estimated_vs_measured", table);
  report.AddMetrics(obs::MetricRegistry::Default());
  report.AddTrace(obs::PhaseTracer::Default());
  std::string path = bench::ReportPath();
  if (path.empty()) path = "bench_report.json";
  const Status status = report.WriteFile(path);
  if (status.ok()) {
    std::fprintf(stderr, "wrote %s\n", path.c_str());
  } else {
    std::fprintf(stderr, "report write failed: %s\n",
                 status.ToString().c_str());
  }
  return all_match && all_correct ? 0 : 1;
}

}  // namespace
}  // namespace qsp

int main() { return qsp::Run(); }
