// Ablation for the Figure 5 trade-off: bounding rectangle vs bounding
// polygon vs exact cover. For the same workloads and the same (pair-
// merged) grouping decisions, reports |M| (messages), size(M), U(Q,M) and
// total cost under each procedure — who wins depends on the relative
// price of messages (K_M) vs irrelevant data (K_U), which is the paper's
// point.

#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "merge/pair_merger.h"
#include "util/summary.h"
#include "util/table_printer.h"

namespace qsp {
namespace {

struct ProcedureTotals {
  Summary messages, size, irrelevant, cost;
};

void RunScenario(const char* label, const CostModel& model) {
  std::printf("--- cost model: %s (K_M=%.0f K_T=%.0f K_U=%.1f) ---\n", label,
              model.k_m, model.k_t, model.k_u);

  BoundingRectProcedure rect_proc;
  BoundingPolygonProcedure poly_proc;
  ExactCoverProcedure cover_proc;
  const std::vector<const MergeProcedure*> procedures = {
      &rect_proc, &poly_proc, &cover_proc};

  std::vector<ProcedureTotals> totals(procedures.size());
  const PairMerger merger;
  const int trials = 60;
  const size_t num_queries = 16;

  for (int t = 0; t < trials; ++t) {
    Rng rng(3000 + static_cast<uint64_t>(t));
    QuerySet queries(GenerateQueries(
        bench::Fig16WorkloadConfig(num_queries), &rng));
    UniformDensityEstimator estimator(bench::kFig16Density);

    for (size_t p = 0; p < procedures.size(); ++p) {
      MergeContext ctx(&queries, &estimator, procedures[p]);
      auto outcome = merger.Merge(ctx, model);
      if (!outcome.ok()) continue;
      double messages = 0, size = 0, irrelevant = 0;
      for (const QueryGroup& group : outcome->partition) {
        const GroupStats& stats = ctx.Stats(group);
        messages += stats.messages;
        size += stats.size;
        irrelevant += stats.irrelevant;
      }
      totals[p].messages.Add(messages);
      totals[p].size.Add(size);
      totals[p].irrelevant.Add(irrelevant);
      totals[p].cost.Add(outcome->cost);
    }
  }

  TablePrinter table(
      {"procedure", "|M| (msgs)", "size(M)", "U(Q,M)", "total cost"});
  for (size_t p = 0; p < procedures.size(); ++p) {
    table.AddRow({procedures[p]->name(),
                  std::to_string(totals[p].messages.mean()),
                  std::to_string(totals[p].size.mean()),
                  std::to_string(totals[p].irrelevant.mean()),
                  std::to_string(totals[p].cost.mean())});
  }
  std::printf("%s\n", table.ToText().c_str());
}

void Run() {
  bench::PrintHeader(
      "Figure 5 ablation — merge procedures under the pair merger",
      "Means over 60 workloads of 16 queries (Section 9.1 generator). "
      "Each procedure re-plans with its own merged-size oracle.");

  // Messages expensive, filtering cheap: coarse shapes win.
  RunScenario("message-bound", CostModel{50, 1, 0.5, 0});
  // The paper's adversarial middle ground.
  RunScenario("balanced", bench::Fig16CostModel());
  // Client filtering expensive: exact cover's U=0 wins.
  RunScenario("extraction-bound", CostModel{2, 1, 20, 0});
}

}  // namespace
}  // namespace qsp

int main() {
  qsp::Run();
  return 0;
}
