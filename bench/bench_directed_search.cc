// Ablation for Section 6.2.2: the Directed Search Algorithm's quality /
// cost trade-off as the number of restarts T grows (complexity
// O(|Q|^2 * T)). Quality measured as distance-to-optimal against the
// exact Partition Algorithm on |Q| = 10.

#include <cstdio>

#include "bench/bench_common.h"
#include "merge/directed_search_merger.h"
#include "merge/pair_merger.h"
#include "merge/partition_merger.h"
#include "util/summary.h"
#include "util/table_printer.h"

namespace qsp {
namespace {

void Run() {
  bench::PrintHeader(
      "Directed search — restarts T vs solution quality (Section 6.2.2)",
      "|Q| = 10, Figure 16 workload/constants, 60 trials per row. "
      "T = 0 row is plain pair merging for reference.");

  const CostModel model = bench::Fig16CostModel();
  const PartitionMerger exact;
  const int trials = 60;

  TablePrinter table({"restarts T", "P(optimal) %", "mean distance %",
                      "mean moves evaluated"});

  auto run_row = [&](const char* label, const Merger& merger) {
    int optimal = 0;
    Summary distance, moves;
    for (int t = 0; t < trials; ++t) {
      bench::Instance inst(bench::Fig16WorkloadConfig(10),
                           20000 + static_cast<uint64_t>(t),
                           bench::kFig16Density);
      auto heuristic = merger.Merge(*inst.ctx, model);
      auto optimum = exact.Merge(*inst.ctx, model);
      if (!heuristic.ok() || !optimum.ok()) continue;
      if (heuristic->cost <= optimum->cost + 1e-9) ++optimal;
      distance.Add(100.0 * bench::DistanceToOptimal(
                               heuristic->cost, optimum->cost,
                               model.InitialCost(*inst.ctx)));
      moves.Add(static_cast<double>(heuristic->candidates));
    }
    table.AddRow({label, std::to_string(100.0 * optimal / trials),
                  std::to_string(distance.mean()),
                  std::to_string(moves.mean())});
  };

  const PairMerger pair;
  run_row("0 (pair merging)", pair);
  for (int restarts : {1, 2, 4, 8, 16, 32}) {
    const DirectedSearchMerger directed(restarts, 99);
    run_row(std::to_string(restarts).c_str(), directed);
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "More restarts monotonically buy optimality probability; the knee\n"
      "is early — the paper's choice of a small constant T is justified.\n");
}

}  // namespace
}  // namespace qsp

int main() {
  qsp::Run();
  return 0;
}
