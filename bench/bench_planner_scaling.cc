// Planner scaling sweep (DESIGN.md §8): wall time and exact-evaluation
// counts of the heuristic mergers with the spatial candidate index and
// admissible benefit bounds on versus off, as |Q| grows. The pruned
// planner must return the byte-identical partition and cost — that
// invariant is checked here at every size where both modes run (nonzero
// exit on violation); the payoff columns are the speedup and the shrink
// in exact GroupCost evaluations.
//
//   evals     = MergeOutcome::candidates — exact profit evaluations the
//               merger performed (under pruning: bound refinements only).
//   groups    = MergeContext::groups_evaluated() — distinct groups whose
//               statistics were computed (the memo's size).
//
// `--smoke` runs the small sizes only (CI perf-smoke job).

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "merge/clustering_merger.h"
#include "merge/directed_search_merger.h"
#include "merge/pair_merger.h"
#include "obs/run_report.h"
#include "util/table_printer.h"

namespace qsp {
namespace {

constexpr uint64_t kSeed = 42;

struct Cell {
  std::string merger;
  size_t n = 0;
  bool pruning = false;
  double ms = 0.0;
  double cost = 0.0;
  uint64_t evals = 0;
  size_t groups = 0;
  Partition partition;
};

std::unique_ptr<Merger> Make(const std::string& merger, bool pruning) {
  if (merger == "pair") {
    return std::make_unique<PairMerger>(/*use_heap=*/true, pruning);
  }
  if (merger == "clustering") {
    return std::make_unique<ClusteringMerger>(/*exact_component_limit=*/10,
                                              /*tight_bound=*/true, pruning);
  }
  return std::make_unique<DirectedSearchMerger>(2, kSeed, pruning);
}

bool RunCell(const std::string& merger, size_t n, bool pruning, Cell* cell) {
  bench::Instance inst(bench::Fig16WorkloadConfig(n), kSeed,
                       bench::kFig16Density);
  const CostModel model = bench::Fig16CostModel();
  const auto start = std::chrono::steady_clock::now();
  auto outcome = Make(merger, pruning)->Merge(*inst.ctx, model);
  const auto end = std::chrono::steady_clock::now();
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s n=%zu failed: %s\n", merger.c_str(), n,
                 outcome.status().ToString().c_str());
    return false;
  }
  cell->merger = merger;
  cell->n = n;
  cell->pruning = pruning;
  cell->ms = std::chrono::duration<double, std::milli>(end - start).count();
  cell->cost = outcome->cost;
  cell->evals = outcome->candidates;
  cell->groups = inst.ctx->groups_evaluated();
  cell->partition = std::move(outcome->partition);
  return true;
}

std::string Fmt(double v, const char* format = "%.1f") {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), format, v);
  return buffer;
}

int Run(bool smoke) {
  bench::EnableTelemetryIfReportRequested();

  bench::PrintHeader(
      "Planner scaling — spatial pruning + admissible benefit bounds",
      "Wall time and exact-evaluation counts per merger and |Q|, pruning "
      "off vs on (DESIGN.md 8). The pruned plan must be byte-identical; "
      "speedup and eval shrink are the payoff. Hybrid workload, uniform "
      "estimator, Fig. 16 cost constants.");

  // Sizes per merger: the exhaustive baselines are O(n^2) or worse, so
  // the largest points run pruned-only (that asymmetry is the point).
  struct Sweep {
    std::string merger;
    std::vector<size_t> both;    // run unpruned + pruned, check identity
    std::vector<size_t> pruned;  // pruned-only (baseline intractable)
  };
  std::vector<Sweep> sweeps;
  if (smoke) {
    sweeps = {{"pair", {250, 1000}, {}},
              {"clustering", {250, 1000}, {}},
              {"directed-search", {250}, {}}};
  } else {
    sweeps = {{"pair", {250, 1000, 4000}, {16000}},
              {"clustering", {250, 1000, 4000}, {}},
              {"directed-search", {250}, {}}};
  }

  TablePrinter table({"merger", "|Q|", "pruning", "time ms", "evals",
                      "groups", "speedup", "evals shrink"});
  obs::RunReport report("planner_scaling");
  bool identical = true;
  double pair_speedup_at_4000 = 0.0;
  double pair_shrink_at_4000 = 0.0;

  for (const Sweep& sweep : sweeps) {
    for (const size_t n : sweep.both) {
      Cell off, on;
      if (!RunCell(sweep.merger, n, false, &off)) return 1;
      if (!RunCell(sweep.merger, n, true, &on)) return 1;
      if (on.partition != off.partition || on.cost != off.cost) {
        std::fprintf(stderr,
                     "INVARIANT VIOLATED: pruned plan differs from "
                     "exhaustive plan (%s, n=%zu)\n",
                     sweep.merger.c_str(), n);
        identical = false;
      }
      const double speedup = on.ms > 0.0 ? off.ms / on.ms : 0.0;
      const double shrink =
          on.evals > 0 ? static_cast<double>(off.evals) /
                             static_cast<double>(on.evals)
                       : 0.0;
      table.AddRow({sweep.merger, std::to_string(n), "off", Fmt(off.ms),
                    std::to_string(off.evals), std::to_string(off.groups),
                    "", ""});
      table.AddRow({sweep.merger, std::to_string(n), "on", Fmt(on.ms),
                    std::to_string(on.evals), std::to_string(on.groups),
                    Fmt(speedup, "%.2f"), Fmt(shrink, "%.2f")});
      if (sweep.merger == "pair" && n == 4000) {
        pair_speedup_at_4000 = speedup;
        pair_shrink_at_4000 = shrink;
      }
      const std::string key =
          sweep.merger + ".n" + std::to_string(n);
      report.AddScalar(key + ".off.ms", off.ms);
      report.AddScalar(key + ".off.evals", static_cast<double>(off.evals));
      report.AddScalar(key + ".on.ms", on.ms);
      report.AddScalar(key + ".on.evals", static_cast<double>(on.evals));
      report.AddScalar(key + ".speedup", speedup);
      report.AddScalar(key + ".evals_shrink", shrink);
    }
    for (const size_t n : sweep.pruned) {
      Cell on;
      if (!RunCell(sweep.merger, n, true, &on)) return 1;
      table.AddRow({sweep.merger, std::to_string(n), "on", Fmt(on.ms),
                    std::to_string(on.evals), std::to_string(on.groups),
                    "", ""});
      const std::string key =
          sweep.merger + ".n" + std::to_string(n);
      report.AddScalar(key + ".on.ms", on.ms);
      report.AddScalar(key + ".on.evals", static_cast<double>(on.evals));
    }
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf("Pruned plans identical to exhaustive plans: %s\n",
              identical ? "yes" : "NO");
  if (!smoke) {
    std::printf(
        "pair @ n=4000: %.2fx faster, %.2fx fewer exact evaluations\n",
        pair_speedup_at_4000, pair_shrink_at_4000);
  }

  report.AddText("description",
                 "Planner wall time and exact-evaluation counts, pruning "
                 "off vs on, per merger and query-set size.");
  report.AddBool("plans_identical", identical);
  report.AddBool("smoke", smoke);
  if (!smoke) {
    report.AddScalar("pair_speedup_at_4000", pair_speedup_at_4000);
    report.AddScalar("pair_evals_shrink_at_4000", pair_shrink_at_4000);
  }
  report.AddTable("planner_scaling", table);
  if (obs::Enabled()) report.AddMetrics(obs::MetricRegistry::Default());
  bench::WriteReportIfRequested(report);
  return identical ? 0 : 1;
}

}  // namespace
}  // namespace qsp

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return qsp::Run(smoke);
}
