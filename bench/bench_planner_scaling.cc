// Planner scaling sweep (DESIGN.md §8): wall time and exact-evaluation
// counts of the heuristic mergers with the spatial candidate index and
// admissible benefit bounds on versus off, as |Q| grows. The pruned
// planner must return the byte-identical partition and cost — that
// invariant is checked here at every size where both modes run (nonzero
// exit on violation); the payoff columns are the speedup and the shrink
// in exact GroupCost evaluations.
//
//   evals     = MergeOutcome::candidates — exact profit evaluations the
//               merger performed (under pruning: bound refinements only).
//   groups    = MergeContext::groups_evaluated() — distinct groups whose
//               statistics were computed (the memo's size).
//
// `--smoke` runs the small sizes only (CI perf-smoke job).
//
// `--shards` switches to the sharded-planning matrix (DESIGN.md §12):
// assign x shards x threads over the ShardedPlanner at large |Q|,
// asserting that shards=1 is byte-identical to the unsharded merger and
// that every multi-shard plan costs within 2% of it. `--assign
// grid|balanced` restricts the assignment axis (default: both). The
// fig16-hybrid 16-shard cell is the headline skew number (DESIGN.md
// §13): grid assignment must show estimated-cost imbalance > 4 (one
// cell inherits a whole cluster) where balanced stays < 2, and — on
// machines where timing is meaningful — balanced must be strictly
// faster end-to-end at equal shard/thread counts. `--shards --big` adds
// a single 10^6-query cell. The speedup acceptance (>= 3x at >= 4
// shards and >= 8 threads vs 1x1) engages only on machines with >= 4
// hardware threads; the identity, cost, and imbalance checks always
// run.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "exec/thread_pool.h"
#include "merge/clustering_merger.h"
#include "merge/directed_search_merger.h"
#include "merge/pair_merger.h"
#include "merge/sharded_planner.h"
#include "obs/run_report.h"
#include "util/table_printer.h"

namespace qsp {
namespace {

constexpr uint64_t kSeed = 42;

struct Cell {
  std::string merger;
  size_t n = 0;
  bool pruning = false;
  double ms = 0.0;
  double cost = 0.0;
  uint64_t evals = 0;
  size_t groups = 0;
  Partition partition;
};

std::unique_ptr<Merger> Make(const std::string& merger, bool pruning) {
  if (merger == "pair") {
    return std::make_unique<PairMerger>(/*use_heap=*/true, pruning);
  }
  if (merger == "clustering") {
    return std::make_unique<ClusteringMerger>(/*exact_component_limit=*/10,
                                              /*tight_bound=*/true, pruning);
  }
  return std::make_unique<DirectedSearchMerger>(2, kSeed, pruning);
}

bool RunCell(const std::string& merger, size_t n, bool pruning, Cell* cell) {
  bench::Instance inst(bench::Fig16WorkloadConfig(n), kSeed,
                       bench::kFig16Density);
  const CostModel model = bench::Fig16CostModel();
  const auto start = std::chrono::steady_clock::now();
  auto outcome = Make(merger, pruning)->Merge(*inst.ctx, model);
  const auto end = std::chrono::steady_clock::now();
  if (!outcome.ok()) {
    std::fprintf(stderr, "%s n=%zu failed: %s\n", merger.c_str(), n,
                 outcome.status().ToString().c_str());
    return false;
  }
  cell->merger = merger;
  cell->n = n;
  cell->pruning = pruning;
  cell->ms = std::chrono::duration<double, std::milli>(end - start).count();
  cell->cost = outcome->cost;
  cell->evals = outcome->candidates;
  cell->groups = inst.ctx->groups_evaluated();
  cell->partition = std::move(outcome->partition);
  return true;
}

std::string Fmt(double v, const char* format = "%.1f") {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), format, v);
  return buffer;
}

int Run(bool smoke) {
  bench::EnableTelemetryIfReportRequested();

  bench::PrintHeader(
      "Planner scaling — spatial pruning + admissible benefit bounds",
      "Wall time and exact-evaluation counts per merger and |Q|, pruning "
      "off vs on (DESIGN.md 8). The pruned plan must be byte-identical; "
      "speedup and eval shrink are the payoff. Hybrid workload, uniform "
      "estimator, Fig. 16 cost constants.");

  // Sizes per merger: the exhaustive baselines are O(n^2) or worse, so
  // the largest points run pruned-only (that asymmetry is the point).
  struct Sweep {
    std::string merger;
    std::vector<size_t> both;    // run unpruned + pruned, check identity
    std::vector<size_t> pruned;  // pruned-only (baseline intractable)
  };
  std::vector<Sweep> sweeps;
  if (smoke) {
    sweeps = {{"pair", {250, 1000}, {}},
              {"clustering", {250, 1000}, {}},
              {"directed-search", {250}, {}}};
  } else {
    sweeps = {{"pair", {250, 1000, 4000}, {16000}},
              {"clustering", {250, 1000, 4000}, {}},
              {"directed-search", {250}, {}}};
  }

  TablePrinter table({"merger", "|Q|", "pruning", "time ms", "evals",
                      "groups", "speedup", "evals shrink"});
  obs::RunReport report("planner_scaling");
  bool identical = true;
  double pair_speedup_at_4000 = 0.0;
  double pair_shrink_at_4000 = 0.0;

  for (const Sweep& sweep : sweeps) {
    for (const size_t n : sweep.both) {
      Cell off, on;
      if (!RunCell(sweep.merger, n, false, &off)) return 1;
      if (!RunCell(sweep.merger, n, true, &on)) return 1;
      if (on.partition != off.partition || on.cost != off.cost) {
        std::fprintf(stderr,
                     "INVARIANT VIOLATED: pruned plan differs from "
                     "exhaustive plan (%s, n=%zu)\n",
                     sweep.merger.c_str(), n);
        identical = false;
      }
      const double speedup = on.ms > 0.0 ? off.ms / on.ms : 0.0;
      const double shrink =
          on.evals > 0 ? static_cast<double>(off.evals) /
                             static_cast<double>(on.evals)
                       : 0.0;
      table.AddRow({sweep.merger, std::to_string(n), "off", Fmt(off.ms),
                    std::to_string(off.evals), std::to_string(off.groups),
                    "", ""});
      table.AddRow({sweep.merger, std::to_string(n), "on", Fmt(on.ms),
                    std::to_string(on.evals), std::to_string(on.groups),
                    Fmt(speedup, "%.2f"), Fmt(shrink, "%.2f")});
      if (sweep.merger == "pair" && n == 4000) {
        pair_speedup_at_4000 = speedup;
        pair_shrink_at_4000 = shrink;
      }
      const std::string key =
          sweep.merger + ".n" + std::to_string(n);
      report.AddScalar(key + ".off.ms", off.ms);
      report.AddScalar(key + ".off.evals", static_cast<double>(off.evals));
      report.AddScalar(key + ".on.ms", on.ms);
      report.AddScalar(key + ".on.evals", static_cast<double>(on.evals));
      report.AddScalar(key + ".speedup", speedup);
      report.AddScalar(key + ".evals_shrink", shrink);
    }
    for (const size_t n : sweep.pruned) {
      Cell on;
      if (!RunCell(sweep.merger, n, true, &on)) return 1;
      table.AddRow({sweep.merger, std::to_string(n), "on", Fmt(on.ms),
                    std::to_string(on.evals), std::to_string(on.groups),
                    "", ""});
      const std::string key =
          sweep.merger + ".n" + std::to_string(n);
      report.AddScalar(key + ".on.ms", on.ms);
      report.AddScalar(key + ".on.evals", static_cast<double>(on.evals));
    }
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf("Pruned plans identical to exhaustive plans: %s\n",
              identical ? "yes" : "NO");
  if (!smoke) {
    std::printf(
        "pair @ n=4000: %.2fx faster, %.2fx fewer exact evaluations\n",
        pair_speedup_at_4000, pair_shrink_at_4000);
  }

  report.AddText("description",
                 "Planner wall time and exact-evaluation counts, pruning "
                 "off vs on, per merger and query-set size.");
  report.AddBool("plans_identical", identical);
  report.AddBool("smoke", smoke);
  if (!smoke) {
    report.AddScalar("pair_speedup_at_4000", pair_speedup_at_4000);
    report.AddScalar("pair_evals_shrink_at_4000", pair_shrink_at_4000);
  }
  report.AddTable("planner_scaling", table);
  if (obs::Enabled()) report.AddMetrics(obs::MetricRegistry::Default());
  bench::WriteReportIfRequested(report);
  return identical ? 0 : 1;
}

// ---------------------------------------------------------------------
// --shards: the sharded-planning matrix.

struct ShardCell {
  size_t n = 0;
  ShardAssign assign = ShardAssign::kBalanced;
  int shards = 0;
  int threads = 0;
  double ms = 0.0;
  double cost = 0.0;
  double imbalance = 0.0;
  size_t groups = 0;
  size_t seam_groups = 0;
  size_t seam_merges = 0;
  Partition partition;
};

const char* AssignName(ShardAssign assign) {
  return assign == ShardAssign::kGrid ? "grid" : "balanced";
}

/// The 10^6-query workload. The fig16 hybrid puts ~40% of all queries
/// into each of two clusters only ~3% of the domain wide, so one grid
/// cell inherits the whole cluster and its inner merge never finishes
/// at this scale — spatial sharding needs spatial dispersion to win.
/// The big cell keeps a clustered component but spreads it (df=0.25)
/// and shrinks rects so groups stay interior to 32x32 cells.
QueryGenConfig BigWorkloadConfig(size_t n) {
  QueryGenConfig config = bench::Fig16WorkloadConfig(n);
  config.cf = 0.2;
  config.df = 0.25;
  config.min_extent = 0.002;
  config.max_extent = 0.01;
  return config;
}

/// One (n, shards, threads) cell: fresh instance and context (fair
/// timing, no memo reuse across cells), clustering inner merger (the
/// one whose grid join scales to these sizes).
bool RunShardCell(const QueryGenConfig& workload, ShardAssign assign,
                  int shards, int threads, ShardCell* cell) {
  const size_t n = workload.num_queries;
  exec::SetDefaultThreads(threads);
  bench::Instance inst(workload, kSeed, bench::kFig16Density);
  const CostModel model = bench::Fig16CostModel();
  const ClusteringMerger inner(/*exact_component_limit=*/10,
                               /*tight_bound=*/true, /*pruning=*/true);
  const ShardedPlanner planner(
      &inner, ShardedPlanner::Options{shards, assign, /*pruning=*/true});
  const auto start = std::chrono::steady_clock::now();
  auto outcome = planner.Plan(*inst.ctx, model);
  const auto end = std::chrono::steady_clock::now();
  exec::SetDefaultThreads(1);
  if (!outcome.ok()) {
    std::fprintf(stderr, "assign=%s shards=%d threads=%d n=%zu failed: %s\n",
                 AssignName(assign), shards, threads, n,
                 outcome.status().ToString().c_str());
    return false;
  }
  cell->n = n;
  cell->assign = assign;
  cell->shards = shards;
  cell->threads = threads;
  cell->ms = std::chrono::duration<double, std::milli>(end - start).count();
  cell->cost = outcome->outcome.cost;
  cell->imbalance = outcome->imbalance;
  cell->groups = outcome->outcome.partition.size();
  cell->seam_groups = outcome->seam_groups_in;
  cell->seam_merges = outcome->seam_merges;
  cell->partition = std::move(outcome->outcome.partition);
  return true;
}

int RunShards(bool smoke, bool big, const std::vector<ShardAssign>& assigns) {
  bench::EnableTelemetryIfReportRequested();
  const unsigned hw = std::thread::hardware_concurrency();

  bench::PrintHeader(
      "Sharded parallel planning — assign x shards x threads (DESIGN.md "
      "12-13)",
      "ShardedPlanner over the hybrid workload, clustering inner merger, "
      "pruning on. shards=1 must be byte-identical to the unsharded "
      "merger; every multi-shard plan must cost within 2% of it. The "
      "16-shard cell pins the skew story: grid imbalance > 4 (one cell "
      "inherits a cluster), balanced < 2. Fresh instance per cell.");
  std::printf("hardware threads: %u%s%s\n\n", hw, smoke ? "   [smoke]" : "",
              big ? "   [big]" : "");

  const size_t n = smoke ? 4000 : 100000;
  const std::vector<int> shard_counts =
      smoke ? std::vector<int>{1, 4, 16} : std::vector<int>{1, 4, 16, 64};
  const std::vector<int> thread_counts =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 8};

  TablePrinter table({"|Q|", "assign", "shards", "threads", "time ms",
                      "cost", "imbalance", "groups", "seam in",
                      "seam merges", "speedup"});
  obs::RunReport report("planner_shards");
  int failures = 0;

  // Unsharded reference for the identity and cost-quality checks.
  Cell reference;
  if (!RunCell("clustering", n, /*pruning=*/true, &reference)) return 1;

  double baseline_ms = 0.0;  // shards=1, threads=1 (assign-independent)
  double best_parallel_ms = 0.0;
  int best_shards = 0, best_threads = 0;
  ShardAssign best_assign = ShardAssign::kBalanced;
  // ms per (assign, shards, threads) for the balanced-vs-grid wall-clock
  // comparison at equal shard/thread counts; imbalance at the 16-shard
  // headline cell per assign.
  std::vector<ShardCell> cells;
  for (const ShardAssign assign : assigns) {
    for (const int shards : shard_counts) {
      // shards=1 delegates before assignment runs, so the cell is the
      // same under every assign; run it once.
      if (shards == 1 && assign != assigns.front()) continue;
      for (const int threads : thread_counts) {
        ShardCell cell;
        if (!RunShardCell(bench::Fig16WorkloadConfig(n), assign, shards,
                          threads, &cell)) {
          return 1;
        }
        if (shards == 1) {
          // Delegation must be byte-identical to the plain merger run.
          if (cell.partition != reference.partition ||
              cell.cost != reference.cost) {
            std::fprintf(stderr,
                         "INVARIANT VIOLATED: shards=1 (threads=%d) differs "
                         "from the unsharded plan at n=%zu\n",
                         threads, n);
            ++failures;
          }
          if (threads == 1) baseline_ms = cell.ms;
        } else {
          // Seam reconciliation keeps the plan near the unsharded one.
          if (!(cell.cost <= reference.cost * 1.02)) {
            std::fprintf(stderr,
                         "INVARIANT VIOLATED: assign=%s shards=%d "
                         "threads=%d cost %.6g exceeds unsharded %.6g by "
                         "more than 2%%\n",
                         AssignName(assign), shards, threads, cell.cost,
                         reference.cost);
            ++failures;
          }
          if (shards >= 4 && threads >= thread_counts.back() &&
              (best_parallel_ms == 0.0 || cell.ms < best_parallel_ms)) {
            best_parallel_ms = cell.ms;
            best_shards = shards;
            best_threads = threads;
            best_assign = assign;
          }
        }
        const double speedup =
            (baseline_ms > 0.0 && cell.ms > 0.0) ? baseline_ms / cell.ms
                                                 : 0.0;
        table.AddRow({std::to_string(n), AssignName(cell.assign),
                      std::to_string(shards), std::to_string(threads),
                      Fmt(cell.ms), Fmt(cell.cost, "%.6g"),
                      shards > 1 ? Fmt(cell.imbalance, "%.2f") : "",
                      std::to_string(cell.groups),
                      std::to_string(cell.seam_groups),
                      std::to_string(cell.seam_merges),
                      speedup > 0.0 ? Fmt(speedup, "%.2fx") : ""});
        // Built with append rather than chained operator+ to sidestep a
        // spurious GCC 12 -Wrestrict diagnostic on the inlined concat.
        std::string key = "n";
        key += std::to_string(n);
        key += ".";
        key += AssignName(cell.assign);
        key += ".s";
        key += std::to_string(shards);
        key += ".t";
        key += std::to_string(threads);
        report.AddScalar(key + ".ms", cell.ms);
        report.AddScalar(key + ".cost", cell.cost);
        report.AddScalar(key + ".imbalance", cell.imbalance);
        report.AddScalar(key + ".seam_groups",
                         static_cast<double>(cell.seam_groups));
        cell.partition.clear();
        cells.push_back(std::move(cell));
      }
    }
  }

  // --- Headline skew checks at the 16-shard fig16-hybrid cell
  // (deterministic — the imbalance is a function of the assignment
  // alone, so these run in smoke mode too). Grid sharding drops a whole
  // cluster into one cell (imbalance > 4); balanced bisection splits it
  // (< 2).
  for (const ShardCell& cell : cells) {
    if (cell.shards != 16 || cell.threads != thread_counts.back()) continue;
    if (cell.assign == ShardAssign::kGrid && !(cell.imbalance > 4.0)) {
      std::fprintf(stderr,
                   "FAIL: grid 16-shard imbalance %.2f not > 4.0 — the "
                   "hybrid workload should be skew-bound under the grid\n",
                   cell.imbalance);
      ++failures;
    }
    if (cell.assign == ShardAssign::kBalanced && !(cell.imbalance < 2.0)) {
      std::fprintf(stderr,
                   "FAIL: balanced 16-shard imbalance %.2f not < 2.0\n",
                   cell.imbalance);
      ++failures;
    }
  }
  // Balanced must beat grid end-to-end at equal shard/thread counts —
  // enforced only where timing is meaningful (full run, real
  // parallelism), always printed.
  for (const ShardCell& grid_cell : cells) {
    if (grid_cell.assign != ShardAssign::kGrid || grid_cell.shards <= 1) {
      continue;
    }
    for (const ShardCell& bal_cell : cells) {
      if (bal_cell.assign != ShardAssign::kBalanced ||
          bal_cell.shards != grid_cell.shards ||
          bal_cell.threads != grid_cell.threads) {
        continue;
      }
      const bool faster = bal_cell.ms < grid_cell.ms;
      std::printf("balanced vs grid @ shards=%d threads=%d: %.1f ms vs "
                  "%.1f ms (%s)\n",
                  grid_cell.shards, grid_cell.threads, bal_cell.ms,
                  grid_cell.ms, faster ? "balanced faster" : "GRID FASTER");
      if (!faster && !smoke && hw >= 4 && grid_cell.threads >= 4) {
        std::fprintf(stderr,
                     "FAIL: balanced not faster than grid at shards=%d "
                     "threads=%d\n",
                     grid_cell.shards, grid_cell.threads);
        ++failures;
      }
    }
  }

  // The 10^6-query cell: completion + accounting, no baseline rerun (an
  // unsharded pass at this size is exactly what sharding exists to
  // avoid timing). Runs the dispersed big workload — see
  // BigWorkloadConfig for why the hybrid can't shard at this scale
  // under the grid; balanced assignment is the default here.
  if (big) {
    const size_t big_n = 1000000;
    const int big_shards = 1024;
    const int big_threads = static_cast<int>(hw > 0 ? hw : 1u);
    ShardCell cell;
    if (!RunShardCell(BigWorkloadConfig(big_n), assigns.back(), big_shards,
                      big_threads, &cell)) {
      return 1;
    }
    table.AddRow({std::to_string(big_n), AssignName(cell.assign),
                  std::to_string(big_shards), std::to_string(big_threads),
                  Fmt(cell.ms), Fmt(cell.cost, "%.6g"),
                  Fmt(cell.imbalance, "%.2f"), std::to_string(cell.groups),
                  std::to_string(cell.seam_groups),
                  std::to_string(cell.seam_merges), ""});
    report.AddScalar("big.n1000000.ms", cell.ms);
    report.AddScalar("big.n1000000.cost", cell.cost);
    report.AddScalar("big.n1000000.groups",
                     static_cast<double>(cell.groups));
  }

  std::printf("%s\n", table.ToText().c_str());

  if (!smoke && hw >= 4) {
    const double speedup =
        best_parallel_ms > 0.0 ? baseline_ms / best_parallel_ms : 0.0;
    std::printf(
        "acceptance: best parallel cell (assign=%s, shards=%d, "
        "threads=%d) = %.2fx vs 1x1 (need >= 3x)\n",
        AssignName(best_assign), best_shards, best_threads, speedup);
    report.AddScalar("best_parallel_speedup", speedup);
    if (speedup < 3.0) {
      std::fprintf(stderr, "FAIL: sharded speedup below 3x\n");
      ++failures;
    }
  } else {
    std::printf(
        "acceptance: speedup check skipped (%s — identity, 2%% cost, and "
        "imbalance checks still enforced)\n",
        smoke ? "smoke mode" : "fewer than 4 hardware threads");
  }

  report.AddText("description",
                 "ShardedPlanner assign x shards x threads matrix: wall "
                 "time, plan cost, imbalance, and seam accounting per "
                 "cell.");
  report.AddBool("smoke", smoke);
  report.AddBool("checks_passed", failures == 0);
  report.AddTable("planner_shards", table);
  if (obs::Enabled()) report.AddMetrics(obs::MetricRegistry::Default());
  bench::WriteReportIfRequested(report);
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace qsp

int main(int argc, char** argv) {
  bool smoke = false;
  bool shards = false;
  bool big = false;
  // Default: both assignments, grid first — the table reads old to new
  // and the grid-vs-balanced comparisons need both sides.
  std::vector<qsp::ShardAssign> assigns = {qsp::ShardAssign::kGrid,
                                           qsp::ShardAssign::kBalanced};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    if (std::strcmp(argv[i], "--shards") == 0) shards = true;
    if (std::strcmp(argv[i], "--big") == 0) big = true;
    if (std::strcmp(argv[i], "--assign") == 0 && i + 1 < argc) {
      const char* value = argv[++i];
      if (std::strcmp(value, "grid") == 0) {
        assigns = {qsp::ShardAssign::kGrid};
      } else if (std::strcmp(value, "balanced") == 0) {
        assigns = {qsp::ShardAssign::kBalanced};
      } else {
        std::fprintf(stderr, "unknown --assign '%s'\n", value);
        return 2;
      }
    }
  }
  return shards ? qsp::RunShards(smoke, big, assigns) : qsp::Run(smoke);
}
