// Reproduces the 3-query example of Section 5.1 / Figure 6 / Appendix 1:
// with S = 1, K_M = 10, K_T = 9, K_U = 4, merging all three queries is
// optimal although merging any pair is not — the demonstration that local
// (pairwise) merge decisions are insufficient.

#include <cstdio>

#include "bench/bench_common.h"
#include "merge/directed_search_merger.h"
#include "merge/pair_merger.h"
#include "merge/partition_merger.h"
#include "util/table_printer.h"

namespace qsp {
namespace {

void Run() {
  bench::PrintHeader(
      "Section 5.1 / Figure 6 / Appendix 1 — the 3-query example",
      "S=1, K_M=10, K_T=9, K_U=4; sizes: |q1|=|q2|=2S, |q3|=S, every "
      "merge = 4S.\nPaper's costs: none=3K_M+5K_T=75, pair(q1,q2)=81, "
      "all=K_M+4K_T+7K_U=74.");

  // The Figure 6 arrangement (unit size S = 1).
  QuerySet queries({Rect(0, 1, 2, 2),    // q1 (top bar, size 2)
                    Rect(1, 0, 2, 2),    // q2 (right bar, size 2)
                    Rect(0, 0, 1, 1)});  // q3 (corner square, size 1)
  UniformDensityEstimator estimator(1.0);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);
  const CostModel model{10, 9, 4, 0};

  TablePrinter table({"candidate M", "cost", "paper"});
  table.AddRow({"{q1}{q2}{q3}  (no merging)",
                std::to_string(model.PartitionCost(ctx, SingletonPartition(3))),
                "75"});
  table.AddRow({"{q1,q2}{q3}",
                std::to_string(model.PartitionCost(ctx, {{0, 1}, {2}})),
                "81"});
  table.AddRow({"{q1,q3}{q2}",
                std::to_string(model.PartitionCost(ctx, {{0, 2}, {1}})),
                "see EXPERIMENTS.md"});
  table.AddRow({"{q2,q3}{q1}",
                std::to_string(model.PartitionCost(ctx, {{1, 2}, {0}})),
                "see EXPERIMENTS.md"});
  table.AddRow({"{q1,q2,q3}  (merge all)",
                std::to_string(model.PartitionCost(ctx, {{0, 1, 2}})),
                "74"});
  std::printf("%s\n", table.ToText().c_str());

  PartitionMerger exact;
  PairMerger pair;
  DirectedSearchMerger directed(16, 7);
  auto optimal = exact.Merge(ctx, model);
  auto greedy = pair.Merge(ctx, model);
  auto searched = directed.Merge(ctx, model);

  std::printf("Partition algorithm (exact): cost %.0f, |M| = %zu\n",
              optimal->cost, optimal->partition.size());
  std::printf("Pair merging (greedy):       cost %.0f, |M| = %zu  "
              "<- trapped, as Section 5.1 predicts\n",
              greedy->cost, greedy->partition.size());
  std::printf("Directed search:             cost %.0f, |M| = %zu  "
              "<- escapes the trap\n",
              searched->cost, searched->partition.size());

  std::printf("\nPairwise merge benefits (all must be <= 0):\n");
  std::printf("  benefit(q1,q2) = %.1f\n", model.MergeBenefit(ctx, {0}, {1}));
  std::printf("  benefit(q1,q3) = %.1f\n", model.MergeBenefit(ctx, {0}, {2}));
  std::printf("  benefit(q2,q3) = %.1f\n", model.MergeBenefit(ctx, {1}, {2}));
}

}  // namespace
}  // namespace qsp

int main() {
  qsp::Run();
  return 0;
}
