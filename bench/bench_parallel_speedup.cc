// Parallel speedup of the planner's hottest kernel: profit-table
// construction for the Pair Merging Algorithm (DESIGN.md §7). Times
// PairMerger::EvaluatePairBenefits — all C(n,2) pair benefits of a
// 200-query workload — at 1/2/4/8 threads, and cross-checks the
// determinism contract: every thread count must produce bit-identical
// benefits and an identical final merge plan.
//
// Usage: bench_parallel_speedup [--smoke]
//   --smoke: small instance, one repetition, no speedup assertion — the
//   TSan CI configuration, where the point is exercising the concurrent
//   paths under the race detector, not measuring.
//
// The >= 2x speedup acceptance check at 4 threads only engages on
// hardware with at least 4 cores; on smaller machines (or under
// sanitizers) the bench still verifies equality and prints the table.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "exec/thread_pool.h"
#include "merge/pair_merger.h"
#include "util/table_printer.h"

namespace qsp {
namespace {

struct KernelResult {
  double millis = 0.0;
  std::vector<double> benefits;
  Partition partition;
};

/// One timed profit-table construction (plus a full merge for the
/// plan-equality check) on a fresh context so memoization never carries
/// over between thread counts.
KernelResult RunAtThreads(int threads, size_t num_queries, uint64_t seed,
                          int reps) {
  exec::SetDefaultThreads(threads);
  KernelResult result;
  const CostModel model = bench::Fig16CostModel();
  double best_ms = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    bench::Instance inst(bench::Fig16WorkloadConfig(num_queries), seed,
                         bench::kFig16Density);
    // The kernel's inputs, exactly as MergeFrom builds them for the
    // initial table: singleton groups and all ascending pairs.
    std::vector<QueryGroup> groups = SingletonPartition(num_queries);
    std::vector<double> group_cost(groups.size());
    for (size_t i = 0; i < groups.size(); ++i) {
      group_cost[i] = model.GroupCost(*inst.ctx, groups[i]);
    }
    std::vector<std::pair<size_t, size_t>> pairs;
    pairs.reserve(num_queries * (num_queries - 1) / 2);
    for (size_t i = 0; i < num_queries; ++i) {
      for (size_t j = i + 1; j < num_queries; ++j) pairs.emplace_back(i, j);
    }

    const auto start = std::chrono::steady_clock::now();
    result.benefits = PairMerger::EvaluatePairBenefits(
        *inst.ctx, model, groups, group_cost, pairs);
    const auto end = std::chrono::steady_clock::now();
    const double ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    if (rep == 0 || ms < best_ms) best_ms = ms;
  }
  result.millis = best_ms;

  // Full plan at this thread count, for the equality cross-check.
  bench::Instance inst(bench::Fig16WorkloadConfig(num_queries), seed,
                       bench::kFig16Density);
  const PairMerger merger;
  auto outcome = merger.Merge(*inst.ctx, model);
  if (outcome.ok()) result.partition = outcome->partition;
  exec::SetDefaultThreads(1);
  return result;
}

int Run(bool smoke) {
  const size_t num_queries = smoke ? 40 : 200;
  const int reps = smoke ? 1 : 3;
  const uint64_t seed = 7;
  const unsigned hw = std::thread::hardware_concurrency();

  bench::PrintHeader(
      "Parallel speedup — profit-table construction (qsp::exec)",
      "Kernel: PairMerger::EvaluatePairBenefits over all C(n,2) pairs of "
      "the Section 9.1 hybrid workload, fresh context per run. Identical "
      "benefits and plans are asserted for every thread count.");
  std::printf("queries: %zu   pairs: %zu   hardware threads: %u%s\n\n",
              num_queries, num_queries * (num_queries - 1) / 2, hw,
              smoke ? "   [smoke]" : "");

  const int kThreadCounts[] = {1, 2, 4, 8};
  std::vector<KernelResult> results;
  for (const int threads : kThreadCounts) {
    results.push_back(RunAtThreads(threads, num_queries, seed, reps));
  }

  const KernelResult& serial = results[0];
  int failures = 0;
  for (size_t k = 1; k < results.size(); ++k) {
    if (results[k].benefits != serial.benefits) {
      std::fprintf(stderr,
                   "FAIL: benefits at %d threads differ from serial\n",
                   kThreadCounts[k]);
      ++failures;
    }
    if (results[k].partition != serial.partition) {
      std::fprintf(stderr,
                   "FAIL: merge plan at %d threads differs from serial\n",
                   kThreadCounts[k]);
      ++failures;
    }
  }

  TablePrinter table({"threads", "kernel ms", "speedup vs serial"});
  for (size_t k = 0; k < results.size(); ++k) {
    const double speedup =
        results[k].millis > 0 ? serial.millis / results[k].millis : 0.0;
    char ms_buf[32], sp_buf[32];
    std::snprintf(ms_buf, sizeof(ms_buf), "%.2f", results[k].millis);
    std::snprintf(sp_buf, sizeof(sp_buf), "%.2fx", speedup);
    table.AddRow({std::to_string(kThreadCounts[k]), ms_buf, sp_buf});
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf("determinism: %s\n", failures == 0 ? "OK (bit-identical)"
                                                 : "FAILED");

  if (!smoke && hw >= 4) {
    const double speedup4 = serial.millis / results[2].millis;
    std::printf("acceptance: speedup at 4 threads = %.2fx (need >= 2x)\n",
                speedup4);
    if (speedup4 < 2.0) {
      std::fprintf(stderr, "FAIL: speedup at 4 threads below 2x\n");
      ++failures;
    }
  } else if (!smoke) {
    std::printf(
        "acceptance: skipped (%u hardware threads < 4 — equality checks "
        "still enforced)\n",
        hw);
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace qsp

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  return qsp::Run(smoke);
}
