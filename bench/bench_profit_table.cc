// Implementation ablation: the paper's Profit Table with a full rescan
// per round vs the lazy max-heap over the same benefits inside the Pair
// Merging Algorithm. Identical results by construction (asserted in
// tests); this measures the constant-factor difference.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "merge/pair_merger.h"

namespace qsp {
namespace {

void RunVariant(benchmark::State& state, bool use_heap) {
  const int n = static_cast<int>(state.range(0));
  const CostModel model = bench::Fig16CostModel();
  const PairMerger merger(use_heap);
  uint64_t seed = 1;
  double cost = 0;
  for (auto _ : state) {
    state.PauseTiming();
    bench::Instance inst(bench::Fig16WorkloadConfig(static_cast<size_t>(n)),
                         seed++, bench::kFig16Density);
    state.ResumeTiming();
    auto outcome = merger.Merge(*inst.ctx, model);
    if (outcome.ok()) cost = outcome->cost;
    benchmark::DoNotOptimize(cost);
  }
  state.counters["cost"] = cost;
}

void BM_ProfitTableRescan(benchmark::State& state) {
  RunVariant(state, /*use_heap=*/false);
}

void BM_ProfitTableHeap(benchmark::State& state) {
  RunVariant(state, /*use_heap=*/true);
}

}  // namespace
}  // namespace qsp

BENCHMARK(qsp::BM_ProfitTableRescan)->RangeMultiplier(2)->Range(16, 256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(qsp::BM_ProfitTableHeap)->RangeMultiplier(2)->Range(16, 256)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
