// Future-work ablation (Section 11, "splitting a query between 2
// clients"): after pair merging, the CoverRefiner dissolves merged
// groups whose queries are derivable from other merged answers.
//
// Query splitting only matters for *straddlers*: queries that span the
// seam between two interest areas, so that neither area's merged query
// contains them but their union does (the paper's 0<x<3 / 0<x<4 / x<2
// example). This bench builds a corridor workload — dense blocks of
// queries plus a sweep-controlled fraction of seam-straddling queries —
// and reports how much cover refinement saves over partition-only plans.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "merge/cover_refiner.h"
#include "merge/pair_merger.h"
#include "util/rng.h"
#include "util/summary.h"
#include "util/table_printer.h"

namespace qsp {
namespace {

/// A tall interest area left of the x=50 seam and a short one right of
/// it. Merging the two areas would pay for the large dead corners of
/// their joint bounding box, so pair merging keeps them separate; a
/// straddler crossing the seam inside the right area's y-band is covered
/// by the UNION of the two merged answers while contained in neither —
/// the paper's query-splitting situation.
std::vector<Rect> CorridorWorkload(int per_block, int straddlers, Rng* rng) {
  std::vector<Rect> queries;
  // Seam corridors with *different* y-extents: their joint bounding box
  // would waste 12x40 of dead area, so pair merging keeps them separate,
  // yet together they cover the seam strip [44,56] x [30,70].
  queries.emplace_back(44, 10, 50, 90);  // A: left corridor, tall.
  queries.emplace_back(50, 30, 56, 70);  // B: right corridor, shorter.
  for (int i = 0; i < per_block; ++i) {
    // Left block, kept clear of the seam (x <= 43).
    const double x = rng->UniformDouble(10, 35);
    const double y = rng->UniformDouble(10, 80);
    queries.emplace_back(x, y, x + rng->UniformDouble(3, 8),
                         y + rng->UniformDouble(3, 10));
  }
  for (int i = 0; i < per_block; ++i) {
    // Right block, clear of the seam (x >= 62).
    const double x = rng->UniformDouble(62, 85);
    const double y = rng->UniformDouble(10, 80);
    queries.emplace_back(x, y, x + rng->UniformDouble(3, 8),
                         y + rng->UniformDouble(3, 10));
  }
  for (int i = 0; i < straddlers; ++i) {
    // Inside A ∪ B but in neither: crosses x=50 within both corridors'
    // y-ranges. Merging with A or B alone would stretch that corridor.
    const double y = rng->UniformDouble(46, 60);
    queries.emplace_back(rng->UniformDouble(45, 48), y,
                         rng->UniformDouble(52, 55),
                         y + rng->UniformDouble(2, 4));
  }
  return queries;
}

void Run() {
  bench::PrintHeader(
      "Cover refinement vs partition-only merging (Section 11)",
      "Corridor workload: 2 abutting blocks x 8 queries + N "
      "seam-straddlers; K_M=30, K_T=5, K_U=0.01 (transmission pricey: "
      "merging a straddler would grow a block's bounding box, but "
      "covering it is nearly free); pair merging then CoverRefiner "
      "(covers of <= 2). 40 trials per row.");

  const CostModel model{30.0, 5.0, 0.01, 0.0};
  TablePrinter table({"straddlers", "improved %", "mean saving %",
                      "mean absorbed", "|M| before", "|M| after"});
  const int trials = 40;

  for (int straddlers : {0, 1, 2, 4, 8}) {
    int improved = 0;
    Summary saving, absorbed, before, after;
    for (int t = 0; t < trials; ++t) {
      Rng rng(14000 + static_cast<uint64_t>(100 * straddlers + t));
      QuerySet queries(CorridorWorkload(8, straddlers, &rng));
      UniformDensityEstimator estimator(0.05);
      BoundingRectProcedure procedure;
      MergeContext ctx(&queries, &estimator, &procedure);

      const PairMerger merger;
      auto outcome = merger.Merge(ctx, model);
      if (!outcome.ok()) continue;
      const CoverRefiner refiner;
      const CoverPlan plan = refiner.Refine(ctx, model, outcome->partition);
      if (plan.cost < outcome->cost - 1e-9) ++improved;
      saving.Add(100.0 * (outcome->cost - plan.cost) / outcome->cost);
      absorbed.Add(static_cast<double>(plan.absorbed));
      before.Add(static_cast<double>(outcome->partition.size()));
      after.Add(static_cast<double>(plan.merged.size()));
    }
    table.AddNumericRow({static_cast<double>(straddlers),
                         100.0 * improved / trials, saving.mean(),
                         absorbed.mean(), before.mean(), after.mean()},
                        4);
  }
  std::printf("%s\n", table.ToText().c_str());
  std::printf(
      "Isolated straddlers are where splitting pays: their own messages\n"
      "disappear because two existing merged answers jointly cover them.\n"
      "With no straddlers partitions are already optimal; with many, the\n"
      "combined K_M savings flip the economics and plain pair merging\n"
      "swallows the whole seam region into one group instead.\n");
}

}  // namespace
}  // namespace qsp

int main() {
  qsp::Run();
  return 0;
}
