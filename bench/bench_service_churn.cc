// Live-service churn matrix (DESIGN.md §11): the lease/admission/repair
// loop under crash + late-join churn, across population scales, churn
// intensities, and plan-maintenance policies. Reports per-batch
// maintenance latency percentiles (wall clock — the number the perf
// trajectory gates), final plan cost against a from-scratch yardstick,
// the incremental-vs-fresh evaluation ratio, and the lease/shed/replan
// counters. Exits nonzero if any structural invariant of the maintained
// plan is violated.
//
// `--soak` appends a 100k-subscription cell (the robustness acceptance
// scale); `--seed N` offsets every cell's seed so CI can sweep fault
// seeds.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "obs/run_report.h"
#include "sim/churn.h"
#include "util/table_printer.h"

namespace qsp {
namespace {

struct PolicyCell {
  const char* name;
  LiveServiceConfig service;
  double clock_tick_us = 0.0;
};

std::vector<PolicyCell> Policies() {
  std::vector<PolicyCell> cells;
  {
    PolicyCell greedy{"greedy", {}, 0.0};
    greedy.service.repair_max_moves = -1;
    cells.push_back(greedy);
  }
  {
    PolicyCell repair{"repair", {}, 0.0};
    repair.service.repair_max_moves = 0;
    cells.push_back(repair);
  }
  {
    // The service's realistic steady-state setting: a fixed move budget
    // per batch keeps repair work bounded regardless of population.
    PolicyCell budget{"repair+budget", {}, 0.0};
    budget.service.repair_max_moves = 8;
    cells.push_back(budget);
  }
  {
    // Budgeted repair plus cost-drift replanning — the full loop.
    PolicyCell drift{"repair+replan", {}, 0.0};
    drift.service.repair_max_moves = 8;
    drift.service.replan_drift_factor = 1.25;
    drift.service.drift_check_every_batches = 8;
    cells.push_back(drift);
  }
  return cells;
}

struct Percentiles {
  double p50 = 0.0, p95 = 0.0, max = 0.0;
};

Percentiles LatencyPercentiles(const ChurnOutcome& outcome) {
  std::vector<double> samples;
  samples.reserve(outcome.rounds.size());
  for (const ChurnRoundStats& r : outcome.rounds) {
    samples.push_back(r.wall_batch_us);
  }
  Percentiles p;
  if (samples.empty()) return p;
  std::sort(samples.begin(), samples.end());
  auto at = [&](double q) {
    const size_t i = static_cast<size_t>(
        q * static_cast<double>(samples.size() - 1));
    return samples[i];
  };
  p.p50 = at(0.50);
  p.p95 = at(0.95);
  p.max = samples.back();
  return p;
}

std::string Fixed(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return std::string(buf);
}

std::string Ratio(double num, double den) {
  if (den <= 0.0) return "n/a";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.3fx", num / den);
  return std::string(buf);
}

int Run(bool soak, uint64_t seed_offset) {
  bench::PrintHeader(
      "Live-service churn matrix (DESIGN.md §11)",
      "Leased subscriptions heartbeat against the live service loop while "
      "the fault injector crashes clients (missed heartbeats -> expiry) "
      "and replays late joins. Policies: greedy placement only; repair to "
      "local minimum; repair under a per-batch deadline; repair plus "
      "cost-drift replanning. latency = wall-clock ProcessBatch time.");

  struct Scale {
    size_t subs;
    int rounds;
    size_t arrivals;
    size_t departures;
    size_t check_every;
  };
  std::vector<Scale> scales = {{800, 30, 24, 12, 1}, {4000, 20, 48, 24, 2}};
  if (soak) scales.push_back({100000, 12, 400, 200, 6});

  struct Churn {
    const char* name;
    double crash_rate;
    double late_join_rate;
  };
  const std::vector<Churn> churns = {{"calm", 0.02, 0.3},
                                     {"stormy", 0.15, 0.5}};

  const bool telemetry = bench::EnableTelemetryIfReportRequested();
  TablePrinter table({"subs", "churn", "policy", "final cost", "vs fresh",
                      "evals vs fresh/rd", "sheds", "expired", "replans a/b",
                      "batch p50us", "batch p95us", "batch maxus"});
  bool invariants_ok = true;
  std::string first_violation;

  for (const Scale& scale : scales) {
    for (const Churn& churn : churns) {
      for (const PolicyCell& policy : Policies()) {
        ChurnConfig config;
        config.rounds = scale.rounds;
        config.initial_subs = scale.subs;
        config.arrivals_per_round = scale.arrivals;
        config.departures_per_round = scale.departures;
        config.invariant_check_every = scale.check_every;
        config.fault.crash_rate = churn.crash_rate;
        config.fault.late_join_rate = churn.late_join_rate;
        // At soak scale, only the service's realistic steady-state
        // policy runs (budgeted repair): repair-to-local-minimum is
        // quadratic-ish per batch, and the other policies' behavior is
        // already characterized by the smaller scales above.
        if (scale.subs >= 50000 &&
            std::strcmp(policy.name, "repair+budget") != 0) {
          continue;
        }
        // The from-scratch yardstick is a full pair merge over the final
        // population — superlinear, and well past an hour at 100k. The
        // soak cell's acceptance signal is the structural invariants and
        // the batch-latency percentiles; the vs-fresh ratio is
        // characterized at the smaller scales.
        if (scale.subs >= 50000) config.compare_fresh = false;
        config.service = policy.service;
        config.clock_tick_us = policy.clock_tick_us;
        // Size admission for the cell: batches large enough to absorb a
        // round's churn, queue bounded relative to the population (the
        // shed path is exercised by the unit tests, not the matrix).
        config.service.admission_batch_max =
            std::max<size_t>(256, 2 * scale.arrivals);
        config.service.admission_queue_limit = 2 * scale.subs;
        // Seeding drains in batches too, and every batch pays at least
        // one full repair scan — O(population). At soak scale, let
        // warm-up use bulk batches so the per-batch repair cost lands on
        // the measured steady-state rounds, not on 100+ seeding batches.
        if (scale.subs >= 50000) {
          config.service.admission_batch_max = scale.subs / 4;
        }
        config.query_shape = bench::Fig16WorkloadConfig(1);
        config.seed = 9000 + seed_offset;

        Result<ChurnOutcome> result = RunServiceChurn(config);
        if (!result.ok()) {
          std::fprintf(stderr, "churn run failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        const ChurnOutcome& outcome = result.value();
        if (!outcome.invariants_ok() && invariants_ok) {
          invariants_ok = false;
          first_violation = outcome.invariant_error;
        }
        const Percentiles lat = LatencyPercentiles(outcome);
        if (telemetry) {
          for (const ChurnRoundStats& r : outcome.rounds) {
            obs::Observe("churn.batch.latency_us", r.wall_batch_us);
          }
          obs::SetGauge("churn.final.cost", outcome.final_cost);
          if (outcome.fresh_cost > 0.0) {
            obs::SetGauge("churn.final.drift",
                          outcome.final_cost / outcome.fresh_cost);
          }
        }
        table.AddRow(
            {std::to_string(scale.subs), churn.name, policy.name,
             Fixed(outcome.final_cost),
             Ratio(outcome.final_cost, outcome.fresh_cost),
             // Steady-state maintenance work vs replanning from scratch
             // every round — the paper-facing efficiency claim. Seeding
             // is excluded: every policy pays that bootstrap identically.
             Ratio(static_cast<double>(outcome.maintenance_evals),
                   static_cast<double>(outcome.fresh_evals) *
                       static_cast<double>(scale.rounds)),
             std::to_string(outcome.final_stats.sheds),
             std::to_string(outcome.final_stats.expired),
             std::to_string(outcome.final_stats.replans_adopted) + "/" +
                 std::to_string(outcome.final_stats.replans_abandoned),
             Fixed(lat.p50), Fixed(lat.p95), Fixed(lat.max)});
      }
    }
  }

  std::printf("%s\n", table.ToText().c_str());
  if (!invariants_ok) {
    std::fprintf(stderr, "INVARIANT VIOLATION: %s\n",
                 first_violation.c_str());
  } else {
    std::printf(
        "All structural invariants held (partition covers exactly the live "
        "leases, no duplicate members, maintained cost matches a "
        "recomputation).\n");
  }

  if (telemetry) {
    obs::RunReport report("service_churn");
    report.AddTable("matrix", table);
    report.AddBool("invariants_ok", invariants_ok);
    report.AddBool("soak", soak);
    report.AddMetrics(obs::MetricRegistry::Default());
    bench::WriteReportIfRequested(report);
  }
  return invariants_ok ? 0 : 1;
}

}  // namespace
}  // namespace qsp

int main(int argc, char** argv) {
  bool soak = false;
  uint64_t seed_offset = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--soak") == 0) {
      soak = true;
    } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed_offset = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  return qsp::Run(soak, seed_offset);
}
