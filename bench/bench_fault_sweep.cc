// Fault sweep: effective cost of dissemination under a lossy multicast
// channel. The planner optimizes the lossless cost model; this harness
// measures how much the NACK/retransmission recovery protocol (DESIGN.md
// §6) inflates the bytes actually broadcast as the drop rate grows, for
// two merge algorithms. Losses are recovered with a generous budget
// (max_retx = 12), so every row must still deliver exact answers; the
// interesting output is the inflation column — retransmitted bytes on
// top of the lossless wire traffic the planner costed.
//
// Invariants checked (nonzero exit on violation):
//   - loss = 0 rows produce zero drops/NACKs/retransmissions,
//   - every row ends with all answers exactly correct and no
//     subscription degraded to partial/failed.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "core/subscription_service.h"
#include "obs/run_report.h"
#include "relation/generator.h"
#include "util/rng.h"
#include "util/table_printer.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

struct SweepCell {
  double loss = 0.0;
  std::string merger;
  size_t messages = 0;
  size_t base_bytes = 0;
  size_t retx_bytes = 0;
  double inflation = 1.0;
  size_t drops = 0;
  size_t nacks = 0;
  size_t retx_messages = 0;
  size_t retx_rounds = 0;
  size_t incomplete = 0;
  bool correct = true;
};

std::string Fmt(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.3f", v);
  return buffer;
}

int Run() {
  bench::EnableTelemetryIfReportRequested();

  bench::PrintHeader(
      "Fault sweep — effective cost under a lossy multicast channel",
      "Drop rate x merge algorithm, NACK recovery with max_retx = 12 over "
      "3 rounds. inflation = (base + retx bytes) / base bytes: what the "
      "lossy channel adds on top of the traffic the planner costed.");

  const Rect domain(0, 0, 1000, 1000);
  const size_t kNumClients = 64;
  const int kRounds = 3;
  const std::vector<double> kLossRates = {0.0, 0.05, 0.1, 0.2, 0.3};
  const std::vector<std::pair<MergerKind, std::string>> kMergers = {
      {MergerKind::kPairMerging, "pair"},
      {MergerKind::kClustering, "clustering"},
  };

  TablePrinter table({"loss", "merger", "|M|/round", "base bytes",
                      "retx bytes", "inflation", "nacks", "retx msgs",
                      "incomplete", "correct"});
  std::vector<SweepCell> cells;
  bool ok = true;

  for (const auto& [merger, merger_name] : kMergers) {
    for (const double loss : kLossRates) {
      Rng rng(9000);
      TableGeneratorConfig tconfig;
      tconfig.domain = domain;
      tconfig.num_objects = 10000;
      tconfig.clustered_fraction = 0.5;
      Table data = GenerateTable(tconfig, &rng);

      ServiceConfig config;
      config.cost_model = bench::Fig16CostModel();
      config.merger = merger;
      config.procedure = ProcedureKind::kBoundingRect;
      config.estimator = EstimatorKind::kExact;
      config.fault.drop_rate = loss;
      config.fault.max_retx = 12;
      config.fault.seed = 0xFA575EED;
      SubscriptionService service(std::move(data), domain, config);

      QueryGenConfig qconfig = bench::Fig16WorkloadConfig(kNumClients);
      qconfig.domain = domain;
      Rng qrng(9100);
      for (const Rect& rect : GenerateQueries(qconfig, &qrng)) {
        service.Subscribe(service.AddClient(), rect);
      }

      auto plan = service.Plan();
      if (!plan.ok()) {
        std::fprintf(stderr, "plan failed: %s\n",
                     plan.status().ToString().c_str());
        return 1;
      }

      SweepCell cell;
      cell.loss = loss;
      cell.merger = merger_name;
      for (int round = 0; round < kRounds; ++round) {
        auto stats = service.RunRound();
        if (!stats.ok()) {
          std::fprintf(stderr, "round failed: %s\n",
                       stats.status().ToString().c_str());
          return 1;
        }
        cell.messages = stats->num_messages;
        cell.base_bytes += stats->header_bytes + stats->payload_bytes;
        cell.retx_bytes += stats->retx_bytes;
        cell.drops += stats->drops;
        cell.nacks += stats->nacks;
        cell.retx_messages += stats->retx_messages;
        cell.retx_rounds += stats->retx_rounds;
        cell.incomplete += stats->incomplete_answers;
        cell.correct = cell.correct && stats->all_answers_correct;
      }
      cell.inflation =
          cell.base_bytes == 0
              ? 1.0
              : static_cast<double>(cell.base_bytes + cell.retx_bytes) /
                    static_cast<double>(cell.base_bytes);
      cells.push_back(cell);

      if (loss == 0.0 &&
          (cell.drops != 0 || cell.nacks != 0 || cell.retx_messages != 0)) {
        std::fprintf(stderr,
                     "INVARIANT VIOLATED: loss=0 produced recovery traffic "
                     "(%s)\n",
                     merger_name.c_str());
        ok = false;
      }
      if (!cell.correct || cell.incomplete != 0) {
        std::fprintf(stderr,
                     "INVARIANT VIOLATED: answers degraded at loss=%.2f "
                     "despite max_retx=12 (%s)\n",
                     loss, merger_name.c_str());
        ok = false;
      }

      table.AddRow({Fmt(cell.loss), cell.merger,
                    std::to_string(cell.messages),
                    std::to_string(cell.base_bytes),
                    std::to_string(cell.retx_bytes), Fmt(cell.inflation),
                    std::to_string(cell.nacks),
                    std::to_string(cell.retx_messages),
                    std::to_string(cell.incomplete),
                    cell.correct ? "yes" : "NO"});
    }
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf("All invariants hold: %s\n", ok ? "yes" : "NO");

  obs::RunReport report("fault_sweep");
  report.AddText("description",
                 "Effective-cost inflation of NACK-based recovery on a "
                 "lossy multicast channel, per drop rate and merger.");
  report.AddBool("all_invariants_hold", ok);
  report.AddScalar("max_retx", 12);
  report.AddScalar("rounds_per_cell", kRounds);
  report.AddTable("fault_sweep", table);
  if (obs::Enabled()) report.AddMetrics(obs::MetricRegistry::Default());
  bench::WriteReportIfRequested(report);
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace qsp

int main() { return qsp::Run(); }
