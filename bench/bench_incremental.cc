// Future-work ablation (Section 11, "a new query arrives — can we
// incrementally compute a new partition?"): IncrementalMerger vs
// re-running the Pair Merging Algorithm from scratch after every
// arrival. Reports the cost gap and the group-evaluation work of both,
// plus the effect of periodic Repair passes.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "merge/incremental_merger.h"
#include "merge/pair_merger.h"
#include "util/summary.h"
#include "util/table_printer.h"

namespace qsp {
namespace {

void Run() {
  bench::PrintHeader(
      "Incremental merging vs from-scratch (future work, Section 11)",
      "Queries arrive one at a time. 'scratch' re-runs pair merging on "
      "every arrival; 'incremental' places the new query greedily; "
      "'incr+repair' also runs a local-search repair every 8 arrivals. "
      "Work = merged-group cost evaluations.");

  const CostModel model = bench::Fig16CostModel();
  const int trials = 30;
  const size_t stream_length = 48;

  Summary scratch_cost, incr_cost, repair_cost;
  Summary scratch_work, incr_work, repair_work;

  for (int t = 0; t < trials; ++t) {
    Rng rng(7000 + static_cast<uint64_t>(t));
    const auto rects =
        GenerateQueries(bench::Fig16WorkloadConfig(stream_length), &rng);

    QuerySet queries;
    UniformDensityEstimator estimator(bench::kFig16Density);
    BoundingRectProcedure procedure;
    MergeContext ctx(&queries, &estimator, &procedure);

    IncrementalMerger incremental(&ctx, model);
    IncrementalMerger repaired(&ctx, model);
    const PairMerger scratch;

    uint64_t scratch_evaluations = 0;
    double final_scratch_cost = 0;
    for (size_t i = 0; i < rects.size(); ++i) {
      const QueryId id = queries.Add(rects[i]);
      incremental.AddQuery(id);
      repaired.AddQuery(id);
      if ((i + 1) % 8 == 0) repaired.Repair();
      auto outcome = scratch.Merge(ctx, model);
      if (outcome.ok()) {
        scratch_evaluations += outcome->candidates;
        final_scratch_cost = outcome->cost;
      }
    }
    repaired.Repair();

    scratch_cost.Add(final_scratch_cost);
    incr_cost.Add(incremental.cost());
    repair_cost.Add(repaired.cost());
    scratch_work.Add(static_cast<double>(scratch_evaluations));
    incr_work.Add(static_cast<double>(incremental.evaluations()));
    repair_work.Add(static_cast<double>(repaired.evaluations()));
  }

  TablePrinter table({"strategy", "final cost (mean)", "evals (mean)",
                      "cost vs scratch"});
  auto ratio = [&](double c) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.3fx", c / scratch_cost.mean());
    return std::string(buf);
  };
  table.AddRow({"scratch pair-merge each arrival",
                std::to_string(scratch_cost.mean()),
                std::to_string(scratch_work.mean()), "1.000x"});
  table.AddRow({"incremental (greedy place)",
                std::to_string(incr_cost.mean()),
                std::to_string(incr_work.mean()), ratio(incr_cost.mean())});
  table.AddRow({"incremental + repair every 8",
                std::to_string(repair_cost.mean()),
                std::to_string(repair_work.mean()),
                ratio(repair_cost.mean())});
  std::printf("%s\n", table.ToText().c_str());
}

}  // namespace
}  // namespace qsp

int main() {
  qsp::Run();
  return 0;
}
