// Figure 17: distance of the Pair Merging solution to the optimal one,
//   (Cost_heuristic - Cost_optimum) / (Cost_initial - Cost_optimum),
// vs |Q| = 3..12. The paper reports an average of ~0.6343%.

#include <cstdio>

#include "bench/bench_common.h"
#include "merge/pair_merger.h"
#include "merge/partition_merger.h"
#include "util/summary.h"
#include "util/table_printer.h"

namespace qsp {
namespace {

void Run() {
  bench::EnableTelemetryIfReportRequested();
  bench::PrintHeader(
      "Figure 17 — distance of pair merging to the optimal solution vs |Q|",
      "Metric: (C_heur - C_opt) / (C_init - C_opt); 0% = optimal, "
      "100% = no better than not merging. Same workload/constants as "
      "Figure 16.");

  const CostModel model = bench::Fig16CostModel();
  const PairMerger pair;
  const PartitionMerger exact;

  TablePrinter table({"|Q|", "trials", "mean distance %", "max distance %"});
  Summary overall;

  for (int n = 3; n <= 12; ++n) {
    const int trials = bench::Fig16Trials(n);
    Summary distance;
    for (int t = 0; t < trials; ++t) {
      bench::Instance inst(bench::Fig16WorkloadConfig(n),
                           1000 * static_cast<uint64_t>(n) + t,
                           bench::kFig16Density);
      auto greedy = pair.Merge(*inst.ctx, model);
      auto optimal = exact.Merge(*inst.ctx, model);
      if (!greedy.ok() || !optimal.ok()) continue;
      const double initial = model.InitialCost(*inst.ctx);
      distance.Add(100.0 * bench::DistanceToOptimal(greedy->cost,
                                                    optimal->cost, initial));
    }
    overall.Add(distance.mean());
    table.AddNumericRow({static_cast<double>(n),
                         static_cast<double>(trials), distance.mean(),
                         distance.max()},
                        4);
  }

  std::printf("%s\n", table.ToText().c_str());
  std::printf("Average over |Q| points: %.4f%%   (paper: ~0.6343%%)\n",
              overall.mean());

  obs::RunReport report("fig17");
  report.AddScalar("avg_distance_pct", overall.mean());
  report.AddTable("distance_vs_q", table);
  report.AddMetrics(obs::MetricRegistry::Default());
  bench::WriteReportIfRequested(report);
}

}  // namespace
}  // namespace qsp

int main() {
  qsp::Run();
  return 0;
}
