// Ablation: wall-clock scaling of the merging algorithms of Section 6 —
// the O(Bell(n)) partition search vs the O(n^2) heuristics — validating
// the complexity claims. Also reports solution cost as a counter so the
// time/quality trade-off is visible in one run.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "merge/clustering_merger.h"
#include "merge/directed_search_merger.h"
#include "merge/pair_merger.h"
#include "merge/partition_merger.h"

namespace qsp {
namespace {

bench::Instance MakeInstance(int n, uint64_t seed) {
  return bench::Instance(bench::Fig16WorkloadConfig(static_cast<size_t>(n)),
                         seed, bench::kFig16Density);
}

template <typename MergerT>
void RunMerger(benchmark::State& state, const MergerT& merger) {
  const int n = static_cast<int>(state.range(0));
  const CostModel model = bench::Fig16CostModel();
  double last_cost = 0.0;
  uint64_t seed = 1;
  for (auto _ : state) {
    state.PauseTiming();
    // Fresh instance per iteration: the context memoization would
    // otherwise let later iterations ride the first one's cache.
    bench::Instance inst = MakeInstance(n, seed++);
    state.ResumeTiming();
    auto outcome = merger.Merge(*inst.ctx, model);
    if (outcome.ok()) last_cost = outcome->cost;
    benchmark::DoNotOptimize(last_cost);
  }
  state.counters["cost"] = last_cost;
}

void BM_PartitionExact(benchmark::State& state) {
  RunMerger(state, PartitionMerger());
}

void BM_PairMerging(benchmark::State& state) {
  RunMerger(state, PairMerger());
}

void BM_PairMergingNoHeap(benchmark::State& state) {
  RunMerger(state, PairMerger(false));
}

void BM_DirectedSearch(benchmark::State& state) {
  RunMerger(state, DirectedSearchMerger(8, 42));
}

void BM_Clustering(benchmark::State& state) {
  RunMerger(state, ClusteringMerger());
}

}  // namespace
}  // namespace qsp

BENCHMARK(qsp::BM_PartitionExact)->DenseRange(4, 12, 2)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(qsp::BM_PairMerging)->RangeMultiplier(2)->Range(8, 256)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(qsp::BM_PairMergingNoHeap)->RangeMultiplier(2)->Range(8, 128)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(qsp::BM_DirectedSearch)->RangeMultiplier(2)->Range(8, 64)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(qsp::BM_Clustering)->RangeMultiplier(2)->Range(8, 128)
    ->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
