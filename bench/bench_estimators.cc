// Ablation: how size-estimation error propagates into plan quality on
// non-uniform object spaces (Section 11's "non uniform object space").
// Plans are produced under each estimator, then every plan is re-costed
// with the exact estimator — the gap is the price of estimation error.

#include <cstdio>
#include <memory>

#include "bench/bench_common.h"
#include "merge/pair_merger.h"
#include "relation/generator.h"
#include "relation/grid_index.h"
#include "stats/equi_depth_estimator.h"
#include "stats/exact_estimator.h"
#include "stats/histogram_estimator.h"
#include "stats/sampling_estimator.h"
#include "util/summary.h"
#include "util/table_printer.h"

namespace qsp {
namespace {

void Run() {
  bench::PrintHeader(
      "Estimator ablation — plan quality under estimation error",
      "Clustered object space (90% of objects in 4 Gaussian clusters). "
      "Each estimator plans with pair merging; every plan is re-costed "
      "with exact cardinalities. Lower true cost = better plan.");

  const CostModel model{10.0, 1.0, 1.0, 0.0};
  const int trials = 25;

  Summary uniform_true, hist_true, equi_true, sample_true, exact_true;

  for (int t = 0; t < trials; ++t) {
    Rng rng(8000 + static_cast<uint64_t>(t));
    const Rect domain(0, 0, 1000, 1000);

    TableGeneratorConfig tconfig;
    tconfig.domain = domain;
    tconfig.num_objects = 20000;
    tconfig.clustered_fraction = 0.9;
    tconfig.num_clusters = 4;
    tconfig.cluster_spread = 0.04;
    tconfig.payload_fields = 0;
    Table table = GenerateTable(tconfig, &rng);
    GridIndex index(table, domain);

    QueryGenConfig qconfig = bench::Fig16WorkloadConfig(20);
    QuerySet queries(GenerateQueries(qconfig, &rng));

    UniformDensityEstimator uniform(
        static_cast<double>(tconfig.num_objects), domain);
    HistogramEstimator histogram(table, domain, 32, 32);
    EquiDepthEstimator equi_depth(table, 32);
    SamplingEstimator sampling(table, 0.05, 77);
    ExactEstimator exact(&index);
    BoundingRectProcedure procedure;

    MergeContext exact_ctx(&queries, &exact, &procedure);
    const PairMerger merger;

    auto plan_with = [&](const SizeEstimator* estimator) {
      MergeContext ctx(&queries, estimator, &procedure);
      auto outcome = merger.Merge(ctx, model);
      // Re-cost the chosen partition with ground truth.
      return model.PartitionCost(exact_ctx, outcome->partition);
    };

    uniform_true.Add(plan_with(&uniform));
    hist_true.Add(plan_with(&histogram));
    equi_true.Add(plan_with(&equi_depth));
    sample_true.Add(plan_with(&sampling));
    exact_true.Add(plan_with(&exact));
  }

  TablePrinter table({"estimator", "true cost of its plan (mean)",
                      "overhead vs exact"});
  auto pct = [&](double c) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "+%.2f%%",
                  100.0 * (c / exact_true.mean() - 1.0));
    return std::string(buf);
  };
  table.AddRow({"uniform density", std::to_string(uniform_true.mean()),
                pct(uniform_true.mean())});
  table.AddRow({"2-D histogram 32x32", std::to_string(hist_true.mean()),
                pct(hist_true.mean())});
  table.AddRow({"equi-depth marginals 32", std::to_string(equi_true.mean()),
                pct(equi_true.mean())});
  table.AddRow({"5% Bernoulli sample", std::to_string(sample_true.mean()),
                pct(sample_true.mean())});
  table.AddRow({"exact (oracle)", std::to_string(exact_true.mean()),
                "+0.00%"});
  std::printf("%s\n", table.ToText().c_str());
}

}  // namespace
}  // namespace qsp

int main() {
  qsp::Run();
  return 0;
}
