#include "exec/thread_pool.h"

#include <algorithm>
#include <memory>

#include "util/status.h"

namespace qsp {
namespace exec {

namespace {

/// Worker identity for nested-region detection: set for the lifetime of a
/// worker thread to the pool that owns it.
thread_local const ThreadPool* t_owner_pool = nullptr;

}  // namespace

/// Shared state of one ParallelFor call. Workers pull contiguous grains
/// of indices through `next` and report completion through `done`; the
/// submitting thread participates too and then waits for the stragglers.
/// Heap-allocated and shared so a worker that wakes after the region
/// completed still holds valid memory (it finds the cursor exhausted and
/// goes back to sleep); `seq` distinguishes regions so such a worker
/// never re-enters one it already drained.
struct ThreadPool::Region {
  uint64_t seq = 0;
  size_t n = 0;
  size_t grain = 1;
  const std::function<void(size_t)>* body = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<size_t> done{0};
  std::mutex done_mu;
  std::condition_variable done_cv;

  /// Runs grains until the cursor passes n.
  ///
  /// Lifetime note: `body` points into the submitting ParallelFor frame.
  /// That frame only returns once done == n, and done can only reach n
  /// after every index claimed from the cursor has run, so any Drain()
  /// that claims indices does so while the frame is still alive; a Drain()
  /// arriving late claims nothing and never touches `body`.
  void Drain() {
    while (true) {
      const size_t begin = next.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= n) return;
      const size_t end = std::min(n, begin + grain);
      for (size_t i = begin; i < end; ++i) (*body)(i);
      const size_t finished =
          done.fetch_add(end - begin, std::memory_order_acq_rel) +
          (end - begin);
      if (finished == n) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(int num_threads) {
  QSP_CHECK(num_threads >= 1);
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::WorkerLoop() {
  t_owner_pool = this;
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t last_seq = 0;
  while (true) {
    work_cv_.wait(lock, [&] {
      return shutdown_ || (region_ != nullptr && region_->seq != last_seq);
    });
    if (shutdown_) return;
    const std::shared_ptr<Region> region = region_;
    last_seq = region->seq;
    lock.unlock();
    region->Drain();
    lock.lock();
  }
}

bool ThreadPool::InWorker() const { return t_owner_pool == this; }

void ThreadPool::ParallelFor(size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  // From inside one of our own workers (a nested parallel region), run
  // serially: the outer region already owns the pool's capacity, and
  // blocking a worker on its own pool would deadlock.
  if (InWorker() || n == 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  auto region = std::make_shared<Region>();
  region->n = n;
  // Grains large enough to amortize the cursor, small enough to balance
  // uneven work: ~4 grains per thread (workers + the calling thread).
  const size_t parts = (workers_.size() + 1) * 4;
  region->grain = std::max<size_t>(1, (n + parts - 1) / parts);
  region->body = &body;

  {
    std::lock_guard<std::mutex> lock(mu_);
    region->seq = ++region_seq_;
    region_ = region;
  }
  work_cv_.notify_all();
  region->Drain();  // The calling thread is a worker too.
  {
    std::unique_lock<std::mutex> done_lock(region->done_mu);
    region->done_cv.wait(done_lock, [&] {
      return region->done.load(std::memory_order_acquire) == n;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    region_.reset();
  }
}

/// ------------------------------------------------------- default executor

namespace {

int g_default_threads = 1;
std::unique_ptr<ThreadPool> g_default_pool;

}  // namespace

int DefaultThreads() { return g_default_threads; }

void SetDefaultThreads(int n) {
  const int threads = std::max(1, n);
  if (threads == g_default_threads) return;
  g_default_pool.reset();
  if (threads > 1) g_default_pool = std::make_unique<ThreadPool>(threads);
  g_default_threads = threads;
}

ThreadPool* DefaultPool() { return g_default_pool.get(); }

void ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  ThreadPool* pool = DefaultPool();
  if (pool == nullptr) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  pool->ParallelFor(n, body);
}

}  // namespace exec
}  // namespace qsp
