#ifndef QSP_EXEC_THREAD_POOL_H_
#define QSP_EXEC_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"

namespace qsp {
namespace exec {

/// Fixed-size worker pool backing the planner's embarrassingly-parallel
/// loops (profit-table construction, clustering bounds, search restarts,
/// per-channel broadcast). The pool itself only runs opaque tasks; the
/// determinism contract lives in ParallelFor/ParallelMap below, which
/// address all work by index and leave every reduction to the caller, so
/// results never depend on thread scheduling.
///
/// Workers are started once and parked on a condition variable between
/// parallel regions. Tasks must not throw (the library reports errors via
/// Status, never exceptions).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers. Must be >= 1; note that a pool of
  /// size 1 still runs tasks on its single worker thread — callers that
  /// want the serial fast path should not construct a pool at all (see
  /// SetDefaultThreads).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs body(i) for every i in [0, n) across the workers plus the
  /// calling thread, returning when all n indices completed. Indices are
  /// handed out in contiguous grains via an atomic cursor; which thread
  /// runs which grain is unspecified, so `body` must only write to
  /// locations addressed by its index (or otherwise synchronized).
  void ParallelFor(size_t n, const std::function<void(size_t)>& body);

  /// True when the calling thread is one of this pool's workers. Used to
  /// run nested parallel regions serially instead of deadlocking on the
  /// pool's own capacity.
  bool InWorker() const;

 private:
  struct Region;  // One ParallelFor's shared state.

  // Suppressed from the thread-safety analysis: the worker loop hands
  // mu_ back and forth through a condition-variable wait predicate and
  // an explicit unlock/relock around Drain(), a handoff the analysis
  // cannot follow (DESIGN.md §9). The lock discipline is covered by the
  // TSan CI job instead.
  void WorkerLoop() QSP_NO_THREAD_SAFETY_ANALYSIS;

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  // Non-null while a region runs. shared_ptr so a worker waking after
  // completion still dereferences valid memory.
  std::shared_ptr<Region> region_ QSP_GUARDED_BY(mu_);
  uint64_t region_seq_ QSP_GUARDED_BY(mu_) = 0;
  bool shutdown_ QSP_GUARDED_BY(mu_) = false;
};

/// ------------------------------------------------------- default executor
///
/// The process-wide pool the planner's loops use, configured by
/// ServiceConfig::threads (see SubscriptionService). Thread count 1 — the
/// default — means "no pool": every ParallelFor below degenerates to the
/// plain serial loop, preserving the pre-exec behavior byte for byte
/// (identical evaluation order, identical memo-cache fill order).

/// Configured parallelism (>= 1). 1 until SetDefaultThreads is called.
int DefaultThreads();

/// Sets the process-wide parallelism. n <= 1 tears the pool down and
/// restores the serial path; n > 1 (re)builds a pool of n threads. Not
/// safe to call concurrently with running parallel regions — configure
/// before planning, as SubscriptionService does.
void SetDefaultThreads(int n);

/// The default pool, or nullptr when running serially.
ThreadPool* DefaultPool();

/// Runs body(i) for i in [0, n): on the default pool when one is
/// configured, serially (ascending i, on the calling thread) otherwise.
/// Nested calls from inside a pool worker always run serially.
void ParallelFor(size_t n, const std::function<void(size_t)>& body);

/// Maps [0, n) through fn into a vector whose element i is fn(i) —
/// deterministic result ordering by construction, regardless of which
/// thread computed which element. T must be default-constructible.
template <typename T, typename Fn>
std::vector<T> ParallelMap(size_t n, Fn&& fn) {
  std::vector<T> results(n);
  ParallelFor(n, [&](size_t i) { results[i] = fn(i); });
  return results;
}

}  // namespace exec
}  // namespace qsp

#endif  // QSP_EXEC_THREAD_POOL_H_
