#include "exec/periodic.h"

#include <utility>

namespace qsp {
namespace exec {

void PeriodicTask::Start(uint64_t interval_ms, std::function<void()> fn) {
  if (interval_ms == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (thread_.joinable()) return;
  stop_ = false;
  trigger_ = false;
  thread_ = std::thread(&PeriodicTask::Loop, this, interval_ms,
                        std::move(fn));
}

void PeriodicTask::Stop() {
  std::thread worker;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    stop_ = true;
    worker = std::move(thread_);
  }
  cv_.notify_all();
  worker.join();
}

void PeriodicTask::TriggerNow() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!thread_.joinable()) return;
    trigger_ = true;
  }
  cv_.notify_all();
}

void PeriodicTask::Loop(uint64_t interval_ms, std::function<void()> fn) {
  const auto interval = std::chrono::milliseconds(interval_ms);
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    // Wait out one interval, but wake early for Stop or TriggerNow.
    cv_.wait_for(lock, interval, [this] { return stop_ || trigger_; });
    if (stop_) return;
    trigger_ = false;
    lock.unlock();
    fn();
    lock.lock();
    if (stop_) return;
  }
}

}  // namespace exec
}  // namespace qsp
