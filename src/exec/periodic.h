#ifndef QSP_EXEC_PERIODIC_H_
#define QSP_EXEC_PERIODIC_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>

#include "util/thread_annotations.h"

namespace qsp {
namespace exec {

/// Runs a callback at a fixed interval on a dedicated background thread.
/// The service-mode substrate: the obs::PeriodicSampler drives its
/// metric sampling through one of these. A dedicated thread (rather than
/// a ThreadPool task) because the pool's workers are sized for the
/// planner's parallel loops and a sleeper would pin one for the process
/// lifetime.
///
/// Start() spawns the thread; Stop() wakes it and joins. The callback
/// runs once per interval, not at all before the first interval elapses,
/// and never concurrently with itself. Destruction stops the task.
/// Thread-safe: Start/Stop/TriggerNow may be called from any thread, but
/// concurrent Start calls are a caller bug.
class PeriodicTask {
 public:
  PeriodicTask() = default;
  ~PeriodicTask() { Stop(); }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;

  /// Begins invoking `fn` every `interval_ms` milliseconds. No-op if the
  /// task is already running or interval_ms == 0.
  void Start(uint64_t interval_ms, std::function<void()> fn);

  /// Stops the background thread (waits for an in-flight callback to
  /// finish). Safe to call when not running.
  void Stop();

  /// Wakes the thread to run the callback immediately (test hook; also
  /// resets the interval timer). No-op when not running.
  void TriggerNow();

  bool running() const {
    std::lock_guard<std::mutex> lock(mu_);
    return thread_.joinable();
  }

 private:
  void Loop(uint64_t interval_ms, std::function<void()> fn);

  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ QSP_GUARDED_BY(mu_) = false;
  bool trigger_ QSP_GUARDED_BY(mu_) = false;
  std::thread thread_ QSP_GUARDED_BY(mu_);
};

}  // namespace exec
}  // namespace qsp

#endif  // QSP_EXEC_PERIODIC_H_
