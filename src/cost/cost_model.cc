#include "cost/cost_model.h"

namespace qsp {

CostModel CostModel::FromComponents(double k1, double k2, double k3,
                                    double k4, double k5, double k6,
                                    int num_clients) {
  CostModel model;
  model.k_m = k1 + k6 * static_cast<double>(num_clients) + k4;
  model.k_t = k2 + k3;
  model.k_u = k5;
  model.k_d = 0.0;
  return model;
}

CostModel CostModel::FromComponentsMultiChannel(double k1, double k2,
                                                double k3, double k4,
                                                double k5, double k6) {
  CostModel model;
  model.k_m = k1 + k4;
  model.k_t = k2 + k3;
  model.k_u = k5;
  model.k_d = 0.0;
  model.k_check = k6;
  return model;
}

double CostModel::GroupCost(const MergeContext& ctx,
                            const QueryGroup& group) const {
  return GroupCost(ctx.Stats(group));
}

double CostModel::PartitionCost(const MergeContext& ctx,
                                const Partition& partition) const {
  double total = 0.0;
  for (const QueryGroup& group : partition) total += GroupCost(ctx, group);
  return total;
}

double CostModel::InitialCost(const MergeContext& ctx) const {
  double total = 0.0;
  for (QueryId id = 0; id < ctx.num_queries(); ++id) {
    total += k_m + k_t * ctx.Size(id);
  }
  return total;
}

double CostModel::MergeBenefit(const MergeContext& ctx, const QueryGroup& a,
                               const QueryGroup& b) const {
  const QueryGroup merged = UnionGroups(a, b);
  return GroupCost(ctx, a) + GroupCost(ctx, b) - GroupCost(ctx, merged);
}

bool CostModel::TwoQueryMergeBeneficial(double s1, double s2,
                                        double s3) const {
  return k_m + k_t * (s1 + s2 - s3) + k_u * (s1 + s2 - 2.0 * s3) > 0.0;
}

}  // namespace qsp
