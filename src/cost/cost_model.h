#ifndef QSP_COST_COST_MODEL_H_
#define QSP_COST_COST_MODEL_H_

#include "query/merge_context.h"  // qsp-lint: allow(layer-back-edge) cost prices merge decisions over query groups; co-designed with query (PAPER.md §4), split deliberately not taken
#include "query/query.h"  // qsp-lint: allow(layer-back-edge) cost is keyed by QueryId/QuerySet; co-designed with query, see note above

namespace qsp {

/// The paper's total cost model (Section 4):
///
///   Cost_total = K_M * |M| + K_T * size(M) + K_U * U(Q, M)
///
/// where K_M aggregates per-merged-query overheads (server per-query cost
/// k1, per-message network/logical-channel cost k4, per-message client
/// checking cost k6 * num_clients), K_T aggregates per-size costs (server
/// retrieval k2, network transmission k3), and K_U = k5 is the client
/// extraction cost per unit of irrelevant data.
///
/// K_D extends the model to the multi-channel setting of Section 7: a
/// fixed cost per multicast channel actually used (router table space /
/// connection state). The paper lists K_D among its cost variables without
/// defining it; it defaults to 0 and only the channel-allocation code
/// reads it.
struct CostModel {
  double k_m = 1.0;
  double k_t = 1.0;
  double k_u = 1.0;
  double k_d = 0.0;

  /// k6 of Section 4 kept separate for the multi-channel model: the cost
  /// a client pays to check one message header. In the single-channel
  /// broadcast model it is folded into K_M (k6 * num clients, see
  /// FromComponents); with multiple channels only the clients *listening
  /// to a message's channel* check it, so ChannelCostEvaluator charges
  /// k_check * (clients on channel) * |M_channel| instead. This coupling
  /// is exactly why merging and allocation cannot be solved separately
  /// (Section 7.2). 0 disables the term.
  double k_check = 0.0;

  /// Derives the aggregate constants from the low-level proportionality
  /// constants of Section 4 for the single-channel broadcast model:
  /// k6 * num_clients is folded into K_M and k_check stays 0.
  [[nodiscard]] static CostModel FromComponents(double k1, double k2, double k3, double k4,
                                  double k5, double k6, int num_clients);

  /// Same derivation for the multi-channel model of Section 7: k6 is kept
  /// in k_check (charged per client actually listening to the channel)
  /// instead of being folded into K_M with a global client count.
  [[nodiscard]] static CostModel FromComponentsMultiChannel(double k1, double k2, double k3,
                                              double k4, double k5,
                                              double k6);

  /// Cost contribution of one merged group M_i.
  [[nodiscard]] double GroupCost(const MergeContext& ctx, const QueryGroup& group) const;

  /// Cost contribution given precomputed group statistics.
  [[nodiscard]] double GroupCost(const GroupStats& stats) const {
    return k_m * stats.messages + k_t * stats.size + k_u * stats.irrelevant;
  }

  /// Cost of a full candidate solution M.
  [[nodiscard]] double PartitionCost(const MergeContext& ctx,
                       const Partition& partition) const;

  /// Cost of answering every query separately (the paper's Cost_initial).
  [[nodiscard]] double InitialCost(const MergeContext& ctx) const;

  /// Cost_old - Cost_new of replacing groups `a` and `b` with their union
  /// (Section 6.2.1). Positive values mean the merge is beneficial.
  [[nodiscard]] double MergeBenefit(const MergeContext& ctx, const QueryGroup& a,
                      const QueryGroup& b) const;

  /// The 2-query decision rule of Section 5.1: it is beneficial to merge
  /// q1 and q2 (sizes s1, s2; merged size s3) iff
  ///   K_M + K_T*(s1 + s2 - s3) + K_U*(s1 + s2 - 2*s3) > 0.
  [[nodiscard]] bool TwoQueryMergeBeneficial(double s1, double s2, double s3) const;

  /// Clustering pre-filter (Section 6.3): an optimistic upper bound on the
  /// benefit of ever placing q1 and q2 in the same merged group. `r` is a
  /// lower bound on any merged size containing both (the pair's merged
  /// size, or — tighter — the size of their exact union). When the result
  /// is <= 0 the pair can be separated into different clusters.
  [[nodiscard]] double CoMergeBenefitBound(double s1, double s2, double r) const {
    return k_m + k_t * (s1 + s2 - r) + k_u * (s1 + s2 - 2.0 * r);
  }

  /// True when the planner's admissible benefit bounds are valid
  /// (DESIGN.md §8). The bounds lower-bound a merged group's cost by
  /// dropping the K_U term and under-estimating size(M), which is only
  /// conservative when every coefficient is non-negative.
  [[nodiscard]] bool SupportsBenefitBounds() const {
    return k_m >= 0.0 && k_t >= 0.0 && k_u >= 0.0;
  }

  /// Lower bound on GroupCost of any group with at least `msgs_lb`
  /// messages and size at least `size_lb` (irrelevant-data term >= 0 is
  /// dropped). Requires SupportsBenefitBounds().
  [[nodiscard]] double MergedCostLowerBound(double size_lb, double msgs_lb = 1.0) const {
    return k_m * msgs_lb + k_t * size_lb;
  }

  /// Admissible upper bound on MergeBenefit(a, b):
  ///   benefit = cost(a) + cost(b) - cost(a ∪ b)
  ///           <= cost(a) + cost(b) - MergedCostLowerBound(...).
  /// Requires SupportsBenefitBounds().
  [[nodiscard]] double BenefitUpperBound(double cost_a, double cost_b,
                           double merged_size_lb,
                           double merged_msgs_lb = 1.0) const {
    return cost_a + cost_b - MergedCostLowerBound(merged_size_lb,
                                                  merged_msgs_lb);
  }
};

}  // namespace qsp

#endif  // QSP_COST_COST_MODEL_H_
