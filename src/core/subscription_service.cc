#include "core/subscription_service.h"

#include <cstdio>
#include <utility>

#include "channel/channel_cost.h"
#include "channel/exhaustive_allocator.h"
#include "exec/thread_pool.h"
#include "merge/clustering_merger.h"
#include "merge/directed_search_merger.h"
#include "merge/pair_merger.h"
#include "merge/partition_merger.h"
#include "merge/sharded_planner.h"
#include "obs/metrics.h"
#include "obs/phase_tracer.h"
#include "relation/grid_index.h"
#include "relation/rtree.h"
#include "stats/exact_estimator.h"
#include "stats/histogram_estimator.h"

namespace qsp {

std::unique_ptr<MergeProcedure> MakeProcedure(ProcedureKind kind) {
  switch (kind) {
    case ProcedureKind::kBoundingRect:
      return std::make_unique<BoundingRectProcedure>();
    case ProcedureKind::kBoundingPolygon:
      return std::make_unique<BoundingPolygonProcedure>();
    case ProcedureKind::kExactCover:
      return std::make_unique<ExactCoverProcedure>();
  }
  return nullptr;
}

std::unique_ptr<Merger> MakeMerger(MergerKind kind, uint64_t seed,
                                   bool pruning) {
  switch (kind) {
    case MergerKind::kPairMerging:
      return std::make_unique<PairMerger>(/*use_heap=*/true, pruning);
    case MergerKind::kDirectedSearch:
      return std::make_unique<DirectedSearchMerger>(8, seed, pruning);
    case MergerKind::kClustering:
      return std::make_unique<ClusteringMerger>(/*exact_component_limit=*/10,
                                                /*tight_bound=*/true, pruning);
    case MergerKind::kPartitionExact:
      return std::make_unique<PartitionMerger>();
  }
  return nullptr;
}

SubscriptionService::SubscriptionService(Table table, const Rect& domain,
                                         ServiceConfig config)
    : table_(std::move(table)), domain_(domain), config_(config) {
  if (config_.telemetry) obs::SetEnabled(true);
  exec::SetDefaultThreads(config_.threads);
  switch (config_.index) {
    case IndexKind::kGrid:
      index_ = std::make_unique<GridIndex>(table_, domain_);
      break;
    case IndexKind::kRTree:
      index_ = std::make_unique<RTree>(table_);
      break;
  }
  procedure_ = MakeProcedure(config_.procedure);
  switch (config_.estimator) {
    case EstimatorKind::kUniform:
      estimator_ = std::make_unique<UniformDensityEstimator>(
          static_cast<double>(table_.num_rows()), domain_);
      break;
    case EstimatorKind::kHistogram:
      estimator_ = std::make_unique<HistogramEstimator>(
          table_, domain_, config_.histogram_buckets,
          config_.histogram_buckets);
      break;
    case EstimatorKind::kExact:
      estimator_ = std::make_unique<ExactEstimator>(index_.get());
      break;
  }
  if (config_.live.enabled && config_.num_channels <= 1) {
    // Live mode owns the context for its whole lifetime (the QuerySet
    // grows through the lease API; Plan() is rejected so nothing swaps
    // the context out from under the maintainer).
    context_ = std::make_unique<MergeContext>(&queries_, estimator_.get(),
                                              procedure_.get());
    // The facade-level shards knob reaches live replans too (it used to
    // be silently ignored in live mode): forward it unless the caller
    // set the live-specific knob explicitly.
    LiveServiceConfig live_opts = config_.live;
    if (live_opts.shards <= 1) live_opts.shards = config_.shards;
    live_ = std::make_unique<LivePlanManager>(
        &queries_, context_.get(), config_.cost_model, live_opts);
    // Every processed batch mirrors into the ClientSet through this
    // callback — in particular batches the background tick drives, which
    // previously completed inside the maintainer without the facade ever
    // seeing their placed/retired ids.
    live_->SetBatchCallback(
        [this](const BatchReport& report) { ApplyBatch(report); });
    if (config_.live.sweep_interval_ms > 0) live_->StartBackground();
  }
  if (config_.telemetry && config_.sample_interval_ms > 0 &&
      !config_.sample_path.empty()) {
    obs::PeriodicSampler::Options options;
    options.interval_ms = config_.sample_interval_ms;
    options.path = config_.sample_path;
    sampler_ = std::make_unique<obs::PeriodicSampler>(std::move(options));
    const Status started = sampler_->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "metric sampler disabled: %s\n",
                   started.ToString().c_str());
      sampler_.reset();
    }
  }
}

SubscriptionService::~SubscriptionService() {
  // Stop the background tick before any facade member it reaches
  // through ApplyBatch (clients_, plan_, owner_of_query_) is torn down.
  if (live_ != nullptr) live_->StopBackground();
}

ClientId SubscriptionService::AddClient() { return clients_.AddClient(); }

QueryId SubscriptionService::Subscribe(ClientId client, const Rect& rect) {
  const QueryId id = queries_.Add(rect);
  clients_.Subscribe(client, id);
  has_plan_ = false;
  return id;
}

Result<QueryId> SubscriptionService::SubscribeWhere(
    ClientId client, const std::string& predicate) {
  auto parsed = ParsePredicate(predicate);
  if (!parsed.ok()) return parsed.status();
  auto rect = ExtractRange(parsed.value(), table_.schema(), domain_);
  if (!rect.ok()) return rect.status();
  return Subscribe(client, rect.value());
}

Status SubscriptionService::LiveGuard() const {
  if (!config_.live.enabled) {
    return Status::FailedPrecondition(
        "live mode is off (set ServiceConfig::live.enabled)");
  }
  if (config_.num_channels > 1) {
    return Status::InvalidArgument(
        "live mode requires num_channels == 1 (basic broadcast model)");
  }
  return Status::OK();
}

Result<QueryId> SubscriptionService::SubscribeLeased(ClientId client,
                                                     const Rect& rect,
                                                     uint64_t ttl_ms) {
  QSP_RETURN_IF_ERROR(LiveGuard());
  if (client >= clients_.num_clients()) {
    return Status::InvalidArgument("unknown client id");
  }
  // live_mu_ is held across the enqueue AND the owner recording: the
  // background tick can pop the admission as soon as Subscribe returns,
  // but its ApplyBatch blocks on live_mu_ until the owner is on record.
  std::lock_guard<std::mutex> lock(live_mu_);
  Result<QueryId> id = live_->Subscribe(rect, ttl_ms);
  if (!id.ok()) return id.status();
  if (owner_of_query_.size() <= id.value()) {
    owner_of_query_.resize(id.value() + 1, 0);
  }
  owner_of_query_[id.value()] = client;
  return id;
}

Status SubscriptionService::RenewLease(QueryId id, uint64_t ttl_ms) {
  QSP_RETURN_IF_ERROR(LiveGuard());
  return live_->Renew(id, ttl_ms);
}

Status SubscriptionService::Unsubscribe(QueryId id) {
  QSP_RETURN_IF_ERROR(LiveGuard());
  return live_->Unsubscribe(id);
}

size_t SubscriptionService::SweepExpired() {
  if (live_ == nullptr) return 0;
  return live_->SweepExpired();
}

void SubscriptionService::ApplyBatch(const BatchReport& report) {
  // ClientSet mirrors the *planned* population: a subscription joins it
  // when placed and leaves when retired, so every round's verification
  // checks exactly the queries the plan can serve. Runs on whatever
  // thread processed the batch (the ticker thread in background mode).
  std::lock_guard<std::mutex> lock(live_mu_);
  for (QueryId id : report.placed) {
    clients_.Subscribe(owner_of_query_[id], id);
  }
  for (QueryId id : report.retired) {
    clients_.Unsubscribe(owner_of_query_[id], id);
  }
  plan_ = DisseminationPlan{};
  plan_.allocation.push_back(clients_.AllClients());
  plan_.channel_partitions.push_back(live_->PlanSnapshot());
  has_plan_ = true;
}

BatchReport SubscriptionService::ProcessAdmissions() {
  if (live_ == nullptr) return BatchReport{};
  // The registered batch callback applies the report (ClientSet
  // mirroring + plan installation) before ProcessBatch returns.
  return live_->ProcessBatch();
}

BatchReport SubscriptionService::DrainAdmissions() {
  if (live_ == nullptr) return BatchReport{};
  // The batch callback applies each intermediate batch as it happens.
  return live_->DrainAll();
}

Status SubscriptionService::ReplanNow() {
  QSP_RETURN_IF_ERROR(LiveGuard());
  const Status replanned = live_->ReplanNow();
  // Adopted or abandoned, the maintainer still has a valid plan —
  // reinstall whatever it serves now.
  BatchReport empty;
  ApplyBatch(empty);
  return replanned;
}

LiveStats SubscriptionService::live_stats() const {
  if (live_ == nullptr) return LiveStats{};
  return live_->Stats();
}

std::vector<QueryId> SubscriptionService::MirroredQueriesOf(
    ClientId client) const {
  std::lock_guard<std::mutex> lock(live_mu_);
  if (client >= clients_.num_clients()) return {};
  return clients_.QueriesOf(client);
}

Result<PlanReport> SubscriptionService::Plan() {
  if (live_ != nullptr) {
    return Status::FailedPrecondition(
        "live mode maintains its own plan; use ProcessAdmissions()/"
        "ReplanNow()");
  }
  if (queries_.empty()) {
    return Status::FailedPrecondition("no subscriptions to plan");
  }
  if (clients_.num_clients() == 0) {
    return Status::FailedPrecondition("no clients registered");
  }
  obs::ScopedSpan plan_span("plan");
  obs::ScopedTimer plan_timer("core.plan.latency_us");
  obs::Count("core.plan.runs");
  context_ = std::make_unique<MergeContext>(&queries_, estimator_.get(),
                                            procedure_.get());

  PlanReport report;
  report.initial_cost = config_.cost_model.InitialCost(*context_);
  if (config_.num_channels > 1) {
    // The multi-channel baseline is "everyone on one channel, nothing
    // merged", where every client checks every message (k_check term).
    report.initial_cost += config_.cost_model.k_check *
                           static_cast<double>(clients_.num_clients()) *
                           static_cast<double>(queries_.size());
  }
  plan_ = DisseminationPlan{};

  plan_group_shard_.clear();
  if (config_.num_channels <= 1) {
    // Basic broadcast model: all clients on one channel, one merge run.
    const auto merger =
        MakeMerger(config_.merger, config_.seed, config_.pruning);
    if (config_.shards > 1) {
      // Sharded parallel planning (DESIGN.md §12): per-shard merges fan
      // out across the exec pool, then the boundary pass reconciles the
      // seam-touching groups. shards == 1 takes the branch below and is
      // byte-identical by construction.
      const ShardedPlanner planner(
          merger.get(), ShardedPlanner::Options{config_.shards,
                                                config_.shard_assign,
                                                config_.pruning});
      Result<ShardedMergeOutcome> outcome =
          planner.Plan(*context_, config_.cost_model);
      if (!outcome.ok()) return outcome.status();
      plan_.allocation.push_back(clients_.AllClients());
      plan_.channel_partitions.push_back(
          std::move(outcome.value().outcome.partition));
      plan_group_shard_ = std::move(outcome.value().group_shard);
      report.estimated_cost = outcome.value().outcome.cost;
      report.bounds_refined = outcome.value().outcome.bounds_refined;
      report.bounds_pruned = outcome.value().outcome.bounds_pruned;
    } else {
      Result<MergeOutcome> outcome =
          merger->Merge(*context_, config_.cost_model);
      if (!outcome.ok()) return outcome.status();
      plan_.allocation.push_back(clients_.AllClients());
      plan_.channel_partitions.push_back(outcome.value().partition);
      report.estimated_cost = outcome.value().cost;
      report.bounds_refined = outcome.value().bounds_refined;
      report.bounds_pruned = outcome.value().bounds_pruned;
    }
  } else {
    obs::ScopedSpan allocate_span("allocate");
    ChannelCostEvaluator evaluator(context_.get(), config_.cost_model,
                                   &clients_);
    HillClimbAllocator allocator(config_.allocation_policy, config_.seed);
    Result<AllocationOutcome> outcome =
        allocator.Allocate(evaluator, config_.num_channels);
    if (!outcome.ok()) return outcome.status();
    report.estimated_cost = outcome.value().cost;
    plan_.allocation = outcome.value().allocation;
    for (const auto& channel_clients : plan_.allocation) {
      MergeOutcome channel_outcome = evaluator.Plan(channel_clients);
      report.bounds_refined += channel_outcome.bounds_refined;
      report.bounds_pruned += channel_outcome.bounds_pruned;
      plan_.channel_partitions.push_back(std::move(channel_outcome.partition));
    }
  }

  for (const Partition& partition : plan_.channel_partitions) {
    report.num_groups += partition.size();
  }
  report.plan = plan_;
  has_plan_ = true;
  simulator_.reset();

  if (obs::Enabled()) {
    // The plan's predicted cost-model terms — the estimated counterparts
    // of the simulator's measured net.round.* metrics (the Stats() calls
    // hit the context's memo, so this re-walk is cheap).
    double est_messages = 0.0, est_size = 0.0, est_irrelevant = 0.0;
    for (const Partition& partition : plan_.channel_partitions) {
      for (const QueryGroup& group : partition) {
        const GroupStats& stats = context_->Stats(group);
        est_messages += stats.messages;
        est_size += stats.size;
        est_irrelevant += stats.irrelevant;
      }
    }
    obs::SetGauge("plan.est.messages", est_messages);
    obs::SetGauge("plan.est.size", est_size);
    obs::SetGauge("plan.est.irrelevant", est_irrelevant);
    obs::SetGauge("plan.est.cost", report.estimated_cost);
    obs::SetGauge("plan.est.initial_cost", report.initial_cost);
    obs::SetGauge("plan.num_groups", static_cast<double>(report.num_groups));
  }
  return report;
}

Result<RoundStats> SubscriptionService::RunRound() {
  // In live mode the background tick installs repaired plans and mutates
  // the ClientSet concurrently; the round holds live_mu_ end to end so
  // it executes under one consistent (plan, clients) snapshot. Uncontended
  // in one-shot mode.
  std::lock_guard<std::mutex> lock(live_mu_);
  if (!has_plan_) {
    return Status::FailedPrecondition("call Plan() before RunRound()");
  }
  // The simulator persists across rounds so that client caches carry
  // over (it is reset whenever a new plan is made).
  if (simulator_ == nullptr) {
    // The reliability path only engages when a fault can actually occur,
    // so a default FaultPolicy keeps rounds on the lossless fast path
    // (and existing figures byte-identical).
    std::optional<FaultPolicy> fault;
    if (config_.fault.Engaged()) fault = config_.fault;
    simulator_ = std::make_unique<MulticastSimulator>(
        &table_, index_.get(), &queries_, &clients_, config_.client_cache,
        /*verify_wire=*/false, std::move(fault));
  }
  obs::ScopedTimer round_timer("core.round.latency_us");
  return simulator_->RunRound(plan_, *procedure_, config_.extraction);
}

}  // namespace qsp
