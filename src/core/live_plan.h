#ifndef QSP_CORE_LIVE_PLAN_H_
#define QSP_CORE_LIVE_PLAN_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "cost/cost_model.h"
#include "exec/periodic.h"
#include "geom/rect.h"
#include "merge/incremental_merger.h"
#include "obs/clock.h"
#include "query/merge_context.h"
#include "query/query.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace qsp {

/// Knobs of the long-lived service loop (DESIGN.md §11). Everything
/// defaults off/neutral: with `enabled == false` the SubscriptionService
/// behaves exactly like the one-shot plan-then-run facade, so the fig15/
/// 16/17 harnesses are untouched.
struct LiveServiceConfig {
  /// Master switch for live mode (lease lifecycle, batched admission,
  /// incremental repair, drift replanning).
  bool enabled = false;
  /// Lease length granted to Subscribe calls that do not pass their own
  /// TTL. 0 = leases never expire (still removable via Unsubscribe).
  uint64_t default_ttl_ms = 0;
  /// Interval of the background sweep/drain tick driven by an
  /// exec::PeriodicTask. 0 = no background thread; the owner calls
  /// SweepExpired/ProcessBatch explicitly (what the simulators do).
  uint64_t sweep_interval_ms = 0;
  /// Max admission ops (adds + removes) applied per ProcessBatch call.
  size_t admission_batch_max = 64;
  /// Backpressure: Subscribe sheds (retryable ResourceExhausted) once
  /// this many ops are queued. Removes always enqueue — shedding a
  /// departure would leak the lease.
  size_t admission_queue_limit = 4096;
  /// Per-batch repair SLO: once this much control-clock time has elapsed
  /// in ProcessBatch, no further repair moves start. 0 = no deadline.
  uint64_t repair_deadline_us = 0;
  /// Repair move budget per batch: < 0 disables repair, 0 = run to a
  /// local minimum (subject to the deadline), > 0 caps applied moves.
  int repair_max_moves = 0;
  /// Drift trigger: when maintained-cost / FreshPlanCostLowerBound
  /// exceeds this factor, a from-scratch replan is kicked off. 0
  /// disables drift replanning; meaningful values are > 1 (hysteresis —
  /// the maintained plan is allowed to drift this far before the service
  /// pays for a rebuild).
  double replan_drift_factor = 0.0;
  /// A finished replan older than this (control clock, measured from
  /// trigger to adoption attempt) is abandoned: the old plan stays live.
  /// 0 = never abandoned for lateness.
  uint64_t replan_deadline_us = 0;
  /// How often (in batches) the drift ratio is recomputed. The lower
  /// bound is near-linear in the live population, so per-batch checks
  /// are affordable but pointless under light churn.
  uint64_t drift_check_every_batches = 1;
  /// Run triggered replans on a background thread (rounds keep serving
  /// the old plan; the result is adopted at the start of a later batch).
  /// Off = replans run inline in ProcessBatch.
  bool replan_background = false;
  /// Pruning (DESIGN.md §8) for the incremental merger's scans.
  bool pruning = true;
  /// Pruning for the from-scratch replans (PairMerger).
  bool replan_pruning = true;
  /// Sharded from-scratch replans (DESIGN.md §13): with a value N > 1,
  /// drift replans and ReplanNow plan their dense snapshot through
  /// ShardedPlanner (cost-balanced assignment) wrapping the PairMerger,
  /// fanning shards across the exec pool. 1 — the default — plans the
  /// snapshot unsharded, byte-identical to before. Adoption, lateness
  /// abandonment, and the never-planless guarantee are unchanged either
  /// way. SubscriptionService forwards its top-level ServiceConfig::
  /// shards here when this is left at 1, so the facade knob is honored
  /// in live mode too.
  int shards = 1;
  /// Test hook: every replan result is discarded as if it had failed,
  /// proving the degradation path (service keeps serving the old plan).
  bool inject_replan_failure = false;
  /// Control clock for lease expiry and deadlines (non-owning; must
  /// outlive the service). Tests inject a FakeClock here. Null = the
  /// process clock (obs::CurrentClock()).
  obs::Clock* clock = nullptr;
};

/// One ProcessBatch outcome.
struct BatchReport {
  /// Admission ops applied this batch.
  size_t admitted = 0;
  size_t removed = 0;
  /// Ids placed into the plan this batch, in processing order. The owner
  /// activates their client-side state (the SubscriptionService
  /// subscribes them in its ClientSet) only now — a queued-but-unplanned
  /// subscription must not expect round deliveries yet.
  std::vector<QueryId> placed;
  /// Ids whose leases ended this batch (expired or unsubscribed), in
  /// processing order. The owner retires their client-side state (the
  /// SubscriptionService unsubscribes them from its ClientSet).
  std::vector<QueryId> retired;
  /// Repair accounting.
  int repair_moves = 0;
  bool repair_deadline_hit = false;
  double repair_latency_us = 0.0;
  /// Exact group evaluations spent this batch (adds + removes + repair).
  uint64_t evaluations = 0;
  /// Drift/replan accounting. `drift` and `bound` are 0 when the drift
  /// check did not run this batch.
  double cost = 0.0;
  double bound = 0.0;
  double drift = 0.0;
  bool replan_triggered = false;
  bool replan_adopted = false;
  bool replan_abandoned = false;
  /// Candidate evaluations the finished replan spent (from-scratch work,
  /// counted whether adopted or abandoned; 0 when none finished).
  uint64_t replan_evaluations = 0;
};

/// Aggregate live-service state (gauges; also exported as qsp_ metrics).
struct LiveStats {
  size_t active = 0;
  size_t pending = 0;
  size_t queue_depth = 0;
  uint64_t sheds = 0;
  uint64_t expired = 0;
  uint64_t renewals = 0;
  uint64_t replans_adopted = 0;
  uint64_t replans_abandoned = 0;
  /// Cumulative candidate evaluations across every finished replan.
  uint64_t replan_evaluations = 0;
  uint64_t plan_age_batches = 0;
  double cost = 0.0;
};

/// The live-service plan maintainer: owns the lease table, the bounded
/// admission queue, the incrementally repaired partition, and the
/// cost-drift replan machinery (DESIGN.md §11). Built for failure as the
/// normal case — expiry retires subscriptions whose clients went silent,
/// overload sheds admissions with a retryable status instead of
/// stalling, repair is budgeted against an SLO, and a replan that fails
/// or finishes late is abandoned while the old plan keeps serving: the
/// service is never planless.
///
/// Thread-safe: all public methods lock one mutex. Subscribe/Renew/
/// Unsubscribe are cheap (enqueue + lease bookkeeping) so callers never
/// wait on planning; the planning work happens inside ProcessBatch,
/// which the owner calls explicitly or lets the background tick drive.
/// The injected obs::Clock is the *control* clock (lease expiry, repair
/// and replan deadlines); tests inject a FakeClock to make lease
/// semantics exact and soaks byte-deterministic.
///
/// Does not own the QuerySet/MergeContext; both must outlive it. The
/// QuerySet must only be mutated through this manager while live.
class LivePlanManager {
 public:
  /// `clock` may be null: the control clock then falls back to
  /// obs::CurrentClock() (process default, or whatever SetClock set).
  LivePlanManager(QuerySet* queries, const MergeContext* ctx,
                  const CostModel& model, LiveServiceConfig opts,
                  obs::Clock* clock = nullptr);
  ~LivePlanManager();

  LivePlanManager(const LivePlanManager&) = delete;
  LivePlanManager& operator=(const LivePlanManager&) = delete;

  /// Leases a new subscription for `ttl_ms` (0 = the configured default
  /// TTL). The query id is allocated immediately; planning happens at
  /// the next batch. Sheds with Status::ResourceExhausted (retryable)
  /// when the admission queue is full.
  Result<QueryId> Subscribe(const Rect& rect, uint64_t ttl_ms = 0);

  /// Heartbeat: extends the lease to now + ttl (0 = the default TTL).
  /// Fails with kNotFound once the lease expired or was unsubscribed —
  /// the client must re-Subscribe (late join).
  Status Renew(QueryId id, uint64_t ttl_ms = 0);

  /// Voluntary departure. Never shed (dropping a departure would leak
  /// the lease); fails with kNotFound if the id is not held.
  Status Unsubscribe(QueryId id);

  /// Retires every lease whose TTL elapsed (expiry is exact: a lease
  /// expires at now >= deadline). Returns how many expired this sweep.
  size_t SweepExpired();

  /// Applies one admission batch: adopts a finished background replan,
  /// applies up to admission_batch_max queued ops through the
  /// incremental merger, runs budgeted repair under the deadline, and
  /// runs the drift check. Safe to call with an empty queue (repair and
  /// drift still run, so a stale plan keeps healing).
  BatchReport ProcessBatch();

  /// ProcessBatch until the admission queue is empty; merges reports.
  BatchReport DrainAll();

  /// Registers a callback invoked after every ProcessBatch with that
  /// batch's report — including batches driven by the background tick,
  /// which otherwise complete invisibly to the owner. The owner uses it
  /// to mirror placed/retired ids into its client-side state. Invoked
  /// with the manager's lock released, on whatever thread ran the batch
  /// (the ticker thread in background mode), so the callback may call
  /// back into const accessors such as PlanSnapshot. Set it before
  /// StartBackground; pass an empty function to clear.
  void SetBatchCallback(std::function<void(const BatchReport&)> cb);

  /// Synchronous from-scratch replan + adoption attempt (subject to the
  /// failure-injection hook; lateness cannot occur inline). Returns
  /// FailedPrecondition when a background replan is already running.
  Status ReplanNow();

  /// Starts/stops the background sweep-and-drain tick
  /// (sweep_interval_ms). No-op when the interval is 0.
  void StartBackground();
  void StopBackground();

  /// Copy of the live partition (group members are live query ids).
  Partition PlanSnapshot() const;

  /// Ids currently holding a live (planned) lease, ascending.
  std::vector<QueryId> LiveIds() const;

  LiveStats Stats() const;
  double cost() const;
  /// Exact group evaluations spent by the maintainer so far.
  uint64_t evaluations() const;
  /// True while a background replan is in flight.
  bool replan_running() const;

 private:
  enum class LeaseState : uint8_t {
    kNone = 0,   // id not held by the manager
    kPending,    // admission queued, not planned yet
    kLive,       // planned (in the partition)
    kRetiring,   // removal queued
    kRetired,    // gone
  };

  struct Op {
    bool remove = false;
    QueryId id = 0;
  };

  /// In-flight from-scratch replan: a private snapshot of the live rects
  /// (ids remapped dense) so the planner never races QuerySet growth,
  /// plus its own MergeContext sharing the (const, thread-safe)
  /// estimator and procedure.
  struct ReplanJob {
    std::vector<QueryId> snap_ids;
    QuerySet snap_queries;
    std::unique_ptr<MergeContext> ctx;
    double started_us = 0.0;
    std::thread thread;
    std::atomic<bool> done{false};
    bool failed = false;
    Partition result;
    uint64_t candidates = 0;
  };

  double NowUs() const;
  double DeadlineFor(uint64_t ttl_ms, double now_us) const;
  bool Held(QueryId id) const QSP_REQUIRES(mu_);
  std::vector<QueryId> LiveIdsLocked() const QSP_REQUIRES(mu_);
  void EnqueueRemove(QueryId id) QSP_REQUIRES(mu_);
  /// Launches a replan (inline or background per the config).
  void TriggerReplan() QSP_REQUIRES(mu_);
  /// Runs the snapshot merge (no lock held; called on the replan thread
  /// or inline from ReplanNow). `shards` > 1 routes the snapshot through
  /// ShardedPlanner; the snapshot context is private, so the sharded
  /// fan-out never races the incremental merger.
  static void RunReplanJob(ReplanJob* job, const CostModel& model,
                           bool pruning, int shards);
  /// Adopts or abandons a finished job; fills report flags.
  void FinishReplan(BatchReport* report) QSP_REQUIRES(mu_);
  void PublishGauges() QSP_REQUIRES(mu_);

  QuerySet* queries_;
  const MergeContext* ctx_;
  CostModel model_;
  LiveServiceConfig opts_;
  obs::Clock* clock_;

  mutable std::mutex mu_;
  IncrementalMerger merger_ QSP_GUARDED_BY(mu_);
  std::vector<LeaseState> state_ QSP_GUARDED_BY(mu_);
  std::vector<double> expires_us_ QSP_GUARDED_BY(mu_);
  std::deque<Op> queue_ QSP_GUARDED_BY(mu_);
  size_t active_ = 0;
  size_t pending_ = 0;
  uint64_t sheds_ = 0;
  uint64_t expired_ = 0;
  uint64_t renewals_ = 0;
  uint64_t replans_adopted_ = 0;
  uint64_t replans_abandoned_ = 0;
  uint64_t replan_evals_total_ = 0;
  uint64_t plan_age_batches_ = 0;
  uint64_t batches_since_drift_check_ = 0;
  std::unique_ptr<ReplanJob> replan_job_ QSP_GUARDED_BY(mu_);
  std::function<void(const BatchReport&)> batch_cb_ QSP_GUARDED_BY(mu_);
  exec::PeriodicTask ticker_;
};

}  // namespace qsp

#endif  // QSP_CORE_LIVE_PLAN_H_
