#ifndef QSP_CORE_SUBSCRIPTION_SERVICE_H_
#define QSP_CORE_SUBSCRIPTION_SERVICE_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "channel/client_set.h"
#include "channel/hill_climb_allocator.h"
#include "core/live_plan.h"
#include "cost/cost_model.h"
#include "geom/rect.h"
#include "merge/merger.h"
#include "merge/shard_assign.h"
#include "net/fault_injector.h"
#include "net/message.h"
#include "net/simulator.h"
#include "obs/exporter.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "query/predicate.h"
#include "query/query.h"
#include "relation/spatial_index.h"
#include "relation/table.h"
#include "stats/size_estimator.h"
#include "util/status.h"

namespace qsp {

/// Which merging algorithm the planner runs (Section 6).
enum class MergerKind {
  kPairMerging,
  kDirectedSearch,
  kClustering,
  kPartitionExact,
};

/// Which merge procedure shapes merged queries (Figure 5).
enum class ProcedureKind {
  kBoundingRect,
  kBoundingPolygon,
  kExactCover,
};

/// Which size estimator feeds the cost model.
enum class EstimatorKind {
  kUniform,
  kHistogram,
  kExact,
};

/// Which spatial access path the server evaluates merged queries with.
enum class IndexKind {
  kGrid,
  kRTree,
};

/// Configuration of the subscription service.
struct ServiceConfig {
  CostModel cost_model;
  MergerKind merger = MergerKind::kPairMerging;
  ProcedureKind procedure = ProcedureKind::kBoundingRect;
  EstimatorKind estimator = EstimatorKind::kHistogram;
  /// Number of physical multicast channels (Section 7). 1 = the basic
  /// broadcast model of Section 4.
  int num_channels = 1;
  /// Start policy for the channel-allocation hill climber.
  StartPolicy allocation_policy = StartPolicy::kBestOfBoth;
  /// Enables the client-side answer cache (future-work extension).
  bool client_cache = false;
  /// Seed for the stochastic components (directed search, random starts).
  uint64_t seed = 42;
  /// Histogram resolution when estimator == kHistogram.
  int histogram_buckets = 32;
  /// Access path for evaluating merged queries.
  IndexKind index = IndexKind::kGrid;
  /// Extractor implementation (Section 3.1): clients re-apply their
  /// query, or the server tags payload objects.
  ExtractionMode extraction = ExtractionMode::kSelfExtract;
  /// Turns on the process-wide qsp::obs telemetry (metrics + phase
  /// tracing) at construction. Off by default: all instrumentation in the
  /// planner and simulator then reduces to a flag check.
  bool telemetry = false;
  /// Worker threads for the planner's parallel loops (profit-table
  /// construction, clustering bounds, search restarts, per-channel
  /// broadcast), applied process-wide via qsp::exec at construction.
  /// 1 — the default — runs the exact serial code path (byte-identical
  /// to a build without the exec subsystem); any value N > 1 must return
  /// the same partitions and costs, only faster (DESIGN.md §7).
  int threads = 1;
  /// Planner acceleration (DESIGN.md §8): spatial candidate pruning and
  /// lazy bound→exact profit evaluation in the heuristic mergers. The
  /// planner's output — partitions, allocations, costs — is bit-identical
  /// with pruning on or off; only planning time and the number of exact
  /// group evaluations change. On by default; this is the kill switch.
  bool pruning = true;
  /// Sharded parallel planning (DESIGN.md §12–§13): with a value N > 1
  /// and a single channel, Plan() partitions the object space into ~N
  /// shards, plans each independently across the exec pool, then
  /// reconciles cross-shard merges with a boundary pass over the groups
  /// whose MBRs touch a shard seam. 1 — the default — calls the
  /// configured merger directly: byte-identical partitions and costs, so
  /// every figure harness is untouched. Ignored with num_channels > 1
  /// (allocation already decomposes the problem). In live mode the
  /// incremental maintainer owns the steady-state plan, but from-scratch
  /// drift replans honor this knob (forwarded to LiveServiceConfig::
  /// shards when that is left at its default).
  int shards = 1;
  /// How a sharded Plan() maps queries to shards (DESIGN.md §13):
  /// cost-balanced recursive bisection by default — on clustered
  /// workloads the fixed grid is skew-bound because one cell inherits a
  /// whole cluster — or the fixed grid for the PR 8 behavior. No effect
  /// when shards == 1.
  ShardAssign shard_assign = ShardAssign::kBalanced;
  /// Loss model + recovery budget for the dissemination rounds
  /// (DESIGN.md §6). With the default all-zero policy the simulator runs
  /// the lossless path and every figure stays byte-identical; any nonzero
  /// rate routes rounds through the lossy channel and the bounded
  /// NACK/retransmission protocol.
  FaultPolicy fault;
  /// Service-mode metric sampling (DESIGN.md §10): with telemetry on, a
  /// nonzero interval, and a sink path set, the service runs an
  /// obs::PeriodicSampler for its lifetime, appending gauge/histogram-
  /// percentile rows to `sample_path` (JSONL) every `sample_interval_ms`.
  /// Both default off, so nothing in the one-shot figure harnesses
  /// changes.
  uint64_t sample_interval_ms = 0;
  std::string sample_path;
  /// Long-lived service loop (DESIGN.md §11): lease-based subscription
  /// lifetime, batched admission with backpressure, incremental plan
  /// repair under an SLO, and cost-drift replanning. Everything defaults
  /// off, so the one-shot Subscribe/Plan/RunRound flow — and every
  /// figure harness built on it — is untouched. Live mode requires
  /// num_channels == 1 (the basic broadcast model).
  LiveServiceConfig live;
};

/// Summary of a planning pass.
struct PlanReport {
  DisseminationPlan plan;
  /// Estimated total cost of the plan under the configured model.
  double estimated_cost = 0.0;
  /// Estimated cost of serving every query unmerged on one channel — the
  /// paper's Cost_initial baseline.
  double initial_cost = 0.0;
  /// Total merged groups across channels.
  size_t num_groups = 0;
  /// BenefitBounder effort accounting summed over every merge run the
  /// plan needed (one for single-channel, one per channel otherwise);
  /// zero when the configured merger does not use bounds. See
  /// MergeOutcome.
  uint64_t bounds_refined = 0;
  uint64_t bounds_pruned = 0;
};

/// The public facade: register clients and subscriptions, plan
/// (merge + allocate channels), and run dissemination rounds against the
/// in-memory database. See examples/quickstart.cc.
class SubscriptionService {
 public:
  /// Takes ownership of the database. `domain` must cover the positions
  /// used by queries and data.
  SubscriptionService(Table table, const Rect& domain, ServiceConfig config);
  ~SubscriptionService();

  SubscriptionService(const SubscriptionService&) = delete;
  SubscriptionService& operator=(const SubscriptionService&) = delete;

  /// Registers a client; returns its id.
  ClientId AddClient();

  /// Subscribes `client` to the geographic range `rect`; returns the
  /// query id. Re-plan after changing subscriptions.
  QueryId Subscribe(ClientId client, const Rect& rect);

  /// Subscribes via a SQL-ish selection predicate over the position
  /// columns, e.g. "longitude BETWEEN 2 AND 41 AND latitude <= 40".
  /// The predicate must reduce to one rectangle (a conjunction of
  /// comparisons on the position columns); see query/predicate.h.
  Result<QueryId> SubscribeWhere(ClientId client,
                                 const std::string& predicate);

  /// Runs the configured merge algorithm (and, with more than one
  /// channel, the allocation heuristic) over the current subscriptions.
  Result<PlanReport> Plan();

  /// Executes one dissemination round under the most recent plan.
  /// Requires a successful Plan() first (or, in live mode, at least one
  /// ProcessAdmissions()).
  Result<RoundStats> RunRound();

  /// --- Live service mode (config.live.enabled; DESIGN.md §11). In
  /// live mode the service maintains its plan continuously: leases are
  /// granted and renewed, admissions batch through the incremental
  /// merger, and Plan() is rejected (the plan is never rebuilt wholesale
  /// behind the maintainer's back — use ReplanNow()).

  /// Leases a subscription for `client` (0 TTL = the configured
  /// default). The query joins the plan — and the client's ClientSet
  /// entry — at the next processed batch. Sheds with retryable
  /// ResourceExhausted under admission backpressure.
  Result<QueryId> SubscribeLeased(ClientId client, const Rect& rect,
                                  uint64_t ttl_ms = 0);

  /// Heartbeat; fails with kNotFound once the lease lapsed.
  Status RenewLease(QueryId id, uint64_t ttl_ms = 0);

  /// Voluntary departure of a leased subscription.
  Status Unsubscribe(QueryId id);

  /// Retires leases whose TTL elapsed; returns how many.
  size_t SweepExpired();

  /// Applies one admission batch (adds/removes + budgeted repair + the
  /// drift check). Every processed batch — explicit or driven by the
  /// background tick (live.sweep_interval_ms > 0) — flows through the
  /// maintainer's batch callback, which activates/retires ClientSet
  /// entries for placed and retired ids and installs the repaired
  /// partition as the round plan.
  BatchReport ProcessAdmissions();

  /// ProcessAdmissions until the admission queue drains.
  BatchReport DrainAdmissions();

  /// Synchronous from-scratch replan + adoption attempt; on abandonment
  /// the previous plan stays live and an error reports it.
  Status ReplanNow();

  LiveStats live_stats() const;

  /// Race-free snapshot of a client's mirrored subscriptions. With the
  /// background tick on, the ClientSet mutates on the ticker thread;
  /// this read synchronizes with that mirroring (the bare clients()
  /// accessor does not).
  std::vector<QueryId> MirroredQueriesOf(ClientId client) const;

  /// The live plan maintainer (null unless live mode is on); exposed for
  /// diagnostics (qsp_explain --live) and benches.
  const LivePlanManager* live() const { return live_.get(); }

  const Table& table() const { return table_; }
  const QuerySet& queries() const { return queries_; }
  const ClientSet& clients() const { return clients_; }
  const Rect& domain() const { return domain_; }
  const ServiceConfig& config() const { return config_; }

  /// The context/estimator pair backing the current plan (valid after
  /// Plan(); exposed for diagnostics and benches).
  const MergeContext* context() const { return context_.get(); }

  /// Shard attribution of the last Plan(): parallel to the single
  /// channel's partition, each entry the shard that produced the group
  /// (ShardedMergeOutcome::kSeamGroup for boundary-pass groups). Empty
  /// unless the last plan ran sharded (config.shards > 1). Consumed by
  /// the EXPLAIN path (qsp_explain --shards).
  const std::vector<int32_t>& plan_group_shard() const {
    return plan_group_shard_;
  }

 private:
  Table table_;
  Rect domain_;
  ServiceConfig config_;
  std::unique_ptr<SpatialIndex> index_;
  QuerySet queries_;
  ClientSet clients_;

  std::unique_ptr<SizeEstimator> estimator_;
  std::unique_ptr<MergeProcedure> procedure_;
  std::unique_ptr<MergeContext> context_;
  std::unique_ptr<MulticastSimulator> simulator_;
  /// Service-mode metric sampler; non-null only when the sampling knobs
  /// are set (see ServiceConfig::sample_interval_ms). Stopped by
  /// destruction order before the metrics it reads go away (the sampler
  /// reads the process-global registry, which outlives every service).
  std::unique_ptr<obs::PeriodicSampler> sampler_;
  bool has_plan_ = false;
  DisseminationPlan plan_;
  std::vector<int32_t> plan_group_shard_;

  /// Live mode only. Serializes facade state shared with the background
  /// tick thread: ClientSet mirroring and plan installation (ApplyBatch,
  /// which runs on whatever thread processed the batch), owner_of_query_
  /// growth in SubscribeLeased, and the plan_/clients_ reads of RunRound
  /// (a round runs under one consistent plan). Lock order: live_mu_
  /// before the maintainer's internal lock, never the reverse — the
  /// batch callback fires with the maintainer unlocked.
  mutable std::mutex live_mu_;
  /// Live mode only. Owner of each leased query, dense by QueryId, so a
  /// retirement knows whose ClientSet entry to drop.
  std::unique_ptr<LivePlanManager> live_;
  std::vector<ClientId> owner_of_query_;

  Status LiveGuard() const;
  /// Activates/retires ClientSet entries from a batch and installs the
  /// current live partition as the round plan. Registered as the
  /// maintainer's batch callback so background-tick batches mirror too.
  void ApplyBatch(const BatchReport& report);
};

/// Factory helpers shared with benches and tests.
std::unique_ptr<MergeProcedure> MakeProcedure(ProcedureKind kind);
std::unique_ptr<Merger> MakeMerger(MergerKind kind, uint64_t seed,
                                   bool pruning = true);

}  // namespace qsp

#endif  // QSP_CORE_SUBSCRIPTION_SERVICE_H_
