#include "core/live_plan.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "merge/pair_merger.h"
#include "merge/plan_bounds.h"
#include "merge/sharded_planner.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace qsp {

namespace {
constexpr double kNever = std::numeric_limits<double>::infinity();
}  // namespace

LivePlanManager::LivePlanManager(QuerySet* queries, const MergeContext* ctx,
                                 const CostModel& model,
                                 LiveServiceConfig opts, obs::Clock* clock)
    : queries_(queries),
      ctx_(ctx),
      model_(model),
      opts_(opts),
      clock_(clock != nullptr ? clock : opts.clock),
      merger_(ctx, model, opts.pruning) {
  QSP_CHECK(queries != nullptr);
  QSP_CHECK(ctx != nullptr);
  QSP_CHECK(&ctx->queries() == queries);
}

LivePlanManager::~LivePlanManager() {
  StopBackground();
  std::lock_guard<std::mutex> lock(mu_);
  if (replan_job_ && replan_job_->thread.joinable()) {
    replan_job_->thread.join();
  }
}

double LivePlanManager::NowUs() const {
  return clock_ != nullptr ? clock_->NowMicros()
                           : obs::CurrentClock()->NowMicros();
}

double LivePlanManager::DeadlineFor(uint64_t ttl_ms, double now_us) const {
  const uint64_t effective = ttl_ms != 0 ? ttl_ms : opts_.default_ttl_ms;
  if (effective == 0) return kNever;
  return now_us + static_cast<double>(effective) * 1000.0;
}

bool LivePlanManager::Held(QueryId id) const {
  if (id >= state_.size()) return false;
  return state_[id] == LeaseState::kPending || state_[id] == LeaseState::kLive;
}

Result<QueryId> LivePlanManager::Subscribe(const Rect& rect,
                                           uint64_t ttl_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (queue_.size() >= opts_.admission_queue_limit) {
    ++sheds_;
    obs::Count("service.admission.sheds");
    return Status::ResourceExhausted(
        "admission queue full; retry after the backlog drains");
  }
  const QueryId id = queries_->Add(rect);
  if (state_.size() <= id) {
    state_.resize(id + 1, LeaseState::kNone);
    expires_us_.resize(id + 1, kNever);
  }
  state_[id] = LeaseState::kPending;
  expires_us_[id] = DeadlineFor(ttl_ms, NowUs());
  ++pending_;
  queue_.push_back(Op{false, id});
  obs::SetGauge("service.admission.queue_depth",
                static_cast<double>(queue_.size()));
  return id;
}

Status LivePlanManager::Renew(QueryId id, uint64_t ttl_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Held(id)) {
    return Status::NotFound("lease not held; re-subscribe to rejoin");
  }
  expires_us_[id] = DeadlineFor(ttl_ms, NowUs());
  ++renewals_;
  obs::Count("service.lease.renewals");
  return Status::OK();
}

Status LivePlanManager::Unsubscribe(QueryId id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!Held(id)) return Status::NotFound("lease not held");
  EnqueueRemove(id);
  return Status::OK();
}

void LivePlanManager::EnqueueRemove(QueryId id) {
  if (state_[id] == LeaseState::kPending) --pending_;
  state_[id] = LeaseState::kRetiring;
  // Removes are never shed: dropping a departure would leak the lease
  // and leave a dead subscription in every future plan.
  queue_.push_back(Op{true, id});
}

size_t LivePlanManager::SweepExpired() {
  std::lock_guard<std::mutex> lock(mu_);
  const double now = NowUs();
  size_t swept = 0;
  for (QueryId id = 0; id < state_.size(); ++id) {
    if (!Held(id)) continue;
    if (now < expires_us_[id]) continue;  // Expiry is exact: now >= ttl.
    EnqueueRemove(id);
    ++swept;
  }
  expired_ += swept;
  if (swept != 0) obs::Count("service.lease.expired", swept);
  return swept;
}

void LivePlanManager::RunReplanJob(ReplanJob* job, const CostModel& model,
                                   bool pruning, int shards) {
  PairMerger merger(/*use_heap=*/true, pruning);
  if (shards > 1) {
    // Sharded replan (DESIGN.md §13): the dense snapshot fans out
    // across the exec pool exactly like an offline sharded plan. The
    // job's context is private, so this never races the incremental
    // merger; failure flows into the same abandon path as unsharded.
    const ShardedPlanner planner(
        &merger,
        ShardedPlanner::Options{shards, ShardAssign::kBalanced, pruning});
    Result<ShardedMergeOutcome> outcome = planner.Plan(*job->ctx, model);
    if (outcome.ok()) {
      job->result = std::move(outcome.value().outcome.partition);
      job->candidates = outcome.value().outcome.candidates;
    } else {
      job->failed = true;
    }
  } else {
    Result<MergeOutcome> outcome = merger.Merge(*job->ctx, model);
    if (outcome.ok()) {
      job->result = std::move(outcome.value().partition);
      job->candidates = outcome.value().candidates;
    } else {
      job->failed = true;
    }
  }
  job->done.store(true, std::memory_order_release);
}

void LivePlanManager::TriggerReplan() {
  auto job = std::make_unique<ReplanJob>();
  // Snapshot the in-plan population with dense private ids: the replan
  // must never race QuerySet growth from concurrent Subscribes, and a
  // private MergeContext keeps its memo from colliding with the
  // incremental merger's (the estimator and procedure are shared —
  // read-only and safe for concurrent const calls).
  for (const QueryGroup& g : merger_.partition()) {
    for (QueryId q : g) job->snap_ids.push_back(q);
  }
  std::sort(job->snap_ids.begin(), job->snap_ids.end());
  for (QueryId q : job->snap_ids) {
    QSP_IGNORE_RESULT(job->snap_queries.Add(queries_->rect(q)));
  }
  job->ctx = std::make_unique<MergeContext>(
      &job->snap_queries, &ctx_->estimator(), &ctx_->procedure());
  job->started_us = NowUs();
  obs::Count("service.replan.triggered");
  if (opts_.replan_background) {
    ReplanJob* raw = job.get();
    const CostModel model = model_;
    const bool pruning = opts_.replan_pruning;
    const int shards = opts_.shards;
    job->thread = std::thread([raw, model, pruning, shards] {
      RunReplanJob(raw, model, pruning, shards);
    });
    replan_job_ = std::move(job);
  } else {
    RunReplanJob(job.get(), model_, opts_.replan_pruning, opts_.shards);
    replan_job_ = std::move(job);
    // Inline replans finish immediately; adoption happens in the same
    // batch (FinishReplan is the caller's next step).
  }
}

void LivePlanManager::FinishReplan(BatchReport* report) {
  ReplanJob* job = replan_job_.get();
  QSP_CHECK(job != nullptr);
  if (job->thread.joinable()) job->thread.join();
  report->replan_evaluations += job->candidates;
  replan_evals_total_ += job->candidates;
  const double elapsed = NowUs() - job->started_us;
  const bool late = opts_.replan_deadline_us > 0 &&
                    elapsed > static_cast<double>(opts_.replan_deadline_us);
  if (job->failed || late || opts_.inject_replan_failure) {
    // Graceful degradation: the old plan stays live — the service is
    // never planless. The abandonment is visible, not silent.
    ++replans_abandoned_;
    obs::Count("service.replan.abandoned");
    report->replan_abandoned = true;
    replan_job_.reset();
    return;
  }
  // Reconcile the snapshot-time plan with churn that happened while the
  // replan ran: members that have since left the plan are dropped, and
  // ids admitted since the snapshot are re-placed greedily on top.
  std::vector<bool> in_snapshot(queries_->size(), false);
  for (QueryId id : job->snap_ids) in_snapshot[id] = true;
  std::vector<QueryId> extras;
  for (const QueryGroup& g : merger_.partition()) {
    for (QueryId q : g) {
      if (!in_snapshot[q]) extras.push_back(q);
    }
  }
  std::sort(extras.begin(), extras.end());
  Partition translated;
  for (const QueryGroup& group : job->result) {
    QueryGroup real;
    for (QueryId snap : group) {
      const QueryId id = job->snap_ids[snap];
      if (merger_.Contains(id)) real.push_back(id);
    }
    if (!real.empty()) translated.push_back(std::move(real));
  }
  merger_.Reset(std::move(translated));
  for (QueryId id : extras) merger_.AddQuery(id);
  ++replans_adopted_;
  plan_age_batches_ = 0;
  obs::Count("service.replan.adopted");
  report->replan_adopted = true;
  replan_job_.reset();
}

BatchReport LivePlanManager::ProcessBatch() {
  std::unique_lock<std::mutex> lock(mu_);
  BatchReport report;
  const double batch_start = NowUs();
  const uint64_t evals_before = merger_.evaluations();
  if (replan_job_ && replan_job_->done.load(std::memory_order_acquire)) {
    FinishReplan(&report);
  }

  // Admission: apply up to one batch of queued ops in FIFO order — an
  // id's add always precedes its remove, so expiry of a still-queued
  // subscription is safe.
  size_t ops = 0;
  while (ops < opts_.admission_batch_max && !queue_.empty()) {
    const Op op = queue_.front();
    queue_.pop_front();
    if (op.remove) {
      merger_.RemoveQuery(op.id);
      state_[op.id] = LeaseState::kRetired;
      QSP_CHECK(active_ > 0);
      --active_;
      report.retired.push_back(op.id);
      ++report.removed;
    } else {
      merger_.AddQuery(op.id);
      if (state_[op.id] == LeaseState::kPending) {
        state_[op.id] = LeaseState::kLive;
        --pending_;
      }
      // A kRetiring id still gets planned here; its queued remove op
      // retires it in a later (or this) batch.
      ++active_;
      report.placed.push_back(op.id);
      ++report.admitted;
    }
    ++ops;
  }

  // Budgeted repair under the per-batch deadline (SLO): one steepest-
  // descent move at a time so the deadline is checked between moves.
  if (opts_.repair_max_moves >= 0) {
    const double repair_start = NowUs();
    while (true) {
      if (opts_.repair_max_moves > 0 &&
          report.repair_moves >= opts_.repair_max_moves) {
        break;
      }
      if (opts_.repair_deadline_us > 0 &&
          NowUs() - batch_start >=
              static_cast<double>(opts_.repair_deadline_us)) {
        report.repair_deadline_hit = true;
        obs::Count("service.repair.deadline_hits");
        break;
      }
      const double before = merger_.cost();
      merger_.Repair(1);
      if (!(merger_.cost() < before)) break;  // Local minimum.
      ++report.repair_moves;
    }
    report.repair_latency_us = NowUs() - repair_start;
    obs::Observe("service.repair.latency_us", report.repair_latency_us);
  }

  // Cost-drift trigger: compare the maintained plan against an
  // admissible fresh-plan lower bound; past the hysteresis factor, a
  // from-scratch replan starts (in the background when configured)
  // while rounds keep serving the current plan.
  ++plan_age_batches_;
  report.cost = merger_.cost();
  if (opts_.replan_drift_factor > 0.0 && !replan_job_) {
    if (++batches_since_drift_check_ >= opts_.drift_check_every_batches) {
      batches_since_drift_check_ = 0;
      std::vector<QueryId> live;
      for (const QueryGroup& g : merger_.partition()) {
        for (QueryId q : g) live.push_back(q);
      }
      report.bound = plan::FreshPlanCostLowerBound(*ctx_, model_, live);
      if (report.bound > 0.0) {
        report.drift = report.cost / report.bound;
        obs::SetGauge("service.plan.bound", report.bound);
        obs::SetGauge("service.plan.drift", report.drift);
        if (report.drift > opts_.replan_drift_factor) {
          report.replan_triggered = true;
          TriggerReplan();
          if (!opts_.replan_background) FinishReplan(&report);
        }
      }
    }
  }

  report.evaluations = merger_.evaluations() - evals_before;
  PublishGauges();
  const std::function<void(const BatchReport&)> cb = batch_cb_;
  lock.unlock();
  // The callback runs with mu_ released so it can call back into the
  // manager (PlanSnapshot, Stats) without deadlocking.
  if (cb) cb(report);
  return report;
}

BatchReport LivePlanManager::DrainAll() {
  BatchReport total;
  while (true) {
    BatchReport r = ProcessBatch();
    total.admitted += r.admitted;
    total.removed += r.removed;
    total.placed.insert(total.placed.end(), r.placed.begin(), r.placed.end());
    total.retired.insert(total.retired.end(), r.retired.begin(),
                         r.retired.end());
    total.repair_moves += r.repair_moves;
    total.repair_deadline_hit |= r.repair_deadline_hit;
    total.repair_latency_us += r.repair_latency_us;
    total.evaluations += r.evaluations;
    total.cost = r.cost;
    if (r.bound > 0.0) {
      total.bound = r.bound;
      total.drift = r.drift;
    }
    total.replan_triggered |= r.replan_triggered;
    total.replan_adopted |= r.replan_adopted;
    total.replan_abandoned |= r.replan_abandoned;
    total.replan_evaluations += r.replan_evaluations;
    std::lock_guard<std::mutex> lock(mu_);
    if (queue_.empty()) break;
  }
  return total;
}

void LivePlanManager::SetBatchCallback(
    std::function<void(const BatchReport&)> cb) {
  std::lock_guard<std::mutex> lock(mu_);
  batch_cb_ = std::move(cb);
}

Status LivePlanManager::ReplanNow() {
  std::lock_guard<std::mutex> lock(mu_);
  if (replan_job_) {
    return Status::FailedPrecondition("a background replan is in flight");
  }
  TriggerReplan();
  if (replan_job_->thread.joinable()) replan_job_->thread.join();
  BatchReport report;
  FinishReplan(&report);
  if (report.replan_abandoned) {
    return Status::Internal("replan abandoned; previous plan stays live");
  }
  PublishGauges();
  return Status::OK();
}

void LivePlanManager::StartBackground() {
  if (opts_.sweep_interval_ms == 0) return;
  ticker_.Start(opts_.sweep_interval_ms, [this] {
    SweepExpired();
    ProcessBatch();
  });
}

void LivePlanManager::StopBackground() { ticker_.Stop(); }

Partition LivePlanManager::PlanSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merger_.partition();
}

std::vector<QueryId> LivePlanManager::LiveIdsLocked() const {
  std::vector<QueryId> live;
  for (QueryId id = 0; id < state_.size(); ++id) {
    if (state_[id] == LeaseState::kLive) live.push_back(id);
  }
  return live;
}

std::vector<QueryId> LivePlanManager::LiveIds() const {
  std::lock_guard<std::mutex> lock(mu_);
  return LiveIdsLocked();
}

LiveStats LivePlanManager::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  LiveStats s;
  s.active = active_;
  s.pending = pending_;
  s.queue_depth = queue_.size();
  s.sheds = sheds_;
  s.expired = expired_;
  s.renewals = renewals_;
  s.replans_adopted = replans_adopted_;
  s.replans_abandoned = replans_abandoned_;
  s.replan_evaluations = replan_evals_total_;
  s.plan_age_batches = plan_age_batches_;
  s.cost = merger_.cost();
  return s;
}

double LivePlanManager::cost() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merger_.cost();
}

uint64_t LivePlanManager::evaluations() const {
  std::lock_guard<std::mutex> lock(mu_);
  return merger_.evaluations();
}

bool LivePlanManager::replan_running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return replan_job_ != nullptr &&
         !replan_job_->done.load(std::memory_order_acquire);
}

void LivePlanManager::PublishGauges() {
  obs::SetGauge("service.subs.active", static_cast<double>(active_));
  obs::SetGauge("service.admission.queue_depth",
                static_cast<double>(queue_.size()));
  obs::SetGauge("service.plan.cost", merger_.cost());
  obs::SetGauge("service.plan.age_batches",
                static_cast<double>(plan_age_batches_));
}

}  // namespace qsp
