#ifndef QSP_SIM_SCENARIO_H_
#define QSP_SIM_SCENARIO_H_

#include <cstdint>
#include <vector>

#include "core/subscription_service.h"  // qsp-lint: allow(layer-back-edge) scenarios script the whole service; sim is the outermost harness and nothing in core includes sim back
#include "relation/generator.h"
#include "util/status.h"
#include "workload/client_gen.h"
#include "workload/query_gen.h"

namespace qsp {

/// A declarative end-to-end experiment: object space + query workload +
/// client population + service configuration + number of dissemination
/// rounds. One call builds the world and runs the whole pipeline, which
/// is what the CLI and the larger examples need.
struct ScenarioConfig {
  /// Synthetic object space (domain also bounds the workload).
  TableGeneratorConfig objects;
  /// Subscription workload (its domain is overwritten by objects.domain).
  QueryGenConfig workload;
  size_t num_clients = 6;
  ClientAssignment assignment = ClientAssignment::kLocality;
  /// Planner + dissemination configuration.
  ServiceConfig service;
  /// Dissemination rounds to run under the single plan. With the client
  /// cache enabled, later rounds show cache hits.
  int rounds = 1;
  uint64_t seed = 42;
};

/// Everything a scenario run produces.
struct ScenarioResult {
  PlanReport plan;
  std::vector<RoundStats> rounds;
  /// True when every round delivered exact answers to every client.
  bool all_correct = false;
};

/// Builds the world deterministically from `config.seed` and runs it.
Result<ScenarioResult> RunScenario(const ScenarioConfig& config);

}  // namespace qsp

#endif  // QSP_SIM_SCENARIO_H_
