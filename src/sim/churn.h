#ifndef QSP_SIM_CHURN_H_
#define QSP_SIM_CHURN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/live_plan.h"  // qsp-lint: allow(layer-back-edge) the churn simulator drives the live plan maintainer end to end; sim is a harness over core, not a dependency of it
#include "cost/cost_model.h"
#include "geom/rect.h"
#include "net/fault_injector.h"
#include "util/status.h"
#include "workload/query_gen.h"

namespace qsp {

/// Configuration of the service-churn scenario: a population of leased
/// subscriptions heartbeats against the live service loop while the
/// FaultPolicy injects client crashes (missed heartbeats -> lease expiry)
/// and late joins (departed subscriptions re-subscribing). Time is a
/// FakeClock owned by the harness, advanced by a fixed amount per round,
/// so every run with the same config is deterministic bit-for-bit.
struct ChurnConfig {
  Rect domain = Rect(0, 0, 1000, 1000);
  int rounds = 50;
  size_t initial_subs = 200;
  /// Fresh or rejoining subscriptions offered per round.
  size_t arrivals_per_round = 8;
  /// Voluntary departures per round (oldest leases first).
  size_t departures_per_round = 4;
  /// Lease TTL granted to every Subscribe/Renew.
  uint64_t ttl_ms = 30;
  /// Control-clock time per round. With the defaults one missed
  /// heartbeat (30ms TTL vs 2 x 20ms rounds) expires the lease.
  double round_duration_us = 20000.0;
  /// FakeClock tick per clock *read*. 0 (the default) freezes time
  /// between rounds — lease expiry is exact and in-batch deadlines never
  /// fire. Nonzero makes every clock read advance time, so per-batch
  /// repair deadlines trigger deterministically (one read per repair
  /// move), at the price of lease deadlines jittering by the number of
  /// intervening reads — still byte-reproducible, just not round-exact.
  double clock_tick_us = 0.0;
  /// Crash/late-join churn. crash_rate = probability a subscription's
  /// client misses this round's heartbeat; late_join_rate = probability
  /// an arrival is a rejoin of a previously departed subscription.
  FaultPolicy fault;
  QueryGenConfig query_shape;
  /// Uniform data density under the cost model. Keep query sizes the
  /// same magnitude as K_M (the regime where merge decisions are
  /// non-trivial and the bounder's search windows have leverage); a
  /// density that makes sizes dwarf K_M degrades every window to the
  /// whole domain and repair scans to quadratic.
  double density = 0.0005;
  CostModel cost_model{10.0, 1.0, 0.5, 0.0};
  /// Service knobs under test (enabled/clock are overridden by the
  /// harness; everything else — batch size, queue limit, repair budget
  /// and deadline, drift replanning — is the experiment).
  LiveServiceConfig service;
  uint64_t seed = 42;
  /// Rounds between structural invariant checks (1 = every round; the
  /// checks are O(live population), so soaks raise this).
  size_t invariant_check_every = 1;
  /// Run a pruned from-scratch merge over the final population and
  /// report its cost and candidate evaluations for comparison.
  bool compare_fresh = true;
};

/// Per-round measurements. Everything except wall_batch_us is
/// deterministic in the config (and folded into ChurnOutcome::digest).
struct ChurnRoundStats {
  int round = 0;
  /// Leases the harness believes it holds after the round.
  size_t held = 0;
  size_t queue_depth = 0;
  uint64_t sheds_total = 0;
  size_t swept = 0;
  size_t renew_failures = 0;
  int repair_moves = 0;
  bool repair_deadline_hit = false;
  uint64_t evaluations = 0;
  double cost = 0.0;
  double bound = 0.0;
  double drift = 0.0;
  bool replan_triggered = false;
  bool replan_adopted = false;
  bool replan_abandoned = false;
  /// Real (steady-clock) latency of this round's ProcessBatch — the
  /// number the repair-latency percentiles are built from. Excluded from
  /// the determinism digest.
  double wall_batch_us = 0.0;
};

/// Result of a churn run.
struct ChurnOutcome {
  std::vector<ChurnRoundStats> rounds;
  /// Empty when every structural invariant held; else the first failure.
  std::string invariant_error;
  LiveStats final_stats;
  double final_cost = 0.0;
  /// Incremental maintenance work over the whole run, seeding included.
  uint64_t incremental_evals = 0;
  /// Steady-state maintenance work only: evaluations spent after the
  /// initial population was seeded (the rounds plus the final drain).
  /// This is the number to weigh against replanning from scratch every
  /// round — every policy pays the same one-time seeding bootstrap.
  uint64_t maintenance_evals = 0;
  /// From-scratch comparison over the final population (compare_fresh).
  double fresh_cost = 0.0;
  uint64_t fresh_evals = 0;
  /// FNV-1a digest over every deterministic per-round field plus the
  /// final counters; two runs of the same config must agree exactly.
  uint64_t digest = 0;

  bool invariants_ok() const { return invariant_error.empty(); }
};

/// Runs the churn scenario against a LivePlanManager built on a
/// bounding-rect procedure and uniform-density estimator.
Result<ChurnOutcome> RunServiceChurn(const ChurnConfig& config);

}  // namespace qsp

#endif  // QSP_SIM_CHURN_H_
