#include "sim/continuous.h"

#include <algorithm>
#include <deque>
#include <set>

#include "geom/point.h"
#include "merge/incremental_merger.h"
#include "merge/pair_merger.h"
#include "query/merge_context.h"
#include "stats/size_estimator.h"
#include "util/rng.h"

namespace qsp {
namespace {

/// A round's freshly inserted objects (positions only — payload does not
/// affect the delta-dissemination accounting).
struct Delta {
  std::vector<Point> points;

  size_t CountIn(const Rect& rect) const {
    size_t n = 0;
    for (const Point& p : points) {
      if (rect.Contains(p)) ++n;
    }
    return n;
  }
};

}  // namespace

Result<ContinuousOutcome> RunContinuous(const ContinuousConfig& config) {
  if (config.rounds <= 0) {
    return Status::InvalidArgument("rounds must be positive");
  }
  Rng rng(config.seed);

  // Hot spots for clustered object arrivals.
  std::vector<Point> hotspots;
  for (int i = 0; i < config.object_clusters; ++i) {
    hotspots.push_back(
        {rng.UniformDouble(config.domain.x_lo(), config.domain.x_hi()),
         rng.UniformDouble(config.domain.y_lo(), config.domain.y_hi())});
  }
  const double spread = 0.03 * config.domain.Width();

  QuerySet queries;
  UniformDensityEstimator estimator(
      static_cast<double>(config.inserts_per_round) /
      std::max(config.domain.Area(), 1.0));
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);

  IncrementalMerger incremental(&ctx, config.cost_model);
  // kReplanEachRound is the *naive* baseline the incremental policies are
  // measured against, so it runs the exhaustive (unpruned) pair merger —
  // its maintenance_evals then count every pair evaluation, the work a
  // from-scratch replan fundamentally redoes each round. (The pruned
  // merger returns the identical partition while evaluating almost
  // nothing, which would make the baseline meaningless as a yardstick.)
  const PairMerger scratch(/*use_heap=*/true, /*pruning=*/false);

  // Active subscriptions, FIFO for departures.
  std::deque<QueryId> active;
  QueryGenConfig shape = config.query_shape;
  shape.domain = config.domain;
  shape.num_queries = 1;
  auto new_subscription = [&]() {
    const Rect rect = GenerateQueries(shape, &rng)[0];
    const QueryId id = queries.Add(rect);
    active.push_back(id);
    incremental.AddQuery(id);
  };
  for (size_t i = 0; i < config.initial_queries; ++i) new_subscription();

  ContinuousOutcome outcome;
  outcome.all_deltas_correct = true;
  uint64_t evals_before = incremental.evaluations();

  Partition replan_partition;  // Used by kReplanEachRound.

  for (int round = 0; round < config.rounds; ++round) {
    // --- Subscription churn.
    for (size_t i = 0; i < config.arrivals_per_round; ++i) new_subscription();
    for (size_t i = 0;
         i < config.departures_per_round && active.size() > 1; ++i) {
      incremental.RemoveQuery(active.front());
      active.pop_front();
    }

    // --- Plan maintenance.
    ContinuousRoundStats stats;
    stats.round = round;
    stats.active_queries = active.size();
    const Partition* plan = nullptr;
    switch (config.maintenance) {
      case PlanMaintenance::kIncremental:
        plan = &incremental.partition();
        stats.plan_cost = incremental.cost();
        break;
      case PlanMaintenance::kIncrementalRepair:
        incremental.Repair();
        plan = &incremental.partition();
        stats.plan_cost = incremental.cost();
        break;
      case PlanMaintenance::kReplanEachRound: {
        Partition start;
        for (QueryId q : active) start.push_back({q});
        MergeOutcome merged =
            scratch.MergeFrom(ctx, config.cost_model, std::move(start));
        stats.maintenance_evals += merged.candidates;
        stats.plan_cost = merged.cost;
        replan_partition = std::move(merged.partition);
        plan = &replan_partition;
        break;
      }
    }
    if (config.maintenance != PlanMaintenance::kReplanEachRound) {
      stats.maintenance_evals = incremental.evaluations() - evals_before;
      evals_before = incremental.evaluations();
    }
    stats.groups = plan->size();

    // --- New objects this round.
    Delta delta;
    for (size_t i = 0; i < config.inserts_per_round; ++i) {
      Point p;
      if (!hotspots.empty() &&
          rng.Bernoulli(config.object_clustered_fraction)) {
        const Point& c = hotspots[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(hotspots.size()) - 1))];
        p.x = std::clamp(rng.Normal(c.x, spread), config.domain.x_lo(),
                         config.domain.x_hi());
        p.y = std::clamp(rng.Normal(c.y, spread), config.domain.y_lo(),
                         config.domain.y_hi());
      } else {
        p.x = rng.UniformDouble(config.domain.x_lo(), config.domain.x_hi());
        p.y = rng.UniformDouble(config.domain.y_lo(), config.domain.y_hi());
      }
      delta.points.push_back(p);
    }

    // --- Delta dissemination per merged group. Continuous queries
    // receive only this round's new objects; one message per merged
    // query, extractor = original rectangle (Section 3.1).
    for (const QueryGroup& group : *plan) {
      for (const MergedQuery& merged : procedure.Merge(queries, group)) {
        ++stats.messages;
        // Payload: delta points inside the merged region.
        std::vector<const Point*> payload;
        for (const Point& p : delta.points) {
          for (const Rect& piece : merged.region) {
            if (piece.Contains(p)) {
              payload.push_back(&p);
              break;
            }
          }
        }
        stats.delta_rows += payload.size();
        // Extraction + verification per member query.
        for (QueryId member : merged.members) {
          const Rect& rect = queries.rect(member);
          size_t extracted = 0;
          for (const Point* p : payload) {
            if (rect.Contains(*p)) ++extracted;
          }
          stats.irrelevant_rows += payload.size() - extracted;
          if (extracted != delta.CountIn(rect)) {
            outcome.all_deltas_correct = false;
          }
        }
      }
    }

    outcome.total_messages += stats.messages;
    outcome.total_delta_rows += stats.delta_rows;
    outcome.total_irrelevant_rows += stats.irrelevant_rows;
    outcome.total_maintenance_evals += stats.maintenance_evals;
    outcome.rounds.push_back(stats);
  }
  return outcome;
}

}  // namespace qsp
