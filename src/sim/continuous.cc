#include "sim/continuous.h"

#include <algorithm>
#include <deque>
#include <limits>

#include "core/live_plan.h"  // qsp-lint: allow(layer-back-edge) continuous-mode sim exercises the live maintainer; harness-over-core, as in churn.h
#include "query/merge_context.h"
#include "stats/size_estimator.h"
#include "util/rng.h"

namespace qsp {
namespace {

/// A round's freshly inserted objects (positions only — payload does not
/// affect the delta-dissemination accounting).
struct Delta {
  std::vector<Point> points;

  size_t CountIn(const Rect& rect) const {
    size_t n = 0;
    for (const Point& p : points) {
      if (rect.Contains(p)) ++n;
    }
    return n;
  }
};

}  // namespace

Result<ContinuousOutcome> RunContinuous(const ContinuousConfig& config) {
  if (config.rounds <= 0) {
    return Status::InvalidArgument("rounds must be positive");
  }
  Rng rng(config.seed);

  // Hot spots for clustered object arrivals.
  std::vector<Point> hotspots;
  for (int i = 0; i < config.object_clusters; ++i) {
    hotspots.push_back(
        {rng.UniformDouble(config.domain.x_lo(), config.domain.x_hi()),
         rng.UniformDouble(config.domain.y_lo(), config.domain.y_hi())});
  }
  const double spread = 0.03 * config.domain.Width();

  QuerySet queries;
  UniformDensityEstimator estimator(
      static_cast<double>(config.inserts_per_round) /
      std::max(config.domain.Area(), 1.0));
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);

  // The scenario rides the live service loop: arrivals and departures go
  // through the lease/admission path and the plan is maintained by the
  // LivePlanManager. Batches are unbounded and leases never expire — the
  // harness drives churn explicitly, so backpressure and TTLs stay out
  // of the measurement.
  LiveServiceConfig opts;
  opts.enabled = true;
  opts.admission_batch_max = std::numeric_limits<size_t>::max();
  opts.admission_queue_limit = std::numeric_limits<size_t>::max();
  switch (config.maintenance) {
    case PlanMaintenance::kIncremental:
    case PlanMaintenance::kReplanEachRound:
      opts.repair_max_moves = -1;  // Greedy placement only.
      break;
    case PlanMaintenance::kIncrementalRepair:
      opts.repair_max_moves = 0;  // Repair to a local minimum per batch.
      break;
  }
  // kReplanEachRound is the *naive* baseline the incremental policies are
  // measured against, so its from-scratch replans run the exhaustive
  // (unpruned) pair merger — their maintenance_evals then count every
  // pair evaluation, the work a replan fundamentally redoes each round.
  // (The pruned merger returns the identical partition while evaluating
  // almost nothing, which would make the baseline meaningless.)
  opts.replan_pruning = false;
  LivePlanManager live(&queries, &ctx, config.cost_model, opts);

  // Active subscriptions, FIFO for departures.
  std::deque<QueryId> active;
  QueryGenConfig shape = config.query_shape;
  shape.domain = config.domain;
  shape.num_queries = 1;
  auto new_subscription = [&]() {
    const Rect rect = GenerateQueries(shape, &rng)[0];
    Result<QueryId> id = live.Subscribe(rect);
    QSP_CHECK(id.ok());  // Unbounded queue: never sheds.
    active.push_back(id.value());
  };
  for (size_t i = 0; i < config.initial_queries; ++i) new_subscription();
  QSP_IGNORE_RESULT(live.DrainAll());  // Initial placement, outside stats.

  ContinuousOutcome outcome;
  outcome.all_deltas_correct = true;
  uint64_t evals_before = live.evaluations();
  uint64_t replan_evals_before = live.Stats().replan_evaluations;

  for (int round = 0; round < config.rounds; ++round) {
    // --- Subscription churn.
    for (size_t i = 0; i < config.arrivals_per_round; ++i) new_subscription();
    for (size_t i = 0;
         i < config.departures_per_round && active.size() > 1; ++i) {
      QSP_CHECK(live.Unsubscribe(active.front()).ok());
      active.pop_front();
    }

    // --- Plan maintenance: drain the round's admissions (greedy
    // placement + per-batch repair per policy), then — for the naive
    // baseline — replace the plan from scratch.
    ContinuousRoundStats stats;
    stats.round = round;
    stats.active_queries = active.size();
    QSP_IGNORE_RESULT(live.DrainAll());
    if (config.maintenance == PlanMaintenance::kReplanEachRound) {
      QSP_CHECK(live.ReplanNow().ok());
      const uint64_t replan_evals = live.Stats().replan_evaluations;
      stats.maintenance_evals = replan_evals - replan_evals_before;
      replan_evals_before = replan_evals;
      evals_before = live.evaluations();
    } else {
      stats.maintenance_evals = live.evaluations() - evals_before;
      evals_before = live.evaluations();
    }
    stats.plan_cost = live.cost();
    const Partition plan = live.PlanSnapshot();
    stats.groups = plan.size();

    // --- New objects this round.
    Delta delta;
    for (size_t i = 0; i < config.inserts_per_round; ++i) {
      Point p;
      if (!hotspots.empty() &&
          rng.Bernoulli(config.object_clustered_fraction)) {
        const Point& c = hotspots[static_cast<size_t>(rng.UniformInt(
            0, static_cast<int64_t>(hotspots.size()) - 1))];
        p.x = std::clamp(rng.Normal(c.x, spread), config.domain.x_lo(),
                         config.domain.x_hi());
        p.y = std::clamp(rng.Normal(c.y, spread), config.domain.y_lo(),
                         config.domain.y_hi());
      } else {
        p.x = rng.UniformDouble(config.domain.x_lo(), config.domain.x_hi());
        p.y = rng.UniformDouble(config.domain.y_lo(), config.domain.y_hi());
      }
      delta.points.push_back(p);
    }

    // --- Delta dissemination per merged group. Continuous queries
    // receive only this round's new objects; one message per merged
    // query, extractor = original rectangle (Section 3.1).
    for (const QueryGroup& group : plan) {
      for (const MergedQuery& merged : procedure.Merge(queries, group)) {
        ++stats.messages;
        // Payload: delta points inside the merged region.
        std::vector<const Point*> payload;
        for (const Point& p : delta.points) {
          for (const Rect& piece : merged.region) {
            if (piece.Contains(p)) {
              payload.push_back(&p);
              break;
            }
          }
        }
        stats.delta_rows += payload.size();
        // Extraction + verification per member query.
        for (QueryId member : merged.members) {
          const Rect& rect = queries.rect(member);
          size_t extracted = 0;
          for (const Point* p : payload) {
            if (rect.Contains(*p)) ++extracted;
          }
          stats.irrelevant_rows += payload.size() - extracted;
          if (extracted != delta.CountIn(rect)) {
            outcome.all_deltas_correct = false;
          }
        }
      }
    }

    outcome.total_messages += stats.messages;
    outcome.total_delta_rows += stats.delta_rows;
    outcome.total_irrelevant_rows += stats.irrelevant_rows;
    outcome.total_maintenance_evals += stats.maintenance_evals;
    outcome.rounds.push_back(stats);
  }
  return outcome;
}

}  // namespace qsp
