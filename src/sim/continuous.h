#ifndef QSP_SIM_CONTINUOUS_H_
#define QSP_SIM_CONTINUOUS_H_

#include <cstdint>
#include <vector>

#include "cost/cost_model.h"
#include "geom/rect.h"
#include "util/status.h"
#include "workload/query_gen.h"

namespace qsp {

/// How the merge plan is maintained as subscriptions churn — the design
/// question of the paper's Section 11 ("we already have a set of queries
/// that have been merged, and a new query arrives; can we incrementally
/// compute a new partition without starting from scratch?").
enum class PlanMaintenance {
  /// New queries are greedily placed, departures just removed; no other
  /// optimization (cheapest, drifts the most).
  kIncremental,
  /// As kIncremental, plus a local-search repair pass every round.
  kIncrementalRepair,
  /// Re-run the Pair Merging Algorithm from scratch every round
  /// (most expensive, best plans).
  kReplanEachRound,
};

/// Configuration of the continuous-query scenario: every round new
/// objects arrive in the database and subscriptions churn; continuous
/// queries are "run" against the round's *new* objects only (the paper's
/// objects-per-second reading of continuous dissemination).
struct ContinuousConfig {
  Rect domain = Rect(0, 0, 1000, 1000);
  int rounds = 20;
  /// Objects inserted per round (uniform over the domain, with a
  /// clustered fraction around fixed hot spots).
  size_t inserts_per_round = 500;
  double object_clustered_fraction = 0.6;
  int object_clusters = 5;
  /// Subscription churn per round.
  size_t initial_queries = 20;
  size_t arrivals_per_round = 3;
  size_t departures_per_round = 2;
  /// Shape of new subscriptions (num_queries ignored).
  QueryGenConfig query_shape;
  CostModel cost_model{10.0, 1.0, 0.5, 0.0};
  PlanMaintenance maintenance = PlanMaintenance::kIncrementalRepair;
  uint64_t seed = 42;
};

/// Per-round measurements.
struct ContinuousRoundStats {
  int round = 0;
  size_t active_queries = 0;
  size_t groups = 0;
  size_t messages = 0;
  /// New tuples transmitted this round (sum over merged deltas).
  size_t delta_rows = 0;
  /// Delta tuples delivered to some subscriber that none of its queries
  /// in that group needed.
  size_t irrelevant_rows = 0;
  /// Estimated plan cost after this round's maintenance.
  double plan_cost = 0.0;
  /// Candidate-group evaluations spent on plan maintenance this round.
  uint64_t maintenance_evals = 0;
};

/// Result of a full run.
struct ContinuousOutcome {
  std::vector<ContinuousRoundStats> rounds;
  /// True when, for every round and every active query, the delivered
  /// delta exactly matched the new objects inside the query's rectangle.
  bool all_deltas_correct = false;
  /// Totals for quick comparison across maintenance policies.
  size_t total_messages = 0;
  size_t total_delta_rows = 0;
  size_t total_irrelevant_rows = 0;
  uint64_t total_maintenance_evals = 0;
};

/// Runs the dynamic scenario: maintains a merge plan under churn with the
/// configured policy, disseminates per-round deltas, and verifies that
/// every subscriber's delta is exact. Uses the bounding-rectangle merge
/// procedure and the uniform-density estimator (deltas are uniform in
/// expectation).
Result<ContinuousOutcome> RunContinuous(const ContinuousConfig& config);

}  // namespace qsp

#endif  // QSP_SIM_CONTINUOUS_H_
