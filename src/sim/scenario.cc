#include "sim/scenario.h"

namespace qsp {

Result<ScenarioResult> RunScenario(const ScenarioConfig& config) {
  if (config.rounds <= 0) {
    return Status::InvalidArgument("rounds must be positive");
  }
  if (config.num_clients == 0) {
    return Status::InvalidArgument("need at least one client");
  }
  Rng rng(config.seed);

  TableGeneratorConfig objects = config.objects;
  Table table = GenerateTable(objects, &rng);

  QueryGenConfig workload = config.workload;
  workload.domain = objects.domain;
  const std::vector<Rect> rects = GenerateQueries(workload, &rng);

  SubscriptionService service(std::move(table), objects.domain,
                              config.service);
  // Register clients, then mirror AssignClients' strategy through the
  // service so subscriptions and client ids stay consistent.
  QuerySet staging(rects);
  ClientSet assignment =
      AssignClients(staging, config.num_clients, config.assignment, &rng);
  for (size_t c = 0; c < config.num_clients; ++c) service.AddClient();
  for (ClientId c = 0; c < config.num_clients; ++c) {
    for (QueryId q : assignment.QueriesOf(c)) {
      service.Subscribe(c, rects[q]);
    }
  }

  ScenarioResult result;
  auto plan = service.Plan();
  if (!plan.ok()) return plan.status();
  result.plan = std::move(plan).value();

  result.all_correct = true;
  for (int round = 0; round < config.rounds; ++round) {
    auto stats = service.RunRound();
    if (!stats.ok()) return stats.status();
    if (!stats->all_answers_correct) result.all_correct = false;
    result.rounds.push_back(*stats);
  }
  return result;
}

}  // namespace qsp
