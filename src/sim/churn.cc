#include "sim/churn.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <deque>

#include "merge/pair_merger.h"
#include "obs/clock.h"
#include "query/merge_context.h"
#include "stats/size_estimator.h"

namespace qsp {
namespace {

constexpr uint64_t kFnvOffset = 14695981039346656037ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t FnvMix(uint64_t hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (value >> (8 * i)) & 0xffu;
    hash *= kFnvPrime;
  }
  return hash;
}

uint64_t Bits(double value) {
  uint64_t out = 0;
  std::memcpy(&out, &value, sizeof(out));
  return out;
}

double WallMicros() {
  // Real maintenance latency is the measurement (repair-SLO
  // percentiles); it is excluded from the determinism digest.
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now()  // qsp-lint: allow(nondeterminism) latency measurement, digest-exempt
                 .time_since_epoch())
      .count();
}

/// Structural invariants of the maintained plan. `drained` = the
/// admission queue is empty, so the partition must cover the live lease
/// set exactly; otherwise live ids must at least all be planned (a
/// kRetiring id may legitimately linger in the plan until its queued
/// removal applies).
std::string CheckInvariants(const LivePlanManager& live,
                            const MergeContext& ctx, const CostModel& model,
                            bool drained) {
  const Partition plan = live.PlanSnapshot();
  std::vector<QueryId> members;
  for (const QueryGroup& group : plan) {
    if (group.empty()) return "empty group in live partition";
    for (QueryId id : group) {
      if (id >= ctx.num_queries()) return "plan references unknown query id";
      members.push_back(id);
    }
  }
  std::sort(members.begin(), members.end());
  if (std::adjacent_find(members.begin(), members.end()) != members.end()) {
    return "query id appears in two groups";
  }
  const std::vector<QueryId> live_ids = live.LiveIds();
  if (drained) {
    if (members != live_ids) {
      return "drained partition does not cover exactly the live leases";
    }
  } else if (!std::includes(members.begin(), members.end(), live_ids.begin(),
                            live_ids.end())) {
    return "live lease missing from the partition";
  }
  double recomputed = 0.0;
  for (const QueryGroup& group : plan) {
    recomputed += model.GroupCost(ctx.Stats(group));
  }
  const double tolerance = 1e-6 * std::max(1.0, std::abs(recomputed));
  if (std::abs(recomputed - live.cost()) > tolerance) {
    return "maintained cost drifted from recomputed partition cost";
  }
  return "";
}

}  // namespace

Result<ChurnOutcome> RunServiceChurn(const ChurnConfig& config) {
  if (config.rounds <= 0) {
    return Status::InvalidArgument("rounds must be positive");
  }
  Rng rng(config.seed);
  // ChurnConfig::fault is harness input, not a ServiceConfig knob: the
  // injector is the experiment, resolved right here.
  FaultInjector injector(config.fault);  // qsp-lint: allow(ungated-knob) ChurnConfig, not ServiceConfig
  // tick 0 (default): reads do not advance time — the harness alone
  // moves the clock, which is what makes lease expiry exact and runs
  // repeatable. See ChurnConfig::clock_tick_us.
  obs::FakeClock control_clock(config.clock_tick_us);

  QuerySet queries;
  UniformDensityEstimator estimator(config.density);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);

  LiveServiceConfig opts = config.service;
  opts.enabled = true;
  opts.default_ttl_ms = config.ttl_ms;
  opts.clock = &control_clock;
  LivePlanManager live(&queries, &ctx, config.cost_model, opts);

  QueryGenConfig shape = config.query_shape;
  shape.domain = config.domain;
  shape.num_queries = 1;

  // Harness-side lease bookkeeping: flag per id, arrival order for
  // voluntary departures, and a pool of departed rectangles that
  // late-joiners re-subscribe.
  std::vector<bool> held;
  std::deque<QueryId> arrival_order;
  std::deque<Rect> rejoin_pool;
  size_t held_count = 0;

  auto offer = [&](const Rect& rect) {
    Result<QueryId> id = live.Subscribe(rect, config.ttl_ms);
    if (!id.ok()) return;  // Shed under backpressure; counted by stats.
    if (held.size() <= id.value()) held.resize(id.value() + 1, false);
    held[id.value()] = true;
    arrival_order.push_back(id.value());
    ++held_count;
  };
  auto fresh_rect = [&]() { return GenerateQueries(shape, &rng)[0]; };

  // Seed the initial population, draining at half the queue limit so
  // seeding never trips the admission backpressure meant for
  // steady-state rounds. Each drain pays at least one repair scan per
  // batch, so the cadence is as coarse as the queue allows.
  const size_t seed_drain_every =
      std::max<size_t>(1, opts.admission_queue_limit / 2);
  for (size_t i = 0; i < config.initial_subs; ++i) {
    offer(fresh_rect());
    if ((i + 1) % seed_drain_every == 0) QSP_IGNORE_RESULT(live.DrainAll());
  }
  QSP_IGNORE_RESULT(live.DrainAll());

  ChurnOutcome outcome;
  uint64_t digest = kFnvOffset;
  const uint64_t seed_evals = live.evaluations();
  uint64_t evals_before = seed_evals;

  for (int round = 0; round < config.rounds; ++round) {
    ChurnRoundStats stats;
    stats.round = round;
    control_clock.AdvanceMicros(config.round_duration_us);

    // Expiry sweep before heartbeats: a client whose lease lapsed while
    // it was crashed must rejoin, not renew.
    stats.swept = live.SweepExpired();

    // Heartbeats, ascending id order (the injector's draw order). A
    // crashed client misses this round's renewal.
    for (QueryId id = 0; id < held.size(); ++id) {
      if (!held[id]) continue;
      if (injector.CrashesThisRound()) continue;
      if (!live.Renew(id, config.ttl_ms).ok()) ++stats.renew_failures;
    }

    // Voluntary departures, oldest leases first.
    for (size_t i = 0; i < config.departures_per_round;) {
      if (arrival_order.empty()) break;
      const QueryId id = arrival_order.front();
      arrival_order.pop_front();
      if (id >= held.size() || !held[id]) continue;  // Already retired.
      QSP_IGNORE_RESULT(live.Unsubscribe(id));
      ++i;
    }

    // Arrivals; a late joiner re-subscribes a departed rectangle.
    for (size_t i = 0; i < config.arrivals_per_round; ++i) {
      if (injector.JoinsLate() && !rejoin_pool.empty()) {
        offer(rejoin_pool.front());
        rejoin_pool.pop_front();
      } else {
        offer(fresh_rect());
      }
    }

    const double wall_start = WallMicros();
    const BatchReport report = live.ProcessBatch();
    stats.wall_batch_us = WallMicros() - wall_start;

    for (QueryId id : report.retired) {
      if (id < held.size() && held[id]) {
        held[id] = false;
        --held_count;
        rejoin_pool.push_back(queries.rect(id));
        if (rejoin_pool.size() > 4096) rejoin_pool.pop_front();
      }
    }

    const LiveStats snapshot = live.Stats();
    stats.held = held_count;
    stats.queue_depth = snapshot.queue_depth;
    stats.sheds_total = snapshot.sheds;
    stats.repair_moves = report.repair_moves;
    stats.repair_deadline_hit = report.repair_deadline_hit;
    stats.evaluations = live.evaluations() - evals_before;
    evals_before = live.evaluations();
    stats.cost = report.cost;
    stats.bound = report.bound;
    stats.drift = report.drift;
    stats.replan_triggered = report.replan_triggered;
    stats.replan_adopted = report.replan_adopted;
    stats.replan_abandoned = report.replan_abandoned;

    if (config.invariant_check_every > 0 &&
        static_cast<size_t>(round) % config.invariant_check_every == 0 &&
        outcome.invariant_error.empty()) {
      outcome.invariant_error =
          CheckInvariants(live, ctx, config.cost_model, /*drained=*/false);
    }

    digest = FnvMix(digest, static_cast<uint64_t>(stats.round));
    digest = FnvMix(digest, stats.held);
    digest = FnvMix(digest, stats.queue_depth);
    digest = FnvMix(digest, stats.sheds_total);
    digest = FnvMix(digest, stats.swept);
    digest = FnvMix(digest, stats.renew_failures);
    digest = FnvMix(digest, static_cast<uint64_t>(stats.repair_moves));
    digest = FnvMix(digest, stats.repair_deadline_hit ? 1 : 0);
    digest = FnvMix(digest, stats.evaluations);
    digest = FnvMix(digest, Bits(stats.cost));
    digest = FnvMix(digest, Bits(stats.bound));
    digest = FnvMix(digest, Bits(stats.drift));
    digest = FnvMix(digest, (stats.replan_triggered ? 1u : 0u) |
                                (stats.replan_adopted ? 2u : 0u) |
                                (stats.replan_abandoned ? 4u : 0u));
    outcome.rounds.push_back(stats);
  }

  // Settle: drain the backlog, then the partition must cover exactly the
  // live lease set.
  const BatchReport final_report = live.DrainAll();
  for (QueryId id : final_report.retired) {
    if (id < held.size() && held[id]) {
      held[id] = false;
      --held_count;
    }
  }
  if (outcome.invariant_error.empty()) {
    outcome.invariant_error =
        CheckInvariants(live, ctx, config.cost_model, /*drained=*/true);
  }

  outcome.final_stats = live.Stats();
  outcome.final_cost = live.cost();
  outcome.incremental_evals = live.evaluations();
  outcome.maintenance_evals = live.evaluations() - seed_evals;

  if (config.compare_fresh) {
    // From-scratch yardstick over the final population, on a dense
    // snapshot (same technique as the drift replans).
    QuerySet snap;
    for (QueryId id : live.LiveIds()) {
      QSP_IGNORE_RESULT(snap.Add(queries.rect(id)));
    }
    if (snap.size() > 0) {
      MergeContext snap_ctx(&snap, &estimator, &procedure);
      PairMerger merger(/*use_heap=*/true, /*pruning=*/true);
      Result<MergeOutcome> fresh = merger.Merge(snap_ctx, config.cost_model);
      if (fresh.ok()) {
        outcome.fresh_cost = fresh.value().cost;
        outcome.fresh_evals = fresh.value().candidates;
      }
    }
  }

  digest = FnvMix(digest, Bits(outcome.final_cost));
  digest = FnvMix(digest, outcome.incremental_evals);
  digest = FnvMix(digest, outcome.maintenance_evals);
  digest = FnvMix(digest, outcome.final_stats.active);
  digest = FnvMix(digest, outcome.final_stats.sheds);
  digest = FnvMix(digest, outcome.final_stats.expired);
  digest = FnvMix(digest, outcome.final_stats.renewals);
  digest = FnvMix(digest, outcome.final_stats.replans_adopted);
  digest = FnvMix(digest, outcome.final_stats.replans_abandoned);
  digest = FnvMix(digest, Bits(outcome.fresh_cost));
  digest = FnvMix(digest, outcome.fresh_evals);
  outcome.digest = digest;
  return outcome;
}

}  // namespace qsp
