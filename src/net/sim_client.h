#ifndef QSP_NET_SIM_CLIENT_H_
#define QSP_NET_SIM_CLIENT_H_

#include <map>
#include <set>
#include <vector>

#include "net/message.h"
#include "query/query.h"
#include "relation/table.h"

namespace qsp {

/// Per-client resource counters for one round — the simulated analogues
/// of the client-side terms of the cost model.
struct ClientStats {
  /// Messages whose header the client had to check (everything broadcast
  /// on its channel — the k6 * |M| term).
  size_t headers_checked = 0;
  /// Messages actually addressed to the client.
  size_t messages_processed = 0;
  /// Rows the client's extractors had to examine (payload of processed
  /// messages, counted once per extractor application — the k5 * U term).
  size_t rows_examined = 0;
  /// Rows delivered to the client that ended up in none of its answers.
  size_t rows_irrelevant = 0;
  /// Rows skipped because they were already in the client's cache
  /// (dynamic-scenario extension; 0 with caching disabled).
  size_t cache_hits = 0;
  /// Messages that arrived on a channel this client does not listen to.
  /// A real receiver cannot trust the sender's routing, so these are
  /// counted and discarded instead of asserted away.
  size_t misrouted_messages = 0;
  /// Receptions discarded because their sequence number was already
  /// processed this round (duplicated deliveries, redundant
  /// retransmissions). Only nonzero in reliable mode.
  size_t duplicates_ignored = 0;
};

/// Delivery outcome of one subscription after a round under the lossy
/// channel (DESIGN.md §6). Lossless rounds are always kComplete.
enum class AnswerStatus {
  /// Every message of the round was received; the answer is exact.
  kComplete,
  /// Messages are missing after recovery but at least one message
  /// contributed to this subscription — the answer may be a subset.
  kPartial,
  /// Messages are missing and none of the received ones carried an
  /// extractor for this subscription; the answer is empty and unusable.
  kFailed,
};

/// A "dumb-but-not-that-dumb" operational unit: listens to one channel,
/// checks headers, applies extractors, combines partial answers.
class SimClient {
 public:
  /// `subscriptions` are the client's query ids (ascending). In
  /// `reliable` mode the client tracks sequence numbers: duplicate
  /// receptions are ignored and gaps are reported via MissingSeqs() for
  /// the NACK/retransmission protocol.
  SimClient(ClientId id, size_t channel, const QuerySet* queries,
            std::vector<QueryId> subscriptions, bool enable_cache = false,
            bool reliable = false);

  ClientId id() const { return id_; }
  size_t channel() const { return channel_; }

  /// Processes one broadcast message. Messages on a foreign channel are
  /// counted as misrouted and dropped (never trusted).
  void Receive(const Message& msg, const Table& table);

  /// The combined, deduplicated answer to one subscribed query after all
  /// messages of the round were received.
  std::vector<RowId> AnswerFor(QueryId query) const;

  const std::vector<QueryId>& subscriptions() const { return subscriptions_; }
  const ClientStats& stats() const { return stats_; }

  /// Clears per-round answers, counters, sequence state, and answer
  /// statuses; the cache persists.
  void StartRound();

  /// Sequence numbers of this round not yet received, given the server's
  /// announced per-channel message count (the session announcement of the
  /// NACK protocol). Empty in non-reliable mode. A client that received
  /// nothing reports every sequence number as missing.
  std::vector<uint32_t> MissingSeqs(uint32_t channel_total) const;

  /// Grades each subscription after recovery ended: kComplete when no
  /// sequence gap remains; otherwise the client cannot know what the lost
  /// messages carried, so every subscription degrades to kPartial (some
  /// data arrived for it) or kFailed (none did). No-op in non-reliable
  /// mode (everything stays kComplete).
  void FinalizeRound(uint32_t channel_total);

  /// Status of one subscription (valid after FinalizeRound; defaults to
  /// kComplete).
  AnswerStatus StatusFor(QueryId query) const;

  /// Subscriptions whose status is not kComplete.
  size_t num_incomplete() const;

 private:
  ClientId id_;
  size_t channel_;
  const QuerySet* queries_;
  std::vector<QueryId> subscriptions_;
  bool enable_cache_;
  bool reliable_;
  std::map<QueryId, std::vector<std::vector<RowId>>> partial_answers_;
  std::set<RowId> cache_;
  std::set<uint32_t> seen_seqs_;
  std::map<QueryId, AnswerStatus> statuses_;
  ClientStats stats_;
};

}  // namespace qsp

#endif  // QSP_NET_SIM_CLIENT_H_
