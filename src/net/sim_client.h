#ifndef QSP_NET_SIM_CLIENT_H_
#define QSP_NET_SIM_CLIENT_H_

#include <map>
#include <set>
#include <vector>

#include "net/message.h"
#include "query/query.h"
#include "relation/table.h"

namespace qsp {

/// Per-client resource counters for one round — the simulated analogues
/// of the client-side terms of the cost model.
struct ClientStats {
  /// Messages whose header the client had to check (everything broadcast
  /// on its channel — the k6 * |M| term).
  size_t headers_checked = 0;
  /// Messages actually addressed to the client.
  size_t messages_processed = 0;
  /// Rows the client's extractors had to examine (payload of processed
  /// messages, counted once per extractor application — the k5 * U term).
  size_t rows_examined = 0;
  /// Rows delivered to the client that ended up in none of its answers.
  size_t rows_irrelevant = 0;
  /// Rows skipped because they were already in the client's cache
  /// (dynamic-scenario extension; 0 with caching disabled).
  size_t cache_hits = 0;
};

/// A "dumb-but-not-that-dumb" operational unit: listens to one channel,
/// checks headers, applies extractors, combines partial answers.
class SimClient {
 public:
  /// `subscriptions` are the client's query ids (ascending).
  SimClient(ClientId id, size_t channel, const QuerySet* queries,
            std::vector<QueryId> subscriptions, bool enable_cache = false);

  ClientId id() const { return id_; }
  size_t channel() const { return channel_; }

  /// Processes one broadcast message (must be on this client's channel).
  void Receive(const Message& msg, const Table& table);

  /// The combined, deduplicated answer to one subscribed query after all
  /// messages of the round were received.
  std::vector<RowId> AnswerFor(QueryId query) const;

  const std::vector<QueryId>& subscriptions() const { return subscriptions_; }
  const ClientStats& stats() const { return stats_; }

  /// Clears per-round answers and counters; the cache persists.
  void StartRound();

 private:
  ClientId id_;
  size_t channel_;
  const QuerySet* queries_;
  std::vector<QueryId> subscriptions_;
  bool enable_cache_;
  std::map<QueryId, std::vector<std::vector<RowId>>> partial_answers_;
  std::set<RowId> cache_;
  ClientStats stats_;
};

}  // namespace qsp

#endif  // QSP_NET_SIM_CLIENT_H_
