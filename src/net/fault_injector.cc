#include "net/fault_injector.h"

#include <algorithm>

namespace qsp {

FaultInjector::FaultInjector(FaultPolicy policy)
    : policy_(std::move(policy)), rng_(policy_.seed) {}

bool FaultInjector::DropDelivery(uint32_t seq, int attempt) {
  const auto& always = policy_.drop_seq_every_tx;
  if (std::find(always.begin(), always.end(), seq) != always.end()) {
    return true;
  }
  if (attempt == 0) {
    const auto& first = policy_.drop_seq_first_tx;
    if (std::find(first.begin(), first.end(), seq) != first.end()) {
      return true;
    }
  }
  return policy_.drop_rate > 0 && rng_.Bernoulli(policy_.drop_rate);
}

size_t FaultInjector::CorruptFrame(std::vector<uint8_t>* frame) {
  if (policy_.corrupt_rate <= 0) return 0;
  size_t corrupted = 0;
  for (uint8_t& byte : *frame) {
    if (rng_.Bernoulli(policy_.corrupt_rate)) {
      byte ^= static_cast<uint8_t>(rng_.UniformInt(1, 255));
      ++corrupted;
    }
  }
  return corrupted;
}

}  // namespace qsp
