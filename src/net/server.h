#ifndef QSP_NET_SERVER_H_
#define QSP_NET_SERVER_H_

#include <vector>

#include "channel/client_set.h"
#include "net/message.h"
#include "query/merge_procedure.h"
#include "query/query.h"
#include "relation/spatial_index.h"
#include "relation/table.h"

namespace qsp {

/// The subscription server of the conceptual model (Figure 4): it
/// periodically evaluates each merged query against the database and
/// emits one Message per merged query on the channel that serves it,
/// with recipient lists and extractors in the header.
///
/// Does not own any of its inputs.
class Server {
 public:
  Server(const Table* table, const SpatialIndex* index, const QuerySet* queries,
         const ClientSet* clients);

  /// Runs all merged queries of `plan` under `procedure` and builds the
  /// outgoing messages. A merged query whose answer is empty still
  /// produces a message (clients must learn their answers are empty).
  /// `mode` selects between self-extraction and server-side tagging
  /// (Section 3.1's two extractor implementations).
  std::vector<Message> ExecuteRound(
      const DisseminationPlan& plan, const MergeProcedure& procedure,
      ExtractionMode mode = ExtractionMode::kSelfExtract) const;

  /// Same, for explicit merged-query lists per channel — the shape cover
  /// plans (merge/cover_refiner.h) produce, where one query may be a
  /// member of several merged queries and combines their answers.
  /// `merged_per_channel` parallels `allocation`.
  std::vector<Message> ExecuteRoundMerged(
      const Allocation& allocation,
      const std::vector<std::vector<MergedQuery>>& merged_per_channel,
      ExtractionMode mode = ExtractionMode::kSelfExtract) const;

  /// Ground truth: the exact answer of one original query.
  std::vector<RowId> DirectAnswer(QueryId query) const;

 private:
  const Table* table_;
  const SpatialIndex* index_;
  const QuerySet* queries_;
  const ClientSet* clients_;
};

}  // namespace qsp

#endif  // QSP_NET_SERVER_H_
