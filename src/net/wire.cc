#include "net/wire.h"

#include <array>
#include <cstring>

namespace qsp {
namespace {

constexpr uint32_t kMagic = 0x51535032;  // "QSP2" — checksummed frames.

/// Bytes covered by the checksum start after the magic + crc fields.
constexpr size_t kCrcCoverageOffset = 8;

}  // namespace

uint32_t Crc32(const uint8_t* data, size_t size) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ data[i]) & 0xFF] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void WireWriter::PutU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back((v >> (8 * i)) & 0xFF);
}

void WireWriter::PutU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back((v >> (8 * i)) & 0xFF);
}

void WireWriter::PutDouble(double v) {
  uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void WireWriter::PutString(const std::string& v) {
  PutU32(static_cast<uint32_t>(v.size()));
  buffer_.insert(buffer_.end(), v.begin(), v.end());
}

void WireWriter::PatchU32(size_t pos, uint32_t v) {
  for (size_t i = 0; i < 4; ++i) {
    buffer_.at(pos + i) = static_cast<uint8_t>((v >> (8 * i)) & 0xFF);
  }
}

Result<uint8_t> WireReader::GetU8() {
  if (pos_ + 1 > buffer_.size()) {
    return Status::OutOfRange("truncated frame (u8)");
  }
  return buffer_[pos_++];
}

Result<uint32_t> WireReader::GetU32() {
  if (pos_ + 4 > buffer_.size()) {
    return Status::OutOfRange("truncated frame (u32)");
  }
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(buffer_[pos_ + static_cast<size_t>(i)])
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> WireReader::GetU64() {
  if (pos_ + 8 > buffer_.size()) {
    return Status::OutOfRange("truncated frame (u64)");
  }
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(buffer_[pos_ + static_cast<size_t>(i)])
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

Result<double> WireReader::GetDouble() {
  auto bits = GetU64();
  if (!bits.ok()) return bits.status();
  double v;
  const uint64_t raw = bits.value();
  std::memcpy(&v, &raw, sizeof(v));
  return v;
}

Result<std::string> WireReader::GetString() {
  auto length = GetU32();
  if (!length.ok()) return length.status();
  // Compare against the bytes actually left instead of adding to pos_, so
  // a hostile length can never overflow the bound check.
  if (length.value() > remaining()) {
    return Status::OutOfRange("truncated frame (string body)");
  }
  if (length.value() == 0) return std::string();
  std::string out(reinterpret_cast<const char*>(&buffer_[pos_]),
                  length.value());
  pos_ += length.value();
  return out;
}

Result<std::vector<uint8_t>> EncodeMessage(const Message& msg,
                                           const Table& table) {
  WireWriter writer;
  writer.PutU32(kMagic);
  writer.PutU32(0);  // Checksum placeholder, patched after encoding.
  writer.PutU32(static_cast<uint32_t>(msg.channel));
  writer.PutU32(msg.seq);
  writer.PutU32(msg.round_id);
  writer.PutU32(msg.total_in_round);

  writer.PutU32(static_cast<uint32_t>(msg.recipients.size()));
  for (ClientId c : msg.recipients) writer.PutU32(c);

  writer.PutU32(static_cast<uint32_t>(msg.extractors.size()));
  for (const HeaderEntry& entry : msg.extractors) {
    writer.PutU32(entry.client);
    writer.PutU32(entry.spec.query);
    writer.PutDouble(entry.spec.rect.x_lo());
    writer.PutDouble(entry.spec.rect.y_lo());
    writer.PutDouble(entry.spec.rect.x_hi());
    writer.PutDouble(entry.spec.rect.y_hi());
  }

  writer.PutU32(static_cast<uint32_t>(msg.payload.size()));

  // Optional server-tag block (Section 3.1's tagged-object extractors).
  writer.PutU8(msg.HasTags() ? 1 : 0);
  if (msg.HasTags()) {
    if (msg.payload_tags.size() != msg.payload.size()) {
      return Status::InvalidArgument("payload_tags/payload size mismatch");
    }
    writer.PutU32(static_cast<uint32_t>(msg.members.size()));
    for (QueryId member : msg.members) writer.PutU32(member);
    for (uint32_t tags : msg.payload_tags) writer.PutU32(tags);
  }

  for (RowId row : msg.payload) {
    if (row >= table.num_rows()) {
      return Status::InvalidArgument("payload row id out of range");
    }
    for (const Value& value : table.row(row)) {
      switch (TypeOf(value)) {
        case ValueType::kInt64:
          writer.PutU64(static_cast<uint64_t>(std::get<int64_t>(value)));
          break;
        case ValueType::kDouble:
          writer.PutDouble(std::get<double>(value));
          break;
        case ValueType::kString:
          writer.PutString(std::get<std::string>(value));
          break;
      }
    }
  }
  writer.PatchU32(4, Crc32(writer.buffer().data() + kCrcCoverageOffset,
                           writer.buffer().size() - kCrcCoverageOffset));
  return writer.Take();
}

Result<DecodedMessage> DecodeMessage(const std::vector<uint8_t>& frame,
                                     const Schema& schema) {
  WireReader reader(frame);
  auto magic = reader.GetU32();
  if (!magic.ok()) return magic.status();
  if (magic.value() != kMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  auto crc = reader.GetU32();
  if (!crc.ok()) return crc.status();
  if (crc.value() != Crc32(frame.data() + kCrcCoverageOffset,
                           frame.size() - kCrcCoverageOffset)) {
    return Status::InvalidArgument("frame checksum mismatch");
  }
  DecodedMessage out;
  auto channel = reader.GetU32();
  if (!channel.ok()) return channel.status();
  out.channel = channel.value();
  auto seq = reader.GetU32();
  if (!seq.ok()) return seq.status();
  out.seq = seq.value();
  auto round_id = reader.GetU32();
  if (!round_id.ok()) return round_id.status();
  out.round_id = round_id.value();
  auto total = reader.GetU32();
  if (!total.ok()) return total.status();
  out.total_in_round = total.value();

  auto num_recipients = reader.GetU32();
  if (!num_recipients.ok()) return num_recipients.status();
  if (num_recipients.value() > reader.remaining() / 4) {
    return Status::OutOfRange("recipient count overflows frame");
  }
  out.recipients.reserve(num_recipients.value());
  for (uint32_t i = 0; i < num_recipients.value(); ++i) {
    auto client = reader.GetU32();
    if (!client.ok()) return client.status();
    out.recipients.push_back(client.value());
  }

  auto num_extractors = reader.GetU32();
  if (!num_extractors.ok()) return num_extractors.status();
  // Each extractor entry occupies 2 u32s + 4 doubles = 40 bytes.
  if (num_extractors.value() > reader.remaining() / 40) {
    return Status::OutOfRange("extractor count overflows frame");
  }
  out.extractors.reserve(num_extractors.value());
  for (uint32_t i = 0; i < num_extractors.value(); ++i) {
    HeaderEntry entry;
    auto client = reader.GetU32();
    if (!client.ok()) return client.status();
    entry.client = client.value();
    auto query = reader.GetU32();
    if (!query.ok()) return query.status();
    entry.spec.query = query.value();
    double coords[4];
    for (double& coord : coords) {
      auto value = reader.GetDouble();
      if (!value.ok()) return value.status();
      coord = value.value();
    }
    entry.spec.rect = Rect(coords[0], coords[1], coords[2], coords[3]);
    out.extractors.push_back(entry);
  }

  auto num_tuples = reader.GetU32();
  if (!num_tuples.ok()) return num_tuples.status();

  auto has_tags = reader.GetU8();
  if (!has_tags.ok()) return has_tags.status();
  if (has_tags.value() == 1) {
    auto num_members = reader.GetU32();
    if (!num_members.ok()) return num_members.status();
    if (num_members.value() > reader.remaining() / 4) {
      return Status::OutOfRange("member count overflows frame");
    }
    out.members.reserve(num_members.value());
    for (uint32_t i = 0; i < num_members.value(); ++i) {
      auto member = reader.GetU32();
      if (!member.ok()) return member.status();
      out.members.push_back(member.value());
    }
    if (num_tuples.value() > reader.remaining() / 4) {
      return Status::OutOfRange("tag count overflows frame");
    }
    out.tags.reserve(num_tuples.value());
    for (uint32_t i = 0; i < num_tuples.value(); ++i) {
      auto tags = reader.GetU32();
      if (!tags.ok()) return tags.status();
      out.tags.push_back(tags.value());
    }
  } else if (has_tags.value() != 0) {
    return Status::InvalidArgument("bad tag marker");
  }

  // Fail fast on hostile tuple counts: every tuple needs at least
  // min_tuple_bytes (8 per numeric field, 4 for a string length prefix),
  // so a count the remaining bytes cannot hold is rejected before any
  // allocation proportional to it.
  size_t min_tuple_bytes = 0;
  for (size_t f = 0; f < schema.num_fields(); ++f) {
    min_tuple_bytes += schema.field(f).type == ValueType::kString ? 4 : 8;
  }
  if (min_tuple_bytes == 0 && num_tuples.value() > 0) {
    return Status::InvalidArgument("tuples claimed against empty schema");
  }
  if (min_tuple_bytes > 0 &&
      num_tuples.value() > reader.remaining() / min_tuple_bytes) {
    return Status::OutOfRange("tuple count overflows frame");
  }
  out.tuples.reserve(num_tuples.value());
  for (uint32_t i = 0; i < num_tuples.value(); ++i) {
    std::vector<Value> tuple;
    tuple.reserve(schema.num_fields());
    for (size_t f = 0; f < schema.num_fields(); ++f) {
      switch (schema.field(f).type) {
        case ValueType::kInt64: {
          auto value = reader.GetU64();
          if (!value.ok()) return value.status();
          tuple.emplace_back(static_cast<int64_t>(value.value()));
          break;
        }
        case ValueType::kDouble: {
          auto value = reader.GetDouble();
          if (!value.ok()) return value.status();
          tuple.emplace_back(value.value());
          break;
        }
        case ValueType::kString: {
          auto value = reader.GetString();
          if (!value.ok()) return value.status();
          tuple.emplace_back(std::move(value).value());
          break;
        }
      }
    }
    out.tuples.push_back(std::move(tuple));
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument("trailing bytes after frame");
  }
  return out;
}

}  // namespace qsp
