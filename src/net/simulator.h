#ifndef QSP_NET_SIMULATOR_H_
#define QSP_NET_SIMULATOR_H_

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "net/fault_injector.h"
#include "net/message.h"
#include "net/server.h"
#include "net/sim_client.h"

namespace qsp {

/// Aggregate measurements of one dissemination round — the simulated
/// counterparts of the cost-model terms, for validating that the planner's
/// estimated costs track real traffic.
struct RoundStats {
  /// Number of merged-answer messages broadcast (|M|).
  size_t num_messages = 0;
  /// Total payload bytes on the wire (size(M) in bytes).
  size_t payload_bytes = 0;
  /// Total header bytes on the wire.
  size_t header_bytes = 0;
  /// Total payload rows across messages (size(M) in tuples).
  size_t payload_rows = 0;
  /// Rows delivered to clients that none of their answers needed (U).
  size_t irrelevant_rows = 0;
  /// Rows examined by client extractors.
  size_t rows_examined = 0;
  /// Header checks performed across all clients.
  size_t headers_checked = 0;
  /// Rows clients had already cached from earlier rounds (only nonzero
  /// with the client cache enabled).
  size_t cache_hits = 0;
  /// Channels that carried at least one message.
  size_t channels_used = 0;
  /// Bytes actually serialized through the wire format (0 unless the
  /// simulator was built with verify_wire).
  size_t wire_bytes = 0;
  /// True when every message survived an encode/decode round trip with
  /// identical header and tuples. Trivially true with verify_wire off, so
  /// the default is true — a stats object that never saw a wire failure
  /// reports success.
  bool wire_round_trip_ok = true;
  /// True when every client's recovered answer for every subscription
  /// exactly equals the direct evaluation of the original query.
  bool all_answers_correct = false;

  // --- reliability & fault injection (DESIGN.md §6) -----------------------
  // All zero unless the simulator was built with a FaultPolicy, so the
  // lossless figures are unaffected.

  /// Delivery attempts lost: stochastic drops, forced drops, and frames
  /// rejected by the checksum.
  size_t drops = 0;
  /// Frames whose corruption was caught by the CRC32 (subset of drops).
  size_t corrupted_frames = 0;
  /// Receptions discarded by sequence-number dedup (duplicated
  /// deliveries and redundant retransmissions).
  size_t duplicate_deliveries = 0;
  /// Adjacent swaps injected into client delivery queues.
  size_t reordered_deliveries = 0;
  /// Missing-sequence reports sent by clients across recovery passes.
  size_t nacks = 0;
  /// Messages re-broadcast in response to NACKs.
  size_t retx_messages = 0;
  /// Header + payload bytes of those retransmissions.
  size_t retx_bytes = 0;
  /// Recovery passes that actually ran (<= FaultPolicy::max_retx).
  size_t retx_rounds = 0;
  /// Exponential-backoff accounting: sum of 2^(pass-1) over recovery
  /// passes, in units of the base backoff interval.
  size_t backoff_units = 0;
  /// Clients that crashed this round (received nothing, sent no NACKs).
  size_t crashed_clients = 0;
  /// Clients that joined late (missed the broadcast pass, recovered via
  /// NACKs only).
  size_t late_join_clients = 0;
  /// Subscriptions that ended the round kPartial or kFailed.
  size_t incomplete_answers = 0;

  bool operator==(const RoundStats&) const = default;
};

/// End-to-end dissemination simulator (the environment of Figure 15):
/// builds clients per the plan's allocation, runs the server, broadcasts
/// each message to every client on its channel, and verifies extraction.
///
/// With a FaultPolicy the broadcast passes through a lossy channel
/// (drops, duplicates, reordering, corruption, churn) and a bounded
/// NACK/retransmission protocol recovers the losses; see DESIGN.md §6.
class MulticastSimulator {
 public:
  /// `verify_wire` additionally serializes every message through the
  /// binary wire format (net/wire.h), decodes it, and checks the round
  /// trip — exercising what a real deployment would put on the network.
  /// Supplying `fault` (even with all-zero rates) routes delivery through
  /// the reliability path: sequence tracking, NACK collection, and
  /// AnswerStatus grading. With all-zero rates that path reproduces the
  /// lossless simulator's RoundStats exactly.
  MulticastSimulator(const Table* table, const SpatialIndex* index,
                     const QuerySet* queries, const ClientSet* clients,
                     bool enable_client_cache = false,
                     bool verify_wire = false,
                     std::optional<FaultPolicy> fault = std::nullopt);

  /// Executes one round under `plan` and `procedure`; `mode` selects the
  /// extractor implementation (self-extraction vs server tags).
  RoundStats RunRound(const DisseminationPlan& plan,
                      const MergeProcedure& procedure,
                      ExtractionMode mode = ExtractionMode::kSelfExtract);

  /// Clients built for the most recent round (inspection/testing).
  const std::vector<SimClient>& sim_clients() const { return sim_clients_; }

 private:
  /// Lossy broadcast pass plus bounded NACK/retransmission recovery.
  void RunLossyRound(const std::vector<Message>& messages, RoundStats* stats);

  const Table* table_;
  const SpatialIndex* index_;
  const QuerySet* queries_;
  const ClientSet* clients_;
  bool enable_client_cache_;
  bool verify_wire_;
  std::optional<FaultInjector> fault_;
  Server server_;
  std::vector<SimClient> sim_clients_;
  Allocation last_allocation_;
  uint32_t round_counter_ = 0;
};

}  // namespace qsp

#endif  // QSP_NET_SIMULATOR_H_
