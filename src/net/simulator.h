#ifndef QSP_NET_SIMULATOR_H_
#define QSP_NET_SIMULATOR_H_

#include <vector>

#include "net/message.h"
#include "net/server.h"
#include "net/sim_client.h"

namespace qsp {

/// Aggregate measurements of one dissemination round — the simulated
/// counterparts of the cost-model terms, for validating that the planner's
/// estimated costs track real traffic.
struct RoundStats {
  /// Number of merged-answer messages broadcast (|M|).
  size_t num_messages = 0;
  /// Total payload bytes on the wire (size(M) in bytes).
  size_t payload_bytes = 0;
  /// Total header bytes on the wire.
  size_t header_bytes = 0;
  /// Total payload rows across messages (size(M) in tuples).
  size_t payload_rows = 0;
  /// Rows delivered to clients that none of their answers needed (U).
  size_t irrelevant_rows = 0;
  /// Rows examined by client extractors.
  size_t rows_examined = 0;
  /// Header checks performed across all clients.
  size_t headers_checked = 0;
  /// Rows clients had already cached from earlier rounds (only nonzero
  /// with the client cache enabled).
  size_t cache_hits = 0;
  /// Channels that carried at least one message.
  size_t channels_used = 0;
  /// Bytes actually serialized through the wire format (0 unless the
  /// simulator was built with verify_wire).
  size_t wire_bytes = 0;
  /// True when every message survived an encode/decode round trip with
  /// identical header and tuples. Trivially true with verify_wire off, so
  /// the default is true — a stats object that never saw a wire failure
  /// reports success.
  bool wire_round_trip_ok = true;
  /// True when every client's recovered answer for every subscription
  /// exactly equals the direct evaluation of the original query.
  bool all_answers_correct = false;
};

/// End-to-end dissemination simulator (the environment of Figure 15):
/// builds clients per the plan's allocation, runs the server, broadcasts
/// each message to every client on its channel, and verifies extraction.
class MulticastSimulator {
 public:
  /// `verify_wire` additionally serializes every message through the
  /// binary wire format (net/wire.h), decodes it, and checks the round
  /// trip — exercising what a real deployment would put on the network.
  MulticastSimulator(const Table* table, const SpatialIndex* index,
                     const QuerySet* queries, const ClientSet* clients,
                     bool enable_client_cache = false,
                     bool verify_wire = false);

  /// Executes one round under `plan` and `procedure`; `mode` selects the
  /// extractor implementation (self-extraction vs server tags).
  RoundStats RunRound(const DisseminationPlan& plan,
                      const MergeProcedure& procedure,
                      ExtractionMode mode = ExtractionMode::kSelfExtract);

  /// Clients built for the most recent round (inspection/testing).
  const std::vector<SimClient>& sim_clients() const { return sim_clients_; }

 private:
  const Table* table_;
  const SpatialIndex* index_;
  const QuerySet* queries_;
  const ClientSet* clients_;
  bool enable_client_cache_;
  bool verify_wire_;
  Server server_;
  std::vector<SimClient> sim_clients_;
  Allocation last_allocation_;
};

}  // namespace qsp

#endif  // QSP_NET_SIMULATOR_H_
