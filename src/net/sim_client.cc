#include "net/sim_client.h"

#include <algorithm>

#include "query/extractor.h"
#include "util/status.h"

namespace qsp {

SimClient::SimClient(ClientId id, size_t channel, const QuerySet* queries,
                     std::vector<QueryId> subscriptions, bool enable_cache,
                     bool reliable)
    : id_(id),
      channel_(channel),
      queries_(queries),
      subscriptions_(std::move(subscriptions)),
      enable_cache_(enable_cache),
      reliable_(reliable) {
  QSP_CHECK(queries != nullptr);
}

void SimClient::StartRound() {
  partial_answers_.clear();
  seen_seqs_.clear();
  statuses_.clear();
  stats_ = ClientStats{};
}

void SimClient::Receive(const Message& msg, const Table& table) {
  if (msg.channel != channel_) {
    ++stats_.misrouted_messages;
    return;
  }
  ++stats_.headers_checked;
  if (reliable_ && !seen_seqs_.insert(msg.seq).second) {
    ++stats_.duplicates_ignored;
    return;
  }
  const bool addressed =
      std::find(msg.recipients.begin(), msg.recipients.end(), id_) !=
      msg.recipients.end();
  if (!addressed) return;
  ++stats_.messages_processed;

  // Track which payload rows land in at least one of this client's
  // answers, to count irrelevant rows once per message.
  std::set<RowId> used;
  for (const HeaderEntry& entry : msg.extractors) {
    if (entry.client != id_) continue;

    // Server-tagged payloads skip the per-tuple geometric test: the tag
    // bit of this entry's query decides membership.
    int tag_bit = -1;
    if (msg.HasTags()) {
      for (size_t k = 0; k < msg.members.size(); ++k) {
        if (msg.members[k] == entry.spec.query) {
          tag_bit = static_cast<int>(k);
          break;
        }
      }
    }

    std::vector<RowId> part;
    for (size_t i = 0; i < msg.payload.size(); ++i) {
      const RowId row = msg.payload[i];
      ++stats_.rows_examined;
      if (enable_cache_ && cache_.count(row) > 0) ++stats_.cache_hits;
      const bool mine =
          tag_bit >= 0
              ? (msg.payload_tags[i] & (1u << tag_bit)) != 0
              : entry.spec.rect.Contains(table.PositionOf(row));
      if (mine) {
        part.push_back(row);
        used.insert(row);
      }
    }
    partial_answers_[entry.spec.query].push_back(std::move(part));
  }
  stats_.rows_irrelevant += msg.payload.size() - used.size();
  if (enable_cache_) {
    cache_.insert(msg.payload.begin(), msg.payload.end());
  }
}

std::vector<RowId> SimClient::AnswerFor(QueryId query) const {
  auto it = partial_answers_.find(query);
  if (it == partial_answers_.end()) return {};
  return CombineAnswers(it->second);
}

std::vector<uint32_t> SimClient::MissingSeqs(uint32_t channel_total) const {
  std::vector<uint32_t> missing;
  if (!reliable_) return missing;
  for (uint32_t seq = 0; seq < channel_total; ++seq) {
    if (seen_seqs_.count(seq) == 0) missing.push_back(seq);
  }
  return missing;
}

void SimClient::FinalizeRound(uint32_t channel_total) {
  statuses_.clear();
  if (!reliable_) return;
  if (MissingSeqs(channel_total).empty()) return;  // All kComplete.
  for (QueryId query : subscriptions_) {
    auto it = partial_answers_.find(query);
    const bool any_data = it != partial_answers_.end() && !it->second.empty();
    statuses_[query] = any_data ? AnswerStatus::kPartial
                                : AnswerStatus::kFailed;
  }
}

AnswerStatus SimClient::StatusFor(QueryId query) const {
  auto it = statuses_.find(query);
  return it == statuses_.end() ? AnswerStatus::kComplete : it->second;
}

size_t SimClient::num_incomplete() const { return statuses_.size(); }

}  // namespace qsp
