#ifndef QSP_NET_WIRE_H_
#define QSP_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "net/message.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "util/status.h"

namespace qsp {

/// CRC32 (IEEE 802.3 polynomial, reflected) over `size` bytes. Every
/// frame carries one so that corruption on the lossy channel is detected
/// and handled as a drop instead of decoding garbage.
uint32_t Crc32(const uint8_t* data, size_t size);

/// Little-endian append-only encoder for the multicast wire format.
class WireWriter {
 public:
  void PutU8(uint8_t v) { buffer_.push_back(v); }
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutDouble(double v);
  /// Length-prefixed (u32) bytes.
  void PutString(const std::string& v);
  /// Overwrites 4 already-written bytes at `pos` (for checksum patching).
  void PatchU32(size_t pos, uint32_t v);

  const std::vector<uint8_t>& buffer() const { return buffer_; }
  std::vector<uint8_t> Take() { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
};

/// Bounds-checked reader over an encoded buffer. Every getter fails with
/// kOutOfRange instead of reading past the end — a malformed frame from
/// the network must never crash a client.
class WireReader {
 public:
  explicit WireReader(const std::vector<uint8_t>& buffer)
      : buffer_(buffer) {}

  Result<uint8_t> GetU8();
  Result<uint32_t> GetU32();
  Result<uint64_t> GetU64();
  Result<double> GetDouble();
  Result<std::string> GetString();

  size_t remaining() const { return buffer_.size() - pos_; }
  bool AtEnd() const { return pos_ == buffer_.size(); }

 private:
  const std::vector<uint8_t>& buffer_;
  size_t pos_ = 0;
};

/// A Message materialized for the wire: instead of row ids into the
/// server's table, the payload carries the actual tuples.
struct DecodedMessage {
  size_t channel = 0;
  /// Reliability header (see Message): sequence within the channel's
  /// round, round id, and the channel's announced message count.
  uint32_t seq = 0;
  uint32_t round_id = 0;
  uint32_t total_in_round = 0;
  std::vector<ClientId> recipients;
  std::vector<HeaderEntry> extractors;
  /// Member list + per-tuple tag bits (empty unless the message was
  /// built with ExtractionMode::kServerTags).
  std::vector<QueryId> members;
  std::vector<uint32_t> tags;
  std::vector<std::vector<Value>> tuples;
};

/// Serializes `msg` (resolving payload row ids against `table`) into the
/// frame format (v2 — checksummed and sequence-numbered):
///   u32 magic  u32 crc32(everything after this field)
///   u32 channel  u32 seq  u32 round_id  u32 total_in_round
///   u32 #recipients  (u32 client)*
///   u32 #extractors  (u32 client, u32 query, 4 x f64 rect)*
///   u32 #tuples
///   u8 has_tags  [u32 #members (u32 member)*  (u32 tags)*#tuples]
///   per tuple, per schema column: f64 | i64 | string
Result<std::vector<uint8_t>> EncodeMessage(const Message& msg,
                                           const Table& table);

/// Parses a frame back; validates the magic, the checksum, every length
/// field against the remaining bytes (a hostile count can never trigger
/// an out-of-bounds read or an oversized allocation), and the tuple
/// arity/types against `schema`.
Result<DecodedMessage> DecodeMessage(const std::vector<uint8_t>& frame,
                                     const Schema& schema);

}  // namespace qsp

#endif  // QSP_NET_WIRE_H_
