#include "net/simulator.h"

#include <set>

#include "net/wire.h"
#include "util/status.h"

namespace qsp {

MulticastSimulator::MulticastSimulator(const Table* table,
                                       const SpatialIndex* index,
                                       const QuerySet* queries,
                                       const ClientSet* clients,
                                       bool enable_client_cache,
                                       bool verify_wire)
    : table_(table),
      index_(index),
      queries_(queries),
      clients_(clients),
      enable_client_cache_(enable_client_cache),
      verify_wire_(verify_wire),
      server_(table, index, queries, clients) {}

RoundStats MulticastSimulator::RunRound(const DisseminationPlan& plan,
                                        const MergeProcedure& procedure,
                                        ExtractionMode mode) {
  RoundStats stats;

  // Build the client processes per the allocation; when the allocation
  // is unchanged between rounds the same processes are reused so their
  // caches persist (the dynamic-scenario extension).
  if (plan.allocation != last_allocation_) {
    sim_clients_.clear();
    for (size_t ch = 0; ch < plan.allocation.size(); ++ch) {
      for (ClientId c : plan.allocation[ch]) {
        sim_clients_.emplace_back(c, ch, queries_, clients_->QueriesOf(c),
                                  enable_client_cache_);
      }
    }
    last_allocation_ = plan.allocation;
  }
  for (SimClient& client : sim_clients_) client.StartRound();

  // Server side.
  const std::vector<Message> messages =
      server_.ExecuteRound(plan, procedure, mode);
  stats.num_messages = messages.size();
  std::set<size_t> used_channels;
  for (const Message& msg : messages) {
    stats.payload_bytes += msg.PayloadBytes(*table_);
    stats.header_bytes += msg.HeaderBytes();
    stats.payload_rows += msg.payload.size();
    used_channels.insert(msg.channel);
  }
  stats.channels_used = used_channels.size();

  // Optional wire-format round trip: what a real deployment would
  // actually broadcast.
  stats.wire_round_trip_ok = true;
  if (verify_wire_) {
    for (const Message& msg : messages) {
      auto frame = EncodeMessage(msg, *table_);
      if (!frame.ok()) {
        stats.wire_round_trip_ok = false;
        continue;
      }
      stats.wire_bytes += frame->size();
      auto decoded = DecodeMessage(frame.value(), table_->schema());
      if (!decoded.ok() || decoded->channel != msg.channel ||
          decoded->recipients != msg.recipients ||
          decoded->tuples.size() != msg.payload.size()) {
        stats.wire_round_trip_ok = false;
        continue;
      }
      for (size_t i = 0; i < msg.payload.size(); ++i) {
        if (decoded->tuples[i] != table_->row(msg.payload[i])) {
          stats.wire_round_trip_ok = false;
        }
      }
    }
  }

  // Broadcast: every client on a channel sees every message on it.
  for (const Message& msg : messages) {
    for (SimClient& client : sim_clients_) {
      if (client.channel() == msg.channel) client.Receive(msg, *table_);
    }
  }

  // Client-side accounting + end-to-end verification.
  stats.all_answers_correct = true;
  for (const SimClient& client : sim_clients_) {
    stats.irrelevant_rows += client.stats().rows_irrelevant;
    stats.rows_examined += client.stats().rows_examined;
    stats.headers_checked += client.stats().headers_checked;
    stats.cache_hits += client.stats().cache_hits;
    for (QueryId q : client.subscriptions()) {
      if (client.AnswerFor(q) != server_.DirectAnswer(q)) {
        stats.all_answers_correct = false;
      }
    }
  }
  return stats;
}

}  // namespace qsp
