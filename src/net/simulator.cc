#include "net/simulator.h"

#include <map>
#include <set>
#include <string>
#include <utility>

#include "exec/thread_pool.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/phase_tracer.h"
#include "util/status.h"

namespace qsp {

MulticastSimulator::MulticastSimulator(const Table* table,
                                       const SpatialIndex* index,
                                       const QuerySet* queries,
                                       const ClientSet* clients,
                                       bool enable_client_cache,
                                       bool verify_wire,
                                       std::optional<FaultPolicy> fault)
    : table_(table),
      index_(index),
      queries_(queries),
      clients_(clients),
      enable_client_cache_(enable_client_cache),
      verify_wire_(verify_wire),
      server_(table, index, queries, clients) {
  if (fault.has_value()) fault_.emplace(std::move(fault).value());
}

namespace {

/// Folds one round's measurements into the default registry so that the
/// measured counterparts of the cost-model terms (|M|, size(M), U) are
/// queryable next to the planner's estimates. Counters accumulate across
/// rounds; gauges keep the most recent round. Recovery-path counters use
/// zero-delta elision (obs::Count skips them), so a lossless run
/// registers no net.recover.* metrics and its reports are unchanged.
void RecordRoundMetrics(const RoundStats& stats) {
  obs::Count("net.round.rounds");
  obs::Count("net.round.messages", stats.num_messages);
  obs::Count("net.round.payload_rows", stats.payload_rows);
  obs::Count("net.round.payload_bytes", stats.payload_bytes);
  obs::Count("net.round.header_bytes", stats.header_bytes);
  obs::Count("net.round.irrelevant_rows", stats.irrelevant_rows);
  obs::Count("net.round.rows_examined", stats.rows_examined);
  obs::Count("net.round.headers_checked", stats.headers_checked);
  obs::Count("net.round.cache_hits", stats.cache_hits);
  obs::Count("net.round.wire_bytes", stats.wire_bytes);
  obs::Count("net.recover.drops", stats.drops);
  obs::Count("net.recover.corrupted_frames", stats.corrupted_frames);
  obs::Count("net.recover.duplicate_deliveries", stats.duplicate_deliveries);
  obs::Count("net.recover.reordered_deliveries", stats.reordered_deliveries);
  obs::Count("net.recover.nacks", stats.nacks);
  obs::Count("net.recover.retx_messages", stats.retx_messages);
  obs::Count("net.recover.retx_bytes", stats.retx_bytes);
  obs::Count("net.recover.retx_rounds", stats.retx_rounds);
  obs::Count("net.recover.backoff_units", stats.backoff_units);
  obs::Count("net.recover.crashed_clients", stats.crashed_clients);
  obs::Count("net.recover.late_join_clients", stats.late_join_clients);
  obs::Count("net.recover.incomplete_answers", stats.incomplete_answers);
  obs::SetGauge("net.round.last_messages",
                static_cast<double>(stats.num_messages));
  obs::SetGauge("net.round.last_payload_rows",
                static_cast<double>(stats.payload_rows));
  obs::SetGauge("net.round.last_irrelevant_rows",
                static_cast<double>(stats.irrelevant_rows));
  obs::SetGauge("net.round.last_channels_used",
                static_cast<double>(stats.channels_used));
}

}  // namespace

void MulticastSimulator::RunLossyRound(const std::vector<Message>& messages,
                                       RoundStats* stats) {
  FaultInjector& injector = *fault_;
  const FaultPolicy& policy = injector.policy();

  // Per-channel views: message order within a channel is seq order, so
  // by_channel[ch][s]->seq == s.
  std::map<size_t, std::vector<const Message*>> by_channel;
  for (const Message& msg : messages) by_channel[msg.channel].push_back(&msg);
  for (const auto& [channel, channel_messages] : by_channel) {
    for (size_t s = 0; s < channel_messages.size(); ++s) {
      QSP_CHECK(channel_messages[s]->seq == s);
    }
  }
  auto channel_total = [&by_channel](size_t channel) -> uint32_t {
    auto it = by_channel.find(channel);
    return it == by_channel.end()
               ? 0u
               : static_cast<uint32_t>(it->second.size());
  };

  // Per-round churn: crashed clients receive nothing and send no NACKs;
  // late joiners miss the broadcast pass and recover through NACKs only.
  std::vector<bool> crashed(sim_clients_.size(), false);
  std::vector<bool> late(sim_clients_.size(), false);
  for (size_t i = 0; i < sim_clients_.size(); ++i) {
    crashed[i] = injector.CrashesThisRound();
    late[i] = !crashed[i] && injector.JoinsLate();
    if (crashed[i]) ++stats->crashed_clients;
    if (late[i]) ++stats->late_join_clients;
  }

  // Corruption is modeled on the real encoded frames: a delivery whose
  // corrupted frame fails the checksummed decode is a detected drop. The
  // pristine frame is encoded once per message.
  const bool model_corruption = policy.corrupt_rate > 0;
  std::map<const Message*, std::vector<uint8_t>> frames;
  if (model_corruption) {
    for (const Message& msg : messages) {
      auto frame = EncodeMessage(msg, *table_);
      if (frame.ok()) frames.emplace(&msg, std::move(frame).value());
    }
  }

  // Hands one frame to a client, possibly corrupting it in flight. A
  // corrupted frame that fails the checksummed decode is a detected drop.
  auto deliver = [&](const Message& msg, SimClient& client) {
    if (model_corruption) {
      auto it = frames.find(&msg);
      if (it != frames.end()) {
        std::vector<uint8_t> corrupted = it->second;
        if (injector.CorruptFrame(&corrupted) > 0 &&
            !DecodeMessage(corrupted, table_->schema()).ok()) {
          ++stats->corrupted_frames;
          ++stats->drops;
          return;
        }
      }
    }
    client.Receive(msg, *table_);
  };

  // Broadcast pass: per client, build the delivery queue the lossy
  // channel presents (drops, duplicates, reordering), then deliver it.
  for (const auto& [channel, channel_messages] : by_channel) {
    obs::ScopedSpan channel_span("broadcast/ch" + std::to_string(channel));
    for (size_t i = 0; i < sim_clients_.size(); ++i) {
      SimClient& client = sim_clients_[i];
      if (client.channel() != channel || crashed[i] || late[i]) continue;
      std::vector<const Message*> queue;
      for (const Message* msg : channel_messages) {
        if (injector.DropDelivery(msg->seq, /*attempt=*/0)) {
          ++stats->drops;
          continue;
        }
        queue.push_back(msg);
        if (injector.DuplicateDelivery()) queue.push_back(msg);
      }
      for (size_t j = 0; j + 1 < queue.size(); ++j) {
        if (injector.ReorderPair()) {
          std::swap(queue[j], queue[j + 1]);
          ++stats->reordered_deliveries;
        }
      }
      for (const Message* msg : queue) deliver(*msg, client);
    }
  }

  // Bounded NACK/retransmission recovery: clients report sequence gaps
  // against the announced per-channel round size; the server re-multicasts
  // the union of NACKed messages, with exponential backoff accounted per
  // pass. After max_retx passes clients degrade to partial answers.
  obs::ScopedSpan recover_span("recover");
  for (int attempt = 1; attempt <= policy.max_retx; ++attempt) {
    std::map<size_t, std::set<uint32_t>> nacked;
    size_t nacks_this_pass = 0;
    for (size_t i = 0; i < sim_clients_.size(); ++i) {
      if (crashed[i]) continue;
      const SimClient& client = sim_clients_[i];
      const std::vector<uint32_t> missing =
          client.MissingSeqs(channel_total(client.channel()));
      nacks_this_pass += missing.size();
      for (uint32_t s : missing) nacked[client.channel()].insert(s);
    }
    if (nacks_this_pass == 0) break;
    stats->nacks += nacks_this_pass;
    ++stats->retx_rounds;
    stats->backoff_units += static_cast<size_t>(1) << (attempt - 1);

    obs::ScopedSpan pass_span("retx" + std::to_string(attempt));
    for (const auto& [channel, seqs] : nacked) {
      for (uint32_t s : seqs) {
        const Message& msg = *by_channel[channel][s];
        ++stats->retx_messages;
        stats->retx_bytes += msg.HeaderBytes() + msg.PayloadBytes(*table_);
        // Retransmissions are multicast too: every live client on the
        // channel sees them (and dedups by seq); each delivery runs the
        // same lossy gauntlet as the original.
        for (size_t i = 0; i < sim_clients_.size(); ++i) {
          if (sim_clients_[i].channel() != channel || crashed[i]) continue;
          if (injector.DropDelivery(msg.seq, attempt)) {
            ++stats->drops;
            continue;
          }
          deliver(msg, sim_clients_[i]);
        }
      }
    }
  }

  // Grade every subscription; remaining gaps degrade to partial/failed.
  for (SimClient& client : sim_clients_) {
    client.FinalizeRound(channel_total(client.channel()));
    stats->incomplete_answers += client.num_incomplete();
  }
}

RoundStats MulticastSimulator::RunRound(const DisseminationPlan& plan,
                                        const MergeProcedure& procedure,
                                        ExtractionMode mode) {
  obs::ScopedSpan round_span("simulate");
  // Per-round wall-time distribution — the dissemination-side SLO
  // histogram the PeriodicSampler exports in service mode.
  obs::ScopedTimer round_timer("net.round.latency_us");
  RoundStats stats;

  // Build the client processes per the allocation; when the allocation
  // is unchanged between rounds the same processes are reused so their
  // caches persist (the dynamic-scenario extension).
  if (plan.allocation != last_allocation_) {
    sim_clients_.clear();
    for (size_t ch = 0; ch < plan.allocation.size(); ++ch) {
      for (ClientId c : plan.allocation[ch]) {
        sim_clients_.emplace_back(c, ch, queries_, clients_->QueriesOf(c),
                                  enable_client_cache_,
                                  /*reliable=*/fault_.has_value());
      }
    }
    last_allocation_ = plan.allocation;
  }
  for (SimClient& client : sim_clients_) client.StartRound();

  // Server side.
  obs::PhaseTracer::Default().Begin("execute");
  std::vector<Message> messages = server_.ExecuteRound(plan, procedure, mode);
  obs::PhaseTracer::Default().End();
  const uint32_t round_id = round_counter_++;
  for (Message& msg : messages) msg.round_id = round_id;
  stats.num_messages = messages.size();
  std::set<size_t> used_channels;
  for (const Message& msg : messages) {
    stats.payload_bytes += msg.PayloadBytes(*table_);
    stats.header_bytes += msg.HeaderBytes();
    stats.payload_rows += msg.payload.size();
    used_channels.insert(msg.channel);
  }
  stats.channels_used = used_channels.size();

  // Optional wire-format round trip: what a real deployment would
  // actually broadcast.
  stats.wire_round_trip_ok = true;
  if (verify_wire_) {
    for (const Message& msg : messages) {
      auto frame = EncodeMessage(msg, *table_);
      if (!frame.ok()) {
        stats.wire_round_trip_ok = false;
        continue;
      }
      stats.wire_bytes += frame->size();
      auto decoded = DecodeMessage(frame.value(), table_->schema());
      if (!decoded.ok() || decoded->channel != msg.channel ||
          decoded->seq != msg.seq || decoded->round_id != msg.round_id ||
          decoded->total_in_round != msg.total_in_round ||
          decoded->recipients != msg.recipients ||
          decoded->tuples.size() != msg.payload.size()) {
        stats.wire_round_trip_ok = false;
        continue;
      }
      for (size_t i = 0; i < msg.payload.size(); ++i) {
        if (decoded->tuples[i] != table_->row(msg.payload[i])) {
          stats.wire_round_trip_ok = false;
        }
      }
    }
  }

  // Broadcast: every client on a channel sees every message on it. Each
  // client listens to exactly one channel, so delivering channel-by-channel
  // preserves every client's message order; with tracing on, that grouping
  // gives one span per channel. With a fault policy, delivery instead runs
  // the lossy channel + NACK recovery path (kept serial: the injector's
  // seeded draw order is part of the reproducibility contract).
  if (fault_.has_value()) {
    RunLossyRound(messages, &stats);
  } else if (exec::DefaultPool() != nullptr) {
    // Channels partition the clients, so the per-channel passes are
    // independent and fan out across the exec pool; within a channel,
    // message order (and therefore every client's delivery order) is
    // unchanged. The phase tracer is single-threaded, so the parallel
    // pass records one span for the whole broadcast instead of one per
    // channel.
    obs::ScopedSpan broadcast_span("broadcast");
    std::map<size_t, std::vector<const Message*>> by_channel;
    for (const Message& msg : messages) by_channel[msg.channel].push_back(&msg);
    std::vector<const std::vector<const Message*>*> channel_messages;
    std::vector<size_t> channel_ids;
    for (const auto& [channel, msgs] : by_channel) {
      channel_ids.push_back(channel);
      channel_messages.push_back(&msgs);
    }
    exec::ParallelFor(channel_ids.size(), [&](size_t k) {
      const size_t channel = channel_ids[k];
      for (const Message* msg : *channel_messages[k]) {
        for (SimClient& client : sim_clients_) {
          if (client.channel() == channel) client.Receive(*msg, *table_);
        }
      }
    });
  } else if (!obs::Enabled()) {
    for (const Message& msg : messages) {
      for (SimClient& client : sim_clients_) {
        if (client.channel() == msg.channel) client.Receive(msg, *table_);
      }
    }
  } else {
    std::map<size_t, std::vector<const Message*>> by_channel;
    for (const Message& msg : messages) by_channel[msg.channel].push_back(&msg);
    for (const auto& [channel, channel_messages] : by_channel) {
      obs::ScopedSpan channel_span("broadcast/ch" + std::to_string(channel));
      for (const Message* msg : channel_messages) {
        for (SimClient& client : sim_clients_) {
          if (client.channel() == channel) client.Receive(*msg, *table_);
        }
      }
    }
  }

  // Client-side accounting + end-to-end verification.
  obs::PhaseTracer::Default().Begin("extract-verify");
  stats.all_answers_correct = true;
  for (const SimClient& client : sim_clients_) {
    stats.irrelevant_rows += client.stats().rows_irrelevant;
    stats.rows_examined += client.stats().rows_examined;
    stats.headers_checked += client.stats().headers_checked;
    stats.cache_hits += client.stats().cache_hits;
    stats.duplicate_deliveries += client.stats().duplicates_ignored;
    for (QueryId q : client.subscriptions()) {
      if (client.AnswerFor(q) != server_.DirectAnswer(q)) {
        stats.all_answers_correct = false;
      }
    }
  }
  obs::PhaseTracer::Default().End();

  if (obs::Enabled()) RecordRoundMetrics(stats);
  return stats;
}

}  // namespace qsp
