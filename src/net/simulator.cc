#include "net/simulator.h"

#include <map>
#include <set>
#include <string>

#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/phase_tracer.h"
#include "util/status.h"

namespace qsp {

MulticastSimulator::MulticastSimulator(const Table* table,
                                       const SpatialIndex* index,
                                       const QuerySet* queries,
                                       const ClientSet* clients,
                                       bool enable_client_cache,
                                       bool verify_wire)
    : table_(table),
      index_(index),
      queries_(queries),
      clients_(clients),
      enable_client_cache_(enable_client_cache),
      verify_wire_(verify_wire),
      server_(table, index, queries, clients) {}

namespace {

/// Folds one round's measurements into the default registry so that the
/// measured counterparts of the cost-model terms (|M|, size(M), U) are
/// queryable next to the planner's estimates. Counters accumulate across
/// rounds; gauges keep the most recent round.
void RecordRoundMetrics(const RoundStats& stats) {
  obs::Count("net.round.rounds");
  obs::Count("net.round.messages", stats.num_messages);
  obs::Count("net.round.payload_rows", stats.payload_rows);
  obs::Count("net.round.payload_bytes", stats.payload_bytes);
  obs::Count("net.round.header_bytes", stats.header_bytes);
  obs::Count("net.round.irrelevant_rows", stats.irrelevant_rows);
  obs::Count("net.round.rows_examined", stats.rows_examined);
  obs::Count("net.round.headers_checked", stats.headers_checked);
  obs::Count("net.round.cache_hits", stats.cache_hits);
  obs::Count("net.round.wire_bytes", stats.wire_bytes);
  obs::SetGauge("net.round.last_messages",
                static_cast<double>(stats.num_messages));
  obs::SetGauge("net.round.last_payload_rows",
                static_cast<double>(stats.payload_rows));
  obs::SetGauge("net.round.last_irrelevant_rows",
                static_cast<double>(stats.irrelevant_rows));
  obs::SetGauge("net.round.last_channels_used",
                static_cast<double>(stats.channels_used));
}

}  // namespace

RoundStats MulticastSimulator::RunRound(const DisseminationPlan& plan,
                                        const MergeProcedure& procedure,
                                        ExtractionMode mode) {
  obs::ScopedSpan round_span("simulate");
  RoundStats stats;

  // Build the client processes per the allocation; when the allocation
  // is unchanged between rounds the same processes are reused so their
  // caches persist (the dynamic-scenario extension).
  if (plan.allocation != last_allocation_) {
    sim_clients_.clear();
    for (size_t ch = 0; ch < plan.allocation.size(); ++ch) {
      for (ClientId c : plan.allocation[ch]) {
        sim_clients_.emplace_back(c, ch, queries_, clients_->QueriesOf(c),
                                  enable_client_cache_);
      }
    }
    last_allocation_ = plan.allocation;
  }
  for (SimClient& client : sim_clients_) client.StartRound();

  // Server side.
  obs::PhaseTracer::Default().Begin("execute");
  const std::vector<Message> messages =
      server_.ExecuteRound(plan, procedure, mode);
  obs::PhaseTracer::Default().End();
  stats.num_messages = messages.size();
  std::set<size_t> used_channels;
  for (const Message& msg : messages) {
    stats.payload_bytes += msg.PayloadBytes(*table_);
    stats.header_bytes += msg.HeaderBytes();
    stats.payload_rows += msg.payload.size();
    used_channels.insert(msg.channel);
  }
  stats.channels_used = used_channels.size();

  // Optional wire-format round trip: what a real deployment would
  // actually broadcast.
  stats.wire_round_trip_ok = true;
  if (verify_wire_) {
    for (const Message& msg : messages) {
      auto frame = EncodeMessage(msg, *table_);
      if (!frame.ok()) {
        stats.wire_round_trip_ok = false;
        continue;
      }
      stats.wire_bytes += frame->size();
      auto decoded = DecodeMessage(frame.value(), table_->schema());
      if (!decoded.ok() || decoded->channel != msg.channel ||
          decoded->recipients != msg.recipients ||
          decoded->tuples.size() != msg.payload.size()) {
        stats.wire_round_trip_ok = false;
        continue;
      }
      for (size_t i = 0; i < msg.payload.size(); ++i) {
        if (decoded->tuples[i] != table_->row(msg.payload[i])) {
          stats.wire_round_trip_ok = false;
        }
      }
    }
  }

  // Broadcast: every client on a channel sees every message on it. Each
  // client listens to exactly one channel, so delivering channel-by-channel
  // preserves every client's message order; with tracing on, that grouping
  // gives one span per channel.
  if (!obs::Enabled()) {
    for (const Message& msg : messages) {
      for (SimClient& client : sim_clients_) {
        if (client.channel() == msg.channel) client.Receive(msg, *table_);
      }
    }
  } else {
    std::map<size_t, std::vector<const Message*>> by_channel;
    for (const Message& msg : messages) by_channel[msg.channel].push_back(&msg);
    for (const auto& [channel, channel_messages] : by_channel) {
      obs::ScopedSpan channel_span("broadcast/ch" + std::to_string(channel));
      for (const Message* msg : channel_messages) {
        for (SimClient& client : sim_clients_) {
          if (client.channel() == channel) client.Receive(*msg, *table_);
        }
      }
    }
  }

  // Client-side accounting + end-to-end verification.
  obs::PhaseTracer::Default().Begin("extract-verify");
  stats.all_answers_correct = true;
  for (const SimClient& client : sim_clients_) {
    stats.irrelevant_rows += client.stats().rows_irrelevant;
    stats.rows_examined += client.stats().rows_examined;
    stats.headers_checked += client.stats().headers_checked;
    stats.cache_hits += client.stats().cache_hits;
    for (QueryId q : client.subscriptions()) {
      if (client.AnswerFor(q) != server_.DirectAnswer(q)) {
        stats.all_answers_correct = false;
      }
    }
  }
  obs::PhaseTracer::Default().End();

  if (obs::Enabled()) RecordRoundMetrics(stats);
  return stats;
}

}  // namespace qsp
