#ifndef QSP_NET_FAULT_INJECTOR_H_
#define QSP_NET_FAULT_INJECTOR_H_

#include <cstdint>
#include <vector>

#include "util/rng.h"

namespace qsp {

/// Loss model for the multicast dissemination path (DESIGN.md §6). All
/// rates default to zero, in which case the simulator behaves exactly
/// like the lossless seed simulator. Every stochastic decision flows
/// through one PRNG seeded from `seed`, so a fault run is reproducible
/// bit-for-bit from its policy.
struct FaultPolicy {
  /// Probability one delivery attempt (message -> one listening client)
  /// is silently lost. Applies to the initial broadcast pass and to every
  /// retransmission independently.
  double drop_rate = 0.0;
  /// Probability a surviving delivery is duplicated (the client sees the
  /// frame twice; sequence numbers dedupe it).
  double duplicate_rate = 0.0;
  /// Probability each adjacent pair in a client's per-round delivery
  /// queue is swapped (IP multicast does not preserve order).
  double reorder_rate = 0.0;
  /// Per-byte corruption probability over the encoded frame. Corrupted
  /// frames are detected by the CRC32 and treated as drops; decode never
  /// trusts an unvalidated length.
  double corrupt_rate = 0.0;
  /// Probability a client crashes for the round: it receives nothing and
  /// emits no NACKs, so its answers are lost (counted, never UB).
  double crash_rate = 0.0;
  /// Probability a client joins late: it misses the initial broadcast
  /// pass and recovers entirely through the NACK/retransmission path.
  double late_join_rate = 0.0;

  /// Maximum NACK/retransmission passes after the broadcast pass. When
  /// recovery is still incomplete afterwards, clients degrade to
  /// AnswerStatus::kPartial / kFailed instead of silently wrong answers.
  int max_retx = 3;
  /// Seed for the injector's PRNG.
  uint64_t seed = 0xF417;

  /// Deterministic fault programming for tests: sequence numbers whose
  /// first transmission is dropped for every client on the channel...
  std::vector<uint32_t> drop_seq_first_tx;
  /// ...and sequence numbers dropped on every transmission (initial and
  /// all retransmissions), which forces max_retx exhaustion.
  std::vector<uint32_t> drop_seq_every_tx;

  /// True when any fault can actually occur. The subscription service
  /// only routes rounds through the reliability path when engaged, so a
  /// default policy keeps every existing figure byte-identical.
  bool Engaged() const {
    return drop_rate > 0 || duplicate_rate > 0 || reorder_rate > 0 ||
           corrupt_rate > 0 || crash_rate > 0 || late_join_rate > 0 ||
           !drop_seq_first_tx.empty() || !drop_seq_every_tx.empty();
  }
};

/// Draws every fault decision for one simulator. Decisions are made in
/// the simulator's fixed channel/client/message iteration order, so two
/// runs with the same policy (and seed) inject the same faults.
class FaultInjector {
 public:
  explicit FaultInjector(FaultPolicy policy);

  const FaultPolicy& policy() const { return policy_; }

  /// Whether the transmission of `seq` on `attempt` (0 = initial
  /// broadcast, >=1 = retransmission) to one client is lost.
  bool DropDelivery(uint32_t seq, int attempt);

  /// Whether a surviving delivery is duplicated.
  bool DuplicateDelivery() { return rng_.Bernoulli(policy_.duplicate_rate); }

  /// Whether one adjacent pair of a delivery queue is swapped.
  bool ReorderPair() { return rng_.Bernoulli(policy_.reorder_rate); }

  /// Flips random bytes of `frame` with per-byte probability
  /// corrupt_rate; returns how many bytes were changed.
  size_t CorruptFrame(std::vector<uint8_t>* frame);

  /// Per-round churn draws (one call per client per round).
  bool CrashesThisRound() { return rng_.Bernoulli(policy_.crash_rate); }
  bool JoinsLate() { return rng_.Bernoulli(policy_.late_join_rate); }

 private:
  FaultPolicy policy_;
  Rng rng_;
};

}  // namespace qsp

#endif  // QSP_NET_FAULT_INJECTOR_H_
