#ifndef QSP_NET_MESSAGE_H_
#define QSP_NET_MESSAGE_H_

#include <cstddef>
#include <vector>

#include "channel/client_set.h"
#include "query/extractor.h"
#include "relation/table.h"

namespace qsp {

/// One (client, extractor, query) header entry: `client` applies
/// `spec.rect` to the payload to recover ans(spec.query) — the (e, q)
/// pairs of Section 3.1.
struct HeaderEntry {
  ClientId client = 0;
  ExtractorSpec spec;
};

/// How clients recover their answers from a merged answer (the two
/// extractor implementations of Section 3.1).
enum class ExtractionMode {
  /// The extractor is the original query: clients re-apply their
  /// rectangle to every payload tuple. No extra payload bytes.
  kSelfExtract,
  /// The server tags each payload object with the member queries whose
  /// answer it belongs to; clients just match tags. Costs 4 bytes per
  /// payload row, saves the per-tuple geometric test at the clients.
  /// Falls back to kSelfExtract for merged queries with more than 32
  /// members (tag bits are a u32).
  kServerTags,
};

/// A merged answer in flight on a multicast channel. The header carries
/// the list of intended recipients and their extractors; every client on
/// the channel sees the message and checks the header (that per-message
/// work is the k6 term of the cost model).
struct Message {
  /// Channel the message is broadcast on.
  size_t channel = 0;
  /// Reliability header: position of this message in its channel's round
  /// (assigned contiguously from 0 by the server), the round it belongs
  /// to, and how many messages the channel carries this round. Clients
  /// detect losses as gaps in `seq` against `total_in_round` and NACK
  /// them (DESIGN.md §6). These fields ride in the wire frame; the
  /// cost-model byte accounting (HeaderBytes) intentionally excludes
  /// them so lossless figures are unchanged.
  uint32_t seq = 0;
  uint32_t round_id = 0;
  uint32_t total_in_round = 0;
  /// Clients that should process the message.
  std::vector<ClientId> recipients;
  /// Per-recipient extraction instructions.
  std::vector<HeaderEntry> extractors;
  /// The merged answer: row ids into the server's table. (A real system
  /// ships tuples; row ids keep the simulator cheap while byte accounting
  /// uses real tuple sizes.)
  std::vector<RowId> payload;
  /// Member queries of the merged query this message answers, defining
  /// the bit positions of payload_tags. Only set under kServerTags.
  std::vector<QueryId> members;
  /// Parallel to payload when non-empty: bit k set means the row belongs
  /// to ans(members[k]).
  std::vector<uint32_t> payload_tags;

  bool HasTags() const { return !payload_tags.empty(); }

  /// Approximate header wire size in bytes.
  size_t HeaderBytes() const {
    return 8 + 4 * recipients.size() + (4 + 4 + 4 * 8) * extractors.size() +
           4 * members.size();
  }

  /// Payload wire size in bytes given the backing table (tags included).
  size_t PayloadBytes(const Table& table) const {
    size_t bytes = 4 * payload_tags.size();
    for (RowId id : payload) bytes += table.RowWireSize(id);
    return bytes;
  }
};

/// The server's full output for one subscription period: which clients
/// listen to which channel, and how each channel's queries are grouped.
struct DisseminationPlan {
  /// allocation[ch] = clients listening to channel ch.
  Allocation allocation;
  /// channel_partitions[ch] = merged grouping of the queries served on
  /// channel ch (the union of that channel's clients' subscriptions).
  std::vector<Partition> channel_partitions;
};

}  // namespace qsp

#endif  // QSP_NET_MESSAGE_H_
