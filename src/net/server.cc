#include "net/server.h"

#include <algorithm>

#include "util/status.h"

namespace qsp {

Server::Server(const Table* table, const SpatialIndex* index,
               const QuerySet* queries, const ClientSet* clients)
    : table_(table), index_(index), queries_(queries), clients_(clients) {
  QSP_CHECK(table != nullptr);
  QSP_CHECK(index != nullptr);
  QSP_CHECK(queries != nullptr);
  QSP_CHECK(clients != nullptr);
}

namespace {

/// Builds the message for one merged query on one channel.
Message BuildMessage(size_t channel, const MergedQuery& merged,
                     const std::vector<ClientId>& channel_clients,
                     const SpatialIndex& index, const Table& table,
                     const QuerySet& queries, const ClientSet& clients,
                     ExtractionMode mode) {
  Message msg;
  msg.channel = channel;

  // Evaluate the merged region. Pieces are interior-disjoint but share
  // boundaries; dedupe to keep each row once.
  for (const Rect& piece : merged.region) {
    const std::vector<RowId> rows = index.Query(piece);
    msg.payload.insert(msg.payload.end(), rows.begin(), rows.end());
  }
  std::sort(msg.payload.begin(), msg.payload.end());
  msg.payload.erase(std::unique(msg.payload.begin(), msg.payload.end()),
                    msg.payload.end());

  // Server-side tagging: mark which member queries each row serves.
  if (mode == ExtractionMode::kServerTags && merged.members.size() <= 32) {
    msg.members = merged.members;
    msg.payload_tags.reserve(msg.payload.size());
    for (RowId row : msg.payload) {
      uint32_t tags = 0;
      const Point position = table.PositionOf(row);
      for (size_t k = 0; k < merged.members.size(); ++k) {
        if (queries.rect(merged.members[k]).Contains(position)) {
          tags |= 1u << k;
        }
      }
      msg.payload_tags.push_back(tags);
    }
  }

  // Header: every channel client subscribed to a member query is a
  // recipient, with one extractor entry per such query.
  for (ClientId client : channel_clients) {
    bool is_recipient = false;
    for (QueryId member : merged.members) {
      const auto& subs = clients.QueriesOf(client);
      if (std::binary_search(subs.begin(), subs.end(), member)) {
        msg.extractors.push_back({client, {member, queries.rect(member)}});
        is_recipient = true;
      }
    }
    if (is_recipient) msg.recipients.push_back(client);
  }
  return msg;
}

}  // namespace

std::vector<Message> Server::ExecuteRound(const DisseminationPlan& plan,
                                          const MergeProcedure& procedure,
                                          ExtractionMode mode) const {
  QSP_CHECK(plan.channel_partitions.size() == plan.allocation.size());
  std::vector<std::vector<MergedQuery>> merged_per_channel(
      plan.allocation.size());
  for (size_t ch = 0; ch < plan.allocation.size(); ++ch) {
    for (const QueryGroup& group : plan.channel_partitions[ch]) {
      std::vector<MergedQuery> merged = procedure.Merge(*queries_, group);
      for (MergedQuery& m : merged) {
        merged_per_channel[ch].push_back(std::move(m));
      }
    }
  }
  return ExecuteRoundMerged(plan.allocation, merged_per_channel, mode);
}

std::vector<Message> Server::ExecuteRoundMerged(
    const Allocation& allocation,
    const std::vector<std::vector<MergedQuery>>& merged_per_channel,
    ExtractionMode mode) const {
  QSP_CHECK(merged_per_channel.size() == allocation.size());
  std::vector<Message> messages;
  for (size_t ch = 0; ch < allocation.size(); ++ch) {
    const uint32_t channel_total =
        static_cast<uint32_t>(merged_per_channel[ch].size());
    uint32_t seq = 0;
    for (const MergedQuery& merged : merged_per_channel[ch]) {
      Message msg = BuildMessage(ch, merged, allocation[ch], *index_,
                                 *table_, *queries_, *clients_, mode);
      // Reliability header: contiguous per-channel sequence numbers and
      // the channel's announced round size, so clients can detect gaps
      // (including trailing losses) and NACK them.
      msg.seq = seq++;
      msg.total_in_round = channel_total;
      messages.push_back(std::move(msg));
    }
  }
  return messages;
}

std::vector<RowId> Server::DirectAnswer(QueryId query) const {
  return index_->Query(queries_->rect(query));
}

}  // namespace qsp
