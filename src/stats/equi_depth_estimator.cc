#include "stats/equi_depth_estimator.h"

#include <algorithm>

#include "obs/metrics.h"

#include "geom/point.h"
#include "util/status.h"

namespace qsp {
namespace {

std::vector<double> BuildBoundaries(std::vector<double> values,
                                    int buckets) {
  std::sort(values.begin(), values.end());
  std::vector<double> boundaries;
  boundaries.reserve(static_cast<size_t>(buckets) + 1);
  const size_t n = values.size();
  for (int b = 0; b <= buckets; ++b) {
    const size_t index = std::min(
        n - 1, static_cast<size_t>(static_cast<double>(b) *
                                   static_cast<double>(n) / buckets));
    boundaries.push_back(values[b == buckets ? n - 1 : index]);
  }
  return boundaries;
}

}  // namespace

EquiDepthEstimator::EquiDepthEstimator(const Table& table, int buckets,
                                       double record_size)
    : total_(static_cast<double>(table.num_rows())),
      record_size_(record_size) {
  QSP_CHECK(buckets >= 1);
  if (table.num_rows() == 0) return;
  std::vector<double> xs, ys;
  xs.reserve(table.num_rows());
  ys.reserve(table.num_rows());
  for (RowId id = 0; id < table.num_rows(); ++id) {
    const Point p = table.PositionOf(id);
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  boundaries_x_ = BuildBoundaries(std::move(xs), buckets);
  boundaries_y_ = BuildBoundaries(std::move(ys), buckets);
}

double EquiDepthEstimator::MarginalFraction(
    const std::vector<double>& boundaries, double lo, double hi) {
  if (boundaries.empty() || hi < lo) return 0.0;
  const size_t buckets = boundaries.size() - 1;
  const double per_bucket = 1.0 / static_cast<double>(buckets);

  // Cumulative fraction of values <= v, linear inside buckets.
  auto cdf = [&](double v) {
    if (v <= boundaries.front()) return 0.0;
    if (v >= boundaries.back()) return 1.0;
    const auto it =
        std::upper_bound(boundaries.begin(), boundaries.end(), v);
    const size_t bucket =
        static_cast<size_t>(it - boundaries.begin()) - 1;
    const double b_lo = boundaries[bucket];
    const double b_hi = boundaries[bucket + 1];
    const double within =
        b_hi > b_lo ? (v - b_lo) / (b_hi - b_lo) : 1.0;
    return (static_cast<double>(bucket) + within) * per_bucket;
  };
  return std::max(0.0, cdf(hi) - cdf(lo));
}

double EquiDepthEstimator::EstimateSize(const Rect& rect) const {
  obs::Count("stats.equi_depth.calls");
  if (rect.IsEmpty() || total_ == 0.0) return 0.0;
  const double fx = MarginalFraction(boundaries_x_, rect.x_lo(), rect.x_hi());
  const double fy = MarginalFraction(boundaries_y_, rect.y_lo(), rect.y_hi());
  return total_ * fx * fy * record_size_;
}

}  // namespace qsp
