#ifndef QSP_STATS_SIZE_ESTIMATOR_H_
#define QSP_STATS_SIZE_ESTIMATOR_H_

#include <limits>
#include <vector>

#include "geom/rect.h"
#include "obs/metrics.h"

namespace qsp {

/// Estimates size(q) — the expected answer size of a range query — using
/// classic database statistics techniques ([MCS88] in the paper). Sizes
/// are expressed in "answer units": expected tuple count times a constant
/// record size, so all cost-model terms share one unit.
class SizeEstimator {
 public:
  virtual ~SizeEstimator() = default;

  /// A guaranteed minimum data density: within `support`, every rectangle
  /// r satisfies EstimateSize(r) >= density * r.Area(). The planner's
  /// admissible benefit bounds (DESIGN.md §8) use this to lower-bound the
  /// size of a merged region from its bounding box alone, which is what
  /// lets the spatial index prune far-apart pairs without evaluating
  /// them. density = 0 (the default) soundly disables distance pruning.
  struct DensityFloor {
    double density = 0.0;
    /// Region on which the floor holds. Rectangles not fully contained in
    /// `support` get no guarantee (estimators typically clip to a domain,
    /// so outside it the floor would be unsound).
    Rect support = Rect::Empty();
  };

  /// The estimator's density floor; the default advertises none.
  virtual DensityFloor Floor() const { return DensityFloor{}; }

  /// Estimated answer size of a single rectangle query.
  virtual double EstimateSize(const Rect& rect) const = 0;

  /// Estimated answer size of a region given as interior-disjoint pieces
  /// (the output of the exact-cover or bounding-polygon merge). The
  /// default sums the per-piece estimates, which is exact for disjoint
  /// pieces under any additive estimator.
  virtual double EstimateRegionSize(const std::vector<Rect>& pieces) const {
    double total = 0.0;
    for (const Rect& r : pieces) total += EstimateSize(r);
    return total;
  }
};

/// Assumes objects are uniformly distributed: size = density * area.
/// This is the estimator the paper's analytic examples use (e.g. the unit
/// squares of Figure 6, where every unit of area holds answer size S).
class UniformDensityEstimator : public SizeEstimator {
 public:
  /// `density` is answer units per unit of area.
  explicit UniformDensityEstimator(double density) : density_(density) {}

  /// Convenience: density derived from an object count over a domain,
  /// scaled by `record_size` units per object.
  UniformDensityEstimator(double num_objects, const Rect& domain,
                          double record_size = 1.0)
      : density_(num_objects * record_size /
                 (domain.Area() > 0 ? domain.Area() : 1.0)) {}

  double EstimateSize(const Rect& rect) const override {
    obs::Count("stats.uniform.calls");
    return density_ * rect.Area();
  }

  /// Uniform density holds everywhere, so the floor is the density itself
  /// on an unbounded support.
  DensityFloor Floor() const override {
    constexpr double kInf = std::numeric_limits<double>::infinity();
    return DensityFloor{density_, Rect(-kInf, -kInf, kInf, kInf)};
  }

  double density() const { return density_; }

 private:
  double density_;
};

}  // namespace qsp

#endif  // QSP_STATS_SIZE_ESTIMATOR_H_
