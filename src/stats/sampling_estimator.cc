#include "stats/sampling_estimator.h"

#include <algorithm>

#include "obs/metrics.h"

namespace qsp {

SamplingEstimator::SamplingEstimator(const Table& table, double rate,
                                     uint64_t seed, double record_size)
    : record_size_(record_size) {
  rate = std::clamp(rate, 1e-6, 1.0);
  inverse_rate_ = 1.0 / rate;
  Rng rng(seed);
  for (RowId id = 0; id < table.num_rows(); ++id) {
    if (rng.Bernoulli(rate)) sample_.push_back(table.PositionOf(id));
  }
}

double SamplingEstimator::EstimateSize(const Rect& rect) const {
  obs::Count("stats.sampling.calls");
  if (rect.IsEmpty()) return 0.0;
  size_t hits = 0;
  for (const Point& p : sample_) {
    if (rect.Contains(p)) ++hits;
  }
  return static_cast<double>(hits) * inverse_rate_ * record_size_;
}

}  // namespace qsp
