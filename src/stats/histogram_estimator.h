#ifndef QSP_STATS_HISTOGRAM_ESTIMATOR_H_
#define QSP_STATS_HISTOGRAM_ESTIMATOR_H_

#include <vector>

#include "geom/rect.h"
#include "relation/table.h"  // qsp-lint: allow(layer-back-edge) estimators summarize the relation they sample; read-only upward dependency, acyclic by construction
#include "stats/size_estimator.h"

namespace qsp {

/// Two-dimensional equi-width histogram over the position attributes.
/// Estimates query sizes by summing bucket counts weighted by the
/// fractional area overlap of the query with each bucket (uniformity is
/// assumed only within a bucket). Handles the paper's non-uniform object
/// spaces far better than UniformDensityEstimator.
class HistogramEstimator : public SizeEstimator {
 public:
  /// Builds the histogram by one pass over `table`. `record_size` scales
  /// tuple counts into answer units.
  HistogramEstimator(const Table& table, const Rect& domain, int buckets_x,
                     int buckets_y, double record_size = 1.0);

  double EstimateSize(const Rect& rect) const override;

  /// Floor = the sparsest bucket's density, valid only on the histogram
  /// domain (EstimateSize clips to it, so no guarantee holds outside).
  DensityFloor Floor() const override;

  int buckets_x() const { return buckets_x_; }
  int buckets_y() const { return buckets_y_; }

 private:
  Rect BucketRect(int bx, int by) const;

  Rect domain_;
  int buckets_x_;
  int buckets_y_;
  double record_size_;
  std::vector<double> counts_;  // buckets_x_ * buckets_y_, row-major in y.
};

}  // namespace qsp

#endif  // QSP_STATS_HISTOGRAM_ESTIMATOR_H_
