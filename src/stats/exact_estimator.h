#ifndef QSP_STATS_EXACT_ESTIMATOR_H_
#define QSP_STATS_EXACT_ESTIMATOR_H_

#include "geom/rect.h"
#include "relation/spatial_index.h"  // qsp-lint: allow(layer-back-edge) exact selectivity walks the spatial index directly; read-only upward dependency, acyclic by construction
#include "stats/size_estimator.h"

namespace qsp {

/// Ground-truth "estimator": counts the actual rows in the query rectangle
/// through a spatial index. Used to validate approximate estimators and to run
/// experiments free of estimation error. Does not own the index.
class ExactEstimator : public SizeEstimator {
 public:
  /// `record_size` converts tuple counts into answer units.
  explicit ExactEstimator(const SpatialIndex* index, double record_size = 1.0);

  double EstimateSize(const Rect& rect) const override;

 private:
  const SpatialIndex* index_;
  double record_size_;
};

}  // namespace qsp

#endif  // QSP_STATS_EXACT_ESTIMATOR_H_
