#ifndef QSP_STATS_SAMPLING_ESTIMATOR_H_
#define QSP_STATS_SAMPLING_ESTIMATOR_H_

#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "relation/table.h"  // qsp-lint: allow(layer-back-edge) estimators summarize the relation they sample; read-only upward dependency, acyclic by construction
#include "stats/size_estimator.h"
#include "util/rng.h"

namespace qsp {

/// Sampling-based cardinality estimation ([MCS88]'s third family):
/// Bernoulli-sample the table once at `rate`, answer every estimate by
/// counting sample hits scaled by 1/rate. Unbiased for any query shape
/// and any correlation, with relative error ~ 1/sqrt(rate * |q|) —
/// so it degrades on small queries, which is exactly what the estimator
/// ablation shows.
class SamplingEstimator : public SizeEstimator {
 public:
  /// Samples each row independently with probability `rate` (clamped to
  /// (0, 1]); deterministic in `seed`.
  SamplingEstimator(const Table& table, double rate, uint64_t seed = 42,
                    double record_size = 1.0);

  double EstimateSize(const Rect& rect) const override;

  size_t sample_size() const { return sample_.size(); }

 private:
  double inverse_rate_;
  double record_size_;
  std::vector<Point> sample_;
};

}  // namespace qsp

#endif  // QSP_STATS_SAMPLING_ESTIMATOR_H_
