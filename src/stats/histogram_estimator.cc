#include "stats/histogram_estimator.h"

#include <algorithm>

#include "obs/metrics.h"

#include "geom/point.h"
#include "util/status.h"

namespace qsp {

HistogramEstimator::HistogramEstimator(const Table& table, const Rect& domain,
                                       int buckets_x, int buckets_y,
                                       double record_size)
    : domain_(domain),
      buckets_x_(std::max(1, buckets_x)),
      buckets_y_(std::max(1, buckets_y)),
      record_size_(record_size) {
  QSP_CHECK(!domain.IsEmpty());
  counts_.assign(
      static_cast<size_t>(buckets_x_) * static_cast<size_t>(buckets_y_), 0.0);
  for (RowId id = 0; id < table.num_rows(); ++id) {
    const Point p = table.PositionOf(id);
    int bx = static_cast<int>((p.x - domain_.x_lo()) / domain_.Width() *
                              buckets_x_);
    int by = static_cast<int>((p.y - domain_.y_lo()) / domain_.Height() *
                              buckets_y_);
    bx = std::clamp(bx, 0, buckets_x_ - 1);
    by = std::clamp(by, 0, buckets_y_ - 1);
    counts_[static_cast<size_t>(by) * buckets_x_ + bx] += 1.0;
  }
}

Rect HistogramEstimator::BucketRect(int bx, int by) const {
  const double w = domain_.Width() / buckets_x_;
  const double h = domain_.Height() / buckets_y_;
  return Rect(domain_.x_lo() + bx * w, domain_.y_lo() + by * h,
              domain_.x_lo() + (bx + 1) * w, domain_.y_lo() + (by + 1) * h);
}

SizeEstimator::DensityFloor HistogramEstimator::Floor() const {
  const double cell_area =
      (domain_.Width() / buckets_x_) * (domain_.Height() / buckets_y_);
  if (cell_area <= 0.0) return DensityFloor{};
  double min_count = counts_.empty() ? 0.0 : counts_[0];
  for (double c : counts_) min_count = std::min(min_count, c);
  return DensityFloor{min_count * record_size_ / cell_area, domain_};
}

double HistogramEstimator::EstimateSize(const Rect& rect) const {
  obs::Count("stats.histogram.calls");
  if (rect.IsEmpty()) return 0.0;
  const Rect clipped = rect.Intersection(domain_);
  if (clipped.IsEmpty()) return 0.0;
  const double w = domain_.Width() / buckets_x_;
  const double h = domain_.Height() / buckets_y_;
  int bx_lo = std::clamp(
      static_cast<int>((clipped.x_lo() - domain_.x_lo()) / w), 0,
      buckets_x_ - 1);
  int bx_hi = std::clamp(
      static_cast<int>((clipped.x_hi() - domain_.x_lo()) / w), 0,
      buckets_x_ - 1);
  int by_lo = std::clamp(
      static_cast<int>((clipped.y_lo() - domain_.y_lo()) / h), 0,
      buckets_y_ - 1);
  int by_hi = std::clamp(
      static_cast<int>((clipped.y_hi() - domain_.y_lo()) / h), 0,
      buckets_y_ - 1);
  double total = 0.0;
  for (int by = by_lo; by <= by_hi; ++by) {
    for (int bx = bx_lo; bx <= bx_hi; ++bx) {
      const Rect bucket = BucketRect(bx, by);
      const double frac = OverlapArea(bucket, clipped) / bucket.Area();
      total += counts_[static_cast<size_t>(by) * buckets_x_ + bx] * frac;
    }
  }
  return total * record_size_;
}

}  // namespace qsp
