#ifndef QSP_STATS_EQUI_DEPTH_ESTIMATOR_H_
#define QSP_STATS_EQUI_DEPTH_ESTIMATOR_H_

#include <vector>

#include "geom/rect.h"
#include "relation/table.h"  // qsp-lint: allow(layer-back-edge) estimators summarize the relation they sample; read-only upward dependency, acyclic by construction
#include "stats/size_estimator.h"

namespace qsp {

/// Classic equi-depth (equi-height) histogram estimation ([MCS88]): one
/// marginal equi-depth histogram per position axis — every bucket holds
/// the same number of tuples, so bucket boundaries adapt to skew — and
/// the attribute-value-independence assumption combines the two
/// marginals:  |q| ≈ n * P(x in qx) * P(y in qy).
///
/// Compared to the equi-width HistogramEstimator this needs only
/// 2*buckets boundary values instead of buckets^2 cells, at the price of
/// the independence assumption (it cannot see diagonal correlation).
class EquiDepthEstimator : public SizeEstimator {
 public:
  /// Builds both marginals with `buckets` buckets each.
  EquiDepthEstimator(const Table& table, int buckets,
                     double record_size = 1.0);

  double EstimateSize(const Rect& rect) const override;

  /// Fraction of tuples with attribute value in [lo, hi], interpolating
  /// linearly inside buckets. `boundaries` are buckets+1 ascending values
  /// with equal tuple counts between consecutive entries; empty means "no
  /// data" (fraction 0). Public and static so the edge cases — empty
  /// table, single bucket, ranges outside the data domain, duplicate
  /// boundary values — are directly testable.
  static double MarginalFraction(const std::vector<double>& boundaries,
                                 double lo, double hi);

 private:
  double total_;
  double record_size_;
  /// boundaries_[k] has buckets+1 entries; equal tuple counts between
  /// consecutive entries. Index 0 = x axis, 1 = y axis.
  std::vector<double> boundaries_x_;
  std::vector<double> boundaries_y_;
};

}  // namespace qsp

#endif  // QSP_STATS_EQUI_DEPTH_ESTIMATOR_H_
