#include "stats/exact_estimator.h"

#include "obs/metrics.h"
#include "util/status.h"

namespace qsp {

ExactEstimator::ExactEstimator(const SpatialIndex* index, double record_size)
    : index_(index), record_size_(record_size) {
  QSP_CHECK(index != nullptr);
}

double ExactEstimator::EstimateSize(const Rect& rect) const {
  obs::Count("stats.exact.calls");
  return static_cast<double>(index_->Count(rect)) * record_size_;
}

}  // namespace qsp
