#include "channel/client_set.h"

#include <algorithm>

namespace qsp {

ClientId ClientSet::AddClient() {
  subscriptions_.emplace_back();
  return static_cast<ClientId>(subscriptions_.size() - 1);
}

void ClientSet::Subscribe(ClientId client, QueryId query) {
  auto& queries = subscriptions_[client];
  auto it = std::lower_bound(queries.begin(), queries.end(), query);
  if (it == queries.end() || *it != query) queries.insert(it, query);
}

void ClientSet::Unsubscribe(ClientId client, QueryId query) {
  if (client >= subscriptions_.size()) return;
  auto& queries = subscriptions_[client];
  auto it = std::lower_bound(queries.begin(), queries.end(), query);
  if (it != queries.end() && *it == query) queries.erase(it);
}

std::vector<ClientId> ClientSet::SubscribersOf(QueryId query) const {
  std::vector<ClientId> out;
  for (ClientId c = 0; c < subscriptions_.size(); ++c) {
    if (std::binary_search(subscriptions_[c].begin(),
                           subscriptions_[c].end(), query)) {
      out.push_back(c);
    }
  }
  return out;
}

std::vector<QueryId> ClientSet::QueriesOfClients(
    const std::vector<ClientId>& clients) const {
  std::vector<QueryId> out;
  for (ClientId c : clients) {
    out.insert(out.end(), subscriptions_[c].begin(), subscriptions_[c].end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<ClientId> ClientSet::AllClients() const {
  std::vector<ClientId> out(subscriptions_.size());
  for (size_t i = 0; i < out.size(); ++i) out[i] = static_cast<ClientId>(i);
  return out;
}

void CanonicalizeAllocation(Allocation* allocation) {
  for (auto& channel : *allocation) {
    std::sort(channel.begin(), channel.end());
    channel.erase(std::unique(channel.begin(), channel.end()),
                  channel.end());
  }
  allocation->erase(
      std::remove_if(allocation->begin(), allocation->end(),
                     [](const std::vector<ClientId>& ch) {
                       return ch.empty();
                     }),
      allocation->end());
  std::sort(allocation->begin(), allocation->end(),
            [](const std::vector<ClientId>& a,
               const std::vector<ClientId>& b) {
              return a.front() < b.front();
            });
}

bool IsValidAllocation(const Allocation& allocation, size_t num_clients,
                       size_t num_channels) {
  if (allocation.size() > num_channels) return false;
  std::vector<int> seen(num_clients, 0);
  for (const auto& channel : allocation) {
    for (ClientId c : channel) {
      if (c >= num_clients) return false;
      if (++seen[c] > 1) return false;
    }
  }
  for (int count : seen) {
    if (count != 1) return false;
  }
  return true;
}

std::string AllocationToString(const Allocation& allocation) {
  std::string out = "[";
  for (size_t ch = 0; ch < allocation.size(); ++ch) {
    if (ch > 0) out += " ";
    out += "{";
    for (size_t i = 0; i < allocation[ch].size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(allocation[ch][i]);
    }
    out += "}";
  }
  out += "]";
  return out;
}

}  // namespace qsp
