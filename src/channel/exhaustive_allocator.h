#ifndef QSP_CHANNEL_EXHAUSTIVE_ALLOCATOR_H_
#define QSP_CHANNEL_EXHAUSTIVE_ALLOCATOR_H_

#include <cstdint>

#include "channel/channel_cost.h"
#include "util/status.h"

namespace qsp {

/// Result of a channel-allocation search.
struct AllocationOutcome {
  Allocation allocation;
  double cost = 0.0;
  /// Candidate allocations (exhaustive) or moves (heuristic) evaluated.
  uint64_t candidates = 0;
};

/// The exhaustive channel-allocation algorithm of Section 8.1 (Figure
/// 13): enumerates every distribution of clients into at most C channels
/// via the same search-tree scheme as the Partition Algorithm, evaluating
/// each leaf with the (memoized) per-channel pair-merging cost. Exact;
/// refuses instances with more than `max_clients` clients.
class ExhaustiveAllocator {
 public:
  explicit ExhaustiveAllocator(int max_clients = 12)
      : max_clients_(max_clients) {}

  Result<AllocationOutcome> Allocate(const ChannelCostEvaluator& evaluator,
                                     int num_channels) const;

 private:
  int max_clients_;
};

}  // namespace qsp

#endif  // QSP_CHANNEL_EXHAUSTIVE_ALLOCATOR_H_
