#ifndef QSP_CHANNEL_CHANNEL_COST_H_
#define QSP_CHANNEL_CHANNEL_COST_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "channel/client_set.h"
#include "cost/cost_model.h"
#include "merge/merger.h"
#include "merge/pair_merger.h"
#include "query/merge_context.h"
#include "util/thread_annotations.h"

namespace qsp {

/// Cost of serving a set of clients on one multicast channel: the union of
/// their queries is merged with the Pair Merging Algorithm (as Section 8
/// prescribes — the choice of merge function does not affect the
/// allocation search, and pair merging keeps it polynomial) and the cost
/// model is applied to the resulting collection.
///
/// Costs are memoized by client set: the allocation searches re-evaluate
/// the same channel contents constantly (Section 8.2 keeps the same table
/// T; this class is that table, generalized).
///
/// Safe for concurrent Cost()/TotalCost() callers (the parallel
/// hill-climb starts): the memo is mutex-guarded and the underlying merge
/// runs outside the lock — racing threads computing the same channel get
/// the same deterministic cost, first insert wins.
class ChannelCostEvaluator {
 public:
  ChannelCostEvaluator(const MergeContext* ctx, const CostModel& model,
                       const ClientSet* clients);

  /// Memoized cost of the channel carrying exactly `channel_clients`.
  /// An empty client set costs 0. Does not include the per-channel K_D
  /// charge (the allocators add it per used channel).
  double Cost(const std::vector<ClientId>& channel_clients) const;

  /// Full merge plan for one channel (uncached; for reporting/serving).
  MergeOutcome Plan(const std::vector<ClientId>& channel_clients) const;

  /// The cost model the channel's merge actually ran under: k_m inflated
  /// by k_check per client on the channel (the k6 * num(Clients) * |M|
  /// term of Section 4, scoped to this channel). Exposed so EXPLAIN can
  /// re-derive per-group cost terms exactly as Plan() charged them.
  CostModel ChannelModel(const std::vector<ClientId>& channel_clients) const;

  /// Total cost of an allocation, including K_D per used channel.
  double TotalCost(const Allocation& allocation) const;

  /// Channel-cost evaluations actually computed (cache misses). With
  /// parallel callers this can slightly exceed the serial count (racing
  /// threads may both evaluate a channel); it is a telemetry quantity,
  /// never an input to the search.
  uint64_t evaluations() const {
    return evaluations_.load(std::memory_order_relaxed);
  }

  const CostModel& model() const { return model_; }
  const ClientSet& clients() const { return *clients_; }
  const MergeContext& context() const { return *ctx_; }

 private:
  struct VecHash {
    size_t operator()(const std::vector<ClientId>& v) const {
      uint64_t h = 1469598103934665603ULL;
      for (ClientId id : v) {
        h ^= id;
        h *= 1099511628211ULL;
      }
      return static_cast<size_t>(h);
    }
  };

  const MergeContext* ctx_;
  CostModel model_;
  const ClientSet* clients_;
  PairMerger merger_;
  mutable std::mutex mu_;
  mutable std::unordered_map<std::vector<ClientId>, double, VecHash> cache_
      QSP_GUARDED_BY(mu_);
  mutable std::atomic<uint64_t> evaluations_{0};
};

}  // namespace qsp

#endif  // QSP_CHANNEL_CHANNEL_COST_H_
