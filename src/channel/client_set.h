#ifndef QSP_CHANNEL_CLIENT_SET_H_
#define QSP_CHANNEL_CLIENT_SET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "query/query.h"

namespace qsp {

/// Identifier of a subscribing client (operational unit in the BADD
/// scenario). Dense, assigned in registration order.
using ClientId = uint32_t;

/// An assignment of clients to multicast channels: allocation[ch] is the
/// list of clients listening to channel ch. Every client listens to
/// exactly one channel (Section 7.2).
using Allocation = std::vector<std::vector<ClientId>>;

/// The client population and their subscriptions Q_i.
class ClientSet {
 public:
  ClientSet() = default;

  /// Registers a new client; returns its id.
  ClientId AddClient();

  /// Records that `client` subscribed to `query`.
  void Subscribe(ClientId client, QueryId query);

  /// Retires a subscription (lease expiry or voluntary departure in the
  /// live service). No-op when the pair is not recorded.
  void Unsubscribe(ClientId client, QueryId query);

  size_t num_clients() const { return subscriptions_.size(); }

  /// The queries client `c` subscribed to, ascending, deduplicated.
  const std::vector<QueryId>& QueriesOf(ClientId c) const {
    return subscriptions_[c];
  }

  /// Clients subscribed to `query`, ascending.
  std::vector<ClientId> SubscribersOf(QueryId query) const;

  /// Union of the queries of a set of clients, ascending.
  std::vector<QueryId> QueriesOfClients(
      const std::vector<ClientId>& clients) const;

  /// All client ids, ascending.
  std::vector<ClientId> AllClients() const;

 private:
  std::vector<std::vector<QueryId>> subscriptions_;
};

/// Drops empty channels and orders clients/channels canonically so that
/// structurally equal allocations compare equal.
void CanonicalizeAllocation(Allocation* allocation);

/// True when every client 0..num_clients-1 appears exactly once and at
/// most `num_channels` channels are used.
bool IsValidAllocation(const Allocation& allocation, size_t num_clients,
                       size_t num_channels);

/// "[{0,2} {1}]" rendering.
std::string AllocationToString(const Allocation& allocation);

}  // namespace qsp

#endif  // QSP_CHANNEL_CLIENT_SET_H_
