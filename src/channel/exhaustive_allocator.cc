#include "channel/exhaustive_allocator.h"

#include <limits>

#include "merge/rgs.h"

namespace qsp {

Result<AllocationOutcome> ExhaustiveAllocator::Allocate(
    const ChannelCostEvaluator& evaluator, int num_channels) const {
  const size_t n = evaluator.clients().num_clients();
  if (num_channels < 1) {
    return Status::InvalidArgument("need at least one channel");
  }
  if (n > static_cast<size_t>(max_clients_)) {
    return Status::ResourceExhausted(
        "exhaustive allocation limited to " + std::to_string(max_clients_) +
        " clients, got " + std::to_string(n));
  }

  AllocationOutcome best;
  best.cost = std::numeric_limits<double>::infinity();
  if (n == 0) {
    best.cost = 0.0;
    return best;
  }

  RgsIterator it(static_cast<int>(n), num_channels);
  do {
    ++best.candidates;
    Allocation allocation;
    for (const auto& block : RgsToBlocks(it.Current())) {
      std::vector<ClientId> channel;
      channel.reserve(block.size());
      for (int c : block) channel.push_back(static_cast<ClientId>(c));
      allocation.push_back(std::move(channel));
    }
    const double cost = evaluator.TotalCost(allocation);
    if (cost < best.cost) {
      best.cost = cost;
      best.allocation = std::move(allocation);
    }
  } while (it.Next());

  CanonicalizeAllocation(&best.allocation);
  return best;
}

}  // namespace qsp
