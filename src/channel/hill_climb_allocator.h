#ifndef QSP_CHANNEL_HILL_CLIMB_ALLOCATOR_H_
#define QSP_CHANNEL_HILL_CLIMB_ALLOCATOR_H_

#include <cstdint>

#include "channel/channel_cost.h"
#include "channel/exhaustive_allocator.h"
#include "util/rng.h"

namespace qsp {

/// Where the hill climber starts (the comparison of Figure 18).
enum class StartPolicy {
  /// The pairwise Cost-delta seeding algorithm of Figure 14.
  kSeeded,
  /// A uniformly random assignment of clients to channels.
  kRandom,
  /// Run both starts, keep the cheaper final allocation.
  kBestOfBoth,
};

/// The heuristic channel-allocation algorithm of Section 8.2: starting
/// from an initial distribution, repeatedly move the single client whose
/// relocation to another channel reduces the total cost most, until no
/// move helps. Per-channel costs come from the memoized
/// ChannelCostEvaluator (the paper's table T).
class HillClimbAllocator {
 public:
  explicit HillClimbAllocator(StartPolicy policy = StartPolicy::kBestOfBoth,
                              uint64_t seed = 42)
      : policy_(policy), seed_(seed) {}

  Result<AllocationOutcome> Allocate(const ChannelCostEvaluator& evaluator,
                                     int num_channels) const;

  /// The initial-distribution algorithm of Figure 14: repeatedly allocate
  /// the client pair with the largest pairwise merge benefit to the next
  /// channel (round robin), then scatter the leftovers. Exposed for tests
  /// and the Figure 18 bench.
  static Allocation SeededStart(const ChannelCostEvaluator& evaluator,
                                int num_channels);

  /// Uniform random client-to-channel assignment.
  static Allocation RandomStart(size_t num_clients, int num_channels,
                                Rng* rng);

 private:
  AllocationOutcome Climb(const ChannelCostEvaluator& evaluator,
                          Allocation start) const;

  StartPolicy policy_;
  uint64_t seed_;
};

}  // namespace qsp

#endif  // QSP_CHANNEL_HILL_CLIMB_ALLOCATOR_H_
