#include "channel/channel_cost.h"

#include <algorithm>

#include "util/status.h"

namespace qsp {

ChannelCostEvaluator::ChannelCostEvaluator(const MergeContext* ctx,
                                           const CostModel& model,
                                           const ClientSet* clients)
    : ctx_(ctx), model_(model), clients_(clients) {
  QSP_CHECK(ctx != nullptr);
  QSP_CHECK(clients != nullptr);
}

double ChannelCostEvaluator::Cost(
    const std::vector<ClientId>& channel_clients) const {
  if (channel_clients.empty()) return 0.0;
  std::vector<ClientId> key = channel_clients;
  std::sort(key.begin(), key.end());
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }
  // The merge runs outside the lock; it is deterministic, so a racing
  // thread computing the same channel lands on the same cost.
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  const double cost = Plan(key).cost;
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.try_emplace(std::move(key), cost).first->second;
}

MergeOutcome ChannelCostEvaluator::Plan(
    const std::vector<ClientId>& channel_clients) const {
  const std::vector<QueryId> queries =
      clients_->QueriesOfClients(channel_clients);
  const CostModel channel_model = ChannelModel(channel_clients);
  Partition start;
  start.reserve(queries.size());
  for (QueryId q : queries) start.push_back({q});
  return merger_.MergeFrom(*ctx_, channel_model, std::move(start));
}

CostModel ChannelCostEvaluator::ChannelModel(
    const std::vector<ClientId>& channel_clients) const {
  // Every client on the channel checks every message broadcast on it, so
  // the per-message constant grows with the channel's population — the
  // k6 * num(Clients) * |M| term of Section 4, scoped to this channel.
  CostModel channel_model = model_;
  channel_model.k_m +=
      model_.k_check * static_cast<double>(channel_clients.size());
  return channel_model;
}

double ChannelCostEvaluator::TotalCost(const Allocation& allocation) const {
  double total = 0.0;
  size_t used = 0;
  for (const auto& channel : allocation) {
    if (channel.empty()) continue;
    ++used;
    total += Cost(channel);
  }
  return total + model_.k_d * static_cast<double>(used);
}

}  // namespace qsp
