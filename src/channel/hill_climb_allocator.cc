#include "channel/hill_climb_allocator.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "util/float_compare.h"

namespace qsp {

Allocation HillClimbAllocator::SeededStart(
    const ChannelCostEvaluator& evaluator, int num_channels) {
  const size_t n = evaluator.clients().num_clients();
  Allocation allocation(static_cast<size_t>(num_channels));
  if (n == 0) return allocation;

  struct Triple {
    ClientId a;
    ClientId b;
    double delta;
  };
  std::vector<Triple> list;
  for (ClientId a = 0; a < n; ++a) {
    for (ClientId b = a + 1; b < n; ++b) {
      const double delta = evaluator.Cost({a}) + evaluator.Cost({b}) -
                           evaluator.Cost({a, b});
      list.push_back({a, b, delta});
    }
  }

  std::vector<bool> assigned(n, false);
  size_t cch = 0;
  while (!list.empty()) {
    auto best = std::max_element(
        list.begin(), list.end(),
        [](const Triple& x, const Triple& y) { return x.delta < y.delta; });
    const ClientId a = best->a;
    const ClientId b = best->b;
    allocation[cch].push_back(a);
    allocation[cch].push_back(b);
    assigned[a] = assigned[b] = true;
    cch = (cch + 1) % static_cast<size_t>(num_channels);
    list.erase(std::remove_if(list.begin(), list.end(),
                              [&](const Triple& t) {
                                return t.a == a || t.a == b || t.b == a ||
                                       t.b == b;
                              }),
               list.end());
  }
  for (ClientId c = 0; c < n; ++c) {
    if (!assigned[c]) {
      allocation[cch].push_back(c);
      cch = (cch + 1) % static_cast<size_t>(num_channels);
    }
  }
  for (auto& channel : allocation) std::sort(channel.begin(), channel.end());
  return allocation;
}

Allocation HillClimbAllocator::RandomStart(size_t num_clients,
                                           int num_channels, Rng* rng) {
  Allocation allocation(static_cast<size_t>(num_channels));
  for (ClientId c = 0; c < num_clients; ++c) {
    const size_t ch = static_cast<size_t>(
        rng->UniformInt(0, static_cast<int64_t>(num_channels) - 1));
    allocation[ch].push_back(c);
  }
  return allocation;
}

AllocationOutcome HillClimbAllocator::Climb(
    const ChannelCostEvaluator& evaluator, Allocation start) const {
  AllocationOutcome outcome;
  Allocation& allocation = start;
  const double k_d = evaluator.model().k_d;

  auto channel_cost = [&](const std::vector<ClientId>& clients) {
    return clients.empty() ? 0.0 : evaluator.Cost(clients) + k_d;
  };

  while (true) {
    double best_delta = 0.0;
    size_t best_client_pos = 0, best_src = 0, best_dst = 0;

    for (size_t src = 0; src < allocation.size(); ++src) {
      const auto& src_clients = allocation[src];
      if (src_clients.empty()) continue;
      const double src_cost = channel_cost(src_clients);
      for (size_t pos = 0; pos < src_clients.size(); ++pos) {
        std::vector<ClientId> src_without = src_clients;
        src_without.erase(src_without.begin() +
                          static_cast<ptrdiff_t>(pos));
        const double src_without_cost = channel_cost(src_without);
        for (size_t dst = 0; dst < allocation.size(); ++dst) {
          if (dst == src) continue;
          ++outcome.candidates;
          std::vector<ClientId> dst_with = allocation[dst];
          dst_with.push_back(src_clients[pos]);
          std::sort(dst_with.begin(), dst_with.end());
          const double dst_cost = channel_cost(allocation[dst]);
          const double delta =
              src_cost + dst_cost - src_without_cost - channel_cost(dst_with);
          // Gate on IsImprovement: a rounding-level "gain" exists in both
          // directions of the same move and would oscillate forever.
          if (delta > best_delta &&
              IsImprovement(delta, src_cost + dst_cost)) {
            best_delta = delta;
            best_client_pos = pos;
            best_src = src;
            best_dst = dst;
          }
        }
      }
    }

    if (best_delta <= 0.0) break;
    const ClientId mover = allocation[best_src][best_client_pos];
    allocation[best_src].erase(allocation[best_src].begin() +
                               static_cast<ptrdiff_t>(best_client_pos));
    allocation[best_dst].push_back(mover);
    std::sort(allocation[best_dst].begin(), allocation[best_dst].end());
  }

  outcome.cost = evaluator.TotalCost(allocation);
  outcome.allocation = std::move(allocation);
  CanonicalizeAllocation(&outcome.allocation);
  return outcome;
}

Result<AllocationOutcome> HillClimbAllocator::Allocate(
    const ChannelCostEvaluator& evaluator, int num_channels) const {
  if (num_channels < 1) {
    return Status::InvalidArgument("need at least one channel");
  }
  const size_t n = evaluator.clients().num_clients();
  if (n == 0) return AllocationOutcome{};

  Rng rng(seed_);
  AllocationOutcome best;
  best.cost = std::numeric_limits<double>::infinity();
  uint64_t candidates = 0;

  // Both starts are built first (the seeded start never draws from the
  // rng, so the draw order matches the old sequential code), then the
  // independent climbs fan out across the exec pool. They share the
  // evaluator's channel-cost memo, which is safe for concurrent callers.
  std::vector<Allocation> starts;
  if (policy_ == StartPolicy::kSeeded || policy_ == StartPolicy::kBestOfBoth) {
    starts.push_back(SeededStart(evaluator, num_channels));
  }
  if (policy_ == StartPolicy::kRandom || policy_ == StartPolicy::kBestOfBoth) {
    starts.push_back(RandomStart(n, num_channels, &rng));
  }
  std::vector<AllocationOutcome> outcomes =
      exec::ParallelMap<AllocationOutcome>(starts.size(), [&](size_t k) {
        return Climb(evaluator, std::move(starts[k]));
      });
  // Reduce in start order (seeded before random) with a strict `<`, the
  // same tie-break as the sequential loop for any thread count.
  for (AllocationOutcome& outcome : outcomes) {
    candidates += outcome.candidates;
    if (outcome.cost < best.cost) best = std::move(outcome);
  }
  best.candidates = candidates;
  return best;
}

}  // namespace qsp
