#include "merge/cover_refiner.h"

#include <algorithm>

#include "geom/region.h"
#include "util/float_compare.h"

namespace qsp {
namespace {

/// Estimated size of one merged query's region.
double MergedSize(const MergeContext& ctx, const MergedQuery& merged) {
  return ctx.estimator().EstimateRegionSize(merged.region);
}

/// Estimated size of region ∩ rect.
double OverlapSize(const MergeContext& ctx, const MergedQuery& merged,
                   const Rect& rect) {
  double total = 0.0;
  for (const Rect& piece : merged.region) {
    const Rect clipped = piece.Intersection(rect);
    if (!clipped.IsEmpty()) total += ctx.estimator().EstimateSize(clipped);
  }
  return total;
}

/// True when `rect` is fully covered by the union of the regions.
bool Covers(const std::vector<const MergedQuery*>& covers, const Rect& rect) {
  std::vector<Rect> pieces;
  for (const MergedQuery* m : covers) {
    pieces.insert(pieces.end(), m->region.begin(), m->region.end());
  }
  return RectilinearRegion::UnionOf(pieces).Covers(rect);
}

}  // namespace

double CoverRefiner::PlanCost(const MergeContext& ctx, const CostModel& model,
                              const std::vector<MergedQuery>& merged) {
  double cost = 0.0;
  for (const MergedQuery& m : merged) {
    const double size = MergedSize(ctx, m);
    cost += model.k_m + model.k_t * size;
    for (QueryId member : m.members) {
      cost += model.k_u * (size - OverlapSize(ctx, m, ctx.queries().rect(member)));
    }
  }
  return cost;
}

CoverPlan CoverRefiner::Refine(const MergeContext& ctx,
                               const CostModel& model,
                               const Partition& partition) const {
  CoverPlan plan;
  // Materialize the partition's merged queries.
  for (const QueryGroup& group : partition) {
    std::vector<MergedQuery> merged = ctx.Merged(group);
    for (MergedQuery& m : merged) plan.merged.push_back(std::move(m));
  }
  plan.cost = PlanCost(ctx, model, plan.merged);

  // Greedily try to dissolve merged queries, cheapest groups first
  // (singletons are the usual winners: their whole message overhead goes
  // away). Restart the scan after each successful dissolution since the
  // remaining covers changed.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t victim = 0; victim < plan.merged.size(); ++victim) {
      const MergedQuery& v = plan.merged[victim];

      // Candidate covers: other merged queries intersecting the victim.
      std::vector<size_t> neighbours;
      const Rect victim_box = [&] {
        Rect box = Rect::Empty();
        for (const Rect& piece : v.region) box = box.BoundingUnion(piece);
        return box;
      }();
      for (size_t other = 0; other < plan.merged.size(); ++other) {
        if (other == victim) continue;
        for (const Rect& piece : plan.merged[other].region) {
          if (piece.Intersects(victim_box)) {
            neighbours.push_back(other);
            break;
          }
        }
      }
      if (neighbours.empty()) continue;

      // For every member of the victim we need a cover set of size <=
      // max_cover_size_ from the neighbours. Try single covers first,
      // then pairs (the paper's example splits across two).
      std::vector<std::vector<size_t>> member_covers;
      bool all_covered = true;
      for (QueryId member : v.members) {
        const Rect& rect = ctx.queries().rect(member);
        std::vector<size_t> chosen;
        for (size_t n : neighbours) {
          ++plan.candidates;
          if (Covers({&plan.merged[n]}, rect)) {
            chosen = {n};
            break;
          }
        }
        if (chosen.empty() && max_cover_size_ >= 2) {
          for (size_t i = 0; i < neighbours.size() && chosen.empty(); ++i) {
            for (size_t j = i + 1; j < neighbours.size(); ++j) {
              ++plan.candidates;
              if (Covers({&plan.merged[neighbours[i]],
                          &plan.merged[neighbours[j]]},
                         rect)) {
                chosen = {neighbours[i], neighbours[j]};
                break;
              }
            }
          }
        }
        if (chosen.empty()) {
          all_covered = false;
          break;
        }
        member_covers.push_back(std::move(chosen));
      }
      if (!all_covered) continue;

      // Build the candidate plan and compare costs.
      std::vector<MergedQuery> candidate = plan.merged;
      for (size_t i = 0; i < v.members.size(); ++i) {
        for (size_t cover : member_covers[i]) {
          auto& members = candidate[cover].members;
          if (std::find(members.begin(), members.end(), v.members[i]) ==
              members.end()) {
            members.push_back(v.members[i]);
            std::sort(members.begin(), members.end());
          }
        }
      }
      candidate.erase(candidate.begin() + static_cast<ptrdiff_t>(victim));
      const double candidate_cost = PlanCost(ctx, model, candidate);
      if (IsImprovement(plan.cost - candidate_cost, plan.cost)) {
        plan.absorbed += v.members.size();
        plan.merged = std::move(candidate);
        plan.cost = candidate_cost;
        changed = true;
        break;  // Indices shifted; rescan.
      }
    }
  }
  return plan;
}

}  // namespace qsp
