#include "merge/exhaustive_merger.h"

#include <limits>
#include <vector>

namespace qsp {
namespace {

QueryGroup MaskToGroup(uint32_t mask) {
  QueryGroup group;
  for (uint32_t i = 0; mask != 0; ++i, mask >>= 1) {
    if (mask & 1u) group.push_back(i);
  }
  return group;
}

}  // namespace

Result<MergeOutcome> ExhaustiveMerger::DoMerge(const MergeContext& ctx,
                                               const CostModel& model) const {
  const int n = static_cast<int>(ctx.num_queries());
  if (n == 0) return MergeOutcome{};
  if (n > max_queries_) {
    return Status::ResourceExhausted(
        "exhaustive S(S(Q)) search is limited to " +
        std::to_string(max_queries_) + " queries, got " + std::to_string(n));
  }

  const uint32_t num_subsets = (1u << n) - 1;  // Non-empty subsets of Q.
  const uint32_t full_cover = (1u << n) - 1;

  // Precompute group costs per subset mask (masks are 1-based here:
  // subset index s corresponds to query-id mask s).
  std::vector<double> subset_cost(num_subsets + 1, 0.0);
  for (uint32_t s = 1; s <= num_subsets; ++s) {
    subset_cost[s] = model.GroupCost(ctx, MaskToGroup(s));
  }

  MergeOutcome best;
  best.cost = std::numeric_limits<double>::infinity();

  // Enumerate S(S(Q)): every collection of non-empty subsets.
  const uint64_t num_collections = 1ull << num_subsets;
  for (uint64_t collection = 1; collection < num_collections; ++collection) {
    uint32_t covered = 0;
    double cost = 0.0;
    for (uint32_t s = 1; s <= num_subsets; ++s) {
      if (collection & (1ull << (s - 1))) {
        covered |= s;
        cost += subset_cost[s];
      }
    }
    ++best.candidates;
    if (covered != full_cover) continue;  // Not a total cover of Q.
    if (cost < best.cost) {
      best.cost = cost;
      best.partition.clear();
      for (uint32_t s = 1; s <= num_subsets; ++s) {
        if (collection & (1ull << (s - 1))) {
          best.partition.push_back(MaskToGroup(s));
        }
      }
    }
  }
  CanonicalizePartition(&best.partition);
  return best;
}

}  // namespace qsp
