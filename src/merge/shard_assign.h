#ifndef QSP_MERGE_SHARD_ASSIGN_H_
#define QSP_MERGE_SHARD_ASSIGN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/rect.h"
#include "geom/rect_soa.h"

namespace qsp {

/// How ShardedPlanner maps queries to shards (DESIGN.md §13).
enum class ShardAssign {
  /// Fixed cx x cy object-space grid over the bounding union; a query
  /// goes to the cell holding its rectangle's center. Cheap and
  /// cache-friendly, but skew-bound: a dense cluster lands in one cell
  /// and that shard's merge caps the speedup.
  kGrid,
  /// Cost-balanced recursive bisection: KD-style cuts over rectangle
  /// centers where every cut equalizes the *estimated planning cost* on
  /// each side, so a cluster holding 40% of the cost is split across
  /// many shards instead of inheriting one.
  kBalanced,
};

/// One internal node of the balanced-assignment cut tree. Children are
/// encoded as int32: >= 0 is an index into ShardLayout::cuts, < 0 is a
/// leaf holding shard id -(child) - 1.
struct ShardCutNode {
  int axis = 0;  ///< 0 = vertical cut (x = coord), 1 = horizontal.
  double coord = 0.0;
  int32_t left = 0;
  int32_t right = 0;
};

/// A complete shard assignment: per-query shard ids plus the per-shard
/// accounting the planner needs for scheduling (largest-estimated-cost
/// first), seam classification (shard boxes + which sides face a
/// neighbor), and observability (imbalance gauge, EXPLAIN cut tree).
/// Everything here is a deterministic function of the input rectangles
/// and the requested shard count — assignment is serial arithmetic, so
/// it is identical at every thread count.
struct ShardLayout {
  ShardAssign assign = ShardAssign::kBalanced;
  /// Actual shard count. kGrid rounds the request to cx * cy; kBalanced
  /// caps it at the placed-rect count and may come in lower still when
  /// straddle refusal stops the bisection early (cutting finer than the
  /// rects are wide only manufactures seam work).
  int num_shards = 1;
  /// Grid geometry when assign == kGrid (1 x 1 otherwise).
  int cells_x = 1;
  int cells_y = 1;
  /// Per-query shard id; RectSoA::kBoundlessShard for empty rects (the
  /// planner parks those in shard 0, and the accounting below already
  /// counts them there).
  std::vector<int32_t> shard_of;
  /// Estimated planning cost per shard: sum of per-query candidate-pair
  /// density weights (PlanningCostWeights). Drives scheduling order and
  /// the plan.shard.imbalance gauge.
  std::vector<double> shard_cost;
  /// Queries per shard, boundless queries counted in shard 0 — exactly
  /// the sub-problem sizes the planner will build.
  std::vector<size_t> shard_queries;
  /// Region each shard owns (grid cell or bisection leaf box). Groups
  /// whose MBR reaches a box side that faces a neighbor are seam
  /// candidates.
  std::vector<Rect> shard_box;
  /// Which sides of shard_box[s] face another shard. A side on the
  /// domain boundary has no neighbor, so groups touching it stay
  /// interior — this generalizes the grid's ci == 0 / ci == cells_x - 1
  /// edge tests to arbitrary bisection leaves.
  struct SeamSides {
    bool x_lo = false;
    bool x_hi = false;
    bool y_lo = false;
    bool y_hi = false;
  };
  std::vector<SeamSides> shard_open;
  /// Balanced-assignment cut tree; empty for kGrid or a single shard.
  /// cuts[0] is the root when non-empty.
  std::vector<ShardCutNode> cuts;
  /// Sum of all per-query weights (== sum of shard_cost).
  double total_cost = 0.0;

  double MaxCost() const;
  /// Largest shard estimated cost / mean over num_shards (empty shards
  /// count as zero cost); 0 when there is no cost at all. 1.0 is a
  /// perfect balance; the grid on a clustered workload shows > 4.
  double Imbalance() const;
};

/// Estimated planning cost per query: 1 + the candidate load around the
/// query's rectangle read off a SpatialGrid over the population
/// (SpatialGrid::LoadInRange). Planning a shard is dominated by
/// enumerating and costing candidate pairs, and a query in a dense
/// cluster participates in ~density pairs, so summed load is a faithful
/// relative proxy for shard planning time. The +1 keeps sparse queries
/// from being free. Boundless rects get 1 + population size (they pair
/// with everything). Deterministic; O(n) grid build + O(cells covered)
/// per query.
std::vector<double> PlanningCostWeights(const RectSoA& soa);

/// Computes the shard layout for `soa` under `assign`. `shards` is the
/// requested count; see ShardLayout::num_shards for what it was capped
/// to. kGrid reproduces the fixed-grid assignment byte-for-byte
/// (same floor(sqrt) grid dims, same BatchShardOf arithmetic, same cell
/// boxes), so plans produced under it match the pre-balanced planner
/// exactly. kBalanced recursively bisects: at each node the split axis
/// is the one with the larger center spread (ties pick x), queries are
/// ordered by (center, id) — the id tie-break makes all-same-center
/// populations split deterministically — and the cut index is chosen so
/// the weight prefix best matches the left subtree's fair share of the
/// node's total, clamped so every leaf keeps at least one query, then
/// snapped to the *minimum-straddle* line among near-balanced cuts:
/// within a bounded balance slack the cut with the least weight of
/// rects physically spanning it wins (ties: wider center gap, then
/// smaller index), steering cuts into density valleys instead of
/// through clusters. If even the best candidate is straddled by most of
/// the node's weight — true once slivers are narrower than the rects
/// they host — the cut is refused, the other axis is tried, and when
/// both refuse the node becomes a leaf and the surplus budget lapses,
/// so num_shards can undershoot the request on tightly clustered data.
/// Termination is structural: every recursion strictly shrinks the
/// shard budget, queries never vanish.
ShardLayout AssignShards(const RectSoA& soa, int shards, ShardAssign assign);

}  // namespace qsp

#endif  // QSP_MERGE_SHARD_ASSIGN_H_
