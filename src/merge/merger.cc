#include "merge/merger.h"

#include "obs/metrics.h"
#include "obs/phase_tracer.h"

namespace qsp {

Result<MergeOutcome> Merger::Merge(const MergeContext& ctx,
                                   const CostModel& model) const {
  if (!obs::Enabled()) return DoMerge(ctx, model);

  const std::string prefix = "merge." + name();
  obs::ScopedSpan span("merge/" + name());
  obs::ScopedTimer timer(prefix + ".latency_us");
  const size_t groups_before = ctx.groups_evaluated();
  Result<MergeOutcome> outcome = DoMerge(ctx, model);
  obs::Count(prefix + ".runs");
  // Distinct new groups whose statistics were computed for this run — the
  // memoized-oracle work actually performed (cache hits excluded).
  obs::Count(prefix + ".group_evals",
             ctx.groups_evaluated() - groups_before);
  if (outcome.ok()) {
    obs::Count(prefix + ".candidates", outcome->candidates);
    obs::SetGauge(prefix + ".last_cost", outcome->cost);
    obs::SetGauge(prefix + ".last_groups",
                  static_cast<double>(outcome->partition.size()));
  } else {
    obs::Count(prefix + ".errors");
  }
  return outcome;
}

}  // namespace qsp
