#ifndef QSP_MERGE_PLAN_BOUNDS_H_
#define QSP_MERGE_PLAN_BOUNDS_H_

#include "cost/cost_model.h"
#include "geom/rect.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "query/query.h"

namespace qsp {
namespace plan {

/// Cached per-group quantities the admissible benefit bounds consume.
/// Built once when a group is created (its exact cost is computed then
/// anyway) and never mutated — merges create fresh groups.
struct GroupSummary {
  /// Exact GroupCost of the group (same memoized value the planner uses).
  double cost = 0.0;
  /// Exact merged size of the group (GroupStats::size).
  double size = 0.0;
  /// Largest member singleton size — a merged-size lower bound that holds
  /// for every procedure, because each member's rectangle must be covered
  /// by the merged regions serving it.
  double size_lb = 0.0;
  /// Number of member queries, and the sum of their singleton sizes.
  /// Under a single-message procedure the merged irrelevant data is
  /// exactly members * size(M) - member_size_sum (the one merged region
  /// covers every member rectangle, so each member's relevant portion is
  /// its full singleton size), which turns into an admissible K_U term.
  double members = 0.0;
  double member_size_sum = 0.0;
  /// Bounding box of the member rectangles (empty if all members are).
  Rect bbox;
};

/// The planner's admissible benefit bounds (DESIGN.md §8): cheap upper
/// bounds on MergeBenefit(a, b) from cached group summaries, never below
/// the exact value, so a lazy bound→exact refinement heap selects exactly
/// the merges the exhaustive profit table would.
///
/// All bounds derive from one inequality: for any merged group M,
///   GroupCost(M) >= K_M * 1 + K_T * size_lb(M),
/// with size_lb(M) the best available merged-size lower bound. Which
/// lower bounds are available depends on the merge procedure's
/// ProcedureTraits and the estimator's DensityFloor; with none of them
/// the max-member bound still applies. The floating-point slack kSlack
/// absorbs rounding differences between the bound's arithmetic and the
/// estimator's own evaluation order.
class BenefitBounder {
 public:
  BenefitBounder(const MergeContext& ctx, const CostModel& model);

  /// True when the bounds are valid for this cost model (requires
  /// non-negative K_M, K_T, K_U — see CostModel::SupportsBenefitBounds).
  /// When false, callers must fall back to exhaustive evaluation.
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// True when the density-floor distance term is active: the procedure
  /// covers the bounding union, the estimator guarantees a positive
  /// density on a support containing every query, and K_T > 0. Only then
  /// can far-apart pairs be pruned without any evaluation (SearchWindow).
  [[nodiscard]] bool distance_aware() const { return distance_aware_; }

  /// Builds the summary of a group, computing (or re-reading memoized)
  /// exact group statistics.
  [[nodiscard]] GroupSummary Summarize(const QueryGroup& group) const;

  /// Admissible upper bound: UpperBound(a, b) >= MergeBenefit(a, b).
  [[nodiscard]] double UpperBound(const GroupSummary& a, const GroupSummary& b) const;

  /// Window around g's bounding box outside which no partner group of
  /// cost <= max_partner_cost can have a positive benefit bound. Returns
  /// an unbounded rectangle when !distance_aware() or g has no box (no
  /// pruning possible), and may return an empty rectangle when no partner
  /// anywhere qualifies. Partners with empty bounding boxes are exempt —
  /// SpatialGrid keeps those in its boundless bucket, which every query
  /// returns.
  [[nodiscard]] Rect SearchWindow(const GroupSummary& g, double max_partner_cost) const;

  /// Multiplier under 1 applied to every merged-size lower bound, so the
  /// bounds stay admissible under floating-point rounding (the bound and
  /// the estimator compute "the same" quantity via different operation
  /// orders; 1e-7 relative slack dwarfs any accumulated ulps).
  static constexpr double kSlack = 1.0 - 1e-7;

 private:
  const MergeContext* ctx_;
  const CostModel* model_;
  ProcedureTraits traits_;
  bool enabled_ = false;
  bool distance_aware_ = false;
  double density_ = 0.0;
};

}  // namespace plan
}  // namespace qsp

#endif  // QSP_MERGE_PLAN_BOUNDS_H_
