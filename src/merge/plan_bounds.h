#ifndef QSP_MERGE_PLAN_BOUNDS_H_
#define QSP_MERGE_PLAN_BOUNDS_H_

#include "cost/cost_model.h"
#include "geom/rect.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "query/query.h"

namespace qsp {
namespace plan {

/// Cached per-group quantities the admissible benefit bounds consume.
/// Built once when a group is created (its exact cost is computed then
/// anyway) and never mutated — merges create fresh groups.
struct GroupSummary {
  /// Exact GroupCost of the group (same memoized value the planner uses).
  double cost = 0.0;
  /// Exact merged size of the group (GroupStats::size).
  double size = 0.0;
  /// Largest member singleton size — a merged-size lower bound that holds
  /// for every procedure, because each member's rectangle must be covered
  /// by the merged regions serving it.
  double size_lb = 0.0;
  /// Number of member queries, and the sum of their singleton sizes.
  /// Under a single-message procedure the merged irrelevant data is
  /// exactly members * size(M) - member_size_sum (the one merged region
  /// covers every member rectangle, so each member's relevant portion is
  /// its full singleton size), which turns into an admissible K_U term.
  double members = 0.0;
  double member_size_sum = 0.0;
  /// Bounding box of the member rectangles (empty if all members are).
  Rect bbox;
};

/// The planner's admissible benefit bounds (DESIGN.md §8): cheap upper
/// bounds on MergeBenefit(a, b) from cached group summaries, never below
/// the exact value, so a lazy bound→exact refinement heap selects exactly
/// the merges the exhaustive profit table would.
///
/// All bounds derive from one inequality: for any merged group M,
///   GroupCost(M) >= K_M * 1 + K_T * size_lb(M),
/// with size_lb(M) the best available merged-size lower bound. Which
/// lower bounds are available depends on the merge procedure's
/// ProcedureTraits and the estimator's DensityFloor; with none of them
/// the max-member bound still applies. The floating-point slack kSlack
/// absorbs rounding differences between the bound's arithmetic and the
/// estimator's own evaluation order.
class BenefitBounder {
 public:
  BenefitBounder(const MergeContext& ctx, const CostModel& model);

  /// Same, but takes the bounding union of every query the caller will
  /// ever pass through Summarize/UpperBound instead of scanning the
  /// QuerySet. The incremental merger uses this: its population grows
  /// after construction, so it maintains the universe itself and
  /// re-derives a (cheap) bounder whenever the universe grows — the
  /// distance term must be dropped the moment a query escapes the
  /// estimator's density-floor support.
  BenefitBounder(const MergeContext& ctx, const CostModel& model,
                 const Rect& universe);

  /// True when the bounds are valid for this cost model (requires
  /// non-negative K_M, K_T, K_U — see CostModel::SupportsBenefitBounds).
  /// When false, callers must fall back to exhaustive evaluation.
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// True when the density-floor distance term is active: the procedure
  /// covers the bounding union, the estimator guarantees a positive
  /// density on a support containing every query, and K_T > 0. Only then
  /// can far-apart pairs be pruned without any evaluation (SearchWindow).
  [[nodiscard]] bool distance_aware() const { return distance_aware_; }

  /// Builds the summary of a group, computing (or re-reading memoized)
  /// exact group statistics.
  [[nodiscard]] GroupSummary Summarize(const QueryGroup& group) const;

  /// Admissible upper bound: UpperBound(a, b) >= MergeBenefit(a, b).
  [[nodiscard]] double UpperBound(const GroupSummary& a, const GroupSummary& b) const;

  /// Window around g's bounding box outside which no partner group of
  /// cost <= max_partner_cost can have a positive benefit bound. Returns
  /// an unbounded rectangle when !distance_aware() or g has no box (no
  /// pruning possible), and may return an empty rectangle when no partner
  /// anywhere qualifies. Partners with empty bounding boxes are exempt —
  /// SpatialGrid keeps those in its boundless bucket, which every query
  /// returns.
  [[nodiscard]] Rect SearchWindow(const GroupSummary& g, double max_partner_cost) const;

  /// Multiplier under 1 applied to every merged-size lower bound, so the
  /// bounds stay admissible under floating-point rounding (the bound and
  /// the estimator compute "the same" quantity via different operation
  /// orders; 1e-7 relative slack dwarfs any accumulated ulps).
  static constexpr double kSlack = 1.0 - 1e-7;

 private:
  const MergeContext* ctx_;
  const CostModel* model_;
  ProcedureTraits traits_;
  bool enabled_ = false;
  bool distance_aware_ = false;
  double density_ = 0.0;
};

/// Admissible lower bound on the total cost of ANY partition of `live`
/// (no U term, so it also lower-bounds the K_M/K_T portion alone):
///   LB = K_M + K_T * kSlack * sum_{q in S} size(q)
/// for a greedily chosen pairwise-disjoint subset S of the live query
/// rectangles. Justification: every partition has >= 1 group; each
/// group's merged regions cover its member rectangles, so by additivity
/// of the (measure-like) estimator over disjoint sets the group sizes
/// sum to at least the chosen disjoint sizes — the same coverage
/// argument as the disjoint-boxes case of UpperBound. Ids are visited
/// in ascending order with a SpatialGrid over the chosen rects, so the
/// bound is deterministic and near-linear.
///
/// Returns 0 when `live` is empty or the model rejects benefit bounds
/// (negative coefficients). The live service compares its maintained
/// plan cost against this bound to trigger a from-scratch replan
/// (DESIGN.md §11); it is advisory — never used for correctness.
[[nodiscard]] double FreshPlanCostLowerBound(const MergeContext& ctx,
                                             const CostModel& model,
                                             const std::vector<QueryId>& live);

}  // namespace plan
}  // namespace qsp

#endif  // QSP_MERGE_PLAN_BOUNDS_H_
