#include "merge/plan_bounds.h"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "geom/spatial_grid.h"

namespace qsp {
namespace plan {

BenefitBounder::BenefitBounder(const MergeContext& ctx, const CostModel& model)
    : BenefitBounder(ctx, model, [&ctx] {
        Rect universe = Rect::Empty();
        for (QueryId id = 0; id < ctx.num_queries(); ++id) {
          universe = universe.BoundingUnion(ctx.queries().rect(id));
        }
        return universe;
      }()) {}

BenefitBounder::BenefitBounder(const MergeContext& ctx, const CostModel& model,
                               const Rect& universe)
    : ctx_(&ctx), model_(&model), traits_(ctx.procedure().traits()) {
  enabled_ = model.SupportsBenefitBounds();
  if (!enabled_) return;
  if (!traits_.covers_bounding_union || model.k_t <= 0.0) return;
  const SizeEstimator::DensityFloor floor = ctx.estimator().Floor();
  if (floor.density <= 0.0 || floor.support.IsEmpty()) return;
  // The floor only holds inside its support; the distance term measures
  // bounding unions of query boxes, so the support must contain every
  // query (otherwise e.g. a histogram that clips to its domain would
  // under-count a rect hanging outside it, making the "bound" wrong).
  if (!floor.support.Contains(universe)) return;
  distance_aware_ = true;
  density_ = floor.density;
}

GroupSummary BenefitBounder::Summarize(const QueryGroup& group) const {
  GroupSummary s;
  const GroupStats& stats = ctx_->Stats(group);
  s.cost = model_->GroupCost(stats);
  s.size = stats.size;
  s.bbox = Rect::Empty();
  s.members = static_cast<double>(group.size());
  for (QueryId id : group) {
    const double size = ctx_->Size(id);
    s.size_lb = std::max(s.size_lb, size);
    s.member_size_sum += size;
    s.bbox = s.bbox.BoundingUnion(ctx_->queries().rect(id));
  }
  return s;
}

double BenefitBounder::UpperBound(const GroupSummary& a,
                                  const GroupSummary& b) const {
  // Merged-size lower bounds, strongest applicable wins. Every candidate
  // is justified by region coverage under a measure-like estimator:
  //  * max member singleton: the merged regions cover each member rect;
  //  * monotone: the merged region of a superset covers each operand's
  //    merged region, so its size dominates both;
  //  * disjoint boxes: the parts covering a's members and b's members
  //    cannot overlap, so sizes add (exactly the operand sizes when the
  //    procedure is superadditive; else the per-operand max members);
  //  * density floor: the merged region covers the bounding union of the
  //    two boxes, which holds at least density * area.
  double size_lb = std::max(a.size_lb, b.size_lb);
  if (traits_.merged_size_monotone) {
    size_lb = std::max(size_lb, std::max(a.size, b.size));
  }
  const bool boxes = !a.bbox.IsEmpty() && !b.bbox.IsEmpty();
  if (boxes && !a.bbox.Intersects(b.bbox)) {
    size_lb = std::max(size_lb, traits_.superadditive_when_disjoint
                                    ? a.size + b.size
                                    : a.size_lb + b.size_lb);
  }
  if (distance_aware_ && boxes) {
    size_lb =
        std::max(size_lb, density_ * a.bbox.BoundingUnion(b.bbox).Area());
  }
  const double slacked_lb = kSlack * size_lb;
  double ub = model_->BenefitUpperBound(a.cost, b.cost, slacked_lb);
  // With a single-message procedure the merged region covers every
  // member rectangle, so each member's relevant share is its full
  // singleton size and the irrelevant data is exactly
  //   members * size(M) - member_size_sum >= members * size_lb - sum.
  // That recovers the K_U term the base bound drops — for a pair of
  // singletons under bounding rect + a density floor it makes the bound
  // essentially exact, which is what keeps lazy refinements rare. The
  // sum is inflated by the slack so floating-point summation-order
  // differences against the estimator's own accumulation stay on the
  // admissible side.
  if (traits_.single_message && model_->k_u > 0.0) {
    const double irrelevant_lb = (a.members + b.members) * slacked_lb -
                                 (a.member_size_sum + b.member_size_sum) /
                                     kSlack;
    if (irrelevant_lb > 0.0) ub -= model_->k_u * irrelevant_lb;
  }
  return ub;
}

Rect BenefitBounder::SearchWindow(const GroupSummary& g,
                                  double max_partner_cost) const {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const Rect everything(-kInf, -kInf, kInf, kInf);
  if (!distance_aware_ || g.bbox.IsEmpty()) return everything;
  // A partner p can only have UpperBound > 0 if
  //   cost_g + cost_p - K_M - K_T * kSlack * density * Area(BU) > 0,
  // so Area(BU(bbox_g, bbox_p)) must stay under the area cap. A gap of
  // gx in x forces Area(BU) >= (w + gx) * h, hence gx <= cap/h - w; same
  // for y. Degenerate extents give no leverage on that axis (the BU's
  // extent there comes from the unknown partner), so the reach is
  // unbounded on it.
  const double budget = g.cost + max_partner_cost - model_->k_m;
  if (budget <= 0.0) return Rect::Empty();
  const double cap = budget / (model_->k_t * kSlack * density_);
  const double w = g.bbox.Width();
  const double h = g.bbox.Height();
  const double rx = h > 0.0 ? std::max(0.0, cap / h - w) : kInf;
  const double ry = w > 0.0 ? std::max(0.0, cap / w - h) : kInf;
  return Rect(g.bbox.x_lo() - rx, g.bbox.y_lo() - ry, g.bbox.x_hi() + rx,
              g.bbox.y_hi() + ry);
}

double FreshPlanCostLowerBound(const MergeContext& ctx, const CostModel& model,
                               const std::vector<QueryId>& live) {
  if (live.empty() || !model.SupportsBenefitBounds()) return 0.0;
  std::vector<QueryId> ordered = live;
  std::sort(ordered.begin(), ordered.end());
  std::vector<Rect> rects;
  rects.reserve(ordered.size());
  for (QueryId id : ordered) rects.push_back(ctx.queries().rect(id));
  SpatialGrid grid = SpatialGrid::ForRects(rects);
  std::vector<Rect> chosen;
  std::vector<uint32_t> candidates;
  double chosen_size_sum = 0.0;
  for (size_t i = 0; i < ordered.size(); ++i) {
    const Rect& rect = rects[i];
    // Empty rects carry no area to be disjoint about; skipping them only
    // weakens the bound (size 0 anyway under a measure-like estimator).
    if (rect.IsEmpty()) continue;
    candidates.clear();
    grid.Query(rect, &candidates);
    bool disjoint = true;
    for (uint32_t c : candidates) {
      if (chosen[c].Intersects(rect)) {
        disjoint = false;
        break;
      }
    }
    if (!disjoint) continue;
    grid.Insert(static_cast<uint32_t>(chosen.size()), rect);
    chosen.push_back(rect);
    chosen_size_sum += ctx.Size(ordered[i]);
  }
  return model.k_m +
         model.k_t * BenefitBounder::kSlack * chosen_size_sum;
}

}  // namespace plan
}  // namespace qsp
