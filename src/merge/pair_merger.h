#ifndef QSP_MERGE_PAIR_MERGER_H_
#define QSP_MERGE_PAIR_MERGER_H_

#include <utility>
#include <vector>

#include "merge/merger.h"

namespace qsp {

/// The greedy Pair Merging Algorithm of Section 6.2.1. Starts from
/// singleton groups, repeatedly merges the pair of groups with the largest
/// positive benefit Cost_old - Cost_new, and stops when no merge helps.
/// Benefits are kept in a Profit Table so only the pairs involving the
/// freshly merged group are re-evaluated each round, exactly as the paper
/// prescribes; `use_heap` selects between the paper's table-with-rescan
/// and a lazy max-heap over the same table (identical results, different
/// constants — compared in bench_profit_table).
///
/// O(|Q|^2) group evaluations; guaranteed optimal for |Q| <= 2.
class PairMerger : public Merger {
 public:
  explicit PairMerger(bool use_heap = true) : use_heap_(use_heap) {}

  /// Runs the same greedy loop starting from an arbitrary partition
  /// instead of singletons (used by the directed search and the channel
  /// allocator).
  MergeOutcome MergeFrom(const MergeContext& ctx, const CostModel& model,
                         Partition start) const;

  /// The Profit Table construction kernel: the benefit of merging
  /// groups[i] with groups[j] for every requested (i, j), given each
  /// group's precomputed cost. Evaluations fan out across the qsp::exec
  /// default executor; result k corresponds to pairs[k] for any thread
  /// count. Exposed for bench_parallel_speedup, which measures exactly
  /// this kernel.
  static std::vector<double> EvaluatePairBenefits(
      const MergeContext& ctx, const CostModel& model,
      const std::vector<QueryGroup>& groups,
      const std::vector<double>& group_cost,
      const std::vector<std::pair<size_t, size_t>>& pairs);

  std::string name() const override { return "pair-merging"; }

 protected:
  Result<MergeOutcome> DoMerge(const MergeContext& ctx,
                               const CostModel& model) const override;

 private:
  bool use_heap_;
};

}  // namespace qsp

#endif  // QSP_MERGE_PAIR_MERGER_H_
