#ifndef QSP_MERGE_PAIR_MERGER_H_
#define QSP_MERGE_PAIR_MERGER_H_

#include <utility>
#include <vector>

#include "merge/merger.h"

namespace qsp {

/// The greedy Pair Merging Algorithm of Section 6.2.1. Starts from
/// singleton groups, repeatedly merges the pair of groups with the largest
/// positive benefit Cost_old - Cost_new, and stops when no merge helps.
/// Benefits are kept in a Profit Table so only the pairs involving the
/// freshly merged group are re-evaluated each round, exactly as the paper
/// prescribes; `use_heap` selects between the paper's table-with-rescan
/// and a lazy max-heap over the same table (identical results, different
/// constants — compared in bench_profit_table).
///
/// O(|Q|^2) group evaluations; guaranteed optimal for |Q| <= 2.
class PairMerger : public Merger {
 public:
  /// `pruning` enables the planning-acceleration layer (DESIGN.md §8):
  /// candidate pairs come from a spatial grid over group bounding boxes,
  /// the profit heap holds cheap admissible upper bounds, and the exact
  /// benefit is evaluated lazily only when a bound surfaces at the top of
  /// the heap. The chosen merge sequence — and therefore the partition
  /// and cost — is bit-identical to the exhaustive path; only the number
  /// of exact GroupCost evaluations changes. Automatically falls back to
  /// the exhaustive path when the cost model or estimator cannot support
  /// admissible bounds (plan::BenefitBounder::enabled()).
  explicit PairMerger(bool use_heap = true, bool pruning = true)
      : use_heap_(use_heap), pruning_(pruning) {}

  /// Runs the same greedy loop starting from an arbitrary partition
  /// instead of singletons (used by the directed search and the channel
  /// allocator).
  MergeOutcome MergeFrom(const MergeContext& ctx, const CostModel& model,
                         Partition start) const;

  /// The Profit Table construction kernel: the benefit of merging
  /// groups[i] with groups[j] for every requested (i, j), given each
  /// group's precomputed cost. Evaluations fan out across the qsp::exec
  /// default executor; result k corresponds to pairs[k] for any thread
  /// count. Exposed for bench_parallel_speedup, which measures exactly
  /// this kernel.
  static std::vector<double> EvaluatePairBenefits(
      const MergeContext& ctx, const CostModel& model,
      const std::vector<QueryGroup>& groups,
      const std::vector<double>& group_cost,
      const std::vector<std::pair<size_t, size_t>>& pairs);

  std::string name() const override { return "pair-merging"; }

 protected:
  Result<MergeOutcome> DoMerge(const MergeContext& ctx,
                               const CostModel& model) const override;

 private:
  MergeOutcome MergeFromPruned(const MergeContext& ctx, const CostModel& model,
                               Partition start) const;

  bool use_heap_;
  bool pruning_;
};

}  // namespace qsp

#endif  // QSP_MERGE_PAIR_MERGER_H_
