#ifndef QSP_MERGE_PAIR_MERGER_H_
#define QSP_MERGE_PAIR_MERGER_H_

#include "merge/merger.h"

namespace qsp {

/// The greedy Pair Merging Algorithm of Section 6.2.1. Starts from
/// singleton groups, repeatedly merges the pair of groups with the largest
/// positive benefit Cost_old - Cost_new, and stops when no merge helps.
/// Benefits are kept in a Profit Table so only the pairs involving the
/// freshly merged group are re-evaluated each round, exactly as the paper
/// prescribes; `use_heap` selects between the paper's table-with-rescan
/// and a lazy max-heap over the same table (identical results, different
/// constants — compared in bench_profit_table).
///
/// O(|Q|^2) group evaluations; guaranteed optimal for |Q| <= 2.
class PairMerger : public Merger {
 public:
  explicit PairMerger(bool use_heap = true) : use_heap_(use_heap) {}

  /// Runs the same greedy loop starting from an arbitrary partition
  /// instead of singletons (used by the directed search and the channel
  /// allocator).
  MergeOutcome MergeFrom(const MergeContext& ctx, const CostModel& model,
                         Partition start) const;

  std::string name() const override { return "pair-merging"; }

 protected:
  Result<MergeOutcome> DoMerge(const MergeContext& ctx,
                               const CostModel& model) const override;

 private:
  bool use_heap_;
};

}  // namespace qsp

#endif  // QSP_MERGE_PAIR_MERGER_H_
