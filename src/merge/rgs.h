#ifndef QSP_MERGE_RGS_H_
#define QSP_MERGE_RGS_H_

#include <cstdint>
#include <vector>

namespace qsp {

/// Iterates all restricted growth strings (RGS) of length n — canonical
/// encodings of set partitions: a[0] = 0 and a[i] <= max(a[0..i-1]) + 1.
/// Each RGS maps element i to block a[i]. With `max_blocks` set, strings
/// are restricted to at most that many blocks, which enumerates partitions
/// into at most k unlabeled parts (the channel-allocation search space of
/// Section 8.1). Enumeration order is lexicographic starting from all
/// zeros (the one-block partition).
class RgsIterator {
 public:
  /// `n` must be >= 1. `max_blocks` <= 0 means unbounded.
  explicit RgsIterator(int n, int max_blocks = 0);

  /// The current string; valid until Next() returns false.
  const std::vector<int>& Current() const { return a_; }

  /// Advances to the next string; false when exhausted.
  bool Next();

  /// Number of blocks in the current string (max element + 1).
  int NumBlocks() const;

 private:
  int n_;
  int max_blocks_;
  std::vector<int> a_;
  std::vector<int> prefix_max_;  // prefix_max_[i] = max(a_[0..i]).
};

/// Converts an RGS into explicit blocks (groups of element indices).
std::vector<std::vector<int>> RgsToBlocks(const std::vector<int>& rgs);

}  // namespace qsp

#endif  // QSP_MERGE_RGS_H_
