#include "merge/incremental_merger.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "obs/metrics.h"
#include "util/float_compare.h"
#include "util/status.h"

namespace qsp {

IncrementalMerger::IncrementalMerger(const MergeContext* ctx,
                                     const CostModel& model, bool pruning)
    : ctx_(ctx),
      model_(model),
      use_bounds_(pruning && model.SupportsBenefitBounds()) {
  QSP_CHECK(ctx != nullptr);
  if (use_bounds_) bounder_.emplace(*ctx_, model_, universe_);
}

double IncrementalMerger::GroupCost(const QueryGroup& group) {
  ++evaluations_;
  obs::Count("merge.incremental.evaluations");
  return model_.GroupCost(*ctx_, group);
}

plan::GroupSummary IncrementalMerger::Summarize(const QueryGroup& group) {
  ++evaluations_;
  obs::Count("merge.incremental.evaluations");
  return bounder_->Summarize(group);
}

double IncrementalMerger::SingletonCost(QueryId id) const {
  // A singleton's stats are {messages 1, size(q), irrelevant 0} by
  // construction (MergeContext::Compute short-circuits), so this is the
  // exact memoized value, arithmetic identical to GroupCost(stats).
  GroupStats stats;
  stats.messages = 1.0;
  stats.size = ctx_->Size(id);
  stats.irrelevant = 0.0;
  return model_.GroupCost(stats);
}

plan::GroupSummary IncrementalMerger::SingletonSummary(QueryId id) const {
  plan::GroupSummary s;
  const double size = ctx_->Size(id);
  s.cost = SingletonCost(id);
  s.size = size;
  s.size_lb = size;
  s.members = 1.0;
  s.member_size_sum = size;
  s.bbox = Rect::Empty().BoundingUnion(ctx_->queries().rect(id));
  return s;
}

void IncrementalMerger::ExtendUniverse(QueryId id) {
  const Rect grown = universe_.BoundingUnion(ctx_->queries().rect(id));
  if (universe_.Contains(grown)) return;
  universe_ = grown;
  bounder_.emplace(*ctx_, model_, universe_);
  // Distance-awareness is monotone non-increasing as the universe grows;
  // once a query escapes the density-floor support the grid is dead
  // weight (candidates fall back to the full scan order).
  if (!bounder_->distance_aware()) grid_.reset();
}

bool IncrementalMerger::DistanceAware() const {
  return use_bounds_ && bounder_.has_value() && bounder_->distance_aware();
}

void IncrementalMerger::RebuildGrid() {
  const size_t m = partition_.size();
  // Compact keys to 0..m-1 in slot order: preserves the key-order ==
  // slot-order invariant and garbage-collects dead keys.
  key_of_slot_.resize(m);
  slot_of_key_.assign(m, kNoSlot);
  for (size_t i = 0; i < m; ++i) {
    key_of_slot_[i] = static_cast<uint32_t>(i);
    slot_of_key_[i] = i;
  }
  next_key_ = static_cast<uint32_t>(m);
  for (size_t i = 0; i < m; ++i) {
    for (QueryId q : partition_[i]) {
      key_of_query_[q] = static_cast<uint32_t>(i);
    }
  }
  std::vector<Rect> bboxes(m);
  for (size_t i = 0; i < m; ++i) bboxes[i] = summaries_[i].bbox;
  grid_ = SpatialGrid::ForRects(bboxes);
  for (size_t i = 0; i < m; ++i) {
    grid_->Insert(static_cast<uint32_t>(i), bboxes[i]);
  }
  grid_built_groups_ = m;
  obs::Count("merge.incremental.grid_rebuilds");
}

void IncrementalMerger::AppendGroup(QueryGroup group,
                                    plan::GroupSummary summary) {
  const size_t slot = partition_.size();
  const uint32_t key = next_key_++;
  QSP_CHECK(slot_of_key_.size() == key);
  slot_of_key_.push_back(slot);
  key_of_slot_.push_back(key);
  for (QueryId q : group) key_of_query_[q] = key;
  partition_.push_back(std::move(group));
  if (use_bounds_) {
    max_cost_ = std::max(max_cost_, summary.cost);
    if (grid_) grid_->Insert(key, summary.bbox);
    summaries_.push_back(std::move(summary));
  }
}

void IncrementalMerger::UpdateGroup(size_t slot, plan::GroupSummary summary) {
  if (grid_) {
    const uint32_t key = key_of_slot_[slot];
    grid_->Remove(key, summaries_[slot].bbox);
    grid_->Insert(key, summary.bbox);
  }
  max_cost_ = std::max(max_cost_, summary.cost);
  summaries_[slot] = std::move(summary);
}

void IncrementalMerger::EraseGroup(size_t slot) {
  const uint32_t key = key_of_slot_[slot];
  if (use_bounds_) {
    if (grid_) grid_->Remove(key, summaries_[slot].bbox);
    summaries_.erase(summaries_.begin() + static_cast<ptrdiff_t>(slot));
  }
  slot_of_key_[key] = kNoSlot;
  partition_.erase(partition_.begin() + static_cast<ptrdiff_t>(slot));
  key_of_slot_.erase(key_of_slot_.begin() + static_cast<ptrdiff_t>(slot));
  for (size_t j = slot; j < key_of_slot_.size(); ++j) {
    slot_of_key_[key_of_slot_[j]] = j;
  }
}

void IncrementalMerger::CandidateSlots(const plan::GroupSummary& summary,
                                       std::vector<size_t>* out) {
  out->clear();
  if (DistanceAware()) {
    if (!grid_ || partition_.size() > 2 * grid_built_groups_ + 8) {
      RebuildGrid();
    }
    std::vector<uint32_t> keys;
    grid_->Query(bounder_->SearchWindow(summary, max_cost_), &keys);
    // Keys ascend in creation order which equals slot order, so the
    // result visits groups in the exhaustive scan's ascending order.
    for (uint32_t key : keys) {
      const size_t slot = slot_of_key_[key];
      if (slot != kNoSlot) out->push_back(slot);
    }
  } else {
    for (size_t i = 0; i < partition_.size(); ++i) out->push_back(i);
  }
}

double IncrementalMerger::AddQuery(QueryId id) {
  obs::Count("merge.incremental.adds");
  if (key_of_query_.size() <= id) key_of_query_.resize(id + 1, kNoKey);
  double best_delta = 0.0;
  size_t best_group = partition_.size();  // Sentinel: singleton.
  plan::GroupSummary single;
  plan::GroupSummary best_summary;

  if (use_bounds_) {
    ExtendUniverse(id);
    single = SingletonSummary(id);
    best_delta = single.cost;
    const uint64_t pruned_before = bounds_pruned_;
    std::vector<size_t> cands;
    CandidateSlots(single, &cands);
    for (size_t slot : cands) {
      // Skip when the admissible benefit bound proves delta >= best_delta
      // (delta = singleton_cost - benefit >= singleton_cost - ub): the
      // exhaustive scan's strict `<` could never pick this group, so the
      // pruned scan makes the identical placement, same tie-breaks.
      const double ub = bounder_->UpperBound(summaries_[slot], single);
      if (ub <= single.cost - best_delta) {
        ++bounds_pruned_;
        continue;
      }
      QueryGroup grown = partition_[slot];
      grown.push_back(id);
      CanonicalizeGroup(&grown);
      plan::GroupSummary gs = Summarize(grown);
      const double delta = gs.cost - summaries_[slot].cost;
      if (delta < best_delta) {
        best_delta = delta;
        best_group = slot;
        best_summary = std::move(gs);
      }
    }
    obs::Count("merge.incremental.bounds_pruned",
               bounds_pruned_ - pruned_before);
  } else {
    // Candidate 0: a new singleton group.
    best_delta = GroupCost({id});
    for (size_t i = 0; i < partition_.size(); ++i) {
      const double old_cost = GroupCost(partition_[i]);
      QueryGroup grown = partition_[i];
      grown.push_back(id);
      CanonicalizeGroup(&grown);
      const double delta = GroupCost(grown) - old_cost;
      if (delta < best_delta) {
        best_delta = delta;
        best_group = i;
      }
    }
  }

  if (best_group == partition_.size()) {
    AppendGroup({id}, single);
  } else {
    partition_[best_group].push_back(id);
    CanonicalizeGroup(&partition_[best_group]);
    key_of_query_[id] = key_of_slot_[best_group];
    if (use_bounds_) UpdateGroup(best_group, std::move(best_summary));
  }
  cost_ += best_delta;
  return cost_;
}

double IncrementalMerger::RemoveQuery(QueryId id) {
  obs::Count("merge.incremental.removes");
  const uint32_t key =
      id < key_of_query_.size() ? key_of_query_[id] : kNoKey;
  if (key == kNoKey) return cost_;
  const size_t slot = slot_of_key_[key];
  QSP_CHECK(slot != kNoSlot);
  QueryGroup& group = partition_[slot];
  auto it = std::find(group.begin(), group.end(), id);
  QSP_CHECK(it != group.end());
  const double old_cost =
      use_bounds_ ? summaries_[slot].cost : GroupCost(group);
  group.erase(it);
  key_of_query_[id] = kNoKey;
  if (group.empty()) {
    cost_ -= old_cost;
    EraseGroup(slot);
  } else if (use_bounds_) {
    plan::GroupSummary gs = Summarize(group);
    cost_ += gs.cost - old_cost;
    UpdateGroup(slot, std::move(gs));
  } else {
    cost_ += GroupCost(group) - old_cost;
  }
  // Ids are never reused (QuerySet is append-only), so every memoized
  // group mentioning the dead id is garbage; evicting bounds the memo's
  // footprint under sustained churn.
  ctx_->EvictGroupsContaining(id);
  return cost_;
}

double IncrementalMerger::Repair(int max_moves) {
  obs::Count("merge.incremental.repairs");
  const uint64_t pruned_before = bounds_pruned_;
  int moves = 0;
  while (max_moves == 0 || moves < max_moves) {
    double best_delta = 0.0;
    enum class Kind { kNone, kMerge, kExtract };
    Kind best_kind = Kind::kNone;
    size_t best_i = 0, best_j = 0;
    QueryId best_q = 0;
    plan::GroupSummary best_merged;
    plan::GroupSummary best_rest;

    if (use_bounds_) {
      std::vector<size_t> cands;
      for (size_t i = 0; i < partition_.size(); ++i) {
        CandidateSlots(summaries_[i], &cands);
        for (size_t j : cands) {
          if (j <= i) continue;
          // best_delta >= 0 throughout, so pairs outside the search
          // window (bound <= 0) and pairs whose bound cannot *strictly*
          // beat the current best are exactly the pairs the exhaustive
          // lexicographic scan would never select.
          const double ub = bounder_->UpperBound(summaries_[i], summaries_[j]);
          if (ub <= best_delta) {
            ++bounds_pruned_;
            continue;
          }
          plan::GroupSummary ms =
              Summarize(UnionGroups(partition_[i], partition_[j]));
          const double delta =
              summaries_[i].cost + summaries_[j].cost - ms.cost;
          // IsImprovement filters rounding-level "gains" that would make
          // a merge and its inverse extract move both look beneficial.
          if (delta > best_delta && IsImprovement(delta, cost_)) {
            best_delta = delta;
            best_kind = Kind::kMerge;
            best_i = i;
            best_j = j;
            best_merged = std::move(ms);
          }
        }
      }
      for (size_t i = 0; i < partition_.size(); ++i) {
        const QueryGroup& group = partition_[i];
        if (group.size() < 2) continue;
        const double group_cost = summaries_[i].cost;
        // Max and second-max member sizes: removing q leaves a group
        // whose merged size is at least the largest surviving member.
        double max1 = -std::numeric_limits<double>::infinity();
        double max2 = max1;
        size_t max_count = 0;
        for (QueryId q : group) {
          const double s = ctx_->Size(q);
          if (s > max1) {
            max2 = max1;
            max1 = s;
            max_count = 1;
          } else if (s == max1) {
            ++max_count;
          } else if (s > max2) {
            max2 = s;
          }
        }
        for (QueryId q : group) {
          const double sq = ctx_->Size(q);
          const double rest_lb =
              std::max(0.0, (sq == max1 && max_count == 1) ? max2 : max1);
          const double ub =
              group_cost -
              model_.MergedCostLowerBound(plan::BenefitBounder::kSlack *
                                          rest_lb) -
              SingletonCost(q);
          if (ub <= best_delta) {
            ++bounds_pruned_;
            continue;
          }
          QueryGroup rest;
          for (QueryId other : group) {
            if (other != q) rest.push_back(other);
          }
          plan::GroupSummary rs = Summarize(rest);
          const double delta = group_cost - rs.cost - SingletonCost(q);
          if (delta > best_delta && IsImprovement(delta, cost_)) {
            best_delta = delta;
            best_kind = Kind::kExtract;
            best_i = i;
            best_q = q;
            best_rest = std::move(rs);
          }
        }
      }
    } else {
      for (size_t i = 0; i < partition_.size(); ++i) {
        for (size_t j = i + 1; j < partition_.size(); ++j) {
          const double delta =
              GroupCost(partition_[i]) + GroupCost(partition_[j]) -
              GroupCost(UnionGroups(partition_[i], partition_[j]));
          // IsImprovement filters rounding-level "gains" that would make a
          // merge and its inverse extract move both look beneficial.
          if (delta > best_delta && IsImprovement(delta, cost_)) {
            best_delta = delta;
            best_kind = Kind::kMerge;
            best_i = i;
            best_j = j;
          }
        }
      }
      for (size_t i = 0; i < partition_.size(); ++i) {
        const QueryGroup& group = partition_[i];
        if (group.size() < 2) continue;
        const double group_cost = GroupCost(group);
        for (QueryId q : group) {
          QueryGroup rest;
          for (QueryId other : group) {
            if (other != q) rest.push_back(other);
          }
          const double delta =
              group_cost - GroupCost(rest) - GroupCost({q});
          if (delta > best_delta && IsImprovement(delta, cost_)) {
            best_delta = delta;
            best_kind = Kind::kExtract;
            best_i = i;
            best_q = q;
          }
        }
      }
    }

    if (best_kind == Kind::kNone) break;
    if (best_kind == Kind::kMerge) {
      QueryGroup merged = UnionGroups(partition_[best_i], partition_[best_j]);
      for (QueryId q : partition_[best_j]) {
        key_of_query_[q] = key_of_slot_[best_i];
      }
      if (use_bounds_) UpdateGroup(best_i, std::move(best_merged));
      EraseGroup(best_j);  // best_i < best_j, so best_i's slot is stable.
      partition_[best_i] = std::move(merged);
    } else {
      QueryGroup& group = partition_[best_i];
      QueryGroup rest;
      for (QueryId other : group) {
        if (other != best_q) rest.push_back(other);
      }
      group = std::move(rest);
      if (use_bounds_) {
        UpdateGroup(best_i, std::move(best_rest));
        AppendGroup({best_q}, SingletonSummary(best_q));
      } else {
        AppendGroup({best_q}, plan::GroupSummary{});
      }
    }
    cost_ -= best_delta;
    ++moves;
  }
  obs::Count("merge.incremental.repair_moves",
             static_cast<uint64_t>(moves));
  obs::Count("merge.incremental.bounds_pruned",
             bounds_pruned_ - pruned_before);
  return cost_;
}

void IncrementalMerger::Reset(Partition partition) {
  partition.erase(
      std::remove_if(partition.begin(), partition.end(),
                     [](const QueryGroup& g) { return g.empty(); }),
      partition.end());
  CanonicalizePartition(&partition);
  partition_ = std::move(partition);
  const size_t m = partition_.size();
  key_of_slot_.resize(m);
  slot_of_key_.assign(m, kNoSlot);
  for (size_t i = 0; i < m; ++i) {
    key_of_slot_[i] = static_cast<uint32_t>(i);
    slot_of_key_[i] = i;
  }
  next_key_ = static_cast<uint32_t>(m);
  key_of_query_.assign(ctx_->num_queries(), kNoKey);
  for (size_t i = 0; i < m; ++i) {
    for (QueryId q : partition_[i]) {
      key_of_query_[q] = static_cast<uint32_t>(i);
    }
  }
  cost_ = 0.0;
  if (use_bounds_) {
    universe_ = Rect::Empty();
    for (const QueryGroup& g : partition_) {
      for (QueryId q : g) {
        universe_ = universe_.BoundingUnion(ctx_->queries().rect(q));
      }
    }
    bounder_.emplace(*ctx_, model_, universe_);
    summaries_.clear();
    summaries_.reserve(m);
    max_cost_ = 0.0;
    grid_.reset();
    grid_built_groups_ = 0;  // Grid is rebuilt lazily on first probe.
    for (size_t i = 0; i < m; ++i) {
      summaries_.push_back(Summarize(partition_[i]));
      max_cost_ = std::max(max_cost_, summaries_.back().cost);
      cost_ += summaries_.back().cost;
    }
  } else {
    for (const QueryGroup& g : partition_) cost_ += GroupCost(g);
  }
}

}  // namespace qsp
