#include "merge/incremental_merger.h"

#include <algorithm>
#include <limits>

#include "obs/metrics.h"
#include "util/float_compare.h"
#include "util/status.h"

namespace qsp {

IncrementalMerger::IncrementalMerger(const MergeContext* ctx,
                                     const CostModel& model)
    : ctx_(ctx), model_(model) {
  QSP_CHECK(ctx != nullptr);
}

double IncrementalMerger::GroupCost(const QueryGroup& group) {
  ++evaluations_;
  obs::Count("merge.incremental.evaluations");
  return model_.GroupCost(*ctx_, group);
}

double IncrementalMerger::AddQuery(QueryId id) {
  obs::Count("merge.incremental.adds");
  // Candidate 0: a new singleton group.
  const double singleton_cost = GroupCost({id});
  double best_delta = singleton_cost;
  size_t best_group = partition_.size();  // Sentinel: singleton.

  for (size_t i = 0; i < partition_.size(); ++i) {
    const double old_cost = GroupCost(partition_[i]);
    QueryGroup grown = partition_[i];
    grown.push_back(id);
    CanonicalizeGroup(&grown);
    const double delta = GroupCost(grown) - old_cost;
    if (delta < best_delta) {
      best_delta = delta;
      best_group = i;
    }
  }

  if (best_group == partition_.size()) {
    partition_.push_back({id});
  } else {
    partition_[best_group].push_back(id);
    CanonicalizeGroup(&partition_[best_group]);
  }
  cost_ += best_delta;
  return cost_;
}

double IncrementalMerger::RemoveQuery(QueryId id) {
  obs::Count("merge.incremental.removes");
  for (size_t i = 0; i < partition_.size(); ++i) {
    auto it = std::find(partition_[i].begin(), partition_[i].end(), id);
    if (it == partition_[i].end()) continue;
    const double old_cost = GroupCost(partition_[i]);
    partition_[i].erase(it);
    if (partition_[i].empty()) {
      cost_ -= old_cost;
      partition_.erase(partition_.begin() + static_cast<ptrdiff_t>(i));
    } else {
      cost_ += GroupCost(partition_[i]) - old_cost;
    }
    return cost_;
  }
  return cost_;
}

double IncrementalMerger::Repair(int max_moves) {
  obs::Count("merge.incremental.repairs");
  int moves = 0;
  while (max_moves == 0 || moves < max_moves) {
    double best_delta = 0.0;
    enum class Kind { kNone, kMerge, kExtract };
    Kind best_kind = Kind::kNone;
    size_t best_i = 0, best_j = 0;
    QueryId best_q = 0;

    for (size_t i = 0; i < partition_.size(); ++i) {
      for (size_t j = i + 1; j < partition_.size(); ++j) {
        const double delta =
            GroupCost(partition_[i]) + GroupCost(partition_[j]) -
            GroupCost(UnionGroups(partition_[i], partition_[j]));
        // IsImprovement filters rounding-level "gains" that would make a
        // merge and its inverse extract move both look beneficial.
        if (delta > best_delta && IsImprovement(delta, cost_)) {
          best_delta = delta;
          best_kind = Kind::kMerge;
          best_i = i;
          best_j = j;
        }
      }
    }
    for (size_t i = 0; i < partition_.size(); ++i) {
      const QueryGroup& group = partition_[i];
      if (group.size() < 2) continue;
      const double group_cost = GroupCost(group);
      for (QueryId q : group) {
        QueryGroup rest;
        for (QueryId other : group) {
          if (other != q) rest.push_back(other);
        }
        const double delta =
            group_cost - GroupCost(rest) - GroupCost({q});
        if (delta > best_delta && IsImprovement(delta, cost_)) {
          best_delta = delta;
          best_kind = Kind::kExtract;
          best_i = i;
          best_q = q;
        }
      }
    }

    if (best_kind == Kind::kNone) break;
    if (best_kind == Kind::kMerge) {
      QueryGroup merged = UnionGroups(partition_[best_i], partition_[best_j]);
      partition_.erase(partition_.begin() + static_cast<ptrdiff_t>(best_j));
      partition_[best_i] = std::move(merged);
    } else {
      QueryGroup& group = partition_[best_i];
      QueryGroup rest;
      for (QueryId other : group) {
        if (other != best_q) rest.push_back(other);
      }
      group = std::move(rest);
      partition_.push_back({best_q});
    }
    cost_ -= best_delta;
    ++moves;
  }
  obs::Count("merge.incremental.repair_moves",
             static_cast<uint64_t>(moves));
  return cost_;
}

}  // namespace qsp
