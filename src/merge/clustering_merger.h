#ifndef QSP_MERGE_CLUSTERING_MERGER_H_
#define QSP_MERGE_CLUSTERING_MERGER_H_

#include <memory>

#include "merge/merger.h"

namespace qsp {

/// The Clustering Algorithm of Section 6.3: divide and conquer. Two
/// queries whose optimistic co-merge benefit bound (CostModel::
/// CoMergeBenefitBound) is non-positive are "far apart" and never need to
/// share a merged group; connected components of the remaining
/// "mergeable" graph are solved independently — exactly (PartitionMerger)
/// when a component is small, greedily (PairMerger) otherwise.
///
/// `tight_bound` uses size(q1 ∪ q2) as the lower bound on the merged size
/// (the paper's refinement via query intersection); otherwise the pair's
/// actual merged size under the procedure is used.
///
/// `pruning` accelerates the O(n^2) mergeable-graph construction
/// (DESIGN.md §8): intersecting pairs come from a spatial-grid join, and
/// disjoint pairs are enumerated by ascending size sum only while the
/// (monotone decreasing) co-merge bound at the disjoint size floor stays
/// positive — pairs skipped either way are provably non-mergeable, and
/// the surviving pairs are evaluated with the identical expression, so
/// the components (and the final partition) are unchanged. Falls back to
/// the exhaustive scan when the model/procedure cannot justify the
/// shortcuts.
class ClusteringMerger : public Merger {
 public:
  explicit ClusteringMerger(int exact_component_limit = 10,
                            bool tight_bound = true, bool pruning = true)
      : exact_component_limit_(exact_component_limit),
        tight_bound_(tight_bound),
        pruning_(pruning) {}

  std::string name() const override { return "clustering"; }

 protected:
  Result<MergeOutcome> DoMerge(const MergeContext& ctx,
                               const CostModel& model) const override;

 private:
  int exact_component_limit_;
  bool tight_bound_;
  bool pruning_;
};

}  // namespace qsp

#endif  // QSP_MERGE_CLUSTERING_MERGER_H_
