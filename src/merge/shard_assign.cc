#include "merge/shard_assign.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "geom/spatial_grid.h"

namespace qsp {
namespace {

/// Grid dimensions whose product approximates `shards` (floor(sqrt)
/// split: 4 -> 2x2, 8 -> 2x4, 16 -> 4x4). Must stay byte-compatible
/// with the pre-balanced planner's grid.
void GridDims(int shards, int* cx, int* cy) {
  *cx = std::max(1, static_cast<int>(std::floor(
                        std::sqrt(static_cast<double>(shards)))));
  *cy = std::max(1, shards / *cx);
}

/// Cut-quality controls. A cut's damage is the weight of rects that
/// physically straddle the cut line: every such rect couples the two
/// sides, lands its group on the seam, and lets the shard-local greedy
/// merges commit to groupings a global planner would not have made.
///
/// kBalanceSlack widens the set of candidate cut indices to everything
/// within this fraction of one shard's fair cost of perfect balance, so
/// the cut can snap to a low-straddle position (a density valley, a
/// cluster edge) instead of slicing through the thickest mass. The
/// slack is bounded per level, so leaf costs stay within the 2.0
/// imbalance acceptance.
///
/// kMaxStraddle refuses the cut outright when even the best candidate
/// has more than this fraction of the node's weight straddling it —
/// true once slivers are narrower than the rects they host. The node
/// becomes a leaf and the surplus shard budget lapses: the effective
/// shard count adapts to what the data can absorb.
constexpr double kBalanceSlack = 0.4;
constexpr double kMaxStraddle = 0.8;

/// A candidate bisection cut along one axis: ids[lo, lo+k) go left,
/// cut coordinate, and the node-weight fraction straddling the line.
struct CutChoice {
  size_t k = 0;
  double cut = 0.0;
  double straddle = 0.0;
};

/// Recursive cost-balanced bisection over placed-rect centers. Operates
/// on an index range of `ids` (reordered in place) and writes shard
/// membership, boxes, seam sides, and accounting straight into the
/// layout. Leaves take their shard id from `next_shard`, so ids are
/// dense [0, num_shards) even when extent-floored nodes return budget.
/// Returns the child encoding for the parent cut node.
struct Bisector {
  const double* cx;
  const double* cy;
  const double* rect_lo_x;
  const double* rect_hi_x;
  const double* rect_lo_y;
  const double* rect_hi_y;
  const std::vector<double>& weight;
  ShardLayout* layout;
  int next_shard = 0;

  int32_t Leaf(const std::vector<uint32_t>& ids, size_t lo, size_t hi,
               const Rect& box, ShardLayout::SeamSides open) {
    const int shard = next_shard++;
    for (size_t i = lo; i < hi; ++i) {
      const uint32_t id = ids[i];
      layout->shard_of[id] = shard;
      layout->shard_cost[shard] += weight[id];
      ++layout->shard_queries[shard];
    }
    layout->shard_box[shard] = box;
    layout->shard_open[shard] = open;
    return -static_cast<int32_t>(shard) - 1;
  }

  /// Best near-balanced cut along `axis` for ids[lo, hi), which it
  /// leaves sorted by (center, id) on that axis — the id tie-break
  /// makes all-same-center populations split deterministically instead
  /// of degenerating. Finds the weight-balance optimum for a
  /// shards/2 : shards - shards/2 split, widens to every cut index
  /// within the balance slack, and among those picks the cut with the
  /// least straddling weight (ties: wider center gap, then smaller k).
  /// Serial arithmetic throughout, so the choice is identical at every
  /// thread count.
  CutChoice FindCut(std::vector<uint32_t>* ids, size_t lo, size_t hi,
                    int axis, int shards) const {
    const size_t n = hi - lo;
    const size_t s_left = static_cast<size_t>(shards / 2);
    const size_t s_right = static_cast<size_t>(shards) - s_left;
    const double* c = axis == 0 ? cx : cy;
    const double* r_lo = axis == 0 ? rect_lo_x : rect_lo_y;
    const double* r_hi = axis == 0 ? rect_hi_x : rect_hi_y;
    std::sort(ids->begin() + static_cast<ptrdiff_t>(lo),
              ids->begin() + static_cast<ptrdiff_t>(hi),
              [c](uint32_t a, uint32_t b) {
                if (c[a] != c[b]) return c[a] < c[b];
                return a < b;
              });
    double total = 0.0;
    for (size_t i = lo; i < hi; ++i) total += weight[(*ids)[i]];
    const double target =
        total * (static_cast<double>(s_left) / static_cast<double>(shards));
    // Pass 1: the best achievable balance, with the cut index clamped
    // so each side keeps at least one query per shard it must host.
    double best_err = std::numeric_limits<double>::infinity();
    double prefix = 0.0;
    for (size_t k = 1; k <= n - s_right; ++k) {
      prefix += weight[(*ids)[lo + k - 1]];
      if (k < s_left) continue;
      best_err = std::min(best_err, std::abs(prefix - target));
    }
    const double slack = std::max(
        best_err, kBalanceSlack * total / static_cast<double>(shards));
    // Straddle lookups: sorted rect-side coordinates with weight prefix
    // sums, so straddle(t) = total - weight(hi <= t) - weight(lo >= t)
    // in two binary searches. A degenerate rect sitting exactly on the
    // cut would count negative; the clamp keeps zero-extent same-center
    // populations splitting as before.
    std::vector<std::pair<double, double>> lo_ev, hi_ev;
    lo_ev.reserve(n);
    hi_ev.reserve(n);
    for (size_t i = lo; i < hi; ++i) {
      const uint32_t id = (*ids)[i];
      lo_ev.emplace_back(r_lo[id], weight[id]);
      hi_ev.emplace_back(r_hi[id], weight[id]);
    }
    std::sort(lo_ev.begin(), lo_ev.end());
    std::sort(hi_ev.begin(), hi_ev.end());
    std::vector<double> lo_coord(n), hi_coord(n);
    std::vector<double> hi_le(n + 1, 0.0), lo_ge(n + 1, 0.0);
    for (size_t i = 0; i < n; ++i) {
      lo_coord[i] = lo_ev[i].first;
      hi_coord[i] = hi_ev[i].first;
      hi_le[i + 1] = hi_le[i] + hi_ev[i].second;
    }
    for (size_t i = n; i > 0; --i) {
      lo_ge[i - 1] = lo_ge[i] + lo_ev[i - 1].second;
    }
    // Pass 2: minimum-straddle cut among the near-balanced candidates.
    // At least one candidate exists (slack >= best_err).
    CutChoice best;
    double best_straddle = std::numeric_limits<double>::infinity();
    double best_gap = -1.0;
    prefix = 0.0;
    for (size_t k = 1; k <= n - s_right; ++k) {
      prefix += weight[(*ids)[lo + k - 1]];
      if (k < s_left) continue;
      if (std::abs(prefix - target) > slack) continue;
      const double t = 0.5 * (c[(*ids)[lo + k - 1]] + c[(*ids)[lo + k]]);
      const size_t n_hi_le = static_cast<size_t>(
          std::upper_bound(hi_coord.begin(), hi_coord.end(), t) -
          hi_coord.begin());
      const size_t n_lo_lt = static_cast<size_t>(
          std::lower_bound(lo_coord.begin(), lo_coord.end(), t) -
          lo_coord.begin());
      const double straddle =
          std::max(0.0, total - hi_le[n_hi_le] - lo_ge[n_lo_lt]);
      const double gap = c[(*ids)[lo + k]] - c[(*ids)[lo + k - 1]];
      if (straddle < best_straddle ||
          (straddle == best_straddle && gap > best_gap)) {
        best_straddle = straddle;
        best_gap = gap;
        best = CutChoice{k, t, total > 0.0 ? straddle / total : 0.0};
      }
    }
    return best;
  }

  int32_t Build(std::vector<uint32_t>* ids, size_t lo, size_t hi, int shards,
                const Rect& box, ShardLayout::SeamSides open) {
    if (shards <= 1) return Leaf(*ids, lo, hi, box, open);
    // Prefer the axis with the larger center spread (ties pick x):
    // cutting the long direction keeps leaf boxes square-ish, which
    // keeps seam frontiers short. Fall back to the other axis when the
    // preferred cut would be mostly straddled; when both would, the
    // node is done splitting.
    double min_x = cx[(*ids)[lo]], max_x = min_x;
    double min_y = cy[(*ids)[lo]], max_y = min_y;
    for (size_t i = lo + 1; i < hi; ++i) {
      const uint32_t id = (*ids)[i];
      min_x = std::min(min_x, cx[id]);
      max_x = std::max(max_x, cx[id]);
      min_y = std::min(min_y, cy[id]);
      max_y = std::max(max_y, cy[id]);
    }
    const int primary = (max_x - min_x >= max_y - min_y) ? 0 : 1;
    int axis = primary;
    CutChoice choice = FindCut(ids, lo, hi, primary, shards);
    if (choice.straddle > kMaxStraddle) {
      const CutChoice alt = FindCut(ids, lo, hi, 1 - primary, shards);
      if (alt.straddle > kMaxStraddle) return Leaf(*ids, lo, hi, box, open);
      axis = 1 - primary;
      choice = alt;
    }
    const size_t s_left = static_cast<size_t>(shards / 2);
    const size_t s_right = static_cast<size_t>(shards) - s_left;
    const size_t best_k = choice.k;
    const double cut = choice.cut;
    const int32_t node = static_cast<int32_t>(layout->cuts.size());
    layout->cuts.push_back(ShardCutNode{axis, cut, 0, 0});
    Rect left_box(box.x_lo(), box.y_lo(), box.x_hi(), box.y_hi());
    Rect right_box = left_box;
    ShardLayout::SeamSides left_open = open;
    ShardLayout::SeamSides right_open = open;
    if (axis == 0) {
      left_box = Rect(box.x_lo(), box.y_lo(), cut, box.y_hi());
      right_box = Rect(cut, box.y_lo(), box.x_hi(), box.y_hi());
      left_open.x_hi = true;
      right_open.x_lo = true;
    } else {
      left_box = Rect(box.x_lo(), box.y_lo(), box.x_hi(), cut);
      right_box = Rect(box.x_lo(), cut, box.x_hi(), box.y_hi());
      left_open.y_hi = true;
      right_open.y_lo = true;
    }
    const int32_t left = Build(ids, lo, lo + best_k, static_cast<int>(s_left),
                               left_box, left_open);
    const int32_t right = Build(ids, lo + best_k, hi,
                                static_cast<int>(s_right), right_box,
                                right_open);
    layout->cuts[static_cast<size_t>(node)].left = left;
    layout->cuts[static_cast<size_t>(node)].right = right;
    return node;
  }
};

}  // namespace

double ShardLayout::MaxCost() const {
  double max_cost = 0.0;
  for (double c : shard_cost) max_cost = std::max(max_cost, c);
  return max_cost;
}

double ShardLayout::Imbalance() const {
  if (num_shards <= 0 || total_cost <= 0.0) return 0.0;
  return MaxCost() / (total_cost / static_cast<double>(num_shards));
}

std::vector<double> PlanningCostWeights(const RectSoA& soa) {
  const size_t n = soa.size();
  std::vector<Rect> rects;
  rects.reserve(n);
  for (size_t i = 0; i < n; ++i) rects.push_back(soa.Get(i));
  SpatialGrid grid = SpatialGrid::ForRects(rects);
  for (size_t i = 0; i < n; ++i) {
    grid.Insert(static_cast<uint32_t>(i), rects[i]);
  }
  std::vector<double> weights(n);
  for (size_t i = 0; i < n; ++i) {
    weights[i] = 1.0 + grid.LoadInRange(rects[i]);
  }
  return weights;
}

ShardLayout AssignShards(const RectSoA& soa, int shards, ShardAssign assign) {
  const size_t n = soa.size();
  ShardLayout layout;
  layout.assign = assign;
  layout.shard_of.assign(n, RectSoA::kBoundlessShard);
  const std::vector<double> weight = PlanningCostWeights(soa);
  layout.total_cost = 0.0;
  for (double w : weight) layout.total_cost += w;
  const Rect bounds = soa.BoundingUnionAll();
  const int requested =
      std::min<int>(std::max(1, shards),
                    static_cast<int>(std::max<size_t>(1, n)));

  if (assign == ShardAssign::kGrid) {
    int cells_x = 1, cells_y = 1;
    if (!bounds.IsEmpty()) GridDims(requested, &cells_x, &cells_y);
    layout.cells_x = cells_x;
    layout.cells_y = cells_y;
    layout.num_shards = cells_x * cells_y;
    soa.BatchShardOf(bounds, cells_x, cells_y, layout.shard_of.data());
    const size_t num_cells = static_cast<size_t>(layout.num_shards);
    layout.shard_cost.assign(num_cells, 0.0);
    layout.shard_queries.assign(num_cells, 0);
    layout.shard_box.assign(num_cells, Rect::Empty());
    layout.shard_open.assign(num_cells, ShardLayout::SeamSides{});
    const double cell_w = bounds.IsEmpty() ? 0.0 : bounds.Width() / cells_x;
    const double cell_h = bounds.IsEmpty() ? 0.0 : bounds.Height() / cells_y;
    for (int cj = 0; cj < cells_y; ++cj) {
      for (int ci = 0; ci < cells_x; ++ci) {
        const size_t s = static_cast<size_t>(cj) * cells_x + ci;
        layout.shard_box[s] =
            Rect(bounds.x_lo() + ci * cell_w, bounds.y_lo() + cj * cell_h,
                 bounds.x_lo() + (ci + 1) * cell_w,
                 bounds.y_lo() + (cj + 1) * cell_h);
        layout.shard_open[s] = {ci > 0, ci < cells_x - 1, cj > 0,
                                cj < cells_y - 1};
      }
    }
    for (size_t i = 0; i < n; ++i) {
      const int32_t raw = layout.shard_of[i];
      const size_t s = raw == RectSoA::kBoundlessShard
                           ? 0
                           : static_cast<size_t>(raw);
      layout.shard_cost[s] += weight[i];
      ++layout.shard_queries[s];
    }
    return layout;
  }

  // Balanced bisection runs over placed rects only; boundless queries
  // keep kBoundlessShard and are accounted to shard 0 below, mirroring
  // where the planner parks them.
  std::vector<uint32_t> placed;
  placed.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (!soa.IsEmpty(i)) placed.push_back(static_cast<uint32_t>(i));
  }
  const int shard_budget = std::min<int>(
      requested, static_cast<int>(std::max<size_t>(1, placed.size())));
  // Allocate at the budget; the bisection may consume less (extent
  // floor), so the per-shard arrays are trimmed to the leaves actually
  // created.
  const size_t budget_count = static_cast<size_t>(shard_budget);
  layout.shard_cost.assign(budget_count, 0.0);
  layout.shard_queries.assign(budget_count, 0);
  layout.shard_box.assign(budget_count, bounds);
  layout.shard_open.assign(budget_count, ShardLayout::SeamSides{});

  if (shard_budget <= 1) {
    layout.num_shards = 1;
    for (uint32_t id : placed) {
      layout.shard_of[id] = 0;
      layout.shard_cost[0] += weight[id];
      ++layout.shard_queries[0];
    }
  } else {
    std::vector<double> center_x(n), center_y(n);
    soa.BatchCenters(center_x.data(), center_y.data());
    std::vector<double> lo_x(n, 0.0), hi_x(n, 0.0);
    std::vector<double> lo_y(n, 0.0), hi_y(n, 0.0);
    for (uint32_t id : placed) {
      const Rect rect = soa.Get(id);
      lo_x[id] = rect.x_lo();
      hi_x[id] = rect.x_hi();
      lo_y[id] = rect.y_lo();
      hi_y[id] = rect.y_hi();
    }
    Bisector bisector{center_x.data(), center_y.data(), lo_x.data(),
                      hi_x.data(),     lo_y.data(),     hi_y.data(),
                      weight,          &layout};
    bisector.Build(&placed, 0, placed.size(), shard_budget, bounds,
                   ShardLayout::SeamSides{});
    layout.num_shards = bisector.next_shard;
    const size_t shard_count = static_cast<size_t>(layout.num_shards);
    layout.shard_cost.resize(shard_count);
    layout.shard_queries.resize(shard_count);
    layout.shard_box.resize(shard_count);
    layout.shard_open.resize(shard_count);
  }
  for (size_t i = 0; i < n; ++i) {
    if (layout.shard_of[i] == RectSoA::kBoundlessShard) {
      layout.shard_cost[0] += weight[i];
      ++layout.shard_queries[0];
    }
  }
  return layout;
}

}  // namespace qsp
