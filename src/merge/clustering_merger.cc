#include "merge/clustering_merger.h"

#include <numeric>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "merge/pair_merger.h"
#include "merge/partition_merger.h"
#include "obs/metrics.h"

namespace qsp {
namespace {

/// Union-find over query ids.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Result<MergeOutcome> ClusteringMerger::DoMerge(const MergeContext& ctx,
                                               const CostModel& model) const {
  const size_t n = ctx.num_queries();
  MergeOutcome outcome;
  if (n == 0) return outcome;
  uint64_t pairs_pruned = 0;
  uint64_t subsolves_exact = 0;
  uint64_t subsolves_greedy = 0;

  // Build the "mergeable" graph: connect queries whose best-case co-merge
  // benefit is positive. The O(n^2) bound evaluations are independent, so
  // they fan out across the exec pool; the union-find is then fed
  // serially in ascending (a, b) order, making the components identical
  // for any thread count.
  DisjointSets components(n);
  std::vector<std::pair<QueryId, QueryId>> pairs;
  pairs.reserve(n * (n - 1) / 2);
  for (QueryId a = 0; a < n; ++a) {
    for (QueryId b = a + 1; b < n; ++b) pairs.emplace_back(a, b);
  }
  const std::vector<char> mergeable = exec::ParallelMap<char>(
      pairs.size(), [&](size_t k) {
        const auto& [a, b] = pairs[k];
        const double s1 = ctx.Size(a);
        const double s2 = ctx.Size(b);
        const double r = tight_bound_ ? ctx.UnionSize(a, b)
                                      : ctx.Stats({a, b}).size;
        return static_cast<char>(model.CoMergeBenefitBound(s1, s2, r) > 0.0);
      });
  outcome.candidates += pairs.size();
  for (size_t k = 0; k < pairs.size(); ++k) {
    if (mergeable[k]) {
      components.Union(pairs[k].first, pairs[k].second);
    } else {
      ++pairs_pruned;
    }
  }

  // Collect components.
  std::vector<std::vector<QueryId>> clusters(n);
  for (QueryId id = 0; id < n; ++id) {
    clusters[components.Find(id)].push_back(id);
  }

  // Solve each cluster independently.
  const PairMerger pair_merger;
  for (const auto& cluster : clusters) {
    if (cluster.empty()) continue;
    if (cluster.size() == 1) {
      outcome.partition.push_back(cluster);
      continue;
    }
    if (static_cast<int>(cluster.size()) <= exact_component_limit_) {
      ++subsolves_exact;
      MergeOutcome sub = ExactPartitionSearch(ctx, model, cluster);
      outcome.candidates += sub.candidates;
      for (auto& group : sub.partition) {
        outcome.partition.push_back(std::move(group));
      }
    } else {
      ++subsolves_greedy;
      Partition start;
      start.reserve(cluster.size());
      for (QueryId id : cluster) start.push_back({id});
      MergeOutcome sub = pair_merger.MergeFrom(ctx, model, std::move(start));
      outcome.candidates += sub.candidates;
      for (auto& group : sub.partition) {
        outcome.partition.push_back(std::move(group));
      }
    }
  }
  CanonicalizePartition(&outcome.partition);
  outcome.cost = model.PartitionCost(ctx, outcome.partition);
  obs::Count("merge.clustering.pairs_pruned", pairs_pruned);
  obs::Count("merge.clustering.subsolves_exact", subsolves_exact);
  obs::Count("merge.clustering.subsolves_greedy", subsolves_greedy);
  return outcome;
}

}  // namespace qsp
