#include "merge/clustering_merger.h"

#include <algorithm>
#include <numeric>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "geom/spatial_grid.h"
#include "merge/pair_merger.h"
#include "merge/partition_merger.h"
#include "merge/plan_bounds.h"
#include "obs/metrics.h"

namespace qsp {
namespace {

/// Union-find over query ids.
class DisjointSets {
 public:
  explicit DisjointSets(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

}  // namespace

Result<MergeOutcome> ClusteringMerger::DoMerge(const MergeContext& ctx,
                                               const CostModel& model) const {
  const size_t n = ctx.num_queries();
  MergeOutcome outcome;
  if (n == 0) return outcome;
  uint64_t pairs_pruned = 0;
  uint64_t subsolves_exact = 0;
  uint64_t subsolves_greedy = 0;

  // Build the "mergeable" graph: connect queries whose best-case co-merge
  // benefit is positive. The bound evaluations are independent, so they
  // fan out across the exec pool; the union-find is then fed serially in
  // ascending (a, b) order, making the components identical for any
  // thread count.
  //
  // With pruning, the O(n^2) pair list shrinks to provably-sufficient
  // candidates before any evaluation (DESIGN.md §8). The co-merge bound
  // is decreasing in the merged-size floor r, and r is never below
  //  * kSlack * max(s1, s2) for intersecting queries (the merged region
  //    covers both), and
  //  * kSlack * (s1 + s2) for disjoint queries (their coverage cannot
  //    overlap, so sizes add).
  // So intersecting pairs come from a spatial-grid join with a cheap
  // max-size test, and disjoint pairs are enumerated by ascending size
  // sum only while the sum stays under s_cap, past which the bound at
  // the disjoint floor is negative with a margin far above fp noise.
  // Every skipped pair is non-mergeable under the exact test; every
  // surviving pair is evaluated with the identical expression — the
  // components are unchanged.
  const double slack = plan::BenefitBounder::kSlack;
  // Bound at the disjoint floor: k_m + (s1+s2) * coef. Usable only when
  // decreasing in the size sum (coef < 0; with k_u ~ 0 it is not, and
  // no disjoint pair can ever be ruled out by size alone).
  const double coef =
      model.k_t * (1.0 - slack) + model.k_u * (1.0 - 2.0 * slack);
  const ProcedureTraits traits = ctx.procedure().traits();
  const bool pruned =
      pruning_ && model.SupportsBenefitBounds() && coef < 0.0 &&
      (tight_bound_ ||
       (traits.merged_size_monotone && traits.superadditive_when_disjoint));

  DisjointSets components(n);
  std::vector<std::pair<QueryId, QueryId>> pairs;
  if (pruned) {
    std::vector<double> sizes(n);
    std::vector<Rect> rects(n);
    for (QueryId id = 0; id < n; ++id) {
      sizes[id] = ctx.Size(id);
      rects[id] = ctx.queries().rect(id);
    }
    // Disjoint-floor cutoff for the enumeration below and for boundless
    // pairs from the grid join. The 1e-6 headroom keeps the cutoff sound
    // against the rounding differences between this closed form and the
    // exact evaluation.
    const double s_cap = model.k_m / -coef * (1.0 + 1e-6);
    // Intersecting pairs: exact spatial join, then the cheap max-size
    // test (prune iff the bound is non-positive even at the smallest
    // possible merged size). The join also surfaces every pair with an
    // empty (boundless) rectangle; those never geometrically intersect,
    // so they take the disjoint-pair cutoff instead of the intersecting
    // floor — identical to how the enumeration below always treated them.
    SpatialGrid grid = SpatialGrid::ForRects(rects);
    for (QueryId id = 0; id < n; ++id) grid.Insert(id, rects[id]);
    grid.ForEachNearbyPair([&](uint32_t a, uint32_t b) {
      if (rects[a].IsEmpty() || rects[b].IsEmpty()) {
        if (sizes[a] + sizes[b] < s_cap) pairs.emplace_back(a, b);
        return;
      }
      const double floor = slack * std::max(sizes[a], sizes[b]);
      if (model.CoMergeBenefitBound(sizes[a], sizes[b], floor) > 0.0) {
        pairs.emplace_back(a, b);
      }
    });
    // Disjoint pairs: ascending size-sum enumeration with an early cut.
    std::vector<QueryId> by_size(n);
    std::iota(by_size.begin(), by_size.end(), 0);
    std::sort(by_size.begin(), by_size.end(), [&](QueryId a, QueryId b) {
      if (sizes[a] != sizes[b]) return sizes[a] < sizes[b];
      return a < b;
    });
    for (size_t i = 0; i < n; ++i) {
      const QueryId a = by_size[i];
      for (size_t j = i + 1; j < n; ++j) {
        const QueryId b = by_size[j];
        if (sizes[a] + sizes[b] >= s_cap) break;  // sums only grow with j
        if (rects[a].Intersects(rects[b])) continue;  // grid pass owns it
        // Boundless pairs are also owned by the grid pass now.
        if (rects[a].IsEmpty() || rects[b].IsEmpty()) continue;
        pairs.emplace_back(std::min(a, b), std::max(a, b));
      }
    }
    std::sort(pairs.begin(), pairs.end());
    pairs_pruned += n * (n - 1) / 2 - pairs.size();
    obs::Count("plan.bounds.pruned", pairs_pruned);
  } else {
    pairs.reserve(n * (n - 1) / 2);
    for (QueryId a = 0; a < n; ++a) {
      for (QueryId b = a + 1; b < n; ++b) pairs.emplace_back(a, b);
    }
  }
  const std::vector<char> mergeable = exec::ParallelMap<char>(
      pairs.size(), [&](size_t k) {
        const auto& [a, b] = pairs[k];
        const double s1 = ctx.Size(a);
        const double s2 = ctx.Size(b);
        const double r = tight_bound_ ? ctx.UnionSize(a, b)
                                      : ctx.Stats({a, b}).size;
        return static_cast<char>(model.CoMergeBenefitBound(s1, s2, r) > 0.0);
      });
  outcome.candidates += pairs.size();
  for (size_t k = 0; k < pairs.size(); ++k) {
    if (mergeable[k]) {
      components.Union(pairs[k].first, pairs[k].second);
    } else {
      ++pairs_pruned;
    }
  }

  // Collect components.
  std::vector<std::vector<QueryId>> clusters(n);
  for (QueryId id = 0; id < n; ++id) {
    clusters[components.Find(id)].push_back(id);
  }

  // Solve each cluster independently. Greedy subsolves inherit this
  // merger's pruning setting so that pruning = false really is the
  // end-to-end exhaustive baseline (the result is identical either way;
  // only the evaluation counts differ).
  const PairMerger pair_merger(/*use_heap=*/true, pruning_);
  for (const auto& cluster : clusters) {
    if (cluster.empty()) continue;
    if (cluster.size() == 1) {
      outcome.partition.push_back(cluster);
      continue;
    }
    if (static_cast<int>(cluster.size()) <= exact_component_limit_) {
      ++subsolves_exact;
      MergeOutcome sub = ExactPartitionSearch(ctx, model, cluster);
      outcome.candidates += sub.candidates;
      outcome.bounds_refined += sub.bounds_refined;
      outcome.bounds_pruned += sub.bounds_pruned;
      for (auto& group : sub.partition) {
        outcome.partition.push_back(std::move(group));
      }
    } else {
      ++subsolves_greedy;
      Partition start;
      start.reserve(cluster.size());
      for (QueryId id : cluster) start.push_back({id});
      MergeOutcome sub = pair_merger.MergeFrom(ctx, model, std::move(start));
      outcome.candidates += sub.candidates;
      outcome.bounds_refined += sub.bounds_refined;
      outcome.bounds_pruned += sub.bounds_pruned;
      for (auto& group : sub.partition) {
        outcome.partition.push_back(std::move(group));
      }
    }
  }
  CanonicalizePartition(&outcome.partition);
  outcome.cost = model.PartitionCost(ctx, outcome.partition);
  outcome.bounds_pruned += pairs_pruned;
  obs::Count("merge.clustering.pairs_pruned", pairs_pruned);
  obs::Count("merge.clustering.subsolves_exact", subsolves_exact);
  obs::Count("merge.clustering.subsolves_greedy", subsolves_greedy);
  return outcome;
}

}  // namespace qsp
