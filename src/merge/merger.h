#ifndef QSP_MERGE_MERGER_H_
#define QSP_MERGE_MERGER_H_

#include <cstdint>
#include <string>

#include "cost/cost_model.h"
#include "query/merge_context.h"
#include "query/query.h"
#include "util/status.h"

namespace qsp {

/// Output of a query-merging algorithm: the chosen collection M, its total
/// cost under the model, and how much of the search space was touched.
struct MergeOutcome {
  Partition partition;
  double cost = 0.0;
  /// Candidate solutions (or local moves) evaluated; a search-effort
  /// metric used by the algorithm-comparison benchmarks.
  uint64_t candidates = 0;
  /// BenefitBounder effort accounting (zero for mergers that do not use
  /// bounds): candidate merges whose admissible bound had to be refined
  /// to an exact evaluation, and candidates pruned on the bound alone.
  /// Surfaced by PlanExplainer so an EXPLAIN shows how much exact work
  /// the bounds saved.
  uint64_t bounds_refined = 0;
  uint64_t bounds_pruned = 0;
};

/// Common interface of the query-merging algorithms of Section 6. All
/// implementations are deterministic given their configuration (stochastic
/// ones take an explicit seed).
class Merger {
 public:
  virtual ~Merger() = default;

  /// Solves (exactly or heuristically) the query merging problem for all
  /// queries in `ctx` under `model`. Returns an error only when the
  /// instance exceeds the algorithm's feasibility limits (the exhaustive
  /// searches refuse inputs whose enumeration would not terminate).
  ///
  /// Non-virtual entry point: when telemetry is on (qsp::obs) it wraps
  /// the run in a `merge/<name>` span and records the standard per-merger
  /// metrics — merge.<name>.{runs,candidates,group_evals,latency_us} and
  /// the merge.<name>.last_{cost,groups} gauges — so every algorithm is
  /// observable without per-implementation boilerplate.
  Result<MergeOutcome> Merge(const MergeContext& ctx,
                             const CostModel& model) const;

  virtual std::string name() const = 0;

 protected:
  /// The actual algorithm; implemented by each merger.
  virtual Result<MergeOutcome> DoMerge(const MergeContext& ctx,
                                       const CostModel& model) const = 0;
};

}  // namespace qsp

#endif  // QSP_MERGE_MERGER_H_
