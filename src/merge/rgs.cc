#include "merge/rgs.h"

#include <algorithm>

#include "util/status.h"

namespace qsp {

RgsIterator::RgsIterator(int n, int max_blocks)
    : n_(n), max_blocks_(max_blocks) {
  QSP_CHECK(n >= 1);
  a_.assign(static_cast<size_t>(n), 0);
  prefix_max_.assign(static_cast<size_t>(n), 0);
}

bool RgsIterator::Next() {
  // Find the rightmost position (>0) we can increment.
  for (int i = n_ - 1; i >= 1; --i) {
    const int cap = std::min(
        prefix_max_[i - 1] + 1,
        max_blocks_ > 0 ? max_blocks_ - 1 : prefix_max_[i - 1] + 1);
    if (a_[i] < cap) {
      ++a_[i];
      prefix_max_[i] = std::max(prefix_max_[i - 1], a_[i]);
      for (int j = i + 1; j < n_; ++j) {
        a_[j] = 0;
        prefix_max_[j] = prefix_max_[j - 1];
      }
      return true;
    }
  }
  return false;
}

int RgsIterator::NumBlocks() const {
  return n_ == 0 ? 0 : prefix_max_[n_ - 1] + 1;
}

std::vector<std::vector<int>> RgsToBlocks(const std::vector<int>& rgs) {
  int blocks = 0;
  for (int b : rgs) blocks = std::max(blocks, b + 1);
  std::vector<std::vector<int>> out(static_cast<size_t>(blocks));
  for (size_t i = 0; i < rgs.size(); ++i) {
    out[static_cast<size_t>(rgs[i])].push_back(static_cast<int>(i));
  }
  return out;
}

}  // namespace qsp
