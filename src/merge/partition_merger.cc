#include "merge/partition_merger.h"

#include <limits>

#include "obs/metrics.h"

namespace qsp {
namespace {

/// Depth-first walk of the paper's partition search tree (Figure 9) over
/// an explicit id list.
class PartitionSearch {
 public:
  PartitionSearch(const MergeContext& ctx, const CostModel& model,
                  const std::vector<QueryId>& ids)
      : ctx_(ctx), model_(model), ids_(ids) {
    best_.cost = std::numeric_limits<double>::infinity();
  }

  MergeOutcome Run() {
    if (ids_.empty()) {
      best_.cost = 0.0;
      return best_;
    }
    current_.clear();
    Descend(0);
    CanonicalizePartition(&best_.partition);
    // Replace the incrementally accumulated cost with a canonical
    // recomputation so exact and heuristic results compare exactly.
    best_.cost = model_.PartitionCost(ctx_, best_.partition);
    return best_;
  }

 private:
  void Descend(size_t next) {
    if (next == ids_.size()) {
      ++best_.candidates;
      if (cost_ < best_.cost) {
        best_.cost = cost_;
        best_.partition = current_;
      }
      return;
    }
    const QueryId id = ids_[next];

    // Child 0: open a new group {id}.
    const double singleton_cost = model_.GroupCost(ctx_, {id});
    current_.push_back({id});
    cost_ += singleton_cost;
    Descend(next + 1);
    cost_ -= singleton_cost;
    current_.pop_back();

    // Children 1..m: add `id` to an existing group. `ids_` must be
    // ascending, so appending keeps every group canonical.
    for (QueryGroup& group : current_) {
      const double old_cost = model_.GroupCost(ctx_, group);
      group.push_back(id);
      const double new_cost = model_.GroupCost(ctx_, group);
      cost_ += new_cost - old_cost;
      Descend(next + 1);
      cost_ -= new_cost - old_cost;
      group.pop_back();
    }
  }

  const MergeContext& ctx_;
  const CostModel& model_;
  const std::vector<QueryId>& ids_;
  Partition current_;
  double cost_ = 0.0;
  MergeOutcome best_;
};

}  // namespace

MergeOutcome ExactPartitionSearch(const MergeContext& ctx,
                                  const CostModel& model,
                                  const std::vector<QueryId>& ids) {
  std::vector<QueryId> sorted = ids;
  CanonicalizeGroup(&sorted);
  PartitionSearch search(ctx, model, sorted);
  MergeOutcome outcome = search.Run();
  // Also counted when invoked as the clustering algorithm's exact
  // sub-solver, which bypasses the Merger::Merge instrumentation.
  obs::Count("merge.partition.searches");
  obs::Count("merge.partition.leaves", outcome.candidates);
  return outcome;
}

Result<MergeOutcome> PartitionMerger::DoMerge(const MergeContext& ctx,
                                              const CostModel& model) const {
  const int n = static_cast<int>(ctx.num_queries());
  if (n > max_queries_) {
    return Status::ResourceExhausted(
        "partition enumeration is limited to " + std::to_string(max_queries_) +
        " queries (Bell growth), got " + std::to_string(n));
  }
  return ExactPartitionSearch(ctx, model, ctx.queries().AllIds());
}

}  // namespace qsp
