#include "merge/sharded_planner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "exec/thread_pool.h"
#include "geom/rect_soa.h"
#include "merge/pair_merger.h"
#include "obs/metrics.h"
#include "obs/phase_tracer.h"
#include "util/status.h"

namespace qsp {
namespace {

/// One shard's planning sub-problem: a snapshot QuerySet with dense
/// local ids plus a context sharing the parent's estimator/procedure.
/// local id j <-> global id members[j].
struct ShardProblem {
  std::vector<QueryId> members;
  QuerySet queries;
  std::unique_ptr<MergeContext> ctx;
};

/// Default-constructible per-shard result for exec::ParallelMap.
struct ShardRun {
  MergeOutcome outcome;
  bool ok = true;
  std::string error;
};

/// Labeled canonicalization: CanonicalizePartition's ordering (groups
/// canonical-sorted, ordered by first element, empties dropped) with the
/// shard attribution carried through the sort.
void CanonicalizeLabeled(Partition* partition, std::vector<int32_t>* labels) {
  std::vector<std::pair<QueryGroup, int32_t>> entries;
  entries.reserve(partition->size());
  for (size_t i = 0; i < partition->size(); ++i) {
    if ((*partition)[i].empty()) continue;
    QueryGroup group = std::move((*partition)[i]);
    std::sort(group.begin(), group.end());
    entries.emplace_back(std::move(group), (*labels)[i]);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.first.front() < b.first.front();
            });
  partition->clear();
  labels->clear();
  for (auto& [group, label] : entries) {
    partition->push_back(std::move(group));
    labels->push_back(label);
  }
}

}  // namespace

ShardedPlanner::ShardedPlanner(const Merger* inner, Options options)
    : inner_(inner), options_(options) {
  QSP_CHECK(inner != nullptr);
}

Result<ShardedMergeOutcome> ShardedPlanner::Plan(const MergeContext& ctx,
                                                 const CostModel& model) const {
  const size_t n = ctx.num_queries();
  const int shards =
      std::min<int>(std::max(1, options_.shards),
                    static_cast<int>(std::max<size_t>(1, n)));
  ShardedMergeOutcome result;

  if (shards <= 1 || n <= 1) {
    // Delegation path: the exact call the unsharded planner makes, so
    // shards=1 output is byte-identical by construction.
    Result<MergeOutcome> outcome = inner_->Merge(ctx, model);
    if (!outcome.ok()) return outcome.status();
    result.outcome = std::move(outcome.value());
    result.group_shard.assign(result.outcome.partition.size(), 0);
    ShardStats stats;
    stats.queries = n;
    stats.groups = result.outcome.partition.size();
    stats.cost = result.outcome.cost;
    result.shards.push_back(stats);
    return result;
  }

  obs::ScopedSpan span("plan/sharded");
  // --- Shard assignment: grid or cost-balanced bisection over SoA
  // storage (merge/shard_assign), with per-shard estimated planning
  // costs for scheduling and the imbalance gauge.
  RectSoA soa;
  soa.Reserve(n);
  for (QueryId id = 0; id < n; ++id) soa.PushBack(ctx.queries().rect(id));
  result.layout = AssignShards(soa, shards, options_.assign);
  const ShardLayout& layout = result.layout;
  const int num_shards = layout.num_shards;
  result.imbalance = layout.Imbalance();
  result.cells_x = layout.cells_x;
  result.cells_y = layout.cells_y;

  std::vector<ShardProblem> problems(static_cast<size_t>(num_shards));
  for (QueryId id = 0; id < n; ++id) {
    // Boundless queries have no center; park them in shard 0 (their
    // groups are always seam-classified, so reconciliation sees them).
    const int32_t s = layout.shard_of[id] == RectSoA::kBoundlessShard
                          ? 0
                          : layout.shard_of[id];
    problems[static_cast<size_t>(s)].members.push_back(id);
  }
  for (ShardProblem& problem : problems) {
    for (QueryId id : problem.members) {
      problem.queries.Add(ctx.queries().rect(id));
    }
    if (!problem.members.empty()) {
      problem.ctx = std::make_unique<MergeContext>(
          &problem.queries, &ctx.estimator(), &ctx.procedure());
    }
  }

  // --- Independent per-shard merges across the exec pool, scheduled
  // largest estimated cost first: the pool's dynamic cursor hands out
  // work in index order, so fronting the heaviest shard stops it from
  // starting last and trailing an otherwise-drained pool. Results are
  // written back by shard id, and shard merges are independent, so
  // scheduling order changes wall-clock only — never outputs.
  std::vector<size_t> order(static_cast<size_t>(num_shards));
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&layout](size_t a, size_t b) {
    if (layout.shard_cost[a] != layout.shard_cost[b]) {
      return layout.shard_cost[a] > layout.shard_cost[b];
    }
    return a < b;
  });
  std::vector<ShardRun> ordered_runs = exec::ParallelMap<ShardRun>(
      static_cast<size_t>(num_shards), [&](size_t i) {
        const size_t s = order[i];
        ShardRun run;
        if (problems[s].members.empty()) return run;
        obs::ScopedTimer timer("planner.shard.latency_us");
        Result<MergeOutcome> merged =
            inner_->Merge(*problems[s].ctx, model);
        if (!merged.ok()) {
          run.ok = false;
          run.error = merged.status().ToString();
          return run;
        }
        run.outcome = std::move(merged.value());
        return run;
      });
  std::vector<ShardRun> runs(static_cast<size_t>(num_shards));
  for (size_t i = 0; i < order.size(); ++i) {
    runs[order[i]] = std::move(ordered_runs[i]);
  }
  for (size_t s = 0; s < runs.size(); ++s) {
    if (!runs[s].ok) {
      return Status::Internal("shard " + std::to_string(s) +
                              " merge failed: " + runs[s].error);
    }
  }

  // --- Seam classification. A group is interior when its MBR sits
  // strictly inside its shard's box on every side that faces a neighbor
  // (box sides on the domain boundary count as interior — there is no
  // neighbor across them); everything else, boundless groups included,
  // enters the boundary pass. For grid assignment the boxes and open
  // sides reproduce the cell-edge tests exactly; for balanced
  // assignment they are the bisection leaf boxes and cut lines.
  Partition interior;
  std::vector<int32_t> interior_shard;
  Partition seam_start;
  for (size_t s = 0; s < runs.size(); ++s) {
    const ShardProblem& problem = problems[s];
    if (problem.members.empty()) continue;
    ShardStats stats;
    stats.shard = static_cast<int>(s);
    stats.queries = problem.members.size();
    stats.groups = runs[s].outcome.partition.size();
    stats.cost = runs[s].outcome.cost;
    stats.est_cost = layout.shard_cost[s];
    result.outcome.candidates += runs[s].outcome.candidates;
    result.outcome.bounds_refined += runs[s].outcome.bounds_refined;
    result.outcome.bounds_pruned += runs[s].outcome.bounds_pruned;
    const Rect& box = layout.shard_box[s];
    const ShardLayout::SeamSides& open = layout.shard_open[s];
    for (const QueryGroup& local_group : runs[s].outcome.partition) {
      QueryGroup group;
      group.reserve(local_group.size());
      Rect mbr = Rect::Empty();
      bool has_boundless = false;
      for (QueryId local : local_group) {
        group.push_back(problem.members[local]);
        const Rect& rect = problem.queries.rect(local);
        has_boundless = has_boundless || rect.IsEmpty();
        mbr = mbr.BoundingUnion(rect);
      }
      std::sort(group.begin(), group.end());
      // A boundless member makes the group's reach unbounded regardless
      // of the placed members' MBR: always a seam candidate.
      bool is_interior = !has_boundless && !mbr.IsEmpty();
      if (is_interior) {
        is_interior = (!open.x_lo || mbr.x_lo() > box.x_lo()) &&
                      (!open.x_hi || mbr.x_hi() < box.x_hi()) &&
                      (!open.y_lo || mbr.y_lo() > box.y_lo()) &&
                      (!open.y_hi || mbr.y_hi() < box.y_hi());
      }
      if (is_interior) {
        interior.push_back(std::move(group));
        interior_shard.push_back(static_cast<int32_t>(s));
      } else {
        ++stats.seam_groups;
        seam_start.push_back(std::move(group));
      }
    }
    result.shards.push_back(stats);
  }
  result.seam_groups_in = seam_start.size();

  // --- Boundary pass: greedy pair-merge over the seam groups only,
  // against the full context (so cross-shard statistics come from the
  // same memo the final costing uses). Interior groups are untouched.
  if (seam_start.size() > 1) {
    CanonicalizePartition(&seam_start);
    const PairMerger seam_merger(/*use_heap=*/true, options_.pruning);
    const size_t groups_in = seam_start.size();
    obs::ScopedSpan seam_span("plan/seam");
    MergeOutcome seam =
        seam_merger.MergeFrom(ctx, model, std::move(seam_start));
    result.seam_merges = groups_in - seam.partition.size();
    result.outcome.candidates += seam.candidates;
    result.outcome.bounds_refined += seam.bounds_refined;
    result.outcome.bounds_pruned += seam.bounds_pruned;
    for (QueryGroup& group : seam.partition) {
      interior.push_back(std::move(group));
      interior_shard.push_back(ShardedMergeOutcome::kSeamGroup);
    }
  } else {
    for (QueryGroup& group : seam_start) {
      interior.push_back(std::move(group));
      interior_shard.push_back(ShardedMergeOutcome::kSeamGroup);
    }
  }

  CanonicalizeLabeled(&interior, &interior_shard);
  result.outcome.partition = std::move(interior);
  result.group_shard = std::move(interior_shard);
  result.outcome.cost = model.PartitionCost(ctx, result.outcome.partition);

  if (obs::Enabled()) {
    obs::SetGauge("plan.shard.count",
                  static_cast<double>(result.shards.size()));
    obs::SetGauge("plan.shard.seam_groups",
                  static_cast<double>(result.seam_groups_in));
    obs::SetGauge("plan.shard.seam_merges",
                  static_cast<double>(result.seam_merges));
    obs::SetGauge("plan.shard.groups",
                  static_cast<double>(result.outcome.partition.size()));
    // Skew accounting: largest shard's estimated planning cost over the
    // per-shard mean (1.0 = perfectly balanced), plus the per-shard
    // query-count distribution — one histogram observation per shard,
    // with min/max/mean mirrored as gauges for dashboards that can't
    // aggregate histograms.
    obs::SetGauge("plan.shard.imbalance", result.imbalance);
    size_t q_min = 0, q_max = 0, q_sum = 0;
    bool first = true;
    for (size_t q : layout.shard_queries) {
      obs::Observe("plan.shard.queries", static_cast<double>(q));
      q_min = first ? q : std::min(q_min, q);
      q_max = std::max(q_max, q);
      q_sum += q;
      first = false;
    }
    obs::SetGauge("plan.shard.queries.min", static_cast<double>(q_min));
    obs::SetGauge("plan.shard.queries.max", static_cast<double>(q_max));
    obs::SetGauge("plan.shard.queries.mean",
                  layout.shard_queries.empty()
                      ? 0.0
                      : static_cast<double>(q_sum) /
                            static_cast<double>(layout.shard_queries.size()));
  }
  return result;
}

}  // namespace qsp
