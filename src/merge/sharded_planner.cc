#include "merge/sharded_planner.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <string>
#include <utility>

#include "exec/thread_pool.h"
#include "geom/rect_soa.h"
#include "merge/pair_merger.h"
#include "obs/metrics.h"
#include "obs/phase_tracer.h"
#include "util/status.h"

namespace qsp {
namespace {

/// One shard's planning sub-problem: a snapshot QuerySet with dense
/// local ids plus a context sharing the parent's estimator/procedure.
/// local id j <-> global id members[j].
struct ShardProblem {
  std::vector<QueryId> members;
  QuerySet queries;
  std::unique_ptr<MergeContext> ctx;
};

/// Default-constructible per-shard result for exec::ParallelMap.
struct ShardRun {
  MergeOutcome outcome;
  bool ok = true;
  std::string error;
};

/// Grid dimensions whose product approximates `shards` (floor(sqrt)
/// split: 4 -> 2x2, 8 -> 2x4, 16 -> 4x4).
void GridDims(int shards, int* cx, int* cy) {
  *cx = std::max(1, static_cast<int>(std::floor(
                        std::sqrt(static_cast<double>(shards)))));
  *cy = std::max(1, shards / *cx);
}

/// Labeled canonicalization: CanonicalizePartition's ordering (groups
/// canonical-sorted, ordered by first element, empties dropped) with the
/// shard attribution carried through the sort.
void CanonicalizeLabeled(Partition* partition, std::vector<int32_t>* labels) {
  std::vector<std::pair<QueryGroup, int32_t>> entries;
  entries.reserve(partition->size());
  for (size_t i = 0; i < partition->size(); ++i) {
    if ((*partition)[i].empty()) continue;
    QueryGroup group = std::move((*partition)[i]);
    std::sort(group.begin(), group.end());
    entries.emplace_back(std::move(group), (*labels)[i]);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.first.front() < b.first.front();
            });
  partition->clear();
  labels->clear();
  for (auto& [group, label] : entries) {
    partition->push_back(std::move(group));
    labels->push_back(label);
  }
}

}  // namespace

ShardedPlanner::ShardedPlanner(const Merger* inner, Options options)
    : inner_(inner), options_(options) {
  QSP_CHECK(inner != nullptr);
}

Result<ShardedMergeOutcome> ShardedPlanner::Plan(const MergeContext& ctx,
                                                 const CostModel& model) const {
  const size_t n = ctx.num_queries();
  const int shards =
      std::min<int>(std::max(1, options_.shards),
                    static_cast<int>(std::max<size_t>(1, n)));
  ShardedMergeOutcome result;

  if (shards <= 1 || n <= 1) {
    // Delegation path: the exact call the unsharded planner makes, so
    // shards=1 output is byte-identical by construction.
    Result<MergeOutcome> outcome = inner_->Merge(ctx, model);
    if (!outcome.ok()) return outcome.status();
    result.outcome = std::move(outcome.value());
    result.group_shard.assign(result.outcome.partition.size(), 0);
    ShardStats stats;
    stats.queries = n;
    stats.groups = result.outcome.partition.size();
    stats.cost = result.outcome.cost;
    result.shards.push_back(stats);
    return result;
  }

  obs::ScopedSpan span("plan/sharded");
  // --- Shard assignment: batch center-of-rect kernel over SoA storage.
  RectSoA soa;
  soa.Reserve(n);
  for (QueryId id = 0; id < n; ++id) soa.PushBack(ctx.queries().rect(id));
  const Rect bounds = soa.BoundingUnionAll();
  int cells_x = 1, cells_y = 1;
  if (!bounds.IsEmpty()) GridDims(shards, &cells_x, &cells_y);
  const int num_cells = cells_x * cells_y;
  std::vector<int32_t> shard_of(n);
  soa.BatchShardOf(bounds, cells_x, cells_y, shard_of.data());
  result.cells_x = cells_x;
  result.cells_y = cells_y;

  std::vector<ShardProblem> problems(static_cast<size_t>(num_cells));
  for (QueryId id = 0; id < n; ++id) {
    // Boundless queries have no center; park them in shard 0 (their
    // groups are always seam-classified, so reconciliation sees them).
    const int32_t s =
        shard_of[id] == RectSoA::kBoundlessShard ? 0 : shard_of[id];
    problems[static_cast<size_t>(s)].members.push_back(id);
  }
  for (ShardProblem& problem : problems) {
    for (QueryId id : problem.members) {
      problem.queries.Add(ctx.queries().rect(id));
    }
    if (!problem.members.empty()) {
      problem.ctx = std::make_unique<MergeContext>(
          &problem.queries, &ctx.estimator(), &ctx.procedure());
    }
  }

  // --- Independent per-shard merges across the exec pool. Result k
  // always belongs to shard k, and the inner merger's nested parallel
  // loops run serially inside workers, so the outputs are identical for
  // any thread count.
  const std::vector<ShardRun> runs = exec::ParallelMap<ShardRun>(
      static_cast<size_t>(num_cells), [&](size_t s) {
        ShardRun run;
        if (problems[s].members.empty()) return run;
        obs::ScopedTimer timer("planner.shard.latency_us");
        Result<MergeOutcome> merged =
            inner_->Merge(*problems[s].ctx, model);
        if (!merged.ok()) {
          run.ok = false;
          run.error = merged.status().ToString();
          return run;
        }
        run.outcome = std::move(merged.value());
        return run;
      });
  for (size_t s = 0; s < runs.size(); ++s) {
    if (!runs[s].ok) {
      return Status::Internal("shard " + std::to_string(s) +
                              " merge failed: " + runs[s].error);
    }
  }

  // --- Seam classification. A group is interior when its MBR sits
  // strictly inside its shard cell (cell edges on the domain boundary
  // count as interior — there is no neighbor across them); everything
  // else, boundless groups included, enters the boundary pass.
  const double cell_w = bounds.IsEmpty() ? 0.0 : bounds.Width() / cells_x;
  const double cell_h = bounds.IsEmpty() ? 0.0 : bounds.Height() / cells_y;
  Partition interior;
  std::vector<int32_t> interior_shard;
  Partition seam_start;
  for (size_t s = 0; s < runs.size(); ++s) {
    const ShardProblem& problem = problems[s];
    if (problem.members.empty()) continue;
    ShardStats stats;
    stats.shard = static_cast<int>(s);
    stats.queries = problem.members.size();
    stats.groups = runs[s].outcome.partition.size();
    stats.cost = runs[s].outcome.cost;
    result.outcome.candidates += runs[s].outcome.candidates;
    result.outcome.bounds_refined += runs[s].outcome.bounds_refined;
    result.outcome.bounds_pruned += runs[s].outcome.bounds_pruned;
    const int ci = static_cast<int>(s) % cells_x;
    const int cj = static_cast<int>(s) / cells_x;
    const double x_lo = bounds.x_lo() + ci * cell_w;
    const double x_hi = bounds.x_lo() + (ci + 1) * cell_w;
    const double y_lo = bounds.y_lo() + cj * cell_h;
    const double y_hi = bounds.y_lo() + (cj + 1) * cell_h;
    for (const QueryGroup& local_group : runs[s].outcome.partition) {
      QueryGroup group;
      group.reserve(local_group.size());
      Rect mbr = Rect::Empty();
      bool has_boundless = false;
      for (QueryId local : local_group) {
        group.push_back(problem.members[local]);
        const Rect& rect = problem.queries.rect(local);
        has_boundless = has_boundless || rect.IsEmpty();
        mbr = mbr.BoundingUnion(rect);
      }
      std::sort(group.begin(), group.end());
      // A boundless member makes the group's reach unbounded regardless
      // of the placed members' MBR: always a seam candidate.
      bool is_interior = !has_boundless && !mbr.IsEmpty();
      if (is_interior) {
        is_interior =
            (ci == 0 || mbr.x_lo() > x_lo) &&
            (ci == cells_x - 1 || mbr.x_hi() < x_hi) &&
            (cj == 0 || mbr.y_lo() > y_lo) &&
            (cj == cells_y - 1 || mbr.y_hi() < y_hi);
      }
      if (is_interior) {
        interior.push_back(std::move(group));
        interior_shard.push_back(static_cast<int32_t>(s));
      } else {
        ++stats.seam_groups;
        seam_start.push_back(std::move(group));
      }
    }
    result.shards.push_back(stats);
  }
  result.seam_groups_in = seam_start.size();

  // --- Boundary pass: greedy pair-merge over the seam groups only,
  // against the full context (so cross-shard statistics come from the
  // same memo the final costing uses). Interior groups are untouched.
  if (seam_start.size() > 1) {
    CanonicalizePartition(&seam_start);
    const PairMerger seam_merger(/*use_heap=*/true, options_.pruning);
    const size_t groups_in = seam_start.size();
    obs::ScopedSpan seam_span("plan/seam");
    MergeOutcome seam =
        seam_merger.MergeFrom(ctx, model, std::move(seam_start));
    result.seam_merges = groups_in - seam.partition.size();
    result.outcome.candidates += seam.candidates;
    result.outcome.bounds_refined += seam.bounds_refined;
    result.outcome.bounds_pruned += seam.bounds_pruned;
    for (QueryGroup& group : seam.partition) {
      interior.push_back(std::move(group));
      interior_shard.push_back(ShardedMergeOutcome::kSeamGroup);
    }
  } else {
    for (QueryGroup& group : seam_start) {
      interior.push_back(std::move(group));
      interior_shard.push_back(ShardedMergeOutcome::kSeamGroup);
    }
  }

  CanonicalizeLabeled(&interior, &interior_shard);
  result.outcome.partition = std::move(interior);
  result.group_shard = std::move(interior_shard);
  result.outcome.cost = model.PartitionCost(ctx, result.outcome.partition);

  if (obs::Enabled()) {
    obs::SetGauge("plan.shard.count",
                  static_cast<double>(result.shards.size()));
    obs::SetGauge("plan.shard.seam_groups",
                  static_cast<double>(result.seam_groups_in));
    obs::SetGauge("plan.shard.seam_merges",
                  static_cast<double>(result.seam_merges));
    obs::SetGauge("plan.shard.groups",
                  static_cast<double>(result.outcome.partition.size()));
  }
  return result;
}

}  // namespace qsp
