#include "merge/pair_merger.h"

#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/metrics.h"

namespace qsp {
namespace {

/// One profit-table entry: the benefit of merging live groups a and b.
struct ProfitEntry {
  double benefit;
  size_t a;
  size_t b;
  bool operator<(const ProfitEntry& other) const {
    // Max-heap on benefit; equal benefits rank the smaller (a, b) first.
    // The tie-break must come from the stable group ids — never from
    // push order, which is a scheduling artifact — so the heap variant
    // picks the same pair as the table variant's ordered scan and the
    // chosen merge sequence is reproducible run to run.
    if (benefit != other.benefit) return benefit < other.benefit;
    if (a != other.a) return a > other.a;
    return b > other.b;
  }
};

}  // namespace

std::vector<double> PairMerger::EvaluatePairBenefits(
    const MergeContext& ctx, const CostModel& model,
    const std::vector<QueryGroup>& groups,
    const std::vector<double>& group_cost,
    const std::vector<std::pair<size_t, size_t>>& pairs) {
  // The profit-table kernel: each pair is independent, so the evaluations
  // fan out across the exec pool; result k always belongs to pairs[k], so
  // the output is identical for any thread count (with threads=1 this is
  // the plain serial loop, in the same evaluation order as ever).
  return exec::ParallelMap<double>(pairs.size(), [&](size_t k) {
    const auto& [i, j] = pairs[k];
    const QueryGroup merged = UnionGroups(groups[i], groups[j]);
    return group_cost[i] + group_cost[j] - model.GroupCost(ctx, merged);
  });
}

MergeOutcome PairMerger::MergeFrom(const MergeContext& ctx,
                                   const CostModel& model,
                                   Partition start) const {
  MergeOutcome outcome;
  uint64_t merges_applied = 0;
  uint64_t stale_heap_pops = 0;
  std::vector<QueryGroup> groups = std::move(start);
  std::vector<bool> alive(groups.size(), true);
  std::vector<double> group_cost(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    group_cost[i] = model.GroupCost(ctx, groups[i]);
  }

  // Profit Table: benefit of merging each live pair. The map variant is
  // the paper's table; the heap variant keeps the same values in a lazy
  // priority queue.
  std::map<std::pair<size_t, size_t>, double> table;
  std::priority_queue<ProfitEntry> heap;

  auto record_benefit = [&](size_t i, size_t j, double benefit) {
    if (use_heap_) {
      if (benefit > 0) heap.push({benefit, i, j});
    } else {
      table[{i, j}] = benefit;
    }
  };

  // Benefits are evaluated in bulk (parallel across the exec pool), then
  // recorded serially in ascending (i, j) order, so heap and table
  // contents never depend on scheduling.
  std::vector<std::pair<size_t, size_t>> pending;
  auto flush_pending = [&] {
    const std::vector<double> benefits =
        EvaluatePairBenefits(ctx, model, groups, group_cost, pending);
    outcome.candidates += pending.size();
    for (size_t k = 0; k < pending.size(); ++k) {
      record_benefit(pending[k].first, pending[k].second, benefits[k]);
    }
    pending.clear();
  };

  for (size_t i = 0; i < groups.size(); ++i) {
    if (!alive[i]) continue;
    for (size_t j = i + 1; j < groups.size(); ++j) {
      if (alive[j]) pending.emplace_back(i, j);
    }
  }
  flush_pending();

  while (true) {
    size_t best_a = 0, best_b = 0;
    double best_benefit = 0.0;
    if (use_heap_) {
      // Pop until a live, still-accurate entry surfaces. Entries are
      // immutable once pushed; merging marks groups dead, which
      // invalidates their entries lazily — every entry whose endpoints
      // are both alive is accurate, because a group's cost never changes
      // after creation (merges only create fresh indices).
      bool found = false;
      while (!heap.empty()) {
        const ProfitEntry top = heap.top();
        heap.pop();
        if (!alive[top.a] || !alive[top.b]) {
          ++stale_heap_pops;
          continue;
        }
        best_a = top.a;
        best_b = top.b;
        best_benefit = top.benefit;
        found = true;
        break;
      }
      if (!found) break;
    } else {
      // std::map iterates keys in ascending (i, j) order, so the strict
      // `>` keeps the smallest pair among equal benefits — the same
      // stable-id tie-break as the heap comparator above.
      for (const auto& [pair, benefit] : table) {
        if (benefit > best_benefit) {
          best_benefit = benefit;
          best_a = pair.first;
          best_b = pair.second;
        }
      }
      if (best_benefit <= 0.0) break;
    }

    // Merge best_a and best_b into a fresh group.
    ++merges_applied;
    QueryGroup merged = UnionGroups(groups[best_a], groups[best_b]);
    alive[best_a] = false;
    alive[best_b] = false;
    if (!use_heap_) {
      // Entries referencing the two dead groups are erased eagerly, so
      // the table never carries stale rows into the next argmax.
      for (auto it = table.begin(); it != table.end();) {
        const auto& [i, j] = it->first;
        if (i == best_a || i == best_b || j == best_a || j == best_b) {
          it = table.erase(it);
        } else {
          ++it;
        }
      }
    }
    const size_t new_index = groups.size();
    groups.push_back(std::move(merged));
    alive.push_back(true);
    group_cost.push_back(model.GroupCost(ctx, groups[new_index]));
    for (size_t i = 0; i < new_index; ++i) {
      if (alive[i]) pending.emplace_back(i, new_index);
    }
    flush_pending();
  }

  for (size_t i = 0; i < groups.size(); ++i) {
    if (alive[i]) outcome.partition.push_back(groups[i]);
  }
  CanonicalizePartition(&outcome.partition);
  outcome.cost = model.PartitionCost(ctx, outcome.partition);
  obs::Count("merge.pair-merging.merges_applied", merges_applied);
  obs::Count("merge.pair-merging.stale_heap_pops", stale_heap_pops);
  return outcome;
}

Result<MergeOutcome> PairMerger::DoMerge(const MergeContext& ctx,
                                         const CostModel& model) const {
  return MergeFrom(ctx, model, SingletonPartition(ctx.num_queries()));
}

}  // namespace qsp
