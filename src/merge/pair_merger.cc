#include "merge/pair_merger.h"

#include <algorithm>
#include <map>
#include <queue>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "geom/spatial_grid.h"
#include "merge/plan_bounds.h"
#include "obs/metrics.h"

namespace qsp {
namespace {

/// One profit-table entry: the benefit of merging live groups a and b.
struct ProfitEntry {
  double benefit;
  size_t a;
  size_t b;
  bool operator<(const ProfitEntry& other) const {
    // Max-heap on benefit; equal benefits rank the smaller (a, b) first.
    // The tie-break must come from the stable group ids — never from
    // push order, which is a scheduling artifact — so the heap variant
    // picks the same pair as the table variant's ordered scan and the
    // chosen merge sequence is reproducible run to run.
    if (benefit != other.benefit) return benefit < other.benefit;
    if (a != other.a) return a > other.a;
    return b > other.b;
  }
};

/// Pruned-path heap entry: `benefit` is the exact merge benefit when
/// `exact`, else an admissible upper bound on it. The ordering is the
/// same as ProfitEntry's, which is what makes lazy refinement exact:
/// when an exact entry surfaces at the top, every other live pair's
/// entry — bound or exact — carries a key >= its true benefit, so no
/// other pair can beat the popped one, and among equal benefits the
/// stable-id tie-break still ranks the smallest pair first (an
/// equal-valued bound of a smaller pair would have surfaced and been
/// refined before this pop).
struct BoundedEntry {
  double benefit;
  size_t a;
  size_t b;
  bool exact;
  bool operator<(const BoundedEntry& other) const {
    if (benefit != other.benefit) return benefit < other.benefit;
    if (a != other.a) return a > other.a;
    return b > other.b;
  }
};

}  // namespace

std::vector<double> PairMerger::EvaluatePairBenefits(
    const MergeContext& ctx, const CostModel& model,
    const std::vector<QueryGroup>& groups,
    const std::vector<double>& group_cost,
    const std::vector<std::pair<size_t, size_t>>& pairs) {
  // The profit-table kernel: each pair is independent, so the evaluations
  // fan out across the exec pool; result k always belongs to pairs[k], so
  // the output is identical for any thread count (with threads=1 this is
  // the plain serial loop, in the same evaluation order as ever).
  return exec::ParallelMap<double>(pairs.size(), [&](size_t k) {
    const auto& [i, j] = pairs[k];
    const QueryGroup merged = UnionGroups(groups[i], groups[j]);
    return group_cost[i] + group_cost[j] - model.GroupCost(ctx, merged);
  });
}

MergeOutcome PairMerger::MergeFrom(const MergeContext& ctx,
                                   const CostModel& model,
                                   Partition start) const {
  if (pruning_ && model.SupportsBenefitBounds()) {
    return MergeFromPruned(ctx, model, std::move(start));
  }
  MergeOutcome outcome;
  uint64_t merges_applied = 0;
  uint64_t stale_heap_pops = 0;
  std::vector<QueryGroup> groups = std::move(start);
  std::vector<bool> alive(groups.size(), true);
  std::vector<double> group_cost(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    group_cost[i] = model.GroupCost(ctx, groups[i]);
  }

  // Profit Table: benefit of merging each live pair. The map variant is
  // the paper's table; the heap variant keeps the same values in a lazy
  // priority queue.
  std::map<std::pair<size_t, size_t>, double> table;
  std::priority_queue<ProfitEntry> heap;

  auto record_benefit = [&](size_t i, size_t j, double benefit) {
    if (use_heap_) {
      if (benefit > 0) heap.push({benefit, i, j});
    } else {
      table[{i, j}] = benefit;
    }
  };

  // Benefits are evaluated in bulk (parallel across the exec pool), then
  // recorded serially in ascending (i, j) order, so heap and table
  // contents never depend on scheduling.
  std::vector<std::pair<size_t, size_t>> pending;
  auto flush_pending = [&] {
    const std::vector<double> benefits =
        EvaluatePairBenefits(ctx, model, groups, group_cost, pending);
    outcome.candidates += pending.size();
    for (size_t k = 0; k < pending.size(); ++k) {
      record_benefit(pending[k].first, pending[k].second, benefits[k]);
    }
    pending.clear();
  };

  for (size_t i = 0; i < groups.size(); ++i) {
    if (!alive[i]) continue;
    for (size_t j = i + 1; j < groups.size(); ++j) {
      if (alive[j]) pending.emplace_back(i, j);
    }
  }
  flush_pending();

  while (true) {
    size_t best_a = 0, best_b = 0;
    double best_benefit = 0.0;
    if (use_heap_) {
      // Pop until a live, still-accurate entry surfaces. Entries are
      // immutable once pushed; merging marks groups dead, which
      // invalidates their entries lazily — every entry whose endpoints
      // are both alive is accurate, because a group's cost never changes
      // after creation (merges only create fresh indices).
      bool found = false;
      while (!heap.empty()) {
        const ProfitEntry top = heap.top();
        heap.pop();
        if (!alive[top.a] || !alive[top.b]) {
          ++stale_heap_pops;
          continue;
        }
        best_a = top.a;
        best_b = top.b;
        best_benefit = top.benefit;
        found = true;
        break;
      }
      if (!found) break;
    } else {
      // std::map iterates keys in ascending (i, j) order, so the strict
      // `>` keeps the smallest pair among equal benefits — the same
      // stable-id tie-break as the heap comparator above.
      for (const auto& [pair, benefit] : table) {
        if (benefit > best_benefit) {
          best_benefit = benefit;
          best_a = pair.first;
          best_b = pair.second;
        }
      }
      if (best_benefit <= 0.0) break;
    }

    // Merge best_a and best_b into a fresh group.
    ++merges_applied;
    QueryGroup merged = UnionGroups(groups[best_a], groups[best_b]);
    alive[best_a] = false;
    alive[best_b] = false;
    if (!use_heap_) {
      // Entries referencing the two dead groups are erased eagerly, so
      // the table never carries stale rows into the next argmax.
      for (auto it = table.begin(); it != table.end();) {
        const auto& [i, j] = it->first;
        if (i == best_a || i == best_b || j == best_a || j == best_b) {
          it = table.erase(it);
        } else {
          ++it;
        }
      }
    }
    const size_t new_index = groups.size();
    groups.push_back(std::move(merged));
    alive.push_back(true);
    group_cost.push_back(model.GroupCost(ctx, groups[new_index]));
    for (size_t i = 0; i < new_index; ++i) {
      if (alive[i]) pending.emplace_back(i, new_index);
    }
    flush_pending();
  }

  for (size_t i = 0; i < groups.size(); ++i) {
    if (alive[i]) outcome.partition.push_back(groups[i]);
  }
  CanonicalizePartition(&outcome.partition);
  outcome.cost = model.PartitionCost(ctx, outcome.partition);
  obs::Count("merge.pair-merging.merges_applied", merges_applied);
  obs::Count("merge.pair-merging.stale_heap_pops", stale_heap_pops);
  return outcome;
}

MergeOutcome PairMerger::MergeFromPruned(const MergeContext& ctx,
                                         const CostModel& model,
                                         Partition start) const {
  // The accelerated greedy loop (DESIGN.md §8). Differences from the
  // exhaustive path above, none of which change the output:
  //  * candidate pairs come from a SpatialGrid over group bounding boxes
  //    — pairs outside a group's search window provably have a
  //    non-positive benefit bound, and the exhaustive path never applies
  //    non-positive merges;
  //  * the heap holds admissible upper bounds; popping a bound refines
  //    it to the exact benefit (the identical arithmetic expression the
  //    exhaustive path evaluates) and re-pushes, so only pairs whose
  //    bound ever reaches the global top pay an exact GroupCost;
  //  * refinement is inherently one-at-a-time, so this path does not use
  //    the exec pool — its output is trivially thread-count-invariant.
  MergeOutcome outcome;
  uint64_t merges_applied = 0;
  uint64_t stale_heap_pops = 0;
  uint64_t& bounds_pruned = outcome.bounds_pruned;
  uint64_t& bounds_refined = outcome.bounds_refined;
  const plan::BenefitBounder bounder(ctx, model);
  std::vector<QueryGroup> groups = std::move(start);
  std::vector<bool> alive(groups.size(), true);
  std::vector<double> group_cost(groups.size());
  std::vector<plan::GroupSummary> summaries(groups.size());
  double max_cost = 0.0;
  for (size_t i = 0; i < groups.size(); ++i) {
    summaries[i] = bounder.Summarize(groups[i]);
    group_cost[i] = summaries[i].cost;
    max_cost = std::max(max_cost, summaries[i].cost);
  }

  std::vector<Rect> bboxes(groups.size());
  for (size_t i = 0; i < groups.size(); ++i) bboxes[i] = summaries[i].bbox;
  SpatialGrid grid = SpatialGrid::ForRects(bboxes);
  for (size_t i = 0; i < groups.size(); ++i) {
    grid.Insert(static_cast<uint32_t>(i), bboxes[i]);
  }

  std::priority_queue<BoundedEntry> heap;
  size_t live_count = groups.size();

  // Bounds the pairs (i, j) for every live candidate j != i drawn from
  // i's search window, keeping only j `above` (j > i at seeding, where
  // the loop covers each unordered pair once from its smaller side; the
  // fresh group is the largest index, so incremental re-pairing passes
  // above = false and bounds (j, i) instead). Pairs skipped by the
  // window or by a non-positive bound are counted against `possible`,
  // the number of live partners an exhaustive scan would have evaluated.
  std::vector<uint32_t> cands;
  auto bound_pairs_of = [&](size_t i, bool above, size_t possible) {
    cands.clear();
    grid.Query(bounder.SearchWindow(summaries[i], max_cost), &cands);
    size_t considered = 0;
    for (uint32_t j : cands) {
      if (j == i || !alive[j]) continue;
      if (above && j < i) continue;
      ++considered;
      const size_t lo = std::min<size_t>(i, j);
      const size_t hi = std::max<size_t>(i, j);
      const double ub = bounder.UpperBound(summaries[lo], summaries[hi]);
      if (ub > 0.0) {
        heap.push({ub, lo, hi, false});
      } else {
        ++bounds_pruned;
      }
    }
    bounds_pruned += possible - considered;
  };

  {
    // Seed every unordered live pair from its smaller index's window.
    size_t live_above = live_count;
    for (size_t i = 0; i < groups.size(); ++i) {
      if (!alive[i]) continue;
      --live_above;
      bound_pairs_of(i, /*above=*/true, /*possible=*/live_above);
    }
  }

  while (true) {
    size_t best_a = 0, best_b = 0;
    double best_benefit = 0.0;
    bool found = false;
    while (!heap.empty()) {
      const BoundedEntry top = heap.top();
      heap.pop();
      if (!alive[top.a] || !alive[top.b]) {
        ++stale_heap_pops;
        continue;
      }
      if (!top.exact) {
        // Refine: the exact expression is the one EvaluatePairBenefits
        // uses, so the refined value is bit-identical to the exhaustive
        // table's. Non-positive exact benefits are dropped, exactly as
        // record_benefit drops them.
        ++bounds_refined;
        ++outcome.candidates;
        const QueryGroup merged = UnionGroups(groups[top.a], groups[top.b]);
        const double benefit =
            group_cost[top.a] + group_cost[top.b] - model.GroupCost(ctx, merged);
        if (benefit > 0.0) heap.push({benefit, top.a, top.b, true});
        continue;
      }
      best_a = top.a;
      best_b = top.b;
      best_benefit = top.benefit;
      found = true;
      break;
    }
    if (!found) break;
    (void)best_benefit;

    ++merges_applied;
    QueryGroup merged = UnionGroups(groups[best_a], groups[best_b]);
    alive[best_a] = false;
    alive[best_b] = false;
    grid.Remove(static_cast<uint32_t>(best_a), summaries[best_a].bbox);
    grid.Remove(static_cast<uint32_t>(best_b), summaries[best_b].bbox);
    --live_count;
    const size_t new_index = groups.size();
    groups.push_back(std::move(merged));
    alive.push_back(true);
    summaries.push_back(bounder.Summarize(groups[new_index]));
    group_cost.push_back(summaries[new_index].cost);
    max_cost = std::max(max_cost, summaries[new_index].cost);
    grid.Insert(static_cast<uint32_t>(new_index), summaries[new_index].bbox);
    bound_pairs_of(new_index, /*above=*/false, /*possible=*/live_count - 1);
  }

  for (size_t i = 0; i < groups.size(); ++i) {
    if (alive[i]) outcome.partition.push_back(groups[i]);
  }
  CanonicalizePartition(&outcome.partition);
  outcome.cost = model.PartitionCost(ctx, outcome.partition);
  obs::Count("merge.pair-merging.merges_applied", merges_applied);
  obs::Count("merge.pair-merging.stale_heap_pops", stale_heap_pops);
  obs::Count("plan.bounds.pruned", bounds_pruned);
  obs::Count("plan.bounds.refined", bounds_refined);
  return outcome;
}

Result<MergeOutcome> PairMerger::DoMerge(const MergeContext& ctx,
                                         const CostModel& model) const {
  return MergeFrom(ctx, model, SingletonPartition(ctx.num_queries()));
}

}  // namespace qsp
