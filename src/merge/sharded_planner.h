#ifndef QSP_MERGE_SHARDED_PLANNER_H_
#define QSP_MERGE_SHARDED_PLANNER_H_

#include <cstdint>
#include <vector>

#include "cost/cost_model.h"
#include "merge/merger.h"
#include "query/merge_context.h"
#include "query/query.h"
#include "util/status.h"

namespace qsp {

/// Per-shard accounting of one sharded planning pass. Everything here is
/// deterministic in the input (wall times go through obs telemetry, not
/// through this struct, so outcomes stay byte-comparable across runs).
struct ShardStats {
  /// Row-major cell index of the shard in the partitioning grid.
  int shard = 0;
  size_t queries = 0;
  /// Groups the shard-local merge produced (before the seam pass).
  size_t groups = 0;
  /// Shard-local partition cost under the model.
  double cost = 0.0;
  /// Of the shard's groups, how many were classified seam-touching and
  /// handed to the boundary pass.
  size_t seam_groups = 0;
};

/// Result of ShardedPlanner::Plan: the standard MergeOutcome plus the
/// shard attribution EXPLAIN and the benches consume.
struct ShardedMergeOutcome {
  /// Attribution value for groups (re)formed by the boundary pass.
  static constexpr int32_t kSeamGroup = -1;

  MergeOutcome outcome;
  /// Parallel to outcome.partition: the shard that produced each group,
  /// or kSeamGroup for groups that went through the boundary pass.
  std::vector<int32_t> group_shard;
  /// One entry per non-empty shard, ascending by shard index.
  std::vector<ShardStats> shards;
  /// Partitioning grid actually used (1x1 when the planner delegated).
  int cells_x = 1;
  int cells_y = 1;
  /// Groups entering the boundary pass, and how many merges it applied
  /// (groups in minus groups out).
  size_t seam_groups_in = 0;
  size_t seam_merges = 0;
};

/// Sharded parallel planning (DESIGN.md §12): partitions the object
/// space into a grid of shards, assigns each query to the shard holding
/// its rectangle's center, plans every shard independently with the
/// wrapped inner merger (shards fan out across the qsp::exec pool; the
/// inner merger's own parallel loops degrade serially inside workers),
/// then reconciles across shards with a boundary pass — a greedy
/// pair-merge restricted to groups whose MBRs touch a shard seam, the
/// only groups that can profitably merge with a neighbor shard's work.
///
/// shards <= 1 delegates to the inner merger outright: same call, same
/// context, byte-identical partition and cost. Multi-shard plans are a
/// deterministic function of (queries, model, shards) for every thread
/// count: shard assignment is arithmetic, per-shard merges are
/// independent, and the seam pass runs serially over a canonically
/// ordered start.
///
/// Does not own the inner merger; it must outlive the planner.
class ShardedPlanner {
 public:
  struct Options {
    /// Target shard count; the grid is cx x cy with cx*cy as close to
    /// this as floor(sqrt) allows, capped at the query count.
    int shards = 1;
    /// Pruning for the boundary-pass pair merger (the inner merger
    /// carries its own pruning configuration).
    bool pruning = true;
  };

  ShardedPlanner(const Merger* inner, Options options);

  /// Plans all queries in `ctx` under `model`. Errors propagate from the
  /// inner merger (first failing shard in index order wins).
  Result<ShardedMergeOutcome> Plan(const MergeContext& ctx,
                                   const CostModel& model) const;

 private:
  const Merger* inner_;
  Options options_;
};

}  // namespace qsp

#endif  // QSP_MERGE_SHARDED_PLANNER_H_
