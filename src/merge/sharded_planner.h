#ifndef QSP_MERGE_SHARDED_PLANNER_H_
#define QSP_MERGE_SHARDED_PLANNER_H_

#include <cstdint>
#include <vector>

#include "cost/cost_model.h"
#include "merge/merger.h"
#include "merge/shard_assign.h"
#include "query/merge_context.h"
#include "util/status.h"

namespace qsp {

/// Per-shard accounting of one sharded planning pass. Everything here is
/// deterministic in the input (wall times go through obs telemetry, not
/// through this struct, so outcomes stay byte-comparable across runs).
struct ShardStats {
  /// Shard id: row-major cell index under grid assignment, bisection
  /// leaf id under balanced assignment.
  int shard = 0;
  size_t queries = 0;
  /// Groups the shard-local merge produced (before the seam pass).
  size_t groups = 0;
  /// Shard-local partition cost under the model.
  double cost = 0.0;
  /// Estimated planning cost from the assignment weights — what the
  /// scheduler ordered by and the imbalance gauge is computed from.
  double est_cost = 0.0;
  /// Of the shard's groups, how many were classified seam-touching and
  /// handed to the boundary pass.
  size_t seam_groups = 0;
};

/// Result of ShardedPlanner::Plan: the standard MergeOutcome plus the
/// shard attribution EXPLAIN and the benches consume.
struct ShardedMergeOutcome {
  /// Attribution value for groups (re)formed by the boundary pass.
  static constexpr int32_t kSeamGroup = -1;

  MergeOutcome outcome;
  /// Parallel to outcome.partition: the shard that produced each group,
  /// or kSeamGroup for groups that went through the boundary pass.
  std::vector<int32_t> group_shard;
  /// One entry per non-empty shard, ascending by shard index.
  std::vector<ShardStats> shards;
  /// Full shard assignment (boxes, costs, cut tree) — what EXPLAIN and
  /// the scaling bench render. Default-constructed (num_shards == 1,
  /// empty shard_of) when the planner delegated.
  ShardLayout layout;
  /// layout.Imbalance(), surfaced so benches read it without obs:
  /// largest shard estimated cost over the per-shard mean (0 when
  /// delegated).
  double imbalance = 0.0;
  /// Partitioning grid actually used (1x1 when the planner delegated or
  /// assignment is balanced — the cut tree is in `layout` then).
  int cells_x = 1;
  int cells_y = 1;
  /// Groups entering the boundary pass, and how many merges it applied
  /// (groups in minus groups out).
  size_t seam_groups_in = 0;
  size_t seam_merges = 0;
};

/// Sharded parallel planning (DESIGN.md §12–§13): partitions the object
/// space into shards — a fixed grid or cost-balanced recursive
/// bisection (merge/shard_assign) — assigns each query by rectangle
/// center, plans every shard independently with the wrapped inner
/// merger (shards fan out across the qsp::exec pool largest estimated
/// cost first, so the heaviest shard never trails an otherwise-drained
/// pool; the inner merger's own parallel loops degrade serially inside
/// workers), then reconciles across shards with a boundary pass — a
/// greedy pair-merge restricted to groups whose MBRs touch a shard
/// seam (a grid cell edge or a bisection cut line that faces a
/// neighbor), the only groups that can profitably merge with a
/// neighbor shard's work.
///
/// shards <= 1 delegates to the inner merger outright: same call, same
/// context, byte-identical partition and cost. Multi-shard plans are a
/// deterministic function of (queries, model, shards, assign) for every
/// thread count: shard assignment is serial arithmetic, per-shard
/// merges are independent (scheduling order changes wall-clock, never
/// results), and the seam pass runs serially over a canonically ordered
/// start.
///
/// Does not own the inner merger; it must outlive the planner.
class ShardedPlanner {
 public:
  struct Options {
    /// Target shard count, capped at the query count. Grid assignment
    /// rounds to cx x cy via floor(sqrt); balanced assignment treats it
    /// as a budget and may stop short where cutting finer than the
    /// rects are wide would only manufacture seam work (see
    /// ShardLayout::num_shards).
    int shards = 1;
    /// How queries map to shards. Balanced is the default: on clustered
    /// workloads the grid is skew-bound (one cell inherits a whole
    /// cluster), while balanced splits by estimated planning cost.
    ShardAssign assign = ShardAssign::kBalanced;
    /// Pruning for the boundary-pass pair merger (the inner merger
    /// carries its own pruning configuration).
    bool pruning = true;
  };

  ShardedPlanner(const Merger* inner, Options options);

  /// Plans all queries in `ctx` under `model`. Errors propagate from the
  /// inner merger (first failing shard in index order wins).
  Result<ShardedMergeOutcome> Plan(const MergeContext& ctx,
                                   const CostModel& model) const;

 private:
  const Merger* inner_;
  Options options_;
};

}  // namespace qsp

#endif  // QSP_MERGE_SHARDED_PLANNER_H_
