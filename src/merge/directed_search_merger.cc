#include "merge/directed_search_merger.h"

#include <algorithm>
#include <limits>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "geom/spatial_grid.h"
#include "merge/plan_bounds.h"
#include "obs/metrics.h"
#include "util/float_compare.h"
#include "util/rng.h"

namespace qsp {
namespace {

/// Uniform random assignment of queries to up to n blocks (not uniform
/// over set partitions, but a cheap scattering start as the paper's
/// "random state").
Partition RandomPartition(size_t n, Rng* rng) {
  Partition groups(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t block =
        static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
    groups[block].push_back(static_cast<QueryId>(i));
  }
  CanonicalizePartition(&groups);
  return groups;
}

/// Search-effort counters of one restart, flushed into the obs registry
/// by DoMerge (locals are free; registry lookups are not).
struct DescentCounters {
  uint64_t iterations = 0;
  uint64_t accepted_merges = 0;
  uint64_t accepted_extracts = 0;
  /// Merge candidates skipped by the benefit bound (pruned mode only).
  uint64_t bounds_pruned = 0;
  /// Merge candidates whose bound survived and were evaluated exactly.
  uint64_t bounds_refined = 0;
};

/// Steepest-descent to a local minimum; returns the local cost and the
/// number of candidate moves evaluated. A non-null `bounder` prunes the
/// merge-move scan: a pair whose admissible upper bound cannot beat the
/// running best delta (or pass the improvement filter) is skipped without
/// an exact evaluation — it could never have been selected, so the chosen
/// move (same i-then-ascending-j scan order, same strict-> argmax) is
/// identical to the exhaustive scan's.
double Descend(const MergeContext& ctx, const CostModel& model,
               Partition* partition, uint64_t* candidates,
               DescentCounters* counters,
               const plan::BenefitBounder* bounder) {
  double cost = model.PartitionCost(ctx, *partition);
  std::vector<uint32_t> cands;
  while (true) {
    ++counters->iterations;
    double best_delta = 0.0;
    enum class Kind { kNone, kMerge, kExtract };
    Kind best_kind = Kind::kNone;
    size_t best_i = 0, best_j = 0;
    QueryId best_q = 0;

    // Merge moves.
    if (bounder != nullptr) {
      // Summaries and grid are rebuilt per step: every accepted move
      // reshapes the partition, and group costs are memoized so the
      // rebuild is O(p) cheap lookups.
      const size_t p = partition->size();
      std::vector<plan::GroupSummary> sums(p);
      std::vector<Rect> bboxes(p);
      double max_cost = 0.0;
      for (size_t i = 0; i < p; ++i) {
        sums[i] = bounder->Summarize((*partition)[i]);
        bboxes[i] = sums[i].bbox;
        max_cost = std::max(max_cost, sums[i].cost);
      }
      SpatialGrid grid = SpatialGrid::ForRects(bboxes);
      for (size_t i = 0; i < p; ++i) {
        grid.Insert(static_cast<uint32_t>(i), bboxes[i]);
      }
      for (size_t i = 0; i < p; ++i) {
        cands.clear();
        grid.Query(bounder->SearchWindow(sums[i], max_cost), &cands);
        for (uint32_t j : cands) {
          if (j <= i) continue;
          const double ub = bounder->UpperBound(sums[i], sums[j]);
          if (ub <= best_delta || !IsImprovement(ub, cost)) {
            ++counters->bounds_pruned;
            continue;
          }
          ++counters->bounds_refined;
          ++*candidates;
          const double delta =
              model.MergeBenefit(ctx, (*partition)[i], (*partition)[j]);
          if (delta > best_delta && IsImprovement(delta, cost)) {
            best_delta = delta;
            best_kind = Kind::kMerge;
            best_i = i;
            best_j = j;
          }
        }
      }
    } else {
      for (size_t i = 0; i < partition->size(); ++i) {
        for (size_t j = i + 1; j < partition->size(); ++j) {
          ++*candidates;
          const double delta =
              model.MergeBenefit(ctx, (*partition)[i], (*partition)[j]);
          // IsImprovement filters rounding-level "gains" that would make
          // a merge and its inverse extract move both look beneficial.
          if (delta > best_delta && IsImprovement(delta, cost)) {
            best_delta = delta;
            best_kind = Kind::kMerge;
            best_i = i;
            best_j = j;
          }
        }
      }
    }
    // Extract moves: pull one query out of a multi-query group.
    for (size_t i = 0; i < partition->size(); ++i) {
      const QueryGroup& group = (*partition)[i];
      if (group.size() < 2) continue;
      const double group_cost = model.GroupCost(ctx, group);
      for (QueryId q : group) {
        ++*candidates;
        QueryGroup rest;
        rest.reserve(group.size() - 1);
        for (QueryId other : group) {
          if (other != q) rest.push_back(other);
        }
        const double delta = group_cost - model.GroupCost(ctx, rest) -
                             model.GroupCost(ctx, {q});
        if (delta > best_delta && IsImprovement(delta, cost)) {
          best_delta = delta;
          best_kind = Kind::kExtract;
          best_i = i;
          best_q = q;
        }
      }
    }

    if (best_kind == Kind::kNone) return cost;
    if (best_kind == Kind::kMerge) {
      ++counters->accepted_merges;
      QueryGroup merged =
          UnionGroups((*partition)[best_i], (*partition)[best_j]);
      partition->erase(partition->begin() +
                       static_cast<ptrdiff_t>(best_j));
      (*partition)[best_i] = std::move(merged);
    } else {
      ++counters->accepted_extracts;
      QueryGroup& group = (*partition)[best_i];
      QueryGroup rest;
      for (QueryId other : group) {
        if (other != best_q) rest.push_back(other);
      }
      group = std::move(rest);
      partition->push_back({best_q});
    }
    cost -= best_delta;
  }
}

}  // namespace

Result<MergeOutcome> DirectedSearchMerger::DoMerge(
    const MergeContext& ctx, const CostModel& model) const {
  const size_t n = ctx.num_queries();
  MergeOutcome best;
  best.cost = std::numeric_limits<double>::infinity();
  if (n == 0) {
    best.cost = 0.0;
    return best;
  }
  // Restart 0 descends from the no-merging state; later restarts from
  // random scatters. All starts are drawn up front from the single seeded
  // stream (the draw order never depends on how descents are scheduled),
  // then the independent descents fan out across the exec pool.
  const plan::BenefitBounder bounder(ctx, model);
  const plan::BenefitBounder* bounder_ptr =
      pruning_ && bounder.enabled() ? &bounder : nullptr;
  Rng rng(seed_);
  const size_t restarts = static_cast<size_t>(restarts_);
  std::vector<Partition> starts(restarts);
  for (size_t t = 0; t < restarts; ++t) {
    starts[t] = (t == 0) ? SingletonPartition(n) : RandomPartition(n, &rng);
  }

  struct RestartResult {
    Partition partition;
    double cost = 0.0;
    uint64_t candidates = 0;
    DescentCounters counters;
  };
  std::vector<RestartResult> results =
      exec::ParallelMap<RestartResult>(restarts, [&](size_t t) {
        RestartResult result;
        result.partition = std::move(starts[t]);
        result.cost = Descend(ctx, model, &result.partition,
                              &result.candidates, &result.counters,
                              bounder_ptr);
        return result;
      });

  // Reduce in restart order with a strict `<`: the earliest restart wins
  // cost ties, exactly as the sequential loop did — the fixed tie-break
  // that keeps the outcome identical for any thread count.
  DescentCounters counters;
  for (RestartResult& result : results) {
    best.candidates += result.candidates;
    counters.iterations += result.counters.iterations;
    counters.accepted_merges += result.counters.accepted_merges;
    counters.accepted_extracts += result.counters.accepted_extracts;
    counters.bounds_pruned += result.counters.bounds_pruned;
    counters.bounds_refined += result.counters.bounds_refined;
    if (result.cost < best.cost) {
      best.cost = result.cost;
      best.partition = std::move(result.partition);
    }
  }
  obs::Count("merge.directed-search.restarts",
             static_cast<uint64_t>(restarts_));
  obs::Count("merge.directed-search.descent_iterations",
             counters.iterations);
  obs::Count("merge.directed-search.accepted_merges",
             counters.accepted_merges);
  obs::Count("merge.directed-search.accepted_extracts",
             counters.accepted_extracts);
  obs::Count("plan.bounds.pruned", counters.bounds_pruned);
  obs::Count("plan.bounds.refined", counters.bounds_refined);
  best.bounds_pruned = counters.bounds_pruned;
  best.bounds_refined = counters.bounds_refined;
  CanonicalizePartition(&best.partition);
  best.cost = model.PartitionCost(ctx, best.partition);
  return best;
}

}  // namespace qsp
