#include "merge/directed_search_merger.h"

#include <limits>
#include <utility>
#include <vector>

#include "exec/thread_pool.h"
#include "obs/metrics.h"
#include "util/float_compare.h"
#include "util/rng.h"

namespace qsp {
namespace {

/// Uniform random assignment of queries to up to n blocks (not uniform
/// over set partitions, but a cheap scattering start as the paper's
/// "random state").
Partition RandomPartition(size_t n, Rng* rng) {
  Partition groups(n);
  for (size_t i = 0; i < n; ++i) {
    const size_t block =
        static_cast<size_t>(rng->UniformInt(0, static_cast<int64_t>(n) - 1));
    groups[block].push_back(static_cast<QueryId>(i));
  }
  CanonicalizePartition(&groups);
  return groups;
}

/// Search-effort counters of one restart, flushed into the obs registry
/// by DoMerge (locals are free; registry lookups are not).
struct DescentCounters {
  uint64_t iterations = 0;
  uint64_t accepted_merges = 0;
  uint64_t accepted_extracts = 0;
};

/// Steepest-descent to a local minimum; returns the local cost and the
/// number of candidate moves evaluated.
double Descend(const MergeContext& ctx, const CostModel& model,
               Partition* partition, uint64_t* candidates,
               DescentCounters* counters) {
  double cost = model.PartitionCost(ctx, *partition);
  while (true) {
    ++counters->iterations;
    double best_delta = 0.0;
    enum class Kind { kNone, kMerge, kExtract };
    Kind best_kind = Kind::kNone;
    size_t best_i = 0, best_j = 0;
    QueryId best_q = 0;

    // Merge moves.
    for (size_t i = 0; i < partition->size(); ++i) {
      for (size_t j = i + 1; j < partition->size(); ++j) {
        ++*candidates;
        const double delta =
            model.MergeBenefit(ctx, (*partition)[i], (*partition)[j]);
        // IsImprovement filters rounding-level "gains" that would make a
        // merge and its inverse extract move both look beneficial.
        if (delta > best_delta && IsImprovement(delta, cost)) {
          best_delta = delta;
          best_kind = Kind::kMerge;
          best_i = i;
          best_j = j;
        }
      }
    }
    // Extract moves: pull one query out of a multi-query group.
    for (size_t i = 0; i < partition->size(); ++i) {
      const QueryGroup& group = (*partition)[i];
      if (group.size() < 2) continue;
      const double group_cost = model.GroupCost(ctx, group);
      for (QueryId q : group) {
        ++*candidates;
        QueryGroup rest;
        rest.reserve(group.size() - 1);
        for (QueryId other : group) {
          if (other != q) rest.push_back(other);
        }
        const double delta = group_cost - model.GroupCost(ctx, rest) -
                             model.GroupCost(ctx, {q});
        if (delta > best_delta && IsImprovement(delta, cost)) {
          best_delta = delta;
          best_kind = Kind::kExtract;
          best_i = i;
          best_q = q;
        }
      }
    }

    if (best_kind == Kind::kNone) return cost;
    if (best_kind == Kind::kMerge) {
      ++counters->accepted_merges;
      QueryGroup merged =
          UnionGroups((*partition)[best_i], (*partition)[best_j]);
      partition->erase(partition->begin() +
                       static_cast<ptrdiff_t>(best_j));
      (*partition)[best_i] = std::move(merged);
    } else {
      ++counters->accepted_extracts;
      QueryGroup& group = (*partition)[best_i];
      QueryGroup rest;
      for (QueryId other : group) {
        if (other != best_q) rest.push_back(other);
      }
      group = std::move(rest);
      partition->push_back({best_q});
    }
    cost -= best_delta;
  }
}

}  // namespace

Result<MergeOutcome> DirectedSearchMerger::DoMerge(
    const MergeContext& ctx, const CostModel& model) const {
  const size_t n = ctx.num_queries();
  MergeOutcome best;
  best.cost = std::numeric_limits<double>::infinity();
  if (n == 0) {
    best.cost = 0.0;
    return best;
  }
  // Restart 0 descends from the no-merging state; later restarts from
  // random scatters. All starts are drawn up front from the single seeded
  // stream (the draw order never depends on how descents are scheduled),
  // then the independent descents fan out across the exec pool.
  Rng rng(seed_);
  const size_t restarts = static_cast<size_t>(restarts_);
  std::vector<Partition> starts(restarts);
  for (size_t t = 0; t < restarts; ++t) {
    starts[t] = (t == 0) ? SingletonPartition(n) : RandomPartition(n, &rng);
  }

  struct RestartResult {
    Partition partition;
    double cost = 0.0;
    uint64_t candidates = 0;
    DescentCounters counters;
  };
  std::vector<RestartResult> results =
      exec::ParallelMap<RestartResult>(restarts, [&](size_t t) {
        RestartResult result;
        result.partition = std::move(starts[t]);
        result.cost = Descend(ctx, model, &result.partition,
                              &result.candidates, &result.counters);
        return result;
      });

  // Reduce in restart order with a strict `<`: the earliest restart wins
  // cost ties, exactly as the sequential loop did — the fixed tie-break
  // that keeps the outcome identical for any thread count.
  DescentCounters counters;
  for (RestartResult& result : results) {
    best.candidates += result.candidates;
    counters.iterations += result.counters.iterations;
    counters.accepted_merges += result.counters.accepted_merges;
    counters.accepted_extracts += result.counters.accepted_extracts;
    if (result.cost < best.cost) {
      best.cost = result.cost;
      best.partition = std::move(result.partition);
    }
  }
  obs::Count("merge.directed-search.restarts",
             static_cast<uint64_t>(restarts_));
  obs::Count("merge.directed-search.descent_iterations",
             counters.iterations);
  obs::Count("merge.directed-search.accepted_merges",
             counters.accepted_merges);
  obs::Count("merge.directed-search.accepted_extracts",
             counters.accepted_extracts);
  CanonicalizePartition(&best.partition);
  best.cost = model.PartitionCost(ctx, best.partition);
  return best;
}

}  // namespace qsp
