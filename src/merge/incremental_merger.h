#ifndef QSP_MERGE_INCREMENTAL_MERGER_H_
#define QSP_MERGE_INCREMENTAL_MERGER_H_

#include <cstdint>

#include "cost/cost_model.h"
#include "query/merge_context.h"
#include "query/query.h"

namespace qsp {

/// Dynamic-scenario merging (future work, Section 11): maintains a
/// partition as subscriptions arrive and depart, without re-running a
/// merge algorithm from scratch.
///
///  * AddQuery: greedily place the new query into the existing group whose
///    cost increases least (or as a singleton), O(|M|) group evaluations.
///  * RemoveQuery: drop the query from its group.
///  * Repair: one steepest-descent pass (merge / extract moves, as the
///    directed search) to undo accumulated drift; call periodically.
///
/// The underlying MergeContext must wrap the same QuerySet that grows as
/// ids are added; ids passed to AddQuery must already exist in the set.
class IncrementalMerger {
 public:
  IncrementalMerger(const MergeContext* ctx, const CostModel& model);

  /// Places a new query; returns the resulting total cost.
  double AddQuery(QueryId id);

  /// Removes a subscribed query; returns the resulting total cost.
  /// No-op if the id is not currently placed.
  double RemoveQuery(QueryId id);

  /// Local-search repair; returns the improved cost. `max_moves` bounds
  /// the number of applied moves (0 = until local minimum).
  double Repair(int max_moves = 0);

  const Partition& partition() const { return partition_; }
  double cost() const { return cost_; }

  /// Group evaluations performed so far (work metric vs from-scratch).
  uint64_t evaluations() const { return evaluations_; }

 private:
  double GroupCost(const QueryGroup& group);

  const MergeContext* ctx_;
  CostModel model_;
  Partition partition_;
  double cost_ = 0.0;
  uint64_t evaluations_ = 0;
};

}  // namespace qsp

#endif  // QSP_MERGE_INCREMENTAL_MERGER_H_
