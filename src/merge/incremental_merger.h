#ifndef QSP_MERGE_INCREMENTAL_MERGER_H_
#define QSP_MERGE_INCREMENTAL_MERGER_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "cost/cost_model.h"
#include "geom/rect.h"
#include "geom/spatial_grid.h"
#include "merge/plan_bounds.h"
#include "query/merge_context.h"
#include "query/query.h"

namespace qsp {

/// Dynamic-scenario merging (future work, Section 11): maintains a
/// partition as subscriptions arrive and depart, without re-running a
/// merge algorithm from scratch.
///
///  * AddQuery: greedily place the new query into the existing group whose
///    cost increases least (or as a singleton).
///  * RemoveQuery: drop the query from its group; an emptied group is
///    erased and the MergeContext memo entries mentioning the dead id are
///    evicted (ids are never reused, so they could only waste memory).
///  * Repair: one steepest-descent pass (merge / extract moves, as the
///    directed search) to undo accumulated drift; call periodically.
///
/// With `pruning` on (the default) and a cost model that supports benefit
/// bounds, every scan is accelerated the same way the one-shot planners
/// are (DESIGN.md §8): cached GroupSummary per live group, admissible
/// BenefitBounder upper bounds skip candidates that provably cannot beat
/// the current best, and — when the bounder is distance-aware — a
/// SpatialGrid over group bounding boxes restricts candidates to each
/// probe's search window. Candidates are visited in the same ascending
/// order as the exhaustive scans and skipped only when the bound proves
/// they cannot *strictly* improve, so the pruned paths pick the identical
/// groups and moves (same tie-breaks) as `pruning = false`; only
/// evaluations() differs. Because the query population grows after
/// construction, the merger maintains the bounding union of every id it
/// has seen and re-derives its bounder as that universe grows, dropping
/// the distance term the moment a query escapes the estimator's
/// density-floor support.
///
/// The underlying MergeContext must wrap the same QuerySet that grows as
/// ids are added; ids passed to AddQuery must already exist in the set.
/// Not thread-safe; the live service serializes calls under its own lock.
class IncrementalMerger {
 public:
  IncrementalMerger(const MergeContext* ctx, const CostModel& model,
                    bool pruning = true);

  /// Places a new query; returns the resulting total cost.
  double AddQuery(QueryId id);

  /// Removes a subscribed query; returns the resulting total cost.
  /// No-op if the id is not currently placed.
  double RemoveQuery(QueryId id);

  /// Local-search repair; returns the improved cost. `max_moves` bounds
  /// the number of applied moves (0 = until local minimum).
  double Repair(int max_moves = 0);

  /// Replaces the maintained partition wholesale (the live service
  /// adopts a background from-scratch replan through this). The
  /// partition is canonicalized; it must cover only ids that exist in
  /// the underlying QuerySet.
  void Reset(Partition partition);

  const Partition& partition() const { return partition_; }
  double cost() const { return cost_; }

  /// True when `id` is currently placed in the maintained partition.
  bool Contains(QueryId id) const {
    return id < key_of_query_.size() && key_of_query_[id] != kNoKey;
  }

  const MergeContext* context() const { return ctx_; }

  /// Group evaluations performed so far (work metric vs from-scratch).
  uint64_t evaluations() const { return evaluations_; }

  /// Candidates skipped by an admissible bound (pruned mode only).
  uint64_t bounds_pruned() const { return bounds_pruned_; }

 private:
  static constexpr uint32_t kNoKey = 0xffffffffu;
  static constexpr size_t kNoSlot = static_cast<size_t>(-1);

  double GroupCost(const QueryGroup& group);
  /// Summarize + evaluation accounting (the pruned GroupCost).
  plan::GroupSummary Summarize(const QueryGroup& group);
  /// Exact singleton cost without touching the group memo: a singleton's
  /// stats are by construction {messages 1, size(q), irrelevant 0}, and
  /// the arithmetic matches CostModel::GroupCost(stats) bit-for-bit.
  double SingletonCost(QueryId id) const;
  plan::GroupSummary SingletonSummary(QueryId id) const;

  /// Folds rect(id) into the seen-universe and re-derives the bounder.
  void ExtendUniverse(QueryId id);
  /// True when candidate generation may consult the spatial grid.
  bool DistanceAware() const;
  /// (Re)builds the grid over live group bboxes, compacting stale keys.
  void RebuildGrid();
  /// Appends a new group (fresh key) with its summary.
  void AppendGroup(QueryGroup group, plan::GroupSummary summary);
  /// Installs a changed group's summary at `slot`, moving its grid entry.
  void UpdateGroup(size_t slot, plan::GroupSummary summary);
  /// Erases the group at `slot` (must already be removed from the grid);
  /// fixes the key->slot map for the shifted tail.
  void EraseGroup(size_t slot);
  /// Ascending slots of the groups a probe with `summary` must consider;
  /// every slot omitted provably has UpperBound(group, probe) <= 0.
  void CandidateSlots(const plan::GroupSummary& summary,
                      std::vector<size_t>* out);

  const MergeContext* ctx_;
  CostModel model_;
  /// Pruning requested AND valid for the model; fixed at construction.
  bool use_bounds_;
  Partition partition_;
  double cost_ = 0.0;
  uint64_t evaluations_ = 0;
  uint64_t bounds_pruned_ = 0;

  /// Stable group identity: partition slots shift on erase, so the grid
  /// and the id->group map speak stable keys. Keys are assigned in
  /// creation order and groups are only appended, so key order == slot
  /// order — candidate keys sorted ascending are slots sorted ascending,
  /// which is what keeps pruned scans in the exhaustive scan order.
  std::vector<uint32_t> key_of_slot_;
  std::vector<size_t> slot_of_key_;
  std::vector<uint32_t> key_of_query_;
  uint32_t next_key_ = 0;

  /// Pruned mode only (empty / unused otherwise).
  std::vector<plan::GroupSummary> summaries_;
  std::optional<plan::BenefitBounder> bounder_;
  std::optional<SpatialGrid> grid_;
  size_t grid_built_groups_ = 0;
  /// Running max group cost; only grows (conservative for SearchWindow).
  double max_cost_ = 0.0;
  /// Bounding union of every id ever added; only grows.
  Rect universe_ = Rect::Empty();
};

}  // namespace qsp

#endif  // QSP_MERGE_INCREMENTAL_MERGER_H_
