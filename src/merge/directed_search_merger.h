#ifndef QSP_MERGE_DIRECTED_SEARCH_MERGER_H_
#define QSP_MERGE_DIRECTED_SEARCH_MERGER_H_

#include <cstdint>

#include "merge/merger.h"

namespace qsp {

/// The Directed Search Algorithm of Section 6.2.2: restarted steepest-
/// descent local search over partitions. Each restart begins at a random
/// partition and repeatedly applies the best of two move kinds —
/// merging two groups, or extracting one query out of its group into a
/// singleton — until no move lowers the cost. The best of T restarts is
/// returned; the first restart starts from singletons so the result is
/// never worse than plain pair merging. O(T * |Q|^2) per descent step.
/// `pruning` accelerates the merge-move scan inside each descent step
/// (DESIGN.md §8): candidate partners come from a spatial grid over group
/// bounding boxes, and a pair's exact MergeBenefit is only evaluated when
/// its admissible upper bound beats both the best move found so far and
/// the improvement threshold — pairs skipped on either ground could never
/// have been selected, so every descent walks the identical move
/// sequence. Falls back to the exhaustive scan when the model cannot
/// support admissible bounds.
class DirectedSearchMerger : public Merger {
 public:
  explicit DirectedSearchMerger(int restarts = 8, uint64_t seed = 42,
                                bool pruning = true)
      : restarts_(restarts), seed_(seed), pruning_(pruning) {}

  std::string name() const override { return "directed-search"; }

 protected:
  Result<MergeOutcome> DoMerge(const MergeContext& ctx,
                               const CostModel& model) const override;

 private:
  int restarts_;
  uint64_t seed_;
  bool pruning_;
};

}  // namespace qsp

#endif  // QSP_MERGE_DIRECTED_SEARCH_MERGER_H_
