#ifndef QSP_MERGE_COVER_REFINER_H_
#define QSP_MERGE_COVER_REFINER_H_

#include <cstdint>
#include <vector>

#include "cost/cost_model.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "query/query.h"

namespace qsp {

/// A cover-based dissemination plan: a list of merged queries whose
/// member sets may overlap — one original query may derive its answer
/// from several merged answers. This drops the single-allocation
/// restriction of the partition model, realizing the paper's Section 11
/// "splitting a query between 2 clients" future-work item (e.g. q3 with
/// 0<x<2 is derivable from q1': 0<x<4 and q2': x<4... the union of two
/// merged ranges covers it).
struct CoverPlan {
  std::vector<MergedQuery> merged;
  /// Total cost under the cover cost semantics (same three terms; U
  /// counts, per merged query and member, the data outside that member).
  double cost = 0.0;
  /// Queries whose own group was dissolved into covers.
  size_t absorbed = 0;
  /// Candidate absorptions evaluated.
  uint64_t candidates = 0;
};

/// Greedy post-pass over a partition plan: for each group, check whether
/// every member query is covered by the union of at most
/// `max_cover_size` other merged regions; if dissolving the group (its
/// message disappears; its queries ride the covering messages) lowers
/// the total cost, apply it. Only single-region merged queries (the
/// bounding-rect procedure) are considered as covers.
class CoverRefiner {
 public:
  explicit CoverRefiner(int max_cover_size = 2)
      : max_cover_size_(max_cover_size) {}

  /// Refines `partition` (as produced by any Merger under `ctx`'s
  /// procedure). The result's merged list always serves every query of
  /// the partition exactly.
  CoverPlan Refine(const MergeContext& ctx, const CostModel& model,
                   const Partition& partition) const;

  /// Cost of an explicit cover plan under the model (exposed for tests).
  static double PlanCost(const MergeContext& ctx, const CostModel& model,
                         const std::vector<MergedQuery>& merged);

 private:
  int max_cover_size_;
};

}  // namespace qsp

#endif  // QSP_MERGE_COVER_REFINER_H_
