#ifndef QSP_MERGE_EXHAUSTIVE_MERGER_H_
#define QSP_MERGE_EXHAUSTIVE_MERGER_H_

#include "merge/merger.h"

namespace qsp {

/// The doubly exponential exhaustive algorithm of Section 6.1: enumerate
/// every element of S(S(Q)) — every collection of query subsets — keep the
/// ones that cover Q (members may overlap: a query may be allocated to
/// several merged sets), and pick the cheapest. O(2^(2^|Q|)); refuses
/// |Q| > max_queries (default 4, already 2^15 candidate collections).
///
/// Exists to (a) demonstrate that the single-allocation property holds for
/// this cost model — the optimum it finds is always a partition — and
/// (b) serve as ground truth for the PartitionMerger on tiny inputs.
class ExhaustiveMerger : public Merger {
 public:
  explicit ExhaustiveMerger(int max_queries = 4) : max_queries_(max_queries) {}

  std::string name() const override { return "exhaustive"; }

 protected:
  Result<MergeOutcome> DoMerge(const MergeContext& ctx,
                               const CostModel& model) const override;

 private:
  int max_queries_;
};

}  // namespace qsp

#endif  // QSP_MERGE_EXHAUSTIVE_MERGER_H_
