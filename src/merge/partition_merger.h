#ifndef QSP_MERGE_PARTITION_MERGER_H_
#define QSP_MERGE_PARTITION_MERGER_H_

#include <vector>

#include "merge/merger.h"

namespace qsp {

/// Exhaustive, exact search over the set partitions of an arbitrary list
/// of query ids (the paper's partition search tree, Figure 9), with the
/// partial cost maintained incrementally so each tree edge costs one
/// memoized group evaluation. Enumerates Bell(|ids|) leaves.
MergeOutcome ExactPartitionSearch(const MergeContext& ctx,
                                  const CostModel& model,
                                  const std::vector<QueryId>& ids);

/// The Partition Algorithm of Section 6.1.1: exhaustive search over set
/// partitions only, justified by the single-allocation property of the
/// cost model. Exact; refuses |Q| > max_queries (default 13,
/// Bell(13) = 27.6M).
class PartitionMerger : public Merger {
 public:
  explicit PartitionMerger(int max_queries = 13)
      : max_queries_(max_queries) {}

  std::string name() const override { return "partition"; }

 protected:
  Result<MergeOutcome> DoMerge(const MergeContext& ctx,
                               const CostModel& model) const override;

 private:
  int max_queries_;
};

}  // namespace qsp

#endif  // QSP_MERGE_PARTITION_MERGER_H_
