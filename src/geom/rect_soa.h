#ifndef QSP_GEOM_RECT_SOA_H_
#define QSP_GEOM_RECT_SOA_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "geom/rect.h"

namespace qsp {

/// Structure-of-arrays rectangle storage for the planner's batch
/// geometry kernels. The array-of-structs `Rect` is right for single
/// lookups; the sharded planner instead sweeps 10^5–10^6 rectangles in
/// straight-line passes (shard assignment, seam classification, bulk
/// intersection tests), and those passes want the four bounds in four
/// contiguous arrays so the compiler can vectorize the compare/min/max
/// chains instead of striding over 32-byte structs.
///
/// Empty rectangles are stored exactly as `Rect` holds them (lo > hi),
/// so round-tripping through Get() is lossless and the batch kernels
/// give the same answers as the scalar `Rect` calls they mirror.
class RectSoA {
 public:
  RectSoA() = default;
  explicit RectSoA(const std::vector<Rect>& rects) { Assign(rects); }

  void Reserve(size_t n);
  void Clear();
  void PushBack(const Rect& r);
  void Assign(const std::vector<Rect>& rects);

  size_t size() const { return x_lo_.size(); }
  bool empty() const { return x_lo_.empty(); }

  Rect Get(size_t i) const {
    return Rect(x_lo_[i], y_lo_[i], x_hi_[i], y_hi_[i]);
  }
  bool IsEmpty(size_t i) const {
    return x_lo_[i] > x_hi_[i] || y_lo_[i] > y_hi_[i];
  }

  const double* x_lo() const { return x_lo_.data(); }
  const double* y_lo() const { return y_lo_.data(); }
  const double* x_hi() const { return x_hi_.data(); }
  const double* y_hi() const { return y_hi_.data(); }

  /// out[i] = rects[i].Intersects(window), one byte per rect (char, not
  /// bool, so the store is vectorizable). `out` must hold size() bytes.
  void BatchIntersects(const Rect& window, unsigned char* out) const;

  /// Count of rectangles intersecting `window` (empty rects never do).
  size_t CountIntersecting(const Rect& window) const;

  /// out[i] = rects[i].Area() (0 for empty rects). `out` must hold
  /// size() doubles.
  void BatchArea(double* out) const;

  /// Bounding union of all non-empty rectangles (Rect::Empty() when
  /// every entry is empty) — the single-pass reduction the planner uses
  /// to size shard grids.
  Rect BoundingUnionAll() const;

  /// Center points: out_x[i]/out_y[i] = rect i's center coordinates (the
  /// same midpoint BatchShardOf buckets by). Empty rects have no
  /// position; their slots are filled with NaN so downstream kernels
  /// cannot silently treat them as placed. Both outputs must hold
  /// size() doubles.
  void BatchCenters(double* out_x, double* out_y) const;

  /// Shard assignment by center point: out[i] = the cell index (row-
  /// major, cells_x * cells_y cells over `bounds`) containing rect i's
  /// center, clamped into the grid; empty rects get kBoundlessShard.
  /// This is the batch mirror of SpatialGrid::CellOf over centers.
  static constexpr int32_t kBoundlessShard = -1;
  void BatchShardOf(const Rect& bounds, int cells_x, int cells_y,
                    int32_t* out) const;

 private:
  std::vector<double> x_lo_, y_lo_, x_hi_, y_hi_;
};

}  // namespace qsp

#endif  // QSP_GEOM_RECT_SOA_H_
