#ifndef QSP_GEOM_SPATIAL_GRID_H_
#define QSP_GEOM_SPATIAL_GRID_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geom/rect.h"

namespace qsp {

/// Uniform spatial hash grid over axis-aligned rectangles, the candidate
/// index behind the planner's subquadratic merge pruning (DESIGN.md §8).
/// Each inserted id is bucketed into every cell its rectangle overlaps
/// (clamped to the grid bounds, so rectangles outside the bounds land in
/// the edge cells and are never lost). Queries return candidate ids by
/// cell overlap — a superset of the true rectangle overlaps — which is
/// exactly what a conservative pruning layer needs.
///
/// Empty rectangles have no position, so they are kept in a dedicated
/// "boundless" bucket that every query returns: an id the index cannot
/// localize must never be pruned by distance.
///
/// Deterministic by construction: query results are sorted ascending and
/// deduplicated, and the pair join emits each pair exactly once in a
/// well-defined order, so planners seeded from this index make the same
/// decisions on every run and thread count.
class SpatialGrid {
 public:
  /// Grid of `cells_x` x `cells_y` cells over `bounds` (both clamped to
  /// >= 1; an empty `bounds` degenerates to a single cell holding
  /// everything, which stays correct — just unselective).
  SpatialGrid(const Rect& bounds, int cells_x, int cells_y);

  /// Sizes a grid for a rectangle population: bounds = bounding union,
  /// cell edge ~ the average rectangle extent (the classic spatial-join
  /// heuristic: each rect overlaps O(1) cells, each cell holds O(1)
  /// rects on non-adversarial data), cell count clamped to keep memory
  /// linear in `rects.size()`.
  static SpatialGrid ForRects(const std::vector<Rect>& rects);

  /// Inserts `id` under `rect`. Ids may repeat only after Remove.
  void Insert(uint32_t id, const Rect& rect);

  /// Removes a previously inserted (id, rect) pair; `rect` must equal
  /// the rectangle given to Insert.
  void Remove(uint32_t id, const Rect& rect);

  /// Appends to `out` the ids whose cell range overlaps `window`, plus
  /// every boundless id; result is sorted ascending and deduplicated.
  /// An empty window still returns the boundless ids.
  void Query(const Rect& window, std::vector<uint32_t>* out) const;

  /// Candidate load of `rect`: the number of (entry, cell) incidences in
  /// the cells `rect` covers, plus the boundless bucket — an O(cells
  /// covered) upper-bound proxy for how many candidate pairs a planner
  /// would enumerate around `rect`. Entries spanning several covered
  /// cells count once per cell (the join visits them that often), which
  /// is exactly the property a planning-cost weight wants. An empty rect
  /// has no position, so its load is every inserted id: size().
  double LoadInRange(const Rect& rect) const;

  /// Calls fn(a, b) with a < b for every pair of inserted ids that Query
  /// could ever return together: the exact spatial join over placed
  /// rectangles, plus every pair involving a boundless id (an id the
  /// index cannot localize is a candidate against everything, exactly as
  /// in Query). Each pair is emitted exactly once — boundless pairs from
  /// one canonical up-front pass, placed pairs from the cell holding the
  /// upper-left corner of their intersection (the standard constant-
  /// memory grid-join deduplication). Callers wanting only geometric
  /// intersections filter on Rect::Intersects, which is false whenever
  /// either rectangle is empty.
  void ForEachNearbyPair(
      const std::function<void(uint32_t, uint32_t)>& fn) const;

  int cells_x() const { return cells_x_; }
  int cells_y() const { return cells_y_; }
  size_t size() const { return size_; }

 private:
  struct Entry {
    uint32_t id;
    Rect rect;
  };

  /// Cell coordinates covered by `rect`, clamped into the grid.
  void CellRange(const Rect& rect, int* cx_lo, int* cy_lo, int* cx_hi,
                 int* cy_hi) const;
  /// Cell containing point (x, y), clamped into the grid.
  void CellOf(double x, double y, int* cx, int* cy) const;

  Rect bounds_;
  int cells_x_;
  int cells_y_;
  double cell_w_;
  double cell_h_;
  size_t size_ = 0;
  std::vector<std::vector<Entry>> cells_;
  std::vector<uint32_t> boundless_;
};

}  // namespace qsp

#endif  // QSP_GEOM_SPATIAL_GRID_H_
