#ifndef QSP_GEOM_HULL_H_
#define QSP_GEOM_HULL_H_

#include <vector>

#include "geom/rect.h"
#include "geom/region.h"

namespace qsp {

/// Builds the "bounding polygon" of a set of rectangles — the shape used by
/// the bounding-polygon merge procedure of Figure 5(b): a single rectilinear
/// region that contains every input rectangle, is contained in the bounding
/// rectangle, and carries less irrelevant area than the bounding rectangle.
///
/// Construction: take the union of the inputs; fill it vertically (for each
/// x-slab spanned by the union use the full [min_y, max_y] of the union in
/// that slab) and horizontally (same with the roles of x and y swapped);
/// intersect the two fills. The result is the *orthogonal slab hull*: it
/// contains the union (each fill does), is orthogonally convex in both
/// axes, and is a subset of the bounding box.
RectilinearRegion BoundingPolygon(const std::vector<Rect>& rects);

/// The vertical fill alone (each x-slab grown to the union's y-extent in
/// that slab). Exposed for tests and for the merge-procedure ablation.
RectilinearRegion VerticalFill(const std::vector<Rect>& rects);

/// The horizontal fill alone.
RectilinearRegion HorizontalFill(const std::vector<Rect>& rects);

}  // namespace qsp

#endif  // QSP_GEOM_HULL_H_
