#include "geom/hull.h"

#include <algorithm>

namespace qsp {
namespace {

/// For each maximal x-slab of the union, emits one rect spanning the
/// union's full y-range within the slab.
std::vector<Rect> SlabFillX(const RectilinearRegion& region) {
  std::vector<Rect> out;
  const auto& pieces = region.pieces();
  size_t i = 0;
  while (i < pieces.size()) {
    const double x_lo = pieces[i].x_lo();
    const double x_hi = pieces[i].x_hi();
    double y_lo = pieces[i].y_lo();
    double y_hi = pieces[i].y_hi();
    size_t j = i + 1;
    while (j < pieces.size() && pieces[j].x_lo() == x_lo) {
      y_lo = std::min(y_lo, pieces[j].y_lo());
      y_hi = std::max(y_hi, pieces[j].y_hi());
      ++j;
    }
    out.emplace_back(x_lo, y_lo, x_hi, y_hi);
    i = j;
  }
  return out;
}

std::vector<Rect> Transpose(const std::vector<Rect>& rects) {
  std::vector<Rect> out;
  out.reserve(rects.size());
  for (const Rect& r : rects) {
    if (!r.IsEmpty()) out.emplace_back(r.y_lo(), r.x_lo(), r.y_hi(), r.x_hi());
  }
  return out;
}

}  // namespace

RectilinearRegion VerticalFill(const std::vector<Rect>& rects) {
  RectilinearRegion region = RectilinearRegion::UnionOf(rects);
  return RectilinearRegion::UnionOf(SlabFillX(region));
}

RectilinearRegion HorizontalFill(const std::vector<Rect>& rects) {
  RectilinearRegion fill = VerticalFill(Transpose(rects));
  return RectilinearRegion::UnionOf(Transpose(fill.pieces()));
}

RectilinearRegion BoundingPolygon(const std::vector<Rect>& rects) {
  return VerticalFill(rects).IntersectWith(HorizontalFill(rects));
}

}  // namespace qsp
