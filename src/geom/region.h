#ifndef QSP_GEOM_REGION_H_
#define QSP_GEOM_REGION_H_

#include <string>
#include <vector>

#include "geom/rect.h"

namespace qsp {

/// A rectilinear region stored as interior-disjoint rectangles (adjacent
/// pieces may share boundary segments, which have zero area). This is the
/// shape produced by the exact-cover merge procedure of Figure 5(c): the
/// union of a group's query rectangles split into pieces so that nothing
/// outside any original query is transmitted.
class RectilinearRegion {
 public:
  /// The empty region.
  RectilinearRegion() = default;

  /// Builds the union of arbitrary (possibly overlapping) rectangles and
  /// decomposes it into interior-disjoint vertical-slab pieces. Empty
  /// input rectangles are ignored.
  static RectilinearRegion UnionOf(const std::vector<Rect>& rects);

  /// The decomposed pieces. Sorted by (x_lo, y_lo).
  const std::vector<Rect>& pieces() const { return pieces_; }

  bool IsEmpty() const { return pieces_.empty(); }

  /// Exact area of the union.
  double Area() const;

  /// Closed containment of a point (true if any piece contains it).
  bool Contains(const Point& p) const;

  /// True when `r` is fully covered by the region.
  bool Covers(const Rect& r) const;

  /// The region covered by both inputs.
  RectilinearRegion IntersectWith(const RectilinearRegion& other) const;

  /// Area of overlap with a single rectangle.
  double OverlapArea(const Rect& r) const;

  /// Smallest rectangle containing the region.
  Rect BoundingBox() const;

  std::string ToString() const;

 private:
  explicit RectilinearRegion(std::vector<Rect> pieces)
      : pieces_(std::move(pieces)) {}

  std::vector<Rect> pieces_;
};

/// Exact area of the union of arbitrary rectangles (sweep decomposition).
double UnionArea(const std::vector<Rect>& rects);

}  // namespace qsp

#endif  // QSP_GEOM_REGION_H_
