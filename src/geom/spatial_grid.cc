#include "geom/spatial_grid.h"

#include <algorithm>
#include <cmath>
#include <cassert>

namespace qsp {

SpatialGrid::SpatialGrid(const Rect& bounds, int cells_x, int cells_y)
    : bounds_(bounds),
      cells_x_(std::max(1, cells_x)),
      cells_y_(std::max(1, cells_y)) {
  if (bounds_.IsEmpty() || !std::isfinite(bounds_.Width()) ||
      !std::isfinite(bounds_.Height())) {
    // Degenerate bounds: collapse to one cell; everything is a neighbor.
    bounds_ = Rect(0.0, 0.0, 0.0, 0.0);
    cells_x_ = 1;
    cells_y_ = 1;
  }
  cell_w_ = bounds_.Width() / cells_x_;
  cell_h_ = bounds_.Height() / cells_y_;
  cells_.resize(static_cast<size_t>(cells_x_) * cells_y_);
}

SpatialGrid SpatialGrid::ForRects(const std::vector<Rect>& rects) {
  Rect bounds = Rect::Empty();
  double extent_x = 0.0, extent_y = 0.0;
  size_t placed = 0;
  for (const Rect& r : rects) {
    if (r.IsEmpty()) continue;
    bounds = bounds.BoundingUnion(r);
    extent_x += r.Width();
    extent_y += r.Height();
    ++placed;
  }
  if (placed == 0) return SpatialGrid(Rect::Empty(), 1, 1);
  // Cell edge ~ mean rect extent (floored at a sliver of the bounds so
  // point rects don't explode the cell count), total cells capped at ~4n
  // to keep memory linear.
  const double min_w = bounds.Width() / 1024.0;
  const double min_h = bounds.Height() / 1024.0;
  const double placed_d = static_cast<double>(placed);
  double cw = std::max(extent_x / placed_d, min_w);
  double ch = std::max(extent_y / placed_d, min_h);
  // Ideal counts, clamped in double space BEFORE the int casts: a
  // hairline population (one axis extent ~0) makes Width()/cw overflow
  // int range, and casting an out-of-range double to int is undefined
  // behavior. 2^30 is far above any count the cap loop below could keep,
  // so in-range populations size identically.
  constexpr double kMaxAxisCells = 1073741824.0;  // 2^30
  double fcx = 1.0, fcy = 1.0;
  if (cw > 0.0) fcx = std::ceil(bounds.Width() / cw);
  if (ch > 0.0) fcy = std::ceil(bounds.Height() / ch);
  if (!(fcx > 1.0)) fcx = 1.0;  // also catches NaN
  if (!(fcy > 1.0)) fcy = 1.0;
  int cx = static_cast<int>(std::min(fcx, kMaxAxisCells));
  int cy = static_cast<int>(std::min(fcy, kMaxAxisCells));
  const double cap = std::max(4.0 * placed_d, 16.0);
  // Halve the larger axis until the cell count is under the cap. The
  // cx/cy > 1 guard makes the loop provably terminating: every iteration
  // strictly decreases max(cx, cy) >= 2, and once both axes reach 1 the
  // loop exits no matter the cap — (1 + 1) / 2 == 1 would otherwise spin
  // forever whenever the cap sat below a single cell.
  while ((cx > 1 || cy > 1) && static_cast<double>(cx) * cy > cap) {
    if (cx >= cy) {
      cx = (cx + 1) / 2;
    } else {
      cy = (cy + 1) / 2;
    }
  }
  return SpatialGrid(bounds, cx, cy);
}

void SpatialGrid::CellOf(double x, double y, int* cx, int* cy) const {
  // Clamp in double space BEFORE the int cast: query windows may carry
  // infinite coordinates (an unbounded search reach), and casting a
  // non-finite double to int is undefined behavior.
  double fx = 0.0, fy = 0.0;
  if (cell_w_ > 0.0) fx = std::floor((x - bounds_.x_lo()) / cell_w_);
  if (cell_h_ > 0.0) fy = std::floor((y - bounds_.y_lo()) / cell_h_);
  if (!(fx > 0.0)) fx = 0.0;  // also catches NaN
  if (!(fy > 0.0)) fy = 0.0;
  fx = std::min(fx, static_cast<double>(cells_x_ - 1));
  fy = std::min(fy, static_cast<double>(cells_y_ - 1));
  *cx = static_cast<int>(fx);
  *cy = static_cast<int>(fy);
}

void SpatialGrid::CellRange(const Rect& rect, int* cx_lo, int* cy_lo,
                            int* cx_hi, int* cy_hi) const {
  CellOf(rect.x_lo(), rect.y_lo(), cx_lo, cy_lo);
  CellOf(rect.x_hi(), rect.y_hi(), cx_hi, cy_hi);
}

void SpatialGrid::Insert(uint32_t id, const Rect& rect) {
  if (rect.IsEmpty()) {
    boundless_.push_back(id);
    ++size_;
    return;
  }
  int cx_lo, cy_lo, cx_hi, cy_hi;
  CellRange(rect, &cx_lo, &cy_lo, &cx_hi, &cy_hi);
  for (int cy = cy_lo; cy <= cy_hi; ++cy) {
    for (int cx = cx_lo; cx <= cx_hi; ++cx) {
      cells_[static_cast<size_t>(cy) * cells_x_ + cx].push_back({id, rect});
    }
  }
  ++size_;
}

void SpatialGrid::Remove(uint32_t id, const Rect& rect) {
  if (rect.IsEmpty()) {
    auto it = std::find(boundless_.begin(), boundless_.end(), id);
    if (it != boundless_.end()) {
      boundless_.erase(it);
      --size_;
    }
    return;
  }
  int cx_lo, cy_lo, cx_hi, cy_hi;
  CellRange(rect, &cx_lo, &cy_lo, &cx_hi, &cy_hi);
  bool found = false;
  for (int cy = cy_lo; cy <= cy_hi; ++cy) {
    for (int cx = cx_lo; cx <= cx_hi; ++cx) {
      auto& cell = cells_[static_cast<size_t>(cy) * cells_x_ + cx];
      for (auto it = cell.begin(); it != cell.end(); ++it) {
        if (it->id == id) {
          cell.erase(it);
          found = true;
          break;
        }
      }
    }
  }
  if (found) --size_;
}

void SpatialGrid::Query(const Rect& window, std::vector<uint32_t>* out) const {
  const size_t base = out->size();
  out->insert(out->end(), boundless_.begin(), boundless_.end());
  if (!window.IsEmpty()) {
    int cx_lo, cy_lo, cx_hi, cy_hi;
    CellRange(window, &cx_lo, &cy_lo, &cx_hi, &cy_hi);
    for (int cy = cy_lo; cy <= cy_hi; ++cy) {
      for (int cx = cx_lo; cx <= cx_hi; ++cx) {
        const auto& cell = cells_[static_cast<size_t>(cy) * cells_x_ + cx];
        for (const Entry& e : cell) out->push_back(e.id);
      }
    }
  }
  std::sort(out->begin() + base, out->end());
  out->erase(std::unique(out->begin() + base, out->end()), out->end());
}

double SpatialGrid::LoadInRange(const Rect& rect) const {
  if (rect.IsEmpty()) return static_cast<double>(size_);
  double load = static_cast<double>(boundless_.size());
  int cx_lo, cy_lo, cx_hi, cy_hi;
  CellRange(rect, &cx_lo, &cy_lo, &cx_hi, &cy_hi);
  for (int cy = cy_lo; cy <= cy_hi; ++cy) {
    for (int cx = cx_lo; cx <= cx_hi; ++cx) {
      load += static_cast<double>(
          cells_[static_cast<size_t>(cy) * cells_x_ + cx].size());
    }
  }
  return load;
}

void SpatialGrid::ForEachNearbyPair(
    const std::function<void(uint32_t, uint32_t)>& fn) const {
  // Boundless ids have no cells, so the cell loop below never sees them —
  // yet Query() returns them for every window. The join must agree with
  // Query about which ids are candidates, so a canonical pass here pairs
  // every boundless id with every other id (boundless and placed) exactly
  // once, in a deterministic order, before the cell pass runs.
  if (!boundless_.empty()) {
    std::vector<uint32_t> unplaced(boundless_);
    std::sort(unplaced.begin(), unplaced.end());
    for (size_t i = 0; i < unplaced.size(); ++i) {
      for (size_t j = i + 1; j < unplaced.size(); ++j) {
        fn(unplaced[i], unplaced[j]);
      }
    }
    std::vector<uint32_t> placed;
    for (const auto& cell : cells_) {
      for (const Entry& e : cell) placed.push_back(e.id);
    }
    std::sort(placed.begin(), placed.end());
    placed.erase(std::unique(placed.begin(), placed.end()), placed.end());
    for (uint32_t b : unplaced) {
      for (uint32_t p : placed) {
        if (b < p) {
          fn(b, p);
        } else {
          fn(p, b);
        }
      }
    }
  }
  for (int cy = 0; cy < cells_y_; ++cy) {
    for (int cx = 0; cx < cells_x_; ++cx) {
      const auto& cell = cells_[static_cast<size_t>(cy) * cells_x_ + cx];
      for (size_t i = 0; i < cell.size(); ++i) {
        for (size_t j = i + 1; j < cell.size(); ++j) {
          const Entry& ea = cell[i];
          const Entry& eb = cell[j];
          if (ea.id == eb.id) continue;
          if (!ea.rect.Intersects(eb.rect)) continue;
          // Emit only from the canonical cell: the one holding the
          // upper-left corner of the (nonempty) intersection.
          int px, py;
          CellOf(std::max(ea.rect.x_lo(), eb.rect.x_lo()),
                 std::max(ea.rect.y_lo(), eb.rect.y_lo()), &px, &py);
          if (px != cx || py != cy) continue;
          if (ea.id < eb.id) {
            fn(ea.id, eb.id);
          } else {
            fn(eb.id, ea.id);
          }
        }
      }
    }
  }
}

}  // namespace qsp
