#include "geom/region.h"

#include <algorithm>
#include <utility>

namespace qsp {
namespace {

/// Merges closed y-intervals, coalescing touching ones.
std::vector<std::pair<double, double>> MergeIntervals(
    std::vector<std::pair<double, double>> spans) {
  std::sort(spans.begin(), spans.end());
  std::vector<std::pair<double, double>> merged;
  for (const auto& s : spans) {
    if (!merged.empty() && s.first <= merged.back().second) {
      merged.back().second = std::max(merged.back().second, s.second);
    } else {
      merged.push_back(s);
    }
  }
  return merged;
}

}  // namespace

RectilinearRegion RectilinearRegion::UnionOf(const std::vector<Rect>& rects) {
  std::vector<const Rect*> live;
  live.reserve(rects.size());
  std::vector<double> xs;
  for (const Rect& r : rects) {
    if (r.IsEmpty()) continue;
    live.push_back(&r);
    xs.push_back(r.x_lo());
    xs.push_back(r.x_hi());
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  std::vector<Rect> pieces;
  for (size_t i = 0; i + 1 < xs.size(); ++i) {
    const double slab_lo = xs[i];
    const double slab_hi = xs[i + 1];
    if (slab_hi <= slab_lo) continue;
    std::vector<std::pair<double, double>> spans;
    for (const Rect* r : live) {
      // The rect must cover the whole open slab.
      if (r->x_lo() <= slab_lo && r->x_hi() >= slab_hi) {
        spans.emplace_back(r->y_lo(), r->y_hi());
      }
    }
    for (const auto& [y_lo, y_hi] : MergeIntervals(std::move(spans))) {
      // Zero-height spans survive interval merging only when no taller
      // span absorbs them; drop them here, symmetric to the zero-width
      // slab skip above, so every piece has positive area.
      if (y_hi <= y_lo) continue;
      pieces.emplace_back(slab_lo, y_lo, slab_hi, y_hi);
    }
  }
  // Degenerate (zero-width or zero-height) input rects contribute no area
  // and produce no pieces; that matches Area() semantics.
  std::sort(pieces.begin(), pieces.end(), [](const Rect& a, const Rect& b) {
    if (a.x_lo() != b.x_lo()) return a.x_lo() < b.x_lo();
    return a.y_lo() < b.y_lo();
  });
  return RectilinearRegion(std::move(pieces));
}

double RectilinearRegion::Area() const {
  double total = 0.0;
  for (const Rect& r : pieces_) total += r.Area();
  return total;
}

bool RectilinearRegion::Contains(const Point& p) const {
  for (const Rect& r : pieces_) {
    if (r.Contains(p)) return true;
  }
  return false;
}

bool RectilinearRegion::Covers(const Rect& r) const {
  if (r.IsEmpty()) return true;
  // r is covered iff area(region ∩ r) == area(r). Robust for rectilinear
  // data because all coordinates come from input rect edges.
  return OverlapArea(r) >= r.Area() * (1.0 - 1e-12);
}

RectilinearRegion RectilinearRegion::IntersectWith(
    const RectilinearRegion& other) const {
  std::vector<Rect> out;
  // Bounding-box prechecks: disjoint regions exit before the O(|A|·|B|)
  // loop, and pieces outside the other operand's bounding box skip their
  // whole inner loop. Big win for the planner, which intersects fills of
  // far-apart groups constantly.
  const Rect other_box = other.BoundingBox();
  if (!BoundingBox().Intersects(other_box)) {
    return RectilinearRegion(std::move(out));
  }
  for (const Rect& a : pieces_) {
    if (!a.Intersects(other_box)) continue;
    for (const Rect& b : other.pieces_) {
      Rect c = a.Intersection(b);
      if (!c.IsEmpty() && c.Area() > 0) out.push_back(c);
    }
  }
  // Pieces of each operand are interior-disjoint, so pairwise
  // intersections are interior-disjoint too; no re-decomposition needed.
  return RectilinearRegion(std::move(out));
}

double RectilinearRegion::OverlapArea(const Rect& r) const {
  double total = 0.0;
  for (const Rect& piece : pieces_) total += qsp::OverlapArea(piece, r);
  return total;
}

Rect RectilinearRegion::BoundingBox() const {
  Rect box = Rect::Empty();
  for (const Rect& r : pieces_) box = box.BoundingUnion(r);
  return box;
}

std::string RectilinearRegion::ToString() const {
  std::string out = "{";
  for (size_t i = 0; i < pieces_.size(); ++i) {
    if (i > 0) out += ", ";
    out += pieces_[i].ToString();
  }
  out += "}";
  return out;
}

double UnionArea(const std::vector<Rect>& rects) {
  return RectilinearRegion::UnionOf(rects).Area();
}

}  // namespace qsp
