#include "geom/rect.h"

#include <algorithm>
#include <cstdio>

namespace qsp {

Rect::Rect() : x_lo_(0), y_lo_(0), x_hi_(-1), y_hi_(-1) {}

Rect::Rect(double x_lo, double y_lo, double x_hi, double y_hi)
    : x_lo_(x_lo), y_lo_(y_lo), x_hi_(x_hi), y_hi_(y_hi) {}

Rect Rect::FromCorners(const Point& a, const Point& b) {
  return Rect(std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
              std::max(a.y, b.y));
}

Rect Rect::FromCenter(const Point& center, double width, double height) {
  return Rect(center.x - width / 2, center.y - height / 2,
              center.x + width / 2, center.y + height / 2);
}

Rect Rect::Empty() { return Rect(); }

bool Rect::Contains(const Point& p) const {
  return !IsEmpty() && p.x >= x_lo_ && p.x <= x_hi_ && p.y >= y_lo_ &&
         p.y <= y_hi_;
}

bool Rect::Contains(const Rect& other) const {
  if (other.IsEmpty()) return true;
  if (IsEmpty()) return false;
  return other.x_lo_ >= x_lo_ && other.x_hi_ <= x_hi_ &&
         other.y_lo_ >= y_lo_ && other.y_hi_ <= y_hi_;
}

bool Rect::Intersects(const Rect& other) const {
  if (IsEmpty() || other.IsEmpty()) return false;
  return x_lo_ <= other.x_hi_ && other.x_lo_ <= x_hi_ &&
         y_lo_ <= other.y_hi_ && other.y_lo_ <= y_hi_;
}

Rect Rect::Intersection(const Rect& other) const {
  if (!Intersects(other)) return Empty();
  return Rect(std::max(x_lo_, other.x_lo_), std::max(y_lo_, other.y_lo_),
              std::min(x_hi_, other.x_hi_), std::min(y_hi_, other.y_hi_));
}

Rect Rect::BoundingUnion(const Rect& other) const {
  if (IsEmpty()) return other;
  if (other.IsEmpty()) return *this;
  return Rect(std::min(x_lo_, other.x_lo_), std::min(y_lo_, other.y_lo_),
              std::max(x_hi_, other.x_hi_), std::max(y_hi_, other.y_hi_));
}

std::string Rect::ToString() const {
  if (IsEmpty()) return "[empty]";
  char buf[128];
  std::snprintf(buf, sizeof(buf), "[%.6g,%.6g..%.6g,%.6g]", x_lo_, y_lo_,
                x_hi_, y_hi_);
  return buf;
}

bool operator==(const Rect& a, const Rect& b) {
  if (a.IsEmpty() && b.IsEmpty()) return true;
  return a.x_lo_ == b.x_lo_ && a.y_lo_ == b.y_lo_ && a.x_hi_ == b.x_hi_ &&
         a.y_hi_ == b.y_hi_;
}

double OverlapArea(const Rect& a, const Rect& b) {
  return a.Intersection(b).Area();
}

}  // namespace qsp
