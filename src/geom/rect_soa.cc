#include "geom/rect_soa.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace qsp {

void RectSoA::Reserve(size_t n) {
  x_lo_.reserve(n);
  y_lo_.reserve(n);
  x_hi_.reserve(n);
  y_hi_.reserve(n);
}

void RectSoA::Clear() {
  x_lo_.clear();
  y_lo_.clear();
  x_hi_.clear();
  y_hi_.clear();
}

void RectSoA::PushBack(const Rect& r) {
  x_lo_.push_back(r.x_lo());
  y_lo_.push_back(r.y_lo());
  x_hi_.push_back(r.x_hi());
  y_hi_.push_back(r.y_hi());
}

void RectSoA::Assign(const std::vector<Rect>& rects) {
  Clear();
  Reserve(rects.size());
  for (const Rect& r : rects) PushBack(r);
}

void RectSoA::BatchIntersects(const Rect& window, unsigned char* out) const {
  const size_t n = size();
  const double wxl = window.x_lo(), wyl = window.y_lo();
  const double wxh = window.x_hi(), wyh = window.y_hi();
  if (window.IsEmpty()) {
    std::fill(out, out + n, static_cast<unsigned char>(0));
    return;
  }
  const double* xl = x_lo_.data();
  const double* yl = y_lo_.data();
  const double* xh = x_hi_.data();
  const double* yh = y_hi_.data();
  // Branchless closed-interval overlap on all four bounds at once; an
  // empty rect (lo > hi) fails its own lo <= hi conjunct, so the scalar
  // Rect::Intersects answer falls out without a separate emptiness test.
  for (size_t i = 0; i < n; ++i) {
    const bool hit = xl[i] <= wxh && wxl <= xh[i] && yl[i] <= wyh &&
                     wyl <= yh[i] && xl[i] <= xh[i] && yl[i] <= yh[i];
    out[i] = static_cast<unsigned char>(hit);
  }
}

size_t RectSoA::CountIntersecting(const Rect& window) const {
  const size_t n = size();
  if (window.IsEmpty()) return 0;
  const double wxl = window.x_lo(), wyl = window.y_lo();
  const double wxh = window.x_hi(), wyh = window.y_hi();
  const double* xl = x_lo_.data();
  const double* yl = y_lo_.data();
  const double* xh = x_hi_.data();
  const double* yh = y_hi_.data();
  size_t count = 0;
  for (size_t i = 0; i < n; ++i) {
    count += static_cast<size_t>(xl[i] <= wxh && wxl <= xh[i] &&
                                 yl[i] <= wyh && wyl <= yh[i] &&
                                 xl[i] <= xh[i] && yl[i] <= yh[i]);
  }
  return count;
}

void RectSoA::BatchArea(double* out) const {
  const size_t n = size();
  const double* xl = x_lo_.data();
  const double* yl = y_lo_.data();
  const double* xh = x_hi_.data();
  const double* yh = y_hi_.data();
  // max(hi - lo, 0) mirrors Rect::Width/Height's empty clamp without a
  // branch, keeping the multiply chain vectorizable.
  for (size_t i = 0; i < n; ++i) {
    const double w = std::max(xh[i] - xl[i], 0.0);
    const double h = std::max(yh[i] - yl[i], 0.0);
    const bool nonempty = xl[i] <= xh[i] && yl[i] <= yh[i];
    out[i] = nonempty ? w * h : 0.0;
  }
}

Rect RectSoA::BoundingUnionAll() const {
  const size_t n = size();
  const double* xl = x_lo_.data();
  const double* yl = y_lo_.data();
  const double* xh = x_hi_.data();
  const double* yh = y_hi_.data();
  // Running min/max over non-empty entries; empty entries contribute
  // +inf/-inf sentinels so the reduction stays branch-free.
  double uxl = 0.0, uyl = 0.0, uxh = -1.0, uyh = -1.0;
  bool any = false;
  for (size_t i = 0; i < n; ++i) {
    const bool nonempty = xl[i] <= xh[i] && yl[i] <= yh[i];
    if (!nonempty) continue;
    if (!any) {
      uxl = xl[i];
      uyl = yl[i];
      uxh = xh[i];
      uyh = yh[i];
      any = true;
      continue;
    }
    uxl = std::min(uxl, xl[i]);
    uyl = std::min(uyl, yl[i]);
    uxh = std::max(uxh, xh[i]);
    uyh = std::max(uyh, yh[i]);
  }
  if (!any) return Rect::Empty();
  return Rect(uxl, uyl, uxh, uyh);
}

void RectSoA::BatchCenters(double* out_x, double* out_y) const {
  const size_t n = size();
  const double* xl = x_lo_.data();
  const double* yl = y_lo_.data();
  const double* xh = x_hi_.data();
  const double* yh = y_hi_.data();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  for (size_t i = 0; i < n; ++i) {
    const bool nonempty = xl[i] <= xh[i] && yl[i] <= yh[i];
    out_x[i] = nonempty ? (xl[i] + xh[i]) * 0.5 : nan;
    out_y[i] = nonempty ? (yl[i] + yh[i]) * 0.5 : nan;
  }
}

void RectSoA::BatchShardOf(const Rect& bounds, int cells_x, int cells_y,
                           int32_t* out) const {
  const size_t n = size();
  const int cx_n = std::max(1, cells_x);
  const int cy_n = std::max(1, cells_y);
  const double bxl = bounds.x_lo();
  const double byl = bounds.y_lo();
  const double cw = bounds.IsEmpty() ? 0.0 : bounds.Width() / cx_n;
  const double ch = bounds.IsEmpty() ? 0.0 : bounds.Height() / cy_n;
  const double inv_w = cw > 0.0 ? 1.0 / cw : 0.0;
  const double inv_h = ch > 0.0 ? 1.0 / ch : 0.0;
  const double fx_max = static_cast<double>(cx_n - 1);
  const double fy_max = static_cast<double>(cy_n - 1);
  const double* xl = x_lo_.data();
  const double* yl = y_lo_.data();
  const double* xh = x_hi_.data();
  const double* yh = y_hi_.data();
  for (size_t i = 0; i < n; ++i) {
    // Clamp in double space before the int cast (centers of clamped or
    // far-out rects may sit outside the grid, or be non-finite).
    const double cx_pt = (xl[i] + xh[i]) * 0.5;
    const double cy_pt = (yl[i] + yh[i]) * 0.5;
    double fx = std::floor((cx_pt - bxl) * inv_w);
    double fy = std::floor((cy_pt - byl) * inv_h);
    fx = (fx > 0.0) ? std::min(fx, fx_max) : 0.0;  // also catches NaN
    fy = (fy > 0.0) ? std::min(fy, fy_max) : 0.0;
    const int32_t cell = static_cast<int32_t>(fy) * cx_n +
                         static_cast<int32_t>(fx);
    const bool nonempty = xl[i] <= xh[i] && yl[i] <= yh[i];
    out[i] = nonempty ? cell : kBoundlessShard;
  }
}

}  // namespace qsp
