#ifndef QSP_GEOM_RECT_H_
#define QSP_GEOM_RECT_H_

#include <optional>
#include <string>

#include "geom/point.h"

namespace qsp {

/// Axis-aligned rectangle [x_lo, x_hi] x [y_lo, y_hi]. This is the shape
/// of the paper's geographic query
///   sigma_{c1 <= latitude <= c3  AND  c2 <= longitude <= c4} R
/// and of the bounding-rectangle merge procedure's output.
///
/// Rectangles are closed on all sides (the paper's predicates use <=). A
/// rectangle with x_lo > x_hi or y_lo > y_hi is "empty"; Rect::Empty()
/// returns a canonical empty value.
class Rect {
 public:
  /// Default: the canonical empty rectangle.
  Rect();

  /// Builds from bounds; the constructor normalizes nothing — callers that
  /// may pass swapped bounds should use FromCorners.
  Rect(double x_lo, double y_lo, double x_hi, double y_hi);

  /// Builds from two arbitrary corner points, normalizing the order.
  static Rect FromCorners(const Point& a, const Point& b);

  /// Builds from a center point and full extents.
  static Rect FromCenter(const Point& center, double width, double height);

  /// The canonical empty rectangle (contains nothing, area 0).
  static Rect Empty();

  double x_lo() const { return x_lo_; }
  double y_lo() const { return y_lo_; }
  double x_hi() const { return x_hi_; }
  double y_hi() const { return y_hi_; }

  bool IsEmpty() const { return x_lo_ > x_hi_ || y_lo_ > y_hi_; }

  double Width() const { return IsEmpty() ? 0.0 : x_hi_ - x_lo_; }
  double Height() const { return IsEmpty() ? 0.0 : y_hi_ - y_lo_; }
  double Area() const { return Width() * Height(); }

  Point Center() const { return {(x_lo_ + x_hi_) / 2, (y_lo_ + y_hi_) / 2}; }

  /// Closed-interval point containment (matches the <= query predicates).
  bool Contains(const Point& p) const;

  /// True when `other` lies entirely within this rectangle. Every
  /// rectangle contains the empty rectangle.
  bool Contains(const Rect& other) const;

  /// True when the closed rectangles share at least one point.
  bool Intersects(const Rect& other) const;

  /// The (possibly empty) intersection rectangle.
  Rect Intersection(const Rect& other) const;

  /// The smallest rectangle containing both inputs — the paper's
  /// bounding-rectangle merge of two queries (Figure 5a).
  Rect BoundingUnion(const Rect& other) const;

  /// Clamps this rectangle to `bounds` (= Intersection, named for intent).
  Rect ClampTo(const Rect& bounds) const { return Intersection(bounds); }

  /// "[x_lo,y_lo..x_hi,y_hi]" for logs and test failures.
  std::string ToString() const;

  friend bool operator==(const Rect& a, const Rect& b);

 private:
  double x_lo_, y_lo_, x_hi_, y_hi_;
};

/// Area of the overlap of two rectangles (0 when disjoint).
double OverlapArea(const Rect& a, const Rect& b);

}  // namespace qsp

#endif  // QSP_GEOM_RECT_H_
