#ifndef QSP_GEOM_POINT_H_
#define QSP_GEOM_POINT_H_

namespace qsp {

/// A point in the two-dimensional attribute space of the database. Using
/// the paper's BADD scenario, `x` is longitude and `y` is latitude, but the
/// library is agnostic: any pair of ordered attributes works.
struct Point {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
};

}  // namespace qsp

#endif  // QSP_GEOM_POINT_H_
