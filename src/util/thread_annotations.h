#ifndef QSP_UTIL_THREAD_ANNOTATIONS_H_
#define QSP_UTIL_THREAD_ANNOTATIONS_H_

/// Portable wrappers over Clang's thread-safety-analysis attributes
/// (DESIGN.md §9). Under Clang with -Wthread-safety the annotations turn
/// lock discipline into a compile-time check: a member declared
/// QSP_GUARDED_BY(mu_) may only be touched while mu_ is held, a function
/// declared QSP_REQUIRES(mu_) may only be called with mu_ held, and so
/// on. Under GCC and MSVC every macro expands to nothing, so annotated
/// headers stay portable.
///
/// The project annotates every mutex-protected structure (the qsp::exec
/// thread pool, the obs metric types, the MergeContext memo shards, the
/// channel-cost memo); new mutexes must arrive with annotations — the
/// tidy CI job builds with Clang and -Werror, so an unannotated guarded
/// member that is ever touched without its lock fails the build there.
///
/// Escape hatch: QSP_NO_THREAD_SAFETY_ANALYSIS on a function disables the
/// analysis for its body. Reserve it for patterns the analysis cannot
/// follow (lock handoff between scopes, test-only lock poking) and leave
/// a comment saying why, per the suppression policy in DESIGN.md §9.

#if defined(__clang__) && (!defined(SWIG))
#define QSP_THREAD_ANNOTATION_ATTRIBUTE_(x) __attribute__((x))
#else
#define QSP_THREAD_ANNOTATION_ATTRIBUTE_(x)  // no-op
#endif

/// Documents that a data member is protected by the given capability
/// (almost always a mutex member of the same class).
#define QSP_GUARDED_BY(x) QSP_THREAD_ANNOTATION_ATTRIBUTE_(guarded_by(x))

/// Documents that the *pointee* of a pointer member is protected by the
/// given capability (the pointer itself may be read freely).
#define QSP_PT_GUARDED_BY(x) \
  QSP_THREAD_ANNOTATION_ATTRIBUTE_(pt_guarded_by(x))

/// Declares that callers must hold the capability when calling the
/// function (and still hold it when the function returns).
#define QSP_REQUIRES(...) \
  QSP_THREAD_ANNOTATION_ATTRIBUTE_(requires_capability(__VA_ARGS__))

/// Declares that the function acquires the capability and does not
/// release it before returning.
#define QSP_ACQUIRE(...) \
  QSP_THREAD_ANNOTATION_ATTRIBUTE_(acquire_capability(__VA_ARGS__))

/// Declares that the function releases the capability (which the caller
/// must hold on entry).
#define QSP_RELEASE(...) \
  QSP_THREAD_ANNOTATION_ATTRIBUTE_(release_capability(__VA_ARGS__))

/// Declares that callers must NOT hold the capability (the function
/// acquires it itself — annotating public entry points with this catches
/// self-deadlock at compile time).
#define QSP_EXCLUDES(...) \
  QSP_THREAD_ANNOTATION_ATTRIBUTE_(locks_excluded(__VA_ARGS__))

/// Marks a type as a capability so it can appear in the macros above
/// with a nicer diagnostic name ("mutex 'mu_'").
#define QSP_CAPABILITY(x) QSP_THREAD_ANNOTATION_ATTRIBUTE_(capability(x))

/// Marks an RAII type that acquires a capability at construction and
/// releases it at destruction.
#define QSP_SCOPED_CAPABILITY \
  QSP_THREAD_ANNOTATION_ATTRIBUTE_(scoped_lockable)

/// Declares the function's return value is protected by the capability.
#define QSP_RETURN_CAPABILITY(x) \
  QSP_THREAD_ANNOTATION_ATTRIBUTE_(lock_returned(x))

/// Turns the analysis off for one function. Suppression of last resort;
/// justify with a comment (DESIGN.md §9).
#define QSP_NO_THREAD_SAFETY_ANALYSIS \
  QSP_THREAD_ANNOTATION_ATTRIBUTE_(no_thread_safety_analysis)

#endif  // QSP_UTIL_THREAD_ANNOTATIONS_H_
