#ifndef QSP_UTIL_RNG_H_
#define QSP_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace qsp {

/// Deterministic pseudo-random number generator (xoshiro256**), seeded via
/// SplitMix64. All stochastic behaviour in the library flows through this
/// class so experiments are reproducible from a single seed.
class Rng {
 public:
  /// Seeds the four-word state by iterating SplitMix64 from `seed`.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double UniformDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double UniformDouble(double lo, double hi);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// True with probability `p` (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Sample from a Normal(mean, stddev) via Marsaglia polar method.
  double Normal(double mean, double stddev);

  /// Fisher-Yates shuffle in place.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i)));
      std::swap((*v)[i], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool have_spare_normal_ = false;
  double spare_normal_ = 0.0;
};

}  // namespace qsp

#endif  // QSP_UTIL_RNG_H_
