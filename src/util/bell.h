#ifndef QSP_UTIL_BELL_H_
#define QSP_UTIL_BELL_H_

#include <cstdint>

namespace qsp {

/// Exact n-th Bell number (number of set partitions of n elements), the
/// search-space size of the Partition Algorithm (Section 6.1.1 of the
/// paper). Saturates to UINT64_MAX on overflow (n >= 26).
uint64_t BellNumber(int n);

/// Number of partitions of n elements into at most k non-empty unlabeled
/// parts: sum of Stirling numbers of the second kind S(n, 1..k). This is
/// the search-space size of the exhaustive channel-allocation algorithm
/// with k channels (Section 8.1). Saturates on overflow.
uint64_t PartitionsIntoAtMost(int n, int k);

}  // namespace qsp

#endif  // QSP_UTIL_BELL_H_
