#include "util/json_writer.h"

#include <cmath>
#include <cstdio>

namespace qsp {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  first_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  first_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  if (!first_.empty()) {
    if (!first_.back()) out_ += ',';
    first_.back() = false;
  }
  out_ += '"';
  out_ += JsonEscape(name);
  out_ += "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += JsonEscape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Number(double value) {
  if (!std::isfinite(value)) return Null();
  BeforeValue();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", value);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::UInt(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  BeforeValue();
  out_ += json;
  return *this;
}

}  // namespace qsp
