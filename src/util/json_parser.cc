#include "util/json_parser.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace qsp {
namespace {

constexpr int kMaxDepth = 64;

/// Recursive-descent parser over a byte buffer. Positions are byte
/// offsets into the original text so error messages are actionable.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<JsonValue> Parse() {
    SkipWhitespace();
    JsonValue value;
    QSP_RETURN_IF_ERROR(ParseValue(0, &value));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return value;
  }

 private:
  Status Error(const std::string& what) const {
    return Status::InvalidArgument(what + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(const char* word) {
    const size_t len = std::char_traits<char>::length(word);
    if (text_.compare(pos_, len, word) == 0) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Status ParseValue(int depth, JsonValue* out) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    switch (text_[pos_]) {
      case '{':
        return ParseObject(depth, out);
      case '[':
        return ParseArray(depth, out);
      case '"': {
        std::string s;
        QSP_RETURN_IF_ERROR(ParseString(&s));
        *out = JsonValue::MakeString(std::move(s));
        return Status::OK();
      }
      case 't':
        if (ConsumeWord("true")) {
          *out = JsonValue::MakeBool(true);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) {
          *out = JsonValue::MakeBool(false);
          return Status::OK();
        }
        return Error("invalid literal");
      case 'n':
        if (ConsumeWord("null")) {
          *out = JsonValue::MakeNull();
          return Status::OK();
        }
        return Error("invalid literal");
      default:
        return ParseNumber(out);
    }
  }

  Status ParseObject(int depth, JsonValue* out) {
    ++pos_;  // '{'
    *out = JsonValue::MakeObject();
    SkipWhitespace();
    if (Consume('}')) return Status::OK();
    while (true) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key");
      }
      std::string key;
      QSP_RETURN_IF_ERROR(ParseString(&key));
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      SkipWhitespace();
      JsonValue value;
      QSP_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      out->MutableObject().emplace_back(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume('}')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or '}' in object");
    }
  }

  Status ParseArray(int depth, JsonValue* out) {
    ++pos_;  // '['
    *out = JsonValue::MakeArray();
    SkipWhitespace();
    if (Consume(']')) return Status::OK();
    while (true) {
      SkipWhitespace();
      JsonValue value;
      QSP_RETURN_IF_ERROR(ParseValue(depth + 1, &value));
      out->MutableArray().push_back(std::move(value));
      SkipWhitespace();
      if (Consume(']')) return Status::OK();
      if (!Consume(',')) return Error("expected ',' or ']' in array");
    }
  }

  Status ParseString(std::string* out) {
    ++pos_;  // '"'
    out->clear();
    while (true) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return Status::OK();
      if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
          out->push_back('"');
          break;
        case '\\':
          out->push_back('\\');
          break;
        case '/':
          out->push_back('/');
          break;
        case 'b':
          out->push_back('\b');
          break;
        case 'f':
          out->push_back('\f');
          break;
        case 'n':
          out->push_back('\n');
          break;
        case 'r':
          out->push_back('\r');
          break;
        case 't':
          out->push_back('\t');
          break;
        case 'u': {
          unsigned code = 0;
          QSP_RETURN_IF_ERROR(ParseHex4(&code));
          AppendUtf8(code, out);
          break;
        }
        default:
          return Error("invalid escape sequence");
      }
    }
  }

  Status ParseHex4(unsigned* out) {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      code <<= 4;
      if (c >= '0' && c <= '9') {
        code |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        code |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        code |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        return Error("invalid hex digit in \\u escape");
      }
    }
    *out = code;
    return Status::OK();
  }

  /// Encodes a BMP code point as UTF-8. Surrogate pairs are not
  /// recombined (the writers only ever emit \u00XX control escapes);
  /// lone surrogates pass through as their raw 3-byte encoding.
  static void AppendUtf8(unsigned code, std::string* out) {
    if (code < 0x80) {
      out->push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (code >> 6)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xE0 | (code >> 12)));
      out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Status ParseNumber(JsonValue* out) {
    const size_t start = pos_;
    if (Consume('-')) {
      // Sign consumed; digits must follow.
    }
    if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                    text_[pos_]))) {
      return Error("invalid number");
    }
    // JSON forbids leading zeros: the integer part is "0" or starts 1-9.
    if (text_[pos_] == '0') {
      ++pos_;
      if (pos_ < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        return Error("invalid number: leading zero");
      }
    } else {
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (Consume('.')) {
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                      text_[pos_]))) {
        return Error("invalid number: missing fraction digits");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || !std::isdigit(static_cast<unsigned char>(
                                      text_[pos_]))) {
        return Error("invalid number: missing exponent digits");
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Error("invalid number");
    *out = JsonValue::MakeNumber(value);
    return Status::OK();
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

bool JsonValue::AsBool() const {
  QSP_CHECK(kind_ == Kind::kBool);
  return bool_;
}

double JsonValue::AsNumber() const {
  QSP_CHECK(kind_ == Kind::kNumber);
  return number_;
}

const std::string& JsonValue::AsString() const {
  QSP_CHECK(kind_ == Kind::kString);
  return string_;
}

const std::vector<JsonValue>& JsonValue::AsArray() const {
  QSP_CHECK(kind_ == Kind::kArray);
  return array_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::AsObject()
    const {
  QSP_CHECK(kind_ == Kind::kObject);
  return object_;
}

std::vector<JsonValue>& JsonValue::MutableArray() {
  QSP_CHECK(kind_ == Kind::kArray);
  return array_;
}

std::vector<std::pair<std::string, JsonValue>>& JsonValue::MutableObject() {
  QSP_CHECK(kind_ == Kind::kObject);
  return object_;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Result<JsonValue> ParseJson(const std::string& text) {
  Parser parser(text);
  return parser.Parse();
}

}  // namespace qsp
