#ifndef QSP_UTIL_JSON_WRITER_H_
#define QSP_UTIL_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace qsp {

/// Escapes a string for inclusion inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

/// Minimal streaming JSON builder used by the observability exporters
/// (metric registry, phase tracer, run reports) and TablePrinter::ToJson.
/// Commas and key/value separators are inserted automatically; the caller
/// is responsible for balancing Begin/End calls. Not pretty-printed —
/// output is compact, one line.
///
/// NaN and infinities (which JSON cannot represent) are emitted as null.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Emits an object key; must be followed by exactly one value (or
  /// container). Only valid directly inside an object.
  JsonWriter& Key(const std::string& name);

  JsonWriter& String(const std::string& value);
  JsonWriter& Number(double value);
  JsonWriter& Int(int64_t value);
  JsonWriter& UInt(uint64_t value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  /// Splices a pre-rendered JSON fragment in value position (e.g. the
  /// output of another exporter). The fragment is trusted to be valid.
  JsonWriter& Raw(const std::string& json);

  /// The document built so far.
  const std::string& str() const { return out_; }

 private:
  void BeforeValue();

  std::string out_;
  /// One flag per open container: true until the first element is
  /// written (suppresses the leading comma).
  std::vector<bool> first_;
  bool after_key_ = false;
};

}  // namespace qsp

#endif  // QSP_UTIL_JSON_WRITER_H_
