#ifndef QSP_UTIL_SUMMARY_H_
#define QSP_UTIL_SUMMARY_H_

#include <cstddef>
#include <string>
#include <vector>

namespace qsp {

/// Streaming summary statistics (Welford). Used by the benchmark harnesses
/// to report the per-figure aggregates the paper quotes (means, extrema).
class Summary {
 public:
  /// Folds one observation into the summary.
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return min_; }
  double max() const { return max_; }

  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;

  /// "mean=… min=… max=… n=…" for log lines.
  std::string ToString() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` by linear interpolation.
/// Copies and sorts; intended for end-of-run reporting, not hot paths.
double Quantile(std::vector<double> values, double q);

}  // namespace qsp

#endif  // QSP_UTIL_SUMMARY_H_
