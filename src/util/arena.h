#ifndef QSP_UTIL_ARENA_H_
#define QSP_UTIL_ARENA_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <vector>

namespace qsp {

/// Bump-pointer arena with size-bucketed free lists, built for the
/// allocation pattern of the planner's group memos: very many small
/// nodes of a handful of distinct sizes, allocated hot, individually
/// freed only under churn (cache eviction), and all released at once
/// when the arena dies.
///
/// Allocate() serves from the free list of the exact requested size when
/// one is available, else bumps the current block (blocks double up to a
/// cap, so the arena makes O(log total) calls into ::operator new no
/// matter how many nodes it serves). Deallocate() pushes the chunk onto
/// its size's free list — memory is recycled, never returned to the
/// system before the arena is destroyed. This bounds the footprint under
/// sustained alloc/free churn at the high-water mark of live chunks per
/// size class, which is exactly the guarantee the live service's
/// evicting memo needs.
///
/// Not thread-safe: callers that share an arena across threads guard it
/// with the same mutex that guards the container allocating from it (the
/// MergeContext group shards do).
class Arena {
 public:
  /// `first_block_bytes` sizes the initial bump block; blocks double up
  /// to kMaxBlockBytes as the arena grows.
  explicit Arena(size_t first_block_bytes = 4096)
      : next_block_bytes_(first_block_bytes < kMinBlockBytes
                              ? kMinBlockBytes
                              : first_block_bytes) {}

  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  void* Allocate(size_t bytes, size_t align) {
    bytes = RoundUp(bytes < sizeof(FreeChunk) ? sizeof(FreeChunk) : bytes,
                    align < alignof(FreeChunk) ? alignof(FreeChunk) : align);
    // Exact-size recycling: every chunk of this size ever freed is as
    // good as a fresh one (same size, same worst-case alignment).
    const size_t bucket = BucketOf(bytes);
    if (bucket < free_lists_.size() && free_lists_[bucket] != nullptr) {
      FreeChunk* chunk = free_lists_[bucket];
      free_lists_[bucket] = chunk->next;
      return chunk;
    }
    if (bump_ + bytes > bump_end_) Refill(bytes);
    void* out = bump_;
    bump_ += bytes;
    bytes_served_ += bytes;
    return out;
  }

  /// Returns a chunk previously obtained from Allocate(bytes, align) to
  /// the recycling list. The arena never shrinks before destruction.
  void Deallocate(void* p, size_t bytes, size_t align) {
    bytes = RoundUp(bytes < sizeof(FreeChunk) ? sizeof(FreeChunk) : bytes,
                    align < alignof(FreeChunk) ? alignof(FreeChunk) : align);
    const size_t bucket = BucketOf(bytes);
    if (bucket >= free_lists_.size()) free_lists_.resize(bucket + 1, nullptr);
    FreeChunk* chunk = static_cast<FreeChunk*>(p);
    chunk->next = free_lists_[bucket];
    free_lists_[bucket] = chunk;
  }

  /// Total bytes handed out by the bump pointer (recycled chunks are not
  /// re-counted); a footprint gauge for tests and telemetry.
  size_t bytes_served() const { return bytes_served_; }
  size_t blocks() const { return blocks_.size(); }

 private:
  struct FreeChunk {
    FreeChunk* next;
  };

  static constexpr size_t kMinBlockBytes = 1024;
  static constexpr size_t kMaxBlockBytes = size_t{1} << 20;
  /// Free lists are bucketed by size / kGranularity; sizes are rounded
  /// up to the granularity so every bucket holds one exact chunk size.
  static constexpr size_t kGranularity = alignof(std::max_align_t);

  static size_t RoundUp(size_t n, size_t align) {
    const size_t a = align < kGranularity ? kGranularity : align;
    return (n + a - 1) / a * a;
  }
  static size_t BucketOf(size_t rounded_bytes) {
    return rounded_bytes / kGranularity;
  }

  void Refill(size_t at_least) {
    size_t block_bytes = next_block_bytes_;
    if (block_bytes < at_least) block_bytes = RoundUp(at_least, kGranularity);
    if (next_block_bytes_ < kMaxBlockBytes) next_block_bytes_ *= 2;
    // A new-expression is aligned to the fundamental alignment, which is
    // all the granularity ever asks for (sizes and alignments above
    // max_align_t are rounded up from it, never past it).
    blocks_.push_back(std::unique_ptr<char[]>(new char[block_bytes]));
    bump_ = blocks_.back().get();
    bump_end_ = bump_ + block_bytes;
  }

  std::vector<std::unique_ptr<char[]>> blocks_;
  char* bump_ = nullptr;
  char* bump_end_ = nullptr;
  size_t next_block_bytes_;
  size_t bytes_served_ = 0;
  std::vector<FreeChunk*> free_lists_;
};

/// Minimal std-compatible allocator over an Arena, for node-based
/// containers (the MergeContext group memo's unordered_map): every node
/// and bucket array comes from — and is recycled into — the arena. The
/// arena must outlive every container using it.
template <typename T>
class ArenaAllocator {
 public:
  using value_type = T;

  explicit ArenaAllocator(Arena* arena) : arena_(arena) {}
  template <typename U>
  ArenaAllocator(const ArenaAllocator<U>& other) : arena_(other.arena()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(arena_->Allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, size_t n) {
    arena_->Deallocate(p, n * sizeof(T), alignof(T));
  }

  Arena* arena() const { return arena_; }

  template <typename U>
  bool operator==(const ArenaAllocator<U>& other) const {
    return arena_ == other.arena();
  }
  template <typename U>
  bool operator!=(const ArenaAllocator<U>& other) const {
    return arena_ != other.arena();
  }

 private:
  Arena* arena_;
};

}  // namespace qsp

#endif  // QSP_UTIL_ARENA_H_
