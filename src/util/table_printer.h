#ifndef QSP_UTIL_TABLE_PRINTER_H_
#define QSP_UTIL_TABLE_PRINTER_H_

#include <string>
#include <vector>

namespace qsp {

/// Accumulates rows of string cells and renders them either as an aligned
/// text table (for terminal output of the figure-reproduction harnesses) or
/// as CSV (for downstream plotting).
class TablePrinter {
 public:
  /// Sets the column headers; call before adding rows.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends one row. Rows shorter than the header are right-padded with
  /// empty cells; longer rows extend the width bookkeeping.
  void AddRow(std::vector<std::string> cells);

  /// Convenience for numeric rows: formats each value with %.*g.
  void AddNumericRow(const std::vector<double>& values, int precision = 6);

  /// Aligned, pipe-separated rendering with a header underline.
  std::string ToText() const;

  /// RFC-4180-ish CSV (fields with commas/quotes are quoted).
  std::string ToCsv() const;

  /// JSON array of row objects keyed by header. Cells that parse fully as
  /// numbers are emitted as JSON numbers, everything else as strings, so
  /// downstream tooling can consume figure tables without re-parsing.
  std::string ToJson() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace qsp

#endif  // QSP_UTIL_TABLE_PRINTER_H_
