#include "util/summary.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace qsp {

void Summary::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double Summary::stddev() const { return std::sqrt(variance()); }

std::string Summary::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "mean=%.6g min=%.6g max=%.6g sd=%.6g n=%zu",
                mean(), min_, max_, stddev(), count_);
  return buf;
}

double Quantile(std::vector<double> values, double q) {
  if (values.empty()) return 0.0;
  std::sort(values.begin(), values.end());
  if (q <= 0.0) return values.front();
  if (q >= 1.0) return values.back();
  const double pos = q * static_cast<double>(values.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= values.size()) return values.back();
  return values[lo] * (1.0 - frac) + values[lo + 1] * frac;
}

}  // namespace qsp
