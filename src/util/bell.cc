#include "util/bell.h"

#include <cstddef>
#include <limits>
#include <vector>

namespace qsp {
namespace {

constexpr uint64_t kSaturated = std::numeric_limits<uint64_t>::max();

uint64_t SatAdd(uint64_t a, uint64_t b) {
  return (a > kSaturated - b) ? kSaturated : a + b;
}

uint64_t SatMul(uint64_t a, uint64_t b) {
  if (a == 0 || b == 0) return 0;
  if (a > kSaturated / b) return kSaturated;
  return a * b;
}

}  // namespace

uint64_t BellNumber(int n) {
  if (n <= 0) return 1;
  // Bell triangle.
  std::vector<uint64_t> row = {1};
  for (int i = 1; i <= n; ++i) {
    std::vector<uint64_t> next;
    next.reserve(row.size() + 1);
    next.push_back(row.back());
    for (uint64_t v : row) next.push_back(SatAdd(next.back(), v));
    row = std::move(next);
  }
  return row.front();
}

uint64_t PartitionsIntoAtMost(int n, int k) {
  if (n <= 0) return 1;
  if (k <= 0) return 0;
  // Stirling numbers of the second kind, rolling row:
  // S(i, j) = j*S(i-1, j) + S(i-1, j-1).
  std::vector<uint64_t> s(static_cast<size_t>(n) + 1, 0);
  s[0] = 1;  // Represents S(0, 0); shifted usage below.
  std::vector<uint64_t> prev(static_cast<size_t>(n) + 1, 0);
  prev[0] = 1;
  std::vector<uint64_t> cur(static_cast<size_t>(n) + 1, 0);
  for (int i = 1; i <= n; ++i) {
    cur.assign(cur.size(), 0);
    for (int j = 1; j <= i; ++j) {
      cur[j] = SatAdd(SatMul(static_cast<uint64_t>(j), prev[j]), prev[j - 1]);
    }
    prev = cur;
  }
  uint64_t total = 0;
  for (int j = 1; j <= k && j <= n; ++j) total = SatAdd(total, prev[j]);
  return total;
}

}  // namespace qsp
