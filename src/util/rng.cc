#include "util/rng.h"

#include <cmath>

namespace qsp {
namespace {

uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::UniformDouble() {
  // 53 top bits -> [0, 1).
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next());  // Full 64-bit range.
  // Rejection sampling to remove modulo bias.
  const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % span);
  uint64_t value = Next();
  while (value >= limit) value = Next();
  return lo + static_cast<int64_t>(value % span);
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Normal(double mean, double stddev) {
  if (have_spare_normal_) {
    have_spare_normal_ = false;
    return mean + stddev * spare_normal_;
  }
  double u, v, s;
  do {
    u = UniformDouble(-1.0, 1.0);
    v = UniformDouble(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  have_spare_normal_ = true;
  return mean + stddev * u * factor;
}

}  // namespace qsp
