#ifndef QSP_UTIL_JSON_PARSER_H_
#define QSP_UTIL_JSON_PARSER_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace qsp {

/// A parsed JSON document node. The counterpart of JsonWriter: everything
/// the observability layer emits (metric registries, run reports, EXPLAIN
/// dumps, bench reports) can be read back through ParseJson for
/// round-trip tests and for tools/bench_compare.
///
/// Objects preserve insertion order (a vector of key/value pairs, not a
/// map) so that re-serialization and comparison stay deterministic and
/// duplicate keys — legal JSON, if unwise — survive parsing.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  static JsonValue MakeNull() { return JsonValue(); }
  static JsonValue MakeBool(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue MakeNumber(double d) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = d;
    return v;
  }
  static JsonValue MakeString(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static JsonValue MakeArray() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue MakeObject() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  bool is_number() const { return kind_ == Kind::kNumber; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; die (QSP_CHECK) on kind mismatch, which keeps test
  /// and tool call sites honest without exceptions.
  bool AsBool() const;
  double AsNumber() const;
  const std::string& AsString() const;
  const std::vector<JsonValue>& AsArray() const;
  const std::vector<std::pair<std::string, JsonValue>>& AsObject() const;

  /// Mutable builders used by the parser (and available to tests).
  std::vector<JsonValue>& MutableArray();
  std::vector<std::pair<std::string, JsonValue>>& MutableObject();

  /// First value under `key` in an object, or nullptr when absent (or
  /// when this node is not an object).
  const JsonValue* Find(const std::string& key) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// Parses a complete JSON document. Trailing non-whitespace after the
/// document, unterminated containers, bad escapes and numbers surface as
/// InvalidArgument with a byte offset in the message. Nesting deeper than
/// an internal limit (well beyond anything the exporters emit) is
/// rejected rather than risking stack exhaustion.
Result<JsonValue> ParseJson(const std::string& text);

}  // namespace qsp

#endif  // QSP_UTIL_JSON_PARSER_H_
