#ifndef QSP_UTIL_STATUS_H_
#define QSP_UTIL_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <variant>

namespace qsp {

/// Error categories used across the library. Mirrors the usual
/// database-system status idiom (no exceptions cross the public API).
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kResourceExhausted,
  kInternal,
};

/// A cheap, copyable success-or-error value. OK statuses carry no
/// allocation; error statuses carry a code and a human-readable message.
///
/// The type is [[nodiscard]]: a call that returns a Status and drops it
/// on the floor is a compile error under the project's -Werror wall.
/// When discarding really is correct (a best-effort cleanup path), say so
/// explicitly with QSP_IGNORE_RESULT below — a bare (void) cast is
/// rejected by tools/qsp_lint.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CODE>: <message>" for logs and test failures.
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessors die on misuse
/// (value() on an error), which keeps call sites honest in a library that
/// does not throw. [[nodiscard]] for the same reason Status is.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from value and from error status, so functions can
  /// `return x;` or `return Status::InvalidArgument(...)`.
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    if (std::get<Status>(data_).ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(data_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(data_);
  }

  const T& value() const& {
    CheckOk();
    return std::get<T>(data_);
  }
  T& value() & {
    CheckOk();
    return std::get<T>(data_);
  }
  T&& value() && {
    CheckOk();
    return std::move(std::get<T>(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!ok()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   std::get<Status>(data_).ToString().c_str());
      std::abort();
    }
  }

  std::variant<T, Status> data_;
};

/// Deliberately discards a [[nodiscard]] Status/Result. The marker the
/// static-analysis layer requires at intentional-drop sites: the compiler
/// wall rejects a silently dropped value, and tools/qsp_lint rejects a
/// bare (void) cast of one — this macro is the single sanctioned spelling,
/// so every intentional drop is greppable. Pair it with a comment saying
/// why dropping is correct.
#define QSP_IGNORE_RESULT(expr) static_cast<void>(expr)

/// Propagates an error status to the caller.
#define QSP_RETURN_IF_ERROR(expr)              \
  do {                                         \
    ::qsp::Status qsp_status_tmp_ = (expr);    \
    if (!qsp_status_tmp_.ok()) return qsp_status_tmp_; \
  } while (false)

/// Aborts the process when `cond` is false; used for internal invariants
/// that indicate programming errors rather than recoverable conditions.
#define QSP_CHECK(cond)                                                   \
  do {                                                                    \
    if (!(cond)) {                                                        \
      std::fprintf(stderr, "QSP_CHECK failed at %s:%d: %s\n", __FILE__,   \
                   __LINE__, #cond);                                      \
      std::abort();                                                       \
    }                                                                     \
  } while (false)

}  // namespace qsp

#endif  // QSP_UTIL_STATUS_H_
