#ifndef QSP_UTIL_FLOAT_COMPARE_H_
#define QSP_UTIL_FLOAT_COMPARE_H_

#include <cmath>

namespace qsp {

/// True when `delta` is a real improvement rather than floating-point
/// noise, judged relative to the magnitude of the quantities it was
/// derived from. All local-search loops in the library (hill climbing,
/// directed search, incremental repair) must gate their moves on this:
/// a cost delta of ~1e-14 can be "positive" in both directions of the
/// same move, which turns steepest descent into an infinite oscillation.
inline bool IsImprovement(double delta, double scale) {
  return delta > 1e-9 * (std::abs(scale) + 1.0);
}

}  // namespace qsp

#endif  // QSP_UTIL_FLOAT_COMPARE_H_
