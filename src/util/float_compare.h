#ifndef QSP_UTIL_FLOAT_COMPARE_H_
#define QSP_UTIL_FLOAT_COMPARE_H_

#include <cmath>

namespace qsp {

/// Relative tolerance below which a cost delta is treated as
/// floating-point noise rather than a real improvement.
inline constexpr double kImprovementEpsilon = 1e-9;

/// The acceptance threshold for a move evaluated at magnitude `scale`.
/// Always strictly positive (the +1 keeps it meaningful near zero), and
/// +inf/NaN scales yield a +inf/NaN threshold that rejects everything —
/// a search fed non-finite costs stalls instead of looping.
inline double ImprovementThreshold(double scale) {
  return kImprovementEpsilon * (std::abs(scale) + 1.0);
}

/// True when `delta` is a real improvement rather than floating-point
/// noise, judged relative to the magnitude of the quantities it was
/// derived from. All local-search loops in the library (hill climbing,
/// directed search, incremental repair) must gate their moves on this:
/// a cost delta of ~1e-14 can be "positive" in both directions of the
/// same move, which turns steepest descent into an infinite oscillation.
///
/// No-oscillation guarantee: the threshold is strictly positive, so when
/// IsImprovement(d, s) holds, IsImprovement(-d, s') is false for every
/// s' — a move and its exact reverse can never both be accepted, and a
/// NaN delta (e.g. inf - inf costs) is always rejected.
inline bool IsImprovement(double delta, double scale) {
  return delta > ImprovementThreshold(scale);
}

}  // namespace qsp

#endif  // QSP_UTIL_FLOAT_COMPARE_H_
