#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "util/json_writer.h"

namespace qsp {
namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  rows_.push_back(std::move(cells));
}

void TablePrinter::AddNumericRow(const std::vector<double>& values,
                                 int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size());
  for (double v : values) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*g", precision, v);
    cells.emplace_back(buf);
  }
  AddRow(std::move(cells));
}

std::string TablePrinter::ToText() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string();
      line += cell;
      line.append(widths[i] - cell.size(), ' ');
      if (i + 1 < widths.size()) line += " | ";
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t w : widths) total += w;
  total += widths.empty() ? 0 : 3 * (widths.size() - 1);
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::ToJson() const {
  JsonWriter json;
  json.BeginArray();
  for (const auto& row : rows_) {
    json.BeginObject();
    for (size_t i = 0; i < row.size(); ++i) {
      json.Key(i < headers_.size() ? headers_[i]
                                   : "col" + std::to_string(i));
      const std::string& cell = row[i];
      char* end = nullptr;
      const double value = std::strtod(cell.c_str(), &end);
      if (!cell.empty() && end == cell.c_str() + cell.size()) {
        json.Number(value);
      } else {
        json.String(cell);
      }
    }
    json.EndObject();
  }
  json.EndArray();
  return json.str();
}

std::string TablePrinter::ToCsv() const {
  std::string out;
  auto render = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += ',';
      out += CsvEscape(row[i]);
    }
    out += '\n';
  };
  render(headers_);
  for (const auto& row : rows_) render(row);
  return out;
}

}  // namespace qsp
