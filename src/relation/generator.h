#ifndef QSP_RELATION_GENERATOR_H_
#define QSP_RELATION_GENERATOR_H_

#include <vector>

#include "geom/rect.h"
#include "relation/table.h"
#include "util/rng.h"

namespace qsp {

/// Configuration of the synthetic object space. The paper's evaluation
/// uses a two-attribute database (Figure 15); the "non-uniform object
/// space" extension of Section 11 is covered by Gaussian clusters.
struct TableGeneratorConfig {
  /// Domain of the two position attributes.
  Rect domain = Rect(0, 0, 1000, 1000);
  /// Total number of objects.
  size_t num_objects = 10000;
  /// Fraction of objects drawn from clusters (0 = fully uniform).
  double clustered_fraction = 0.0;
  /// Number of Gaussian clusters when clustered_fraction > 0.
  int num_clusters = 5;
  /// Standard deviation of each cluster as a fraction of domain width.
  double cluster_spread = 0.03;
  /// Extra string payload columns per object.
  int payload_fields = 1;
  /// Bytes of payload per string column (description of the object).
  int payload_bytes = 32;
};

/// Generates a geographic Table per `config`, deterministic in `rng`.
/// Cluster centers are drawn uniformly in the domain; clustered points are
/// Normal(center, spread) and clamped into the domain.
Table GenerateTable(const TableGeneratorConfig& config, Rng* rng);

}  // namespace qsp

#endif  // QSP_RELATION_GENERATOR_H_
