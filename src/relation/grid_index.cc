#include "relation/grid_index.h"

#include <algorithm>

#include "util/status.h"

namespace qsp {

GridIndex::GridIndex(const Table& table, const Rect& domain, int cells_x,
                     int cells_y)
    : table_(table),
      domain_(domain),
      cells_x_(std::max(1, cells_x)),
      cells_y_(std::max(1, cells_y)) {
  QSP_CHECK(!domain.IsEmpty());
  buckets_.resize(static_cast<size_t>(cells_x_) *
                  static_cast<size_t>(cells_y_));
  for (RowId id = 0; id < table.num_rows(); ++id) {
    const Point p = table.PositionOf(id);
    buckets_[CellIndex(ClampCellX(p.x), ClampCellY(p.y))].push_back(id);
  }
}

int GridIndex::ClampCellX(double x) const {
  const double t = (x - domain_.x_lo()) / std::max(domain_.Width(), 1e-300);
  int cell = static_cast<int>(t * cells_x_);
  return std::clamp(cell, 0, cells_x_ - 1);
}

int GridIndex::ClampCellY(double y) const {
  const double t = (y - domain_.y_lo()) / std::max(domain_.Height(), 1e-300);
  int cell = static_cast<int>(t * cells_y_);
  return std::clamp(cell, 0, cells_y_ - 1);
}

std::vector<RowId> GridIndex::Query(const Rect& rect) const {
  std::vector<RowId> out;
  if (rect.IsEmpty()) return out;
  const int cx_lo = ClampCellX(rect.x_lo());
  const int cx_hi = ClampCellX(rect.x_hi());
  const int cy_lo = ClampCellY(rect.y_lo());
  const int cy_hi = ClampCellY(rect.y_hi());
  for (int cy = cy_lo; cy <= cy_hi; ++cy) {
    for (int cx = cx_lo; cx <= cx_hi; ++cx) {
      for (RowId id : buckets_[CellIndex(cx, cy)]) {
        if (rect.Contains(table_.PositionOf(id))) out.push_back(id);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

size_t GridIndex::Count(const Rect& rect) const {
  if (rect.IsEmpty()) return 0;
  size_t count = 0;
  const int cx_lo = ClampCellX(rect.x_lo());
  const int cx_hi = ClampCellX(rect.x_hi());
  const int cy_lo = ClampCellY(rect.y_lo());
  const int cy_hi = ClampCellY(rect.y_hi());
  for (int cy = cy_lo; cy <= cy_hi; ++cy) {
    for (int cx = cx_lo; cx <= cx_hi; ++cx) {
      for (RowId id : buckets_[CellIndex(cx, cy)]) {
        if (rect.Contains(table_.PositionOf(id))) ++count;
      }
    }
  }
  return count;
}

}  // namespace qsp
