#include "relation/generator.h"

#include <algorithm>
#include <string>

#include "geom/point.h"
#include "util/status.h"

namespace qsp {
namespace {

std::string RandomPayload(int bytes, Rng* rng) {
  static constexpr char kAlphabet[] =
      "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789";
  std::string out;
  out.reserve(static_cast<size_t>(bytes));
  for (int i = 0; i < bytes; ++i) {
    out += kAlphabet[rng->UniformInt(0, sizeof(kAlphabet) - 2)];
  }
  return out;
}

}  // namespace

Table GenerateTable(const TableGeneratorConfig& config, Rng* rng) {
  QSP_CHECK(!config.domain.IsEmpty());
  Table table(Schema::Geographic(config.payload_fields));

  std::vector<Point> centers;
  for (int i = 0; i < config.num_clusters; ++i) {
    centers.push_back(
        {rng->UniformDouble(config.domain.x_lo(), config.domain.x_hi()),
         rng->UniformDouble(config.domain.y_lo(), config.domain.y_hi())});
  }
  const double spread = config.cluster_spread * config.domain.Width();

  for (size_t i = 0; i < config.num_objects; ++i) {
    Point p;
    if (!centers.empty() && rng->Bernoulli(config.clustered_fraction)) {
      const Point& c =
          centers[static_cast<size_t>(rng->UniformInt(
              0, static_cast<int64_t>(centers.size()) - 1))];
      p.x = std::clamp(rng->Normal(c.x, spread), config.domain.x_lo(),
                       config.domain.x_hi());
      p.y = std::clamp(rng->Normal(c.y, spread), config.domain.y_lo(),
                       config.domain.y_hi());
    } else {
      p.x = rng->UniformDouble(config.domain.x_lo(), config.domain.x_hi());
      p.y = rng->UniformDouble(config.domain.y_lo(), config.domain.y_hi());
    }
    std::vector<Value> row = {p.x, p.y};
    for (int f = 0; f < config.payload_fields; ++f) {
      row.emplace_back(RandomPayload(config.payload_bytes, rng));
    }
    auto result = table.Insert(std::move(row));
    QSP_CHECK(result.ok());
  }
  return table;
}

}  // namespace qsp
