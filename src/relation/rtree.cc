#include "relation/rtree.h"

#include <algorithm>
#include <cmath>

#include "geom/point.h"
#include "util/status.h"

namespace qsp {

RTree::RTree(const Table& table, int fanout) : table_(table) {
  QSP_CHECK(fanout >= 2);
  const size_t n = table.num_rows();
  if (n == 0) return;

  // STR leaf packing: sort by x, cut into ceil(sqrt(n/B)) vertical
  // slabs of ~B*slab_rows points, sort each slab by y, emit full leaves.
  struct Item {
    Point pos;
    RowId row;
  };
  std::vector<Item> items;
  items.reserve(n);
  for (RowId id = 0; id < n; ++id) items.push_back({table.PositionOf(id), id});

  const size_t capacity = static_cast<size_t>(fanout);
  const size_t num_leaves = (n + capacity - 1) / capacity;
  const size_t num_slabs = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t slab_size =
      ((num_leaves + num_slabs - 1) / num_slabs) * capacity;

  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.pos.x != b.pos.x) return a.pos.x < b.pos.x;
    return a.pos.y < b.pos.y;
  });

  std::vector<uint32_t> level;  // Node indices of the level being built.
  for (size_t slab_start = 0; slab_start < n; slab_start += slab_size) {
    const size_t slab_end = std::min(n, slab_start + slab_size);
    std::sort(items.begin() + static_cast<ptrdiff_t>(slab_start),
              items.begin() + static_cast<ptrdiff_t>(slab_end),
              [](const Item& a, const Item& b) {
                if (a.pos.y != b.pos.y) return a.pos.y < b.pos.y;
                return a.pos.x < b.pos.x;
              });
    for (size_t leaf_start = slab_start; leaf_start < slab_end;
         leaf_start += capacity) {
      const size_t leaf_end = std::min(slab_end, leaf_start + capacity);
      Node leaf;
      leaf.is_leaf = true;
      leaf.bounds = Rect::Empty();
      for (size_t i = leaf_start; i < leaf_end; ++i) {
        leaf.entries.push_back(items[i].row);
        leaf.bounds = leaf.bounds.BoundingUnion(
            Rect(items[i].pos.x, items[i].pos.y, items[i].pos.x,
                 items[i].pos.y));
      }
      leaf.subtree_size = leaf.entries.size();
      level.push_back(static_cast<uint32_t>(nodes_.size()));
      nodes_.push_back(std::move(leaf));
    }
  }
  height_ = 1;

  // Pack upper levels by child-center STR until one root remains.
  while (level.size() > 1) {
    struct Child {
      Point center;
      uint32_t node;
    };
    std::vector<Child> children;
    children.reserve(level.size());
    for (uint32_t idx : level) {
      children.push_back({nodes_[idx].bounds.Center(), idx});
    }
    const size_t num_parents = (children.size() + capacity - 1) / capacity;
    const size_t parent_slabs = static_cast<size_t>(
        std::ceil(std::sqrt(static_cast<double>(num_parents))));
    const size_t parent_slab_size =
        ((num_parents + parent_slabs - 1) / parent_slabs) * capacity;

    std::sort(children.begin(), children.end(),
              [](const Child& a, const Child& b) {
                if (a.center.x != b.center.x) return a.center.x < b.center.x;
                return a.center.y < b.center.y;
              });
    std::vector<uint32_t> next_level;
    for (size_t slab_start = 0; slab_start < children.size();
         slab_start += parent_slab_size) {
      const size_t slab_end =
          std::min(children.size(), slab_start + parent_slab_size);
      std::sort(children.begin() + static_cast<ptrdiff_t>(slab_start),
                children.begin() + static_cast<ptrdiff_t>(slab_end),
                [](const Child& a, const Child& b) {
                  if (a.center.y != b.center.y) return a.center.y < b.center.y;
                  return a.center.x < b.center.x;
                });
      for (size_t start = slab_start; start < slab_end; start += capacity) {
        const size_t end = std::min(slab_end, start + capacity);
        Node parent;
        parent.is_leaf = false;
        parent.bounds = Rect::Empty();
        for (size_t i = start; i < end; ++i) {
          parent.entries.push_back(children[i].node);
          parent.bounds =
              parent.bounds.BoundingUnion(nodes_[children[i].node].bounds);
          parent.subtree_size += nodes_[children[i].node].subtree_size;
        }
        next_level.push_back(static_cast<uint32_t>(nodes_.size()));
        nodes_.push_back(std::move(parent));
      }
    }
    level = std::move(next_level);
    ++height_;
  }
  root_ = static_cast<int>(level.front());
}

void RTree::Visit(uint32_t node, const Rect& rect, std::vector<RowId>* out,
                  size_t* count) const {
  const Node& n = nodes_[node];
  if (!rect.Intersects(n.bounds)) return;
  if (n.is_leaf) {
    for (uint32_t row : n.entries) {
      if (rect.Contains(table_.PositionOf(row))) {
        if (out != nullptr) out->push_back(row);
        if (count != nullptr) ++*count;
      }
    }
    return;
  }
  // Whole-subtree containment: counting needs no per-point checks below.
  if (out == nullptr && rect.Contains(n.bounds)) {
    *count += n.subtree_size;
    return;
  }
  for (uint32_t child : n.entries) Visit(child, rect, out, count);
}

std::vector<RowId> RTree::Query(const Rect& rect) const {
  std::vector<RowId> out;
  if (root_ >= 0 && !rect.IsEmpty()) {
    Visit(static_cast<uint32_t>(root_), rect, &out, nullptr);
    std::sort(out.begin(), out.end());
  }
  return out;
}

size_t RTree::Count(const Rect& rect) const {
  size_t count = 0;
  if (root_ >= 0 && !rect.IsEmpty()) {
    Visit(static_cast<uint32_t>(root_), rect, nullptr, &count);
  }
  return count;
}

}  // namespace qsp
