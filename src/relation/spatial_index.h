#ifndef QSP_RELATION_SPATIAL_INDEX_H_
#define QSP_RELATION_SPATIAL_INDEX_H_

#include <cstddef>
#include <vector>

#include "geom/rect.h"
#include "relation/table.h"

namespace qsp {

/// Access-path abstraction for evaluating geographic range queries: the
/// server and the exact size estimator work against this interface, so
/// the grid file and the R-tree are interchangeable.
class SpatialIndex {
 public:
  virtual ~SpatialIndex() = default;

  /// Row ids whose position lies in `rect`, ascending.
  virtual std::vector<RowId> Query(const Rect& rect) const = 0;

  /// Number of rows in `rect`.
  virtual size_t Count(const Rect& rect) const = 0;
};

}  // namespace qsp

#endif  // QSP_RELATION_SPATIAL_INDEX_H_
