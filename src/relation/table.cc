#include "relation/table.h"

namespace qsp {

Table::Table(Schema schema) : schema_(std::move(schema)) {}

Result<RowId> Table::Insert(std::vector<Value> values) {
  QSP_RETURN_IF_ERROR(schema_.Validate(values));
  if (schema_.num_fields() < 2 ||
      schema_.field(0).type != ValueType::kDouble ||
      schema_.field(1).type != ValueType::kDouble) {
    return Status::FailedPrecondition(
        "table schema must start with two DOUBLE position columns");
  }
  rows_.push_back(std::move(values));
  return static_cast<RowId>(rows_.size() - 1);
}

Point Table::PositionOf(RowId id) const {
  const auto& row = rows_[id];
  return {std::get<double>(row[0]), std::get<double>(row[1])};
}

std::vector<RowId> Table::ScanRange(const Rect& rect) const {
  std::vector<RowId> out;
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (rect.Contains(PositionOf(id))) out.push_back(id);
  }
  return out;
}

size_t Table::CountRange(const Rect& rect) const {
  size_t count = 0;
  for (RowId id = 0; id < rows_.size(); ++id) {
    if (rect.Contains(PositionOf(id))) ++count;
  }
  return count;
}

size_t Table::RowWireSize(RowId id) const {
  size_t bytes = 0;
  for (const Value& v : rows_[id]) bytes += WireSize(v);
  return bytes;
}

double Table::MeanRowWireSize() const {
  if (rows_.empty()) return 0.0;
  size_t total = 0;
  for (RowId id = 0; id < rows_.size(); ++id) total += RowWireSize(id);
  return static_cast<double>(total) / static_cast<double>(rows_.size());
}

}  // namespace qsp
