#ifndef QSP_RELATION_RTREE_H_
#define QSP_RELATION_RTREE_H_

#include <vector>

#include "geom/rect.h"
#include "relation/spatial_index.h"
#include "relation/table.h"

namespace qsp {

/// Static R-tree over the position column of a Table, bulk-loaded with
/// Sort-Tile-Recursive (STR) packing: points are sorted into x-slabs,
/// each slab sorted by y and cut into full leaves; parent levels pack
/// the child bounding boxes the same way. Read-only after construction —
/// the subscription workload evaluates the same merged queries against a
/// periodically rebuilt snapshot, so a packed static tree is the right
/// structure (and its ~100 % fill factor beats a dynamic tree on reads).
class RTree : public SpatialIndex {
 public:
  /// Builds the tree over all rows of `table`. `fanout` is the maximum
  /// entries per node (leaf and internal), >= 2.
  explicit RTree(const Table& table, int fanout = 16);

  std::vector<RowId> Query(const Rect& rect) const override;
  size_t Count(const Rect& rect) const override;

  /// Height of the tree (0 for an empty tree, 1 = root is a leaf).
  int height() const { return height_; }

  /// Total nodes (diagnostics).
  size_t num_nodes() const { return nodes_.size(); }

 private:
  struct Node {
    Rect bounds;
    bool is_leaf = false;
    /// Rows under this subtree (for covered-subtree counting).
    size_t subtree_size = 0;
    /// Leaf: row ids. Internal: indices into nodes_.
    std::vector<uint32_t> entries;
  };

  void Visit(uint32_t node, const Rect& rect,
             std::vector<RowId>* out, size_t* count) const;

  const Table& table_;
  std::vector<Node> nodes_;
  int root_ = -1;
  int height_ = 0;
};

}  // namespace qsp

#endif  // QSP_RELATION_RTREE_H_
