#ifndef QSP_RELATION_TABLE_H_
#define QSP_RELATION_TABLE_H_

#include <cstdint>
#include <vector>

#include "geom/point.h"
#include "geom/rect.h"
#include "relation/schema.h"
#include "relation/value.h"
#include "util/status.h"

namespace qsp {

/// Row identifier within a Table (stable; rows are append-only).
using RowId = uint32_t;

/// A row-store relation. By convention (matching the BADD example) the
/// first two columns are DOUBLE position attributes (x = longitude,
/// y = latitude); geographic range queries select on them.
class Table {
 public:
  explicit Table(Schema schema);

  const Schema& schema() const { return schema_; }
  size_t num_rows() const { return rows_.size(); }

  /// Appends one validated row; returns its RowId.
  Result<RowId> Insert(std::vector<Value> values);

  /// Direct row access; `id` must be < num_rows().
  const std::vector<Value>& row(RowId id) const { return rows_[id]; }

  /// Position of a row (reads the first two DOUBLE columns).
  Point PositionOf(RowId id) const;

  /// Row ids whose position lies in `rect` (closed bounds), in id order.
  /// This is the server's evaluation of a geographic query when no index
  /// is available — a full scan.
  std::vector<RowId> ScanRange(const Rect& rect) const;

  /// Number of rows in `rect`, via full scan.
  size_t CountRange(const Rect& rect) const;

  /// Row ids whose row satisfies `matches` (any callable taking the row
  /// values), in id order. Used for general selection predicates.
  template <typename Matcher>
  std::vector<RowId> ScanWhere(const Matcher& matches) const {
    std::vector<RowId> out;
    for (RowId id = 0; id < rows_.size(); ++id) {
      if (matches(rows_[id])) out.push_back(id);
    }
    return out;
  }

  /// Approximate wire size of one row in bytes (used by byte accounting).
  size_t RowWireSize(RowId id) const;

  /// Mean wire size over all rows (0 if empty).
  double MeanRowWireSize() const;

 private:
  Schema schema_;
  std::vector<std::vector<Value>> rows_;
};

}  // namespace qsp

#endif  // QSP_RELATION_TABLE_H_
