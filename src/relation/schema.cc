#include "relation/schema.h"

namespace qsp {
namespace {

const char* TypeName(ValueType t) {
  switch (t) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "?";
}

}  // namespace

Schema Schema::Geographic(int payload_fields) {
  std::vector<Field> fields = {{"longitude", ValueType::kDouble},
                               {"latitude", ValueType::kDouble}};
  for (int i = 0; i < payload_fields; ++i) {
    fields.push_back({"attr" + std::to_string(i), ValueType::kString});
  }
  return Schema(std::move(fields));
}

std::optional<size_t> Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return i;
  }
  return std::nullopt;
}

Status Schema::Validate(const std::vector<Value>& values) const {
  if (values.size() != fields_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(values.size()) +
        " does not match schema arity " + std::to_string(fields_.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (TypeOf(values[i]) != fields_[i].type) {
      return Status::InvalidArgument("type mismatch in column '" +
                                     fields_[i].name + "'");
    }
  }
  return Status::OK();
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += TypeName(fields_[i].type);
  }
  return out;
}

}  // namespace qsp
