#ifndef QSP_RELATION_SCHEMA_H_
#define QSP_RELATION_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "relation/value.h"
#include "util/status.h"

namespace qsp {

/// One column: name + type.
struct Field {
  std::string name;
  ValueType type;
};

/// An ordered list of named, typed columns. Immutable after construction.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  /// The BADD running-example schema: (longitude DOUBLE, latitude DOUBLE)
  /// followed by `payload_fields` extra string attributes describing the
  /// object at that position.
  static Schema Geographic(int payload_fields = 1);

  size_t num_fields() const { return fields_.size(); }
  const Field& field(size_t i) const { return fields_[i]; }
  const std::vector<Field>& fields() const { return fields_; }

  /// Index of the column with `name`, or nullopt.
  std::optional<size_t> IndexOf(const std::string& name) const;

  /// Verifies `values` matches this schema's arity and types.
  Status Validate(const std::vector<Value>& values) const;

  /// "name:TYPE, ..." rendering.
  std::string ToString() const;

 private:
  std::vector<Field> fields_;
};

}  // namespace qsp

#endif  // QSP_RELATION_SCHEMA_H_
