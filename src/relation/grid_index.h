#ifndef QSP_RELATION_GRID_INDEX_H_
#define QSP_RELATION_GRID_INDEX_H_

#include <vector>

#include "geom/rect.h"
#include "relation/spatial_index.h"
#include "relation/table.h"

namespace qsp {

/// Uniform 2-D grid index over the position columns of a Table. Supports
/// the server's repeated evaluation of merged range queries at a cost far
/// below a full scan, and exact cardinality counting for the
/// ExactEstimator.
class GridIndex : public SpatialIndex {
 public:
  /// Builds an index over `table` with `cells_x` x `cells_y` buckets
  /// covering `domain`. Rows outside the domain are clamped into the
  /// boundary cells so no row is lost.
  GridIndex(const Table& table, const Rect& domain, int cells_x = 64,
            int cells_y = 64);

  /// Row ids whose position lies in `rect`, in ascending id order.
  std::vector<RowId> Query(const Rect& rect) const override;

  /// Number of rows in `rect` (same pruning as Query, no materialization).
  size_t Count(const Rect& rect) const override;

  const Rect& domain() const { return domain_; }

 private:
  size_t CellIndex(int cx, int cy) const {
    return static_cast<size_t>(cy) * static_cast<size_t>(cells_x_) +
           static_cast<size_t>(cx);
  }
  int ClampCellX(double x) const;
  int ClampCellY(double y) const;

  const Table& table_;
  Rect domain_;
  int cells_x_;
  int cells_y_;
  std::vector<std::vector<RowId>> buckets_;
};

}  // namespace qsp

#endif  // QSP_RELATION_GRID_INDEX_H_
