#ifndef QSP_RELATION_VALUE_H_
#define QSP_RELATION_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace qsp {

/// Column types supported by the relational substrate. The BADD-style
/// schema is R(longitude DOUBLE, latitude DOUBLE, <other attributes>).
enum class ValueType { kInt64, kDouble, kString };

/// A single cell. Kept as a variant: this substrate favours clarity over
/// columnar performance — the paper's workloads are thousands of tuples.
using Value = std::variant<int64_t, double, std::string>;

/// Returns the ValueType tag of a Value.
inline ValueType TypeOf(const Value& v) {
  switch (v.index()) {
    case 0:
      return ValueType::kInt64;
    case 1:
      return ValueType::kDouble;
    default:
      return ValueType::kString;
  }
}

/// Approximate wire size in bytes of one cell, used by the dissemination
/// simulator's byte accounting.
inline size_t WireSize(const Value& v) {
  switch (v.index()) {
    case 0:
      return 8;
    case 1:
      return 8;
    default:
      return std::get<std::string>(v).size() + 4;  // length prefix
  }
}

}  // namespace qsp

#endif  // QSP_RELATION_VALUE_H_
