#ifndef QSP_QUERY_MERGE_PROCEDURE_H_
#define QSP_QUERY_MERGE_PROCEDURE_H_

#include <string>
#include <vector>

#include "geom/rect.h"
#include "query/query.h"

namespace qsp {

/// One merged query produced by a merge procedure: the region its answer
/// covers (as interior-disjoint rectangles) and the subscribed queries its
/// answer serves. The answer to a merged query is transmitted as one
/// message / logical channel, so each MergedQuery contributes 1 to |M|.
struct MergedQuery {
  /// Interior-disjoint rectangles whose union is the merged query range.
  std::vector<Rect> region;
  /// Ids of original queries whose answers are derivable from this one.
  std::vector<QueryId> members;
};

/// The paper's mrg() function (Section 3.2, Figure 5): combines a group of
/// queries into one or more merged queries, trading merged-query
/// complexity, extractor complexity, and irrelevant data.
class MergeProcedure {
 public:
  virtual ~MergeProcedure() = default;

  /// Merges `group` (canonical ids into `queries`). Postconditions:
  ///  * every group member appears in at least one result's `members`;
  ///  * each result's region covers the rectangles of its `members`'
  ///    intersection with it (clients can extract their full answers).
  virtual std::vector<MergedQuery> Merge(const QuerySet& queries,
                                         const QueryGroup& group) const = 0;

  /// Human-readable procedure name for reports.
  virtual std::string name() const = 0;
};

/// Figure 5(a): the smallest rectangle bounding the group. One merged
/// query; simple extractors (re-apply the original query); most
/// irrelevant data.
class BoundingRectProcedure : public MergeProcedure {
 public:
  std::vector<MergedQuery> Merge(const QuerySet& queries,
                                 const QueryGroup& group) const override;
  std::string name() const override { return "bounding-rect"; }
};

/// Figure 5(b): a single rectilinear bounding polygon (orthogonal slab
/// hull of the union). One merged query with disjunctions; extractors are
/// still the original queries; less irrelevant data than the rectangle.
class BoundingPolygonProcedure : public MergeProcedure {
 public:
  std::vector<MergedQuery> Merge(const QuerySet& queries,
                                 const QueryGroup& group) const override;
  std::string name() const override { return "bounding-polygon"; }
};

/// Figure 5(c): decomposes the union of the group into pieces such that
/// each piece lies inside every query it serves — zero irrelevant data,
/// but multiple merged queries whose answers clients must combine.
/// Vertically adjacent cells with identical member sets are coalesced to
/// keep the piece count low.
class ExactCoverProcedure : public MergeProcedure {
 public:
  std::vector<MergedQuery> Merge(const QuerySet& queries,
                                 const QueryGroup& group) const override;
  std::string name() const override { return "exact-cover"; }
};

}  // namespace qsp

#endif  // QSP_QUERY_MERGE_PROCEDURE_H_
