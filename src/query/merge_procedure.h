#ifndef QSP_QUERY_MERGE_PROCEDURE_H_
#define QSP_QUERY_MERGE_PROCEDURE_H_

#include <string>
#include <vector>

#include "geom/rect.h"
#include "query/query.h"

namespace qsp {

/// One merged query produced by a merge procedure: the region its answer
/// covers (as interior-disjoint rectangles) and the subscribed queries its
/// answer serves. The answer to a merged query is transmitted as one
/// message / logical channel, so each MergedQuery contributes 1 to |M|.
struct MergedQuery {
  /// Interior-disjoint rectangles whose union is the merged query range.
  std::vector<Rect> region;
  /// Ids of original queries whose answers are derivable from this one.
  std::vector<QueryId> members;
};

/// Structural guarantees a merge procedure makes about its output, used
/// by the planner's admissible benefit bounds (DESIGN.md §8). Each flag
/// licenses one lower bound on the merged size/cost of a group; a
/// procedure that cannot prove a property must leave it false — the
/// bounds then simply prune less.
struct ProcedureTraits {
  /// The procedure always emits exactly one MergedQuery per group
  /// (|M| contribution is 1), so merging two groups saves exactly
  /// K_M * (msgs_a + msgs_b - 1).
  bool single_message = false;
  /// size(merge(A ∪ B)) >= max(size(merge(A)), size(merge(B))): the
  /// merged region of a superset group covers the merged region of any
  /// subset (region monotonicity under an additive estimator).
  bool merged_size_monotone = false;
  /// When the bounding boxes of two groups are disjoint,
  /// size(merge(A ∪ B)) >= size(merge(A)) + size(merge(B)) — their
  /// merged regions cannot overlap, so sizes add.
  bool superadditive_when_disjoint = false;
  /// The merged region covers the bounding box of the group's members,
  /// so size(merge(G)) >= density_floor * Area(bounding box). This is
  /// the only distance-aware bound: it is what lets the spatial index
  /// prune far-apart pairs entirely.
  bool covers_bounding_union = false;
};

/// The paper's mrg() function (Section 3.2, Figure 5): combines a group of
/// queries into one or more merged queries, trading merged-query
/// complexity, extractor complexity, and irrelevant data.
class MergeProcedure {
 public:
  virtual ~MergeProcedure() = default;

  /// Structural guarantees for the planner's pruning bounds. The default
  /// claims nothing, which disables all bound-based pruning for unknown
  /// procedures (always sound).
  virtual ProcedureTraits traits() const { return ProcedureTraits{}; }

  /// Merges `group` (canonical ids into `queries`). Postconditions:
  ///  * every group member appears in at least one result's `members`;
  ///  * each result's region covers the rectangles of its `members`'
  ///    intersection with it (clients can extract their full answers).
  virtual std::vector<MergedQuery> Merge(const QuerySet& queries,
                                         const QueryGroup& group) const = 0;

  /// Human-readable procedure name for reports.
  virtual std::string name() const = 0;
};

/// Figure 5(a): the smallest rectangle bounding the group. One merged
/// query; simple extractors (re-apply the original query); most
/// irrelevant data.
class BoundingRectProcedure : public MergeProcedure {
 public:
  std::vector<MergedQuery> Merge(const QuerySet& queries,
                                 const QueryGroup& group) const override;
  std::string name() const override { return "bounding-rect"; }

  /// The merged region *is* the bounding union, so every trait holds:
  /// one message, bbox-monotone, disjoint bboxes => disjoint regions.
  ProcedureTraits traits() const override {
    return ProcedureTraits{true, true, true, true};
  }
};

/// Figure 5(b): a single rectilinear bounding polygon (orthogonal slab
/// hull of the union). One merged query with disjunctions; extractors are
/// still the original queries; less irrelevant data than the rectangle.
class BoundingPolygonProcedure : public MergeProcedure {
 public:
  std::vector<MergedQuery> Merge(const QuerySet& queries,
                                 const QueryGroup& group) const override;
  std::string name() const override { return "bounding-polygon"; }

  /// One hull per group; the hull (VerticalFill ∩ HorizontalFill) is
  /// monotone under set inclusion of the input rects and is contained in
  /// the bounding box, so disjoint bboxes give disjoint hulls. It does
  /// NOT cover the bounding box (that is its whole point), so the
  /// distance-aware bound is off.
  ProcedureTraits traits() const override {
    return ProcedureTraits{true, true, true, false};
  }
};

/// Figure 5(c): decomposes the union of the group into pieces such that
/// each piece lies inside every query it serves — zero irrelevant data,
/// but multiple merged queries whose answers clients must combine.
/// Vertically adjacent cells with identical member sets are coalesced to
/// keep the piece count low.
class ExactCoverProcedure : public MergeProcedure {
 public:
  std::vector<MergedQuery> Merge(const QuerySet& queries,
                                 const QueryGroup& group) const override;
  std::string name() const override { return "exact-cover"; }

  /// The region is the exact union of member rects: monotone and
  /// additive across disjoint groups, but the piece count (message
  /// count) varies and the union does not cover the bounding box.
  ProcedureTraits traits() const override {
    return ProcedureTraits{false, true, true, false};
  }
};

}  // namespace qsp

#endif  // QSP_QUERY_MERGE_PROCEDURE_H_
