#ifndef QSP_QUERY_EXTRACTOR_H_
#define QSP_QUERY_EXTRACTOR_H_

#include <vector>

#include "geom/rect.h"
#include "query/query.h"
#include "relation/table.h"

namespace qsp {

/// The (e, q) pair a server attaches to a merged answer's header
/// (Section 3.1): client c applies extractor `e` to the merged answer to
/// recover ans(q). For selection queries the extractor is the original
/// query itself — a rectangle filter — which is the representation here.
struct ExtractorSpec {
  QueryId query = 0;
  Rect rect;
};

/// Applies an extractor to a merged answer: keeps the rows of `payload`
/// whose position lies in `spec.rect`. `examined` (optional) returns how
/// many rows the client had to inspect — the client-side filtering work
/// the K_U cost term models.
std::vector<RowId> ApplyExtractor(const ExtractorSpec& spec,
                                  const std::vector<RowId>& payload,
                                  const Table& table,
                                  size_t* examined = nullptr);

/// Merges several partial answers (from multiple merged queries, as the
/// exact-cover procedure produces) into one deduplicated, sorted answer.
std::vector<RowId> CombineAnswers(std::vector<std::vector<RowId>> parts);

}  // namespace qsp

#endif  // QSP_QUERY_EXTRACTOR_H_
