#ifndef QSP_QUERY_MERGE_CONTEXT_H_
#define QSP_QUERY_MERGE_CONTEXT_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "query/merge_procedure.h"
#include "query/query.h"
#include "stats/size_estimator.h"
#include "util/arena.h"
#include "util/thread_annotations.h"

namespace qsp {

/// Aggregate answer statistics of one merged group M_i, the quantities the
/// cost model consumes:
///   messages   — number of merged queries produced for the group
///                (contribution to |M|);
///   size       — total estimated answer size (contribution to size(M));
///   irrelevant — total irrelevant data across the group's member queries
///                (contribution to U(Q, M)).
struct GroupStats {
  double messages = 0.0;
  double size = 0.0;
  double irrelevant = 0.0;
};

/// The oracle the merging algorithms run against: size(q), and the merged
/// statistics of any candidate group under a chosen merge procedure and
/// size estimator. All lookups are memoized, which is what makes the
/// exhaustive partition searches of Sections 6.1/8.1 tractable — the same
/// subgroups recur across thousands of candidate partitions.
///
/// Safe for concurrent callers (the qsp::exec parallel planner loops):
/// the group memo is sharded by group hash, each shard guarded by its own
/// mutex, and statistics are computed outside the lock — two threads
/// racing on the same uncached group both compute the (deterministic)
/// value and the first insert wins. Returned GroupStats references stay
/// valid for the context's lifetime (unordered_map nodes are stable).
/// The underlying estimator and procedure must be safe for concurrent
/// const calls; all estimators in src/stats are (read-only after
/// construction).
///
/// Does not own the query set, estimator, or procedure; all must outlive
/// the context.
class MergeContext {
 public:
  MergeContext(const QuerySet* queries, const SizeEstimator* estimator,
               const MergeProcedure* procedure);

  const QuerySet& queries() const { return *queries_; }
  const MergeProcedure& procedure() const { return *procedure_; }
  const SizeEstimator& estimator() const { return *estimator_; }

  size_t num_queries() const { return queries_->size(); }

  /// size(q): estimated answer size of one original query.
  double Size(QueryId id) const;

  /// Memoized merged statistics of a canonical group.
  const GroupStats& Stats(const QueryGroup& group) const;

  /// The merged queries themselves (geometry + members); not memoized —
  /// used once per group by the dissemination server.
  std::vector<MergedQuery> Merged(const QueryGroup& group) const;

  /// Estimated size of the exact union of two queries; the tight lower
  /// bound on any merged size of {a, b}, used by the clustering pruning
  /// rule (Section 6.3).
  double UnionSize(QueryId a, QueryId b) const;

  /// Estimated size of the intersection of two queries.
  double IntersectionSize(QueryId a, QueryId b) const;

  /// Number of distinct groups evaluated so far (search-effort metric).
  /// With parallel callers this can exceed the serial count slightly
  /// (racing threads may both compute a group before one inserts), so it
  /// is reported as telemetry, never used in cost decisions. Evicted
  /// groups stay counted — eviction reclaims memory, not effort history.
  size_t groups_evaluated() const;

  /// Groups currently memoized (groups_evaluated() minus evictions).
  size_t cached_groups() const;

  /// Bytes the group-memo arenas have handed out (bump allocations only;
  /// recycled chunks are not re-counted). A footprint gauge for tests
  /// and telemetry.
  size_t group_arena_bytes() const;

  /// Evicts every memoized group that contains `id`, returning how many
  /// entries were erased. The long-lived service calls this when a
  /// subscription retires: ids are never reused (QuerySet is
  /// append-only), so entries mentioning a dead id can only ever be
  /// re-read by accident — dropping them bounds the memo's footprint
  /// under sustained churn instead of letting it grow with the total
  /// number of subscriptions ever seen. Correctness is unaffected
  /// (entries are a pure function of the group's ids). Thread-safe, but
  /// concurrent evaluators of a group containing `id` may re-insert it;
  /// the service only evicts ids it already removed from every plan.
  size_t EvictGroupsContaining(QueryId id) const;

 private:
  struct GroupHash {
    size_t operator()(const QueryGroup& g) const {
      uint64_t h = 1469598103934665603ULL;
      for (QueryId id : g) {
        h ^= id;
        h *= 1099511628211ULL;
      }
      return static_cast<size_t>(h);
    }
  };

  /// Group-memo shards: the hash picks the shard, the shard's mutex
  /// guards only its map. 16 shards keep contention negligible even with
  /// every pool worker missing the cache at once (profit-table build).
  ///
  /// Each shard's map draws its nodes and bucket arrays from a private
  /// bump arena: the memo makes millions of small same-shaped node
  /// allocations on the planning hot path, and the arena turns them into
  /// pointer bumps (with free-list recycling keeping the footprint at
  /// the live high-water mark under eviction churn). Only the allocator
  /// touches the arena, and every allocator call happens inside an
  /// insert/erase/clear made under `mu`, so the arena needs no lock of
  /// its own. Node pointers stay stable, preserving the Stats()
  /// reference-lifetime contract.
  static constexpr size_t kGroupShards = 16;
  struct GroupShard {
    mutable std::mutex mu;
    Arena arena;
    using CacheAllocator =
        ArenaAllocator<std::pair<const QueryGroup, GroupStats>>;
    using Cache =
        std::unordered_map<QueryGroup, GroupStats, GroupHash,
                           std::equal_to<QueryGroup>, CacheAllocator>;
    Cache cache QSP_GUARDED_BY(mu){CacheAllocator(&arena)};
  };

  GroupStats Compute(const QueryGroup& group) const;

  const QuerySet* queries_;
  const SizeEstimator* estimator_;
  const MergeProcedure* procedure_;
  mutable std::mutex size_mu_;
  mutable std::vector<double> size_cache_ QSP_GUARDED_BY(size_mu_);
  mutable std::vector<bool> size_known_ QSP_GUARDED_BY(size_mu_);
  mutable std::array<GroupShard, kGroupShards> group_shards_;
  /// Entries erased by EvictGroupsContaining, folded back into
  /// groups_evaluated() so the effort metric stays monotone.
  mutable std::atomic<size_t> groups_evicted_{0};

  // Memoization hit/miss counters of the default registry (ctx.*).
  // Resolved once at construction — null when telemetry was off then, so
  // the hot lookup paths pay a single null check when disabled.
  obs::Counter* size_hits_ = nullptr;
  obs::Counter* size_misses_ = nullptr;
  obs::Counter* group_hits_ = nullptr;
  obs::Counter* group_misses_ = nullptr;
};

}  // namespace qsp

#endif  // QSP_QUERY_MERGE_CONTEXT_H_
