#ifndef QSP_QUERY_MERGE_CONTEXT_H_
#define QSP_QUERY_MERGE_CONTEXT_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"
#include "query/merge_procedure.h"
#include "query/query.h"
#include "stats/size_estimator.h"

namespace qsp {

/// Aggregate answer statistics of one merged group M_i, the quantities the
/// cost model consumes:
///   messages   — number of merged queries produced for the group
///                (contribution to |M|);
///   size       — total estimated answer size (contribution to size(M));
///   irrelevant — total irrelevant data across the group's member queries
///                (contribution to U(Q, M)).
struct GroupStats {
  double messages = 0.0;
  double size = 0.0;
  double irrelevant = 0.0;
};

/// The oracle the merging algorithms run against: size(q), and the merged
/// statistics of any candidate group under a chosen merge procedure and
/// size estimator. All lookups are memoized, which is what makes the
/// exhaustive partition searches of Sections 6.1/8.1 tractable — the same
/// subgroups recur across thousands of candidate partitions.
///
/// Does not own the query set, estimator, or procedure; all must outlive
/// the context.
class MergeContext {
 public:
  MergeContext(const QuerySet* queries, const SizeEstimator* estimator,
               const MergeProcedure* procedure);

  const QuerySet& queries() const { return *queries_; }
  const MergeProcedure& procedure() const { return *procedure_; }
  const SizeEstimator& estimator() const { return *estimator_; }

  size_t num_queries() const { return queries_->size(); }

  /// size(q): estimated answer size of one original query.
  double Size(QueryId id) const;

  /// Memoized merged statistics of a canonical group.
  const GroupStats& Stats(const QueryGroup& group) const;

  /// The merged queries themselves (geometry + members); not memoized —
  /// used once per group by the dissemination server.
  std::vector<MergedQuery> Merged(const QueryGroup& group) const;

  /// Estimated size of the exact union of two queries; the tight lower
  /// bound on any merged size of {a, b}, used by the clustering pruning
  /// rule (Section 6.3).
  double UnionSize(QueryId a, QueryId b) const;

  /// Estimated size of the intersection of two queries.
  double IntersectionSize(QueryId a, QueryId b) const;

  /// Number of distinct groups evaluated so far (search-effort metric).
  size_t groups_evaluated() const { return group_cache_.size(); }

 private:
  struct GroupHash {
    size_t operator()(const QueryGroup& g) const {
      uint64_t h = 1469598103934665603ULL;
      for (QueryId id : g) {
        h ^= id;
        h *= 1099511628211ULL;
      }
      return static_cast<size_t>(h);
    }
  };

  GroupStats Compute(const QueryGroup& group) const;

  const QuerySet* queries_;
  const SizeEstimator* estimator_;
  const MergeProcedure* procedure_;
  mutable std::vector<double> size_cache_;
  mutable std::vector<bool> size_known_;
  mutable std::unordered_map<QueryGroup, GroupStats, GroupHash> group_cache_;

  // Memoization hit/miss counters of the default registry (ctx.*).
  // Resolved once at construction — null when telemetry was off then, so
  // the hot lookup paths pay a single null check when disabled.
  obs::Counter* size_hits_ = nullptr;
  obs::Counter* size_misses_ = nullptr;
  obs::Counter* group_hits_ = nullptr;
  obs::Counter* group_misses_ = nullptr;
};

}  // namespace qsp

#endif  // QSP_QUERY_MERGE_CONTEXT_H_
