#include "query/merge_context.h"

#include <algorithm>

#include "geom/region.h"
#include "util/status.h"

namespace qsp {

MergeContext::MergeContext(const QuerySet* queries,
                           const SizeEstimator* estimator,
                           const MergeProcedure* procedure)
    : queries_(queries), estimator_(estimator), procedure_(procedure) {
  QSP_CHECK(queries != nullptr);
  QSP_CHECK(estimator != nullptr);
  QSP_CHECK(procedure != nullptr);
  size_cache_.resize(queries->size(), 0.0);
  size_known_.resize(queries->size(), false);
  if (obs::Enabled()) {
    auto& registry = obs::MetricRegistry::Default();
    size_hits_ = &registry.counter("ctx.size_cache.hits");
    size_misses_ = &registry.counter("ctx.size_cache.misses");
    group_hits_ = &registry.counter("ctx.group_cache.hits");
    group_misses_ = &registry.counter("ctx.group_cache.misses");
  }
}

double MergeContext::Size(QueryId id) const {
  {
    std::lock_guard<std::mutex> lock(size_mu_);
    if (size_cache_.size() != queries_->size()) {
      // The query set changed size (dynamic scenario). Growth keeps old
      // ids valid, so cached entries survive; a shrink reassigns ids, so
      // every cached size — and every cached group keyed by those ids —
      // is stale and must go. (Not safe concurrently with planning; the
      // dynamic scenario mutates between rounds.)
      if (size_cache_.size() > queries_->size()) {
        size_cache_.clear();
        size_known_.clear();
        for (GroupShard& shard : group_shards_) {
          std::lock_guard<std::mutex> shard_lock(shard.mu);
          shard.cache.clear();
        }
      }
      size_cache_.resize(queries_->size(), 0.0);
      size_known_.resize(queries_->size(), false);
    }
    QSP_CHECK(id < size_cache_.size());
    if (size_known_[id]) {
      if (size_hits_ != nullptr) size_hits_->Add();
      return size_cache_[id];
    }
  }
  // Compute outside the lock: the estimator call is the expensive part
  // and is deterministic, so racing threads agree on the value.
  const double size = estimator_->EstimateSize(queries_->rect(id));
  std::lock_guard<std::mutex> lock(size_mu_);
  if (!size_known_[id]) {
    if (size_misses_ != nullptr) size_misses_->Add();
    size_cache_[id] = size;
    size_known_[id] = true;
  } else if (size_hits_ != nullptr) {
    size_hits_->Add();
  }
  return size_cache_[id];
}

const GroupStats& MergeContext::Stats(const QueryGroup& group) const {
  GroupShard& shard =
      group_shards_[GroupHash{}(group) % kGroupShards];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.cache.find(group);
    if (it != shard.cache.end()) {
      if (group_hits_ != nullptr) group_hits_->Add();
      return it->second;
    }
  }
  // Compute outside the lock (procedure merge + estimator calls dominate;
  // both are deterministic). try_emplace keeps the first insert on a
  // race, so every caller sees the same node.
  GroupStats stats = Compute(group);
  if (group_misses_ != nullptr) group_misses_->Add();
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.cache.try_emplace(group, stats).first->second;
}

size_t MergeContext::groups_evaluated() const {
  size_t total = groups_evicted_.load(std::memory_order_relaxed);
  for (const GroupShard& shard : group_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.cache.size();
  }
  return total;
}

size_t MergeContext::cached_groups() const {
  size_t total = 0;
  for (const GroupShard& shard : group_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.cache.size();
  }
  return total;
}

size_t MergeContext::group_arena_bytes() const {
  size_t total = 0;
  for (const GroupShard& shard : group_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.arena.bytes_served();
  }
  return total;
}

size_t MergeContext::EvictGroupsContaining(QueryId id) const {
  size_t erased = 0;
  for (GroupShard& shard : group_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (auto it = shard.cache.begin(); it != shard.cache.end();) {
      // Groups are canonical (sorted ascending), so membership is a
      // binary search.
      if (std::binary_search(it->first.begin(), it->first.end(), id)) {
        it = shard.cache.erase(it);
        ++erased;
      } else {
        ++it;
      }
    }
  }
  groups_evicted_.fetch_add(erased, std::memory_order_relaxed);
  obs::Count("ctx.group_cache.evictions", erased);
  return erased;
}

GroupStats MergeContext::Compute(const QueryGroup& group) const {
  GroupStats stats;
  if (group.empty()) return stats;
  if (group.size() == 1) {
    // A singleton group is transmitted as-is: one message, no overhead.
    stats.messages = 1.0;
    stats.size = Size(group[0]);
    stats.irrelevant = 0.0;
    return stats;
  }
  for (const MergedQuery& merged : procedure_->Merge(*queries_, group)) {
    const double merged_size = estimator_->EstimateRegionSize(merged.region);
    stats.messages += 1.0;
    stats.size += merged_size;
    for (QueryId member : merged.members) {
      const Rect& member_rect = queries_->rect(member);
      // Portion of the merged answer relevant to this member.
      double relevant = 0.0;
      for (const Rect& piece : merged.region) {
        const Rect clipped = piece.Intersection(member_rect);
        if (!clipped.IsEmpty()) relevant += estimator_->EstimateSize(clipped);
      }
      stats.irrelevant += merged_size - relevant;
    }
  }
  return stats;
}

std::vector<MergedQuery> MergeContext::Merged(const QueryGroup& group) const {
  return procedure_->Merge(*queries_, group);
}

double MergeContext::UnionSize(QueryId a, QueryId b) const {
  const Rect& ra = queries_->rect(a);
  const Rect& rb = queries_->rect(b);
  // Fast path for x-separated positive-area rects: UnionOf's slab sweep
  // provably decomposes such a pair into exactly the two input rects
  // ordered by x_lo, so we can skip the sweep and hand the estimator the
  // identical piece list (bit-exact, including the virtual
  // EstimateRegionSize dispatch). Touching edges (x_hi == x_lo) included.
  // y-separated-but-x-overlapping pairs get slab cuts, so no fast path.
  if (ra.Width() > 0 && ra.Height() > 0 && rb.Width() > 0 && rb.Height() > 0) {
    if (ra.x_hi() <= rb.x_lo()) {
      return estimator_->EstimateRegionSize({ra, rb});
    }
    if (rb.x_hi() <= ra.x_lo()) {
      return estimator_->EstimateRegionSize({rb, ra});
    }
  }
  RectilinearRegion region = RectilinearRegion::UnionOf({ra, rb});
  return estimator_->EstimateRegionSize(region.pieces());
}

double MergeContext::IntersectionSize(QueryId a, QueryId b) const {
  const Rect overlap = queries_->rect(a).Intersection(queries_->rect(b));
  return overlap.IsEmpty() ? 0.0 : estimator_->EstimateSize(overlap);
}

}  // namespace qsp
