#ifndef QSP_QUERY_QUERY_H_
#define QSP_QUERY_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "geom/rect.h"

namespace qsp {

/// Identifier of a subscribed query. Ids are dense: the i-th query added
/// to a QuerySet has id i.
using QueryId = uint32_t;

/// A group of query ids scheduled to be merged together — one element
/// M_i of the paper's collection M. Canonical form is sorted ascending.
using QueryGroup = std::vector<QueryId>;

/// A geographic range query: sigma_{rect contains (longitude, latitude)} R.
struct RangeQuery {
  QueryId id = 0;
  Rect rect;
};

/// The set Q of all queries received by the server. Append-only.
class QuerySet {
 public:
  QuerySet() = default;

  /// Convenience constructor from raw rectangles (ids assigned 0..n-1).
  explicit QuerySet(const std::vector<Rect>& rects);

  /// Adds a query; returns its id.
  QueryId Add(const Rect& rect);

  size_t size() const { return queries_.size(); }
  bool empty() const { return queries_.empty(); }

  const RangeQuery& query(QueryId id) const { return queries_[id]; }
  const Rect& rect(QueryId id) const { return queries_[id].rect; }

  /// All ids, ascending.
  std::vector<QueryId> AllIds() const;

  /// The rectangles of a group, in group order.
  std::vector<Rect> RectsOf(const QueryGroup& group) const;

 private:
  std::vector<RangeQuery> queries_;
};

/// A candidate solution of the query merging problem: the collection
/// M = {M_1, ..., M_m}. Under the single-allocation property (Section
/// 6.1.1) this is a set partition of the query ids.
using Partition = std::vector<QueryGroup>;

/// The no-merging partition {{0}, {1}, ..., {n-1}}.
Partition SingletonPartition(size_t num_queries);

/// Partition with every query in one group.
Partition OneGroupPartition(size_t num_queries);

/// Sorts each group and orders groups by first element, dropping empties,
/// so structurally equal partitions compare equal.
void CanonicalizePartition(Partition* partition);

/// Validates that `partition` covers ids 0..num_queries-1 exactly once.
bool IsValidPartition(const Partition& partition, size_t num_queries);

/// Sorts and deduplicates a group into canonical form.
void CanonicalizeGroup(QueryGroup* group);

/// Merges two canonical groups into a new canonical group.
QueryGroup UnionGroups(const QueryGroup& a, const QueryGroup& b);

/// "{0,3,7}" rendering for logs and tests.
std::string GroupToString(const QueryGroup& group);

}  // namespace qsp

#endif  // QSP_QUERY_QUERY_H_
