#ifndef QSP_QUERY_PREDICATE_H_
#define QSP_QUERY_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "geom/rect.h"
#include "relation/schema.h"
#include "relation/value.h"
#include "util/status.h"

namespace qsp {

/// Comparison operators of the selection language.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

class Predicate;
using PredicateRef = std::shared_ptr<const Predicate>;

/// An immutable selection-predicate AST over a relation's columns — the
/// paper's sigma queries in their general form ("our system can handle
/// more complicated queries", Section 2). Geographic rectangle queries
/// are the special case of a conjunction of range comparisons on the two
/// position columns; ExtractRange recovers that rectangle.
class Predicate {
 public:
  enum class Kind { kTrue, kCompare, kAnd, kOr, kNot };

  /// Factories. Comparisons take the column by name; binding to a
  /// concrete schema happens in BoundPredicate.
  static PredicateRef True();
  static PredicateRef Compare(std::string column, CompareOp op,
                              Value constant);
  static PredicateRef And(PredicateRef left, PredicateRef right);
  static PredicateRef Or(PredicateRef left, PredicateRef right);
  static PredicateRef Not(PredicateRef operand);

  /// Convenience: column BETWEEN lo AND hi.
  static PredicateRef Between(const std::string& column, double lo,
                              double hi);

  Kind kind() const { return kind_; }
  const std::string& column() const { return column_; }
  CompareOp op() const { return op_; }
  const Value& constant() const { return constant_; }
  const PredicateRef& left() const { return left_; }
  const PredicateRef& right() const { return right_; }

  /// SQL-ish rendering, e.g. "(latitude >= 2 AND latitude <= 40)".
  std::string ToString() const;

 private:
  Predicate() = default;

  Kind kind_ = Kind::kTrue;
  std::string column_;
  CompareOp op_ = CompareOp::kEq;
  Value constant_ = int64_t{0};
  PredicateRef left_;
  PredicateRef right_;
};

/// A predicate resolved against a concrete schema (column names become
/// indexes), ready to evaluate against rows.
class BoundPredicate {
 public:
  /// Fails if the predicate references a column the schema lacks or
  /// compares a column against a constant of the wrong type.
  static Result<BoundPredicate> Bind(PredicateRef predicate,
                                     const Schema& schema);

  /// True when the row satisfies the predicate.
  bool Matches(const std::vector<Value>& row) const;

 private:
  struct Node {
    Predicate::Kind kind;
    size_t column = 0;
    CompareOp op = CompareOp::kEq;
    Value constant = int64_t{0};
    // Children indices into nodes_ (kAnd/kOr: both; kNot: left only).
    int left = -1;
    int right = -1;
  };

  bool Eval(int node, const std::vector<Value>& row) const;

  std::vector<Node> nodes_;  // nodes_[0] is the root (if non-empty).
};

/// Analyzes a predicate and returns the tightest rectangle R over the
/// two position columns such that the predicate implies "position in R",
/// starting from `domain`. Returns an error when the predicate is not a
/// pure conjunction of comparisons on the position columns (an OR, NOT,
/// or a constraint on a payload column cannot be turned into one
/// geographic query). This is the bridge from the general selection
/// language to the paper's rectangle queries.
Result<Rect> ExtractRange(const PredicateRef& predicate,
                          const Schema& schema, const Rect& domain);

/// Parses a SQL-ish selection predicate, e.g.
///   "longitude BETWEEN 2 AND 41 AND latitude <= 40"
///   "(a >= 1 OR b = 'x') AND NOT c < 5".
/// Grammar: expr := term (OR term)*; term := factor (AND factor)*;
/// factor := NOT factor | '(' expr ')' | column op value |
///           column BETWEEN value AND value.
/// Values are numbers (DOUBLE constants) or single-quoted strings.
Result<PredicateRef> ParsePredicate(const std::string& text);

}  // namespace qsp

#endif  // QSP_QUERY_PREDICATE_H_
