#include "query/predicate.h"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace qsp {
namespace {

const char* OpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

std::string ValueToString(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::to_string(std::get<int64_t>(v));
    case 1: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v));
      return buf;
    }
    default:
      return "'" + std::get<std::string>(v) + "'";
  }
}

/// Compares a row value against a constant. Int64 and double compare
/// numerically; strings lexicographically. Mixed string/number is false
/// (Bind rejects it anyway).
bool CompareValues(const Value& lhs, CompareOp op, const Value& rhs) {
  int cmp;
  if (std::holds_alternative<std::string>(lhs) ||
      std::holds_alternative<std::string>(rhs)) {
    if (!std::holds_alternative<std::string>(lhs) ||
        !std::holds_alternative<std::string>(rhs)) {
      return false;
    }
    const auto& a = std::get<std::string>(lhs);
    const auto& b = std::get<std::string>(rhs);
    cmp = a < b ? -1 : (a == b ? 0 : 1);
  } else {
    const double a = std::holds_alternative<double>(lhs)
                         ? std::get<double>(lhs)
                         : static_cast<double>(std::get<int64_t>(lhs));
    const double b = std::holds_alternative<double>(rhs)
                         ? std::get<double>(rhs)
                         : static_cast<double>(std::get<int64_t>(rhs));
    cmp = a < b ? -1 : (a == b ? 0 : 1);
  }
  switch (op) {
    case CompareOp::kEq:
      return cmp == 0;
    case CompareOp::kNe:
      return cmp != 0;
    case CompareOp::kLt:
      return cmp < 0;
    case CompareOp::kLe:
      return cmp <= 0;
    case CompareOp::kGt:
      return cmp > 0;
    case CompareOp::kGe:
      return cmp >= 0;
  }
  return false;
}

PredicateRef MakeNode(Predicate&& node) {
  return std::make_shared<const Predicate>(std::move(node));
}

}  // namespace

// Predicate has a private default constructor; the factories build nodes
// through this friend-free helper by value-initializing fields directly.
PredicateRef Predicate::True() {
  Predicate node;
  node.kind_ = Kind::kTrue;
  return MakeNode(std::move(node));
}

PredicateRef Predicate::Compare(std::string column, CompareOp op,
                                Value constant) {
  Predicate node;
  node.kind_ = Kind::kCompare;
  node.column_ = std::move(column);
  node.op_ = op;
  node.constant_ = std::move(constant);
  return MakeNode(std::move(node));
}

PredicateRef Predicate::And(PredicateRef left, PredicateRef right) {
  Predicate node;
  node.kind_ = Kind::kAnd;
  node.left_ = std::move(left);
  node.right_ = std::move(right);
  return MakeNode(std::move(node));
}

PredicateRef Predicate::Or(PredicateRef left, PredicateRef right) {
  Predicate node;
  node.kind_ = Kind::kOr;
  node.left_ = std::move(left);
  node.right_ = std::move(right);
  return MakeNode(std::move(node));
}

PredicateRef Predicate::Not(PredicateRef operand) {
  Predicate node;
  node.kind_ = Kind::kNot;
  node.left_ = std::move(operand);
  return MakeNode(std::move(node));
}

PredicateRef Predicate::Between(const std::string& column, double lo,
                                double hi) {
  return And(Compare(column, CompareOp::kGe, lo),
             Compare(column, CompareOp::kLe, hi));
}

std::string Predicate::ToString() const {
  switch (kind_) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kCompare:
      return column_ + " " + OpName(op_) + " " + ValueToString(constant_);
    case Kind::kAnd:
    case Kind::kOr: {
      // Built with append rather than chained operator+ to sidestep a
      // spurious GCC 12 -Wrestrict diagnostic on the inlined concat.
      std::string out = "(";
      out += left_->ToString();
      out += kind_ == Kind::kAnd ? " AND " : " OR ";
      out += right_->ToString();
      out += ")";
      return out;
    }
    case Kind::kNot:
      return "NOT " + left_->ToString();
  }
  return "?";
}

// ---------------------------------------------------------------- Bind

Result<BoundPredicate> BoundPredicate::Bind(PredicateRef predicate,
                                            const Schema& schema) {
  BoundPredicate bound;
  // Recursive flatten into nodes_; returns node index or -1 on error.
  Status error = Status::OK();
  auto flatten = [&](auto&& self, const Predicate& p) -> int {
    Node node;
    node.kind = p.kind();
    switch (p.kind()) {
      case Predicate::Kind::kTrue:
        break;
      case Predicate::Kind::kCompare: {
        auto index = schema.IndexOf(p.column());
        if (!index.has_value()) {
          error = Status::NotFound("unknown column '" + p.column() + "'");
          return -1;
        }
        const ValueType column_type = schema.field(*index).type;
        const bool constant_is_string =
            std::holds_alternative<std::string>(p.constant());
        if ((column_type == ValueType::kString) != constant_is_string) {
          error = Status::InvalidArgument(
              "type mismatch comparing column '" + p.column() + "'");
          return -1;
        }
        node.column = *index;
        node.op = p.op();
        node.constant = p.constant();
        break;
      }
      case Predicate::Kind::kAnd:
      case Predicate::Kind::kOr: {
        node.left = self(self, *p.left());
        if (node.left < 0) return -1;
        node.right = self(self, *p.right());
        if (node.right < 0) return -1;
        break;
      }
      case Predicate::Kind::kNot: {
        node.left = self(self, *p.left());
        if (node.left < 0) return -1;
        break;
      }
    }
    bound.nodes_.push_back(std::move(node));
    return static_cast<int>(bound.nodes_.size()) - 1;
  };
  if (predicate == nullptr) {
    return Status::InvalidArgument("null predicate");
  }
  // Nodes are appended post-order, so the root is the last node;
  // Matches() evaluates from there.
  const int root = flatten(flatten, *predicate);
  if (root < 0) return error;
  return bound;
}

bool BoundPredicate::Eval(int node, const std::vector<Value>& row) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  switch (n.kind) {
    case Predicate::Kind::kTrue:
      return true;
    case Predicate::Kind::kCompare:
      return CompareValues(row[n.column], n.op, n.constant);
    case Predicate::Kind::kAnd:
      return Eval(n.left, row) && Eval(n.right, row);
    case Predicate::Kind::kOr:
      return Eval(n.left, row) || Eval(n.right, row);
    case Predicate::Kind::kNot:
      return !Eval(n.left, row);
  }
  return false;
}

bool BoundPredicate::Matches(const std::vector<Value>& row) const {
  if (nodes_.empty()) return true;
  return Eval(static_cast<int>(nodes_.size()) - 1, row);  // Post-order root.
}

// --------------------------------------------------------- ExtractRange

namespace {

/// Applies one comparison on a position axis to the interval [lo, hi].
Status TightenAxis(CompareOp op, double value, double* lo, double* hi) {
  switch (op) {
    case CompareOp::kLe:
    case CompareOp::kLt:  // Closed-interval approximation of <.
      *hi = std::min(*hi, value);
      return Status::OK();
    case CompareOp::kGe:
    case CompareOp::kGt:
      *lo = std::max(*lo, value);
      return Status::OK();
    case CompareOp::kEq:
      *lo = std::max(*lo, value);
      *hi = std::min(*hi, value);
      return Status::OK();
    case CompareOp::kNe:
      return Status::InvalidArgument(
          "'!=' constraints cannot form a range query");
  }
  return Status::Internal("unreachable");
}

Status CollectConjuncts(const Predicate& p, const Schema& schema,
                        double* x_lo, double* x_hi, double* y_lo,
                        double* y_hi) {
  switch (p.kind()) {
    case Predicate::Kind::kTrue:
      return Status::OK();
    case Predicate::Kind::kAnd:
      QSP_RETURN_IF_ERROR(
          CollectConjuncts(*p.left(), schema, x_lo, x_hi, y_lo, y_hi));
      return CollectConjuncts(*p.right(), schema, x_lo, x_hi, y_lo, y_hi);
    case Predicate::Kind::kOr:
    case Predicate::Kind::kNot:
      return Status::InvalidArgument(
          "only conjunctions of comparisons form a range query");
    case Predicate::Kind::kCompare: {
      auto index = schema.IndexOf(p.column());
      if (!index.has_value()) {
        return Status::NotFound("unknown column '" + p.column() + "'");
      }
      if (*index > 1) {
        return Status::InvalidArgument(
            "constraint on non-position column '" + p.column() +
            "' cannot join a geographic range query");
      }
      if (!std::holds_alternative<double>(p.constant()) &&
          !std::holds_alternative<int64_t>(p.constant())) {
        return Status::InvalidArgument("position constraints need numbers");
      }
      const double value =
          std::holds_alternative<double>(p.constant())
              ? std::get<double>(p.constant())
              : static_cast<double>(std::get<int64_t>(p.constant()));
      return *index == 0 ? TightenAxis(p.op(), value, x_lo, x_hi)
                         : TightenAxis(p.op(), value, y_lo, y_hi);
    }
  }
  return Status::Internal("unreachable");
}

}  // namespace

Result<Rect> ExtractRange(const PredicateRef& predicate,
                          const Schema& schema, const Rect& domain) {
  if (predicate == nullptr) {
    return Status::InvalidArgument("null predicate");
  }
  double x_lo = domain.x_lo(), x_hi = domain.x_hi();
  double y_lo = domain.y_lo(), y_hi = domain.y_hi();
  QSP_RETURN_IF_ERROR(
      CollectConjuncts(*predicate, schema, &x_lo, &x_hi, &y_lo, &y_hi));
  return Rect(x_lo, y_lo, x_hi, y_hi);
}

// --------------------------------------------------------------- Parser

namespace {

/// Hand-rolled recursive-descent parser for the grammar in the header.
class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Result<PredicateRef> Parse() {
    auto expr = ParseOr();
    if (!expr.ok()) return expr;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing input at offset " +
                                     std::to_string(pos_));
    }
    return expr;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  /// Case-insensitive keyword match followed by a non-identifier char.
  bool ConsumeKeyword(const char* keyword) {
    SkipSpace();
    size_t p = pos_;
    for (const char* k = keyword; *k != '\0'; ++k, ++p) {
      if (p >= text_.size() ||
          std::toupper(static_cast<unsigned char>(text_[p])) != *k) {
        return false;
      }
    }
    if (p < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[p])) ||
         text_[p] == '_')) {
      return false;
    }
    pos_ = p;
    return true;
  }

  bool ConsumeChar(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<PredicateRef> ParseOr() {
    auto left = ParseAnd();
    if (!left.ok()) return left;
    PredicateRef result = left.value();
    while (ConsumeKeyword("OR")) {
      auto right = ParseAnd();
      if (!right.ok()) return right;
      result = Predicate::Or(result, right.value());
    }
    return result;
  }

  Result<PredicateRef> ParseAnd() {
    auto left = ParseFactor();
    if (!left.ok()) return left;
    PredicateRef result = left.value();
    while (ConsumeKeyword("AND")) {
      auto right = ParseFactor();
      if (!right.ok()) return right;
      result = Predicate::And(result, right.value());
    }
    return result;
  }

  Result<PredicateRef> ParseFactor() {
    if (ConsumeKeyword("NOT")) {
      auto operand = ParseFactor();
      if (!operand.ok()) return operand;
      return Predicate::Not(operand.value());
    }
    if (ConsumeKeyword("TRUE")) return Predicate::True();
    if (ConsumeChar('(')) {
      auto inner = ParseOr();
      if (!inner.ok()) return inner;
      if (!ConsumeChar(')')) {
        return Status::InvalidArgument("expected ')' at offset " +
                                       std::to_string(pos_));
      }
      return inner;
    }
    return ParseComparison();
  }

  Result<PredicateRef> ParseComparison() {
    auto column = ParseIdentifier();
    if (!column.ok()) return column.status();
    if (ConsumeKeyword("BETWEEN")) {
      auto lo = ParseNumber();
      if (!lo.ok()) return lo.status();
      if (!ConsumeKeyword("AND")) {
        return Status::InvalidArgument("BETWEEN needs AND");
      }
      auto hi = ParseNumber();
      if (!hi.ok()) return hi.status();
      return Predicate::Between(column.value(), lo.value(), hi.value());
    }
    auto op = ParseOp();
    if (!op.ok()) return op.status();
    auto value = ParseValue();
    if (!value.ok()) return value.status();
    return Predicate::Compare(column.value(), op.value(), value.value());
  }

  Result<std::string> ParseIdentifier() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) {
      return Status::InvalidArgument("expected identifier at offset " +
                                     std::to_string(pos_));
    }
    return text_.substr(start, pos_ - start);
  }

  Result<CompareOp> ParseOp() {
    SkipSpace();
    auto starts = [&](const char* s) {
      return text_.compare(pos_, std::char_traits<char>::length(s), s) == 0;
    };
    if (starts("<=")) {
      pos_ += 2;
      return CompareOp::kLe;
    }
    if (starts(">=")) {
      pos_ += 2;
      return CompareOp::kGe;
    }
    if (starts("!=") || starts("<>")) {
      pos_ += 2;
      return CompareOp::kNe;
    }
    if (starts("<")) {
      pos_ += 1;
      return CompareOp::kLt;
    }
    if (starts(">")) {
      pos_ += 1;
      return CompareOp::kGt;
    }
    if (starts("=")) {
      pos_ += 1;
      return CompareOp::kEq;
    }
    return Status::InvalidArgument("expected comparison operator at offset " +
                                   std::to_string(pos_));
  }

  Result<double> ParseNumber() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    bool digits = false;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            ((text_[pos_] == '-' || text_[pos_] == '+') && pos_ > start &&
             (text_[pos_ - 1] == 'e' || text_[pos_ - 1] == 'E')))) {
      digits = digits || std::isdigit(static_cast<unsigned char>(text_[pos_]));
      ++pos_;
    }
    if (!digits) {
      return Status::InvalidArgument("expected number at offset " +
                                     std::to_string(start));
    }
    return std::stod(text_.substr(start, pos_ - start));
  }

  Result<Value> ParseValue() {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '\'') {
      ++pos_;
      size_t start = pos_;
      while (pos_ < text_.size() && text_[pos_] != '\'') ++pos_;
      if (pos_ == text_.size()) {
        return Status::InvalidArgument("unterminated string literal");
      }
      std::string literal = text_.substr(start, pos_ - start);
      ++pos_;  // Closing quote.
      return Value{std::move(literal)};
    }
    auto number = ParseNumber();
    if (!number.ok()) return number.status();
    return Value{number.value()};
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

Result<PredicateRef> ParsePredicate(const std::string& text) {
  return Parser(text).Parse();
}

}  // namespace qsp
