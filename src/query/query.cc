#include "query/query.h"

#include <algorithm>

namespace qsp {

QuerySet::QuerySet(const std::vector<Rect>& rects) {
  for (const Rect& r : rects) Add(r);
}

QueryId QuerySet::Add(const Rect& rect) {
  const QueryId id = static_cast<QueryId>(queries_.size());
  queries_.push_back({id, rect});
  return id;
}

std::vector<QueryId> QuerySet::AllIds() const {
  std::vector<QueryId> ids(queries_.size());
  for (size_t i = 0; i < ids.size(); ++i) ids[i] = static_cast<QueryId>(i);
  return ids;
}

std::vector<Rect> QuerySet::RectsOf(const QueryGroup& group) const {
  std::vector<Rect> rects;
  rects.reserve(group.size());
  for (QueryId id : group) rects.push_back(rect(id));
  return rects;
}

Partition SingletonPartition(size_t num_queries) {
  Partition partition;
  partition.reserve(num_queries);
  for (size_t i = 0; i < num_queries; ++i) {
    partition.push_back({static_cast<QueryId>(i)});
  }
  return partition;
}

Partition OneGroupPartition(size_t num_queries) {
  Partition partition(1);
  for (size_t i = 0; i < num_queries; ++i) {
    partition[0].push_back(static_cast<QueryId>(i));
  }
  return partition;
}

void CanonicalizePartition(Partition* partition) {
  for (auto& group : *partition) CanonicalizeGroup(&group);
  partition->erase(
      std::remove_if(partition->begin(), partition->end(),
                     [](const QueryGroup& g) { return g.empty(); }),
      partition->end());
  std::sort(partition->begin(), partition->end(),
            [](const QueryGroup& a, const QueryGroup& b) {
              return a.front() < b.front();
            });
}

bool IsValidPartition(const Partition& partition, size_t num_queries) {
  std::vector<int> seen(num_queries, 0);
  for (const QueryGroup& group : partition) {
    for (QueryId id : group) {
      if (id >= num_queries) return false;
      if (++seen[id] > 1) return false;
    }
  }
  for (int count : seen) {
    if (count != 1) return false;
  }
  return true;
}

void CanonicalizeGroup(QueryGroup* group) {
  std::sort(group->begin(), group->end());
  group->erase(std::unique(group->begin(), group->end()), group->end());
}

QueryGroup UnionGroups(const QueryGroup& a, const QueryGroup& b) {
  QueryGroup out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(), std::back_inserter(out));
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::string GroupToString(const QueryGroup& group) {
  std::string out = "{";
  for (size_t i = 0; i < group.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(group[i]);
  }
  out += "}";
  return out;
}

}  // namespace qsp
