#include "query/extractor.h"

#include <algorithm>

namespace qsp {

std::vector<RowId> ApplyExtractor(const ExtractorSpec& spec,
                                  const std::vector<RowId>& payload,
                                  const Table& table, size_t* examined) {
  std::vector<RowId> out;
  for (RowId id : payload) {
    if (spec.rect.Contains(table.PositionOf(id))) out.push_back(id);
  }
  if (examined != nullptr) *examined += payload.size();
  return out;
}

std::vector<RowId> CombineAnswers(std::vector<std::vector<RowId>> parts) {
  std::vector<RowId> out;
  for (auto& part : parts) {
    out.insert(out.end(), part.begin(), part.end());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace qsp
