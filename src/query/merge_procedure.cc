#include "query/merge_procedure.h"

#include <algorithm>

#include "geom/hull.h"
#include "geom/region.h"

namespace qsp {

std::vector<MergedQuery> BoundingRectProcedure::Merge(
    const QuerySet& queries, const QueryGroup& group) const {
  Rect box = Rect::Empty();
  for (QueryId id : group) box = box.BoundingUnion(queries.rect(id));
  MergedQuery merged;
  if (!box.IsEmpty()) merged.region.push_back(box);
  merged.members = group;
  return {std::move(merged)};
}

std::vector<MergedQuery> BoundingPolygonProcedure::Merge(
    const QuerySet& queries, const QueryGroup& group) const {
  RectilinearRegion hull = BoundingPolygon(queries.RectsOf(group));
  MergedQuery merged;
  merged.region = hull.pieces();
  merged.members = group;
  return {std::move(merged)};
}

std::vector<MergedQuery> ExactCoverProcedure::Merge(
    const QuerySet& queries, const QueryGroup& group) const {
  struct Cell {
    Rect rect;
    std::vector<QueryId> members;
  };

  std::vector<double> xs;
  for (QueryId id : group) {
    const Rect& r = queries.rect(id);
    if (r.IsEmpty()) continue;
    xs.push_back(r.x_lo());
    xs.push_back(r.x_hi());
  }
  std::sort(xs.begin(), xs.end());
  xs.erase(std::unique(xs.begin(), xs.end()), xs.end());

  std::vector<Cell> cells;
  for (size_t i = 0; i + 1 < xs.size(); ++i) {
    const double slab_lo = xs[i];
    const double slab_hi = xs[i + 1];
    if (slab_hi <= slab_lo) continue;

    // Rects covering the whole slab, plus the y edges they induce.
    std::vector<QueryId> slab_members;
    std::vector<double> ys;
    for (QueryId id : group) {
      const Rect& r = queries.rect(id);
      if (r.IsEmpty()) continue;
      if (r.x_lo() <= slab_lo && r.x_hi() >= slab_hi) {
        slab_members.push_back(id);
        ys.push_back(r.y_lo());
        ys.push_back(r.y_hi());
      }
    }
    std::sort(ys.begin(), ys.end());
    ys.erase(std::unique(ys.begin(), ys.end()), ys.end());

    Cell pending;  // Vertically coalesces adjacent cells w/ equal members.
    for (size_t j = 0; j + 1 < ys.size(); ++j) {
      const double cell_lo = ys[j];
      const double cell_hi = ys[j + 1];
      if (cell_hi <= cell_lo) continue;
      std::vector<QueryId> members;
      for (QueryId id : slab_members) {
        const Rect& r = queries.rect(id);
        if (r.y_lo() <= cell_lo && r.y_hi() >= cell_hi) members.push_back(id);
      }
      if (members.empty()) {
        if (!pending.members.empty()) {
          cells.push_back(pending);
          pending = Cell{};
        }
        continue;
      }
      const Rect cell(slab_lo, cell_lo, slab_hi, cell_hi);
      if (!pending.members.empty() && pending.members == members &&
          pending.rect.y_hi() == cell_lo) {
        pending.rect = Rect(slab_lo, pending.rect.y_lo(), slab_hi, cell_hi);
      } else {
        if (!pending.members.empty()) cells.push_back(pending);
        pending = Cell{cell, members};
      }
    }
    if (!pending.members.empty()) cells.push_back(pending);
  }

  std::vector<MergedQuery> out;
  out.reserve(cells.size());
  for (Cell& cell : cells) {
    MergedQuery merged;
    merged.region.push_back(cell.rect);
    merged.members = std::move(cell.members);
    out.push_back(std::move(merged));
  }
  // A group of fully-empty rectangles still needs one (empty) merged query
  // so every member is allocated somewhere.
  if (out.empty()) {
    MergedQuery merged;
    merged.members = group;
    out.push_back(std::move(merged));
  }
  return out;
}

}  // namespace qsp
