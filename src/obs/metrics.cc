#include "obs/metrics.h"

#include <atomic>
#include <cmath>
#include <cstdio>

#include "util/json_writer.h"
#include "util/table_printer.h"

namespace qsp {
namespace obs {

#ifndef QSP_OBS_DISABLED
namespace {
// Atomic so pool workers may read the switch while a test harness flips
// it; relaxed is enough — the flag carries no data dependencies.
std::atomic<bool> g_enabled{false};
}  // namespace

bool Enabled() { return g_enabled.load(std::memory_order_relaxed); }
void SetEnabled(bool enabled) {
  g_enabled.store(enabled, std::memory_order_relaxed);
}
#endif

namespace {

/// Bucket index for a value: 0 for v <= 1, else 1 + floor(log2(v))
/// clamped to the last bucket, so bucket i covers (2^(i-1), 2^i].
int BucketIndex(double value) {
  if (!(value > 1.0)) return 0;  // Also catches NaN and negatives.
  const int exponent = std::ilogb(value);
  // ilogb(2^k) == k and 2^k belongs to bucket k (interval is
  // right-closed), so only strictly-greater values move up a bucket.
  const double lower = std::ldexp(1.0, exponent);
  int index = exponent + (value > lower ? 1 : 0);
  if (index < 1) index = 1;
  if (index >= Histogram::kNumBuckets) index = Histogram::kNumBuckets - 1;
  return index;
}

std::string FormatDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

}  // namespace

size_t Counter::ThisThreadShard() {
  static std::atomic<size_t> next_thread{0};
  thread_local const size_t shard =
      next_thread.fetch_add(1, std::memory_order_relaxed) & (kShards - 1);
  return shard;
}

void Histogram::Record(double value) {
  if (std::isnan(value)) return;
  std::lock_guard<std::mutex> lock(mu_);
  buckets_[static_cast<size_t>(BucketIndex(value))] += 1;
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
}

double Histogram::Percentile(double p) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (count_ == 0) return 0.0;
  if (p <= 0.0) return min_;
  if (p >= 100.0) return max_;
  const double target = p / 100.0 * static_cast<double>(count_);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    seen += buckets_[static_cast<size_t>(i)];
    if (static_cast<double>(seen) >= target) {
      // Upper edge of bucket i, clamped to the exact envelope.
      const double upper = i == 0 ? 1.0 : std::ldexp(1.0, i);
      if (upper < min_) return min_;
      if (upper > max_) return max_;
      return upper;
    }
  }
  return max_;
}

void Histogram::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0.0;
  min_ = 0.0;
  max_ = 0.0;
}

Counter& MetricRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_.try_emplace(std::string(name)).first->second;
}

Gauge& MetricRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_.try_emplace(std::string(name)).first->second;
}

Histogram& MetricRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return histograms_.try_emplace(std::string(name)).first->second;
}

uint64_t MetricRegistry::CounterValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.value();
}

double MetricRegistry::GaugeValue(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = gauges_.find(name);
  return it == gauges_.end() ? 0.0 : it->second.value();
}

std::vector<std::pair<std::string, uint64_t>> MetricRegistry::CounterValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> values;
  values.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    values.emplace_back(name, counter.value());
  }
  return values;
}

std::vector<std::pair<std::string, double>> MetricRegistry::GaugeValues()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, double>> values;
  values.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    values.emplace_back(name, gauge.value());
  }
  return values;
}

std::vector<std::pair<std::string, const Histogram*>>
MetricRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, const Histogram*>> values;
  values.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    values.emplace_back(name, &histogram);
  }
  return values;
}

void MetricRegistry::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, counter] : counters_) counter.Reset();
  for (auto& [name, gauge] : gauges_) gauge.Reset();
  for (auto& [name, histogram] : histograms_) histogram.Reset();
}

std::string MetricRegistry::ToText() const {
  std::lock_guard<std::mutex> lock(mu_);
  TablePrinter table({"metric", "kind", "count", "value/mean", "p50", "p99",
                      "max"});
  for (const auto& [name, counter] : counters_) {
    table.AddRow({name, "counter", std::to_string(counter.value()), "", "",
                  "", ""});
  }
  for (const auto& [name, gauge] : gauges_) {
    table.AddRow({name, "gauge", "", FormatDouble(gauge.value()), "", "",
                  ""});
  }
  for (const auto& [name, histogram] : histograms_) {
    table.AddRow({name, "histogram", std::to_string(histogram.count()),
                  FormatDouble(histogram.mean()),
                  FormatDouble(histogram.Percentile(50.0)),
                  FormatDouble(histogram.Percentile(99.0)),
                  FormatDouble(histogram.max())});
  }
  return table.ToText();
}

std::string MetricRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter json;
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.Key(name).UInt(counter.value());
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.Key(name).Number(gauge.value());
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json.Key(name).BeginObject();
    json.Key("count").UInt(histogram.count());
    json.Key("sum").Number(histogram.sum());
    json.Key("mean").Number(histogram.mean());
    json.Key("min").Number(histogram.min());
    json.Key("max").Number(histogram.max());
    json.Key("p50").Number(histogram.Percentile(50.0));
    json.Key("p90").Number(histogram.Percentile(90.0));
    json.Key("p99").Number(histogram.Percentile(99.0));
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

MetricRegistry& MetricRegistry::Default() {
  static MetricRegistry* registry = new MetricRegistry();
  return *registry;
}

}  // namespace obs
}  // namespace qsp
