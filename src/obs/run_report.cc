#include "obs/run_report.h"

#include <cstdio>

#include "util/json_writer.h"

namespace qsp {
namespace obs {

RunReport::RunReport(std::string name) : name_(std::move(name)) {}

void RunReport::AddScalar(std::string_view key, double value) {
  JsonWriter json;
  json.Number(value);
  AddJson(key, json.str());
}

void RunReport::AddText(std::string_view key, std::string_view value) {
  JsonWriter json;
  json.String(std::string(value));
  AddJson(key, json.str());
}

void RunReport::AddBool(std::string_view key, bool value) {
  AddJson(key, value ? "true" : "false");
}

void RunReport::AddTable(std::string_view key, const TablePrinter& table) {
  AddJson(key, table.ToJson());
}

void RunReport::AddMetrics(const MetricRegistry& registry) {
  AddJson("metrics", registry.ToJson());
}

void RunReport::AddTrace(const PhaseTracer& tracer) {
  AddJson("trace", tracer.ToJson());
}

void RunReport::AddJson(std::string_view key, std::string json) {
  entries_.emplace_back(std::string(key), std::move(json));
}

std::string RunReport::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("name").String(name_);
  for (const auto& [key, value] : entries_) {
    json.Key(key).Raw(value);
  }
  json.EndObject();
  return json.str();
}

Status RunReport::WriteFile(const std::string& path) const {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return Status::NotFound("cannot open report file: " + path);
  }
  const std::string doc = ToJson() + "\n";
  const size_t written = std::fwrite(doc.data(), 1, doc.size(), file);
  const bool close_ok = std::fclose(file) == 0;
  if (written != doc.size() || !close_ok) {
    return Status::Internal("short write to report file: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace qsp
