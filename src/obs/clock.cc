#include "obs/clock.h"

#include <atomic>
#include <chrono>

namespace qsp {
namespace obs {

namespace {

/// Default time source: monotonic wall clock.
class SteadyClock : public Clock {
 public:
  double NowMicros() override {
    const auto now = std::chrono::steady_clock::now().time_since_epoch();
    return std::chrono::duration<double, std::micro>(now).count();
  }
};

SteadyClock& DefaultClock() {
  static SteadyClock* clock = new SteadyClock();
  return *clock;
}

std::atomic<Clock*>& ClockSlot() {
  static std::atomic<Clock*> slot{nullptr};
  return slot;
}

}  // namespace

Clock* CurrentClock() {
  Clock* clock = ClockSlot().load(std::memory_order_acquire);
  return clock != nullptr ? clock : &DefaultClock();
}

void SetClock(Clock* clock) {
  ClockSlot().store(clock, std::memory_order_release);
}

}  // namespace obs
}  // namespace qsp
