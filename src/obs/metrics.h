#ifndef QSP_OBS_METRICS_H_
#define QSP_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/clock.h"
#include "util/thread_annotations.h"

namespace qsp {
namespace obs {

/// ------------------------------------------------------------------ switch
///
/// The telemetry layer is off by default and every instrumentation entry
/// point (Count/SetGauge/Observe, ScopedTimer, ScopedSpan) first checks
/// Enabled(), so an instrumented hot path costs one predictable branch
/// when telemetry is off. Defining QSP_OBS_DISABLED at compile time turns
/// Enabled() into `constexpr false`, letting the compiler delete the call
/// sites entirely.

#ifdef QSP_OBS_DISABLED
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#else
/// Whether telemetry is currently recording (process-global).
bool Enabled();
/// Turns recording on/off. ServiceConfig::telemetry and the bench report
/// helpers flip this; tests flip it around the code under measurement.
void SetEnabled(bool enabled);
#endif

/// ----------------------------------------------------------------- metrics

/// Monotonically increasing event count (e.g. estimator calls, candidate
/// pairs evaluated). Thread-safe: increments land in one of a small set
/// of cache-line-padded atomic shards picked per thread, so concurrent
/// planner loops (qsp::exec) never contend on one cache line; value()
/// sums the shards. Relaxed ordering — counts are statistics, not
/// synchronization. Non-copyable (the registry hands out references).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t delta = 1) {
    shards_[ThisThreadShard()].value.fetch_add(delta,
                                               std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t total = 0;
    for (const Shard& shard : shards_) {
      total += shard.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Shard& shard : shards_) {
      shard.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  static constexpr size_t kShards = 8;  // Power of two.
  struct alignas(64) Shard {
    std::atomic<uint64_t> value{0};
  };
  /// Stable per-thread shard index: threads are numbered in creation
  /// order and map round-robin onto the shards.
  static size_t ThisThreadShard();

  std::array<Shard, kShards> shards_{};
};

/// Last-observed value (e.g. estimated plan cost, measured |M| of the most
/// recent round). Thread-safe via an atomic slot (last writer wins).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log-scale histogram for latencies and sizes: bucket 0 holds values
/// <= 1, bucket i holds values in (2^(i-1), 2^i]. Tracks exact count,
/// sum, min, and max alongside the buckets, so means are exact and only
/// percentiles are bucket-resolution approximations (within a factor of
/// two, which is all a latency distribution needs).
///
/// Thread-safe: Record and the accessors serialize on an internal mutex
/// (a Record touches five fields that must stay mutually consistent).
/// Histograms are not recorded from the planner's parallel inner loops —
/// only counters are — so the lock is uncontended in practice.
/// Non-copyable (the registry hands out references).
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Record(double value);

  uint64_t count() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }
  double sum() const {
    std::lock_guard<std::mutex> lock(mu_);
    return sum_;
  }
  double min() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0.0 : min_;
  }
  double max() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0.0 : max_;
  }
  double mean() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Upper bound of the bucket containing the p-th percentile
  /// (p in [0, 100]), clamped to the exact [min, max] envelope. 0 when
  /// the histogram is empty.
  double Percentile(double p) const;

  uint64_t bucket(int i) const {
    std::lock_guard<std::mutex> lock(mu_);
    return buckets_[static_cast<size_t>(i)];
  }

  void Reset();

 private:
  mutable std::mutex mu_;
  std::array<uint64_t, kNumBuckets> buckets_ QSP_GUARDED_BY(mu_){};
  uint64_t count_ QSP_GUARDED_BY(mu_) = 0;
  double sum_ QSP_GUARDED_BY(mu_) = 0.0;
  double min_ QSP_GUARDED_BY(mu_) = 0.0;
  double max_ QSP_GUARDED_BY(mu_) = 0.0;
};

/// One exported metric, for snapshot-style consumers.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind;
  /// Counter value / gauge value / histogram count.
  double value = 0.0;
};

/// Named metric store. Metrics are created on first use and live for the
/// registry's lifetime (references returned by counter()/gauge()/
/// histogram() stay valid across concurrent insertions — std::map nodes
/// are stable). Names follow the dotted scheme documented in DESIGN.md
/// §5, e.g. "merge.pair-merging.candidates" or "core.plan.latency_us".
///
/// Thread-safe: lookups/creation and the export walks serialize on an
/// internal mutex; mutation of the returned metrics is synchronized by
/// the metrics themselves. Hot paths that run inside qsp::exec parallel
/// regions resolve their Counter* once and then pay only the counter's
/// sharded atomic add (see MergeContext).
class MetricRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Value of a counter, 0 if it was never touched (does not create it).
  uint64_t CounterValue(std::string_view name) const;
  /// Value of a gauge, 0.0 if it was never touched (does not create it).
  double GaugeValue(std::string_view name) const;

  /// All counters in name order (used by PhaseTracer to diff spans).
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;

  /// All gauges in name order (used by the exporter and sampler).
  std::vector<std::pair<std::string, double>> GaugeValues() const;

  /// All histograms in name order. The pointers stay valid for the
  /// registry's lifetime (std::map nodes are stable) and the histograms
  /// synchronize themselves, so callers may read them lock-free.
  std::vector<std::pair<std::string, const Histogram*>> Histograms() const;

  size_t num_metrics() const {
    std::lock_guard<std::mutex> lock(mu_);
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Zeroes every metric but keeps registrations (references stay valid).
  void Reset();

  /// Aligned text table (name | kind | count | value | p50 | p99 | max),
  /// rendered with TablePrinter.
  std::string ToText() const;

  /// JSON object {counters: {...}, gauges: {...}, histograms: {...}}.
  std::string ToJson() const;

  /// The process-global registry all convenience entry points write to.
  static MetricRegistry& Default();

 private:
  /// Guards the maps (not the metrics inside them).
  mutable std::mutex mu_;
  // Ordered maps so every export is deterministically sorted by name.
  // The mutex guards the maps only; the metric objects inside the nodes
  // synchronize themselves (sharded atomics / their own mutex).
  std::map<std::string, Counter, std::less<>> counters_ QSP_GUARDED_BY(mu_);
  std::map<std::string, Gauge, std::less<>> gauges_ QSP_GUARDED_BY(mu_);
  std::map<std::string, Histogram, std::less<>> histograms_
      QSP_GUARDED_BY(mu_);
};

/// --------------------------------------------- convenience entry points
///
/// The forms instrumented code actually uses. All of them are no-ops
/// (one branch) when telemetry is disabled; the name lookup only happens
/// when enabled.

inline void Count(std::string_view name, uint64_t delta = 1) {
  if (!Enabled() || delta == 0) return;
  MetricRegistry::Default().counter(name).Add(delta);
}

inline void SetGauge(std::string_view name, double value) {
  if (!Enabled()) return;
  MetricRegistry::Default().gauge(name).Set(value);
}

inline void Observe(std::string_view name, double value) {
  if (!Enabled()) return;
  MetricRegistry::Default().histogram(name).Record(value);
}

/// Records the wall time (obs::CurrentClock(), microseconds) of a scope
/// into a histogram of the default registry. Captures the enabled state
/// at construction, so toggling mid-scope cannot mismatch start/stop.
/// Under a FakeClock the recorded durations are deterministic.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name) {
    if (!Enabled()) return;
    histogram_ = &MetricRegistry::Default().histogram(name);
    start_us_ = CurrentClock()->NowMicros();
  }

  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(ElapsedMicros());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Microseconds since construction (0 when telemetry was disabled).
  double ElapsedMicros() const {
    if (histogram_ == nullptr) return 0.0;
    return CurrentClock()->NowMicros() - start_us_;
  }

 private:
  Histogram* histogram_ = nullptr;
  double start_us_ = 0.0;
};

}  // namespace obs
}  // namespace qsp

#endif  // QSP_OBS_METRICS_H_
