#ifndef QSP_OBS_METRICS_H_
#define QSP_OBS_METRICS_H_

#include <array>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace qsp {
namespace obs {

/// ------------------------------------------------------------------ switch
///
/// The telemetry layer is off by default and every instrumentation entry
/// point (Count/SetGauge/Observe, ScopedTimer, ScopedSpan) first checks
/// Enabled(), so an instrumented hot path costs one predictable branch
/// when telemetry is off. Defining QSP_OBS_DISABLED at compile time turns
/// Enabled() into `constexpr false`, letting the compiler delete the call
/// sites entirely.

#ifdef QSP_OBS_DISABLED
constexpr bool Enabled() { return false; }
inline void SetEnabled(bool) {}
#else
/// Whether telemetry is currently recording (process-global).
bool Enabled();
/// Turns recording on/off. ServiceConfig::telemetry and the bench report
/// helpers flip this; tests flip it around the code under measurement.
void SetEnabled(bool enabled);
#endif

/// ----------------------------------------------------------------- metrics

/// Monotonically increasing event count (e.g. estimator calls, candidate
/// pairs evaluated). Not thread-safe: the library is single-threaded and
/// the registry documents the same constraint.
class Counter {
 public:
  void Add(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

 private:
  uint64_t value_ = 0;
};

/// Last-observed value (e.g. estimated plan cost, measured |M| of the most
/// recent round).
class Gauge {
 public:
  void Set(double value) { value_ = value; }
  double value() const { return value_; }
  void Reset() { value_ = 0.0; }

 private:
  double value_ = 0.0;
};

/// Log-scale histogram for latencies and sizes: bucket 0 holds values
/// <= 1, bucket i holds values in (2^(i-1), 2^i]. Tracks exact count,
/// sum, min, and max alongside the buckets, so means are exact and only
/// percentiles are bucket-resolution approximations (within a factor of
/// two, which is all a latency distribution needs).
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void Record(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double mean() const {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

  /// Upper bound of the bucket containing the p-th percentile
  /// (p in [0, 100]), clamped to the exact [min, max] envelope. 0 when
  /// the histogram is empty.
  double Percentile(double p) const;

  uint64_t bucket(int i) const { return buckets_[static_cast<size_t>(i)]; }

  void Reset();

 private:
  std::array<uint64_t, kNumBuckets> buckets_{};
  uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// One exported metric, for snapshot-style consumers.
struct MetricSnapshot {
  enum class Kind { kCounter, kGauge, kHistogram };
  std::string name;
  Kind kind;
  /// Counter value / gauge value / histogram count.
  double value = 0.0;
};

/// Named metric store. Metrics are created on first use and live for the
/// registry's lifetime (references returned by counter()/gauge()/
/// histogram() stay valid). Names follow the dotted scheme documented in
/// DESIGN.md §5, e.g. "merge.pair-merging.candidates" or
/// "core.plan.latency_us". Not thread-safe.
class MetricRegistry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Value of a counter, 0 if it was never touched (does not create it).
  uint64_t CounterValue(std::string_view name) const;
  /// Value of a gauge, 0.0 if it was never touched (does not create it).
  double GaugeValue(std::string_view name) const;

  /// All counters in name order (used by PhaseTracer to diff spans).
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;

  size_t num_metrics() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  /// Zeroes every metric but keeps registrations (references stay valid).
  void Reset();

  /// Aligned text table (name | kind | count | value | p50 | p99 | max),
  /// rendered with TablePrinter.
  std::string ToText() const;

  /// JSON object {counters: {...}, gauges: {...}, histograms: {...}}.
  std::string ToJson() const;

  /// The process-global registry all convenience entry points write to.
  static MetricRegistry& Default();

 private:
  // Ordered maps so every export is deterministically sorted by name.
  std::map<std::string, Counter, std::less<>> counters_;
  std::map<std::string, Gauge, std::less<>> gauges_;
  std::map<std::string, Histogram, std::less<>> histograms_;
};

/// --------------------------------------------- convenience entry points
///
/// The forms instrumented code actually uses. All of them are no-ops
/// (one branch) when telemetry is disabled; the name lookup only happens
/// when enabled.

inline void Count(std::string_view name, uint64_t delta = 1) {
  if (!Enabled() || delta == 0) return;
  MetricRegistry::Default().counter(name).Add(delta);
}

inline void SetGauge(std::string_view name, double value) {
  if (!Enabled()) return;
  MetricRegistry::Default().gauge(name).Set(value);
}

inline void Observe(std::string_view name, double value) {
  if (!Enabled()) return;
  MetricRegistry::Default().histogram(name).Record(value);
}

/// Records the wall time (steady_clock, microseconds) of a scope into a
/// histogram of the default registry. Captures the enabled state at
/// construction, so toggling mid-scope cannot mismatch start/stop.
class ScopedTimer {
 public:
  explicit ScopedTimer(std::string_view name) {
    if (!Enabled()) return;
    histogram_ = &MetricRegistry::Default().histogram(name);
    start_ = std::chrono::steady_clock::now();
  }

  ~ScopedTimer() {
    if (histogram_ != nullptr) histogram_->Record(ElapsedMicros());
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Microseconds since construction (0 when telemetry was disabled).
  double ElapsedMicros() const {
    if (histogram_ == nullptr) return 0.0;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    return std::chrono::duration<double, std::micro>(elapsed).count();
  }

 private:
  Histogram* histogram_ = nullptr;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace obs
}  // namespace qsp

#endif  // QSP_OBS_METRICS_H_
