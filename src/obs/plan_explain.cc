#include "obs/plan_explain.h"

#include <algorithm>
#include <cstdio>

#include "merge/plan_bounds.h"
#include "util/json_writer.h"
#include "util/status.h"

namespace qsp {
namespace obs {

namespace {

/// %.6g — the same precision Rect::ToString and the figure harnesses
/// use, chosen so the text EXPLAIN is stable enough to golden-diff.
std::string Num(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

std::string ClientListToString(const std::vector<ClientId>& clients) {
  std::string out = "{";
  for (size_t i = 0; i < clients.size(); ++i) {
    if (i > 0) out += ",";
    out += std::to_string(clients[i]);
  }
  out += "}";
  return out;
}

void GroupToJson(const GroupExplain& group, JsonWriter* json) {
  json->BeginObject();
  json->Key("channel").UInt(group.channel);
  if (group.shard != GroupExplain::kNoShard) {
    json->Key("shard").Int(group.shard);
  }
  json->Key("members").BeginArray();
  for (QueryId id : group.members) json->UInt(id);
  json->EndArray();
  json->Key("mbr").BeginObject();
  json->Key("x_lo").Number(group.mbr.x_lo());
  json->Key("y_lo").Number(group.mbr.y_lo());
  json->Key("x_hi").Number(group.mbr.x_hi());
  json->Key("y_hi").Number(group.mbr.y_hi());
  json->EndObject();
  json->Key("est_size").Number(group.est_size);
  if (group.exact_size >= 0.0) {
    json->Key("exact_size").Number(group.exact_size);
  }
  json->Key("messages").Number(group.messages);
  json->Key("irrelevant").Number(group.irrelevant);
  json->Key("size_lower_bound").Number(group.size_lower_bound);
  json->Key("cost_lower_bound").Number(group.cost_lower_bound);
  json->Key("message_cost").Number(group.message_cost);
  json->Key("check_cost").Number(group.check_cost);
  json->Key("size_cost").Number(group.size_cost);
  json->Key("irrelevant_cost").Number(group.irrelevant_cost);
  json->Key("total_cost").Number(group.total_cost);
  json->EndObject();
}

/// Renders the balanced-assignment cut tree depth-first (left child
/// first — the canonical order the bisection built it in). Negative
/// child encodings are leaves: shard -(node) - 1.
void CutTreeToText(const PlanExplain& plan, int32_t node, int depth,
                   std::string* out) {
  const std::string indent(2 * (depth + 1), ' ');
  if (node < 0) {
    const size_t s = static_cast<size_t>(-node - 1);
    *out += indent + "shard " + std::to_string(s) +
            ": queries=" + std::to_string(plan.shard_queries[s]) +
            " cost_est=" + Num(plan.shard_cost_est[s]) + "\n";
    return;
  }
  const ShardCutNode& cut = plan.shard_cuts[static_cast<size_t>(node)];
  *out += indent + std::string(cut.axis == 0 ? "x < " : "y < ") +
          Num(cut.coord) + "\n";
  CutTreeToText(plan, cut.left, depth + 1, out);
  CutTreeToText(plan, cut.right, depth + 1, out);
}

void CutTreeToJson(const PlanExplain& plan, int32_t node, JsonWriter* json) {
  json->BeginObject();
  if (node < 0) {
    const size_t s = static_cast<size_t>(-node - 1);
    json->Key("shard").UInt(s);
    json->Key("queries").UInt(plan.shard_queries[s]);
    json->Key("cost_est").Number(plan.shard_cost_est[s]);
  } else {
    const ShardCutNode& cut = plan.shard_cuts[static_cast<size_t>(node)];
    json->Key("axis").String(cut.axis == 0 ? "x" : "y");
    json->Key("coord").Number(cut.coord);
    json->Key("left");
    CutTreeToJson(plan, cut.left, json);
    json->Key("right");
    CutTreeToJson(plan, cut.right, json);
  }
  json->EndObject();
}

}  // namespace

std::string PlanExplain::ToText() const {
  std::string out = "=== plan explain ===\n";
  for (const auto& [key, value] : labels) {
    char line[256];
    std::snprintf(line, sizeof(line), "%-15s : %s\n", key.c_str(),
                  value.c_str());
    out += line;
  }
  out += "queries         : " + std::to_string(num_queries) + "\n";
  out += "channels        : " + std::to_string(num_channels) + "\n";
  out += "merged groups   : " + std::to_string(num_groups) + "\n";
  if (initial_cost >= 0.0) {
    out += "initial cost    : " + Num(initial_cost) + "\n";
  }
  out += "planned cost    : " + Num(total_cost);
  if (initial_cost > 0.0) {
    out += " (" + Num(100.0 * (initial_cost - total_cost) / initial_cost) +
           "% saved)";
  }
  out += "\n";
  out += "bounds refined  : " + std::to_string(bounds_refined) + "\n";
  out += "bounds pruned   : " + std::to_string(bounds_pruned) + "\n";
  if (!shard_cuts.empty()) {
    double max_cost = 0.0, total = 0.0;
    for (double c : shard_cost_est) {
      max_cost = std::max(max_cost, c);
      total += c;
    }
    const double mean =
        shard_cost_est.empty()
            ? 0.0
            : total / static_cast<double>(shard_cost_est.size());
    out += "shard imbalance : " +
           Num(mean > 0.0 ? max_cost / mean : 0.0) + " (max_cost_est=" +
           Num(max_cost) + " mean=" + Num(mean) + ")\n";
    out += "shard cuts      :\n";
    CutTreeToText(*this, 0, 0, &out);
  }

  for (const ChannelExplain& channel : channels) {
    out += "\nchannel " + std::to_string(channel.index) +
           ": clients=" + ClientListToString(channel.clients) +
           " groups=" + std::to_string(channel.num_groups) +
           " group_cost=" + Num(channel.group_cost) +
           " k_d=" + Num(channel.channel_cost) +
           " total=" + Num(channel.total_cost) + "\n";
    for (const GroupExplain& group : groups) {
      if (group.channel != channel.index) continue;
      out += "  group " + GroupToString(group.members) +
             " mbr=" + group.mbr.ToString() +
             " est_size=" + Num(group.est_size);
      if (group.shard != GroupExplain::kNoShard) {
        out += group.shard == GroupExplain::kSeamGroup
                   ? " shard=seam"
                   : " shard=" + std::to_string(group.shard);
      }
      if (group.exact_size >= 0.0) {
        out += " exact_size=" + Num(group.exact_size);
      }
      out += " messages=" + Num(group.messages) + "\n";
      out += "    cost: k_m*|M|=" + Num(group.message_cost) +
             " + check=" + Num(group.check_cost) +
             " + k_t*size=" + Num(group.size_cost) +
             " + k_u*U=" + Num(group.irrelevant_cost) + " = " +
             Num(group.total_cost) + "\n";
      out += "    bound: size_lb=" + Num(group.size_lower_bound) +
             " cost_lb=" + Num(group.cost_lower_bound) + "\n";
    }
  }
  return out;
}

std::string PlanExplain::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("labels").BeginObject();
  for (const auto& [key, value] : labels) json.Key(key).String(value);
  json.EndObject();
  json.Key("num_queries").UInt(num_queries);
  json.Key("num_channels").UInt(num_channels);
  json.Key("num_groups").UInt(num_groups);
  if (initial_cost >= 0.0) json.Key("initial_cost").Number(initial_cost);
  json.Key("total_cost").Number(total_cost);
  json.Key("bounds_refined").UInt(bounds_refined);
  json.Key("bounds_pruned").UInt(bounds_pruned);
  json.Key("channels").BeginArray();
  for (const ChannelExplain& channel : channels) {
    json.BeginObject();
    json.Key("index").UInt(channel.index);
    json.Key("clients").BeginArray();
    for (ClientId c : channel.clients) json.UInt(c);
    json.EndArray();
    json.Key("num_groups").UInt(channel.num_groups);
    json.Key("group_cost").Number(channel.group_cost);
    json.Key("channel_cost").Number(channel.channel_cost);
    json.Key("total_cost").Number(channel.total_cost);
    json.EndObject();
  }
  json.EndArray();
  json.Key("groups").BeginArray();
  for (const GroupExplain& group : groups) GroupToJson(group, &json);
  json.EndArray();
  if (!shard_cuts.empty()) {
    json.Key("shard_cuts");
    CutTreeToJson(*this, 0, &json);
    json.Key("shard_cost_est").BeginArray();
    for (double c : shard_cost_est) json.Number(c);
    json.EndArray();
    json.Key("shard_queries").BeginArray();
    for (size_t q : shard_queries) json.UInt(q);
    json.EndArray();
  }
  json.EndObject();
  return json.str();
}

PlanExplainer::PlanExplainer(const MergeContext* ctx, const CostModel& model)
    : ctx_(ctx), model_(model) {
  QSP_CHECK(ctx != nullptr);
}

void PlanExplainer::AddLabel(std::string key, std::string value) {
  labels_.emplace_back(std::move(key), std::move(value));
}

void PlanExplainer::ExplainChannel(
    size_t channel_index, const std::vector<ClientId>& channel_clients,
    const Partition& partition, PlanExplain* out) const {
  // The model this channel's groups were actually costed under: k_check
  // scales with the channel's population (ChannelCostEvaluator folds it
  // into k_m before merging; here it stays a separate term).
  const double check_per_message =
      model_.k_check * static_cast<double>(channel_clients.size());
  CostModel channel_model = model_;
  channel_model.k_m += check_per_message;
  const plan::BenefitBounder bounder(*ctx_, channel_model);

  ChannelExplain channel;
  channel.index = channel_index;
  channel.clients = channel_clients;
  channel.num_groups = partition.size();

  for (size_t gi = 0; gi < partition.size(); ++gi) {
    const QueryGroup& group = partition[gi];
    GroupExplain explain;
    explain.channel = channel_index;
    // Shard attribution only applies to single-channel sharded plans,
    // where the attribution vector is parallel to the one partition.
    if (shard_attribution_ != nullptr && channel_index == 0 &&
        shard_attribution_->size() == partition.size()) {
      explain.shard = (*shard_attribution_)[gi];
    }
    explain.members = group;
    for (QueryId id : group) {
      explain.mbr = explain.mbr.BoundingUnion(ctx_->queries().rect(id));
    }
    const GroupStats& stats = ctx_->Stats(group);
    explain.est_size = stats.size;
    explain.messages = stats.messages;
    explain.irrelevant = stats.irrelevant;
    if (exact_ctx_ != nullptr) {
      explain.exact_size = exact_ctx_->Stats(group).size;
    }
    if (bounder.enabled()) {
      const plan::GroupSummary summary = bounder.Summarize(group);
      explain.size_lower_bound = summary.size_lb;
      explain.cost_lower_bound =
          channel_model.MergedCostLowerBound(summary.size_lb);
    }
    explain.message_cost = model_.k_m * stats.messages;
    explain.check_cost = check_per_message * stats.messages;
    explain.size_cost = model_.k_t * stats.size;
    explain.irrelevant_cost = model_.k_u * stats.irrelevant;
    explain.total_cost = explain.message_cost + explain.check_cost +
                         explain.size_cost + explain.irrelevant_cost;
    channel.group_cost += explain.total_cost;
    out->groups.push_back(std::move(explain));
  }

  channel.total_cost = channel.group_cost + channel.channel_cost;
  out->num_groups += channel.num_groups;
  out->channels.push_back(std::move(channel));
}

PlanExplain PlanExplainer::Explain(const Partition& partition) const {
  PlanExplain out;
  out.labels = labels_;
  out.num_queries = ctx_->num_queries();
  out.num_channels = 1;
  out.initial_cost = initial_cost_;
  out.bounds_refined = bounds_refined_;
  out.bounds_pruned = bounds_pruned_;
  // Balanced sharded plans carry their cut tree into the EXPLAIN; grid,
  // single-shard, and unsharded plans emit nothing here, keeping their
  // goldens byte-identical.
  if (shard_layout_ != nullptr &&
      shard_layout_->assign == ShardAssign::kBalanced &&
      shard_layout_->num_shards > 1 && !shard_layout_->cuts.empty()) {
    out.shard_cuts = shard_layout_->cuts;
    out.shard_cost_est = shard_layout_->shard_cost;
    out.shard_queries = shard_layout_->shard_queries;
  }
  // Single-channel broadcast: no k_check scaling, no K_D charge (the
  // basic model of Section 4, which is what the single-channel planner
  // costs plans with).
  ExplainChannel(0, {}, partition, &out);
  for (const ChannelExplain& channel : out.channels) {
    out.total_cost += channel.total_cost;
  }
  return out;
}

PlanExplain PlanExplainer::Explain(const DisseminationPlan& plan,
                                   const ClientSet& clients) const {
  (void)clients;
  PlanExplain out;
  out.labels = labels_;
  out.num_queries = ctx_->num_queries();
  out.initial_cost = initial_cost_;
  out.bounds_refined = bounds_refined_;
  out.bounds_pruned = bounds_pruned_;
  QSP_CHECK(plan.allocation.size() == plan.channel_partitions.size());
  for (size_t ch = 0; ch < plan.allocation.size(); ++ch) {
    ExplainChannel(ch, plan.allocation[ch], plan.channel_partitions[ch],
                   &out);
    if (!plan.allocation[ch].empty()) {
      // K_D is charged per channel actually used, as in
      // ChannelCostEvaluator::TotalCost.
      out.channels.back().channel_cost = model_.k_d;
      out.channels.back().total_cost += model_.k_d;
      ++out.num_channels;
    }
  }
  for (const ChannelExplain& channel : out.channels) {
    out.total_cost += channel.total_cost;
  }
  return out;
}

}  // namespace obs
}  // namespace qsp
