#include "obs/phase_tracer.h"

#include <algorithm>
#include <cstdio>

#include "util/json_writer.h"

namespace qsp {
namespace obs {

namespace {

/// Deltas of counters that advanced between two sorted snapshots.
/// `before` may be missing names that were created during the span.
std::vector<std::pair<std::string, uint64_t>> DiffCounters(
    const std::vector<std::pair<std::string, uint64_t>>& before,
    const std::vector<std::pair<std::string, uint64_t>>& after) {
  std::vector<std::pair<std::string, uint64_t>> deltas;
  size_t i = 0;
  for (const auto& [name, value] : after) {
    while (i < before.size() && before[i].first < name) ++i;
    const uint64_t base =
        (i < before.size() && before[i].first == name) ? before[i].second : 0;
    if (value > base) deltas.emplace_back(name, value - base);
  }
  return deltas;
}

void SpanToText(const PhaseTracer::Span& span, int depth, std::string* out) {
  char line[256];
  std::snprintf(line, sizeof(line), "%*s%s  %.1fus", 2 * depth, "",
                span.name.c_str(), span.wall_us);
  *out += line;
  for (const auto& [name, delta] : span.counter_deltas) {
    *out += "  ";
    *out += name;
    *out += "+";
    *out += std::to_string(delta);
  }
  *out += '\n';
  for (const PhaseTracer::Span& child : span.children) {
    SpanToText(child, depth + 1, out);
  }
}

void SpanToJson(const PhaseTracer::Span& span, JsonWriter* json) {
  json->BeginObject();
  json->Key("name").String(span.name);
  json->Key("wall_us").Number(span.wall_us);
  json->Key("counters").BeginObject();
  for (const auto& [name, delta] : span.counter_deltas) {
    json->Key(name).UInt(delta);
  }
  json->EndObject();
  json->Key("children").BeginArray();
  for (const PhaseTracer::Span& child : span.children) {
    SpanToJson(child, json);
  }
  json->EndArray();
  json->EndObject();
}

}  // namespace

void PhaseTracer::Begin(std::string_view name) {
  if (!Enabled()) return;
  OpenSpan open;
  open.span.name = std::string(name);
  open.counters_at_start = MetricRegistry::Default().CounterValues();
  open.start_us = CurrentClock()->NowMicros();
  open_.push_back(std::move(open));
}

void PhaseTracer::End() {
  if (open_.empty()) return;
  OpenSpan open = std::move(open_.back());
  open_.pop_back();
  open.span.wall_us = CurrentClock()->NowMicros() - open.start_us;
  open.span.counter_deltas = DiffCounters(
      open.counters_at_start, MetricRegistry::Default().CounterValues());
  if (open_.empty()) {
    roots_.push_back(std::move(open.span));
  } else {
    open_.back().span.children.push_back(std::move(open.span));
  }
}

void PhaseTracer::Clear() {
  open_.clear();
  roots_.clear();
}

std::string PhaseTracer::ToText() const {
  std::string out;
  for (const Span& span : roots_) SpanToText(span, 0, &out);
  return out;
}

std::string PhaseTracer::ToJson() const {
  JsonWriter json;
  json.BeginArray();
  for (const Span& span : roots_) SpanToJson(span, &json);
  json.EndArray();
  return json.str();
}

PhaseTracer& PhaseTracer::Default() {
  static PhaseTracer* tracer = new PhaseTracer();
  return *tracer;
}

}  // namespace obs
}  // namespace qsp
