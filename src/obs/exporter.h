#ifndef QSP_OBS_EXPORTER_H_
#define QSP_OBS_EXPORTER_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "exec/periodic.h"
#include "obs/metrics.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace qsp {
namespace obs {

/// Renders a registry snapshot in the Prometheus text exposition format
/// (version 0.0.4): one `# TYPE` line per metric family followed by its
/// samples. Counters export as `counter`, gauges as `gauge`, histograms
/// as `summary` (quantile-labelled percentile samples plus `_sum` and
/// `_count`). Dotted qsp metric names are sanitized to the Prometheus
/// charset by mapping every character outside [a-zA-Z0-9_] to '_', and
/// `prefix` is prepended ("net.recover.retx" -> "qsp_net_recover_retx").
/// Output is sorted by metric name, so it is diffable run-to-run.
std::string ToPrometheusText(const MetricRegistry& registry,
                             const std::string& prefix = "qsp");

/// Samples the registry on a background thread (exec::PeriodicTask) and
/// appends one JSON object per sample to a JSONL sink — the service-mode
/// time-series substrate (ROADMAP item 1: per-batch SLO latencies need a
/// trajectory, not just a final snapshot). Each row carries a
/// monotonically increasing sample index, the elapsed time since Start()
/// as read from obs::CurrentClock() (deterministic under a FakeClock),
/// every gauge, and for every histogram its count/sum and the configured
/// percentiles.
///
/// The sampler is gated by the caller (SubscriptionService starts one
/// only when ServiceConfig::telemetry is on and the sampling knobs are
/// set); it does not flip the global obs switch itself.
class PeriodicSampler {
 public:
  struct Options {
    /// Sampling period. 0 disables Start() entirely.
    uint64_t interval_ms = 1000;
    /// JSONL sink path; appended to, one object per line.
    std::string path;
    /// Histogram percentiles to record per sample.
    std::vector<double> percentiles = {50.0, 90.0, 99.0};
  };

  explicit PeriodicSampler(Options options,
                           MetricRegistry* registry =
                               &MetricRegistry::Default());
  ~PeriodicSampler();

  PeriodicSampler(const PeriodicSampler&) = delete;
  PeriodicSampler& operator=(const PeriodicSampler&) = delete;

  /// Opens the sink and starts the background thread. Fails if the sink
  /// cannot be opened or the interval is 0.
  Status Start();

  /// Stops sampling and closes the sink. Idempotent.
  void Stop();

  /// Takes one sample synchronously (also used by the background
  /// thread). Requires Start() to have succeeded.
  void SampleOnce();

  /// Samples taken so far.
  uint64_t samples_taken() const;

 private:
  /// Renders one JSONL row.
  std::string RenderRow();

  const Options options_;
  MetricRegistry* const registry_;
  exec::PeriodicTask task_;

  mutable std::mutex mu_;
  std::FILE* sink_ QSP_GUARDED_BY(mu_) = nullptr;
  uint64_t sample_index_ QSP_GUARDED_BY(mu_) = 0;
  double start_us_ QSP_GUARDED_BY(mu_) = 0.0;
};

}  // namespace obs
}  // namespace qsp

#endif  // QSP_OBS_EXPORTER_H_
