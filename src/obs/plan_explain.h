#ifndef QSP_OBS_PLAN_EXPLAIN_H_
#define QSP_OBS_PLAN_EXPLAIN_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "channel/client_set.h"
#include "cost/cost_model.h"
#include "geom/rect.h"
#include "merge/shard_assign.h"
#include "net/message.h"
#include "query/merge_context.h"
#include "query/query.h"

namespace qsp {
namespace obs {

/// EXPLAIN of one merged group: who is in it, what it looks like, and —
/// term by term — what it costs. The per-term decomposition mirrors the
/// paper's Section 4 model exactly as the planner charged it:
///   total = K_M·|M| + k_check·(channel clients)·|M| + K_T·size(M) + K_U·U
/// (the check term is the k6 share ChannelCostEvaluator folds into K_M in
/// multi-channel mode; it is 0 on a single-channel plan).
struct GroupExplain {
  /// Shard attribution sentinel: no sharded planner ran (the field is
  /// then omitted from both renderings, keeping unsharded EXPLAIN text
  /// and JSON byte-identical to what they were before sharding existed).
  static constexpr int32_t kNoShard = -2;
  /// kSeamGroup (-1) marks groups (re)formed by the boundary pass.
  static constexpr int32_t kSeamGroup = -1;

  /// Channel the group is served on.
  size_t channel = 0;
  /// Shard that produced the group under sharded planning (DESIGN.md
  /// §12); kSeamGroup for boundary-pass groups, kNoShard when the plan
  /// was not sharded.
  int32_t shard = kNoShard;
  /// Member query ids (canonical ascending order).
  QueryGroup members;
  /// Minimum bounding rectangle of the member queries.
  Rect mbr;
  /// Merged size under the planner's estimator (GroupStats::size).
  double est_size = 0.0;
  /// Merged size under an exact estimator, when one was provided to the
  /// explainer; negative when unavailable.
  double exact_size = -1.0;
  /// Messages the group contributes to |M| (GroupStats::messages).
  double messages = 0.0;
  /// Irrelevant data U the group's members receive (GroupStats).
  double irrelevant = 0.0;
  /// BenefitBounder view of the group, when bounds are valid for the
  /// model: the merged-size lower bound and the resulting admissible
  /// cost lower bound (0 when bounds are unavailable).
  double size_lower_bound = 0.0;
  double cost_lower_bound = 0.0;
  /// The cost terms. total_cost is their exact sum and equals the
  /// channel-scoped CostModel::GroupCost of this group.
  double message_cost = 0.0;
  double check_cost = 0.0;
  double size_cost = 0.0;
  double irrelevant_cost = 0.0;
  double total_cost = 0.0;
};

/// EXPLAIN of one channel: its audience and its share of the plan cost.
struct ChannelExplain {
  size_t index = 0;
  std::vector<ClientId> clients;
  size_t num_groups = 0;
  /// Sum of the channel's GroupExplain::total_cost values.
  double group_cost = 0.0;
  /// The per-channel K_D charge (0 for an unused or single channel).
  double channel_cost = 0.0;
  double total_cost = 0.0;
};

/// The full structured EXPLAIN of a dissemination plan.
struct PlanExplain {
  /// Free-form context lines ("scenario" -> "fig16", "merger" -> "pair",
  /// ...), rendered in order.
  std::vector<std::pair<std::string, std::string>> labels;
  size_t num_queries = 0;
  size_t num_channels = 0;
  size_t num_groups = 0;
  /// Cost of serving every query unmerged (the paper's Cost_initial);
  /// negative when the caller did not supply it.
  double initial_cost = -1.0;
  /// Sum over channels of group costs plus K_D charges — the quantity
  /// the planner minimized.
  double total_cost = 0.0;
  /// BenefitBounder effort accounting for the merge runs that built the
  /// plan (see MergeOutcome); zero when unavailable.
  uint64_t bounds_refined = 0;
  uint64_t bounds_pruned = 0;
  std::vector<ChannelExplain> channels;
  std::vector<GroupExplain> groups;
  /// Balanced-assignment shard layout (DESIGN.md §13): the bisection cut
  /// tree plus per-shard query counts and estimated planning costs. All
  /// three are populated together, and only when the explainer was
  /// handed a balanced multi-shard layout — empty vectors render
  /// nothing, so unsharded (and grid-sharded) EXPLAIN output is
  /// byte-identical to what it was before balanced assignment existed.
  std::vector<ShardCutNode> shard_cuts;
  std::vector<double> shard_cost_est;
  std::vector<size_t> shard_queries;

  /// Human-readable EXPLAIN (stable formatting, %.6g numbers — the
  /// golden-diffable form).
  std::string ToText() const;
  /// The same structure as one JSON object.
  std::string ToJson() const;
};

/// Walks a finished plan and derives the EXPLAIN above from the same
/// memoized statistics the planner used, so every reported term is the
/// term the planner actually charged (ROADMAP item 5).
///
/// The explainer holds no results; Explain() is const and reusable.
class PlanExplainer {
 public:
  /// `ctx` and `model` must be the planner's context and cost model (and
  /// must outlive the explainer).
  PlanExplainer(const MergeContext* ctx, const CostModel& model);

  /// Optional second context over the same QuerySet backed by an exact
  /// estimator; fills GroupExplain::exact_size for estimated-vs-exact
  /// comparison.
  void set_exact_context(const MergeContext* exact_ctx) {
    exact_ctx_ = exact_ctx;
  }

  /// Adds a context line to the EXPLAIN header.
  void AddLabel(std::string key, std::string value);

  /// Cost_initial for the savings line; from PlanReport::initial_cost.
  void set_initial_cost(double cost) { initial_cost_ = cost; }

  /// Bound-refinement counters; from PlanReport or a MergeOutcome.
  void set_refinement(uint64_t refined, uint64_t pruned) {
    bounds_refined_ = refined;
    bounds_pruned_ = pruned;
  }

  /// Shard attribution of a sharded single-channel plan, parallel to the
  /// partition passed to Explain (SubscriptionService::plan_group_shard
  /// or ShardedMergeOutcome::group_shard; non-owning, must outlive the
  /// Explain call). Null or size-mismatched attribution leaves every
  /// group at kNoShard, and the EXPLAIN renders exactly as unsharded.
  void set_shard_attribution(const std::vector<int32_t>* group_shard) {
    shard_attribution_ = group_shard;
  }

  /// Shard layout of a sharded single-channel plan
  /// (ShardedMergeOutcome::layout; non-owning, must outlive the Explain
  /// call). Only a balanced layout with more than one shard emits
  /// anything — the cut tree and per-shard cost estimates; null, grid,
  /// or single-shard layouts render exactly as before.
  void set_shard_layout(const ShardLayout* layout) { shard_layout_ = layout; }

  /// EXPLAIN of a single-channel plan (no allocation, no k_check/K_D
  /// terms): one implicit channel carrying every client.
  PlanExplain Explain(const Partition& partition) const;

  /// EXPLAIN of a multi-channel plan. `clients` must be the client set
  /// the plan was made for (its channel populations scale the k_check
  /// term exactly as ChannelCostEvaluator did).
  PlanExplain Explain(const DisseminationPlan& plan,
                      const ClientSet& clients) const;

 private:
  void ExplainChannel(size_t channel_index,
                      const std::vector<ClientId>& channel_clients,
                      const Partition& partition, PlanExplain* out) const;

  const MergeContext* ctx_;
  CostModel model_;
  const MergeContext* exact_ctx_ = nullptr;
  const std::vector<int32_t>* shard_attribution_ = nullptr;
  const ShardLayout* shard_layout_ = nullptr;
  std::vector<std::pair<std::string, std::string>> labels_;
  double initial_cost_ = -1.0;
  uint64_t bounds_refined_ = 0;
  uint64_t bounds_pruned_ = 0;
};

}  // namespace obs
}  // namespace qsp

#endif  // QSP_OBS_PLAN_EXPLAIN_H_
