#include "obs/exporter.h"

#include <cctype>
#include <cinttypes>
#include <cmath>
#include <utility>

#include "obs/clock.h"
#include "util/json_writer.h"

namespace qsp {
namespace obs {

namespace {

/// Maps a dotted qsp metric name onto the Prometheus metric charset:
/// [a-zA-Z_:][a-zA-Z0-9_:]*. Every out-of-charset byte becomes '_'
/// (colons are reserved for recording rules, so we do not emit them).
std::string PrometheusName(const std::string& prefix,
                           const std::string& name) {
  std::string out = prefix.empty() ? "" : prefix + "_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out = "_" + out;
  return out;
}

std::string FormatDouble(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

void AppendSample(const std::string& name, const std::string& labels,
                  const std::string& value, std::string* out) {
  *out += name;
  *out += labels;
  *out += ' ';
  *out += value;
  *out += '\n';
}

}  // namespace

std::string ToPrometheusText(const MetricRegistry& registry,
                             const std::string& prefix) {
  std::string out;
  for (const auto& [name, value] : registry.CounterValues()) {
    const std::string pname = PrometheusName(prefix, name);
    out += "# TYPE " + pname + " counter\n";
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, value);
    AppendSample(pname, "", buf, &out);
  }
  for (const auto& [name, value] : registry.GaugeValues()) {
    const std::string pname = PrometheusName(prefix, name);
    out += "# TYPE " + pname + " gauge\n";
    AppendSample(pname, "", FormatDouble(value), &out);
  }
  for (const auto& [name, histogram] : registry.Histograms()) {
    const std::string pname = PrometheusName(prefix, name);
    out += "# TYPE " + pname + " summary\n";
    for (const double q : {0.5, 0.9, 0.99}) {
      AppendSample(pname,
                   "{quantile=\"" + FormatDouble(q) + "\"}",
                   FormatDouble(histogram->Percentile(q * 100.0)), &out);
    }
    AppendSample(pname + "_sum", "", FormatDouble(histogram->sum()), &out);
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%" PRIu64, histogram->count());
    AppendSample(pname + "_count", "", buf, &out);
  }
  return out;
}

PeriodicSampler::PeriodicSampler(Options options, MetricRegistry* registry)
    : options_(std::move(options)), registry_(registry) {}

PeriodicSampler::~PeriodicSampler() { Stop(); }

Status PeriodicSampler::Start() {
  if (options_.interval_ms == 0) {
    return Status::InvalidArgument("sampler interval must be > 0");
  }
  if (options_.path.empty()) {
    return Status::InvalidArgument("sampler sink path must be set");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (sink_ != nullptr) {
      return Status::FailedPrecondition("sampler already started");
    }
    sink_ = std::fopen(options_.path.c_str(), "a");
    if (sink_ == nullptr) {
      return Status::NotFound("cannot open sampler sink: " + options_.path);
    }
    sample_index_ = 0;
    start_us_ = CurrentClock()->NowMicros();
  }
  task_.Start(options_.interval_ms, [this] { SampleOnce(); });
  return Status::OK();
}

void PeriodicSampler::Stop() {
  task_.Stop();
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ != nullptr) {
    std::fclose(sink_);
    sink_ = nullptr;
  }
}

void PeriodicSampler::SampleOnce() {
  const std::string row = RenderRow();
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ == nullptr) return;
  std::fwrite(row.data(), 1, row.size(), sink_);
  std::fflush(sink_);
}

uint64_t PeriodicSampler::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return sample_index_;
}

std::string PeriodicSampler::RenderRow() {
  double elapsed_us = 0.0;
  uint64_t index = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    elapsed_us = CurrentClock()->NowMicros() - start_us_;
    index = sample_index_++;
  }
  JsonWriter json;
  json.BeginObject();
  json.Key("sample").UInt(index);
  json.Key("elapsed_us").Number(elapsed_us);
  json.Key("gauges").BeginObject();
  for (const auto& [name, value] : registry_->GaugeValues()) {
    json.Key(name).Number(value);
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : registry_->Histograms()) {
    json.Key(name).BeginObject();
    json.Key("count").UInt(histogram->count());
    json.Key("sum").Number(histogram->sum());
    for (const double p : options_.percentiles) {
      char key[32];
      std::snprintf(key, sizeof(key), "p%g", p);
      json.Key(key).Number(histogram->Percentile(p));
    }
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.str() + "\n";
}

}  // namespace obs
}  // namespace qsp
