#ifndef QSP_OBS_CLOCK_H_
#define QSP_OBS_CLOCK_H_

#include <mutex>

namespace qsp {
namespace obs {

/// Time source for the telemetry layer. Everything in qsp::obs that
/// reads a wall clock (ScopedTimer, PhaseTracer, PeriodicSampler rows)
/// goes through CurrentClock(), so tests and golden-output runs can
/// substitute a deterministic clock and make timing fields byte-identical
/// run-to-run — the wall-clock nondeterminism that previously kept
/// fig15's run report from being diffable.
///
/// The default clock is std::chrono::steady_clock. Implementations must
/// be thread-safe and monotone non-decreasing.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Microseconds since an arbitrary epoch.
  virtual double NowMicros() = 0;
};

/// The clock currently in effect (never null).
Clock* CurrentClock();

/// Installs a clock for the whole process; nullptr restores the
/// steady_clock default. The caller keeps ownership and must keep the
/// clock alive until it is replaced. Not intended for concurrent
/// swapping — install before the instrumented work starts.
void SetClock(Clock* clock);

/// Deterministic clock for tests and golden runs: every NowMicros() call
/// returns the previous value advanced by a fixed tick, so any sequence
/// of timing reads yields the same values on every run regardless of
/// machine load. Thread-safe.
class FakeClock : public Clock {
 public:
  explicit FakeClock(double tick_us = 1.0) : tick_us_(tick_us) {}

  double NowMicros() override {
    std::lock_guard<std::mutex> lock(mu_);
    now_us_ += tick_us_;
    return now_us_;
  }

  /// Moves the clock forward without a read (e.g. to simulate a long
  /// phase between two samples).
  void AdvanceMicros(double delta_us) {
    std::lock_guard<std::mutex> lock(mu_);
    now_us_ += delta_us;
  }

 private:
  std::mutex mu_;
  double now_us_ = 0.0;
  const double tick_us_;
};

}  // namespace obs
}  // namespace qsp

#endif  // QSP_OBS_CLOCK_H_
