#ifndef QSP_OBS_PHASE_TRACER_H_
#define QSP_OBS_PHASE_TRACER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"

namespace qsp {
namespace obs {

/// Records a tree of named phases with wall times and per-span counter
/// deltas: plan -> merge/<algo> -> ... -> simulate -> broadcast/channelN.
/// On Begin() the tracer snapshots the default registry's counters; on
/// End() every counter that advanced during the span is attached to it as
/// a delta, so a span shows not just how long a phase took but how much
/// work (estimator calls, candidates, cache misses) it burned.
///
/// Begin/End must nest; ScopedSpan is the intended way to use it.
/// Completed top-level spans accumulate until Clear(). Not thread-safe:
/// only the orchestrating thread may open spans, so code running inside a
/// qsp::exec parallel region must not create spans (the parallel
/// broadcast pass records one enclosing span instead of one per channel).
class PhaseTracer {
 public:
  struct Span {
    std::string name;
    /// Wall time of the span, microseconds (obs::CurrentClock()).
    double wall_us = 0.0;
    /// Counters of the default registry that advanced during the span
    /// (name, delta), including work done by child spans.
    std::vector<std::pair<std::string, uint64_t>> counter_deltas;
    std::vector<Span> children;
  };

  /// Opens a span as a child of the innermost open span (or a new root).
  /// No-op when telemetry is disabled.
  void Begin(std::string_view name);

  /// Closes the innermost open span; no-op when none is open.
  void End();

  /// Number of currently open spans.
  size_t depth() const { return open_.size(); }

  /// Completed top-level spans, oldest first. Spans still open do not
  /// appear until their End().
  const std::vector<Span>& spans() const { return roots_; }

  /// Drops all completed and open spans.
  void Clear();

  /// Indented text tree: "name  wall_us  [counter deltas]".
  std::string ToText() const;

  /// JSON array of span objects {name, wall_us, counters, children}.
  std::string ToJson() const;

  /// The process-global tracer the instrumentation writes to.
  static PhaseTracer& Default();

 private:
  struct OpenSpan {
    Span span;
    /// Start time in microseconds, read from obs::CurrentClock().
    double start_us = 0.0;
    std::vector<std::pair<std::string, uint64_t>> counters_at_start;
  };

  std::vector<OpenSpan> open_;
  std::vector<Span> roots_;
};

/// RAII span on the default tracer. Captures the enabled state at
/// construction so an End() is only issued for spans actually opened.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string_view name) : active_(Enabled()) {
    if (active_) PhaseTracer::Default().Begin(name);
  }

  ~ScopedSpan() {
    if (active_) PhaseTracer::Default().End();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  bool active_;
};

}  // namespace obs
}  // namespace qsp

#endif  // QSP_OBS_PHASE_TRACER_H_
