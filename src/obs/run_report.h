#ifndef QSP_OBS_RUN_REPORT_H_
#define QSP_OBS_RUN_REPORT_H_

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/phase_tracer.h"
#include "util/status.h"
#include "util/table_printer.h"

namespace qsp {
namespace obs {

/// Builder for the machine-readable `bench_report.json` every figure
/// harness emits alongside its text table: a flat JSON object of named
/// sections — scalars, strings, tables (TablePrinter::ToJson), a metric
/// registry dump, and a phase trace — in insertion order. The file format
/// is documented in DESIGN.md §5.
class RunReport {
 public:
  /// `name` identifies the producing harness ("fig16", "fig15", ...).
  explicit RunReport(std::string name);

  void AddScalar(std::string_view key, double value);
  void AddText(std::string_view key, std::string_view value);
  void AddBool(std::string_view key, bool value);

  /// Adds a figure table under `key` as an array of row objects.
  void AddTable(std::string_view key, const TablePrinter& table);

  /// Dumps `registry` under "metrics".
  void AddMetrics(const MetricRegistry& registry);

  /// Dumps `tracer`'s completed spans under "trace".
  void AddTrace(const PhaseTracer& tracer);

  /// Splices a pre-rendered JSON fragment under `key`.
  void AddJson(std::string_view key, std::string json);

  /// The full report document.
  std::string ToJson() const;

  /// Writes ToJson() (plus a trailing newline) to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  std::string name_;
  /// (key, rendered JSON value) in insertion order.
  std::vector<std::pair<std::string, std::string>> entries_;
};

}  // namespace obs
}  // namespace qsp

#endif  // QSP_OBS_RUN_REPORT_H_
