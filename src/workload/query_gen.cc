#include "workload/query_gen.h"

#include <algorithm>
#include <cmath>

#include "geom/point.h"
#include "util/status.h"

namespace qsp {
namespace {

Rect ClampedQuery(const Point& center, double width, double height,
                  const Rect& domain) {
  Rect r = Rect::FromCenter(center, width, height);
  r = r.Intersection(domain);
  if (r.IsEmpty()) {
    // Center fell outside the domain; snap it to the nearest corner area.
    const double cx = std::clamp(center.x, domain.x_lo(), domain.x_hi());
    const double cy = std::clamp(center.y, domain.y_lo(), domain.y_hi());
    r = Rect::FromCenter({cx, cy}, width, height).Intersection(domain);
  }
  return r;
}

}  // namespace

std::vector<Rect> GenerateQueries(const QueryGenConfig& config, Rng* rng) {
  QSP_CHECK(!config.domain.IsEmpty());
  QSP_CHECK(config.min_extent <= config.max_extent);
  const Rect& domain = config.domain;
  const double w = domain.Width();
  const double h = domain.Height();

  const size_t num_clustered = static_cast<size_t>(
      std::llround(config.cf * static_cast<double>(config.num_queries)));
  const size_t per_cluster = std::max<size_t>(
      1, static_cast<size_t>(std::llround(
             config.sf * static_cast<double>(num_clustered))));

  std::vector<Rect> queries;
  queries.reserve(config.num_queries);

  // Clustered queries: draw a fresh uniform origin every `per_cluster`
  // queries; each query center is Normal(origin, df * width).
  Point origin{0, 0};
  const double spread = config.df * w;
  for (size_t i = 0; i < num_clustered; ++i) {
    if (i % per_cluster == 0) {
      origin = {rng->UniformDouble(domain.x_lo(), domain.x_hi()),
                rng->UniformDouble(domain.y_lo(), domain.y_hi())};
    }
    const Point center{rng->Normal(origin.x, spread),
                       rng->Normal(origin.y, spread)};
    const double qw = rng->UniformDouble(config.min_extent, config.max_extent) * w;
    const double qh = rng->UniformDouble(config.min_extent, config.max_extent) * h;
    queries.push_back(ClampedQuery(center, qw, qh, domain));
  }

  // Random queries: uniform centers.
  while (queries.size() < config.num_queries) {
    const Point center{rng->UniformDouble(domain.x_lo(), domain.x_hi()),
                       rng->UniformDouble(domain.y_lo(), domain.y_hi())};
    const double qw = rng->UniformDouble(config.min_extent, config.max_extent) * w;
    const double qh = rng->UniformDouble(config.min_extent, config.max_extent) * h;
    queries.push_back(ClampedQuery(center, qw, qh, domain));
  }

  // Interleave so truncating a prefix still mixes both kinds.
  rng->Shuffle(&queries);
  return queries;
}

}  // namespace qsp
