#ifndef QSP_WORKLOAD_SUBS_IO_H_
#define QSP_WORKLOAD_SUBS_IO_H_

#include <iosfwd>
#include <string>
#include <vector>

#include "channel/client_set.h"
#include "geom/rect.h"
#include "util/status.h"

namespace qsp {

/// One subscription row: which client asked for which rectangle.
struct SubscriptionRow {
  ClientId client = 0;
  Rect rect;
};

/// Parses subscriptions from CSV text with rows
///   client,x_lo,y_lo,x_hi,y_hi
/// Empty lines and '#' comments are skipped; a single leading header
/// line is tolerated. Fails with a line-numbered message on malformed
/// rows, empty rectangles, or an empty file.
Result<std::vector<SubscriptionRow>> ParseSubscriptionsCsv(
    std::istream& in);

/// Convenience: reads `path` and parses it.
Result<std::vector<SubscriptionRow>> LoadSubscriptionsCsv(
    const std::string& path);

/// Renders rows back to CSV (with header), the inverse of the parser.
std::string SubscriptionsToCsv(const std::vector<SubscriptionRow>& rows);

}  // namespace qsp

#endif  // QSP_WORKLOAD_SUBS_IO_H_
