#include "workload/client_gen.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "util/status.h"

namespace qsp {

ClientSet AssignClients(const QuerySet& queries, size_t num_clients,
                        ClientAssignment mode, Rng* rng) {
  QSP_CHECK(num_clients > 0);
  ClientSet clients;
  for (size_t i = 0; i < num_clients; ++i) clients.AddClient();

  std::vector<QueryId> order = queries.AllIds();
  switch (mode) {
    case ClientAssignment::kRoundRobin:
      break;
    case ClientAssignment::kRandom:
      for (QueryId q : order) {
        clients.Subscribe(
            static_cast<ClientId>(rng->UniformInt(
                0, static_cast<int64_t>(num_clients) - 1)),
            q);
      }
      return clients;
    case ClientAssignment::kLocality:
      std::sort(order.begin(), order.end(), [&](QueryId a, QueryId b) {
        const Point ca = queries.rect(a).Center();
        const Point cb = queries.rect(b).Center();
        if (ca.x != cb.x) return ca.x < cb.x;
        return ca.y < cb.y;
      });
      // Contiguous chunks of the position-sorted order, so each client's
      // subscriptions are neighbours.
      for (size_t i = 0; i < order.size(); ++i) {
        clients.Subscribe(
            static_cast<ClientId>(i * num_clients / order.size()), order[i]);
      }
      return clients;
  }
  for (size_t i = 0; i < order.size(); ++i) {
    clients.Subscribe(static_cast<ClientId>(i % num_clients), order[i]);
  }
  return clients;
}

}  // namespace qsp
