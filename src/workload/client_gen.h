#ifndef QSP_WORKLOAD_CLIENT_GEN_H_
#define QSP_WORKLOAD_CLIENT_GEN_H_

#include "channel/client_set.h"
#include "query/query.h"
#include "util/rng.h"

namespace qsp {

/// How queries are handed out to clients.
enum class ClientAssignment {
  /// Query i goes to client i % num_clients (even spread).
  kRoundRobin,
  /// Each query goes to a uniformly random client.
  kRandom,
  /// Queries are sorted by center position before round-robin so each
  /// client's subscriptions are geographically coherent (an operational
  /// unit asks about its own area — the BADD pattern).
  kLocality,
};

/// Builds a ClientSet of `num_clients` clients subscribing to all queries
/// of `queries` per `mode`. Every client gets at least one query when
/// num_clients <= queries.size().
ClientSet AssignClients(const QuerySet& queries, size_t num_clients,
                        ClientAssignment mode, Rng* rng);

}  // namespace qsp

#endif  // QSP_WORKLOAD_CLIENT_GEN_H_
