#ifndef QSP_WORKLOAD_QUERY_GEN_H_
#define QSP_WORKLOAD_QUERY_GEN_H_

#include <vector>

#include "geom/rect.h"
#include "util/rng.h"

namespace qsp {

/// The input-generation model of Section 9.1: a hybrid of random and
/// clustered range queries over the two-dimensional database.
struct QueryGenConfig {
  /// Domain of the two attributes.
  Rect domain = Rect(0, 0, 1000, 1000);

  /// Number of queries to generate.
  size_t num_queries = 10;

  /// cf: fraction of queries generated using clustering (the rest are
  /// uniformly random over the domain).
  double cf = 0.6;

  /// sf: fraction of the *clustered* queries that belong to one cluster;
  /// i.e. each cluster holds ceil(sf * cf * num_queries) queries, so the
  /// number of clusters is about 1/sf.
  double sf = 0.5;

  /// df: cluster density — the standard deviation of the Normal(0, df)
  /// displacement of a clustered query's center from its cluster origin,
  /// expressed as a fraction of the domain width.
  double df = 0.05;

  /// Query extents are drawn uniformly from these ranges (fractions of
  /// the domain width/height).
  double min_extent = 0.01;
  double max_extent = 0.10;
};

/// Generates query rectangles per `config`, deterministic in `rng`.
/// Cluster origins are uniform over the domain; every rectangle is clamped
/// into the domain.
std::vector<Rect> GenerateQueries(const QueryGenConfig& config, Rng* rng);

}  // namespace qsp

#endif  // QSP_WORKLOAD_QUERY_GEN_H_
