#include "workload/subs_io.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace qsp {

Result<std::vector<SubscriptionRow>> ParseSubscriptionsCsv(
    std::istream& in) {
  std::vector<SubscriptionRow> rows;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::stringstream ss(line);
    std::string field;
    std::vector<std::string> fields;
    while (std::getline(ss, field, ',')) fields.push_back(field);
    if (fields.size() != 5) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 5 comma-separated fields");
    }
    char* end = nullptr;
    const long client = std::strtol(fields[0].c_str(), &end, 10);
    if (end == fields[0].c_str() || client < 0) {
      if (rows.empty() && line_no == 1) continue;  // Header line.
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": bad client id '" + fields[0] + "'");
    }
    double coords[4];
    for (int i = 0; i < 4; ++i) {
      end = nullptr;
      const std::string& text = fields[static_cast<size_t>(i) + 1];
      coords[i] = std::strtod(text.c_str(), &end);
      if (end == text.c_str()) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": bad number '" + text + "'");
      }
    }
    const Rect rect(coords[0], coords[1], coords[2], coords[3]);
    if (rect.IsEmpty()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": empty rectangle");
    }
    rows.push_back({static_cast<ClientId>(client), rect});
  }
  if (rows.empty()) {
    return Status::InvalidArgument("no subscription rows found");
  }
  return rows;
}

Result<std::vector<SubscriptionRow>> LoadSubscriptionsCsv(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  return ParseSubscriptionsCsv(in);
}

std::string SubscriptionsToCsv(const std::vector<SubscriptionRow>& rows) {
  std::string out = "client,x_lo,y_lo,x_hi,y_hi\n";
  for (const SubscriptionRow& row : rows) {
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%u,%.17g,%.17g,%.17g,%.17g\n",
                  row.client, row.rect.x_lo(), row.rect.y_lo(),
                  row.rect.x_hi(), row.rect.y_hi());
    out += buf;
  }
  return out;
}

}  // namespace qsp
