#include <gtest/gtest.h>

#include <sstream>

#include "workload/subs_io.h"

namespace qsp {
namespace {

Result<std::vector<SubscriptionRow>> Parse(const std::string& text) {
  std::istringstream in(text);
  return ParseSubscriptionsCsv(in);
}

TEST(SubsIoTest, ParsesPlainRows) {
  auto rows = Parse("0,10,10,30,30\n1,70,70,90,90\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0].client, 0u);
  EXPECT_EQ((*rows)[0].rect, Rect(10, 10, 30, 30));
  EXPECT_EQ((*rows)[1].client, 1u);
}

TEST(SubsIoTest, ToleratesHeaderCommentsAndBlankLines) {
  auto rows = Parse(
      "client,x_lo,y_lo,x_hi,y_hi\n"
      "# a comment\n"
      "\n"
      "2,0,0,5,5\n");
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0].client, 2u);
}

TEST(SubsIoTest, RejectsMalformedRows) {
  EXPECT_FALSE(Parse("").ok());                        // Empty file.
  EXPECT_FALSE(Parse("0,1,2,3\n").ok());               // Too few fields.
  EXPECT_FALSE(Parse("0,1,2,3,4,5\n").ok());           // Too many fields.
  EXPECT_FALSE(Parse("0,a,2,3,4\n").ok());             // Bad number.
  EXPECT_FALSE(Parse("0,5,5,1,1\n").ok());             // Empty rectangle.
  EXPECT_FALSE(Parse("0,0,0,1,1\nx,0,0,1,1\n").ok());  // Bad id mid-file.
  EXPECT_FALSE(Parse("-3,0,0,1,1\n").ok());            // Negative id.
}

TEST(SubsIoTest, ErrorsCarryLineNumbers) {
  auto rows = Parse("0,0,0,1,1\n0,zzz,0,1,1\n");
  ASSERT_FALSE(rows.ok());
  EXPECT_NE(rows.status().message().find("line 2"), std::string::npos);
}

TEST(SubsIoTest, RoundTripsThroughCsv) {
  const std::vector<SubscriptionRow> rows = {
      {0, Rect(10.5, -2.25, 30, 30)},
      {7, Rect(0, 0, 0.125, 1e6)},
  };
  auto parsed = Parse(SubscriptionsToCsv(rows));
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->size(), rows.size());
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ((*parsed)[i].client, rows[i].client);
    EXPECT_EQ((*parsed)[i].rect, rows[i].rect);
  }
}

TEST(SubsIoTest, LoadFromMissingFileFails) {
  auto rows = LoadSubscriptionsCsv("/no/such/file.csv");
  EXPECT_FALSE(rows.ok());
  EXPECT_EQ(rows.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace qsp
