// obs/exporter: Prometheus text exposition of a MetricRegistry and the
// service-mode PeriodicSampler (JSONL time series), plus the
// exec::PeriodicTask it rides on. Clocks are faked where timing would
// otherwise make assertions racy.
#include "obs/exporter.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exec/periodic.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "util/json_parser.h"

namespace qsp {
namespace obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(nullptr, f) << path;
  if (f == nullptr) return std::string();
  std::string out;
  char buf[4096];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

TEST(PrometheusText, ExportsCountersGaugesAndSummaries) {
  MetricRegistry registry;
  registry.counter("merge.pair-merging.runs").Add(7);
  registry.gauge("plan.est.cost").Set(252.5);
  Histogram& h = registry.histogram("core.plan.latency_us");
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<double>(i));

  const std::string text = ToPrometheusText(registry);
  EXPECT_NE(std::string::npos,
            text.find("# TYPE qsp_merge_pair_merging_runs counter"));
  EXPECT_NE(std::string::npos, text.find("qsp_merge_pair_merging_runs 7"));
  EXPECT_NE(std::string::npos,
            text.find("# TYPE qsp_plan_est_cost gauge"));
  EXPECT_NE(std::string::npos, text.find("qsp_plan_est_cost 252.5"));
  EXPECT_NE(std::string::npos,
            text.find("# TYPE qsp_core_plan_latency_us summary"));
  EXPECT_NE(std::string::npos,
            text.find("qsp_core_plan_latency_us{quantile=\"0.5\"}"));
  EXPECT_NE(std::string::npos,
            text.find("qsp_core_plan_latency_us{quantile=\"0.99\"}"));
  EXPECT_NE(std::string::npos, text.find("qsp_core_plan_latency_us_sum"));
  EXPECT_NE(std::string::npos,
            text.find("qsp_core_plan_latency_us_count 100"));
  // Exposition ends with a newline (the 0.0.4 text format requires it).
  ASSERT_FALSE(text.empty());
  EXPECT_EQ('\n', text.back());
}

TEST(PrometheusText, SanitizesHostileNamesAndPrefix) {
  MetricRegistry registry;
  registry.counter("evil name!with\"chars").Add(1);
  registry.counter("0starts.with.digit").Add(2);
  const std::string text = ToPrometheusText(registry);
  EXPECT_NE(std::string::npos, text.find("qsp_evil_name_with_chars 1"));
  EXPECT_NE(std::string::npos, text.find("qsp_0starts_with_digit 2"));
  // No raw specials survive: the hostile bytes were mapped to '_', and
  // with no histograms there is no quantile label to contribute quotes.
  EXPECT_EQ(std::string::npos, text.find('!'));
  EXPECT_EQ(std::string::npos, text.find('"'));
}

TEST(PrometheusText, EmptyRegistryIsEmpty) {
  MetricRegistry registry;
  EXPECT_TRUE(ToPrometheusText(registry).empty());
}

TEST(PeriodicSampler, StartValidatesOptions) {
  MetricRegistry registry;
  {
    PeriodicSampler::Options options;  // interval set, no path
    options.interval_ms = 10;
    PeriodicSampler sampler(options, &registry);
    EXPECT_FALSE(sampler.Start().ok());
  }
  {
    PeriodicSampler::Options options;  // path set, zero interval
    options.path = TempPath("sampler_invalid.jsonl");
    options.interval_ms = 0;
    PeriodicSampler sampler(options, &registry);
    EXPECT_FALSE(sampler.Start().ok());
  }
}

TEST(PeriodicSampler, SampleOnceAppendsParsableJsonlRows) {
  FakeClock clock(/*tick_us=*/100.0);
  SetClock(&clock);

  MetricRegistry registry;
  registry.gauge("plan.est.cost").Set(42.0);
  Histogram& h = registry.histogram("core.plan.latency_us");
  for (int i = 1; i <= 16; ++i) h.Record(static_cast<double>(i));

  const std::string path = TempPath("sampler_rows.jsonl");
  std::remove(path.c_str());
  PeriodicSampler::Options options;
  options.interval_ms = 60000;  // Never fires on its own in this test.
  options.path = path;
  PeriodicSampler sampler(options, &registry);
  ASSERT_TRUE(sampler.Start().ok());
  sampler.SampleOnce();
  sampler.SampleOnce();
  sampler.Stop();
  SetClock(nullptr);

  const std::string content = ReadFile(path);
  // One JSON object per line.
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < content.size()) {
    const size_t eol = content.find('\n', start);
    ASSERT_NE(std::string::npos, eol) << "unterminated JSONL row";
    lines.push_back(content.substr(start, eol - start));
    start = eol + 1;
  }
  ASSERT_EQ(2u, lines.size());

  for (size_t i = 0; i < lines.size(); ++i) {
    Result<JsonValue> parsed = ParseJson(lines[i]);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    const JsonValue& row = parsed.value();
    EXPECT_DOUBLE_EQ(static_cast<double>(i),
                     row.Find("sample")->AsNumber());
    // The fake clock ticks 100us per read, so elapsed is positive and
    // strictly increasing across rows.
    EXPECT_GT(row.Find("elapsed_us")->AsNumber(), 0.0);
    const JsonValue* gauges = row.Find("gauges");
    ASSERT_NE(nullptr, gauges);
    EXPECT_DOUBLE_EQ(42.0, gauges->Find("plan.est.cost")->AsNumber());
    const JsonValue* hist =
        row.Find("histograms")->Find("core.plan.latency_us");
    ASSERT_NE(nullptr, hist);
    EXPECT_DOUBLE_EQ(16.0, hist->Find("count")->AsNumber());
    EXPECT_NE(nullptr, hist->Find("p50"));
    EXPECT_NE(nullptr, hist->Find("p90"));
    EXPECT_NE(nullptr, hist->Find("p99"));
  }
  const double first = ParseJson(lines[0])
                           .value()
                           .Find("elapsed_us")
                           ->AsNumber();
  const double second = ParseJson(lines[1])
                            .value()
                            .Find("elapsed_us")
                            ->AsNumber();
  EXPECT_GT(second, first);
  EXPECT_EQ(2u, sampler.samples_taken());
}

TEST(PeriodicSampler, BackgroundThreadSamplesOnInterval) {
  MetricRegistry registry;
  registry.gauge("plan.num_groups").Set(5.0);
  const std::string path = TempPath("sampler_bg.jsonl");
  std::remove(path.c_str());
  PeriodicSampler::Options options;
  options.interval_ms = 1;
  options.path = path;
  PeriodicSampler sampler(options, &registry);
  ASSERT_TRUE(sampler.Start().ok());
  // Generous deadline; typically satisfied within a few ms.
  for (int i = 0; i < 2000 && sampler.samples_taken() < 3; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  sampler.Stop();
  EXPECT_GE(sampler.samples_taken(), 3u);
  // Stop is idempotent and a stopped sampler takes no more samples.
  const uint64_t after_stop = sampler.samples_taken();
  sampler.Stop();
  EXPECT_EQ(after_stop, sampler.samples_taken());
}

TEST(PeriodicTask, RunsAndStops) {
  exec::PeriodicTask task;
  std::atomic<int> fires{0};
  task.Start(1, [&fires] { fires.fetch_add(1); });
  EXPECT_TRUE(task.running());
  for (int i = 0; i < 2000 && fires.load() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  task.Stop();
  EXPECT_FALSE(task.running());
  EXPECT_GE(fires.load(), 2);
}

TEST(PeriodicTask, TriggerNowFiresWithoutWaiting) {
  exec::PeriodicTask task;
  std::atomic<int> fires{0};
  task.Start(3600000, [&fires] { fires.fetch_add(1); });  // 1h interval.
  task.TriggerNow();
  for (int i = 0; i < 2000 && fires.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  task.Stop();
  EXPECT_GE(fires.load(), 1);
}

TEST(PeriodicTask, StartWhileRunningIsANoOp) {
  exec::PeriodicTask task;
  std::atomic<int> a{0}, b{0};
  task.Start(1, [&a] { a.fetch_add(1); });
  task.Start(1, [&b] { b.fetch_add(1); });  // Ignored: already running.
  for (int i = 0; i < 2000 && a.load() < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  task.Stop();
  EXPECT_GE(a.load(), 1);
  EXPECT_EQ(0, b.load());
}

}  // namespace
}  // namespace obs
}  // namespace qsp
