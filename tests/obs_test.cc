// Tests of the qsp::obs telemetry layer: metric registry, log-scale
// histogram percentiles, scoped timers, phase-tracer nesting, and the JSON
// exporters (including the bench DistanceToOptimal guard that rides on the
// same PR).

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench/bench_common.h"
#include "obs/clock.h"
#include "obs/metrics.h"
#include "obs/phase_tracer.h"
#include "obs/run_report.h"
#include "util/json_writer.h"
#include "util/table_printer.h"

namespace qsp {
namespace obs {
namespace {

// The convenience entry points (Count/SetGauge/Observe, ScopedTimer,
// ScopedSpan) write to process-global state; every test starts from a
// clean, disabled slate and leaves one behind.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    SetEnabled(false);
    MetricRegistry::Default().Reset();
    PhaseTracer::Default().Clear();
  }
  void TearDown() override { SetEnabled(false); }
};

TEST_F(ObsTest, DisabledEntryPointsAreNoOps) {
  const size_t before = MetricRegistry::Default().num_metrics();
  Count("noop.counter");
  SetGauge("noop.gauge", 1.0);
  Observe("noop.histogram", 1.0);
  { ScopedTimer timer("noop.timer_us"); }
  EXPECT_EQ(MetricRegistry::Default().num_metrics(), before);
  EXPECT_EQ(MetricRegistry::Default().CounterValue("noop.counter"), 0u);
}

TEST_F(ObsTest, EnabledEntryPointsRecord) {
  SetEnabled(true);
  Count("on.counter");
  Count("on.counter", 4);
  SetGauge("on.gauge", 2.5);
  Observe("on.histogram", 10.0);
  auto& registry = MetricRegistry::Default();
  EXPECT_EQ(registry.CounterValue("on.counter"), 5u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("on.gauge"), 2.5);
  EXPECT_EQ(registry.histogram("on.histogram").count(), 1u);
}

TEST_F(ObsTest, RegistryReferencesStayValidAcrossCreation) {
  MetricRegistry registry;
  Counter& a = registry.counter("a");
  a.Add(7);
  // Creating many more metrics must not invalidate the first reference.
  for (int i = 0; i < 100; ++i) {
    registry.counter("bulk." + std::to_string(i)).Add();
  }
  a.Add(3);
  EXPECT_EQ(registry.CounterValue("a"), 10u);
  EXPECT_EQ(registry.num_metrics(), 101u);
}

TEST_F(ObsTest, RegistryResetZeroesButKeepsRegistrations) {
  MetricRegistry registry;
  Counter& c = registry.counter("c");
  c.Add(5);
  registry.gauge("g").Set(1.0);
  registry.histogram("h").Record(4.0);
  registry.Reset();
  EXPECT_EQ(registry.num_metrics(), 3u);
  EXPECT_EQ(registry.CounterValue("c"), 0u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("g"), 0.0);
  EXPECT_EQ(registry.histogram("h").count(), 0u);
  c.Add();  // The old reference still points at the live metric.
  EXPECT_EQ(registry.CounterValue("c"), 1u);
}

TEST_F(ObsTest, HistogramTracksExactMoments) {
  Histogram h;
  for (double v : {3.0, 9.0, 30.0, 90.0}) h.Record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 132.0);
  EXPECT_DOUBLE_EQ(h.min(), 3.0);
  EXPECT_DOUBLE_EQ(h.max(), 90.0);
  EXPECT_DOUBLE_EQ(h.mean(), 33.0);
  EXPECT_TRUE(std::isnan(1.0) == false);  // sanity for the NaN case below
  h.Record(std::nan(""));                 // dropped, not counted
  EXPECT_EQ(h.count(), 4u);
}

TEST_F(ObsTest, HistogramPercentilesAreFactorOfTwoBounds) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.Record(100.0);  // bucket (64, 128]
  // Every percentile of a constant distribution must land on the bucket
  // upper edge clamped into [min, max] — i.e. exactly 100.
  EXPECT_DOUBLE_EQ(h.Percentile(50), 100.0);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 100.0);
  // Mixed distribution: p50 bounded by the true value's bucket.
  Histogram m;
  for (int i = 0; i < 50; ++i) m.Record(10.0);
  for (int i = 0; i < 50; ++i) m.Record(1000.0);
  const double p25 = m.Percentile(25);
  EXPECT_GE(p25, 10.0);
  EXPECT_LE(p25, 16.0);  // upper edge of (8, 16]
  EXPECT_DOUBLE_EQ(m.Percentile(100), 1000.0);
  EXPECT_DOUBLE_EQ(Histogram().Percentile(50), 0.0);
}

TEST_F(ObsTest, HistogramTinyValuesLandInBucketZero) {
  Histogram h;
  h.Record(0.0);
  h.Record(0.5);
  h.Record(1.0);
  EXPECT_EQ(h.bucket(0), 3u);
  EXPECT_DOUBLE_EQ(h.Percentile(99), 1.0);  // clamped to exact max
}

TEST_F(ObsTest, ScopedTimerRecordsOneNonNegativeSample) {
  SetEnabled(true);
  { ScopedTimer timer("t.latency_us"); }
  const Histogram& h = MetricRegistry::Default().histogram("t.latency_us");
  EXPECT_EQ(h.count(), 1u);
  EXPECT_GE(h.min(), 0.0);
}

TEST_F(ObsTest, TracerNestsSpansAndCapturesCounterDeltas) {
  SetEnabled(true);
  PhaseTracer& tracer = PhaseTracer::Default();
  tracer.Begin("outer");
  Count("work.outer", 2);
  tracer.Begin("inner");
  Count("work.inner", 5);
  tracer.End();
  tracer.End();
  ASSERT_EQ(tracer.spans().size(), 1u);
  const PhaseTracer::Span& outer = tracer.spans()[0];
  EXPECT_EQ(outer.name, "outer");
  ASSERT_EQ(outer.children.size(), 1u);
  EXPECT_EQ(outer.children[0].name, "inner");
  // The inner span saw only the inner counter; the outer span saw both.
  ASSERT_EQ(outer.children[0].counter_deltas.size(), 1u);
  EXPECT_EQ(outer.children[0].counter_deltas[0].first, "work.inner");
  EXPECT_EQ(outer.children[0].counter_deltas[0].second, 5u);
  ASSERT_EQ(outer.counter_deltas.size(), 2u);
  EXPECT_EQ(outer.counter_deltas[0].first, "work.inner");
  EXPECT_EQ(outer.counter_deltas[1].first, "work.outer");
  EXPECT_EQ(outer.counter_deltas[1].second, 2u);
  EXPECT_GE(outer.wall_us, outer.children[0].wall_us);
}

TEST_F(ObsTest, TracerEndWithoutBeginIsANoOp) {
  SetEnabled(true);
  PhaseTracer& tracer = PhaseTracer::Default();
  tracer.End();
  EXPECT_EQ(tracer.depth(), 0u);
  EXPECT_TRUE(tracer.spans().empty());
}

TEST_F(ObsTest, TracerDisabledRecordsNothing) {
  PhaseTracer& tracer = PhaseTracer::Default();
  tracer.Begin("ignored");
  { ScopedSpan span("also-ignored"); }
  tracer.End();
  EXPECT_TRUE(tracer.spans().empty());
}

TEST_F(ObsTest, JsonWriterBuildsValidNestedDocument) {
  JsonWriter w;
  w.BeginObject()
      .Key("s").String("a\"b\\c\n")
      .Key("n").Number(1.5)
      .Key("bad").Number(std::nan(""))
      .Key("arr").BeginArray().Int(-2).UInt(3).Bool(true).Null().EndArray()
      .Key("nested").BeginObject().Key("k").String("v").EndObject()
      .EndObject();
  EXPECT_EQ(w.str(),
            "{\"s\":\"a\\\"b\\\\c\\n\",\"n\":1.5,\"bad\":null,"
            "\"arr\":[-2,3,true,null],\"nested\":{\"k\":\"v\"}}");
}

TEST_F(ObsTest, TablePrinterJsonRoundTripsNumbersAndStrings) {
  TablePrinter table({"name", "value"});
  table.AddRow({"alpha", "3.5"});
  table.AddRow({"beta", "not-a-number"});
  EXPECT_EQ(table.ToJson(),
            "[{\"name\":\"alpha\",\"value\":3.5},"
            "{\"name\":\"beta\",\"value\":\"not-a-number\"}]");
}

TEST_F(ObsTest, RegistryJsonExportsAllKinds) {
  MetricRegistry registry;
  registry.counter("c").Add(2);
  registry.gauge("g").Set(0.5);
  registry.histogram("h").Record(7.0);
  const std::string json = registry.ToJson();
  EXPECT_NE(json.find("\"counters\":{\"c\":2}"), std::string::npos) << json;
  EXPECT_NE(json.find("\"g\":0.5"), std::string::npos) << json;
  EXPECT_NE(json.find("\"h\":{\"count\":1"), std::string::npos) << json;
}

TEST_F(ObsTest, RunReportWritesOrderedJsonFile) {
  SetEnabled(true);
  Count("report.counter", 3);
  TablePrinter table({"q"});
  table.AddRow({"1"});
  RunReport report("unit");
  report.AddScalar("pi", 3.0);
  report.AddText("note", "hello");
  report.AddBool("ok", true);
  report.AddTable("rows", table);
  report.AddMetrics(MetricRegistry::Default());
  const std::string json = report.ToJson();
  EXPECT_EQ(json.find("\"name\":\"unit\""), 1u) << json;
  EXPECT_LT(json.find("\"pi\":3"), json.find("\"note\":\"hello\"")) << json;
  EXPECT_NE(json.find("\"rows\":[{\"q\":1}]"), std::string::npos) << json;
  EXPECT_NE(json.find("\"report.counter\":3"), std::string::npos) << json;

  const std::string path = ::testing::TempDir() + "/obs_run_report.json";
  ASSERT_TRUE(report.WriteFile(path).ok());
  std::ifstream in(path);
  std::stringstream read_back;
  read_back << in.rdbuf();
  EXPECT_EQ(read_back.str(), json + "\n");
}

TEST_F(ObsTest, RunReportWriteFileFailsOnBadPath) {
  RunReport report("unit");
  EXPECT_FALSE(report.WriteFile("/nonexistent-dir-qsp/report.json").ok());
}

TEST_F(ObsTest, DistanceToOptimalClampsAndFlags) {
  // Normal case.
  EXPECT_DOUBLE_EQ(bench::DistanceToOptimal(110.0, 100.0, 200.0), 0.1);
  // No merging headroom.
  EXPECT_DOUBLE_EQ(bench::DistanceToOptimal(100.0, 100.0, 100.0), 0.0);
  // Roundoff below the optimum clamps to zero...
  EXPECT_DOUBLE_EQ(bench::DistanceToOptimal(100.0 - 1e-10, 100.0, 200.0), 0.0);
  // ...but a heuristic genuinely beating the "optimum" is a sentinel NaN.
  EXPECT_TRUE(std::isnan(bench::DistanceToOptimal(90.0, 100.0, 200.0)));
}

TEST_F(ObsTest, PercentileOfEmptyHistogramIsZero) {
  Histogram h;
  for (double p : {-5.0, 0.0, 50.0, 100.0, 150.0}) {
    EXPECT_DOUBLE_EQ(0.0, h.Percentile(p)) << "p=" << p;
  }
}

TEST_F(ObsTest, PercentileOfSingleSampleIsThatSample) {
  Histogram h;
  h.Record(7.0);
  for (double p : {-5.0, 0.0, 1.0, 50.0, 99.0, 100.0, 150.0}) {
    EXPECT_DOUBLE_EQ(7.0, h.Percentile(p)) << "p=" << p;
  }
}

TEST_F(ObsTest, PercentileOutOfRangePinsToEnvelope) {
  Histogram h;
  h.Record(2.0);
  h.Record(100.0);
  EXPECT_DOUBLE_EQ(2.0, h.Percentile(0.0));
  EXPECT_DOUBLE_EQ(2.0, h.Percentile(-10.0));
  EXPECT_DOUBLE_EQ(100.0, h.Percentile(100.0));
  EXPECT_DOUBLE_EQ(100.0, h.Percentile(200.0));
}

TEST_F(ObsTest, PercentileBucketZeroClampsToExactEnvelope) {
  // Sub-1.0 values all land in bucket 0 (upper edge 1.0); the reported
  // percentile must still respect the exact [min, max] envelope.
  Histogram h;
  h.Record(0.25);
  h.Record(0.5);
  EXPECT_DOUBLE_EQ(0.5, h.Percentile(50.0));
  EXPECT_DOUBLE_EQ(0.5, h.Percentile(90.0));
  EXPECT_DOUBLE_EQ(0.25, h.Percentile(0.0));
}

TEST_F(ObsTest, PercentileFactorOfTwoOracleOnDeterministicStream) {
  // 1000 pseudo-random samples in [0, 1000): for every p the log-scale
  // histogram's answer must bracket the exact order statistic within the
  // structural factor-of-two bucket error, clamped to [min, max].
  Histogram h;
  std::vector<double> values;
  uint64_t x = 0x9e3779b97f4a7c15ull;
  for (int i = 0; i < 1000; ++i) {
    x = x * 6364136223846793005ull + 1442695040888963407ull;
    const double v = static_cast<double>((x >> 33) % 100000) / 100.0;
    values.push_back(v);
    h.Record(v);
  }
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (double p : {1.0, 10.0, 25.0, 50.0, 75.0, 90.0, 99.0}) {
    const size_t rank = static_cast<size_t>(
        std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
    const double exact = sorted[rank - 1];
    const double approx = h.Percentile(p);
    EXPECT_GE(approx, exact - 1e-12) << "p=" << p;
    EXPECT_LE(approx, std::max(2.0 * exact, 1.0) + 1e-12) << "p=" << p;
    EXPECT_GE(approx, sorted.front());
    EXPECT_LE(approx, sorted.back());
  }
}

TEST_F(ObsTest, FakeClockMakesScopedTimerDeterministic) {
  // Two timed runs under fresh FakeClocks must record byte-identical
  // latency histograms — the property the fig15 golden report rides on.
  SetEnabled(true);
  double sums[2];
  uint64_t counts[2];
  for (int run = 0; run < 2; ++run) {
    MetricRegistry::Default().Reset();
    FakeClock clock(/*tick_us=*/25.0);
    SetClock(&clock);
    {
      ScopedTimer outer("det.plan.latency_us");
      ScopedTimer inner("det.merge.latency_us");
    }
    SetClock(nullptr);
    const Histogram& h =
        MetricRegistry::Default().histogram("det.plan.latency_us");
    sums[run] = h.sum();
    counts[run] = h.count();
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_DOUBLE_EQ(sums[0], sums[1]);
  EXPECT_GT(sums[0], 0.0);
}

TEST_F(ObsTest, FakeClockMakesTracerSpansDeterministic) {
  SetEnabled(true);
  double walls[2];
  for (int run = 0; run < 2; ++run) {
    PhaseTracer::Default().Clear();
    FakeClock clock(/*tick_us=*/10.0);
    SetClock(&clock);
    PhaseTracer& tracer = PhaseTracer::Default();
    tracer.Begin("plan");
    tracer.Begin("merge");
    tracer.End();
    tracer.End();
    SetClock(nullptr);
    ASSERT_EQ(1u, tracer.spans().size());
    walls[run] = tracer.spans()[0].wall_us;
  }
  EXPECT_DOUBLE_EQ(walls[0], walls[1]);
  EXPECT_GT(walls[0], 0.0);
}

}  // namespace
}  // namespace obs
}  // namespace qsp
