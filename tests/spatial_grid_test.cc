// SpatialGrid (geom/spatial_grid.h): the candidate index behind the
// planner's pruning. Candidate generation must be conservative — Query
// returns a superset of the true window overlaps, ForEachNearbyPair is
// the exact spatial join — and deterministic (sorted, deduplicated,
// each pair once).

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "geom/spatial_grid.h"
#include "util/rng.h"

namespace qsp {
namespace {

std::vector<Rect> RandomRects(size_t n, uint64_t seed, double empty_prob) {
  Rng rng(seed);
  std::vector<Rect> rects;
  rects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.UniformDouble(0, 1) < empty_prob) {
      rects.push_back(Rect::Empty());
      continue;
    }
    const double x = rng.UniformDouble(0, 900);
    const double y = rng.UniformDouble(0, 900);
    rects.push_back(Rect(x, y, x + rng.UniformDouble(0.1, 120),
                         y + rng.UniformDouble(0.1, 120)));
  }
  return rects;
}

TEST(SpatialGridTest, QueryReturnsSupersetOfTrueOverlaps) {
  const std::vector<Rect> rects = RandomRects(300, 7, 0.05);
  SpatialGrid grid = SpatialGrid::ForRects(rects);
  for (size_t i = 0; i < rects.size(); ++i) {
    grid.Insert(static_cast<uint32_t>(i), rects[i]);
  }
  EXPECT_EQ(grid.size(), rects.size());

  Rng rng(8);
  std::vector<uint32_t> out;
  for (int trial = 0; trial < 50; ++trial) {
    const double x = rng.UniformDouble(-50, 950);
    const double y = rng.UniformDouble(-50, 950);
    const Rect window(x, y, x + rng.UniformDouble(1, 300),
                      y + rng.UniformDouble(1, 300));
    out.clear();
    grid.Query(window, &out);
    // Sorted and deduplicated.
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    EXPECT_EQ(std::adjacent_find(out.begin(), out.end()), out.end());
    // Superset of the brute-force overlaps; empty rects always present.
    const std::set<uint32_t> returned(out.begin(), out.end());
    for (size_t i = 0; i < rects.size(); ++i) {
      if (rects[i].IsEmpty() || rects[i].Intersects(window)) {
        EXPECT_TRUE(returned.count(static_cast<uint32_t>(i)))
            << "id " << i << " missing for window " << window.ToString();
      }
    }
  }
}

TEST(SpatialGridTest, ForEachNearbyPairIsTheExactJoin) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const std::vector<Rect> rects = RandomRects(200, seed, 0.1);
    SpatialGrid grid = SpatialGrid::ForRects(rects);
    for (size_t i = 0; i < rects.size(); ++i) {
      grid.Insert(static_cast<uint32_t>(i), rects[i]);
    }
    std::set<std::pair<uint32_t, uint32_t>> joined;
    grid.ForEachNearbyPair([&](uint32_t a, uint32_t b) {
      EXPECT_LT(a, b);
      // Exactly once.
      EXPECT_TRUE(joined.insert({a, b}).second)
          << "duplicate pair (" << a << ", " << b << ")";
    });
    std::set<std::pair<uint32_t, uint32_t>> brute;
    for (uint32_t i = 0; i < rects.size(); ++i) {
      for (uint32_t j = i + 1; j < rects.size(); ++j) {
        if (!rects[i].IsEmpty() && !rects[j].IsEmpty() &&
            rects[i].Intersects(rects[j])) {
          brute.insert({i, j});
        }
      }
    }
    EXPECT_EQ(joined, brute) << "seed " << seed;
  }
}

TEST(SpatialGridTest, RemoveDropsIdFromQueriesAndJoin) {
  SpatialGrid grid(Rect(0, 0, 100, 100), 8, 8);
  grid.Insert(0, Rect(10, 10, 30, 30));
  grid.Insert(1, Rect(20, 20, 40, 40));
  grid.Insert(2, Rect::Empty());
  EXPECT_EQ(grid.size(), 3u);

  grid.Remove(1, Rect(20, 20, 40, 40));
  grid.Remove(2, Rect::Empty());
  EXPECT_EQ(grid.size(), 1u);

  std::vector<uint32_t> out;
  grid.Query(Rect(0, 0, 100, 100), &out);
  EXPECT_EQ(out, std::vector<uint32_t>({0}));
  size_t pairs = 0;
  grid.ForEachNearbyPair([&](uint32_t, uint32_t) { ++pairs; });
  EXPECT_EQ(pairs, 0u);

  // Reinsert under a different rect; the id is live again.
  grid.Insert(1, Rect(25, 25, 35, 35));
  out.clear();
  grid.Query(Rect(24, 24, 26, 26), &out);
  EXPECT_EQ(out, std::vector<uint32_t>({0, 1}));
}

TEST(SpatialGridTest, OutOfBoundsRectsClampToEdgeCellsAndAreFound) {
  SpatialGrid grid(Rect(0, 0, 100, 100), 10, 10);
  grid.Insert(0, Rect(-500, -500, -400, -400));
  grid.Insert(1, Rect(400, 400, 500, 500));
  std::vector<uint32_t> out;
  grid.Query(Rect(-450, -450, -440, -440), &out);
  EXPECT_TRUE(std::count(out.begin(), out.end(), 0u));
  out.clear();
  grid.Query(Rect(440, 440, 450, 450), &out);
  EXPECT_TRUE(std::count(out.begin(), out.end(), 1u));
}

TEST(SpatialGridTest, DegenerateBoundsCollapseToOneCell) {
  SpatialGrid grid(Rect::Empty(), 16, 16);
  EXPECT_EQ(grid.cells_x(), 1);
  EXPECT_EQ(grid.cells_y(), 1);
  grid.Insert(0, Rect(0, 0, 1, 1));
  grid.Insert(1, Rect(1000, 1000, 1001, 1001));
  std::vector<uint32_t> out;
  grid.Query(Rect(500, 500, 501, 501), &out);
  // One cell holds everything: unselective but never wrong.
  EXPECT_EQ(out, std::vector<uint32_t>({0, 1}));
}

TEST(SpatialGridTest, InfiniteAndEmptyWindowsAreSafe) {
  const std::vector<Rect> rects = RandomRects(50, 9, 0.0);
  SpatialGrid grid = SpatialGrid::ForRects(rects);
  for (size_t i = 0; i < rects.size(); ++i) {
    grid.Insert(static_cast<uint32_t>(i), rects[i]);
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<uint32_t> out;
  // The unbounded window a non-distance-aware bounder produces.
  grid.Query(Rect(-kInf, -kInf, kInf, kInf), &out);
  EXPECT_EQ(out.size(), rects.size());
  // An empty window returns only boundless ids — here, none.
  out.clear();
  grid.Query(Rect::Empty(), &out);
  EXPECT_TRUE(out.empty());
  grid.Insert(99, Rect::Empty());
  grid.Query(Rect::Empty(), &out);
  EXPECT_EQ(out, std::vector<uint32_t>({99}));
}

TEST(SpatialGridTest, ForRectsHandlesDegeneratePopulations) {
  // All empty.
  {
    SpatialGrid grid = SpatialGrid::ForRects(
        {Rect::Empty(), Rect::Empty(), Rect::Empty()});
    grid.Insert(0, Rect::Empty());
    std::vector<uint32_t> out;
    grid.Query(Rect(0, 0, 1, 1), &out);
    EXPECT_EQ(out, std::vector<uint32_t>({0}));
  }
  // No rects at all.
  {
    SpatialGrid grid = SpatialGrid::ForRects({});
    std::vector<uint32_t> out;
    grid.Query(Rect(0, 0, 1, 1), &out);
    EXPECT_TRUE(out.empty());
  }
  // One point-like rect.
  {
    SpatialGrid grid = SpatialGrid::ForRects({Rect(5, 5, 5, 5)});
    grid.Insert(0, Rect(5, 5, 5, 5));
    std::vector<uint32_t> out;
    grid.Query(Rect(4, 4, 6, 6), &out);
    EXPECT_EQ(out, std::vector<uint32_t>({0}));
  }
}

}  // namespace
}  // namespace qsp
