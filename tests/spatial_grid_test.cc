// SpatialGrid (geom/spatial_grid.h): the candidate index behind the
// planner's pruning. Candidate generation must be conservative — Query
// returns a superset of the true window overlaps, ForEachNearbyPair is
// the exact spatial join over placed rects plus every boundless pair
// (an id the index cannot localize is a candidate against everything,
// mirroring Query) — and deterministic (sorted, deduplicated, each
// pair once).

#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <utility>
#include <vector>

#include "geom/spatial_grid.h"
#include "util/rng.h"

namespace qsp {
namespace {

std::vector<Rect> RandomRects(size_t n, uint64_t seed, double empty_prob) {
  Rng rng(seed);
  std::vector<Rect> rects;
  rects.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (rng.UniformDouble(0, 1) < empty_prob) {
      rects.push_back(Rect::Empty());
      continue;
    }
    const double x = rng.UniformDouble(0, 900);
    const double y = rng.UniformDouble(0, 900);
    rects.push_back(Rect(x, y, x + rng.UniformDouble(0.1, 120),
                         y + rng.UniformDouble(0.1, 120)));
  }
  return rects;
}

TEST(SpatialGridTest, QueryReturnsSupersetOfTrueOverlaps) {
  const std::vector<Rect> rects = RandomRects(300, 7, 0.05);
  SpatialGrid grid = SpatialGrid::ForRects(rects);
  for (size_t i = 0; i < rects.size(); ++i) {
    grid.Insert(static_cast<uint32_t>(i), rects[i]);
  }
  EXPECT_EQ(grid.size(), rects.size());

  Rng rng(8);
  std::vector<uint32_t> out;
  for (int trial = 0; trial < 50; ++trial) {
    const double x = rng.UniformDouble(-50, 950);
    const double y = rng.UniformDouble(-50, 950);
    const Rect window(x, y, x + rng.UniformDouble(1, 300),
                      y + rng.UniformDouble(1, 300));
    out.clear();
    grid.Query(window, &out);
    // Sorted and deduplicated.
    EXPECT_TRUE(std::is_sorted(out.begin(), out.end()));
    EXPECT_EQ(std::adjacent_find(out.begin(), out.end()), out.end());
    // Superset of the brute-force overlaps; empty rects always present.
    const std::set<uint32_t> returned(out.begin(), out.end());
    for (size_t i = 0; i < rects.size(); ++i) {
      if (rects[i].IsEmpty() || rects[i].Intersects(window)) {
        EXPECT_TRUE(returned.count(static_cast<uint32_t>(i)))
            << "id " << i << " missing for window " << window.ToString();
      }
    }
  }
}

TEST(SpatialGridTest, ForEachNearbyPairIsTheExactJoin) {
  for (const uint64_t seed : {1u, 2u, 3u}) {
    const std::vector<Rect> rects = RandomRects(200, seed, 0.1);
    SpatialGrid grid = SpatialGrid::ForRects(rects);
    for (size_t i = 0; i < rects.size(); ++i) {
      grid.Insert(static_cast<uint32_t>(i), rects[i]);
    }
    std::set<std::pair<uint32_t, uint32_t>> joined;
    grid.ForEachNearbyPair([&](uint32_t a, uint32_t b) {
      EXPECT_LT(a, b);
      // Exactly once.
      EXPECT_TRUE(joined.insert({a, b}).second)
          << "duplicate pair (" << a << ", " << b << ")";
    });
    std::set<std::pair<uint32_t, uint32_t>> brute;
    for (uint32_t i = 0; i < rects.size(); ++i) {
      for (uint32_t j = i + 1; j < rects.size(); ++j) {
        // Geometric intersections, plus every pair with a boundless
        // member: the join must agree with Query about candidacy.
        if (rects[i].IsEmpty() || rects[j].IsEmpty() ||
            rects[i].Intersects(rects[j])) {
          brute.insert({i, j});
        }
      }
    }
    EXPECT_EQ(joined, brute) << "seed " << seed;
  }
}

// Regression (ISSUE 8): the join used to iterate cells only, so
// boundless ids — which Query returns for every window — silently never
// paired with anything. Pin the exact pair set for a tiny population
// with an empty rect.
TEST(SpatialGridTest, ForEachNearbyPairEmitsBoundlessPairs) {
  SpatialGrid grid(Rect(0, 0, 100, 100), 8, 8);
  grid.Insert(0, Rect(10, 10, 30, 30));
  grid.Insert(1, Rect(20, 20, 40, 40));
  grid.Insert(2, Rect::Empty());
  grid.Insert(3, Rect(70, 70, 90, 90));
  grid.Insert(4, Rect::Empty());

  std::set<std::pair<uint32_t, uint32_t>> joined;
  grid.ForEachNearbyPair([&](uint32_t a, uint32_t b) {
    EXPECT_LT(a, b);
    EXPECT_TRUE(joined.insert({a, b}).second)
        << "duplicate pair (" << a << ", " << b << ")";
  });
  // 0-1 intersect; 2 and 4 are boundless so they pair with everything
  // (each other included); 3 is placed but disjoint from 0 and 1.
  const std::set<std::pair<uint32_t, uint32_t>> want = {
      {0, 1}, {0, 2}, {1, 2}, {2, 3}, {2, 4}, {0, 4}, {1, 4}, {3, 4}};
  EXPECT_EQ(joined, want);

  // Whatever Query can return together, the join must have paired —
  // disjoint placed pairs are legitimately absent, but every pair
  // involving a boundless id must be present.
  std::vector<uint32_t> out;
  grid.Query(Rect(0, 0, 100, 100), &out);
  for (size_t i = 0; i < out.size(); ++i) {
    for (size_t j = i + 1; j < out.size(); ++j) {
      const uint32_t a = std::min(out[i], out[j]);
      const uint32_t b = std::max(out[i], out[j]);
      if (a == 2 || b == 2 || a == 4 || b == 4) {
        EXPECT_TRUE(joined.count({a, b}) > 0)
            << "boundless pair (" << a << ", " << b << ") missing";
      }
    }
  }
}

TEST(SpatialGridTest, RemoveDropsIdFromQueriesAndJoin) {
  SpatialGrid grid(Rect(0, 0, 100, 100), 8, 8);
  grid.Insert(0, Rect(10, 10, 30, 30));
  grid.Insert(1, Rect(20, 20, 40, 40));
  grid.Insert(2, Rect::Empty());
  EXPECT_EQ(grid.size(), 3u);

  grid.Remove(1, Rect(20, 20, 40, 40));
  grid.Remove(2, Rect::Empty());
  EXPECT_EQ(grid.size(), 1u);

  std::vector<uint32_t> out;
  grid.Query(Rect(0, 0, 100, 100), &out);
  EXPECT_EQ(out, std::vector<uint32_t>({0}));
  size_t pairs = 0;
  grid.ForEachNearbyPair([&](uint32_t, uint32_t) { ++pairs; });
  EXPECT_EQ(pairs, 0u);

  // Reinsert under a different rect; the id is live again.
  grid.Insert(1, Rect(25, 25, 35, 35));
  out.clear();
  grid.Query(Rect(24, 24, 26, 26), &out);
  EXPECT_EQ(out, std::vector<uint32_t>({0, 1}));
}

TEST(SpatialGridTest, OutOfBoundsRectsClampToEdgeCellsAndAreFound) {
  SpatialGrid grid(Rect(0, 0, 100, 100), 10, 10);
  grid.Insert(0, Rect(-500, -500, -400, -400));
  grid.Insert(1, Rect(400, 400, 500, 500));
  std::vector<uint32_t> out;
  grid.Query(Rect(-450, -450, -440, -440), &out);
  EXPECT_TRUE(std::count(out.begin(), out.end(), 0u));
  out.clear();
  grid.Query(Rect(440, 440, 450, 450), &out);
  EXPECT_TRUE(std::count(out.begin(), out.end(), 1u));
}

TEST(SpatialGridTest, DegenerateBoundsCollapseToOneCell) {
  SpatialGrid grid(Rect::Empty(), 16, 16);
  EXPECT_EQ(grid.cells_x(), 1);
  EXPECT_EQ(grid.cells_y(), 1);
  grid.Insert(0, Rect(0, 0, 1, 1));
  grid.Insert(1, Rect(1000, 1000, 1001, 1001));
  std::vector<uint32_t> out;
  grid.Query(Rect(500, 500, 501, 501), &out);
  // One cell holds everything: unselective but never wrong.
  EXPECT_EQ(out, std::vector<uint32_t>({0, 1}));
}

TEST(SpatialGridTest, InfiniteAndEmptyWindowsAreSafe) {
  const std::vector<Rect> rects = RandomRects(50, 9, 0.0);
  SpatialGrid grid = SpatialGrid::ForRects(rects);
  for (size_t i = 0; i < rects.size(); ++i) {
    grid.Insert(static_cast<uint32_t>(i), rects[i]);
  }
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<uint32_t> out;
  // The unbounded window a non-distance-aware bounder produces.
  grid.Query(Rect(-kInf, -kInf, kInf, kInf), &out);
  EXPECT_EQ(out.size(), rects.size());
  // An empty window returns only boundless ids — here, none.
  out.clear();
  grid.Query(Rect::Empty(), &out);
  EXPECT_TRUE(out.empty());
  grid.Insert(99, Rect::Empty());
  grid.Query(Rect::Empty(), &out);
  EXPECT_EQ(out, std::vector<uint32_t>({99}));
}

TEST(SpatialGridTest, ForRectsHandlesDegeneratePopulations) {
  // All empty.
  {
    SpatialGrid grid = SpatialGrid::ForRects(
        {Rect::Empty(), Rect::Empty(), Rect::Empty()});
    grid.Insert(0, Rect::Empty());
    std::vector<uint32_t> out;
    grid.Query(Rect(0, 0, 1, 1), &out);
    EXPECT_EQ(out, std::vector<uint32_t>({0}));
  }
  // No rects at all.
  {
    SpatialGrid grid = SpatialGrid::ForRects({});
    std::vector<uint32_t> out;
    grid.Query(Rect(0, 0, 1, 1), &out);
    EXPECT_TRUE(out.empty());
  }
  // One point-like rect.
  {
    SpatialGrid grid = SpatialGrid::ForRects({Rect(5, 5, 5, 5)});
    grid.Insert(0, Rect(5, 5, 5, 5));
    std::vector<uint32_t> out;
    grid.Query(Rect(4, 4, 6, 6), &out);
    EXPECT_EQ(out, std::vector<uint32_t>({0}));
  }
}

// Regression (ISSUE 8): the cell-cap loop halves cx/cy with (c + 1) / 2,
// which is a fixed point at 1, and the ideal counts used to be cast to
// int before any finiteness check — sizing must provably terminate (and
// stay within the ~4n memory cap) for pathological aspect ratios and
// overflowing coordinate spans.
TEST(SpatialGridTest, ForRectsTerminatesOnDegenerateAspectRatios) {
  // Two point rects at a huge separation: per-axis extents are 0, so the
  // sliver floor (bounds/1024) drives the ideal counts to their 1024
  // maximum on both axes while the cap is only 16 — the halving loop
  // must converge from far above the cap.
  {
    std::vector<Rect> rects = {Rect(0, 0, 0, 0),
                               Rect(1e300, 1e300, 1e300, 1e300)};
    SpatialGrid grid = SpatialGrid::ForRects(rects);
    EXPECT_GE(grid.cells_x(), 1);
    EXPECT_GE(grid.cells_y(), 1);
    EXPECT_LE(static_cast<double>(grid.cells_x()) * grid.cells_y(), 16.0);
    for (size_t i = 0; i < rects.size(); ++i) {
      grid.Insert(static_cast<uint32_t>(i), rects[i]);
    }
    std::vector<uint32_t> out;
    grid.Query(Rect(-1, -1, 1, 1), &out);
    EXPECT_TRUE(std::count(out.begin(), out.end(), 0u));
  }
  // Coordinate span that overflows double subtraction: the bounding
  // union's Width() is +inf, so the ideal count is ceil(inf / inf) = NaN
  // — which the old code cast straight to int (undefined behavior). The
  // sized grid degenerates to one safe, unselective cell.
  {
    std::vector<Rect> rects = {Rect(-1e308, -1e308, 1e308, 1e308),
                               Rect(0, 0, 1, 1)};
    SpatialGrid grid = SpatialGrid::ForRects(rects);
    EXPECT_EQ(grid.cells_x(), 1);
    EXPECT_EQ(grid.cells_y(), 1);
    for (size_t i = 0; i < rects.size(); ++i) {
      grid.Insert(static_cast<uint32_t>(i), rects[i]);
    }
    std::vector<uint32_t> out;
    grid.Query(Rect(0, 0, 2, 2), &out);
    EXPECT_EQ(out, std::vector<uint32_t>({0, 1}));
  }
  // Hairline strip: denormal heights must not break sizing or lookups.
  {
    std::vector<Rect> rects;
    for (int i = 0; i < 64; ++i) {
      const double x = static_cast<double>(i) * 1e6;
      rects.push_back(Rect(x, 0.0, x + 1e6, 1e-307));
    }
    SpatialGrid grid = SpatialGrid::ForRects(rects);
    EXPECT_GE(grid.cells_x(), 1);
    EXPECT_GE(grid.cells_y(), 1);
    EXPECT_LE(static_cast<double>(grid.cells_x()) * grid.cells_y(),
              std::max(4.0 * static_cast<double>(rects.size()), 16.0));
    for (size_t i = 0; i < rects.size(); ++i) {
      grid.Insert(static_cast<uint32_t>(i), rects[i]);
    }
    std::vector<uint32_t> out;
    grid.Query(Rect(0, -1, 2e6, 1), &out);
    EXPECT_TRUE(std::count(out.begin(), out.end(), 0u));
    EXPECT_TRUE(std::count(out.begin(), out.end(), 1u));
  }
}

}  // namespace
}  // namespace qsp
