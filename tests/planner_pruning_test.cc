// Planner pruning golden tests (DESIGN.md §8): the spatial candidate
// index and the admissible benefit bounds are pure accelerations — with
// pruning on, every heuristic merger must return the exact partition and
// cost the exhaustive evaluation returns, for every merge procedure,
// estimator, and seed. The bounds themselves are checked as properties:
// UpperBound never falls below the exact MergeBenefit, and no group
// outside a SearchWindow can carry a positive bound.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cost/cost_model.h"
#include "geom/region.h"
#include "merge/clustering_merger.h"
#include "merge/directed_search_merger.h"
#include "merge/pair_merger.h"
#include "merge/plan_bounds.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "relation/generator.h"
#include "stats/histogram_estimator.h"
#include "stats/size_estimator.h"
#include "util/rng.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

constexpr uint64_t kSeeds[] = {11, 22, 33};

// A merging instance with selectable procedure and estimator (the bench
// Instance hardcodes uniform + bounding-rect; the pruning identity must
// hold for every combination).
struct Instance {
  QuerySet queries;
  std::optional<Table> table;
  std::unique_ptr<SizeEstimator> estimator;
  std::unique_ptr<MergeProcedure> procedure;
  std::unique_ptr<MergeContext> ctx;

  Instance(size_t n, uint64_t seed, const std::string& procedure_name,
           const std::string& estimator_name) {
    const QueryGenConfig config = bench::Fig16WorkloadConfig(n);
    Rng rng(seed);
    queries = QuerySet(GenerateQueries(config, &rng));
    if (procedure_name == "bounding-rect") {
      procedure = std::make_unique<BoundingRectProcedure>();
    } else if (procedure_name == "bounding-polygon") {
      procedure = std::make_unique<BoundingPolygonProcedure>();
    } else {
      procedure = std::make_unique<ExactCoverProcedure>();
    }
    if (estimator_name == "uniform") {
      estimator =
          std::make_unique<UniformDensityEstimator>(bench::kFig16Density);
    } else {
      TableGeneratorConfig tconfig;
      tconfig.domain = config.domain;
      tconfig.num_objects = 2000;
      tconfig.clustered_fraction = 0.6;
      Rng trng(seed + 1);
      table = GenerateTable(tconfig, &trng);
      estimator = std::make_unique<HistogramEstimator>(*table, config.domain,
                                                       16, 16);
    }
    ctx = std::make_unique<MergeContext>(&queries, estimator.get(),
                                         procedure.get());
  }
};

struct MergerCase {
  std::string name;
  std::unique_ptr<Merger> (*make)(uint64_t seed, bool pruning);
};

const MergerCase kMergers[] = {
    {"pair-heap",
     [](uint64_t, bool pruning) -> std::unique_ptr<Merger> {
       return std::make_unique<PairMerger>(/*use_heap=*/true, pruning);
     }},
    {"clustering",
     [](uint64_t, bool pruning) -> std::unique_ptr<Merger> {
       return std::make_unique<ClusteringMerger>(
           /*exact_component_limit=*/10, /*tight_bound=*/true, pruning);
     }},
    {"clustering-loose",
     [](uint64_t, bool pruning) -> std::unique_ptr<Merger> {
       return std::make_unique<ClusteringMerger>(
           /*exact_component_limit=*/10, /*tight_bound=*/false, pruning);
     }},
    {"directed-search",
     [](uint64_t seed, bool pruning) -> std::unique_ptr<Merger> {
       return std::make_unique<DirectedSearchMerger>(4, seed, pruning);
     }},
};

// The tentpole identity: pruning may only change planning effort, never
// the plan. Partition and cost must match bit-for-bit across every
// merger x procedure x estimator x seed cell.
TEST(PlannerPruningTest, PrunedPlanMatchesExhaustivePlan) {
  const CostModel model = bench::Fig16CostModel();
  for (const MergerCase& mc : kMergers) {
    for (const std::string& procedure :
         {std::string("bounding-rect"), std::string("bounding-polygon"),
          std::string("exact-cover")}) {
      for (const std::string& estimator :
           {std::string("uniform"), std::string("histogram")}) {
        for (const uint64_t seed : kSeeds) {
          const std::string label = mc.name + "/" + procedure + "/" +
                                    estimator + "/seed" +
                                    std::to_string(seed);
          Instance exhaustive_inst(30, seed, procedure, estimator);
          auto exhaustive = mc.make(seed, /*pruning=*/false)
                                ->Merge(*exhaustive_inst.ctx, model);
          ASSERT_TRUE(exhaustive.ok()) << label;

          Instance pruned_inst(30, seed, procedure, estimator);
          auto pruned =
              mc.make(seed, /*pruning=*/true)->Merge(*pruned_inst.ctx, model);
          ASSERT_TRUE(pruned.ok()) << label;

          EXPECT_EQ(pruned->partition, exhaustive->partition) << label;
          EXPECT_EQ(pruned->cost, exhaustive->cost) << label;
        }
      }
    }
  }
}

// A cost model with a negative coefficient invalidates the bounds;
// SupportsBenefitBounds must route such models to the exhaustive path so
// the plan is still exact (and identical whether pruning is requested).
TEST(PlannerPruningTest, NegativeCoefficientModelFallsBackToExhaustive) {
  CostModel model = bench::Fig16CostModel();
  model.k_u = -1.0;
  ASSERT_FALSE(model.SupportsBenefitBounds());
  for (const uint64_t seed : kSeeds) {
    Instance a(20, seed, "bounding-rect", "uniform");
    Instance b(20, seed, "bounding-rect", "uniform");
    auto off = PairMerger(/*use_heap=*/true, /*pruning=*/false)
                   .Merge(*a.ctx, model);
    auto on =
        PairMerger(/*use_heap=*/true, /*pruning=*/true).Merge(*b.ctx, model);
    ASSERT_TRUE(off.ok());
    ASSERT_TRUE(on.ok());
    EXPECT_EQ(on->partition, off->partition) << "seed " << seed;
    EXPECT_EQ(on->cost, off->cost) << "seed " << seed;
    // The fallback path is the exhaustive one, so even the effort metric
    // matches.
    EXPECT_EQ(on->candidates, off->candidates) << "seed " << seed;
  }
}

// Random disjoint groups drawn from a random partition of 0..n-1.
std::vector<QueryGroup> RandomGroups(size_t n, size_t blocks, Rng* rng) {
  std::vector<QueryGroup> groups(blocks);
  for (size_t i = 0; i < n; ++i) {
    groups[static_cast<size_t>(
               rng->UniformInt(0, static_cast<int64_t>(blocks) - 1))]
        .push_back(static_cast<QueryId>(i));
  }
  groups.erase(std::remove_if(groups.begin(), groups.end(),
                              [](const QueryGroup& g) { return g.empty(); }),
               groups.end());
  return groups;
}

// Admissibility: UpperBound(a, b) >= MergeBenefit(a, b) for random
// disjoint groups, under every procedure/estimator combination whose
// traits the bounder exploits differently.
TEST(PlannerPruningTest, UpperBoundNeverBelowExactBenefit) {
  const CostModel model = bench::Fig16CostModel();
  for (const std::string& procedure :
       {std::string("bounding-rect"), std::string("bounding-polygon"),
        std::string("exact-cover")}) {
    for (const std::string& estimator :
         {std::string("uniform"), std::string("histogram")}) {
      for (const uint64_t seed : kSeeds) {
        Instance inst(40, seed, procedure, estimator);
        const plan::BenefitBounder bounder(*inst.ctx, model);
        ASSERT_TRUE(bounder.enabled());
        Rng rng(seed * 7 + 1);
        const std::vector<QueryGroup> groups = RandomGroups(40, 12, &rng);
        std::vector<plan::GroupSummary> sums;
        sums.reserve(groups.size());
        for (const QueryGroup& g : groups) sums.push_back(bounder.Summarize(g));
        for (size_t i = 0; i < groups.size(); ++i) {
          for (size_t j = i + 1; j < groups.size(); ++j) {
            const double exact =
                model.MergeBenefit(*inst.ctx, groups[i], groups[j]);
            const double bound = bounder.UpperBound(sums[i], sums[j]);
            EXPECT_GE(bound, exact)
                << procedure << "/" << estimator << " seed " << seed
                << " pair " << GroupToString(groups[i]) << " + "
                << GroupToString(groups[j]);
          }
        }
      }
    }
  }
}

// Window soundness: a partner whose bounding box misses SearchWindow(g)
// must have a non-positive benefit bound against g (otherwise the grid
// query would wrongly prune a viable merge).
TEST(PlannerPruningTest, GroupsOutsideSearchWindowHaveNonPositiveBounds) {
  const CostModel model = bench::Fig16CostModel();
  for (const uint64_t seed : kSeeds) {
    // Uniform estimator + bounding rect: the distance-aware
    // configuration. High density makes covering empty space expensive,
    // so the windows are actually selective (the Fig16 density is so low
    // that every window covers the whole domain and the assertions would
    // pass vacuously).
    Rng qrng(seed);
    std::vector<Rect> rects;
    for (int i = 0; i < 40; ++i) {
      const double x = qrng.UniformDouble(0, 950);
      const double y = qrng.UniformDouble(0, 950);
      rects.push_back(Rect(x, y, x + qrng.UniformDouble(5, 15),
                           y + qrng.UniformDouble(5, 15)));
    }
    QuerySet queries(rects);
    UniformDensityEstimator estimator(5.0);
    BoundingRectProcedure procedure;
    MergeContext ctx(&queries, &estimator, &procedure);
    const plan::BenefitBounder bounder(ctx, model);
    ASSERT_TRUE(bounder.enabled());
    ASSERT_TRUE(bounder.distance_aware());
    std::vector<plan::GroupSummary> sums;
    double max_cost = 0.0;
    for (QueryId q = 0; q < 40; ++q) {
      sums.push_back(bounder.Summarize({q}));
      max_cost = std::max(max_cost, sums.back().cost);
    }
    size_t outside_pairs = 0;
    for (size_t i = 0; i < sums.size(); ++i) {
      const Rect window = bounder.SearchWindow(sums[i], max_cost);
      for (size_t j = 0; j < sums.size(); ++j) {
        if (j == i) continue;
        if (!sums[j].bbox.IsEmpty() && !window.Intersects(sums[j].bbox)) {
          ++outside_pairs;
          EXPECT_LE(bounder.UpperBound(sums[i], sums[j]), 0.0)
              << "seed " << seed << " pair (" << i << ", " << j << ")";
        }
      }
    }
    // The workload spreads clusters across the domain, so the window must
    // actually exclude something for this test to mean anything.
    EXPECT_GT(outside_pairs, 0u) << "seed " << seed;
  }
}

// ---------------------------------------------------------- context fixes

// Regression: a MergeContext watching a QuerySet that *shrank* (ids
// reassigned) must drop every stale cache instead of serving sizes and
// group stats of the old queries — or indexing out of range.
TEST(PlannerPruningTest, MergeContextSurvivesShrinkingQuerySet) {
  QuerySet queries;
  for (int i = 0; i < 8; ++i) {
    const double x = 10.0 * i;
    queries.Add(Rect(x, 0, x + 4, 4));
  }
  UniformDensityEstimator estimator(1.0);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);
  EXPECT_DOUBLE_EQ(ctx.Size(7), 16.0);
  EXPECT_GT(ctx.Stats({6, 7}).size, 0.0);

  // Replace with a smaller set: old id 7 is gone, id 0 is a new rect.
  queries = QuerySet({Rect(0, 0, 2, 2), Rect(5, 5, 7, 7)});
  EXPECT_DOUBLE_EQ(ctx.Size(0), 4.0);
  EXPECT_DOUBLE_EQ(ctx.Size(1), 4.0);
  // Group stats must be recomputed against the new rects, not replayed
  // from the old-id cache.
  const GroupStats& stats = ctx.Stats({0, 1});
  EXPECT_DOUBLE_EQ(stats.size, 49.0);  // bbox (0,0)-(7,7)

  // Growth after the shrink keeps the fresh entries valid.
  queries.Add(Rect(100, 100, 101, 101));
  EXPECT_DOUBLE_EQ(ctx.Size(2), 1.0);
  EXPECT_DOUBLE_EQ(ctx.Size(0), 4.0);
}

// The UnionSize fast path (x-separated rects skip the sweep) must be
// bit-identical to the sweep's decomposition for every arrangement.
TEST(PlannerPruningTest, UnionSizeMatchesSweepDecomposition) {
  const std::vector<std::pair<Rect, Rect>> cases = {
      {Rect(0, 0, 10, 10), Rect(20, 5, 30, 15)},   // x-separated
      {Rect(20, 5, 30, 15), Rect(0, 0, 10, 10)},   // reversed order
      {Rect(0, 0, 10, 10), Rect(10, 20, 30, 25)},  // touching in x
      {Rect(0, 0, 10, 10), Rect(5, 5, 15, 15)},    // overlapping
      {Rect(0, 0, 10, 10), Rect(2, 20, 8, 30)},    // y-separated only
      {Rect(0, 0, 10, 10), Rect(0, 0, 10, 10)},    // identical
  };
  UniformDensityEstimator estimator(0.5);
  BoundingRectProcedure procedure;
  for (const auto& [ra, rb] : cases) {
    QuerySet queries({ra, rb});
    MergeContext ctx(&queries, &estimator, &procedure);
    const RectilinearRegion region = RectilinearRegion::UnionOf({ra, rb});
    const double expected = estimator.EstimateRegionSize(region.pieces());
    EXPECT_EQ(ctx.UnionSize(0, 1), expected)
        << ra.ToString() << " U " << rb.ToString();
    EXPECT_EQ(ctx.UnionSize(1, 0), expected)
        << rb.ToString() << " U " << ra.ToString();
  }
}

// Property sweep of the same identity over random rects, including
// degenerate (zero-extent) ones that must take the sweep path.
TEST(PlannerPruningTest, UnionSizeMatchesSweepOnRandomRects) {
  UniformDensityEstimator estimator(1.0);
  BoundingRectProcedure procedure;
  Rng rng(404);
  for (int trial = 0; trial < 200; ++trial) {
    auto random_rect = [&rng]() {
      const double x = rng.UniformDouble(0, 90);
      const double y = rng.UniformDouble(0, 90);
      const double w = rng.UniformDouble(0, 10);
      const double h = rng.UniformDouble(0, 10);
      return Rect(x, y, x + w, y + h);
    };
    const Rect ra = random_rect();
    const Rect rb = random_rect();
    QuerySet queries({ra, rb});
    MergeContext ctx(&queries, &estimator, &procedure);
    const RectilinearRegion region = RectilinearRegion::UnionOf({ra, rb});
    EXPECT_EQ(ctx.UnionSize(0, 1),
              estimator.EstimateRegionSize(region.pieces()))
        << ra.ToString() << " U " << rb.ToString();
  }
}

}  // namespace
}  // namespace qsp
