#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <tuple>
#include <vector>

#include "channel/channel_cost.h"
#include "channel/client_set.h"
#include "channel/hill_climb_allocator.h"
#include "cost/cost_model.h"
#include "net/message.h"
#include "net/server.h"
#include "net/sim_client.h"
#include "net/simulator.h"
#include "net/wire.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "relation/generator.h"
#include "relation/grid_index.h"
#include "stats/size_estimator.h"
#include "util/rng.h"
#include "workload/client_gen.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

/// Small end-to-end world: table + index + queries + clients.
struct World {
  Rect domain{0, 0, 100, 100};
  Table table;
  std::unique_ptr<GridIndex> index;
  QuerySet queries;
  ClientSet clients;

  explicit World(uint64_t seed, size_t num_objects = 500,
                 size_t num_queries = 6, size_t num_clients = 3)
      : table(Schema::Geographic(0)) {
    Rng rng(seed);
    TableGeneratorConfig tconfig;
    tconfig.domain = domain;
    tconfig.num_objects = num_objects;
    tconfig.payload_fields = 0;
    table = GenerateTable(tconfig, &rng);
    index = std::make_unique<GridIndex>(table, domain);
    QueryGenConfig qconfig;
    qconfig.domain = domain;
    qconfig.num_queries = num_queries;
    qconfig.max_extent = 0.3;
    queries = QuerySet(GenerateQueries(qconfig, &rng));
    clients = AssignClients(queries, num_clients,
                            ClientAssignment::kLocality, &rng);
  }

  /// All clients on one channel, each query its own group.
  DisseminationPlan UnmergedPlan() const {
    DisseminationPlan plan;
    plan.allocation.push_back(clients.AllClients());
    plan.channel_partitions.push_back(SingletonPartition(queries.size()));
    return plan;
  }
};

// --------------------------------------------------------------- Message

TEST(MessageTest, ByteAccounting) {
  Table table(Schema::Geographic(0));
  ASSERT_TRUE(table.Insert({1.0, 1.0}).ok());
  ASSERT_TRUE(table.Insert({2.0, 2.0}).ok());
  Message msg;
  msg.recipients = {0, 1};
  msg.extractors = {{0, {0, Rect(0, 0, 5, 5)}}, {1, {1, Rect(0, 0, 5, 5)}}};
  msg.payload = {0, 1};
  EXPECT_EQ(msg.HeaderBytes(), 8 + 4 * 2 + 40 * 2);
  EXPECT_EQ(msg.PayloadBytes(table), 32u);
}

// ---------------------------------------------------------------- Server

TEST(ServerTest, UnmergedPlanProducesOneMessagePerQuery) {
  World world(1);
  Server server(&world.table, world.index.get(), &world.queries,
                &world.clients);
  BoundingRectProcedure proc;
  const auto messages = server.ExecuteRound(world.UnmergedPlan(), proc);
  EXPECT_EQ(messages.size(), world.queries.size());
  for (const Message& msg : messages) {
    EXPECT_EQ(msg.channel, 0u);
    EXPECT_FALSE(msg.recipients.empty());
  }
}

TEST(ServerTest, PayloadMatchesDirectAnswerForSingletons) {
  World world(2);
  Server server(&world.table, world.index.get(), &world.queries,
                &world.clients);
  BoundingRectProcedure proc;
  const auto messages = server.ExecuteRound(world.UnmergedPlan(), proc);
  ASSERT_EQ(messages.size(), world.queries.size());
  for (size_t i = 0; i < messages.size(); ++i) {
    // Plan order is query order for singleton partitions.
    const QueryId q = world.UnmergedPlan().channel_partitions[0][i][0];
    EXPECT_EQ(messages[i].payload, server.DirectAnswer(q));
  }
}

TEST(ServerTest, MergedGroupProducesSupersetPayload) {
  World world(3);
  Server server(&world.table, world.index.get(), &world.queries,
                &world.clients);
  BoundingRectProcedure proc;
  DisseminationPlan plan;
  plan.allocation.push_back(world.clients.AllClients());
  plan.channel_partitions.push_back(
      {QueryGroup{0, 1}, QueryGroup{2, 3, 4}, QueryGroup{5}});
  const auto messages = server.ExecuteRound(plan, proc);
  ASSERT_EQ(messages.size(), 3u);
  // Every direct answer row of a member query appears in its message.
  for (QueryId q : {0u, 1u}) {
    for (RowId row : server.DirectAnswer(q)) {
      EXPECT_TRUE(std::binary_search(messages[0].payload.begin(),
                                     messages[0].payload.end(), row));
    }
  }
}

TEST(ServerTest, RecipientsOnlyListSubscribedChannelClients) {
  World world(4);
  Server server(&world.table, world.index.get(), &world.queries,
                &world.clients);
  BoundingRectProcedure proc;
  const auto messages = server.ExecuteRound(world.UnmergedPlan(), proc);
  for (const Message& msg : messages) {
    for (const HeaderEntry& entry : msg.extractors) {
      const auto& subs = world.clients.QueriesOf(entry.client);
      EXPECT_TRUE(std::binary_search(subs.begin(), subs.end(),
                                     entry.spec.query));
    }
  }
}

// ------------------------------------------------------------- SimClient

TEST(SimClientTest, IgnoresMessagesNotAddressedToIt) {
  Table table(Schema::Geographic(0));
  ASSERT_TRUE(table.Insert({1.0, 1.0}).ok());
  QuerySet queries({Rect(0, 0, 5, 5)});
  SimClient client(7, 0, &queries, {0});
  client.StartRound();
  Message msg;
  msg.channel = 0;
  msg.recipients = {3};  // Someone else.
  msg.payload = {0};
  client.Receive(msg, table);
  EXPECT_EQ(client.stats().headers_checked, 1u);
  EXPECT_EQ(client.stats().messages_processed, 0u);
  EXPECT_TRUE(client.AnswerFor(0).empty());
}

TEST(SimClientTest, ExtractsOwnAnswer) {
  Table table(Schema::Geographic(0));
  ASSERT_TRUE(table.Insert({1.0, 1.0}).ok());
  ASSERT_TRUE(table.Insert({9.0, 9.0}).ok());
  QuerySet queries({Rect(0, 0, 5, 5)});
  SimClient client(0, 0, &queries, {0});
  client.StartRound();
  Message msg;
  msg.channel = 0;
  msg.recipients = {0};
  msg.extractors = {{0, {0, queries.rect(0)}}};
  msg.payload = {0, 1};
  client.Receive(msg, table);
  EXPECT_EQ(client.AnswerFor(0), (std::vector<RowId>{0}));
  EXPECT_EQ(client.stats().rows_examined, 2u);
  EXPECT_EQ(client.stats().rows_irrelevant, 1u);
}

TEST(SimClientTest, CacheCountsRepeatedRows) {
  Table table(Schema::Geographic(0));
  ASSERT_TRUE(table.Insert({1.0, 1.0}).ok());
  QuerySet queries({Rect(0, 0, 5, 5)});
  SimClient client(0, 0, &queries, {0}, /*enable_cache=*/true);
  client.StartRound();
  Message msg;
  msg.channel = 0;
  msg.recipients = {0};
  msg.extractors = {{0, {0, queries.rect(0)}}};
  msg.payload = {0};
  client.Receive(msg, table);
  EXPECT_EQ(client.stats().cache_hits, 0u);
  client.StartRound();  // New round; cache persists.
  client.Receive(msg, table);
  EXPECT_EQ(client.stats().cache_hits, 1u);
}

// ------------------------------------------------------------- Simulator

TEST(SimulatorTest, UnmergedRoundDeliversExactAnswers) {
  World world(5);
  MulticastSimulator sim(&world.table, world.index.get(), &world.queries,
                         &world.clients);
  BoundingRectProcedure proc;
  const RoundStats stats = sim.RunRound(world.UnmergedPlan(), proc);
  EXPECT_TRUE(stats.all_answers_correct);
  EXPECT_EQ(stats.num_messages, world.queries.size());
  EXPECT_EQ(stats.channels_used, 1u);
  EXPECT_EQ(stats.irrelevant_rows, 0u);  // No merging => nothing foreign.
}

TEST(SimulatorTest, WireRoundTripOkDefaultsTrueAndHoldsWithoutVerify) {
  // The documented contract: wire_round_trip_ok is trivially true unless
  // verify_wire detected a failure — including on a default-constructed
  // stats object that never ran a round.
  EXPECT_TRUE(RoundStats{}.wire_round_trip_ok);
  World world(5);
  MulticastSimulator sim(&world.table, world.index.get(), &world.queries,
                         &world.clients);
  BoundingRectProcedure proc;
  const RoundStats stats = sim.RunRound(world.UnmergedPlan(), proc);
  EXPECT_TRUE(stats.wire_round_trip_ok);
  EXPECT_EQ(stats.wire_bytes, 0u);  // Nothing serialized with verify off.
}

TEST(SimulatorTest, MergedRoundStillCorrectButCarriesIrrelevantRows) {
  World world(6);
  MulticastSimulator sim(&world.table, world.index.get(), &world.queries,
                         &world.clients);
  BoundingRectProcedure proc;
  DisseminationPlan plan;
  plan.allocation.push_back(world.clients.AllClients());
  plan.channel_partitions.push_back(
      {QueryGroup{0, 1, 2}, QueryGroup{3, 4, 5}});
  const RoundStats stats = sim.RunRound(plan, proc);
  EXPECT_TRUE(stats.all_answers_correct);
  EXPECT_EQ(stats.num_messages, 2u);
  EXPECT_GT(stats.rows_examined, 0u);
}

TEST(SimulatorTest, FewerMessagesAfterMergingThanUnmerged) {
  World world(7);
  MulticastSimulator sim(&world.table, world.index.get(), &world.queries,
                         &world.clients);
  BoundingRectProcedure proc;
  const RoundStats unmerged = sim.RunRound(world.UnmergedPlan(), proc);
  DisseminationPlan merged;
  merged.allocation.push_back(world.clients.AllClients());
  merged.channel_partitions.push_back(OneGroupPartition(6));
  const RoundStats stats = sim.RunRound(merged, proc);
  EXPECT_LT(stats.num_messages, unmerged.num_messages);
  EXPECT_TRUE(stats.all_answers_correct);
}

TEST(ServerTest, ServerTagsMarkMembershipBits) {
  World world(9);
  Server server(&world.table, world.index.get(), &world.queries,
                &world.clients);
  BoundingRectProcedure proc;
  DisseminationPlan plan;
  plan.allocation.push_back(world.clients.AllClients());
  plan.channel_partitions.push_back({QueryGroup{0, 1, 2}, QueryGroup{3, 4, 5}});
  const auto messages =
      server.ExecuteRound(plan, proc, ExtractionMode::kServerTags);
  for (const Message& msg : messages) {
    ASSERT_TRUE(msg.HasTags());
    ASSERT_EQ(msg.payload_tags.size(), msg.payload.size());
    for (size_t i = 0; i < msg.payload.size(); ++i) {
      for (size_t k = 0; k < msg.members.size(); ++k) {
        const bool tagged = (msg.payload_tags[i] & (1u << k)) != 0;
        const bool inside = world.queries.rect(msg.members[k])
                                .Contains(world.table.PositionOf(
                                    msg.payload[i]));
        EXPECT_EQ(tagged, inside);
      }
    }
  }
}

TEST(SimulatorTest, TagExtractionMatchesSelfExtraction) {
  World world(10, 800, 8, 3);
  MulticastSimulator sim(&world.table, world.index.get(), &world.queries,
                         &world.clients);
  BoundingRectProcedure proc;
  DisseminationPlan plan;
  plan.allocation.push_back(world.clients.AllClients());
  plan.channel_partitions.push_back(
      {QueryGroup{0, 1, 2, 3}, QueryGroup{4, 5, 6, 7}});
  const RoundStats self_stats =
      sim.RunRound(plan, proc, ExtractionMode::kSelfExtract);
  const RoundStats tag_stats =
      sim.RunRound(plan, proc, ExtractionMode::kServerTags);
  EXPECT_TRUE(self_stats.all_answers_correct);
  EXPECT_TRUE(tag_stats.all_answers_correct);
  EXPECT_EQ(self_stats.payload_rows, tag_stats.payload_rows);
  // Tags cost 4 bytes per payload row on the wire.
  EXPECT_EQ(tag_stats.payload_bytes,
            self_stats.payload_bytes + 4 * tag_stats.payload_rows);
}

TEST(WireMessageTaggedTest, TaggedFrameRoundTrips) {
  World world(11);
  Server server(&world.table, world.index.get(), &world.queries,
                &world.clients);
  BoundingRectProcedure proc;
  DisseminationPlan plan;
  plan.allocation.push_back(world.clients.AllClients());
  plan.channel_partitions.push_back({QueryGroup{0, 1, 2}});
  const auto messages =
      server.ExecuteRound(plan, proc, ExtractionMode::kServerTags);
  ASSERT_FALSE(messages.empty());
  for (const Message& msg : messages) {
    auto frame = EncodeMessage(msg, world.table);
    ASSERT_TRUE(frame.ok());
    auto decoded = DecodeMessage(frame.value(), world.table.schema());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded->members, msg.members);
    EXPECT_EQ(decoded->tags, msg.payload_tags);
  }
}

TEST(SimulatorTest, WireVerificationRoundTripsEveryMessage) {
  World world(8);
  MulticastSimulator sim(&world.table, world.index.get(), &world.queries,
                         &world.clients, /*enable_client_cache=*/false,
                         /*verify_wire=*/true);
  BoundingRectProcedure proc;
  const RoundStats stats = sim.RunRound(world.UnmergedPlan(), proc);
  EXPECT_TRUE(stats.all_answers_correct);
  EXPECT_TRUE(stats.wire_round_trip_ok);
  EXPECT_GT(stats.wire_bytes, stats.payload_bytes / 2);
}

TEST(SimulatorTest, WireBytesZeroWhenVerificationOff) {
  World world(8);
  MulticastSimulator sim(&world.table, world.index.get(), &world.queries,
                         &world.clients);
  BoundingRectProcedure proc;
  const RoundStats stats = sim.RunRound(world.UnmergedPlan(), proc);
  EXPECT_TRUE(stats.wire_round_trip_ok);
  EXPECT_EQ(stats.wire_bytes, 0u);
}

/// Property: every (procedure, plan shape, seed) combination delivers
/// exactly correct answers to every client — the library's core
/// correctness contract end to end.
class EndToEndCorrectness
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(EndToEndCorrectness, AllClientsRecoverExactAnswers) {
  const int proc_kind = std::get<0>(GetParam());
  World world(std::get<1>(GetParam()), 800, 10, 4);

  BoundingRectProcedure rect_proc;
  BoundingPolygonProcedure poly_proc;
  ExactCoverProcedure cover_proc;
  const MergeProcedure* proc =
      proc_kind == 0 ? static_cast<const MergeProcedure*>(&rect_proc)
      : proc_kind == 1 ? static_cast<const MergeProcedure*>(&poly_proc)
                       : static_cast<const MergeProcedure*>(&cover_proc);

  // Two channels, split clients, pair-merged per channel.
  UniformDensityEstimator estimator(0.05);
  MergeContext ctx(&world.queries, &estimator, proc);
  const CostModel model{2.0, 1.0, 1.0, 0.0};
  ChannelCostEvaluator evaluator(&ctx, model, &world.clients);
  HillClimbAllocator allocator(StartPolicy::kBestOfBoth, 5);
  auto allocation = allocator.Allocate(evaluator, 2);
  ASSERT_TRUE(allocation.ok());

  DisseminationPlan plan;
  plan.allocation = allocation->allocation;
  for (const auto& channel_clients : plan.allocation) {
    plan.channel_partitions.push_back(
        evaluator.Plan(channel_clients).partition);
  }

  MulticastSimulator sim(&world.table, world.index.get(), &world.queries,
                         &world.clients);
  const RoundStats stats = sim.RunRound(plan, *proc);
  EXPECT_TRUE(stats.all_answers_correct) << proc->name();
  if (proc_kind == 2) {
    // Exact cover never ships a row no recipient needs... per message;
    // a row may still be irrelevant to one of several recipients of a
    // piece only if that piece is outside the recipient's query, which
    // exact cover forbids.
    EXPECT_EQ(stats.irrelevant_rows, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProceduresAndSeeds, EndToEndCorrectness,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(11, 22, 33)));

}  // namespace
}  // namespace qsp
