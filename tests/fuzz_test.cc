// Fuzz-lite robustness tests: random and mutated inputs must produce
// clean errors, never crashes, hangs, or UB. These run fast enough for
// every CI invocation; real deployments would hook the same entry points
// up to a coverage-guided fuzzer.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "geom/region.h"
#include "net/wire.h"
#include "query/predicate.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "util/rng.h"
#include "util/status.h"

namespace qsp {
namespace {

// ------------------------------------------------------ Predicate parser

/// Random strings over the parser's alphabet: either parse or fail, and
/// successful parses must render and re-parse.
class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParserFuzz, RandomTokenSoup) {
  Rng rng(GetParam());
  static const char* kTokens[] = {
      "a",  "bb",  "longitude", "AND", "OR",   "NOT", "BETWEEN", "(",
      ")",  "<=",  ">=",        "<",   ">",    "=",   "!=",      "1",
      "-2", "3.5", "'s'",       "'",   "TRUE", " ",   "5e3",     "_x",
  };
  for (int trial = 0; trial < 400; ++trial) {
    std::string input;
    const int len = static_cast<int>(rng.UniformInt(0, 12));
    for (int i = 0; i < len; ++i) {
      input += kTokens[rng.UniformInt(
          0, static_cast<int64_t>(std::size(kTokens)) - 1)];
      input += ' ';
    }
    auto parsed = ParsePredicate(input);
    if (parsed.ok()) {
      const std::string rendered = parsed.value()->ToString();
      auto reparsed = ParsePredicate(rendered);
      ASSERT_TRUE(reparsed.ok()) << "render not reparseable: " << rendered;
      EXPECT_EQ(reparsed.value()->ToString(), rendered);
    }
  }
}

TEST_P(ParserFuzz, RandomBytes) {
  Rng rng(GetParam() ^ 0xF00D);
  for (int trial = 0; trial < 300; ++trial) {
    std::string input;
    const int len = static_cast<int>(rng.UniformInt(0, 40));
    for (int i = 0; i < len; ++i) {
      input += static_cast<char>(rng.UniformInt(1, 127));
    }
    // Must terminate and not crash; ok() either way is acceptable.
    QSP_IGNORE_RESULT(ParsePredicate(input));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(1, 2, 3, 4));

// ------------------------------------------------------------------ Wire

Table FuzzTable() {
  Table table(Schema::Geographic(1));
  EXPECT_TRUE(table.Insert({1.0, 2.0, std::string("abc")}).ok());
  EXPECT_TRUE(table.Insert({3.0, 4.0, std::string("defgh")}).ok());
  return table;
}

Message FuzzMessage() {
  Message msg;
  msg.channel = 1;
  msg.recipients = {0, 2};
  msg.extractors = {{0, {0, Rect(0, 0, 5, 5)}}, {2, {1, Rect(1, 1, 6, 6)}}};
  msg.payload = {0, 1};
  msg.members = {0, 1};
  msg.payload_tags = {1, 2};
  return msg;
}

/// Corrupted-frame corpus over the checksummed (QSP2) format: decode
/// must reject corruption cleanly — never crash, hang, or misreport.
class WireFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WireFuzz, SingleByteFlipsAlwaysFailTheChecksum) {
  // CRC32 detects every single-byte error in the covered region, and
  // flips in the magic or CRC fields fail their own checks — so no
  // single-byte flip anywhere may ever decode.
  const Table table = FuzzTable();
  auto frame = EncodeMessage(FuzzMessage(), table);
  ASSERT_TRUE(frame.ok());
  Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    auto corrupted = frame.value();
    const size_t pos = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(corrupted.size()) - 1));
    corrupted[pos] ^= static_cast<uint8_t>(rng.UniformInt(1, 255));
    EXPECT_FALSE(DecodeMessage(corrupted, table.schema()).ok())
        << "flip at byte " << pos << " decoded";
  }
}

TEST_P(WireFuzz, EverySingleBytePositionIsCovered) {
  // Exhaustive sweep: one flip per byte position, not just sampled ones.
  const Table table = FuzzTable();
  auto frame = EncodeMessage(FuzzMessage(), table);
  ASSERT_TRUE(frame.ok());
  for (size_t pos = 0; pos < frame->size(); ++pos) {
    auto corrupted = frame.value();
    corrupted[pos] ^= 0x01;
    EXPECT_FALSE(DecodeMessage(corrupted, table.schema()).ok()) << pos;
  }
}

TEST_P(WireFuzz, BurstCorruptionNeverCrashes) {
  // Contiguous multi-byte bursts — the channel's corruption model.
  const Table table = FuzzTable();
  auto frame = EncodeMessage(FuzzMessage(), table);
  ASSERT_TRUE(frame.ok());
  Rng rng(GetParam() ^ 0xCAFE);
  for (int trial = 0; trial < 300; ++trial) {
    auto corrupted = frame.value();
    const size_t start = static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(corrupted.size()) - 1));
    const size_t len = static_cast<size_t>(rng.UniformInt(1, 16));
    for (size_t i = start; i < std::min(start + len, corrupted.size()); ++i) {
      corrupted[i] ^= static_cast<uint8_t>(rng.UniformInt(1, 255));
    }
    EXPECT_FALSE(DecodeMessage(corrupted, table.schema()).ok());
  }
}

TEST_P(WireFuzz, CorruptionPlusTruncationNeverCrashes) {
  const Table table = FuzzTable();
  auto frame = EncodeMessage(FuzzMessage(), table);
  ASSERT_TRUE(frame.ok());
  Rng rng(GetParam() ^ 0xD00D);
  for (int trial = 0; trial < 300; ++trial) {
    auto corrupted = frame.value();
    corrupted.resize(static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(corrupted.size()))));
    if (!corrupted.empty()) {
      const size_t pos = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(corrupted.size()) - 1));
      corrupted[pos] ^= static_cast<uint8_t>(rng.UniformInt(1, 255));
    }
    EXPECT_FALSE(DecodeMessage(corrupted, table.schema()).ok());
  }
}

TEST_P(WireFuzz, RandomGarbageFrames) {
  const Table table = FuzzTable();
  Rng rng(GetParam() ^ 0xBEEF);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> garbage(
        static_cast<size_t>(rng.UniformInt(0, 200)));
    for (auto& byte : garbage) {
      byte = static_cast<uint8_t>(rng.UniformInt(0, 255));
    }
    // Must not crash; rejecting the frame is the expected outcome.
    QSP_IGNORE_RESULT(DecodeMessage(garbage, table.schema()));
  }
}

TEST_P(WireFuzz, LengthFieldsCannotCauseHugeAllocations) {
  // A frame claiming 2^31 recipients must fail on bounds, not try to
  // allocate. The CRC is made valid so the decoder actually reaches the
  // count check instead of bailing at the checksum.
  WireWriter writer;
  writer.PutU32(0x51535032);  // Magic "QSP2".
  writer.PutU32(0);           // Checksum placeholder.
  writer.PutU32(0);           // Channel.
  writer.PutU32(0);           // Seq.
  writer.PutU32(0);           // Round id.
  writer.PutU32(0);           // Total in round.
  writer.PutU32(0x7FFFFFFF);  // Claimed recipients.
  writer.PatchU32(4, Crc32(writer.buffer().data() + 8,
                           writer.buffer().size() - 8));
  const Table table = FuzzTable();
  auto decoded = DecodeMessage(writer.buffer(), table.schema());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kOutOfRange);
}

TEST_P(WireFuzz, HostileTupleCountAgainstEmptySchemaIsRejected) {
  // Zero-field schemas make the per-tuple lower bound zero; the decoder
  // must still refuse a nonzero tuple count rather than loop or allocate.
  WireWriter writer;
  writer.PutU32(0x51535032);
  writer.PutU32(0);           // Checksum placeholder.
  writer.PutU32(0);           // Channel.
  writer.PutU32(0);           // Seq.
  writer.PutU32(0);           // Round id.
  writer.PutU32(0);           // Total in round.
  writer.PutU32(0);           // No recipients.
  writer.PutU32(0);           // No extractors.
  writer.PutU32(0x7FFFFFFF);  // Claimed tuples.
  writer.PutU8(0);            // No tags.
  writer.PatchU32(4, Crc32(writer.buffer().data() + 8,
                           writer.buffer().size() - 8));
  auto decoded = DecodeMessage(writer.buffer(), Schema(std::vector<Field>{}));
  EXPECT_FALSE(decoded.ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz, ::testing::Values(10, 20, 30));

// ------------------------------------------------------------- Geometry

/// Metamorphic checks on random rectangle algebra.
class GeometryFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GeometryFuzz, RectAlgebraLaws) {
  Rng rng(GetParam());
  auto random_rect = [&]() {
    if (rng.Bernoulli(0.1)) return Rect::Empty();
    const double x = rng.UniformDouble(-50, 50);
    const double y = rng.UniformDouble(-50, 50);
    return Rect(x, y, x + rng.UniformDouble(0, 40),
                y + rng.UniformDouble(0, 40));
  };
  for (int trial = 0; trial < 2000; ++trial) {
    const Rect a = random_rect();
    const Rect b = random_rect();
    // Commutativity.
    EXPECT_EQ(a.Intersection(b), b.Intersection(a));
    EXPECT_EQ(a.BoundingUnion(b), b.BoundingUnion(a));
    // Containment relations.
    EXPECT_TRUE(a.BoundingUnion(b).Contains(a));
    EXPECT_TRUE(a.Contains(a.Intersection(b)));
    // Area monotonicity.
    EXPECT_LE(a.Intersection(b).Area(), std::min(a.Area(), b.Area()) + 1e-9);
    EXPECT_GE(a.BoundingUnion(b).Area(), std::max(a.Area(), b.Area()) - 1e-9);
    // Union area never exceeds bounding-box area and never undercounts
    // the larger operand.
    const double union_area = UnionArea({a, b});
    EXPECT_LE(union_area, a.BoundingUnion(b).Area() + 1e-9);
    EXPECT_GE(union_area, std::max(a.Area(), b.Area()) - 1e-9);
    // Inclusion-exclusion for two rects is exact.
    EXPECT_NEAR(union_area, a.Area() + b.Area() - OverlapArea(a, b), 1e-6);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GeometryFuzz, ::testing::Values(5, 6, 7));

}  // namespace
}  // namespace qsp
