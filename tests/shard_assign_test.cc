// Shard assignment (merge/shard_assign.h): the layout layer under the
// sharded planner (DESIGN.md §13). The contracts under test: the grid
// path reproduces RectSoA::BatchShardOf byte for byte; the balanced
// bisection terminates and is deterministic on degenerate inputs
// (all-same-center populations, centers exactly on a cut line, empty
// rects); boundless queries keep kBoundlessShard but are accounted to
// shard 0; and the cost weights make dense queries heavier than
// isolated ones.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "geom/rect.h"
#include "geom/rect_soa.h"
#include "merge/shard_assign.h"
#include "util/rng.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

RectSoA HybridSoA(size_t n, uint64_t seed) {
  Rng rng(seed);
  QueryGenConfig config;
  config.num_queries = n;
  return RectSoA(GenerateQueries(config, &rng));
}

void ExpectLayoutsEqual(const ShardLayout& a, const ShardLayout& b) {
  EXPECT_EQ(a.num_shards, b.num_shards);
  EXPECT_EQ(a.shard_of, b.shard_of);
  EXPECT_EQ(a.shard_cost, b.shard_cost);
  EXPECT_EQ(a.shard_queries, b.shard_queries);
  ASSERT_EQ(a.cuts.size(), b.cuts.size());
  for (size_t i = 0; i < a.cuts.size(); ++i) {
    EXPECT_EQ(a.cuts[i].axis, b.cuts[i].axis);
    EXPECT_EQ(a.cuts[i].coord, b.cuts[i].coord);
    EXPECT_EQ(a.cuts[i].left, b.cuts[i].left);
    EXPECT_EQ(a.cuts[i].right, b.cuts[i].right);
  }
}

// Every query assigned (boundless to kBoundlessShard), ids in range,
// per-shard accounting consistent with the assignment.
void ExpectLayoutWellFormed(const ShardLayout& layout, const RectSoA& soa) {
  ASSERT_EQ(layout.shard_of.size(), soa.size());
  ASSERT_EQ(layout.shard_cost.size(),
            static_cast<size_t>(layout.num_shards));
  ASSERT_EQ(layout.shard_queries.size(),
            static_cast<size_t>(layout.num_shards));
  ASSERT_EQ(layout.shard_box.size(), static_cast<size_t>(layout.num_shards));
  size_t total_queries = 0;
  for (size_t q : layout.shard_queries) total_queries += q;
  EXPECT_EQ(total_queries, soa.size());
  for (size_t i = 0; i < soa.size(); ++i) {
    const int32_t s = layout.shard_of[i];
    if (soa.IsEmpty(i)) {
      EXPECT_EQ(s, RectSoA::kBoundlessShard) << "rect " << i;
    } else {
      EXPECT_GE(s, 0) << "rect " << i;
      EXPECT_LT(s, layout.num_shards) << "rect " << i;
    }
  }
}

// The grid path must be byte-compatible with the pre-balanced planner:
// same assignment BatchShardOf computes, same floor(sqrt) dims.
TEST(ShardAssignTest, GridReproducesBatchShardOf) {
  const RectSoA soa = HybridSoA(300, 7);
  for (const int shards : {1, 4, 8, 16}) {
    const ShardLayout layout = AssignShards(soa, shards, ShardAssign::kGrid);
    ExpectLayoutWellFormed(layout, soa);
    EXPECT_EQ(layout.num_shards, layout.cells_x * layout.cells_y);
    EXPECT_TRUE(layout.cuts.empty());
    std::vector<int32_t> expected(soa.size());
    soa.BatchShardOf(soa.BoundingUnionAll(), layout.cells_x, layout.cells_y,
                     expected.data());
    EXPECT_EQ(layout.shard_of, expected) << "shards " << shards;
  }
}

// Balanced assignment treats the request as a budget: never more shards
// than requested, ids dense [0, num_shards), every shard non-empty, and
// the whole layout identical across repeated runs.
TEST(ShardAssignTest, BalancedIsBudgetedDenseAndDeterministic) {
  const RectSoA soa = HybridSoA(400, 11);
  for (const int shards : {2, 5, 16}) {
    const ShardLayout layout =
        AssignShards(soa, shards, ShardAssign::kBalanced);
    ExpectLayoutWellFormed(layout, soa);
    EXPECT_GE(layout.num_shards, 1);
    EXPECT_LE(layout.num_shards, shards);
    for (size_t q : layout.shard_queries) EXPECT_GT(q, 0u);
    EXPECT_GE(layout.Imbalance(), 1.0);
    ExpectLayoutsEqual(layout,
                       AssignShards(soa, shards, ShardAssign::kBalanced));
  }
}

// All-same-center rects with positive extents: every candidate cut is
// fully straddled, so the bisection must stop splitting (one shard)
// rather than manufacturing all-seam slivers — and must terminate.
TEST(ShardAssignTest, BalancedSameCenterExtentsRefusesToSliver) {
  std::vector<Rect> rects(64, Rect(10, 10, 30, 30));
  const RectSoA soa(rects);
  const ShardLayout layout = AssignShards(soa, 8, ShardAssign::kBalanced);
  ExpectLayoutWellFormed(layout, soa);
  EXPECT_EQ(layout.num_shards, 1);
  EXPECT_TRUE(layout.cuts.empty());
  EXPECT_DOUBLE_EQ(layout.Imbalance(), 1.0);
}

// All-same-center zero-extent points: nothing straddles a cut through
// the common coordinate, so the id tie-break splits the population into
// the full budget (uneven counts are fine — the balance slack may snap
// within its window — but every shard is non-empty and the layout is
// deterministic).
TEST(ShardAssignTest, BalancedSameCenterPointsSplitByIdTieBreak) {
  std::vector<Rect> rects(64, Rect(42, 17, 42, 17));
  const RectSoA soa(rects);
  const ShardLayout layout = AssignShards(soa, 8, ShardAssign::kBalanced);
  ExpectLayoutWellFormed(layout, soa);
  EXPECT_EQ(layout.num_shards, 8);
  for (size_t q : layout.shard_queries) EXPECT_GT(q, 0u);
  ExpectLayoutsEqual(layout, AssignShards(soa, 8, ShardAssign::kBalanced));
}

// Centers exactly on the cut line: two rects whose shared center
// coordinate is the midpoint the cut lands on. The (center, id) order
// puts the tie pair on deterministic sides; repeated runs agree.
TEST(ShardAssignTest, BalancedCentersOnCutLineAreDeterministic) {
  std::vector<Rect> rects;
  for (int i = 0; i < 8; ++i) {
    rects.push_back(Rect(10.0 * i, 0, 10.0 * i, 4));   // centers 0..70
    rects.push_back(Rect(35, 10 + i, 35, 14 + i));     // centers all x=35
  }
  const RectSoA soa(rects);
  const ShardLayout layout = AssignShards(soa, 2, ShardAssign::kBalanced);
  ExpectLayoutWellFormed(layout, soa);
  ExpectLayoutsEqual(layout, AssignShards(soa, 2, ShardAssign::kBalanced));
  if (!layout.cuts.empty()) {
    // Assignment is consistent with the cut: every rect center strictly
    // left of the cut is in a left-subtree shard (ties may go either
    // side, but deterministically).
    EXPECT_EQ(layout.cuts[0].axis, 0);
  }
}

// Empty rects: kBoundlessShard in shard_of, counted in shard 0's
// accounting (where the planner parks them), and maximal cost weight
// (they pair with everything).
TEST(ShardAssignTest, BoundlessRectsParkInShardZero) {
  std::vector<Rect> rects;
  Rng rng(3);
  QueryGenConfig config;
  config.num_queries = 100;
  rects = GenerateQueries(config, &rng);
  rects.push_back(Rect::Empty());
  rects.push_back(Rect::Empty());
  const RectSoA soa(rects);
  const std::vector<double> weights = PlanningCostWeights(soa);
  ASSERT_EQ(weights.size(), soa.size());
  // Boundless weight = 1 + population; no placed rect can exceed it.
  for (size_t i = 0; i < soa.size(); ++i) {
    EXPECT_LE(weights[i], weights.back());
  }
  EXPECT_DOUBLE_EQ(weights.back(), 1.0 + static_cast<double>(soa.size()));

  for (const ShardAssign assign :
       {ShardAssign::kGrid, ShardAssign::kBalanced}) {
    const ShardLayout layout = AssignShards(soa, 4, assign);
    ExpectLayoutWellFormed(layout, soa);
    EXPECT_EQ(layout.shard_of[soa.size() - 1], RectSoA::kBoundlessShard);
    EXPECT_EQ(layout.shard_of[soa.size() - 2], RectSoA::kBoundlessShard);
    // shard 0 absorbs the two boundless queries and their weight.
    size_t placed_in_zero = 0;
    for (size_t i = 0; i + 2 < soa.size(); ++i) {
      if (layout.shard_of[i] == 0) ++placed_in_zero;
    }
    EXPECT_EQ(layout.shard_queries[0], placed_in_zero + 2);
  }
}

// An all-empty population must not crash either path and collapses to
// one shard holding everything.
TEST(ShardAssignTest, AllBoundlessCollapsesToOneShard) {
  const RectSoA soa(std::vector<Rect>(5, Rect::Empty()));
  for (const ShardAssign assign :
       {ShardAssign::kGrid, ShardAssign::kBalanced}) {
    const ShardLayout layout = AssignShards(soa, 4, assign);
    ExpectLayoutWellFormed(layout, soa);
    EXPECT_EQ(layout.shard_queries[0], soa.size());
    EXPECT_EQ(layout.num_shards, 1);
    EXPECT_DOUBLE_EQ(layout.Imbalance(), 1.0);
  }
}

// Weights read candidate density off the spatial grid: a query inside a
// dense pile must weigh more than a far-away isolated one.
TEST(ShardAssignTest, CostWeightsFollowDensity) {
  std::vector<Rect> rects;
  for (int i = 0; i < 30; ++i) {
    rects.push_back(Rect(100 + i, 100, 140 + i, 140));  // dense pile
  }
  rects.push_back(Rect(900, 900, 905, 905));  // isolated
  const RectSoA soa(rects);
  const std::vector<double> weights = PlanningCostWeights(soa);
  EXPECT_GT(weights[0], weights.back());
  for (double w : weights) EXPECT_GE(w, 1.0);
}

}  // namespace
}  // namespace qsp
