#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>
#include <vector>

#include "query/extractor.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "query/query.h"
#include "relation/generator.h"
#include "stats/size_estimator.h"
#include "util/rng.h"

namespace qsp {
namespace {

// -------------------------------------------------------------- QuerySet

TEST(QuerySetTest, AddAssignsDenseIds) {
  QuerySet qs;
  EXPECT_EQ(qs.Add(Rect(0, 0, 1, 1)), 0u);
  EXPECT_EQ(qs.Add(Rect(1, 1, 2, 2)), 1u);
  EXPECT_EQ(qs.size(), 2u);
  EXPECT_EQ(qs.rect(1), Rect(1, 1, 2, 2));
  EXPECT_EQ(qs.query(0).id, 0u);
}

TEST(QuerySetTest, ConstructFromRects) {
  QuerySet qs({Rect(0, 0, 1, 1), Rect(2, 2, 3, 3)});
  EXPECT_EQ(qs.size(), 2u);
  EXPECT_EQ(qs.AllIds(), (std::vector<QueryId>{0, 1}));
}

TEST(QuerySetTest, RectsOfGroup) {
  QuerySet qs({Rect(0, 0, 1, 1), Rect(2, 2, 3, 3), Rect(4, 4, 5, 5)});
  const auto rects = qs.RectsOf({0, 2});
  ASSERT_EQ(rects.size(), 2u);
  EXPECT_EQ(rects[1], Rect(4, 4, 5, 5));
}

// ------------------------------------------------------ Group/Partition

TEST(GroupTest, CanonicalizeSortsAndDedupes) {
  QueryGroup g = {3, 1, 3, 2};
  CanonicalizeGroup(&g);
  EXPECT_EQ(g, (QueryGroup{1, 2, 3}));
}

TEST(GroupTest, UnionGroups) {
  EXPECT_EQ(UnionGroups({1, 3}, {2, 3, 5}), (QueryGroup{1, 2, 3, 5}));
  EXPECT_EQ(UnionGroups({}, {2}), (QueryGroup{2}));
}

TEST(GroupTest, ToString) {
  EXPECT_EQ(GroupToString({0, 3, 7}), "{0,3,7}");
  EXPECT_EQ(GroupToString({}), "{}");
}

TEST(PartitionTest, SingletonPartition) {
  const Partition p = SingletonPartition(3);
  ASSERT_EQ(p.size(), 3u);
  EXPECT_EQ(p[2], (QueryGroup{2}));
  EXPECT_TRUE(IsValidPartition(p, 3));
}

TEST(PartitionTest, OneGroupPartition) {
  const Partition p = OneGroupPartition(3);
  ASSERT_EQ(p.size(), 1u);
  EXPECT_EQ(p[0], (QueryGroup{0, 1, 2}));
  EXPECT_TRUE(IsValidPartition(p, 3));
}

TEST(PartitionTest, CanonicalizeDropsEmptiesAndSorts) {
  Partition p = {{2, 1}, {}, {0}};
  CanonicalizePartition(&p);
  ASSERT_EQ(p.size(), 2u);
  EXPECT_EQ(p[0], (QueryGroup{0}));
  EXPECT_EQ(p[1], (QueryGroup{1, 2}));
}

TEST(PartitionTest, ValidityChecks) {
  EXPECT_TRUE(IsValidPartition({{0, 1}, {2}}, 3));
  EXPECT_FALSE(IsValidPartition({{0, 1}}, 3));          // Missing 2.
  EXPECT_FALSE(IsValidPartition({{0, 1}, {1, 2}}, 3));  // Duplicate 1.
  EXPECT_FALSE(IsValidPartition({{0, 5}}, 3));          // Out of range.
}

// ---------------------------------------------------------- MergeContext

TEST(MergeContextTest, SizeMatchesEstimator) {
  QuerySet qs({Rect(0, 0, 2, 2), Rect(0, 0, 4, 1)});
  UniformDensityEstimator est(1.0);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  EXPECT_DOUBLE_EQ(ctx.Size(0), 4.0);
  EXPECT_DOUBLE_EQ(ctx.Size(1), 4.0);
}

TEST(MergeContextTest, SingletonGroupStats) {
  QuerySet qs({Rect(0, 0, 2, 2)});
  UniformDensityEstimator est(1.0);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  const GroupStats& stats = ctx.Stats({0});
  EXPECT_DOUBLE_EQ(stats.messages, 1.0);
  EXPECT_DOUBLE_EQ(stats.size, 4.0);
  EXPECT_DOUBLE_EQ(stats.irrelevant, 0.0);
}

TEST(MergeContextTest, BoundingRectPairStats) {
  // q0 = [0,0..1,1] (S=1), q1 = [2,0..3,1] (S=1); bbox = [0,0..3,1] (S=3).
  QuerySet qs({Rect(0, 0, 1, 1), Rect(2, 0, 3, 1)});
  UniformDensityEstimator est(1.0);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  const GroupStats& stats = ctx.Stats({0, 1});
  EXPECT_DOUBLE_EQ(stats.messages, 1.0);
  EXPECT_DOUBLE_EQ(stats.size, 3.0);
  // U = (R - S0) + (R - S1) = (3-1) + (3-1) = 4.
  EXPECT_DOUBLE_EQ(stats.irrelevant, 4.0);
}

TEST(MergeContextTest, StatsAreCached) {
  QuerySet qs({Rect(0, 0, 1, 1), Rect(2, 0, 3, 1)});
  UniformDensityEstimator est(1.0);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  ctx.Stats({0, 1});
  const size_t evaluated = ctx.groups_evaluated();
  ctx.Stats({0, 1});
  EXPECT_EQ(ctx.groups_evaluated(), evaluated);
}

TEST(MergeContextTest, UnionAndIntersectionSizes) {
  QuerySet qs({Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)});
  UniformDensityEstimator est(1.0);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  EXPECT_DOUBLE_EQ(ctx.UnionSize(0, 1), 16 + 16 - 4);
  EXPECT_DOUBLE_EQ(ctx.IntersectionSize(0, 1), 4.0);
}

TEST(MergeContextTest, DisjointQueriesHaveZeroIntersection) {
  QuerySet qs({Rect(0, 0, 1, 1), Rect(5, 5, 6, 6)});
  UniformDensityEstimator est(1.0);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  EXPECT_DOUBLE_EQ(ctx.IntersectionSize(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(ctx.UnionSize(0, 1), 2.0);
}

TEST(MergeContextTest, ExactCoverHasNoIrrelevantData) {
  QuerySet qs({Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)});
  UniformDensityEstimator est(1.0);
  ExactCoverProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  const GroupStats& stats = ctx.Stats({0, 1});
  EXPECT_NEAR(stats.irrelevant, 0.0, 1e-9);
  EXPECT_NEAR(stats.size, 28.0, 1e-9);  // Union area.
  EXPECT_GT(stats.messages, 1.0);       // Multiple pieces.
}

TEST(MergeContextTest, GrowsWithDynamicQuerySet) {
  QuerySet qs({Rect(0, 0, 1, 1)});
  UniformDensityEstimator est(1.0);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  EXPECT_DOUBLE_EQ(ctx.Size(0), 1.0);
  const QueryId id = qs.Add(Rect(0, 0, 2, 3));
  EXPECT_DOUBLE_EQ(ctx.Size(id), 6.0);
}

// ------------------------------------------------------------- Extractor

TEST(ExtractorTest, FiltersPayloadByRect) {
  Table table(Schema::Geographic(0));
  ASSERT_TRUE(table.Insert({1.0, 1.0}).ok());
  ASSERT_TRUE(table.Insert({5.0, 5.0}).ok());
  ASSERT_TRUE(table.Insert({9.0, 9.0}).ok());
  const ExtractorSpec spec{0, Rect(0, 0, 6, 6)};
  size_t examined = 0;
  const auto out = ApplyExtractor(spec, {0, 1, 2}, table, &examined);
  EXPECT_EQ(out, (std::vector<RowId>{0, 1}));
  EXPECT_EQ(examined, 3u);
}

TEST(ExtractorTest, ExaminedCounterAccumulates) {
  Table table(Schema::Geographic(0));
  ASSERT_TRUE(table.Insert({1.0, 1.0}).ok());
  const ExtractorSpec spec{0, Rect(0, 0, 6, 6)};
  size_t examined = 0;
  ApplyExtractor(spec, {0}, table, &examined);
  ApplyExtractor(spec, {0}, table, &examined);
  EXPECT_EQ(examined, 2u);
}

TEST(ExtractorTest, CombineAnswersDedupes) {
  const auto combined = CombineAnswers({{3, 1}, {1, 2}, {}});
  EXPECT_EQ(combined, (std::vector<RowId>{1, 2, 3}));
}

/// Property (the correctness contract of Section 3.1): for any merge
/// procedure and any group, re-applying the original query to the merged
/// answer recovers exactly the original answer.
class ExtractionProperty
    : public ::testing::TestWithParam<std::tuple<int, uint64_t>> {};

TEST_P(ExtractionProperty, ExtractorRecoversOriginalAnswer) {
  const int procedure_kind = std::get<0>(GetParam());
  Rng rng(std::get<1>(GetParam()));

  TableGeneratorConfig tconfig;
  tconfig.domain = Rect(0, 0, 100, 100);
  tconfig.num_objects = 800;
  tconfig.payload_fields = 0;
  Table table = GenerateTable(tconfig, &rng);

  QuerySet qs;
  QueryGroup group;
  for (int i = 0; i < 5; ++i) {
    const double x = rng.UniformDouble(0, 70);
    const double y = rng.UniformDouble(0, 70);
    group.push_back(qs.Add(Rect(x, y, x + rng.UniformDouble(5, 30),
                                y + rng.UniformDouble(5, 30))));
  }

  const BoundingRectProcedure rect_proc;
  const BoundingPolygonProcedure poly_proc;
  const ExactCoverProcedure cover_proc;
  const MergeProcedure* proc =
      procedure_kind == 0
          ? static_cast<const MergeProcedure*>(&rect_proc)
          : procedure_kind == 1
                ? static_cast<const MergeProcedure*>(&poly_proc)
                : static_cast<const MergeProcedure*>(&cover_proc);

  // Evaluate every merged query, extract per member, combine.
  std::vector<std::vector<std::vector<RowId>>> parts(qs.size());
  for (const MergedQuery& merged : proc->Merge(qs, group)) {
    std::vector<RowId> payload;
    for (const Rect& piece : merged.region) {
      const auto rows = table.ScanRange(piece);
      payload.insert(payload.end(), rows.begin(), rows.end());
    }
    std::sort(payload.begin(), payload.end());
    payload.erase(std::unique(payload.begin(), payload.end()),
                  payload.end());
    for (QueryId member : merged.members) {
      parts[member].push_back(
          ApplyExtractor({member, qs.rect(member)}, payload, table));
    }
  }
  for (QueryId q : group) {
    EXPECT_EQ(CombineAnswers(parts[q]), table.ScanRange(qs.rect(q)))
        << proc->name() << " failed for query " << q;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProceduresAndSeeds, ExtractionProperty,
    ::testing::Combine(::testing::Values(0, 1, 2),
                       ::testing::Values(101, 202, 303, 404)));

}  // namespace
}  // namespace qsp
