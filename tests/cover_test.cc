#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "cost/cost_model.h"
#include "merge/cover_refiner.h"
#include "merge/pair_merger.h"
#include "net/server.h"
#include "net/sim_client.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "relation/generator.h"
#include "relation/grid_index.h"
#include "stats/size_estimator.h"
#include "util/rng.h"
#include "workload/client_gen.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

/// The paper's own Section 11 example, lifted to 2-D: three x-ranges
/// 0<x<3, 0<x<4, x-in-[1,4]; after merging the first two into [0,4]
/// (say), the third is coverable by existing merged ranges.
struct SplitExample {
  QuerySet queries;
  UniformDensityEstimator estimator{1.0};
  BoundingRectProcedure procedure;
  std::unique_ptr<MergeContext> ctx;

  SplitExample() {
    // Two fat side-by-side queries and a thin one spanning their seam.
    queries.Add(Rect(0, 0, 4, 10));   // q0: left block
    queries.Add(Rect(4, 0, 8, 10));   // q1: right block
    queries.Add(Rect(3, 4, 5, 6));    // q2: straddles the seam
    ctx = std::make_unique<MergeContext>(&queries, &estimator, &procedure);
  }
};

TEST(CoverRefinerTest, AbsorbsStraddlingQueryIntoTwoCovers) {
  SplitExample ex;
  // K_M large: dropping q2's own message is clearly worth the extra
  // irrelevant data its client receives from the two big messages.
  const CostModel model{200.0, 1.0, 0.1, 0.0};
  const Partition partition = {{0}, {1}, {2}};
  CoverRefiner refiner;
  const CoverPlan plan = refiner.Refine(*ex.ctx, model, partition);
  EXPECT_EQ(plan.merged.size(), 2u);
  EXPECT_EQ(plan.absorbed, 1u);
  // q2 must now be a member of both remaining merged queries.
  int memberships = 0;
  for (const MergedQuery& m : plan.merged) {
    if (std::find(m.members.begin(), m.members.end(), 2u) !=
        m.members.end()) {
      ++memberships;
    }
  }
  EXPECT_EQ(memberships, 2);
  // And the refined cost must beat the partition cost.
  EXPECT_LT(plan.cost, model.PartitionCost(*ex.ctx, partition));
}

TEST(CoverRefinerTest, NoAbsorptionWhenIrrelevantDataTooExpensive) {
  SplitExample ex;
  const CostModel model{1.0, 1.0, 50.0, 0.0};  // K_U dominates.
  const Partition partition = {{0}, {1}, {2}};
  CoverRefiner refiner;
  const CoverPlan plan = refiner.Refine(*ex.ctx, model, partition);
  EXPECT_EQ(plan.merged.size(), 3u);
  EXPECT_EQ(plan.absorbed, 0u);
}

TEST(CoverRefinerTest, SingleCoverPreferredWhenQueryNested) {
  QuerySet queries;
  queries.Add(Rect(0, 0, 10, 10));  // Big query.
  queries.Add(Rect(2, 2, 4, 4));    // Nested query.
  UniformDensityEstimator estimator(1.0);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);
  const CostModel model{50.0, 1.0, 0.1, 0.0};
  CoverRefiner refiner;
  const CoverPlan plan = refiner.Refine(ctx, model, {{0}, {1}});
  ASSERT_EQ(plan.merged.size(), 1u);
  EXPECT_EQ(plan.merged[0].members, (QueryGroup{0, 1}));
}

TEST(CoverRefinerTest, RespectsMaxCoverSizeOne) {
  SplitExample ex;
  const CostModel model{200.0, 1.0, 0.1, 0.0};
  CoverRefiner pairs_forbidden(/*max_cover_size=*/1);
  const CoverPlan plan =
      pairs_forbidden.Refine(*ex.ctx, model, {{0}, {1}, {2}});
  // q2 needs two covers, so nothing can be absorbed.
  EXPECT_EQ(plan.merged.size(), 3u);
  EXPECT_EQ(plan.absorbed, 0u);
}

TEST(CoverRefinerTest, PlanCostMatchesPartitionCostWhenNothingAbsorbed) {
  SplitExample ex;
  const CostModel model{1.0, 1.0, 50.0, 0.0};
  const Partition partition = {{0, 1}, {2}};
  CoverRefiner refiner;
  const CoverPlan plan = refiner.Refine(*ex.ctx, model, partition);
  EXPECT_NEAR(plan.cost, model.PartitionCost(*ex.ctx, partition), 1e-9);
}

/// Property: on random clustered workloads the refined plan (a) never
/// costs more than the partition plan, (b) always serves every query.
class CoverRefinementProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoverRefinementProperty, NeverWorseAlwaysComplete) {
  Rng rng(GetParam());
  QueryGenConfig config;
  config.num_queries = 14;
  config.cf = 0.8;
  config.df = 0.03;
  QuerySet queries(GenerateQueries(config, &rng));
  UniformDensityEstimator estimator(0.001);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);
  const CostModel model{30.0, 1.0, 0.2, 0.0};

  PairMerger merger;
  auto outcome = merger.Merge(ctx, model);
  ASSERT_TRUE(outcome.ok());

  CoverRefiner refiner;
  const CoverPlan plan = refiner.Refine(ctx, model, outcome->partition);
  EXPECT_LE(plan.cost, outcome->cost + 1e-9);

  std::set<QueryId> served;
  for (const MergedQuery& m : plan.merged) {
    served.insert(m.members.begin(), m.members.end());
  }
  EXPECT_EQ(served.size(), queries.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverRefinementProperty,
                         ::testing::Range<uint64_t>(800, 816));

/// End-to-end: clients served by split covers still reconstruct their
/// exact answers by combining partial extractions.
class CoverEndToEnd : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoverEndToEnd, ClientsRecoverExactAnswersFromCovers) {
  Rng rng(GetParam());
  const Rect domain(0, 0, 100, 100);
  TableGeneratorConfig tconfig;
  tconfig.domain = domain;
  tconfig.num_objects = 1200;
  tconfig.payload_fields = 0;
  Table table = GenerateTable(tconfig, &rng);
  GridIndex index(table, domain);

  QueryGenConfig qconfig;
  qconfig.domain = domain;
  qconfig.num_queries = 12;
  qconfig.cf = 0.8;
  qconfig.df = 0.03;
  qconfig.max_extent = 0.25;
  QuerySet queries(GenerateQueries(qconfig, &rng));
  ClientSet clients =
      AssignClients(queries, 4, ClientAssignment::kLocality, &rng);

  UniformDensityEstimator estimator(0.12);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);
  const CostModel model{100.0, 1.0, 0.1, 0.0};

  PairMerger merger;
  auto outcome = merger.Merge(ctx, model);
  ASSERT_TRUE(outcome.ok());
  CoverRefiner refiner;
  const CoverPlan plan = refiner.Refine(ctx, model, outcome->partition);

  Server server(&table, &index, &queries, &clients);
  const Allocation allocation = {clients.AllClients()};
  const auto messages =
      server.ExecuteRoundMerged(allocation, {plan.merged});

  // Run the client side directly.
  std::vector<SimClient> sims;
  for (ClientId c = 0; c < clients.num_clients(); ++c) {
    sims.emplace_back(c, 0, &queries, clients.QueriesOf(c));
    sims.back().StartRound();
  }
  for (const Message& msg : messages) {
    for (SimClient& sim : sims) sim.Receive(msg, table);
  }
  for (const SimClient& sim : sims) {
    for (QueryId q : sim.subscriptions()) {
      EXPECT_EQ(sim.AnswerFor(q), index.Query(queries.rect(q)))
          << "client " << sim.id() << " query " << q << " (absorbed="
          << plan.absorbed << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoverEndToEnd,
                         ::testing::Range<uint64_t>(900, 910));

}  // namespace
}  // namespace qsp
