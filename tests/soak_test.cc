// Randomized cross-module soak: full scenarios with randomly drawn
// configurations (object space, workload shape, cost constants, merger,
// procedure, estimator, index, channels, extraction mode). Every single
// run must plan within the initial-cost budget and deliver exact answers
// to every client — the library's end-to-end contract under arbitrary
// (valid) configuration.

#include <gtest/gtest.h>

#include "sim/scenario.h"
#include "util/rng.h"

namespace qsp {
namespace {

class RandomizedSoak : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomizedSoak, ArbitraryConfigurationDeliversExactAnswers) {
  Rng rng(GetParam());

  ScenarioConfig config;
  config.seed = GetParam() ^ 0xD00D;
  config.objects.domain = Rect(0, 0, rng.UniformDouble(50, 2000),
                               rng.UniformDouble(50, 2000));
  config.objects.num_objects = static_cast<size_t>(rng.UniformInt(50, 3000));
  config.objects.clustered_fraction = rng.UniformDouble(0, 1);
  config.objects.num_clusters = static_cast<int>(rng.UniformInt(1, 8));
  config.objects.payload_fields = static_cast<int>(rng.UniformInt(0, 2));
  config.objects.payload_bytes = static_cast<int>(rng.UniformInt(1, 64));

  config.workload.num_queries = static_cast<size_t>(rng.UniformInt(1, 25));
  config.workload.cf = rng.UniformDouble(0, 1);
  config.workload.sf = rng.UniformDouble(0.1, 1);
  config.workload.df = rng.UniformDouble(0.005, 0.3);
  config.workload.min_extent = rng.UniformDouble(0.005, 0.05);
  config.workload.max_extent =
      config.workload.min_extent + rng.UniformDouble(0, 0.3);

  config.num_clients = static_cast<size_t>(rng.UniformInt(1, 8));
  config.assignment = static_cast<ClientAssignment>(rng.UniformInt(0, 2));

  config.service.cost_model.k_m = rng.UniformDouble(0, 100);
  config.service.cost_model.k_t = rng.UniformDouble(0, 10);
  config.service.cost_model.k_u = rng.UniformDouble(0, 10);
  config.service.cost_model.k_d = rng.UniformDouble(0, 10);
  config.service.cost_model.k_check = rng.UniformDouble(0, 3);
  // Exact partition search only on small instances.
  config.service.merger =
      config.workload.num_queries <= 10 && rng.Bernoulli(0.25)
          ? MergerKind::kPartitionExact
          : static_cast<MergerKind>(rng.UniformInt(0, 2));
  config.service.procedure =
      static_cast<ProcedureKind>(rng.UniformInt(0, 2));
  config.service.estimator =
      static_cast<EstimatorKind>(rng.UniformInt(0, 2));
  config.service.index = static_cast<IndexKind>(rng.UniformInt(0, 1));
  config.service.extraction =
      static_cast<ExtractionMode>(rng.UniformInt(0, 1));
  config.service.num_channels = static_cast<int>(rng.UniformInt(1, 4));
  config.service.client_cache = rng.Bernoulli(0.3);
  config.service.seed = GetParam();
  config.rounds = static_cast<int>(rng.UniformInt(1, 3));

  auto result = RunScenario(config);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->all_correct)
      << "merger=" << static_cast<int>(config.service.merger)
      << " procedure=" << static_cast<int>(config.service.procedure)
      << " channels=" << config.service.num_channels;
  EXPECT_EQ(result->rounds.size(), static_cast<size_t>(config.rounds));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomizedSoak,
                         ::testing::Range<uint64_t>(42000, 42040));

}  // namespace
}  // namespace qsp
