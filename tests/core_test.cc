#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/subscription_service.h"
#include "merge/sharded_planner.h"
#include "relation/generator.h"
#include "util/rng.h"

namespace qsp {
namespace {

Table MakeWorldTable(uint64_t seed, size_t objects = 1000) {
  Rng rng(seed);
  TableGeneratorConfig config;
  config.domain = Rect(0, 0, 100, 100);
  config.num_objects = objects;
  config.payload_fields = 1;
  config.payload_bytes = 16;
  return GenerateTable(config, &rng);
}

ServiceConfig BasicConfig() {
  ServiceConfig config;
  config.cost_model = {2.0, 1.0, 1.0, 0.0};
  config.estimator = EstimatorKind::kExact;
  return config;
}

TEST(SubscriptionServiceTest, PlanRequiresSubscriptions) {
  SubscriptionService service(MakeWorldTable(1), Rect(0, 0, 100, 100),
                              BasicConfig());
  EXPECT_FALSE(service.Plan().ok());
}

TEST(SubscriptionServiceTest, RoundRequiresPlan) {
  SubscriptionService service(MakeWorldTable(1), Rect(0, 0, 100, 100),
                              BasicConfig());
  const ClientId c = service.AddClient();
  service.Subscribe(c, Rect(0, 0, 10, 10));
  EXPECT_FALSE(service.RunRound().ok());
}

TEST(SubscriptionServiceTest, SingleChannelPlanAndRound) {
  SubscriptionService service(MakeWorldTable(2), Rect(0, 0, 100, 100),
                              BasicConfig());
  const ClientId a = service.AddClient();
  const ClientId b = service.AddClient();
  service.Subscribe(a, Rect(10, 10, 30, 30));
  service.Subscribe(a, Rect(12, 12, 32, 32));
  service.Subscribe(b, Rect(70, 70, 90, 90));

  auto report = service.Plan();
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->initial_cost, 0.0);
  EXPECT_LE(report->estimated_cost, report->initial_cost + 1e-9);
  ASSERT_EQ(report->plan.allocation.size(), 1u);
  EXPECT_EQ(report->plan.allocation[0].size(), 2u);

  auto stats = service.RunRound();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->all_answers_correct);
  EXPECT_EQ(stats->num_messages, report->num_groups);
}

TEST(SubscriptionServiceTest, OverlappingQueriesGetMerged) {
  SubscriptionService service(MakeWorldTable(3), Rect(0, 0, 100, 100),
                              BasicConfig());
  const ClientId a = service.AddClient();
  // Two nearly identical queries: merging is clearly beneficial.
  service.Subscribe(a, Rect(10, 10, 30, 30));
  service.Subscribe(a, Rect(11, 11, 31, 31));
  auto report = service.Plan();
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->num_groups, 1u);
}

TEST(SubscriptionServiceTest, SubscribingInvalidatesPlan) {
  SubscriptionService service(MakeWorldTable(4), Rect(0, 0, 100, 100),
                              BasicConfig());
  const ClientId a = service.AddClient();
  service.Subscribe(a, Rect(0, 0, 10, 10));
  ASSERT_TRUE(service.Plan().ok());
  service.Subscribe(a, Rect(5, 5, 15, 15));
  EXPECT_FALSE(service.RunRound().ok());  // Stale plan rejected.
  ASSERT_TRUE(service.Plan().ok());
  EXPECT_TRUE(service.RunRound().ok());
}

TEST(SubscriptionServiceTest, ShardedPlanServesCorrectRounds) {
  // The ServiceConfig::shards knob end to end: a sharded single-channel
  // plan must carry per-group shard attribution and still deliver every
  // client its exact answer.
  ServiceConfig config = BasicConfig();
  config.shards = 4;
  SubscriptionService service(MakeWorldTable(6), Rect(0, 0, 100, 100),
                              config);
  Rng rng(99);
  const ClientId a = service.AddClient();
  const ClientId b = service.AddClient();
  for (int i = 0; i < 40; ++i) {
    const double x = rng.UniformDouble(0.0, 85.0);
    const double y = rng.UniformDouble(0.0, 85.0);
    service.Subscribe(i % 2 == 0 ? a : b, Rect(x, y, x + 12, y + 12));
  }
  auto report = service.Plan();
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->estimated_cost, report->initial_cost + 1e-9);
  ASSERT_EQ(report->plan.channel_partitions.size(), 1u);
  const Partition& partition = report->plan.channel_partitions[0];
  ASSERT_EQ(service.plan_group_shard().size(), partition.size());
  for (const int32_t shard : service.plan_group_shard()) {
    EXPECT_GE(shard, ShardedMergeOutcome::kSeamGroup);
    EXPECT_LT(shard, 4);
  }
  auto stats = service.RunRound();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->all_answers_correct);

  // shards=1 must behave exactly like a config without the knob.
  ServiceConfig unsharded = BasicConfig();
  unsharded.shards = 1;
  SubscriptionService plain(MakeWorldTable(6), Rect(0, 0, 100, 100),
                            unsharded);
  SubscriptionService knobless(MakeWorldTable(6), Rect(0, 0, 100, 100),
                               BasicConfig());
  Rng rng_plain(99);
  const ClientId pa = plain.AddClient();
  const ClientId pb = plain.AddClient();
  const ClientId ka = knobless.AddClient();
  const ClientId kb = knobless.AddClient();
  for (int i = 0; i < 40; ++i) {
    const double x = rng_plain.UniformDouble(0.0, 85.0);
    const double y = rng_plain.UniformDouble(0.0, 85.0);
    const Rect rect(x, y, x + 12, y + 12);
    plain.Subscribe(i % 2 == 0 ? pa : pb, rect);
    knobless.Subscribe(i % 2 == 0 ? ka : kb, rect);
  }
  auto plain_report = plain.Plan();
  auto knobless_report = knobless.Plan();
  ASSERT_TRUE(plain_report.ok());
  ASSERT_TRUE(knobless_report.ok());
  EXPECT_TRUE(plain.plan_group_shard().empty());
  EXPECT_EQ(plain_report->plan.channel_partitions,
            knobless_report->plan.channel_partitions);
  EXPECT_DOUBLE_EQ(plain_report->estimated_cost,
                   knobless_report->estimated_cost);
}

TEST(SubscriptionServiceTest, MultiChannelPlanUsesAtMostConfiguredChannels) {
  ServiceConfig config = BasicConfig();
  config.num_channels = 3;
  SubscriptionService service(MakeWorldTable(5), Rect(0, 0, 100, 100),
                              config);
  for (int c = 0; c < 6; ++c) {
    const ClientId id = service.AddClient();
    const double x = 15.0 * c;
    service.Subscribe(id, Rect(x, x, x + 10, x + 10));
  }
  auto report = service.Plan();
  ASSERT_TRUE(report.ok());
  EXPECT_LE(report->plan.allocation.size(), 3u);
  auto stats = service.RunRound();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->all_answers_correct);
  EXPECT_LE(stats->channels_used, 3u);
}

TEST(SubscriptionServiceTest, SubscribeWhereParsesGeographicPredicate) {
  SubscriptionService service(MakeWorldTable(8), Rect(0, 0, 100, 100),
                              BasicConfig());
  const ClientId a = service.AddClient();
  auto id = service.SubscribeWhere(
      a, "longitude BETWEEN 10 AND 30 AND latitude BETWEEN 20 AND 40");
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(service.queries().rect(id.value()), Rect(10, 20, 30, 40));

  // Disjunctions and payload columns cannot become one range query.
  EXPECT_FALSE(service.SubscribeWhere(a, "longitude < 5 OR latitude < 5")
                   .ok());
  EXPECT_FALSE(service.SubscribeWhere(a, "attr0 = 'tank'").ok());
  EXPECT_FALSE(service.SubscribeWhere(a, "not valid ((").ok());
}

TEST(SubscriptionServiceTest, RTreeIndexProducesSameRoundResults) {
  auto run = [](IndexKind index) {
    ServiceConfig config = BasicConfig();
    config.index = index;
    SubscriptionService service(MakeWorldTable(9), Rect(0, 0, 100, 100),
                                config);
    const ClientId a = service.AddClient();
    service.Subscribe(a, Rect(10, 10, 40, 40));
    service.Subscribe(a, Rect(30, 30, 60, 60));
    EXPECT_TRUE(service.Plan().ok());
    auto stats = service.RunRound();
    EXPECT_TRUE(stats.ok());
    return *stats;
  };
  const RoundStats grid = run(IndexKind::kGrid);
  const RoundStats rtree = run(IndexKind::kRTree);
  EXPECT_TRUE(grid.all_answers_correct);
  EXPECT_TRUE(rtree.all_answers_correct);
  EXPECT_EQ(grid.payload_rows, rtree.payload_rows);
  EXPECT_EQ(grid.num_messages, rtree.num_messages);
}

TEST(SubscriptionServiceTest, FactoriesCoverAllKinds) {
  EXPECT_NE(MakeProcedure(ProcedureKind::kBoundingRect), nullptr);
  EXPECT_NE(MakeProcedure(ProcedureKind::kBoundingPolygon), nullptr);
  EXPECT_NE(MakeProcedure(ProcedureKind::kExactCover), nullptr);
  EXPECT_NE(MakeMerger(MergerKind::kPairMerging, 1), nullptr);
  EXPECT_NE(MakeMerger(MergerKind::kDirectedSearch, 1), nullptr);
  EXPECT_NE(MakeMerger(MergerKind::kClustering, 1), nullptr);
  EXPECT_NE(MakeMerger(MergerKind::kPartitionExact, 1), nullptr);
}

/// Property sweep over the full configuration matrix: every combination
/// plans successfully and delivers exact answers.
class ServiceMatrix
    : public ::testing::TestWithParam<
          std::tuple<MergerKind, ProcedureKind, EstimatorKind, int>> {};

TEST_P(ServiceMatrix, PlansAndDeliversCorrectly) {
  ServiceConfig config = BasicConfig();
  config.merger = std::get<0>(GetParam());
  config.procedure = std::get<1>(GetParam());
  config.estimator = std::get<2>(GetParam());
  config.num_channels = std::get<3>(GetParam());

  SubscriptionService service(MakeWorldTable(7), Rect(0, 0, 100, 100),
                              config);
  Rng rng(99);
  for (int c = 0; c < 4; ++c) {
    const ClientId id = service.AddClient();
    for (int q = 0; q < 2; ++q) {
      const double x = rng.UniformDouble(0, 70);
      const double y = rng.UniformDouble(0, 70);
      service.Subscribe(id, Rect(x, y, x + rng.UniformDouble(5, 25),
                                 y + rng.UniformDouble(5, 25)));
    }
  }
  auto report = service.Plan();
  ASSERT_TRUE(report.ok());
  auto stats = service.RunRound();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->all_answers_correct);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ServiceMatrix,
    ::testing::Combine(
        ::testing::Values(MergerKind::kPairMerging,
                          MergerKind::kDirectedSearch,
                          MergerKind::kClustering,
                          MergerKind::kPartitionExact),
        ::testing::Values(ProcedureKind::kBoundingRect,
                          ProcedureKind::kBoundingPolygon,
                          ProcedureKind::kExactCover),
        ::testing::Values(EstimatorKind::kUniform, EstimatorKind::kHistogram,
                          EstimatorKind::kExact),
        ::testing::Values(1, 2)));

/// Second matrix over the runtime dimensions: index structure x
/// extractor implementation x channels, all with the pair merger.
class RuntimeMatrix
    : public ::testing::TestWithParam<
          std::tuple<IndexKind, ExtractionMode, int>> {};

TEST_P(RuntimeMatrix, PlansAndDeliversCorrectly) {
  ServiceConfig config = BasicConfig();
  config.index = std::get<0>(GetParam());
  config.extraction = std::get<1>(GetParam());
  config.num_channels = std::get<2>(GetParam());
  config.cost_model.k_check = 0.5;

  SubscriptionService service(MakeWorldTable(21), Rect(0, 0, 100, 100),
                              config);
  Rng rng(55);
  for (int c = 0; c < 5; ++c) {
    const ClientId id = service.AddClient();
    for (int q = 0; q < 2; ++q) {
      const double x = rng.UniformDouble(0, 70);
      const double y = rng.UniformDouble(0, 70);
      service.Subscribe(id, Rect(x, y, x + rng.UniformDouble(5, 25),
                                 y + rng.UniformDouble(5, 25)));
    }
  }
  ASSERT_TRUE(service.Plan().ok());
  auto stats = service.RunRound();
  ASSERT_TRUE(stats.ok());
  EXPECT_TRUE(stats->all_answers_correct);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, RuntimeMatrix,
    ::testing::Combine(
        ::testing::Values(IndexKind::kGrid, IndexKind::kRTree),
        ::testing::Values(ExtractionMode::kSelfExtract,
                          ExtractionMode::kServerTags),
        ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace qsp
