#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "cost/cost_model.h"
#include "merge/clustering_merger.h"
#include "merge/directed_search_merger.h"
#include "merge/exhaustive_merger.h"
#include "merge/pair_merger.h"
#include "merge/partition_merger.h"
#include "merge/rgs.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "stats/size_estimator.h"
#include "util/bell.h"
#include "util/rng.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

/// Shared fixture pieces: random workload + context + model.
struct Instance {
  QuerySet queries;
  UniformDensityEstimator estimator{0.01};
  BoundingRectProcedure procedure;
  std::unique_ptr<MergeContext> ctx;
  CostModel model;

  Instance(size_t n, uint64_t seed, CostModel m = {4.0, 1.0, 1.0, 0.0})
      : model(m) {
    Rng rng(seed);
    QueryGenConfig config;
    config.num_queries = n;
    config.cf = 0.6;
    config.sf = 0.4;
    config.df = 0.04;
    queries = QuerySet(GenerateQueries(config, &rng));
    ctx = std::make_unique<MergeContext>(&queries, &estimator, &procedure);
  }
};

// ------------------------------------------------------------------- RGS

TEST(RgsTest, EnumeratesBellManyPartitions) {
  for (int n = 1; n <= 8; ++n) {
    RgsIterator it(n);
    uint64_t count = 1;
    while (it.Next()) ++count;
    EXPECT_EQ(count, BellNumber(n)) << "n=" << n;
  }
}

TEST(RgsTest, BoundedBlocksMatchesStirlingSums) {
  for (int n = 1; n <= 7; ++n) {
    for (int k = 1; k <= n; ++k) {
      RgsIterator it(n, k);
      uint64_t count = 1;
      while (it.Next()) ++count;
      EXPECT_EQ(count, PartitionsIntoAtMost(n, k))
          << "n=" << n << " k=" << k;
    }
  }
}

TEST(RgsTest, FirstIsOneBlockLastIsAllSingletons) {
  RgsIterator it(4);
  EXPECT_EQ(it.Current(), (std::vector<int>{0, 0, 0, 0}));
  std::vector<int> last;
  do {
    last = it.Current();
  } while (it.Next());
  EXPECT_EQ(last, (std::vector<int>{0, 1, 2, 3}));
}

TEST(RgsTest, BlocksRoundTrip) {
  const auto blocks = RgsToBlocks({0, 1, 0, 2, 1});
  ASSERT_EQ(blocks.size(), 3u);
  EXPECT_EQ(blocks[0], (std::vector<int>{0, 2}));
  EXPECT_EQ(blocks[1], (std::vector<int>{1, 4}));
  EXPECT_EQ(blocks[2], (std::vector<int>{3}));
}

// ------------------------------------------------------------ Exhaustive

TEST(ExhaustiveMergerTest, RefusesLargeInputs) {
  Instance inst(6, 1);
  ExhaustiveMerger merger(4);
  EXPECT_FALSE(merger.Merge(*inst.ctx, inst.model).ok());
}

TEST(ExhaustiveMergerTest, SingleQueryTrivial) {
  Instance inst(1, 2);
  ExhaustiveMerger merger;
  auto result = merger.Merge(*inst.ctx, inst.model);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->partition, (Partition{{0}}));
}

/// The single-allocation property (Section 6.1.1): the optimum over all
/// covers (queries may repeat) is never better than the optimum over
/// partitions, so the two searches must agree on cost.
class SingleAllocationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SingleAllocationProperty, CoverOptimumEqualsPartitionOptimum) {
  Instance inst(4, GetParam());
  ExhaustiveMerger cover_search;
  PartitionMerger partition_search;
  auto cover = cover_search.Merge(*inst.ctx, inst.model);
  auto partition = partition_search.Merge(*inst.ctx, inst.model);
  ASSERT_TRUE(cover.ok());
  ASSERT_TRUE(partition.ok());
  EXPECT_NEAR(cover->cost, partition->cost, 1e-9);
  // And the cover optimum is actually a valid partition.
  EXPECT_TRUE(IsValidPartition(cover->partition, 4));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SingleAllocationProperty,
                         ::testing::Range<uint64_t>(300, 310));

// --------------------------------------------------------- PartitionMerger

TEST(PartitionMergerTest, EnumeratesBellManyCandidates) {
  Instance inst(6, 3);
  PartitionMerger merger;
  auto result = merger.Merge(*inst.ctx, inst.model);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->candidates, BellNumber(6));
}

TEST(PartitionMergerTest, RefusesHugeInputs) {
  Instance inst(20, 3);
  PartitionMerger merger(13);
  EXPECT_FALSE(merger.Merge(*inst.ctx, inst.model).ok());
}

TEST(PartitionMergerTest, ReturnsValidPartitionWithConsistentCost) {
  Instance inst(7, 4);
  PartitionMerger merger;
  auto result = merger.Merge(*inst.ctx, inst.model);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsValidPartition(result->partition, 7));
  EXPECT_NEAR(result->cost,
              inst.model.PartitionCost(*inst.ctx, result->partition), 1e-9);
}

TEST(PartitionMergerTest, IdenticalQueriesAllMerge) {
  QuerySet qs({Rect(0, 0, 5, 5), Rect(0, 0, 5, 5), Rect(0, 0, 5, 5)});
  UniformDensityEstimator est(1.0);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  const CostModel model{1, 1, 1, 0};
  PartitionMerger merger;
  auto result = merger.Merge(ctx, model);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->partition, (Partition{{0, 1, 2}}));
}

TEST(PartitionMergerTest, FarApartQueriesStaySeparate) {
  QuerySet qs({Rect(0, 0, 1, 1), Rect(500, 500, 501, 501),
               Rect(900, 0, 901, 1)});
  UniformDensityEstimator est(1.0);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  const CostModel model{0.1, 1, 1, 0};
  PartitionMerger merger;
  auto result = merger.Merge(ctx, model);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->partition.size(), 3u);
}

TEST(ExactPartitionSearchTest, WorksOnArbitraryIdSubsets) {
  Instance inst(8, 5);
  const std::vector<QueryId> subset = {1, 4, 6};
  const MergeOutcome outcome =
      ExactPartitionSearch(*inst.ctx, inst.model, subset);
  EXPECT_EQ(outcome.candidates, BellNumber(3));
  std::set<QueryId> covered;
  for (const auto& group : outcome.partition) {
    covered.insert(group.begin(), group.end());
  }
  EXPECT_EQ(covered, (std::set<QueryId>{1, 4, 6}));
}

// ------------------------------------------------------------ PairMerger

TEST(PairMergerTest, OptimalForTwoQueries) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Instance inst(2, 700 + seed);
    PairMerger pair;
    PartitionMerger exact;
    auto greedy = pair.Merge(*inst.ctx, inst.model);
    auto optimal = exact.Merge(*inst.ctx, inst.model);
    ASSERT_TRUE(greedy.ok());
    ASSERT_TRUE(optimal.ok());
    EXPECT_NEAR(greedy->cost, optimal->cost, 1e-9) << "seed " << seed;
  }
}

TEST(PairMergerTest, HeapAndTableVariantsAgree) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Instance inst(12, 800 + seed);
    PairMerger heap(true), table(false);
    auto a = heap.Merge(*inst.ctx, inst.model);
    auto b = table.Merge(*inst.ctx, inst.model);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NEAR(a->cost, b->cost, 1e-9) << "seed " << seed;
    // The variants must agree on the partition itself, not just its
    // cost — equal-benefit ties are broken by stable group ids in both.
    EXPECT_EQ(a->partition, b->partition) << "seed " << seed;
  }
}

TEST(PairMergerTest, TieBrokenBySmallestStableGroupId) {
  // An equally spaced chain of overlapping queries: by translation
  // symmetry every adjacent merge has a bit-identical benefit, and only
  // two of the four tied merges fire before the search stops. Both
  // profit-table variants must resolve each tie to the smallest live
  // pair — by stable group id, never by heap pop order or map iteration
  // artifacts. (The third pick is the regression: after two merges the
  // heap's pop reorganization has shuffled the tied entries, and a
  // benefit-only comparator surfaces (5,6) ahead of (4,5), diverging
  // from the table's ordered scan.)
  QuerySet qs({Rect(0, 0, 2, 1), Rect(1, 0, 3, 1), Rect(2, 0, 4, 1),
               Rect(3, 0, 5, 1), Rect(4, 0, 6, 1), Rect(5, 0, 7, 1),
               Rect(6, 0, 8, 1)});
  UniformDensityEstimator est(1.0);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  const CostModel model{1, 1, 0.5, 0};

  // The instance really is a tie: all adjacent merges are equally
  // beneficial, skip-a-step merges are worse.
  const double b01 = model.MergeBenefit(ctx, {0}, {1});
  ASSERT_GT(b01, 0.0);
  for (QueryId q = 1; q < 6; ++q) {
    ASSERT_EQ(model.MergeBenefit(ctx, {q}, {q + 1}), b01) << "pair " << q;
  }
  ASSERT_LT(model.MergeBenefit(ctx, {0}, {2}), b01);

  for (const bool use_heap : {true, false}) {
    PairMerger merger(use_heap);
    auto result = merger.Merge(ctx, model);
    ASSERT_TRUE(result.ok());
    const Partition expected = {{0, 1}, {2, 3}, {4, 5}, {6}};
    EXPECT_EQ(result->partition, expected)
        << (use_heap ? "heap" : "table")
        << " variant broke a tie away from the smallest live pair";
  }
}

TEST(PairMergerTest, NeverWorseThanInitialCost) {
  for (uint64_t seed = 0; seed < 10; ++seed) {
    Instance inst(15, 900 + seed);
    PairMerger merger;
    auto result = merger.Merge(*inst.ctx, inst.model);
    ASSERT_TRUE(result.ok());
    EXPECT_LE(result->cost, inst.model.InitialCost(*inst.ctx) + 1e-9);
    EXPECT_TRUE(IsValidPartition(result->partition, 15));
  }
}

TEST(PairMergerTest, MergesIdenticalQueriesFirst) {
  QuerySet qs({Rect(0, 0, 5, 5), Rect(0, 0, 5, 5), Rect(800, 800, 900, 900)});
  UniformDensityEstimator est(1.0);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  const CostModel model{1, 1, 1, 0};
  PairMerger merger;
  auto result = merger.Merge(ctx, model);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->partition.size(), 2u);
  EXPECT_EQ(result->partition[0], (QueryGroup{0, 1}));
}

TEST(PairMergerTest, MergeFromRespectsStartPartition) {
  Instance inst(6, 6);
  PairMerger merger;
  // Start from everything already in one group: no pair exists, so the
  // result is that single group.
  MergeOutcome outcome =
      merger.MergeFrom(*inst.ctx, inst.model, OneGroupPartition(6));
  EXPECT_EQ(outcome.partition.size(), 1u);
}

TEST(PairMergerTest, MissesGloballyOptimalTripleByDesign) {
  // The Figure 6 instance: greedy local decisions keep all queries
  // separate although merging all three is the optimum (Section 5.1).
  QuerySet qs({Rect(0, 1, 2, 2), Rect(1, 0, 2, 2), Rect(0, 0, 1, 1)});
  UniformDensityEstimator est(1.0);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  const CostModel model{10, 9, 4, 0};
  PairMerger pair;
  PartitionMerger exact;
  auto greedy = pair.Merge(ctx, model);
  auto optimal = exact.Merge(ctx, model);
  ASSERT_TRUE(greedy.ok());
  ASSERT_TRUE(optimal.ok());
  EXPECT_EQ(greedy->partition.size(), 3u);
  EXPECT_EQ(optimal->partition.size(), 1u);
  EXPECT_GT(greedy->cost, optimal->cost);
}

// -------------------------------------------------------- DirectedSearch

TEST(DirectedSearchTest, EscapesThePairMergingTrap) {
  // On the Figure 6 instance, the random restarts + extract moves find
  // the global optimum the greedy merger misses.
  QuerySet qs({Rect(0, 1, 2, 2), Rect(1, 0, 2, 2), Rect(0, 0, 1, 1)});
  UniformDensityEstimator est(1.0);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  const CostModel model{10, 9, 4, 0};
  DirectedSearchMerger merger(16, 7);
  auto result = merger.Merge(ctx, model);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->partition, (Partition{{0, 1, 2}}));
  EXPECT_DOUBLE_EQ(result->cost, 74.0);
}

TEST(DirectedSearchTest, DeterministicInSeed) {
  Instance a(10, 42), b(10, 42);
  DirectedSearchMerger m1(6, 5), m2(6, 5);
  auto r1 = m1.Merge(*a.ctx, a.model);
  auto r2 = m2.Merge(*b.ctx, b.model);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r1->partition, r2->partition);
}

TEST(DirectedSearchTest, NeverWorseThanPairMerging) {
  for (uint64_t seed = 0; seed < 8; ++seed) {
    Instance inst(10, 1100 + seed);
    PairMerger pair;
    DirectedSearchMerger directed(6, seed);
    auto p = pair.Merge(*inst.ctx, inst.model);
    auto d = directed.Merge(*inst.ctx, inst.model);
    ASSERT_TRUE(p.ok());
    ASSERT_TRUE(d.ok());
    // Restart 0 of the directed search IS pair-merging-like descent from
    // singletons with a superset of moves, so it can't end up worse.
    EXPECT_LE(d->cost, p->cost + 1e-9) << "seed " << seed;
    EXPECT_TRUE(IsValidPartition(d->partition, 10));
  }
}

// ------------------------------------------------------------ Clustering

TEST(ClusteringMergerTest, SeparatesFarComponentsExactly) {
  // Two tight pairs far apart: clustering should solve each exactly.
  QuerySet qs({Rect(0, 0, 2, 2), Rect(1, 1, 3, 3), Rect(800, 800, 802, 802),
               Rect(801, 801, 803, 803)});
  UniformDensityEstimator est(1.0);
  BoundingRectProcedure proc;
  MergeContext ctx(&qs, &est, &proc);
  const CostModel model{10, 1, 1, 0};
  ClusteringMerger clustering;
  PartitionMerger exact;
  auto c = clustering.Merge(ctx, model);
  auto e = exact.Merge(ctx, model);
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE(e.ok());
  EXPECT_NEAR(c->cost, e->cost, 1e-9);
  EXPECT_TRUE(IsValidPartition(c->partition, 4));
}

TEST(ClusteringMergerTest, LooseAndTightBoundsBothValid) {
  for (uint64_t seed = 0; seed < 6; ++seed) {
    Instance inst(12, 1300 + seed);
    ClusteringMerger tight(10, true), loose(10, false);
    auto t = tight.Merge(*inst.ctx, inst.model);
    auto l = loose.Merge(*inst.ctx, inst.model);
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(l.ok());
    EXPECT_TRUE(IsValidPartition(t->partition, 12));
    EXPECT_TRUE(IsValidPartition(l->partition, 12));
    EXPECT_LE(t->cost, inst.model.InitialCost(*inst.ctx) + 1e-9);
  }
}

TEST(ClusteringMergerTest, FallsBackToGreedyOnLargeComponents) {
  Instance inst(20, 9);
  ClusteringMerger clustering(4);  // Force greedy path for components > 4.
  auto result = clustering.Merge(*inst.ctx, inst.model);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(IsValidPartition(result->partition, 20));
}

// -------------------------------------------- Heuristics vs exact optimum

/// Property sweep backing Figures 16/17: on small instances the
/// heuristics stay within the [optimal, initial] bracket.
class HeuristicBracket : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeuristicBracket, AllHeuristicsWithinBracket) {
  Instance inst(8, GetParam());
  PartitionMerger exact;
  auto optimal = exact.Merge(*inst.ctx, inst.model);
  ASSERT_TRUE(optimal.ok());
  const double initial = inst.model.InitialCost(*inst.ctx);

  PairMerger pair;
  DirectedSearchMerger directed(6, GetParam());
  ClusteringMerger clustering;
  for (const Merger* merger :
       std::initializer_list<const Merger*>{&pair, &directed, &clustering}) {
    auto result = merger->Merge(*inst.ctx, inst.model);
    ASSERT_TRUE(result.ok()) << merger->name();
    EXPECT_GE(result->cost, optimal->cost - 1e-9) << merger->name();
    EXPECT_LE(result->cost, initial + 1e-9) << merger->name();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeuristicBracket,
                         ::testing::Range<uint64_t>(1400, 1420));

}  // namespace
}  // namespace qsp
