// Arena / ArenaAllocator (util/arena.h): the bump allocator behind the
// MergeContext group memo. The properties that matter: chunks recycle
// (footprint bounded at the live high-water mark under churn), block
// growth is geometric, and std containers run correctly on top of it.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/arena.h"

namespace qsp {
namespace {

TEST(ArenaTest, AllocationsAreDistinctAlignedAndWritable) {
  Arena arena;
  std::vector<void*> ptrs;
  for (int i = 0; i < 1000; ++i) {
    void* p = arena.Allocate(24, 8);
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % 8, 0u);
    std::memset(p, 0xAB, 24);
    ptrs.push_back(p);
  }
  std::sort(ptrs.begin(), ptrs.end());
  EXPECT_EQ(std::adjacent_find(ptrs.begin(), ptrs.end()), ptrs.end())
      << "two allocations returned the same chunk";
  EXPECT_GE(arena.bytes_served(), 24u * 1000u);
}

TEST(ArenaTest, FreeListRecyclesExactSizes) {
  Arena arena;
  void* a = arena.Allocate(64, 8);
  void* b = arena.Allocate(64, 8);
  arena.Deallocate(a, 64, 8);
  arena.Deallocate(b, 64, 8);
  const size_t served_before = arena.bytes_served();
  // LIFO recycling: the most recently freed chunk comes back first, and
  // the bump pointer does not advance.
  EXPECT_EQ(arena.Allocate(64, 8), b);
  EXPECT_EQ(arena.Allocate(64, 8), a);
  EXPECT_EQ(arena.bytes_served(), served_before);
  // A different size class misses the free list and bumps.
  void* c = arena.Allocate(128, 8);
  EXPECT_NE(c, a);
  EXPECT_NE(c, b);
  EXPECT_GT(arena.bytes_served(), served_before);
}

TEST(ArenaTest, ChurnFootprintStaysAtHighWaterMark) {
  Arena arena;
  // Sustained alloc/free churn of one size class: after warmup, every
  // allocation is a recycled chunk, so bytes_served stops growing — the
  // bound the live service's evicting memo relies on.
  std::vector<void*> live;
  for (int i = 0; i < 100; ++i) live.push_back(arena.Allocate(48, 8));
  const size_t high_water = arena.bytes_served();
  for (int round = 0; round < 50; ++round) {
    for (void* p : live) arena.Deallocate(p, 48, 8);
    live.clear();
    for (int i = 0; i < 100; ++i) live.push_back(arena.Allocate(48, 8));
  }
  EXPECT_EQ(arena.bytes_served(), high_water);
}

TEST(ArenaTest, BlocksGrowGeometrically) {
  Arena arena(1024);
  for (int i = 0; i < 10000; ++i) arena.Allocate(32, 8);
  // 10000 * 32 bytes through doubling blocks needs only a handful of
  // system allocations.
  EXPECT_LE(arena.blocks(), 12u);
}

TEST(ArenaTest, OversizedRequestGetsItsOwnBlock) {
  Arena arena(1024);
  void* big = arena.Allocate(1 << 21, 8);  // 2 MiB, above the block cap
  ASSERT_NE(big, nullptr);
  std::memset(big, 0x5A, 1 << 21);
  // The arena keeps serving small requests afterwards.
  EXPECT_NE(arena.Allocate(16, 8), nullptr);
}

TEST(ArenaAllocatorTest, UnorderedMapRunsOnTheArena) {
  Arena arena;
  using Alloc = ArenaAllocator<std::pair<const int, std::string>>;
  std::unordered_map<int, std::string, std::hash<int>, std::equal_to<int>,
                     Alloc>
      map{Alloc(&arena)};
  for (int i = 0; i < 500; ++i) map.emplace(i, "value-" + std::to_string(i));
  EXPECT_EQ(map.size(), 500u);
  EXPECT_GT(arena.bytes_served(), 0u);
  for (int i = 0; i < 500; i += 2) map.erase(i);
  EXPECT_EQ(map.size(), 250u);
  // Erased nodes recycle: reinserting the same keys reuses freed chunks,
  // so served bytes grow at most by rehash bucket arrays (none here).
  const size_t served = arena.bytes_served();
  for (int i = 0; i < 500; i += 2) map.emplace(i, "again");
  EXPECT_EQ(map.size(), 500u);
  EXPECT_EQ(arena.bytes_served(), served);
  for (int i = 0; i < 500; ++i) {
    ASSERT_EQ(map.count(i), 1u) << "key " << i;
  }
  // Allocator equality follows arena identity (required for swaps).
  Arena other;
  EXPECT_TRUE(Alloc(&arena) == Alloc(&arena));
  EXPECT_TRUE(Alloc(&arena) != Alloc(&other));
}

}  // namespace
}  // namespace qsp
