// ShardedPlanner (merge/sharded_planner.h): the sharded parallel
// planning layer (DESIGN.md §12). The contracts under test: shards=1 is
// byte-identical to the wrapped merger for every merger kind; multi-
// shard plans are valid partitions whose reported cost matches a
// from-scratch recomputation on a fresh context; outputs (including the
// shard attribution) are deterministic across runs and thread counts;
// and boundless queries always flow through the seam pass.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "cost/cost_model.h"
#include "exec/thread_pool.h"
#include "merge/clustering_merger.h"
#include "merge/directed_search_merger.h"
#include "merge/pair_merger.h"
#include "merge/sharded_planner.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "stats/size_estimator.h"
#include "util/rng.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

constexpr uint64_t kSeeds[] = {5, 17};

struct Instance {
  QuerySet queries;
  std::unique_ptr<SizeEstimator> estimator;
  std::unique_ptr<MergeProcedure> procedure;
  std::unique_ptr<MergeContext> ctx;

  Instance(size_t n, uint64_t seed, size_t empty_rects = 0) {
    Rng rng(seed);
    std::vector<Rect> rects =
        GenerateQueries(bench::Fig16WorkloadConfig(n), &rng);
    for (size_t i = 0; i < empty_rects; ++i) rects.push_back(Rect::Empty());
    queries = QuerySet(rects);
    estimator = std::make_unique<UniformDensityEstimator>(bench::kFig16Density);
    procedure = std::make_unique<BoundingRectProcedure>();
    ctx = std::make_unique<MergeContext>(&queries, estimator.get(),
                                         procedure.get());
  }
};

struct MergerCase {
  std::string name;
  std::unique_ptr<Merger> (*make)(uint64_t seed);
};

const MergerCase kMergers[] = {
    {"pair-merging",
     [](uint64_t) -> std::unique_ptr<Merger> {
       return std::make_unique<PairMerger>(/*use_heap=*/true, /*pruning=*/true);
     }},
    {"clustering",
     [](uint64_t) -> std::unique_ptr<Merger> {
       return std::make_unique<ClusteringMerger>(
           /*exact_component_limit=*/10, /*tight_bound=*/true,
           /*pruning=*/true);
     }},
    {"directed-search",
     [](uint64_t seed) -> std::unique_ptr<Merger> {
       return std::make_unique<DirectedSearchMerger>(4, seed, /*pruning=*/true);
     }},
};

constexpr ShardAssign kAssigns[] = {ShardAssign::kGrid,
                                    ShardAssign::kBalanced};

const char* AssignName(ShardAssign assign) {
  return assign == ShardAssign::kGrid ? "grid" : "balanced";
}

// shards=1 must be the wrapped merger, byte for byte: same partition,
// same cost, same effort counters — the delegation makes the knob's
// default a provable no-op. Delegation happens before assignment runs,
// so both assignment modes must take it.
TEST(ShardedPlannerTest, ShardsOneIsByteIdenticalToUnsharded) {
  const CostModel model = bench::Fig16CostModel();
  for (const MergerCase& mc : kMergers) {
    for (const uint64_t seed : kSeeds) {
      for (const ShardAssign assign : kAssigns) {
        const std::string label = mc.name + "/seed" + std::to_string(seed) +
                                  "/" + AssignName(assign);
        Instance plain_inst(60, seed);
        auto plain = mc.make(seed)->Merge(*plain_inst.ctx, model);
        ASSERT_TRUE(plain.ok()) << label;

        Instance sharded_inst(60, seed);
        const auto inner = mc.make(seed);
        const ShardedPlanner planner(
            inner.get(),
            ShardedPlanner::Options{/*shards=*/1, assign, /*pruning=*/true});
        auto sharded = planner.Plan(*sharded_inst.ctx, model);
        ASSERT_TRUE(sharded.ok()) << label;

        EXPECT_EQ(sharded->outcome.partition, plain->partition) << label;
        EXPECT_EQ(sharded->outcome.cost, plain->cost) << label;
        EXPECT_EQ(sharded->outcome.candidates, plain->candidates) << label;
        // All groups attributed to the single shard.
        ASSERT_EQ(sharded->group_shard.size(),
                  sharded->outcome.partition.size())
            << label;
        for (int32_t s : sharded->group_shard) EXPECT_EQ(s, 0) << label;
        EXPECT_EQ(sharded->cells_x, 1) << label;
        EXPECT_EQ(sharded->cells_y, 1) << label;
      }
    }
  }
}

// Multi-shard plans: valid partitions, cost verified against a fresh
// context (the sim/churn invariant-checker idea — the planner must not
// be grading its own homework through a stale memo), attribution
// shaped correctly, and cost within a sane factor of the unsharded plan.
TEST(ShardedPlannerTest, MultiShardPlansAreValidAndCostVerified) {
  const CostModel model = bench::Fig16CostModel();
  for (const MergerCase& mc : kMergers) {
    for (const uint64_t seed : kSeeds) {
      for (const int shards : {4, 9}) {
        for (const ShardAssign assign : kAssigns) {
          const std::string label = mc.name + "/seed" + std::to_string(seed) +
                                    "/shards" + std::to_string(shards) + "/" +
                                    AssignName(assign);
          Instance inst(120, seed);
          const size_t n = inst.queries.size();
          const auto inner = mc.make(seed);
          const ShardedPlanner planner(
              inner.get(),
              ShardedPlanner::Options{shards, assign, /*pruning=*/true});
          auto plan = planner.Plan(*inst.ctx, model);
          ASSERT_TRUE(plan.ok()) << label;

          EXPECT_TRUE(IsValidPartition(plan->outcome.partition, n)) << label;
          ASSERT_EQ(plan->group_shard.size(), plan->outcome.partition.size())
              << label;
          const int num_shards = plan->layout.num_shards;
          EXPECT_GE(num_shards, 1) << label;
          if (assign == ShardAssign::kBalanced) {
            // Balanced treats the request as a budget (the extent floor
            // may stop the bisection early); the grid rounds to
            // cells_x * cells_y.
            EXPECT_LE(num_shards, shards) << label;
          } else {
            EXPECT_EQ(num_shards, plan->cells_x * plan->cells_y) << label;
            EXPECT_LE(num_shards, shards) << label;
          }
          for (int32_t s : plan->group_shard) {
            EXPECT_GE(s, ShardedMergeOutcome::kSeamGroup) << label;
            EXPECT_LT(s, num_shards) << label;
          }
          size_t shard_queries = 0, shard_seam = 0;
          for (const ShardStats& stats : plan->shards) {
            shard_queries += stats.queries;
            shard_seam += stats.seam_groups;
          }
          EXPECT_EQ(shard_queries, n) << label;
          EXPECT_EQ(shard_seam, plan->seam_groups_in) << label;
          // Every query is assigned, and the per-shard accounting in the
          // layout matches what the planner actually built.
          ASSERT_EQ(plan->layout.shard_of.size(), n) << label;
          EXPECT_GT(plan->imbalance, 0.0) << label;

          // From-scratch cost recomputation on a fresh context.
          Instance fresh(120, seed);
          EXPECT_EQ(plan->outcome.cost,
                    model.PartitionCost(*fresh.ctx, plan->outcome.partition))
              << label;

          // Locality sanity: sharding trades a little plan quality for
          // parallel planning; it must never be wildly worse than the
          // unsharded plan (the bench gates 2% at scale) nor beat the
          // no-merge baseline's ceiling.
          auto unsharded = mc.make(seed)->Merge(*fresh.ctx, model);
          ASSERT_TRUE(unsharded.ok()) << label;
          EXPECT_LE(plan->outcome.cost, unsharded->cost * 1.10) << label;
          EXPECT_LE(plan->outcome.cost,
                    model.InitialCost(*fresh.ctx) * (1.0 + 1e-9))
              << label;
        }
      }
    }
  }
}

// Determinism: identical outputs (partition, cost, attribution) on
// repeated runs and across exec thread counts — shard fan-out must not
// leak scheduling into the plan.
TEST(ShardedPlannerTest, MultiShardOutputsAreThreadCountInvariant) {
  const CostModel model = bench::Fig16CostModel();
  for (const MergerCase& mc : kMergers) {
    for (const ShardAssign assign : kAssigns) {
      Partition baseline_partition;
      std::vector<int32_t> baseline_shard;
      double baseline_cost = 0.0;
      for (const int threads : {1, 4}) {
        exec::SetDefaultThreads(threads);
        Instance inst(100, 23);
        const auto inner = mc.make(23);
        const ShardedPlanner planner(
            inner.get(),
            ShardedPlanner::Options{/*shards=*/4, assign, /*pruning=*/true});
        auto plan = planner.Plan(*inst.ctx, model);
        const std::string label = std::string(mc.name) + "/" +
                                  AssignName(assign) + " threads " +
                                  std::to_string(threads);
        ASSERT_TRUE(plan.ok()) << label;
        if (threads == 1) {
          baseline_partition = plan->outcome.partition;
          baseline_shard = plan->group_shard;
          baseline_cost = plan->outcome.cost;
        } else {
          EXPECT_EQ(plan->outcome.partition, baseline_partition) << label;
          EXPECT_EQ(plan->group_shard, baseline_shard) << label;
          EXPECT_EQ(plan->outcome.cost, baseline_cost) << label;
        }
      }
      exec::SetDefaultThreads(1);
    }
  }
}

// Boundless queries have no shard home: they park in shard 0 but their
// groups are always seam-classified, so cross-shard reconciliation sees
// them (the grid boundless-pair bugfix end to end).
TEST(ShardedPlannerTest, BoundlessQueriesFlowThroughSeamPass) {
  const CostModel model = bench::Fig16CostModel();
  for (const ShardAssign assign : kAssigns) {
    Instance inst(80, 31, /*empty_rects=*/2);
    const size_t n = inst.queries.size();
    const PairMerger inner(/*use_heap=*/true, /*pruning=*/true);
    const ShardedPlanner planner(
        &inner, ShardedPlanner::Options{/*shards=*/4, assign,
                                        /*pruning=*/true});
    auto plan = planner.Plan(*inst.ctx, model);
    ASSERT_TRUE(plan.ok()) << AssignName(assign);
    EXPECT_TRUE(IsValidPartition(plan->outcome.partition, n))
        << AssignName(assign);
    // Find the groups holding the two empty-rect queries (the last ids).
    for (QueryId empty_id :
         {static_cast<QueryId>(n - 2), static_cast<QueryId>(n - 1)}) {
      bool found = false;
      for (size_t g = 0; g < plan->outcome.partition.size(); ++g) {
        const QueryGroup& group = plan->outcome.partition[g];
        if (std::find(group.begin(), group.end(), empty_id) == group.end()) {
          continue;
        }
        found = true;
        EXPECT_EQ(plan->group_shard[g], ShardedMergeOutcome::kSeamGroup)
            << AssignName(assign) << ": group of boundless query " << empty_id
            << " was not seam-classified";
      }
      EXPECT_TRUE(found) << AssignName(assign) << ": boundless query "
                         << empty_id << " missing";
    }
  }
}

}  // namespace
}  // namespace qsp
