// obs/plan_explain: the EXPLAIN must report exactly what the planner
// charged — per-group terms that sum to the group's GroupCost, group
// costs that sum to the plan's estimated cost (within 1e-9), bound stats
// from the BenefitBounder, and a JSON form that round-trips through
// util/json_parser.
#include "obs/plan_explain.h"

#include <cmath>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "bench/bench_common.h"
#include "core/subscription_service.h"
#include "merge/pair_merger.h"
#include "relation/generator.h"
#include "relation/grid_index.h"
#include "stats/exact_estimator.h"
#include "util/json_parser.h"
#include "util/rng.h"

namespace qsp {
namespace {

constexpr double kTol = 1e-9;

/// The fig16 evaluation instance the qsp_explain CLI defaults to.
bench::Instance MakeFig16Instance(size_t n = 12, uint64_t seed = 12000) {
  return bench::Instance(bench::Fig16WorkloadConfig(n), seed,
                         bench::kFig16Density);
}

TEST(PlanExplain, GroupTermsSumToGroupCost) {
  bench::Instance instance = MakeFig16Instance();
  const CostModel model = bench::Fig16CostModel();
  PairMerger merger;
  Result<MergeOutcome> outcome = merger.Merge(*instance.ctx, model);
  ASSERT_TRUE(outcome.ok());

  obs::PlanExplainer explainer(instance.ctx.get(), model);
  const obs::PlanExplain explain = explainer.Explain(outcome->partition);

  ASSERT_EQ(outcome->partition.size(), explain.groups.size());
  for (const obs::GroupExplain& group : explain.groups) {
    const double term_sum = group.message_cost + group.check_cost +
                            group.size_cost + group.irrelevant_cost;
    EXPECT_NEAR(term_sum, group.total_cost, kTol);
    const GroupStats& stats = instance.ctx->Stats(group.members);
    EXPECT_NEAR(model.GroupCost(stats), group.total_cost, kTol);
    // Single-channel: no k_check share.
    EXPECT_DOUBLE_EQ(0.0, group.check_cost);
  }
}

TEST(PlanExplain, PlanTotalMatchesMergerCost) {
  bench::Instance instance = MakeFig16Instance();
  const CostModel model = bench::Fig16CostModel();
  PairMerger merger;
  Result<MergeOutcome> outcome = merger.Merge(*instance.ctx, model);
  ASSERT_TRUE(outcome.ok());

  obs::PlanExplainer explainer(instance.ctx.get(), model);
  const obs::PlanExplain explain = explainer.Explain(outcome->partition);

  EXPECT_NEAR(outcome->cost, explain.total_cost, kTol);
  EXPECT_EQ(1u, explain.num_channels);
  EXPECT_EQ(outcome->partition.size(), explain.num_groups);
  EXPECT_EQ(instance.queries.size(), explain.num_queries);
}

TEST(PlanExplain, BoundStatsAndMbr) {
  bench::Instance instance = MakeFig16Instance();
  const CostModel model = bench::Fig16CostModel();
  PairMerger merger(/*use_heap=*/true, /*pruning=*/true);
  Result<MergeOutcome> outcome = merger.Merge(*instance.ctx, model);
  ASSERT_TRUE(outcome.ok());

  obs::PlanExplainer explainer(instance.ctx.get(), model);
  explainer.set_refinement(outcome->bounds_refined, outcome->bounds_pruned);
  const obs::PlanExplain explain = explainer.Explain(outcome->partition);

  EXPECT_EQ(outcome->bounds_refined, explain.bounds_refined);
  EXPECT_EQ(outcome->bounds_pruned, explain.bounds_pruned);
  EXPECT_GT(explain.bounds_pruned, 0u);

  for (const obs::GroupExplain& group : explain.groups) {
    // The admissible lower bound can never exceed the true merged size /
    // cost (that is what makes pruning on it safe).
    EXPECT_LE(group.size_lower_bound, group.est_size + kTol);
    EXPECT_LE(group.cost_lower_bound, group.total_cost + kTol);
    EXPECT_GT(group.size_lower_bound, 0.0);
    // The MBR must contain every member rectangle.
    for (QueryId id : group.members) {
      EXPECT_TRUE(group.mbr.Contains(instance.queries.rect(id)));
    }
  }
}

TEST(PlanExplain, ExactContextFillsExactSize) {
  bench::Instance instance = MakeFig16Instance();
  const CostModel model = bench::Fig16CostModel();
  PairMerger merger;
  Result<MergeOutcome> outcome = merger.Merge(*instance.ctx, model);
  ASSERT_TRUE(outcome.ok());

  Rng rng(7);
  TableGeneratorConfig tconfig;
  tconfig.domain = Rect(0, 0, 1000, 1000);
  tconfig.num_objects = 2000;
  Table table = GenerateTable(tconfig, &rng);
  GridIndex index(table, tconfig.domain);
  ExactEstimator exact(&index);
  MergeContext exact_ctx(&instance.queries, &exact, &instance.procedure);

  obs::PlanExplainer explainer(instance.ctx.get(), model);
  const obs::PlanExplain without = explainer.Explain(outcome->partition);
  for (const obs::GroupExplain& group : without.groups) {
    EXPECT_LT(group.exact_size, 0.0);  // Unavailable.
  }

  explainer.set_exact_context(&exact_ctx);
  const obs::PlanExplain with = explainer.Explain(outcome->partition);
  for (const obs::GroupExplain& group : with.groups) {
    EXPECT_GE(group.exact_size, 0.0);
    EXPECT_NEAR(exact_ctx.Stats(group.members).size, group.exact_size, kTol);
  }
}

TEST(PlanExplain, MultiChannelTotalsMatchServiceReport) {
  // A populated multi-channel service with a per-client k_check charge:
  // the explainer must reconstruct the same total the allocator reported.
  Rng rng(11);
  TableGeneratorConfig tconfig;
  tconfig.domain = Rect(0, 0, 1000, 1000);
  tconfig.num_objects = 3000;
  Table table = GenerateTable(tconfig, &rng);

  ServiceConfig config;
  config.cost_model = bench::AllocCostModel();
  config.cost_model.k_d = 5.0;
  config.num_channels = 3;
  config.estimator = EstimatorKind::kExact;
  SubscriptionService service(std::move(table), tconfig.domain, config);

  const QueryGenConfig workload = bench::Fig16WorkloadConfig(12);
  Rng qrng(23);
  const auto rects = GenerateQueries(workload, &qrng);
  for (int c = 0; c < 6; ++c) service.AddClient();
  for (size_t i = 0; i < rects.size(); ++i) {
    service.Subscribe(static_cast<ClientId>(i % 6), rects[i]);
  }
  Result<PlanReport> report = service.Plan();
  ASSERT_TRUE(report.ok());

  obs::PlanExplainer explainer(service.context(), config.cost_model);
  explainer.set_initial_cost(report->initial_cost);
  explainer.set_refinement(report->bounds_refined, report->bounds_pruned);
  const obs::PlanExplain explain =
      explainer.Explain(report->plan, service.clients());

  EXPECT_NEAR(report->estimated_cost, explain.total_cost, kTol);
  EXPECT_EQ(report->num_groups, explain.num_groups);
  EXPECT_EQ(report->bounds_refined, explain.bounds_refined);

  double group_and_channel_sum = 0.0;
  bool saw_check_cost = false;
  for (const obs::ChannelExplain& channel : explain.channels) {
    group_and_channel_sum += channel.total_cost;
    if (!channel.clients.empty()) {
      EXPECT_DOUBLE_EQ(config.cost_model.k_d, channel.channel_cost);
    }
  }
  for (const obs::GroupExplain& group : explain.groups) {
    const double term_sum = group.message_cost + group.check_cost +
                            group.size_cost + group.irrelevant_cost;
    EXPECT_NEAR(term_sum, group.total_cost, kTol);
    if (group.check_cost > 0.0) saw_check_cost = true;
  }
  EXPECT_NEAR(group_and_channel_sum, explain.total_cost, kTol);
  // k_check = 3 and populated channels: the header-check share must show.
  EXPECT_TRUE(saw_check_cost);
}

TEST(PlanExplain, JsonRoundTripsAndMatchesText) {
  bench::Instance instance = MakeFig16Instance();
  const CostModel model = bench::Fig16CostModel();
  PairMerger merger;
  Result<MergeOutcome> outcome = merger.Merge(*instance.ctx, model);
  ASSERT_TRUE(outcome.ok());

  obs::PlanExplainer explainer(instance.ctx.get(), model);
  explainer.AddLabel("scenario", "fig16");
  explainer.AddLabel("merger", "pair");
  explainer.set_initial_cost(model.InitialCost(*instance.ctx));
  const obs::PlanExplain explain = explainer.Explain(outcome->partition);

  Result<JsonValue> parsed = ParseJson(explain.ToJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const JsonValue& doc = parsed.value();

  EXPECT_EQ("fig16", doc.Find("labels")->Find("scenario")->AsString());
  EXPECT_NEAR(explain.total_cost, doc.Find("total_cost")->AsNumber(), kTol);
  const auto& groups = doc.Find("groups")->AsArray();
  ASSERT_EQ(explain.groups.size(), groups.size());
  for (size_t i = 0; i < groups.size(); ++i) {
    const JsonValue& g = groups[i];
    const double term_sum = g.Find("message_cost")->AsNumber() +
                            g.Find("check_cost")->AsNumber() +
                            g.Find("size_cost")->AsNumber() +
                            g.Find("irrelevant_cost")->AsNumber();
    EXPECT_NEAR(term_sum, g.Find("total_cost")->AsNumber(), kTol);
    ASSERT_NE(nullptr, g.Find("members"));
    EXPECT_EQ(explain.groups[i].members.size(),
              g.Find("members")->AsArray().size());
  }

  // The text form carries the same headline numbers.
  const std::string text = explain.ToText();
  EXPECT_NE(std::string::npos, text.find("=== plan explain ==="));
  EXPECT_NE(std::string::npos, text.find("scenario"));
  EXPECT_NE(std::string::npos, text.find("bounds refined"));
}

TEST(PlanExplain, TextIsDeterministic) {
  bench::Instance instance = MakeFig16Instance();
  const CostModel model = bench::Fig16CostModel();
  PairMerger merger;
  Result<MergeOutcome> outcome = merger.Merge(*instance.ctx, model);
  ASSERT_TRUE(outcome.ok());
  obs::PlanExplainer explainer(instance.ctx.get(), model);
  const std::string a = explainer.Explain(outcome->partition).ToText();
  const std::string b = explainer.Explain(outcome->partition).ToText();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace qsp
