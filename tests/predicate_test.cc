#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "query/predicate.h"
#include "relation/generator.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "util/rng.h"

namespace qsp {
namespace {

Schema TestSchema() {
  return Schema({{"longitude", ValueType::kDouble},
                 {"latitude", ValueType::kDouble},
                 {"name", ValueType::kString},
                 {"count", ValueType::kInt64}});
}

std::vector<Value> Row(double lon, double lat, const std::string& name,
                       int64_t count) {
  return {lon, lat, name, count};
}

// ----------------------------------------------------------- AST basics

TEST(PredicateAstTest, ToStringRendersSqlLike) {
  auto p = Predicate::And(
      Predicate::Compare("latitude", CompareOp::kGe, 2.0),
      Predicate::Compare("latitude", CompareOp::kLe, 40.0));
  EXPECT_EQ(p->ToString(), "(latitude >= 2 AND latitude <= 40)");
  EXPECT_EQ(Predicate::True()->ToString(), "TRUE");
  EXPECT_EQ(
      Predicate::Not(Predicate::Compare("name", CompareOp::kEq,
                                        std::string("x")))
          ->ToString(),
      "NOT name = 'x'");
}

TEST(PredicateAstTest, BetweenExpandsToConjunction) {
  auto p = Predicate::Between("longitude", 3.0, 41.0);
  EXPECT_EQ(p->kind(), Predicate::Kind::kAnd);
  EXPECT_EQ(p->ToString(), "(longitude >= 3 AND longitude <= 41)");
}

// ----------------------------------------------------------------- Bind

TEST(BoundPredicateTest, ComparisonsOnEveryType) {
  const Schema schema = TestSchema();
  auto bind = [&](PredicateRef p) {
    auto bound = BoundPredicate::Bind(p, schema);
    EXPECT_TRUE(bound.ok());
    return bound.value();
  };
  const auto row = Row(10, 20, "bravo", 7);

  EXPECT_TRUE(bind(Predicate::Compare("longitude", CompareOp::kEq, 10.0))
                  .Matches(row));
  EXPECT_TRUE(bind(Predicate::Compare("latitude", CompareOp::kGt, 15.0))
                  .Matches(row));
  EXPECT_TRUE(bind(Predicate::Compare("name", CompareOp::kGe,
                                      std::string("alpha")))
                  .Matches(row));
  EXPECT_FALSE(bind(Predicate::Compare("name", CompareOp::kLt,
                                       std::string("alpha")))
                   .Matches(row));
  // Int column compared against a double constant: numeric comparison.
  EXPECT_TRUE(bind(Predicate::Compare("count", CompareOp::kLe, 7.5))
                  .Matches(row));
}

TEST(BoundPredicateTest, BooleanConnectives) {
  const Schema schema = TestSchema();
  auto p = Predicate::Or(
      Predicate::And(Predicate::Compare("longitude", CompareOp::kLt, 5.0),
                     Predicate::Compare("latitude", CompareOp::kLt, 5.0)),
      Predicate::Not(
          Predicate::Compare("name", CompareOp::kEq, std::string("x"))));
  auto bound = BoundPredicate::Bind(p, schema);
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->Matches(Row(1, 1, "x", 0)));    // Left arm.
  EXPECT_TRUE(bound->Matches(Row(10, 10, "y", 0)));  // Right arm.
  EXPECT_FALSE(bound->Matches(Row(10, 10, "x", 0)));
}

TEST(BoundPredicateTest, TruePredicateMatchesEverything) {
  auto bound = BoundPredicate::Bind(Predicate::True(), TestSchema());
  ASSERT_TRUE(bound.ok());
  EXPECT_TRUE(bound->Matches(Row(0, 0, "", 0)));
}

TEST(BoundPredicateTest, RejectsUnknownColumn) {
  auto bound = BoundPredicate::Bind(
      Predicate::Compare("altitude", CompareOp::kEq, 1.0), TestSchema());
  EXPECT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kNotFound);
}

TEST(BoundPredicateTest, RejectsTypeMismatch) {
  auto bound = BoundPredicate::Bind(
      Predicate::Compare("name", CompareOp::kEq, 5.0), TestSchema());
  EXPECT_FALSE(bound.ok());
  auto bound2 = BoundPredicate::Bind(
      Predicate::Compare("longitude", CompareOp::kEq, std::string("x")),
      TestSchema());
  EXPECT_FALSE(bound2.ok());
}

TEST(BoundPredicateTest, WorksWithTableScanWhere) {
  Table table(Schema::Geographic(0));
  ASSERT_TRUE(table.Insert({1.0, 1.0}).ok());
  ASSERT_TRUE(table.Insert({5.0, 5.0}).ok());
  ASSERT_TRUE(table.Insert({9.0, 9.0}).ok());
  auto parsed = ParsePredicate("longitude >= 2 AND latitude <= 8");
  ASSERT_TRUE(parsed.ok());
  auto bound = BoundPredicate::Bind(parsed.value(), table.schema());
  ASSERT_TRUE(bound.ok());
  const auto rows = table.ScanWhere(
      [&](const std::vector<Value>& row) { return bound->Matches(row); });
  EXPECT_EQ(rows, (std::vector<RowId>{1}));
}

// --------------------------------------------------------- ExtractRange

TEST(ExtractRangeTest, PaperSectionOneQueries) {
  // sigma_{2 <= A <= 40} with A = longitude over an unbounded-ish domain.
  const Schema schema = Schema::Geographic(0);
  const Rect domain(0, 0, 100, 100);
  auto p = ParsePredicate("longitude BETWEEN 2 AND 40");
  ASSERT_TRUE(p.ok());
  auto rect = ExtractRange(p.value(), schema, domain);
  ASSERT_TRUE(rect.ok());
  EXPECT_EQ(rect.value(), Rect(2, 0, 40, 100));
}

TEST(ExtractRangeTest, FullGeographicQuery) {
  const Schema schema = Schema::Geographic(0);
  auto p = ParsePredicate(
      "latitude >= 10 AND latitude <= 30 AND longitude >= 5 AND "
      "longitude <= 25");
  ASSERT_TRUE(p.ok());
  auto rect = ExtractRange(p.value(), schema, Rect(0, 0, 100, 100));
  ASSERT_TRUE(rect.ok());
  EXPECT_EQ(rect.value(), Rect(5, 10, 25, 30));
}

TEST(ExtractRangeTest, RedundantConstraintsTighten) {
  const Schema schema = Schema::Geographic(0);
  auto p = ParsePredicate("longitude <= 50 AND longitude <= 30");
  ASSERT_TRUE(p.ok());
  auto rect = ExtractRange(p.value(), schema, Rect(0, 0, 100, 100));
  ASSERT_TRUE(rect.ok());
  EXPECT_DOUBLE_EQ(rect->x_hi(), 30.0);
}

TEST(ExtractRangeTest, ContradictionYieldsEmptyRect) {
  const Schema schema = Schema::Geographic(0);
  auto p = ParsePredicate("longitude >= 60 AND longitude <= 40");
  ASSERT_TRUE(p.ok());
  auto rect = ExtractRange(p.value(), schema, Rect(0, 0, 100, 100));
  ASSERT_TRUE(rect.ok());
  EXPECT_TRUE(rect->IsEmpty());
}

TEST(ExtractRangeTest, EqualityPinsAxis) {
  const Schema schema = Schema::Geographic(0);
  auto p = ParsePredicate("longitude = 42");
  ASSERT_TRUE(p.ok());
  auto rect = ExtractRange(p.value(), schema, Rect(0, 0, 100, 100));
  ASSERT_TRUE(rect.ok());
  EXPECT_DOUBLE_EQ(rect->x_lo(), 42.0);
  EXPECT_DOUBLE_EQ(rect->x_hi(), 42.0);
}

TEST(ExtractRangeTest, RejectsDisjunctionNegationPayloadColumns) {
  const Schema schema = Schema::Geographic(1);
  const Rect domain(0, 0, 100, 100);
  auto reject = [&](const std::string& text) {
    auto p = ParsePredicate(text);
    ASSERT_TRUE(p.ok()) << text;
    EXPECT_FALSE(ExtractRange(p.value(), schema, domain).ok()) << text;
  };
  reject("longitude <= 5 OR latitude <= 5");
  reject("NOT longitude <= 5");
  reject("attr0 = 'tank'");
  reject("longitude != 5");
}

// ---------------------------------------------------------------- Parser

TEST(ParsePredicateTest, PrecedenceAndParentheses) {
  auto p = ParsePredicate("a <= 1 OR b <= 2 AND c <= 3");
  ASSERT_TRUE(p.ok());
  // AND binds tighter than OR.
  EXPECT_EQ(p.value()->ToString(), "(a <= 1 OR (b <= 2 AND c <= 3))");
  auto q = ParsePredicate("(a <= 1 OR b <= 2) AND c <= 3");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.value()->ToString(), "((a <= 1 OR b <= 2) AND c <= 3)");
}

TEST(ParsePredicateTest, AllOperators) {
  for (const char* text :
       {"x = 1", "x != 1", "x <> 1", "x < 1", "x <= 1", "x > 1", "x >= 1"}) {
    EXPECT_TRUE(ParsePredicate(text).ok()) << text;
  }
}

TEST(ParsePredicateTest, CaseInsensitiveKeywords) {
  auto p = ParsePredicate("x between 1 and 2 or not y = 3");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value()->kind(), Predicate::Kind::kOr);
}

TEST(ParsePredicateTest, StringLiteralsAndNumbers) {
  auto p = ParsePredicate("name = 'hello world' AND count >= -2.5e2");
  ASSERT_TRUE(p.ok());
  const auto& compare = p.value()->left();
  EXPECT_EQ(std::get<std::string>(compare->constant()), "hello world");
  EXPECT_DOUBLE_EQ(std::get<double>(p.value()->right()->constant()), -250.0);
}

TEST(ParsePredicateTest, ErrorsAreReported) {
  EXPECT_FALSE(ParsePredicate("").ok());
  EXPECT_FALSE(ParsePredicate("x <=").ok());
  EXPECT_FALSE(ParsePredicate("x <= 1 AND").ok());
  EXPECT_FALSE(ParsePredicate("(x <= 1").ok());
  EXPECT_FALSE(ParsePredicate("x <= 1 garbage").ok());
  EXPECT_FALSE(ParsePredicate("x BETWEEN 1 2").ok());
  EXPECT_FALSE(ParsePredicate("name = 'unterminated").ok());
  EXPECT_FALSE(ParsePredicate("= 5").ok());
}

TEST(ParsePredicateTest, KeywordPrefixIdentifiersAreNotKeywords) {
  // "ANDy"/"ORder"-style identifiers must not be eaten as keywords.
  auto p = ParsePredicate("android <= 1 AND order_id <= 2");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value()->ToString(), "(android <= 1 AND order_id <= 2)");
}

/// Property: parse -> ToString -> parse is a fixpoint, and both parses
/// select the same rows.
class ParseRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(ParseRoundTrip, StableUnderReparse) {
  auto first = ParsePredicate(GetParam());
  ASSERT_TRUE(first.ok());
  const std::string rendered = first.value()->ToString();
  auto second = ParsePredicate(rendered);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value()->ToString(), rendered);

  // Semantic agreement on random rows.
  const Schema schema = TestSchema();
  auto b1 = BoundPredicate::Bind(first.value(), schema);
  auto b2 = BoundPredicate::Bind(second.value(), schema);
  ASSERT_TRUE(b1.ok());
  ASSERT_TRUE(b2.ok());
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    const auto row = Row(rng.UniformDouble(0, 10), rng.UniformDouble(0, 10),
                         rng.Bernoulli(0.5) ? "x" : "y",
                         rng.UniformInt(0, 5));
    EXPECT_EQ(b1->Matches(row), b2->Matches(row));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Samples, ParseRoundTrip,
    ::testing::Values(
        "longitude <= 5", "latitude BETWEEN 1 AND 9",
        "longitude <= 5 AND latitude >= 2",
        "(longitude <= 5 OR latitude >= 2) AND NOT name = 'x'",
        "count >= 3 AND count <= 4 OR longitude < 1",
        "NOT (longitude > 5 AND latitude > 5)"));

}  // namespace
}  // namespace qsp
