#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "workload/client_gen.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

double MeanPairwiseCenterDistance(const std::vector<Rect>& queries) {
  double total = 0.0;
  size_t pairs = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    for (size_t j = i + 1; j < queries.size(); ++j) {
      const Point a = queries[i].Center();
      const Point b = queries[j].Center();
      total += std::hypot(a.x - b.x, a.y - b.y);
      ++pairs;
    }
  }
  return pairs == 0 ? 0.0 : total / static_cast<double>(pairs);
}

TEST(QueryGenTest, ProducesRequestedCount) {
  Rng rng(1);
  QueryGenConfig config;
  config.num_queries = 37;
  EXPECT_EQ(GenerateQueries(config, &rng).size(), 37u);
}

TEST(QueryGenTest, AllQueriesInsideDomain) {
  Rng rng(2);
  QueryGenConfig config;
  config.domain = Rect(100, 100, 200, 180);
  config.num_queries = 200;
  config.cf = 0.8;
  for (const Rect& q : GenerateQueries(config, &rng)) {
    EXPECT_FALSE(q.IsEmpty());
    EXPECT_TRUE(config.domain.Contains(q)) << q.ToString();
  }
}

TEST(QueryGenTest, ExtentBoundsRespected) {
  Rng rng(3);
  QueryGenConfig config;
  config.domain = Rect(0, 0, 1000, 1000);
  config.num_queries = 300;
  config.cf = 0.0;  // Uniform only, so no domain clamping near clusters.
  config.min_extent = 0.02;
  config.max_extent = 0.05;
  for (const Rect& q : GenerateQueries(config, &rng)) {
    // Clamping can shrink but never grow a query.
    EXPECT_LE(q.Width(), 0.05 * 1000 + 1e-9);
    EXPECT_LE(q.Height(), 0.05 * 1000 + 1e-9);
  }
}

TEST(QueryGenTest, DeterministicInSeed) {
  QueryGenConfig config;
  config.num_queries = 25;
  Rng r1(42), r2(42);
  EXPECT_EQ(GenerateQueries(config, &r1), GenerateQueries(config, &r2));
}

TEST(QueryGenTest, HigherCfProducesTighterQueries) {
  QueryGenConfig clustered;
  clustered.num_queries = 120;
  clustered.cf = 1.0;
  clustered.sf = 1.0;  // One big cluster.
  clustered.df = 0.02;
  QueryGenConfig uniform = clustered;
  uniform.cf = 0.0;

  double clustered_dist = 0, uniform_dist = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    Rng r1(seed), r2(seed);
    clustered_dist +=
        MeanPairwiseCenterDistance(GenerateQueries(clustered, &r1));
    uniform_dist += MeanPairwiseCenterDistance(GenerateQueries(uniform, &r2));
  }
  EXPECT_LT(clustered_dist, uniform_dist * 0.5);
}

TEST(QueryGenTest, SmallerSfMeansMoreClusters) {
  // sf = 0.25 -> ~4 clusters; queries should spread more than sf = 1.0.
  QueryGenConfig few;
  few.num_queries = 100;
  few.cf = 1.0;
  few.sf = 1.0;
  few.df = 0.01;
  QueryGenConfig many = few;
  many.sf = 0.25;

  double few_dist = 0, many_dist = 0;
  for (uint64_t seed = 10; seed < 15; ++seed) {
    Rng r1(seed), r2(seed);
    few_dist += MeanPairwiseCenterDistance(GenerateQueries(few, &r1));
    many_dist += MeanPairwiseCenterDistance(GenerateQueries(many, &r2));
  }
  EXPECT_GT(many_dist, few_dist);
}

TEST(QueryGenTest, LargerDfSpreadsClusters) {
  QueryGenConfig tight;
  tight.num_queries = 100;
  tight.cf = 1.0;
  tight.sf = 1.0;
  tight.df = 0.005;
  QueryGenConfig loose = tight;
  loose.df = 0.2;

  double tight_dist = 0, loose_dist = 0;
  for (uint64_t seed = 20; seed < 25; ++seed) {
    Rng r1(seed), r2(seed);
    tight_dist += MeanPairwiseCenterDistance(GenerateQueries(tight, &r1));
    loose_dist += MeanPairwiseCenterDistance(GenerateQueries(loose, &r2));
  }
  EXPECT_GT(loose_dist, tight_dist * 2);
}

// ------------------------------------------------------------- ClientGen

TEST(ClientGenTest, RoundRobinSpreadsEvenly) {
  Rng rng(1);
  QuerySet qs;
  for (int i = 0; i < 9; ++i) qs.Add(Rect(i, 0, i + 1, 1));
  ClientSet clients =
      AssignClients(qs, 3, ClientAssignment::kRoundRobin, &rng);
  ASSERT_EQ(clients.num_clients(), 3u);
  for (ClientId c = 0; c < 3; ++c) {
    EXPECT_EQ(clients.QueriesOf(c).size(), 3u);
  }
  EXPECT_EQ(clients.QueriesOf(0), (std::vector<QueryId>{0, 3, 6}));
}

TEST(ClientGenTest, EveryQueryAssignedExactlyOnceInAllModes) {
  Rng rng(2);
  QuerySet qs;
  for (int i = 0; i < 20; ++i) qs.Add(Rect(i, 0, i + 1, 1));
  for (ClientAssignment mode :
       {ClientAssignment::kRoundRobin, ClientAssignment::kRandom,
        ClientAssignment::kLocality}) {
    ClientSet clients = AssignClients(qs, 4, mode, &rng);
    std::vector<int> seen(20, 0);
    for (ClientId c = 0; c < clients.num_clients(); ++c) {
      for (QueryId q : clients.QueriesOf(c)) ++seen[q];
    }
    for (int count : seen) EXPECT_EQ(count, 1);
  }
}

TEST(ClientGenTest, LocalityGroupsNeighbours) {
  Rng rng(3);
  // Queries in two well-separated bands; locality assignment with two
  // clients should give each client one band.
  QuerySet qs;
  for (int i = 0; i < 5; ++i) qs.Add(Rect(i, 0, i + 1, 1));
  for (int i = 0; i < 5; ++i) qs.Add(Rect(900 + i, 0, 901 + i, 1));
  ClientSet clients = AssignClients(qs, 2, ClientAssignment::kLocality, &rng);
  for (ClientId c = 0; c < 2; ++c) {
    const auto& subs = clients.QueriesOf(c);
    ASSERT_EQ(subs.size(), 5u);
    const double first_x = qs.rect(subs.front()).x_lo();
    for (QueryId q : subs) {
      EXPECT_LT(std::abs(qs.rect(q).x_lo() - first_x), 100.0);
    }
  }
}

}  // namespace
}  // namespace qsp
