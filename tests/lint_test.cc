// Tests for tools/lint: each rule must fire exactly where the known-bad
// fixtures say it does, stay silent on the known-good corpus, and respect
// the FileKind scoping and `qsp-lint: allow(...)` suppressions.
#include "lint/lint.h"

#include <algorithm>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#ifndef QSP_LINT_FIXTURE_DIR
#error "QSP_LINT_FIXTURE_DIR must point at tests/lint_fixtures"
#endif

namespace qsp {
namespace lint {
namespace {

std::string ReadFixture(const std::string& rel) {
  const std::string path = std::string(QSP_LINT_FIXTURE_DIR) + "/" + rel;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "missing fixture: " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

// Loads a fixture and lints it standalone under the given kind. Fixtures
// are self-contained (they declare their own Status/Result/ServiceConfig),
// so single-file returner collection matches the real two-pass run.
std::vector<Finding> LintFixture(const std::string& rel, FileKind kind) {
  SourceFile file;
  file.path = rel;
  file.content = ReadFixture(rel);
  file.kind = kind;
  return LintFiles({file});
}

// (line, rule) pairs, sorted — the shape every fixture expectation uses.
std::vector<std::pair<int, std::string>> LinesAndRules(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<int, std::string>> out;
  for (const Finding& f : findings) out.emplace_back(f.line, f.rule);
  std::sort(out.begin(), out.end());
  return out;
}

using Expected = std::vector<std::pair<int, std::string>>;

TEST(StripCommentsAndStrings, ReplacesCommentsAndLiteralsWithSpaces) {
  const std::string in =
      "int a = 1; // trailing rand()\n"
      "const char* s = \"printf(\\\"x\\\")\";\n"
      "/* block\n   spanning */ char c = ';';\n";
  const std::string out = StripCommentsAndStrings(in);
  EXPECT_EQ(std::count(in.begin(), in.end(), '\n'),
            std::count(out.begin(), out.end(), '\n'));
  EXPECT_EQ(out.find("rand"), std::string::npos);
  EXPECT_EQ(out.find("printf"), std::string::npos);
  EXPECT_EQ(out.find("spanning"), std::string::npos);
  EXPECT_NE(out.find("int a = 1;"), std::string::npos);
  EXPECT_NE(out.find("char c ="), std::string::npos);
}

TEST(StripCommentsAndStrings, KeepsLineStructureInsideBlockComments) {
  const std::string out = StripCommentsAndStrings("a/*1\n2\n3*/b\n");
  EXPECT_EQ(3, std::count(out.begin(), out.end(), '\n'));
  EXPECT_EQ('a', out.front());
  EXPECT_NE(out.find('b'), std::string::npos);
}

TEST(ClassifyPath, MapsDirectoriesToKinds) {
  EXPECT_EQ(FileKind::kLibrary, ClassifyPath("src/merge/pair_merger.cc"));
  EXPECT_EQ(FileKind::kLibraryObs, ClassifyPath("src/obs/metrics.cc"));
  EXPECT_EQ(FileKind::kOther, ClassifyPath("tests/planner_test.cc"));
  EXPECT_EQ(FileKind::kBench, ClassifyPath("bench/bench_merge.cc"));
  EXPECT_EQ(FileKind::kBench, ClassifyPath("/root/repo/bench/bench_fig15.cc"));
  EXPECT_EQ(FileKind::kScript, ClassifyPath("scripts/gen_tables.cc"));
  EXPECT_EQ(FileKind::kScript, ClassifyPath("/ws/scripts/harness.h"));
  EXPECT_EQ(FileKind::kOther, ClassifyPath("tools/qsp_demo/main.cc"));
}

TEST(CollectStatusReturners, DemotesAmbiguousNames) {
  SourceFile a;
  a.path = "src/a.h";
  a.content =
      "namespace qsp {\n"
      "Status Flush();\n"
      "Result<int> Insert(int row);\n"
      "}\n";
  SourceFile b;
  b.path = "src/b.h";
  b.content =
      "namespace qsp {\n"
      "void Insert(double x, double y);\n"
      "}\n";
  const std::set<std::string> returners = CollectStatusReturners({a, b});
  EXPECT_TRUE(returners.count("Flush"));
  // Insert is declared with a non-Status return somewhere, so a bare
  // `x.Insert(...)` statement cannot be assumed to drop a Status.
  EXPECT_FALSE(returners.count("Insert"));
}

TEST(LintFixtures, DiscardedStatus) {
  const auto got = LinesAndRules(
      LintFixture("bad/discarded_status.cc", FileKind::kLibrary));
  const Expected want = {{20, "discarded-status"},
                         {21, "discarded-status"},
                         {22, "discarded-status"},
                         {23, "discarded-status"}};
  EXPECT_EQ(want, got);
}

TEST(LintFixtures, DiscardedStatusFiresEvenInTests) {
  // discarded-status is the one rule that applies to kOther files too.
  const auto got = LinesAndRules(
      LintFixture("bad/discarded_status.cc", FileKind::kOther));
  EXPECT_EQ(4u, got.size());
  for (const auto& [line, rule] : got) EXPECT_EQ("discarded-status", rule);
}

TEST(LintFixtures, Nondeterminism) {
  const auto got = LinesAndRules(
      LintFixture("bad/nondeterminism.cc", FileKind::kLibrary));
  const Expected want = {{11, "nondeterminism"},
                         {12, "nondeterminism"},
                         {16, "nondeterminism"},
                         {17, "nondeterminism"}};
  EXPECT_EQ(want, got);
}

TEST(LintFixtures, NondeterminismExemptInObsLayer) {
  // src/obs/ owns the clocks: the same file linted as kLibraryObs is clean.
  EXPECT_TRUE(
      LintFixture("bad/nondeterminism.cc", FileKind::kLibraryObs).empty());
}

TEST(LintFixtures, NondeterminismExemptInBenches) {
  EXPECT_TRUE(LintFixture("bad/nondeterminism.cc", FileKind::kOther).empty());
}

TEST(LintFixtures, UnorderedIteration) {
  const auto got = LinesAndRules(
      LintFixture("bad/unordered_iter.cc", FileKind::kLibrary));
  const Expected want = {{15, "unordered-iter"}, {18, "unordered-iter"}};
  EXPECT_EQ(want, got);
}

TEST(LintFixtures, UngatedKnob) {
  const auto got = LinesAndRules(
      LintFixture("bad/ungated_knob.cc", FileKind::kLibrary));
  const Expected want = {{19, "ungated-knob"},
                         {19, "ungated-knob"},
                         {23, "ungated-knob"},
                         {27, "ungated-knob"}};
  EXPECT_EQ(want, got);
}

TEST(LintFixtures, LibraryIo) {
  const auto got =
      LinesAndRules(LintFixture("bad/library_io.cc", FileKind::kLibrary));
  const Expected want = {{9, "library-io"},
                         {10, "library-io"},
                         {11, "library-io"}};
  EXPECT_EQ(want, got);
}

TEST(LintFixtures, LibraryIoExemptOutsideLibrary) {
  // Benches and tools print to stdout on purpose.
  EXPECT_TRUE(LintFixture("bad/library_io.cc", FileKind::kOther).empty());
}

TEST(LintFixtures, MetricName) {
  const auto got =
      LinesAndRules(LintFixture("bad/metric_name.cc", FileKind::kLibrary));
  const Expected want = {{8, "metric-name"},
                         {9, "metric-name"},
                         {10, "metric-name"},
                         {11, "metric-name"},
                         {12, "metric-name"},
                         {13, "metric-name"},
                         {14, "metric-name"},
                         {15, "metric-name"},
                         {16, "metric-name"}};
  EXPECT_EQ(want, got);
}

TEST(LintFixtures, MetricNameAppliesInObsLayerToo) {
  // The obs layer is exempt from nondeterminism, not from naming.
  const auto got =
      LinesAndRules(LintFixture("bad/metric_name.cc", FileKind::kLibraryObs));
  EXPECT_EQ(9u, got.size());
  for (const auto& [line, rule] : got) EXPECT_EQ("metric-name", rule);
}

TEST(LintFixtures, MetricNameExemptOutsideLibrary) {
  // Tests and benches may register whatever scratch names they like.
  EXPECT_TRUE(LintFixture("bad/metric_name.cc", FileKind::kOther).empty());
}

TEST(LintFixtures, GoodCorpusIsClean) {
  for (const std::string rel :
       {"good/clean_library.cc", "good/suppressed.cc",
        "good/metric_names.cc"}) {
    const auto findings = LintFixture(rel, FileKind::kLibrary);
    EXPECT_TRUE(findings.empty())
        << rel << ": " << findings.size() << " unexpected finding(s), first: "
        << (findings.empty() ? "" : findings[0].rule);
  }
}

TEST(LintFixtures, SuppressionMarkerIsRuleSpecific) {
  // allow(nondeterminism) must not silence a different rule on that line.
  SourceFile file;
  file.path = "src/x.cc";
  file.kind = FileKind::kLibrary;
  file.content =
      "namespace qsp { class Status {}; Status Flush();\n"
      "void F() {\n"
      "  Flush();  // qsp-lint: allow(nondeterminism) wrong rule\n"
      "  Flush();  // qsp-lint: allow(discarded-status) shutdown path\n"
      "}\n"
      "}\n";
  const auto got = LinesAndRules(LintFiles({file}));
  const Expected want = {{3, "discarded-status"}};
  EXPECT_EQ(want, got);
}

TEST(LintFixtures, FindingsSortedByFileAndLine) {
  SourceFile a;
  a.path = "src/b.cc";
  a.kind = FileKind::kLibrary;
  a.content = "void F() { rand(); }\n";
  SourceFile b;
  b.path = "src/a.cc";
  b.kind = FileKind::kLibrary;
  b.content = "void G() {\n  rand();\n}\n";
  const auto findings = LintFiles({a, b});
  ASSERT_EQ(2u, findings.size());
  EXPECT_EQ("src/a.cc", findings[0].file);
  EXPECT_EQ(2, findings[0].line);
  EXPECT_EQ("src/b.cc", findings[1].file);
}

}  // namespace
}  // namespace lint
}  // namespace qsp
