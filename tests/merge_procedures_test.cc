#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "geom/region.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "query/query.h"
#include "stats/size_estimator.h"
#include "util/rng.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

QuerySet OverlappingPair() {
  return QuerySet({Rect(0, 0, 4, 4), Rect(2, 2, 6, 6)});
}

// ---------------------------------------------------------- BoundingRect

TEST(BoundingRectTest, ProducesSingleBoundingBox) {
  QuerySet qs = OverlappingPair();
  BoundingRectProcedure proc;
  const auto merged = proc.Merge(qs, {0, 1});
  ASSERT_EQ(merged.size(), 1u);
  ASSERT_EQ(merged[0].region.size(), 1u);
  EXPECT_EQ(merged[0].region[0], Rect(0, 0, 6, 6));
  EXPECT_EQ(merged[0].members, (QueryGroup{0, 1}));
}

TEST(BoundingRectTest, SingletonGroupIsIdentity) {
  QuerySet qs = OverlappingPair();
  BoundingRectProcedure proc;
  const auto merged = proc.Merge(qs, {1});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].region[0], Rect(2, 2, 6, 6));
}

TEST(BoundingRectTest, MatchesPaperSectionOneExample) {
  // Section 1: sigma_{2<=A<=40} and sigma_{3<=A<=41} merge into
  // sigma_{2<=A<=41} (here lifted to 2-D with a full y range).
  QuerySet qs({Rect(2, 0, 40, 10), Rect(3, 0, 41, 10)});
  BoundingRectProcedure proc;
  const auto merged = proc.Merge(qs, {0, 1});
  EXPECT_EQ(merged[0].region[0], Rect(2, 0, 41, 10));
}

// ------------------------------------------------------- BoundingPolygon

TEST(BoundingPolygonTest, SingleMergedQueryCoveringInputs) {
  QuerySet qs({Rect(0, 0, 2, 2), Rect(4, 4, 6, 6)});
  BoundingPolygonProcedure proc;
  const auto merged = proc.Merge(qs, {0, 1});
  ASSERT_EQ(merged.size(), 1u);
  RectilinearRegion region = RectilinearRegion::UnionOf(merged[0].region);
  EXPECT_TRUE(region.Covers(qs.rect(0)));
  EXPECT_TRUE(region.Covers(qs.rect(1)));
  // Tighter than the bounding rectangle for this diagonal arrangement.
  EXPECT_LT(region.Area(), Rect(0, 0, 6, 6).Area());
  EXPECT_GE(region.Area(), 8.0);  // At least the union.
}

// ------------------------------------------------------------ ExactCover

TEST(ExactCoverTest, PiecesPartitionTheUnion) {
  QuerySet qs = OverlappingPair();
  ExactCoverProcedure proc;
  const auto merged = proc.Merge(qs, {0, 1});
  EXPECT_GT(merged.size(), 1u);
  double total_area = 0.0;
  std::vector<Rect> all_pieces;
  for (const auto& m : merged) {
    ASSERT_EQ(m.region.size(), 1u);
    total_area += m.region[0].Area();
    all_pieces.push_back(m.region[0]);
  }
  EXPECT_NEAR(total_area, 28.0, 1e-9);  // Union area, no double counting.
  for (size_t i = 0; i < all_pieces.size(); ++i) {
    for (size_t j = i + 1; j < all_pieces.size(); ++j) {
      EXPECT_DOUBLE_EQ(OverlapArea(all_pieces[i], all_pieces[j]), 0.0);
    }
  }
}

TEST(ExactCoverTest, EachPieceLiesInsideAllItsMembers) {
  QuerySet qs({Rect(0, 0, 4, 4), Rect(2, 2, 6, 6), Rect(3, 0, 5, 2)});
  ExactCoverProcedure proc;
  for (const auto& m : proc.Merge(qs, {0, 1, 2})) {
    for (QueryId member : m.members) {
      EXPECT_TRUE(qs.rect(member).Contains(m.region[0]))
          << "piece " << m.region[0].ToString() << " outside query "
          << member;
    }
  }
}

TEST(ExactCoverTest, EveryQueryExactlyCoveredByItsPieces) {
  QuerySet qs({Rect(0, 0, 4, 4), Rect(2, 2, 6, 6), Rect(3, 0, 5, 2)});
  ExactCoverProcedure proc;
  const auto merged = proc.Merge(qs, {0, 1, 2});
  for (QueryId q : {0u, 1u, 2u}) {
    std::vector<Rect> pieces_of_q;
    for (const auto& m : merged) {
      for (QueryId member : m.members) {
        if (member == q) pieces_of_q.push_back(m.region[0]);
      }
    }
    EXPECT_NEAR(UnionArea(pieces_of_q), qs.rect(q).Area(), 1e-9)
        << "query " << q;
  }
}

TEST(ExactCoverTest, DisjointQueriesStaySeparatePieces) {
  QuerySet qs({Rect(0, 0, 1, 1), Rect(5, 5, 6, 6)});
  ExactCoverProcedure proc;
  const auto merged = proc.Merge(qs, {0, 1});
  ASSERT_EQ(merged.size(), 2u);
  for (const auto& m : merged) EXPECT_EQ(m.members.size(), 1u);
}

TEST(ExactCoverTest, IdenticalQueriesCollapseToOnePiece) {
  QuerySet qs({Rect(1, 1, 3, 3), Rect(1, 1, 3, 3)});
  ExactCoverProcedure proc;
  const auto merged = proc.Merge(qs, {0, 1});
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].members, (QueryGroup{0, 1}));
  EXPECT_EQ(merged[0].region[0], Rect(1, 1, 3, 3));
}

// --------------------------------------- Cross-procedure size ordering

/// Property (the Figure 5 trade-off): for any group,
///   union <= exact-cover size == union <= polygon size <= bbox size,
/// and irrelevant data is 0 for exact cover, and no larger for the
/// polygon than for the rectangle.
class ProcedureOrdering : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProcedureOrdering, SizeAndIrrelevanceOrdering) {
  Rng rng(GetParam());
  QueryGenConfig config;
  config.num_queries = 6;
  config.cf = 0.7;
  config.max_extent = 0.2;
  QuerySet qs(GenerateQueries(config, &rng));
  UniformDensityEstimator est(0.01);

  BoundingRectProcedure rect_proc;
  BoundingPolygonProcedure poly_proc;
  ExactCoverProcedure cover_proc;
  MergeContext rect_ctx(&qs, &est, &rect_proc);
  MergeContext poly_ctx(&qs, &est, &poly_proc);
  MergeContext cover_ctx(&qs, &est, &cover_proc);

  const QueryGroup group = {0, 1, 2, 3, 4, 5};
  const GroupStats& rect = rect_ctx.Stats(group);
  const GroupStats& poly = poly_ctx.Stats(group);
  const GroupStats& cover = cover_ctx.Stats(group);

  const double union_size =
      est.EstimateRegionSize(
          RectilinearRegion::UnionOf(qs.RectsOf(group)).pieces());

  EXPECT_NEAR(cover.size, union_size, 1e-9);
  EXPECT_GE(poly.size, union_size - 1e-9);
  EXPECT_GE(rect.size, poly.size - 1e-9);
  EXPECT_NEAR(cover.irrelevant, 0.0, 1e-9);
  EXPECT_LE(poly.irrelevant, rect.irrelevant + 1e-9);
  EXPECT_EQ(rect.messages, 1.0);
  EXPECT_EQ(poly.messages, 1.0);
  EXPECT_GE(cover.messages, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProcedureOrdering,
                         ::testing::Range<uint64_t>(500, 516));

}  // namespace
}  // namespace qsp
