#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "cost/cost_model.h"
#include "merge/incremental_merger.h"
#include "merge/pair_merger.h"
#include "merge/partition_merger.h"
#include "query/merge_context.h"
#include "query/merge_procedure.h"
#include "stats/size_estimator.h"
#include "util/rng.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

class IncrementalTest : public ::testing::Test {
 protected:
  IncrementalTest()
      : estimator_(1.0), ctx_(&queries_, &estimator_, &procedure_) {}

  QuerySet queries_;
  UniformDensityEstimator estimator_;
  BoundingRectProcedure procedure_;
  MergeContext ctx_;
  CostModel model_{2.0, 1.0, 1.0, 0.0};
};

TEST_F(IncrementalTest, StartsEmpty) {
  IncrementalMerger inc(&ctx_, model_);
  EXPECT_TRUE(inc.partition().empty());
  EXPECT_EQ(inc.cost(), 0.0);
}

TEST_F(IncrementalTest, FirstQueryBecomesSingleton) {
  const QueryId q = queries_.Add(Rect(0, 0, 2, 2));
  IncrementalMerger inc(&ctx_, model_);
  inc.AddQuery(q);
  EXPECT_EQ(inc.partition(), (Partition{{q}}));
  // Cost = K_M + K_T * 4.
  EXPECT_DOUBLE_EQ(inc.cost(), 2.0 + 4.0);
}

TEST_F(IncrementalTest, IdenticalQueryJoinsExistingGroup) {
  const QueryId a = queries_.Add(Rect(0, 0, 2, 2));
  const QueryId b = queries_.Add(Rect(0, 0, 2, 2));
  IncrementalMerger inc(&ctx_, model_);
  inc.AddQuery(a);
  inc.AddQuery(b);
  EXPECT_EQ(inc.partition(), (Partition{{a, b}}));
}

TEST_F(IncrementalTest, FarQueryStaysSeparate) {
  const QueryId a = queries_.Add(Rect(0, 0, 2, 2));
  const QueryId b = queries_.Add(Rect(500, 500, 502, 502));
  IncrementalMerger inc(&ctx_, model_);
  inc.AddQuery(a);
  inc.AddQuery(b);
  EXPECT_EQ(inc.partition().size(), 2u);
}

TEST_F(IncrementalTest, CostTracksPartitionCost) {
  Rng rng(3);
  QueryGenConfig config;
  config.num_queries = 12;
  IncrementalMerger inc(&ctx_, model_);
  for (const Rect& r : GenerateQueries(config, &rng)) {
    inc.AddQuery(queries_.Add(r));
    EXPECT_NEAR(inc.cost(), model_.PartitionCost(ctx_, inc.partition()),
                1e-9);
  }
}

TEST_F(IncrementalTest, RemoveQueryUpdatesCostAndPartition) {
  const QueryId a = queries_.Add(Rect(0, 0, 2, 2));
  const QueryId b = queries_.Add(Rect(0, 0, 2, 2));
  IncrementalMerger inc(&ctx_, model_);
  inc.AddQuery(a);
  inc.AddQuery(b);
  inc.RemoveQuery(a);
  EXPECT_EQ(inc.partition(), (Partition{{b}}));
  EXPECT_NEAR(inc.cost(), model_.PartitionCost(ctx_, inc.partition()), 1e-9);
}

TEST_F(IncrementalTest, RemoveLastQueryOfGroupDropsGroup) {
  const QueryId a = queries_.Add(Rect(0, 0, 2, 2));
  IncrementalMerger inc(&ctx_, model_);
  inc.AddQuery(a);
  inc.RemoveQuery(a);
  EXPECT_TRUE(inc.partition().empty());
  EXPECT_NEAR(inc.cost(), 0.0, 1e-9);
}

TEST_F(IncrementalTest, RemoveUnknownQueryIsNoOp) {
  const QueryId a = queries_.Add(Rect(0, 0, 2, 2));
  IncrementalMerger inc(&ctx_, model_);
  inc.AddQuery(a);
  const double before = inc.cost();
  inc.RemoveQuery(999);
  EXPECT_EQ(inc.cost(), before);
}

TEST_F(IncrementalTest, RepairNeverIncreasesCost) {
  Rng rng(7);
  QueryGenConfig config;
  config.num_queries = 15;
  IncrementalMerger inc(&ctx_, model_);
  for (const Rect& r : GenerateQueries(config, &rng)) {
    inc.AddQuery(queries_.Add(r));
  }
  const double before = inc.cost();
  const double after = inc.Repair();
  EXPECT_LE(after, before + 1e-9);
  EXPECT_NEAR(after, model_.PartitionCost(ctx_, inc.partition()), 1e-9);
  EXPECT_TRUE(IsValidPartition(inc.partition(), queries_.size()));
}

TEST_F(IncrementalTest, RepairRespectsMoveBudget) {
  Rng rng(8);
  QueryGenConfig config;
  config.num_queries = 10;
  // Scatter into deliberately bad singleton state by adding far-apart
  // first, then Repair with a budget of 1 move.
  IncrementalMerger inc(&ctx_, model_);
  for (const Rect& r : GenerateQueries(config, &rng)) {
    inc.AddQuery(queries_.Add(r));
  }
  IncrementalMerger clone(&ctx_, model_);
  for (QueryId q = 0; q < queries_.size(); ++q) clone.AddQuery(q);
  const double unlimited = inc.Repair(0);
  const double limited = clone.Repair(1);
  EXPECT_LE(unlimited, limited + 1e-9);
}

TEST_F(IncrementalTest, RemoveQueryEvictsStaleCacheEntries) {
  // Regression: RemoveQuery must invalidate the MergeContext cache
  // entries that mention the removed id — a later group with the same
  // shape must not resurrect stale statistics, and the memo must not
  // grow monotonically under churn.
  const QueryId a = queries_.Add(Rect(0, 0, 2, 2));
  const QueryId b = queries_.Add(Rect(0, 0, 2, 2));
  IncrementalMerger inc(&ctx_, model_);
  inc.AddQuery(a);
  inc.AddQuery(b);
  ASSERT_EQ(inc.partition(), (Partition{{a, b}}));
  // Memoize groups on both sides of the removal.
  ctx_.Stats(QueryGroup{a});
  ctx_.Stats(QueryGroup{b});
  ctx_.Stats(QueryGroup{a, b});
  const size_t cached_before = ctx_.cached_groups();
  ASSERT_GE(cached_before, 3u);
  inc.RemoveQuery(a);
  // Every memoized group containing `a` ({a} and {a,b}) is gone; the
  // survivor {b} (re-memoized by the removal's regrouping) remains.
  EXPECT_LE(ctx_.cached_groups(), cached_before - 2);
  EXPECT_NEAR(inc.cost(), model_.PartitionCost(ctx_, inc.partition()), 1e-9);
}

TEST_F(IncrementalTest, AddRemoveRepairInterleaveKeepsPartitionExact) {
  // Regression for the removal path: interleaved Add/Remove/Repair must
  // leave a partition that covers exactly the live ids — no emptied
  // groups linger, no retired id survives, no id is double-planned.
  Rng rng(17);
  QueryGenConfig config;
  config.num_queries = 40;
  config.cf = 0.7;
  const std::vector<Rect> rects = GenerateQueries(config, &rng);

  IncrementalMerger inc(&ctx_, model_);
  std::vector<QueryId> live;
  for (size_t i = 0; i < rects.size(); ++i) {
    const QueryId id = queries_.Add(rects[i]);
    inc.AddQuery(id);
    live.push_back(id);
    // Every third step retires the oldest survivor; every fifth repairs.
    if (i % 3 == 2) {
      inc.RemoveQuery(live.front());
      live.erase(live.begin());
    }
    if (i % 5 == 4) inc.Repair(2);

    std::vector<QueryId> planned;
    for (const QueryGroup& group : inc.partition()) {
      ASSERT_FALSE(group.empty()) << "empty group after step " << i;
      planned.insert(planned.end(), group.begin(), group.end());
    }
    std::sort(planned.begin(), planned.end());
    ASSERT_EQ(planned, live) << "after step " << i;
    ASSERT_NEAR(inc.cost(), model_.PartitionCost(ctx_, inc.partition()),
                1e-9);
  }
}

TEST_F(IncrementalTest, PruningNeverChangesInterleavedDecisions) {
  // Decision identity (DESIGN.md §8 applied incrementally): with and
  // without the BenefitBounder fast path, the same Add/Remove/Repair
  // sequence must produce the same partition — pruning may only skip
  // evaluations whose outcome is already decided.
  Rng rng(23);
  QueryGenConfig config;
  config.num_queries = 30;
  config.cf = 0.6;
  const std::vector<Rect> rects = GenerateQueries(config, &rng);
  for (const Rect& r : rects) queries_.Add(r);

  IncrementalMerger pruned(&ctx_, model_, /*pruning=*/true);
  IncrementalMerger plain(&ctx_, model_, /*pruning=*/false);
  for (QueryId id = 0; id < rects.size(); ++id) {
    pruned.AddQuery(id);
    plain.AddQuery(id);
    if (id % 4 == 3) {
      pruned.RemoveQuery(id - 2);
      plain.RemoveQuery(id - 2);
    }
    if (id % 6 == 5) {
      pruned.Repair(3);
      plain.Repair(3);
    }
    ASSERT_EQ(pruned.partition(), plain.partition()) << "after id " << id;
  }
  EXPECT_NEAR(pruned.cost(), plain.cost(), 1e-9);
  // The fast path must actually be fast: strictly fewer evaluations.
  EXPECT_LT(pruned.evaluations(), plain.evaluations());
}

/// Property (the Section 11 question): the incremental partition's cost
/// stays close to the from-scratch pair-merging cost as queries stream
/// in, and periodic Repair closes most of the gap.
class IncrementalQuality : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IncrementalQuality, TracksFromScratchWithinFactor) {
  Rng rng(GetParam());
  QueryGenConfig config;
  config.num_queries = 20;
  config.cf = 0.7;
  QuerySet queries;
  UniformDensityEstimator estimator(1.0);
  BoundingRectProcedure procedure;
  MergeContext ctx(&queries, &estimator, &procedure);
  const CostModel model{2.0, 1.0, 1.0, 0.0};

  IncrementalMerger inc(&ctx, model);
  for (const Rect& r : GenerateQueries(config, &rng)) {
    inc.AddQuery(queries.Add(r));
  }
  inc.Repair();

  PairMerger scratch;
  auto baseline = scratch.Merge(ctx, model);
  ASSERT_TRUE(baseline.ok());
  // The repaired incremental solution is a local optimum of a superset of
  // pair merging's moves, so it should be competitive (within 10%).
  EXPECT_LE(inc.cost(), baseline->cost * 1.10 + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IncrementalQuality,
                         ::testing::Range<uint64_t>(600, 612));

}  // namespace
}  // namespace qsp
