#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/wire.h"
#include "relation/generator.h"
#include "util/rng.h"

namespace qsp {
namespace {

// -------------------------------------------------------- Writer/Reader

TEST(WireTest, PrimitivesRoundTrip) {
  WireWriter writer;
  writer.PutU8(0xAB);
  writer.PutU32(0xDEADBEEF);
  writer.PutU64(0x0123456789ABCDEFULL);
  writer.PutDouble(-3.25);
  writer.PutString("hello");
  writer.PutString("");

  const auto frame = writer.buffer();
  WireReader reader(frame);
  EXPECT_EQ(reader.GetU8().value(), 0xAB);
  EXPECT_EQ(reader.GetU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.GetU64().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(reader.GetDouble().value(), -3.25);
  EXPECT_EQ(reader.GetString().value(), "hello");
  EXPECT_EQ(reader.GetString().value(), "");
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WireTest, ReaderRejectsTruncation) {
  WireWriter writer;
  writer.PutU32(42);
  auto frame = writer.Take();
  frame.pop_back();
  WireReader reader(frame);
  auto value = reader.GetU32();
  EXPECT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kOutOfRange);
}

TEST(WireTest, ReaderRejectsTruncatedStringBody) {
  WireWriter writer;
  writer.PutU32(100);  // Claims 100 bytes follow; none do.
  WireReader reader(writer.buffer());
  EXPECT_FALSE(reader.GetString().ok());
}

TEST(WireTest, SpecialDoubles) {
  WireWriter writer;
  writer.PutDouble(0.0);
  writer.PutDouble(-0.0);
  writer.PutDouble(1e308);
  WireReader reader(writer.buffer());
  EXPECT_EQ(reader.GetDouble().value(), 0.0);
  EXPECT_EQ(reader.GetDouble().value(), -0.0);
  EXPECT_EQ(reader.GetDouble().value(), 1e308);
}

// ------------------------------------------------------ Message framing

Table SmallTable() {
  Table table(Schema::Geographic(1));
  EXPECT_TRUE(table.Insert({1.5, 2.5, std::string("alpha")}).ok());
  EXPECT_TRUE(table.Insert({3.5, 4.5, std::string("beta")}).ok());
  return table;
}

Message SampleMessage() {
  Message msg;
  msg.channel = 2;
  msg.seq = 5;
  msg.round_id = 7;
  msg.total_in_round = 9;
  msg.recipients = {7, 9};
  msg.extractors = {{7, {0, Rect(0, 0, 2, 3)}}, {9, {1, Rect(1, 1, 4, 5)}}};
  msg.payload = {0, 1};
  return msg;
}

TEST(WireMessageTest, EncodeDecodeRoundTrip) {
  const Table table = SmallTable();
  auto frame = EncodeMessage(SampleMessage(), table);
  ASSERT_TRUE(frame.ok());
  auto decoded = DecodeMessage(frame.value(), table.schema());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->channel, 2u);
  EXPECT_EQ(decoded->recipients, (std::vector<ClientId>{7, 9}));
  ASSERT_EQ(decoded->extractors.size(), 2u);
  EXPECT_EQ(decoded->extractors[0].client, 7u);
  EXPECT_EQ(decoded->extractors[0].spec.query, 0u);
  EXPECT_EQ(decoded->extractors[0].spec.rect, Rect(0, 0, 2, 3));
  ASSERT_EQ(decoded->tuples.size(), 2u);
  EXPECT_EQ(std::get<double>(decoded->tuples[0][0]), 1.5);
  EXPECT_EQ(std::get<std::string>(decoded->tuples[1][2]), "beta");
}

TEST(WireMessageTest, ReliabilityFieldsRoundTrip) {
  // seq / round_id / total_in_round ride in every frame so receivers can
  // detect gaps (including trailing losses) and dedup retransmissions.
  const Table table = SmallTable();
  auto frame = EncodeMessage(SampleMessage(), table);
  ASSERT_TRUE(frame.ok());
  auto decoded = DecodeMessage(frame.value(), table.schema());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->seq, 5u);
  EXPECT_EQ(decoded->round_id, 7u);
  EXPECT_EQ(decoded->total_in_round, 9u);
}

TEST(WireTest, Crc32MatchesKnownCheckValue) {
  // The standard CRC-32/IEEE check value for the ASCII digits 1..9.
  const uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  EXPECT_EQ(Crc32(digits, sizeof(digits)), 0xCBF43926u);
}

TEST(WireMessageTest, ChecksumRejectsPayloadCorruption) {
  const Table table = SmallTable();
  auto frame = EncodeMessage(SampleMessage(), table);
  ASSERT_TRUE(frame.ok());
  // Flip one byte deep in the payload region, past everything the old
  // structural checks could catch — only the CRC can see this.
  auto corrupted = frame.value();
  corrupted[corrupted.size() - 3] ^= 0x04;
  auto decoded = DecodeMessage(corrupted, table.schema());
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireMessageTest, ChecksumFieldCorruptionIsAlsoRejected) {
  const Table table = SmallTable();
  auto frame = EncodeMessage(SampleMessage(), table);
  ASSERT_TRUE(frame.ok());
  auto corrupted = frame.value();
  corrupted[5] ^= 0xFF;  // Inside the CRC field itself (bytes 4..7).
  EXPECT_FALSE(DecodeMessage(corrupted, table.schema()).ok());
}

TEST(WireMessageTest, EmptyPayloadRoundTrips) {
  const Table table = SmallTable();
  Message msg = SampleMessage();
  msg.payload.clear();
  auto frame = EncodeMessage(msg, table);
  ASSERT_TRUE(frame.ok());
  auto decoded = DecodeMessage(frame.value(), table.schema());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->tuples.empty());
}

TEST(WireMessageTest, RejectsBadRowId) {
  const Table table = SmallTable();
  Message msg = SampleMessage();
  msg.payload = {5};
  EXPECT_FALSE(EncodeMessage(msg, table).ok());
}

TEST(WireMessageTest, RejectsBadMagicTruncationAndTrailingBytes) {
  const Table table = SmallTable();
  auto frame = EncodeMessage(SampleMessage(), table);
  ASSERT_TRUE(frame.ok());

  auto corrupted = frame.value();
  corrupted[0] ^= 0xFF;
  EXPECT_FALSE(DecodeMessage(corrupted, table.schema()).ok());

  auto truncated = frame.value();
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(DecodeMessage(truncated, table.schema()).ok());

  auto padded = frame.value();
  padded.push_back(0);
  EXPECT_FALSE(DecodeMessage(padded, table.schema()).ok());
}

TEST(WireMessageTest, TruncationNeverCrashesAtAnyLength) {
  // Fuzz-lite: decoding every prefix of a valid frame must return an
  // error (or, at full length, success) without UB.
  const Table table = SmallTable();
  auto frame = EncodeMessage(SampleMessage(), table);
  ASSERT_TRUE(frame.ok());
  for (size_t len = 0; len < frame->size(); ++len) {
    std::vector<uint8_t> prefix(frame->begin(),
                                frame->begin() + static_cast<ptrdiff_t>(len));
    EXPECT_FALSE(DecodeMessage(prefix, table.schema()).ok()) << len;
  }
}

TEST(WireMessageTest, PayloadBytesApproximatesEncodedSize) {
  // The planner's byte accounting (Message::PayloadBytes) should track
  // the real encoded payload within the per-row framing overhead.
  Rng rng(5);
  TableGeneratorConfig config;
  config.num_objects = 50;
  config.payload_fields = 2;
  config.payload_bytes = 16;
  const Table table = GenerateTable(config, &rng);
  Message msg;
  msg.channel = 0;
  for (RowId id = 0; id < table.num_rows(); ++id) msg.payload.push_back(id);
  auto frame = EncodeMessage(msg, table);
  ASSERT_TRUE(frame.ok());
  const size_t accounted = msg.PayloadBytes(table);
  const size_t actual = frame->size();
  EXPECT_GT(actual, accounted / 2);
  EXPECT_LT(actual, accounted * 2);
}

}  // namespace
}  // namespace qsp
