// Serial-vs-parallel golden matrix (DESIGN.md §7): every merger and the
// channel allocator must return the exact same partitions, allocations,
// and costs for any thread count — parallelism may only change wall
// time. Each algorithm runs at threads 1, 2, and 8 over three seeds; the
// threads=1 result is the golden baseline the others are compared to.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "channel/channel_cost.h"
#include "channel/client_set.h"
#include "channel/hill_climb_allocator.h"
#include "core/subscription_service.h"
#include "exec/thread_pool.h"
#include "merge/clustering_merger.h"
#include "merge/directed_search_merger.h"
#include "merge/pair_merger.h"
#include "relation/generator.h"
#include "util/rng.h"
#include "workload/client_gen.h"
#include "workload/query_gen.h"

namespace qsp {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};
constexpr uint64_t kSeeds[] = {11, 22, 33};

struct ScopedThreads {
  explicit ScopedThreads(int n) { exec::SetDefaultThreads(n); }
  ~ScopedThreads() { exec::SetDefaultThreads(1); }
};

// ------------------------------------------------------------- mergers

struct MergerCase {
  std::string name;
  std::unique_ptr<Merger> (*make)(uint64_t seed, bool pruning);
};

const MergerCase kMergers[] = {
    {"pair-heap",
     [](uint64_t, bool pruning) -> std::unique_ptr<Merger> {
       return std::make_unique<PairMerger>(/*use_heap=*/true, pruning);
     }},
    {"pair-table",
     [](uint64_t, bool pruning) -> std::unique_ptr<Merger> {
       return std::make_unique<PairMerger>(/*use_heap=*/false, pruning);
     }},
    {"clustering",
     [](uint64_t, bool pruning) -> std::unique_ptr<Merger> {
       return std::make_unique<ClusteringMerger>(
           /*exact_component_limit=*/10, /*tight_bound=*/true, pruning);
     }},
    {"directed-search",
     [](uint64_t seed, bool pruning) -> std::unique_ptr<Merger> {
       return std::make_unique<DirectedSearchMerger>(8, seed, pruning);
     }},
};

// Full pruning x threads x merger x seed matrix against one golden cell
// (threads = 1, pruning off): partitions and costs must be identical in
// every cell — threads may only change wall time, pruning only planning
// effort. The candidates counter is thread-invariant too, but its value
// legitimately differs between the exhaustive and the pruned evaluation
// strategies, so it is compared against a per-pruning-mode baseline.
TEST(ParallelMatrixTest, MergersMatchSerialAtAnyThreadCount) {
  const CostModel model = bench::Fig16CostModel();
  for (const MergerCase& mc : kMergers) {
    for (const uint64_t seed : kSeeds) {
      // Baseline with threads=1; fresh context per run so memo caches
      // cannot leak state between thread counts.
      MergeOutcome golden;
      {
        ScopedThreads threads(1);
        bench::Instance inst(bench::Fig16WorkloadConfig(30), seed,
                             bench::kFig16Density);
        auto outcome =
            mc.make(seed, /*pruning=*/false)->Merge(*inst.ctx, model);
        ASSERT_TRUE(outcome.ok()) << mc.name << " seed " << seed;
        golden = *outcome;
      }
      for (const bool pruning : {false, true}) {
        uint64_t golden_candidates = golden.candidates;
        for (const int threads : kThreadCounts) {
          ScopedThreads scoped(threads);
          bench::Instance inst(bench::Fig16WorkloadConfig(30), seed,
                               bench::kFig16Density);
          auto outcome = mc.make(seed, pruning)->Merge(*inst.ctx, model);
          const std::string label = mc.name + " seed " +
                                    std::to_string(seed) + " threads " +
                                    std::to_string(threads) +
                                    (pruning ? " pruned" : "");
          ASSERT_TRUE(outcome.ok()) << label;
          EXPECT_EQ(outcome->partition, golden.partition) << label;
          EXPECT_EQ(outcome->cost, golden.cost) << label;
          if (pruning && threads == kThreadCounts[0]) {
            golden_candidates = outcome->candidates;
          }
          EXPECT_EQ(outcome->candidates, golden_candidates) << label;
        }
      }
    }
  }
}

// ------------------------------------------------------------ allocator

struct AllocInstance {
  QuerySet queries;
  ClientSet clients;
  UniformDensityEstimator estimator{0.01};
  BoundingRectProcedure procedure;
  std::unique_ptr<MergeContext> ctx;
  CostModel model{4.0, 1.0, 1.0, 0.5, 2.0};
  std::unique_ptr<ChannelCostEvaluator> evaluator;

  explicit AllocInstance(uint64_t seed) {
    Rng rng(seed);
    QueryGenConfig config;
    config.num_queries = 12;
    config.cf = 0.7;
    queries = QuerySet(GenerateQueries(config, &rng));
    clients =
        AssignClients(queries, 6, ClientAssignment::kLocality, &rng);
    ctx = std::make_unique<MergeContext>(&queries, &estimator, &procedure);
    evaluator =
        std::make_unique<ChannelCostEvaluator>(ctx.get(), model, &clients);
  }
};

TEST(ParallelMatrixTest, AllocatorMatchesSerialAtAnyThreadCount) {
  for (const StartPolicy policy :
       {StartPolicy::kSeeded, StartPolicy::kRandom,
        StartPolicy::kBestOfBoth}) {
    for (const uint64_t seed : kSeeds) {
      AllocationOutcome golden;
      {
        ScopedThreads threads(1);
        AllocInstance inst(seed);
        HillClimbAllocator allocator(policy, seed);
        auto outcome = allocator.Allocate(*inst.evaluator, 3);
        ASSERT_TRUE(outcome.ok()) << "seed " << seed;
        golden = *outcome;
      }
      for (const int threads : kThreadCounts) {
        ScopedThreads scoped(threads);
        AllocInstance inst(seed);
        HillClimbAllocator allocator(policy, seed);
        auto outcome = allocator.Allocate(*inst.evaluator, 3);
        ASSERT_TRUE(outcome.ok()) << "seed " << seed;
        EXPECT_EQ(outcome->allocation, golden.allocation)
            << "seed " << seed << " threads " << threads;
        EXPECT_EQ(outcome->cost, golden.cost)
            << "seed " << seed << " threads " << threads;
        EXPECT_EQ(outcome->candidates, golden.candidates)
            << "seed " << seed << " threads " << threads;
      }
    }
  }
}

// -------------------------------------------- end-to-end service rounds

Table MakeWorldTable(uint64_t seed) {
  Rng rng(seed);
  TableGeneratorConfig config;
  config.domain = Rect(0, 0, 100, 100);
  config.num_objects = 500;
  config.payload_fields = 1;
  config.payload_bytes = 16;
  return GenerateTable(config, &rng);
}

RoundStats RunServiceOnce(uint64_t seed, int threads, int num_channels,
                          double* estimated_cost) {
  ServiceConfig config;
  config.cost_model = {2.0, 1.0, 1.0, 0.0, num_channels > 1 ? 1.0 : 0.0};
  config.estimator = EstimatorKind::kExact;
  config.num_channels = num_channels;
  config.seed = seed;
  config.threads = threads;
  SubscriptionService service(MakeWorldTable(seed), Rect(0, 0, 100, 100),
                              config);
  Rng rng(seed + 99);
  for (int c = 0; c < 5; ++c) {
    const ClientId client = service.AddClient();
    for (int q = 0; q < 2; ++q) {
      const double x = rng.UniformDouble(0, 80);
      const double y = rng.UniformDouble(0, 80);
      service.Subscribe(client, Rect(x, y, x + rng.UniformDouble(5, 20),
                                     y + rng.UniformDouble(5, 20)));
    }
  }
  auto report = service.Plan();
  EXPECT_TRUE(report.ok());
  *estimated_cost = report.ok() ? report->estimated_cost : -1.0;
  auto stats = service.RunRound();
  EXPECT_TRUE(stats.ok());
  // The config's thread count is process-global; restore the serial
  // default so the next run starts clean.
  exec::SetDefaultThreads(1);
  return stats.ok() ? *stats : RoundStats{};
}

TEST(ParallelMatrixTest, ServiceRoundsMatchSerialAtAnyThreadCount) {
  for (const int num_channels : {1, 3}) {
    for (const uint64_t seed : kSeeds) {
      double golden_cost = 0.0;
      const RoundStats golden =
          RunServiceOnce(seed, 1, num_channels, &golden_cost);
      EXPECT_TRUE(golden.all_answers_correct);
      for (const int threads : kThreadCounts) {
        double cost = 0.0;
        const RoundStats stats =
            RunServiceOnce(seed, threads, num_channels, &cost);
        EXPECT_EQ(cost, golden_cost)
            << "channels " << num_channels << " seed " << seed
            << " threads " << threads;
        EXPECT_TRUE(stats == golden)
            << "channels " << num_channels << " seed " << seed
            << " threads " << threads;
      }
    }
  }
}

}  // namespace
}  // namespace qsp
