#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "relation/generator.h"
#include "relation/grid_index.h"
#include "relation/schema.h"
#include "relation/table.h"
#include "relation/value.h"
#include "util/rng.h"

namespace qsp {
namespace {

Table MakeSmallTable() {
  Table table(Schema::Geographic(1));
  const double coords[][2] = {{1, 1}, {2, 3}, {5, 5}, {9, 9}, {5, 1}};
  for (const auto& c : coords) {
    auto r = table.Insert({c[0], c[1], std::string("obj")});
    EXPECT_TRUE(r.ok());
  }
  return table;
}

// ---------------------------------------------------------------- Schema

TEST(SchemaTest, GeographicSchemaShape) {
  Schema s = Schema::Geographic(2);
  ASSERT_EQ(s.num_fields(), 4u);
  EXPECT_EQ(s.field(0).name, "longitude");
  EXPECT_EQ(s.field(0).type, ValueType::kDouble);
  EXPECT_EQ(s.field(1).name, "latitude");
  EXPECT_EQ(s.field(2).name, "attr0");
  EXPECT_EQ(s.field(3).name, "attr1");
}

TEST(SchemaTest, IndexOf) {
  Schema s = Schema::Geographic(1);
  EXPECT_EQ(s.IndexOf("latitude"), 1u);
  EXPECT_EQ(s.IndexOf("nope"), std::nullopt);
}

TEST(SchemaTest, ValidateArity) {
  Schema s = Schema::Geographic(0);
  EXPECT_TRUE(s.Validate({1.0, 2.0}).ok());
  EXPECT_FALSE(s.Validate({1.0}).ok());
  EXPECT_FALSE(s.Validate({1.0, 2.0, 3.0}).ok());
}

TEST(SchemaTest, ValidateTypes) {
  Schema s = Schema::Geographic(1);
  EXPECT_TRUE(s.Validate({1.0, 2.0, std::string("x")}).ok());
  EXPECT_FALSE(s.Validate({int64_t{1}, 2.0, std::string("x")}).ok());
  EXPECT_FALSE(s.Validate({1.0, 2.0, 3.0}).ok());
}

TEST(SchemaTest, ToString) {
  EXPECT_EQ(Schema::Geographic(0).ToString(),
            "longitude:DOUBLE, latitude:DOUBLE");
}

// ----------------------------------------------------------------- Value

TEST(ValueTest, TypeOfAndWireSize) {
  EXPECT_EQ(TypeOf(Value{int64_t{5}}), ValueType::kInt64);
  EXPECT_EQ(TypeOf(Value{2.5}), ValueType::kDouble);
  EXPECT_EQ(TypeOf(Value{std::string("ab")}), ValueType::kString);
  EXPECT_EQ(WireSize(Value{int64_t{5}}), 8u);
  EXPECT_EQ(WireSize(Value{2.5}), 8u);
  EXPECT_EQ(WireSize(Value{std::string("ab")}), 6u);
}

// ----------------------------------------------------------------- Table

TEST(TableTest, InsertAndAccess) {
  Table table = MakeSmallTable();
  EXPECT_EQ(table.num_rows(), 5u);
  EXPECT_EQ(table.PositionOf(0).x, 1.0);
  EXPECT_EQ(table.PositionOf(2).y, 5.0);
}

TEST(TableTest, InsertRejectsWrongArity) {
  Table table(Schema::Geographic(0));
  EXPECT_FALSE(table.Insert({1.0}).ok());
}

TEST(TableTest, InsertRejectsNonPositionalSchema) {
  Table table(Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}));
  EXPECT_FALSE(table.Insert({int64_t{1}, int64_t{2}}).ok());
}

TEST(TableTest, ScanRangeClosedBounds) {
  Table table = MakeSmallTable();
  EXPECT_EQ(table.ScanRange(Rect(1, 1, 5, 5)),
            (std::vector<RowId>{0, 1, 2, 4}));
  EXPECT_EQ(table.ScanRange(Rect(9, 9, 9, 9)), (std::vector<RowId>{3}));
  EXPECT_TRUE(table.ScanRange(Rect(100, 100, 200, 200)).empty());
  EXPECT_TRUE(table.ScanRange(Rect::Empty()).empty());
}

TEST(TableTest, CountRangeMatchesScan) {
  Table table = MakeSmallTable();
  const Rect r(0, 0, 6, 6);
  EXPECT_EQ(table.CountRange(r), table.ScanRange(r).size());
}

TEST(TableTest, WireSizes) {
  Table table = MakeSmallTable();
  // 2 doubles (16) + "obj" string (3+4).
  EXPECT_EQ(table.RowWireSize(0), 23u);
  EXPECT_DOUBLE_EQ(table.MeanRowWireSize(), 23.0);
}

// ------------------------------------------------------------- GridIndex

TEST(GridIndexTest, MatchesFullScanOnSmallTable) {
  Table table = MakeSmallTable();
  GridIndex index(table, Rect(0, 0, 10, 10), 4, 4);
  const Rect queries[] = {Rect(0, 0, 10, 10), Rect(1, 1, 5, 5),
                          Rect(4, 0, 6, 2),   Rect(8.5, 8.5, 9.5, 9.5),
                          Rect(3, 3, 3, 3),   Rect::Empty()};
  for (const Rect& q : queries) {
    EXPECT_EQ(index.Query(q), table.ScanRange(q)) << q.ToString();
    EXPECT_EQ(index.Count(q), table.CountRange(q)) << q.ToString();
  }
}

TEST(GridIndexTest, RowsOutsideDomainAreClamped) {
  Table table(Schema::Geographic(0));
  ASSERT_TRUE(table.Insert({-5.0, -5.0}).ok());
  ASSERT_TRUE(table.Insert({15.0, 15.0}).ok());
  GridIndex index(table, Rect(0, 0, 10, 10), 4, 4);
  // The rows exist in boundary buckets; querying beyond the domain edge
  // must still find them because containment is re-checked per row.
  EXPECT_EQ(index.Query(Rect(-10, -10, 20, 20)).size(), 2u);
  EXPECT_TRUE(index.Query(Rect(0, 0, 10, 10)).empty());
}

/// Property: index results equal full scans on random data and queries.
class GridIndexProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(GridIndexProperty, EquivalentToScan) {
  Rng rng(GetParam());
  TableGeneratorConfig config;
  config.domain = Rect(0, 0, 100, 100);
  config.num_objects = 500;
  config.clustered_fraction = 0.5;
  config.num_clusters = 3;
  config.payload_fields = 0;
  Table table = GenerateTable(config, &rng);
  GridIndex index(table, config.domain, 8, 8);
  for (int i = 0; i < 50; ++i) {
    const double x = rng.UniformDouble(0, 90);
    const double y = rng.UniformDouble(0, 90);
    const Rect q(x, y, x + rng.UniformDouble(0, 30),
                 y + rng.UniformDouble(0, 30));
    ASSERT_EQ(index.Query(q), table.ScanRange(q)) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridIndexProperty,
                         ::testing::Values(11, 22, 33, 44));

// ------------------------------------------------------------- Generator

TEST(GeneratorTest, ProducesRequestedRows) {
  Rng rng(5);
  TableGeneratorConfig config;
  config.num_objects = 1000;
  config.payload_fields = 2;
  config.payload_bytes = 8;
  Table table = GenerateTable(config, &rng);
  EXPECT_EQ(table.num_rows(), 1000u);
  EXPECT_EQ(table.schema().num_fields(), 4u);
}

TEST(GeneratorTest, AllPointsInsideDomain) {
  Rng rng(6);
  TableGeneratorConfig config;
  config.domain = Rect(10, 20, 30, 40);
  config.num_objects = 2000;
  config.clustered_fraction = 0.8;
  Table table = GenerateTable(config, &rng);
  for (RowId id = 0; id < table.num_rows(); ++id) {
    EXPECT_TRUE(config.domain.Contains(table.PositionOf(id)));
  }
}

TEST(GeneratorTest, DeterministicInSeed) {
  TableGeneratorConfig config;
  config.num_objects = 50;
  Rng rng1(77), rng2(77);
  Table t1 = GenerateTable(config, &rng1);
  Table t2 = GenerateTable(config, &rng2);
  ASSERT_EQ(t1.num_rows(), t2.num_rows());
  for (RowId id = 0; id < t1.num_rows(); ++id) {
    EXPECT_EQ(t1.PositionOf(id).x, t2.PositionOf(id).x);
    EXPECT_EQ(t1.PositionOf(id).y, t2.PositionOf(id).y);
  }
}

TEST(GeneratorTest, ClusteredDataIsDenserNearCenters) {
  // With full clustering and small spread, the average pairwise distance
  // is far below the uniform expectation.
  TableGeneratorConfig clustered;
  clustered.num_objects = 400;
  clustered.clustered_fraction = 1.0;
  clustered.num_clusters = 2;
  clustered.cluster_spread = 0.01;
  TableGeneratorConfig uniform = clustered;
  uniform.clustered_fraction = 0.0;

  auto mean_min_neighbor = [](const Table& t) {
    double total = 0;
    for (RowId i = 0; i < t.num_rows(); ++i) {
      double best = 1e18;
      for (RowId j = 0; j < t.num_rows(); ++j) {
        if (i == j) continue;
        const Point a = t.PositionOf(i), b = t.PositionOf(j);
        const double d2 =
            (a.x - b.x) * (a.x - b.x) + (a.y - b.y) * (a.y - b.y);
        best = std::min(best, d2);
      }
      total += std::sqrt(best);
    }
    return total / static_cast<double>(t.num_rows());
  };

  Rng rng1(9), rng2(9);
  const double clustered_nn = mean_min_neighbor(GenerateTable(clustered, &rng1));
  const double uniform_nn = mean_min_neighbor(GenerateTable(uniform, &rng2));
  EXPECT_LT(clustered_nn, uniform_nn * 0.5);
}

}  // namespace
}  // namespace qsp
